#include "fuzz/oracle.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "analysis/analyzer.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "dft/modules.hpp"
#include "simulation/simulator.hpp"

namespace imcdft::fuzz {

namespace {

std::uint64_t bitsOf(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

bool sameBits(double a, double b) { return bitsOf(a) == bitsOf(b); }

/// Hexfloat rendering: divergence reports must identify the exact bit
/// pattern, %g would round two different doubles to the same text.
std::string hexFloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string shortFloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// One exact-engine configuration of the oracle matrix.
struct ExactConfig {
  const char* name;
  bool onTheFly;
  unsigned threads;
  bool symmetry;
  bool staticCombine;
  /// Intra-step parallel signature encoding in the fused engine
  /// (EngineOptions::otfIntraStepParallel) — bitwise-identity contract.
  bool intraParallel = false;
};

analysis::AnalysisReport runConfig(
    const dft::Dft& tree, const std::vector<analysis::MeasureSpec>& measures,
    const ExactConfig& config, const OracleOptions& opts) {
  // Fresh session per configuration: the Analyzer's cache key deliberately
  // ignores knobs that are engineered not to change answers (threads,
  // budgets), so a shared session would serve most of this matrix from
  // cache and the comparison would test the cache, not the engines.
  analysis::Analyzer session;
  analysis::AnalysisRequest request =
      analysis::AnalysisRequest::forDft(tree, config.name);
  for (const analysis::MeasureSpec& m : measures) request.measure(m);
  request.options.engine.onTheFly = config.onTheFly;
  request.options.engine.numThreads = config.threads;
  request.options.engine.symmetry = config.symmetry;
  request.options.engine.staticCombine = config.staticCombine;
  request.options.engine.otfIntraStepParallel = config.intraParallel;
  request.budget.deadlineSeconds = opts.deadlineSeconds;
  request.budget.maxLiveStates = opts.maxLiveStates;
  return session.analyze(request);
}

/// Compares \p other against the reference report measure-by-measure.
/// Returns the empty string on agreement, else the first divergence.
/// With \p bitwise every double must match bit-for-bit; otherwise the
/// (relTol, absFloor) band applies (the static-combine path).
std::string compareReports(const analysis::AnalysisReport& ref,
                           const analysis::AnalysisReport& other,
                           const char* otherName, bool bitwise, double relTol,
                           double absFloor) {
  auto close = [&](double a, double b) {
    if (sameBits(a, b)) return true;
    if (std::isnan(a) || std::isnan(b)) return false;
    if (bitwise) return false;
    const double diff = std::fabs(a - b);
    if (diff <= absFloor) return true;
    return diff <= relTol * std::max(std::fabs(a), std::fabs(b));
  };
  auto where = [&](const analysis::MeasureResult& m, std::size_t i) {
    std::string loc = std::string(otherName) + " vs classic: " +
                      analysis::measureKindName(m.spec.kind);
    if (i < m.spec.times.size()) loc += "[t=" + shortFloat(m.spec.times[i]) + ']';
    return loc;
  };

  if (ref.measures.size() != other.measures.size())
    return std::string(otherName) + " vs classic: measure count " +
           std::to_string(other.measures.size()) + " != " +
           std::to_string(ref.measures.size());
  for (std::size_t m = 0; m < ref.measures.size(); ++m) {
    const analysis::MeasureResult& a = ref.measures[m];
    const analysis::MeasureResult& b = other.measures[m];
    if (a.ok != b.ok)
      return where(a, a.spec.times.size()) +
             (b.ok ? " succeeded only in " + std::string(otherName)
                   : " failed only in " + std::string(otherName) + ": " +
                         b.error);
    if (!a.ok) continue;
    if (a.boundsSubstituted != b.boundsSubstituted)
      return where(a, a.spec.times.size()) +
             ": nondeterminism detected by only one engine (bounds "
             "substituted: classic=" +
             std::to_string(a.boundsSubstituted) + ", " + otherName + "=" +
             std::to_string(b.boundsSubstituted) + ')';
    if (a.values.size() != b.values.size() || a.bounds.size() != b.bounds.size())
      return where(a, a.spec.times.size()) + ": result shape mismatch";
    for (std::size_t i = 0; i < a.values.size(); ++i) {
      if (std::isnan(a.values[i]) || std::isnan(b.values[i]))
        return where(a, i) + ": NaN (classic=" + hexFloat(a.values[i]) +
               ", " + otherName + '=' + hexFloat(b.values[i]) + ')';
      if (!close(a.values[i], b.values[i]))
        return where(a, i) + ": " + hexFloat(b.values[i]) +
               " != " + hexFloat(a.values[i]) +
               (bitwise ? " (bitwise contract)" : " (beyond 1e-9 band)");
    }
    for (std::size_t i = 0; i < a.bounds.size(); ++i) {
      if (!close(a.bounds[i].lower, b.bounds[i].lower) ||
          !close(a.bounds[i].upper, b.bounds[i].upper))
        return where(a, i) + ": bounds [" + hexFloat(b.bounds[i].lower) +
               ", " + hexFloat(b.bounds[i].upper) + "] != [" +
               hexFloat(a.bounds[i].lower) + ", " +
               hexFloat(a.bounds[i].upper) + ']' +
               (bitwise ? " (bitwise contract)" : " (beyond 1e-9 band)");
    }
  }
  return {};
}

double logBinomPmf(std::uint64_t n, std::uint64_t k, double p) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return std::lgamma(dn + 1.0) - std::lgamma(dk + 1.0) -
         std::lgamma(dn - dk + 1.0) + dk * std::log(p) +
         (dn - dk) * std::log1p(-p);
}

/// One-sided binomial tail: P(X >= k) when \p upper, else P(X <= k), for
/// X ~ Binomial(n, p).  Summed with the pmf ratio recurrence from the
/// boundary term inward; once past the mode the terms decay geometrically
/// so the early break is sound.
double binomTail(std::uint64_t n, std::uint64_t k, double p, bool upper) {
  if (p <= 0.0) return upper ? (k == 0 ? 1.0 : 0.0) : 1.0;
  if (p >= 1.0) return upper ? 1.0 : (k == n ? 1.0 : 0.0);
  double sum = 0.0;
  double term = std::exp(logBinomPmf(n, k, p));
  if (upper) {
    for (std::uint64_t i = k;; ++i) {
      sum += term;
      if (i == n) break;
      const double next = term * (static_cast<double>(n - i) /
                                  static_cast<double>(i + 1)) *
                          (p / (1.0 - p));
      if (next < term && next < sum * 1e-16) break;
      term = next;
    }
  } else {
    for (std::uint64_t i = k;; --i) {
      sum += term;
      if (i == 0) break;
      const double next = term * (static_cast<double>(i) /
                                  static_cast<double>(n - i + 1)) *
                          ((1.0 - p) / p);
      if (next < term && next < sum * 1e-16) break;
      term = next;
    }
  }
  return std::min(sum, 1.0);
}

/// Coverage check of one simulated estimate against the exact result at
/// grid point \p i.  Because the exact probability is known, the decision
/// rule is an exact binomial tail test — "how surprising are these hits
/// under p?" — not Wilson-interval containment, whose actual coverage
/// degrades badly in the far tails (1 hit on a ~1e-5 event puts the
/// Wilson lower bound above the truth ~2% of the time, which at fuzzing
/// volume is a steady stream of false alarms).  The per-check false-alarm
/// rate is the one-sided normal tail of simZ (~5e-7 at z=4.9).  When the
/// exact engine substituted scheduler bounds the simulator (one
/// scheduler) must merely be plausible for *some* p in [lower, upper], so
/// the tail is taken at the nearest endpoint.
std::string checkCoverage(const analysis::MeasureResult& exact, std::size_t i,
                          const simulation::Estimate& est,
                          const OracleOptions& opts) {
  const double alpha = 0.5 * std::erfc(opts.simZ / std::sqrt(2.0));
  const double pHat =
      static_cast<double>(est.hits) / static_cast<double>(est.runs);
  const std::string at = std::string(analysis::measureKindName(exact.spec.kind)) +
                         "[t=" + shortFloat(exact.spec.times[i]) + ']';
  const auto describe = [&](double p, double tail) {
    return ": " + std::to_string(est.hits) + '/' + std::to_string(est.runs) +
           " hits is implausible under p=" + shortFloat(p) +
           " (tail " + shortFloat(tail) + " < alpha " + shortFloat(alpha) +
           ')';
  };
  if (exact.boundsSubstituted) {
    const double lower = exact.bounds[i].lower;
    const double upper = exact.bounds[i].upper;
    if (pHat > upper) {
      const double tail = binomTail(est.runs, est.hits, upper, /*upper=*/true);
      if (tail < alpha)
        return "simulator vs bounds: " + at + describe(upper, tail) +
               " — above scheduler bounds [" + shortFloat(lower) + ", " +
               shortFloat(upper) + ']';
    } else if (pHat < lower) {
      const double tail = binomTail(est.runs, est.hits, lower, /*upper=*/false);
      if (tail < alpha)
        return "simulator vs bounds: " + at + describe(lower, tail) +
               " — below scheduler bounds [" + shortFloat(lower) + ", " +
               shortFloat(upper) + ']';
    }
    return {};
  }
  const double v = exact.values[i];
  if (std::isnan(v))
    return "simulator vs classic: " + at + ": exact value is NaN";
  const double tail = binomTail(est.runs, est.hits, v, /*upper=*/pHat >= v);
  if (tail < alpha)
    return "simulator vs classic: " + at + describe(v, tail);
  return {};
}

}  // namespace

OracleVerdict crossCheck(const dft::Dft& tree, const OracleOptions& opts) {
  OracleVerdict verdict;
  verdict.repairable = tree.isRepairable();
  verdict.staticEligible = dft::detectStaticLayer(tree).eligible;

  std::vector<analysis::MeasureSpec> measures;
  measures.push_back(analysis::MeasureSpec::unreliability(opts.times));
  if (verdict.repairable)
    measures.push_back(analysis::MeasureSpec::unavailability(opts.times));

  // The exact-engine matrix.  Row 0 is the reference (the paper's classic
  // compose/hide/aggregate chain, sequential, no reductions); each later
  // row enables features whose contract is bitwise identity with row 0.
  // The last row routes through the static-combine numeric path where
  // eligible, whose contract is the 1e-9 band instead.
  const ExactConfig configs[] = {
      {"classic", false, 1, false, false},
      {"otf", true, 1, false, false},
      {"otf-par", true, 1, false, false, /*intraParallel=*/true},
      {"parallel", true, opts.parallelThreads, true, false},
      {"static", true, 1, true, true},
  };

  std::vector<analysis::AnalysisReport> reports;
  reports.reserve(std::size(configs));
  for (const ExactConfig& config : configs) {
    try {
      reports.push_back(runConfig(tree, measures, config, opts));
    } catch (const BudgetExceeded& e) {
      verdict.status = OracleStatus::Skipped;
      verdict.detail =
          std::string(config.name) + ": over budget: " + e.what();
      return verdict;
    } catch (const UnsupportedError& e) {
      verdict.status = OracleStatus::Skipped;
      verdict.detail =
          std::string(config.name) + ": unsupported tree: " + e.what();
      return verdict;
    }
  }
  verdict.nondeterministic = reports[0].nondeterministic();
  verdict.configsCompared = reports.size();

  for (std::size_t c = 1; c < reports.size(); ++c) {
    const bool bitwise = !configs[c].staticCombine;
    std::string diff =
        compareReports(reports[0], reports[c], configs[c].name, bitwise,
                       opts.numericRelTol, opts.numericAbsFloor);
    if (!diff.empty()) {
      verdict.status = OracleStatus::Disagree;
      verdict.detail = std::move(diff);
      return verdict;
    }
  }

  if (opts.simRuns > 0) {
    for (const analysis::MeasureResult& exact : reports[0].measures) {
      if (!exact.ok) continue;
      for (std::size_t i = 0; i < exact.spec.times.size(); ++i) {
        const double t = exact.spec.times[i];
        const simulation::SimulationOptions simOpts{opts.simRuns, opts.simSeed,
                                                    0};
        const simulation::Estimate est =
            exact.spec.kind == analysis::MeasureKind::Unavailability
                ? simulation::simulateUnavailability(tree, t, simOpts)
                : simulation::simulateUnreliability(tree, t, simOpts);
        std::string diff = checkCoverage(exact, i, est, opts);
        if (!diff.empty()) {
          verdict.status = OracleStatus::Disagree;
          verdict.detail = std::move(diff);
          return verdict;
        }
      }
    }
  }
  return verdict;
}

std::string replayCommand(const std::string& reproPath,
                          const OracleOptions& opts) {
  std::string cmd = "dftimc";
  for (double t : opts.times) cmd += " --time " + shortFloat(t);
  cmd += " --bounds";
  if (opts.simRuns > 0)
    cmd += " --simulate --runs " + std::to_string(opts.simRuns) + " --seed " +
           std::to_string(opts.simSeed);
  cmd += ' ' + reproPath;
  cmd += " && dftfuzz --check " + reproPath;
  return cmd;
}

}  // namespace imcdft::fuzz
