#pragma once

#include <cstddef>
#include <functional>

#include "dft/model.hpp"

/// \file shrink.hpp
/// Greedy structural minimization of a disagreeing DFT: given a tree on
/// which the differential oracle fails and a predicate that re-checks the
/// failure, repeatedly try local simplifications — promote a subtree to
/// the top, drop or bypass gate inputs, retype dynamic gates to AND,
/// delete FDEPs/inhibitions, strip basic-event attributes, de-share
/// events — keeping an edit only while the tree *still fails*.  The
/// surviving tree is what lands in the repro file: small enough to read,
/// still exhibiting the bug.
///
/// Termination: every accepted structural edit strictly decreases a
/// lexicographic complexity score (elements, input edges, FDEP/inhibition
/// extras, dynamic gates, nontrivial attributes), so the greedy loop
/// reaches a fixpoint.  De-sharing *increases* the element count, so it
/// runs as a separate bounded pass: each de-share trial must pay for
/// itself through the follow-up structural shrink (final score no worse
/// than before the trial) or it is rolled back.
///
/// Every candidate is validated through the same gates as the generator
/// (Dft validation + analysis::checkConvertible) before the predicate
/// runs, so the shrinker can propose edits freely without tracking the
/// converter's structural rules itself.

namespace imcdft::fuzz {

struct ShrinkOptions {
  /// Cap on predicate evaluations (each typically runs the full oracle).
  std::size_t maxChecks = 2000;
};

struct ShrinkResult {
  dft::Dft tree;             ///< the minimized tree (still failing)
  std::size_t checks = 0;    ///< predicate evaluations spent
  std::size_t accepted = 0;  ///< edits that survived
};

/// Minimizes \p start under \p stillFailing (which must return true for
/// \p start itself; the shrinker asserts nothing and simply returns the
/// input unshrunk when no edit keeps the predicate true).
ShrinkResult shrink(const dft::Dft& start,
                    const std::function<bool(const dft::Dft&)>& stillFailing,
                    const ShrinkOptions& opts = {});

}  // namespace imcdft::fuzz
