#include "fuzz/shrink.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/converter.hpp"
#include "common/error.hpp"
#include "dft/builder.hpp"

namespace imcdft::fuzz {

namespace {

using dft::Dft;
using dft::Element;
using dft::ElementId;
using dft::ElementType;

/// Mutable mirror of a Dft.  Elements are addressed by index; edits mark
/// elements dead instead of erasing so indices stay stable within one
/// edit, then gc() compacts.
struct SpecElement {
  std::string name;
  ElementType type = ElementType::BasicEvent;
  std::vector<std::size_t> inputs;
  std::uint32_t votingThreshold = 0;
  dft::SpareKind spareKind = dft::SpareKind::Warm;
  double lambda = 1.0;
  double dormancy = 1.0;
  std::optional<double> mu;
  std::uint32_t phases = 1;
  bool dead = false;
};

struct TreeSpec {
  std::vector<SpecElement> elements;
  std::size_t top = 0;
  std::vector<std::pair<std::size_t, std::size_t>> inhibitions;  // (inhibitor, target)
  std::size_t cloneCounter = 0;  ///< fresh-name counter for de-sharing
};

TreeSpec fromDft(const Dft& dft) {
  TreeSpec spec;
  spec.top = dft.top();
  spec.elements.reserve(dft.size());
  for (ElementId id = 0; id < dft.size(); ++id) {
    const Element& e = dft.element(id);
    SpecElement s;
    s.name = e.name;
    s.type = e.type;
    for (ElementId in : e.inputs) s.inputs.push_back(in);
    s.votingThreshold = e.votingThreshold;
    s.spareKind = e.spareKind;
    s.lambda = e.be.lambda;
    s.dormancy = e.be.dormancy;
    s.mu = e.be.repairRate;
    s.phases = e.be.phases;
    spec.elements.push_back(std::move(s));
  }
  for (const dft::Inhibition& inh : dft.inhibitions())
    spec.inhibitions.emplace_back(inh.inhibitor, inh.target);
  return spec;
}

/// Drops everything unreachable from the top: the input-closure of the
/// top element, plus FDEP/SEQ side constraints whose referenced elements
/// all survived (an FDEP additionally sheds dead dependents, and dies
/// when its trigger or every dependent died).  Inhibitions with a dead
/// endpoint are dropped too.
void gc(TreeSpec& spec) {
  const std::size_t n = spec.elements.size();
  std::vector<char> keep(n, 0);
  // Input-closure of the top element (FDEP/SEQ elements are side
  // constraints, never inputs of ordinary gates, so they stay out here).
  std::vector<std::size_t> stack{spec.top};
  while (!stack.empty()) {
    const std::size_t x = stack.back();
    stack.pop_back();
    if (keep[x] || spec.elements[x].dead) continue;
    keep[x] = 1;
    for (std::size_t in : spec.elements[x].inputs) stack.push_back(in);
  }
  for (std::size_t x = 0; x < n; ++x) {
    SpecElement& e = spec.elements[x];
    if (e.dead || keep[x]) continue;
    if (e.type == ElementType::Fdep) {
      if (e.inputs.empty() || !keep[e.inputs[0]]) continue;
      std::vector<std::size_t> dependents;
      for (std::size_t i = 1; i < e.inputs.size(); ++i)
        if (keep[e.inputs[i]]) dependents.push_back(e.inputs[i]);
      if (dependents.empty()) continue;
      e.inputs.resize(1);
      e.inputs.insert(e.inputs.end(), dependents.begin(), dependents.end());
      keep[x] = 1;
    } else if (e.type == ElementType::Seq) {
      bool all = !e.inputs.empty();
      for (std::size_t in : e.inputs) all = all && keep[in];
      if (all) keep[x] = 1;
    }
  }
  for (std::size_t x = 0; x < n; ++x)
    if (!keep[x]) spec.elements[x].dead = true;
  spec.inhibitions.erase(
      std::remove_if(spec.inhibitions.begin(), spec.inhibitions.end(),
                     [&](const auto& inh) {
                       return !keep[inh.first] || !keep[inh.second];
                     }),
      spec.inhibitions.end());
}

/// Lexicographic complexity: any accepted structural edit must decrease
/// this, which bounds the greedy loop.
using Score =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t, std::size_t>;

Score scoreOf(const TreeSpec& spec) {
  std::size_t elements = 0, edges = 0, extras = spec.inhibitions.size(),
              dynamicGates = 0, attrs = 0;
  for (const SpecElement& e : spec.elements) {
    if (e.dead) continue;
    ++elements;
    edges += e.inputs.size();
    if (e.type == ElementType::Pand || e.type == ElementType::Spare ||
        e.type == ElementType::Fdep || e.type == ElementType::Seq)
      ++dynamicGates;
    if (e.type == ElementType::Fdep) extras += e.inputs.size() - 1;
    if (e.type == ElementType::BasicEvent) {
      if (e.mu) ++attrs;
      if (e.phases != 1) ++attrs;
      if (e.dormancy != 1.0 && e.dormancy != 0.0) ++attrs;
      if (e.lambda != 1.0) ++attrs;
    }
  }
  return {elements, edges, extras, dynamicGates, attrs};
}

/// Rebuilds and re-validates through the exact gates the generator uses,
/// so every accepted candidate is analyzable by all backends.
std::optional<Dft> tryBuild(const TreeSpec& spec) {
  try {
    dft::DftBuilder builder;
    for (const SpecElement& e : spec.elements) {
      if (e.dead) continue;
      std::vector<std::string> inputs;
      for (std::size_t in : e.inputs) inputs.push_back(spec.elements[in].name);
      switch (e.type) {
        case ElementType::BasicEvent:
          builder.basicEvent(e.name, e.lambda, e.dormancy, e.mu, e.phases);
          break;
        case ElementType::And: builder.andGate(e.name, inputs); break;
        case ElementType::Or: builder.orGate(e.name, inputs); break;
        case ElementType::Voting:
          builder.votingGate(e.name, e.votingThreshold, inputs);
          break;
        case ElementType::Pand: builder.pandGate(e.name, inputs); break;
        case ElementType::Spare:
          builder.spareGate(e.name, e.spareKind, inputs);
          break;
        case ElementType::Seq: builder.seqGate(e.name, inputs); break;
        case ElementType::Fdep:
          builder.fdep(e.name, inputs.front(),
                       {inputs.begin() + 1, inputs.end()});
          break;
      }
    }
    for (const auto& [inhibitor, target] : spec.inhibitions)
      builder.inhibition(spec.elements[inhibitor].name,
                         spec.elements[target].name);
    builder.top(spec.elements[spec.top].name);
    Dft tree = builder.build();
    analysis::checkConvertible(tree);
    analysis::activationContexts(tree);
    return tree;
  } catch (const Error&) {
    return std::nullopt;
  }
}

bool isOrdinaryGate(ElementType t) {
  return t == ElementType::And || t == ElementType::Or ||
         t == ElementType::Voting || t == ElementType::Pand ||
         t == ElementType::Spare;
}

/// One candidate edit: a copy-mutate closure plus a display cost.  Edits
/// are generated fresh each pass from the current spec.
using Edit = std::function<void(TreeSpec&)>;

/// All structural/attribute candidates of the current spec, in a fixed
/// deterministic order (boldest reductions first, so the greedy
/// first-improvement loop takes big steps while they last).
std::vector<Edit> structuralEdits(const TreeSpec& spec) {
  std::vector<Edit> edits;
  const std::size_t n = spec.elements.size();

  // Replace a gate by one of its children everywhere (including the top):
  // collapses whole levels at once.
  for (std::size_t g = 0; g < n; ++g) {
    const SpecElement& e = spec.elements[g];
    if (e.dead || !isOrdinaryGate(e.type)) continue;
    for (std::size_t c = 0; c < e.inputs.size(); ++c) {
      const std::size_t child = e.inputs[c];
      edits.push_back([g, child](TreeSpec& s) {
        for (SpecElement& parent : s.elements) {
          if (parent.dead) continue;
          for (std::size_t& in : parent.inputs)
            if (in == g) in = child;
        }
        if (s.top == g) s.top = child;
        s.elements[g].dead = true;
      });
    }
  }

  // Delete a whole FDEP, or just one of its dependents.
  for (std::size_t g = 0; g < n; ++g) {
    const SpecElement& e = spec.elements[g];
    if (e.dead || e.type != ElementType::Fdep) continue;
    edits.push_back([g](TreeSpec& s) { s.elements[g].dead = true; });
    if (e.inputs.size() > 2)
      for (std::size_t i = 1; i < e.inputs.size(); ++i)
        edits.push_back([g, i](TreeSpec& s) {
          s.elements[g].inputs.erase(s.elements[g].inputs.begin() +
                                     static_cast<std::ptrdiff_t>(i));
        });
  }

  // Delete one inhibition.
  for (std::size_t i = 0; i < spec.inhibitions.size(); ++i)
    edits.push_back([i](TreeSpec& s) {
      s.inhibitions.erase(s.inhibitions.begin() +
                          static_cast<std::ptrdiff_t>(i));
    });

  // Drop one gate input (clamping a voting threshold to the new arity).
  for (std::size_t g = 0; g < n; ++g) {
    const SpecElement& e = spec.elements[g];
    if (e.dead || !isOrdinaryGate(e.type) || e.inputs.size() < 2) continue;
    for (std::size_t i = 0; i < e.inputs.size(); ++i)
      edits.push_back([g, i](TreeSpec& s) {
        SpecElement& gate = s.elements[g];
        gate.inputs.erase(gate.inputs.begin() +
                          static_cast<std::ptrdiff_t>(i));
        if (gate.type == ElementType::Voting)
          gate.votingThreshold = std::min<std::uint32_t>(
              gate.votingThreshold,
              static_cast<std::uint32_t>(gate.inputs.size()));
      });
  }

  // Retype a dynamic/voting gate to plain AND (order-insensitivity often
  // preserves the failure while simplifying the semantics under test).
  for (std::size_t g = 0; g < n; ++g) {
    const SpecElement& e = spec.elements[g];
    if (e.dead) continue;
    if (e.type == ElementType::Pand || e.type == ElementType::Spare ||
        e.type == ElementType::Voting)
      edits.push_back([g](TreeSpec& s) {
        s.elements[g].type = ElementType::And;
        s.elements[g].votingThreshold = 0;
      });
  }

  // Attribute simplifications on basic events.
  for (std::size_t b = 0; b < n; ++b) {
    const SpecElement& e = spec.elements[b];
    if (e.dead || e.type != ElementType::BasicEvent) continue;
    if (e.mu)
      edits.push_back([b](TreeSpec& s) { s.elements[b].mu.reset(); });
    if (e.phases != 1)
      edits.push_back([b](TreeSpec& s) { s.elements[b].phases = 1; });
    if (e.dormancy != 1.0 && e.dormancy != 0.0)
      edits.push_back([b](TreeSpec& s) { s.elements[b].dormancy = 1.0; });
    if (e.lambda != 1.0)
      edits.push_back([b](TreeSpec& s) { s.elements[b].lambda = 1.0; });
  }
  return edits;
}

/// Greedy first-improvement loop: apply candidate edits until none is
/// both valid, score-decreasing and still-failing.  Returns the number of
/// accepted edits; current/currentTree are updated in place.
std::size_t shrinkToFixpoint(
    TreeSpec& current, Dft& currentTree,
    const std::function<bool(const Dft&)>& stillFailing,
    const ShrinkOptions& opts, std::size_t& checks) {
  std::size_t accepted = 0;
  bool progressed = true;
  while (progressed && checks < opts.maxChecks) {
    progressed = false;
    const Score before = scoreOf(current);
    for (const Edit& edit : structuralEdits(current)) {
      if (checks >= opts.maxChecks) break;
      TreeSpec candidate = current;
      edit(candidate);
      gc(candidate);
      if (!(scoreOf(candidate) < before)) continue;
      std::optional<Dft> tree = tryBuild(candidate);
      if (!tree) continue;
      ++checks;
      if (!stillFailing(*tree)) continue;
      current = std::move(candidate);
      currentTree = std::move(*tree);
      ++accepted;
      progressed = true;
      break;  // re-enumerate edits against the new spec
    }
  }
  return accepted;
}

}  // namespace

ShrinkResult shrink(const Dft& start,
                    const std::function<bool(const Dft&)>& stillFailing,
                    const ShrinkOptions& opts) {
  TreeSpec current = fromDft(start);
  Dft currentTree = start;
  std::size_t checks = 0;
  std::size_t accepted =
      shrinkToFixpoint(current, currentTree, stillFailing, opts, checks);

  // De-sharing pass: clone a multi-parent element for one of its parents,
  // which *increases* the score, then let the structural loop earn it
  // back.  A trial is kept only when the follow-up shrink pays for the
  // clone (final score no worse than before), so the pass both terminates
  // (one trial per shared element of the fixpoint) and never regresses.
  for (std::size_t target = 0; target < current.elements.size(); ++target) {
    if (checks >= opts.maxChecks) break;
    if (current.elements[target].dead) continue;
    std::vector<std::size_t> parentGates;
    for (std::size_t g = 0; g < current.elements.size(); ++g) {
      if (current.elements[g].dead) continue;
      for (std::size_t in : current.elements[g].inputs)
        if (in == target) {
          parentGates.push_back(g);
          break;
        }
    }
    if (parentGates.size() < 2) continue;

    TreeSpec candidate = current;
    SpecElement clone = candidate.elements[target];
    clone.name += "_c" + std::to_string(candidate.cloneCounter++);
    const std::size_t cloneIdx = candidate.elements.size();
    candidate.elements.push_back(std::move(clone));
    for (std::size_t& in : candidate.elements[parentGates[0]].inputs)
      if (in == target) in = cloneIdx;
    std::optional<Dft> tree = tryBuild(candidate);
    if (!tree) continue;
    ++checks;
    if (!stillFailing(*tree)) continue;
    Dft candidateTree = std::move(*tree);
    const Score before = scoreOf(current);
    std::size_t innerAccepted = shrinkToFixpoint(candidate, candidateTree,
                                                 stillFailing, opts, checks);
    if (scoreOf(candidate) <= before) {
      current = std::move(candidate);
      currentTree = std::move(candidateTree);
      accepted += 1 + innerAccepted;
    }
  }

  return {std::move(currentTree), checks, accepted};
}

}  // namespace imcdft::fuzz
