#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dft/model.hpp"

/// \file oracle.hpp
/// The three-way differential oracle of the fuzzing harness: one tree is
/// analyzed through every engine this repo ships and the answers are
/// cross-checked.
///
/// Agreement contract (also documented in docs/ARCHITECTURE.md):
///
///  * *Bitwise* among the exact composition configurations — the classic
///    chain (on-the-fly off, 1 thread, symmetry off) is the reference, and
///    the fused on-the-fly engine, the multi-threaded module pool and the
///    symmetry reduction are all engineered to be bit-identical to it.
///    Any differing bit is a bug by definition.
///  * *1e-9-relative* against the static-combine numeric path, which is
///    exact only up to CTMC transient tolerances (the E14 bench enforces
///    the same band).  Where the tree is ineligible the numeric request
///    falls back to composition internally and the comparison tightens to
///    bitwise for free.
///  * *Statistical coverage* against the Monte-Carlo simulator: the
///    observed hit count must be plausible under the exact probability —
///    an exact binomial tail test at the ~5-sigma level implied by
///    OracleOptions::simZ.  (Not Wilson containment: its far-tail
///    coverage is poor enough that rare events false-alarm at fuzzing
///    volume.)  A fleet of 10^4 seeds has a negligible false-alarm rate
///    while real semantic divergences (which shift the estimate by whole
///    percentage points) are still caught.
///
/// Nondeterministic models (simultaneous FDEP kills, Section 4.4) are
/// first-class: the exact configurations must agree bitwise on the
/// CTMDP scheduler *bounds*, and the simulator — whose declaration-order
/// resolution is one particular scheduler — must land inside them.
///
/// Each configuration runs in its own fresh Analyzer session on purpose:
/// the session caches are keyed to serve bit-identical results across
/// option sets, and sharing one session would turn most of these
/// comparisons into cache lookups of themselves.

namespace imcdft::fuzz {

struct OracleOptions {
  /// Mission-time grid every backend is evaluated on.
  std::vector<double> times{0.5, 1.5};
  /// Monte-Carlo runs per tree; 0 disables the statistical arm.
  std::uint64_t simRuns = 2000;
  std::uint64_t simSeed = 1;
  /// Sigma level for the binomial tail test; the per-check false-alarm
  /// rate is the one-sided normal tail of this z (4.9 -> ~5e-7).
  double simZ = 4.9;
  /// Agreement band for the static-combine numeric path (E14's band).
  double numericRelTol = 1e-9;
  double numericAbsFloor = 5e-10;
  /// Per-configuration resource budget; a tripped budget yields
  /// Status::Skipped, never a spurious disagreement.  0 = unlimited.
  double deadlineSeconds = 20.0;
  std::size_t maxLiveStates = 0;
  /// Worker threads of the parallel exact configuration.
  unsigned parallelThreads = 4;
};

enum class OracleStatus : std::uint8_t {
  Agree,     ///< every comparison passed
  Disagree,  ///< at least one backend pair diverged (detail says which)
  Skipped,   ///< budget trip or unsupported tree; nothing was compared
};

struct OracleVerdict {
  OracleStatus status = OracleStatus::Agree;
  /// First divergence (config, measure, grid point, both values in
  /// hexfloat) or the skip reason.
  std::string detail;
  bool nondeterministic = false;
  bool repairable = false;
  /// The static-combine path was genuinely eligible (numeric comparison
  /// exercised, not a fallback-to-composition echo).
  bool staticEligible = false;
  /// Exact engine configurations whose reports were compared.
  std::size_t configsCompared = 0;

  bool agreed() const { return status == OracleStatus::Agree; }
  bool disagreed() const { return status == OracleStatus::Disagree; }
};

/// Runs every backend over \p tree and cross-checks the answers.
OracleVerdict crossCheck(const dft::Dft& tree, const OracleOptions& opts = {});

/// The exact command line that replays a repro written to \p reproPath
/// through all three backends from the CLI (composition + static-combine
/// via the Analyzer, the simulator via --simulate), plus the dftfuzz
/// oracle re-check.  Written next to every shrunken repro.
std::string replayCommand(const std::string& reproPath,
                          const OracleOptions& opts);

}  // namespace imcdft::fuzz
