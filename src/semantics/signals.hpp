#pragma once

#include <string>

/// \file signals.hpp
/// Canonical signal names used when a DFT is converted into a community of
/// I/O-IMC.  The naming follows the paper: fA is the firing signal of
/// element A, f*A ("fi_" here) its firing in isolation when A is wrapped by
/// a firing or inhibition auxiliary, aA the (merged) activation signal of a
/// spare module A, and aA,B ("a_A.B") the activation of A by spare gate B.

namespace imcdft::semantics {

/// Firing signal of element \p name (the FA/IA output when wrapped).
std::string firingSignal(const std::string& name);

/// Firing of element \p name in isolation (the paper's f*; input to its
/// firing or inhibition auxiliary).
std::string isolatedFiringSignal(const std::string& name);

/// Merged activation signal of spare module \p name (output of its
/// activation auxiliary).
std::string activationSignal(const std::string& name);

/// Activation/claim of module \p name by spare gate \p gate (aA,B).
std::string claimSignal(const std::string& name, const std::string& gate);

/// Repair signal of element \p name (Section 7.2 extension).
std::string repairSignal(const std::string& name);

}  // namespace imcdft::semantics
