#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ioimc/model.hpp"

/// \file spare_gate.hpp
/// The generalized spare gate I/O-IMC (Fig. 11 of the paper, extended per
/// Section 6.1 to multiple — possibly shared — spares and to spare gates
/// that are themselves used as spares).
///
/// Behavior summary:
///  * the gate starts active, or dormant when it has an activation input;
///  * on activation it activates its primary (emitting the primary
///    activation signal when one is configured) — spares stay dormant;
///  * when the component in use fails, the gate claims the first available
///    spare by emitting that spare's claim signal, which simultaneously
///    activates the spare (through the activation auxiliary) and tells the
///    other sharing gates the spare is taken;
///  * a claim signal heard from another gate marks that spare unavailable;
///  * a *dormant* gate only records failures; it claims nothing until it is
///    activated (the Fig. 10.b discussion);
///  * the gate fires when its primary has failed and every spare is failed
///    or taken.
///
/// The model is produced by breadth-first exploration of this semantics, so
/// it is input-enabled and correct under every interleaving — including the
/// claim races FDEP-induced simultaneity can cause (Section 4.4).

namespace imcdft::semantics {

struct SpareSlot {
  std::string firingInput;  ///< f_S (possibly auxiliary-wrapped)
  std::string claimOutput;  ///< a_S.G, emitted when this gate claims S
  std::vector<std::string> otherClaimInputs;  ///< a_S.H of the other sharers
};

struct SpareGateSpec {
  std::string name;
  std::string firingOutput;  ///< f_G
  /// Activation of the gate itself; empty means active from the start.
  std::optional<std::string> activationInput;
  /// Emitted when the gate activates its primary; empty when the primary
  /// needs no activation (e.g. the gate is always active).
  std::optional<std::string> primaryActivationOutput;
  std::string primaryFiringInput;  ///< f_P
  std::vector<SpareSlot> spares;   ///< in claim order
};

/// Builds the spare gate I/O-IMC for \p spec.
ioimc::IOIMC spareGate(ioimc::SymbolTablePtr symbols, const SpareGateSpec& spec);

}  // namespace imcdft::semantics
