#include "semantics/elements.hpp"

#include <map>

#include "common/error.hpp"
#include "ioimc/builder.hpp"

namespace imcdft::semantics {

using ioimc::IOIMC;
using ioimc::IOIMCBuilder;
using ioimc::StateId;
using ioimc::SymbolTablePtr;

IOIMC basicEvent(SymbolTablePtr symbols, const std::string& name,
                 double lambda, double dormancy,
                 const std::optional<std::string>& activationInput,
                 const std::string& firingOutput, std::uint32_t phases) {
  require(lambda > 0.0, "basicEvent '" + name + "': lambda must be positive");
  require(dormancy >= 0.0 && dormancy <= 1.0,
          "basicEvent '" + name + "': dormancy must be in [0,1]");
  require(phases >= 1, "basicEvent '" + name + "': phases must be >= 1");
  IOIMCBuilder b("BE_" + name, std::move(symbols));
  const bool startsActive = !activationInput || dormancy == 1.0;

  StateId firing = b.addState();
  StateId fired = b.addState();
  b.output(firingOutput);
  b.interactive(firing, firingOutput, fired);

  // Active Erlang track: phases sequential exponential stages.
  std::vector<StateId> active(phases);
  for (std::uint32_t i = 0; i < phases; ++i) active[i] = b.addState();
  for (std::uint32_t i = 0; i < phases; ++i)
    b.markovian(active[i], lambda, i + 1 < phases ? active[i + 1] : firing);

  if (startsActive) {
    b.setInitial(active[0]);
    return std::move(b).build();
  }

  // Dormant track with the alpha-scaled rates; activation preserves the
  // phase already reached.
  std::vector<StateId> dormant(phases);
  for (std::uint32_t i = 0; i < phases; ++i) dormant[i] = b.addState();
  b.input(*activationInput);
  for (std::uint32_t i = 0; i < phases; ++i) {
    if (dormancy > 0.0)
      b.markovian(dormant[i], dormancy * lambda,
                  i + 1 < phases ? dormant[i + 1] : firing);
    b.interactive(dormant[i], *activationInput, active[i]);
  }
  b.setInitial(dormant[0]);
  return std::move(b).build();
}

IOIMC countingGate(SymbolTablePtr symbols, const std::string& name,
                   GateThreshold threshold,
                   const std::vector<std::string>& firingInputs,
                   const std::string& firingOutput) {
  const std::uint32_t n = static_cast<std::uint32_t>(firingInputs.size());
  const std::uint32_t k = threshold.failuresToFire;
  require(n >= 1, "countingGate '" + name + "': no inputs");
  require(k >= 1 && k <= n,
          "countingGate '" + name + "': threshold out of range");
  IOIMCBuilder b("GATE_" + name, std::move(symbols));
  // States 0..k-1 count failures; then firing, fired.
  std::vector<StateId> counts(k);
  for (std::uint32_t i = 0; i < k; ++i) counts[i] = b.addState();
  StateId firing = b.addState();
  StateId fired = b.addState();
  b.setInitial(counts[0]);
  for (const std::string& in : firingInputs) b.input(in);
  b.output(firingOutput);
  for (std::uint32_t i = 0; i < k; ++i) {
    StateId next = (i + 1 == k) ? firing : counts[i + 1];
    for (const std::string& in : firingInputs) b.interactive(counts[i], in, next);
  }
  b.interactive(firing, firingOutput, fired);
  return std::move(b).build();
}

IOIMC subsetGate(SymbolTablePtr symbols, const std::string& name,
                 GateThreshold threshold,
                 const std::vector<std::string>& firingInputs,
                 const std::string& firingOutput) {
  const std::uint32_t n = static_cast<std::uint32_t>(firingInputs.size());
  const std::uint32_t k = threshold.failuresToFire;
  require(n >= 1 && n <= 20, "subsetGate '" + name + "': bad input count");
  require(k >= 1 && k <= n, "subsetGate '" + name + "': threshold out of range");
  IOIMCBuilder b("GATE_" + name, std::move(symbols));
  for (const std::string& in : firingInputs) b.input(in);
  b.output(firingOutput);

  // States: one per failed subset with |subset| < k, plus firing and fired.
  std::map<std::uint32_t, StateId> bySubset;
  std::vector<std::uint32_t> frontier{0};
  bySubset[0] = b.addState();
  StateId firing = b.addState();
  StateId fired = b.addState();
  b.setInitial(bySubset[0]);
  b.interactive(firing, firingOutput, fired);
  while (!frontier.empty()) {
    std::uint32_t subset = frontier.back();
    frontier.pop_back();
    StateId from = bySubset.at(subset);
    for (std::uint32_t i = 0; i < n; ++i) {
      if ((subset >> i) & 1u) continue;
      std::uint32_t nextSubset = subset | (1u << i);
      StateId to;
      if (static_cast<std::uint32_t>(__builtin_popcount(nextSubset)) >= k) {
        to = firing;
      } else {
        auto [it, inserted] = bySubset.try_emplace(nextSubset, 0);
        if (inserted) {
          it->second = b.addState();
          frontier.push_back(nextSubset);
        }
        to = it->second;
      }
      b.interactive(from, firingInputs[i], to);
    }
  }
  return std::move(b).build();
}

IOIMC pandGate(SymbolTablePtr symbols, const std::string& name,
               const std::vector<std::string>& orderedFiringInputs,
               const std::string& firingOutput) {
  const std::uint32_t n = static_cast<std::uint32_t>(orderedFiringInputs.size());
  require(n >= 2, "pandGate '" + name + "': needs at least two inputs");
  IOIMCBuilder b("PAND_" + name, std::move(symbols));
  // States: progress 0..n-1, wrong-order absorbing X, firing, fired.
  std::vector<StateId> progress(n);
  for (std::uint32_t i = 0; i < n; ++i) progress[i] = b.addState();
  StateId wrongOrder = b.addState();
  StateId firing = b.addState();
  StateId fired = b.addState();
  b.setInitial(progress[0]);
  for (const std::string& in : orderedFiringInputs) b.input(in);
  b.output(firingOutput);
  for (std::uint32_t i = 0; i < n; ++i) {
    // The expected next input advances the progress counter...
    StateId next = (i + 1 == n) ? firing : progress[i + 1];
    b.interactive(progress[i], orderedFiringInputs[i], next);
    // ...any later input arriving early spoils the order forever.
    for (std::uint32_t j = i + 1; j < n; ++j)
      b.interactive(progress[i], orderedFiringInputs[j], wrongOrder);
  }
  b.interactive(firing, firingOutput, fired);
  return std::move(b).build();
}

IOIMC orAuxiliary(SymbolTablePtr symbols, const std::string& name,
                  const std::vector<std::string>& inputs,
                  const std::string& output) {
  require(!inputs.empty(), "orAuxiliary '" + name + "': no inputs");
  IOIMCBuilder b("AUX_" + name, std::move(symbols));
  StateId idle = b.addState();
  StateId firing = b.addState();
  StateId fired = b.addState();
  b.setInitial(idle);
  for (const std::string& in : inputs) {
    b.input(in);
    b.interactive(idle, in, firing);
  }
  b.output(output);
  b.interactive(firing, output, fired);
  return std::move(b).build();
}

IOIMC inhibitionAuxiliary(SymbolTablePtr symbols, const std::string& name,
                          const std::string& isolatedFiringInput,
                          const std::vector<std::string>& inhibitorInputs,
                          const std::string& firingOutput) {
  require(!inhibitorInputs.empty(),
          "inhibitionAuxiliary '" + name + "': no inhibitors");
  IOIMCBuilder b("IA_" + name, std::move(symbols));
  StateId idle = b.addState();
  StateId firing = b.addState();
  StateId fired = b.addState();
  StateId inhibited = b.addState();  // absorbing operational state
  b.setInitial(idle);
  b.input(isolatedFiringInput);
  b.interactive(idle, isolatedFiringInput, firing);
  for (const std::string& in : inhibitorInputs) {
    b.input(in);
    // An inhibitor firing first prevents the failure forever; once we are
    // firing (the element already failed) it has no effect.
    b.interactive(idle, in, inhibited);
  }
  b.output(firingOutput);
  b.interactive(firing, firingOutput, fired);
  return std::move(b).build();
}

IOIMC monitor(SymbolTablePtr symbols, const std::string& firingInput,
              const std::optional<std::string>& repairInput,
              const std::string& downLabel) {
  IOIMCBuilder b("MONITOR", std::move(symbols));
  StateId up = b.addState();
  StateId down = b.addState();
  b.setInitial(up);
  b.input(firingInput);
  b.interactive(up, firingInput, down);
  if (repairInput) {
    b.input(*repairInput);
    b.interactive(down, *repairInput, up);
  }
  b.label(down, downLabel);
  return std::move(b).build();
}

IOIMC repairableBasicEvent(SymbolTablePtr symbols, const std::string& name,
                           double lambda, double mu, double dormancy,
                           const std::optional<std::string>& activationInput,
                           const std::string& firingOutput,
                           const std::string& repairOutput,
                           std::uint32_t phases) {
  require(lambda > 0.0 && mu > 0.0,
          "repairableBasicEvent '" + name + "': rates must be positive");
  require(dormancy >= 0.0 && dormancy <= 1.0,
          "repairableBasicEvent '" + name + "': dormancy must be in [0,1]");
  require(phases >= 1,
          "repairableBasicEvent '" + name + "': phases must be >= 1");
  IOIMCBuilder b("BE_" + name, std::move(symbols));
  const bool startsActive = !activationInput || dormancy == 1.0;

  // Two mode tracks (dormant / active) over phases up[0..k-1] -> firing ->
  // down -> repaired -> up[0].  Activation is permanent and preserves the
  // Erlang phase; repair restarts the failure process from phase 0.
  struct Track {
    std::vector<StateId> up;
    StateId firing, down, repaired;
  };
  auto makeTrack = [&b, phases]() {
    Track t;
    for (std::uint32_t i = 0; i < phases; ++i) t.up.push_back(b.addState());
    t.firing = b.addState();
    t.down = b.addState();
    t.repaired = b.addState();
    return t;
  };
  b.output(firingOutput);
  b.output(repairOutput);

  Track active = makeTrack();
  for (std::uint32_t i = 0; i < phases; ++i)
    b.markovian(active.up[i], lambda,
                i + 1 < phases ? active.up[i + 1] : active.firing);
  b.interactive(active.firing, firingOutput, active.down);
  b.markovian(active.down, mu, active.repaired);
  b.interactive(active.repaired, repairOutput, active.up[0]);

  if (startsActive) {
    b.setInitial(active.up[0]);
    return std::move(b).build();
  }

  Track dormant = makeTrack();
  for (std::uint32_t i = 0; i < phases && dormancy > 0.0; ++i)
    b.markovian(dormant.up[i], dormancy * lambda,
                i + 1 < phases ? dormant.up[i + 1] : dormant.firing);
  b.interactive(dormant.firing, firingOutput, dormant.down);
  b.markovian(dormant.down, mu, dormant.repaired);
  b.interactive(dormant.repaired, repairOutput, dormant.up[0]);

  b.input(*activationInput);
  for (std::uint32_t i = 0; i < phases; ++i)
    b.interactive(dormant.up[i], *activationInput, active.up[i]);
  b.interactive(dormant.firing, *activationInput, active.firing);
  b.interactive(dormant.down, *activationInput, active.down);
  b.interactive(dormant.repaired, *activationInput, active.repaired);
  b.setInitial(dormant.up[0]);
  return std::move(b).build();
}

IOIMC repairableThresholdGate(SymbolTablePtr symbols, const std::string& name,
                              GateThreshold threshold,
                              const std::vector<RepairableInput>& inputs,
                              const std::string& firingOutput,
                              const std::string& repairOutput) {
  const std::uint32_t n = static_cast<std::uint32_t>(inputs.size());
  const std::uint32_t k = threshold.failuresToFire;
  require(n >= 1, "repairableThresholdGate '" + name + "': no inputs");
  require(k >= 1 && k <= n,
          "repairableThresholdGate '" + name + "': threshold out of range");
  IOIMCBuilder b("GATE_" + name, std::move(symbols));
  b.output(firingOutput);
  b.output(repairOutput);
  for (const RepairableInput& in : inputs) {
    b.input(in.firingInput);
    if (in.repairInput) b.input(*in.repairInput);
  }

  // State = (currently failed count, reported status).  When the count
  // crosses the threshold upwards the gate announces f!, when it crosses
  // back down it announces r! (Fig. 14 generalized).
  std::vector<StateId> up(n + 1), down(n + 1);
  for (std::uint32_t c = 0; c <= n; ++c) {
    up[c] = b.addState();
    down[c] = b.addState();
  }
  b.setInitial(up[0]);
  for (std::uint32_t c = 0; c <= n; ++c) {
    for (const RepairableInput& in : inputs) {
      if (c < n) {
        b.interactive(up[c], in.firingInput, up[c + 1]);
        b.interactive(down[c], in.firingInput, down[c + 1]);
      }
      if (in.repairInput && c > 0) {
        b.interactive(up[c], *in.repairInput, up[c - 1]);
        b.interactive(down[c], *in.repairInput, down[c - 1]);
      }
    }
    // Urgent announcements when the reported status disagrees with the
    // count.  These states are unstable: the output happens immediately.
    if (c >= k) b.interactive(up[c], firingOutput, down[c]);
    if (c < k) b.interactive(down[c], repairOutput, up[c]);
  }
  return std::move(b).build();
}

}  // namespace imcdft::semantics
