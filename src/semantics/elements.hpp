#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ioimc/model.hpp"

/// \file elements.hpp
/// Elementary I/O-IMC models of the DFT elements (Figs. 3-5 and 12-14 of
/// the paper, generalized to arbitrary arity per [9]).  The spare gate
/// lives in spare_gate.hpp.
///
/// All unrepairable gate models rely on the *single-firing discipline*:
/// in any community our converter produces, each firing signal is output at
/// most once (fired states are absorbing), so counting failed inputs is
/// exact.  Subset-tracking variants exist for the ablation benchmark.

namespace imcdft::semantics {

/// Basic event (Fig. 3).  \p dormancy is alpha: the dormant failure rate is
/// alpha * lambda.  When \p activationInput is empty the event starts (and
/// stays) active; a hot event (alpha == 1) never listens for activation.
/// \p phases generalizes the failure delay to an Erlang(phases, lambda)
/// distribution — the paper's future-work item (3); activation preserves
/// the phase already reached.
ioimc::IOIMC basicEvent(ioimc::SymbolTablePtr symbols, const std::string& name,
                        double lambda, double dormancy,
                        const std::optional<std::string>& activationInput,
                        const std::string& firingOutput,
                        std::uint32_t phases = 1);

/// Logic of a counting threshold gate.
struct GateThreshold {
  std::uint32_t failuresToFire;  ///< AND: n, OR: 1, K/M: k
};

/// AND / OR / K-of-M gate via failure counting.
ioimc::IOIMC countingGate(ioimc::SymbolTablePtr symbols,
                          const std::string& name, GateThreshold threshold,
                          const std::vector<std::string>& firingInputs,
                          const std::string& firingOutput);

/// AND / OR / K-of-M gate tracking the exact failed subset (exponentially
/// larger; used to benchmark the counting optimization).
ioimc::IOIMC subsetGate(ioimc::SymbolTablePtr symbols, const std::string& name,
                        GateThreshold threshold,
                        const std::vector<std::string>& firingInputs,
                        const std::string& firingOutput);

/// Priority-AND (Fig. 4): fires when all inputs fail in left-to-right
/// order; a wrong-order failure moves it to an absorbing operational state.
ioimc::IOIMC pandGate(ioimc::SymbolTablePtr symbols, const std::string& name,
                      const std::vector<std::string>& orderedFiringInputs,
                      const std::string& firingOutput);

/// OR-shaped auxiliary: fires once any input fires.  Used for the firing
/// auxiliary of FDEP dependents (Fig. 5, inputs = {f*_A, f_T1, ...}) and
/// for the activation auxiliary of shared spares (inputs = {a_S.G1, ...}).
ioimc::IOIMC orAuxiliary(ioimc::SymbolTablePtr symbols, const std::string& name,
                         const std::vector<std::string>& inputs,
                         const std::string& output);

/// Inhibition auxiliary (Fig. 12): forwards fi_X as f_X unless one of the
/// inhibitors fired first, in which case X can never fail.
ioimc::IOIMC inhibitionAuxiliary(ioimc::SymbolTablePtr symbols,
                                 const std::string& name,
                                 const std::string& isolatedFiringInput,
                                 const std::vector<std::string>& inhibitorInputs,
                                 const std::string& firingOutput);

/// Top-event observer.  Moves to a state labelled \p downLabel when the
/// watched firing signal arrives; with a repair input it toggles back.
ioimc::IOIMC monitor(ioimc::SymbolTablePtr symbols,
                     const std::string& firingInput,
                     const std::optional<std::string>& repairInput,
                     const std::string& downLabel = "down");

/// Repairable basic event (Fig. 13 generalized to warm events): fails with
/// the dormancy-scaled rate, is repaired with rate \p mu, and announces
/// repairs on \p repairOutput.  Repair returns the event to its active
/// state once activation has been received.
ioimc::IOIMC repairableBasicEvent(ioimc::SymbolTablePtr symbols,
                                  const std::string& name, double lambda,
                                  double mu, double dormancy,
                                  const std::optional<std::string>& activationInput,
                                  const std::string& firingOutput,
                                  const std::string& repairOutput,
                                  std::uint32_t phases = 1);

/// One input of a repairable gate: its firing signal and, when the input is
/// itself repairable, its repair signal.
struct RepairableInput {
  std::string firingInput;
  std::optional<std::string> repairInput;
};

/// Repairable AND / OR / K-of-M gate (Fig. 14 generalized): announces f!
/// when the number of currently-failed inputs reaches the threshold and r!
/// when it drops below again.
ioimc::IOIMC repairableThresholdGate(ioimc::SymbolTablePtr symbols,
                                     const std::string& name,
                                     GateThreshold threshold,
                                     const std::vector<RepairableInput>& inputs,
                                     const std::string& firingOutput,
                                     const std::string& repairOutput);

}  // namespace imcdft::semantics
