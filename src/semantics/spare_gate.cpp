#include "semantics/spare_gate.hpp"

#include <map>

#include "common/error.hpp"
#include "ioimc/builder.hpp"

namespace imcdft::semantics {

using ioimc::IOIMC;
using ioimc::IOIMCBuilder;
using ioimc::StateId;
using ioimc::SymbolTablePtr;

namespace {

enum class CompStatus : std::uint8_t { Fresh, Failed, Taken };

enum class Phase : std::uint8_t {
  Idle,
  ActivatePrimary,  ///< about to emit the primary activation signal
  Claim,            ///< about to emit claimTarget's claim signal
  Firing,           ///< about to emit f_G
  Fired,            ///< absorbing
};

/// Semantic state of the gate; used as the BFS key.
struct SemState {
  bool active = false;
  bool primaryActivated = false;
  bool primaryFailed = false;
  std::int8_t current = -1;  ///< -1 none, 0 primary, i >= 1 spare i-1
  Phase phase = Phase::Idle;
  std::int8_t claimTarget = -1;  ///< spare index when phase == Claim
  std::vector<CompStatus> spares;

  auto key() const {
    return std::make_tuple(active, primaryActivated, primaryFailed, current,
                           static_cast<int>(phase), claimTarget, spares);
  }
  bool operator<(const SemState& o) const { return key() < o.key(); }
};

/// Recomputes the phase / current component after any event.
void plan(SemState& s, bool hasPrimaryActivation) {
  if (s.phase == Phase::Fired) return;
  s.claimTarget = -1;
  auto fireCondition = [&s]() {
    if (!s.primaryFailed) return false;
    for (CompStatus c : s.spares)
      if (c == CompStatus::Fresh) return false;
    return true;
  };
  if (!s.active) {
    // Dormant gates only watch; they may still exhaust all components.
    s.current = -1;
    s.phase = fireCondition() ? Phase::Firing : Phase::Idle;
    return;
  }
  // Keep the component currently in use when it is still fine.
  if (s.current == 0 && !s.primaryFailed) {
    s.phase = Phase::Idle;
    return;
  }
  if (s.current >= 1 && s.spares[s.current - 1] == CompStatus::Fresh) {
    s.phase = Phase::Idle;
    return;
  }
  s.current = -1;
  if (!s.primaryFailed) {
    if (hasPrimaryActivation && !s.primaryActivated) {
      s.phase = Phase::ActivatePrimary;
    } else {
      s.current = 0;
      s.phase = Phase::Idle;
    }
    return;
  }
  for (std::size_t i = 0; i < s.spares.size(); ++i) {
    if (s.spares[i] == CompStatus::Fresh) {
      s.phase = Phase::Claim;
      s.claimTarget = static_cast<std::int8_t>(i);
      return;
    }
  }
  s.phase = Phase::Firing;  // primary failed and no spare usable
}

}  // namespace

IOIMC spareGate(SymbolTablePtr symbols, const SpareGateSpec& spec) {
  require(!spec.spares.empty(),
          "spareGate '" + spec.name + "': needs at least one spare");
  require(spec.spares.size() <= 120,
          "spareGate '" + spec.name + "': too many spares");
  const bool hasPrimaryActivation = spec.primaryActivationOutput.has_value();
  const std::size_t n = spec.spares.size();

  IOIMCBuilder b("SPARE_" + spec.name, std::move(symbols));
  if (spec.activationInput) b.input(*spec.activationInput);
  if (spec.primaryActivationOutput) b.output(*spec.primaryActivationOutput);
  b.input(spec.primaryFiringInput);
  b.output(spec.firingOutput);
  for (const SpareSlot& slot : spec.spares) {
    b.input(slot.firingInput);
    b.output(slot.claimOutput);
    for (const std::string& other : slot.otherClaimInputs) b.input(other);
  }

  SemState init;
  init.active = !spec.activationInput.has_value();
  init.spares.assign(n, CompStatus::Fresh);
  plan(init, hasPrimaryActivation);

  std::map<SemState, StateId> ids;
  std::vector<SemState> todo;
  auto stateOf = [&](const SemState& s) {
    auto [it, inserted] = ids.try_emplace(s, 0);
    if (inserted) {
      it->second = b.addState();
      todo.push_back(s);
    }
    return it->second;
  };
  b.setInitial(stateOf(init));

  // Event application: mutate a copy and re-plan; returns the new state.
  auto applyInput = [&](const SemState& s, auto&& mutate) {
    SemState next = s;
    if (next.phase != Phase::Fired) {
      mutate(next);
      plan(next, hasPrimaryActivation);
    }
    return next;
  };

  while (!todo.empty()) {
    SemState s = todo.back();
    todo.pop_back();
    StateId from = ids.at(s);

    auto addInput = [&](const std::string& action, const SemState& next) {
      if (next.key() != s.key()) b.interactive(from, action, stateOf(next));
    };

    // --- Inputs (enabled in every state; self-loops stay implicit). ---
    if (spec.activationInput) {
      addInput(*spec.activationInput,
               applyInput(s, [](SemState& x) { x.active = true; }));
    }
    addInput(spec.primaryFiringInput, applyInput(s, [](SemState& x) {
               x.primaryFailed = true;
               if (x.current == 0) x.current = -1;
             }));
    for (std::size_t i = 0; i < n; ++i) {
      addInput(spec.spares[i].firingInput, applyInput(s, [i](SemState& x) {
                 x.spares[i] = CompStatus::Failed;
                 if (x.current == static_cast<std::int8_t>(i) + 1)
                   x.current = -1;
               }));
      for (const std::string& other : spec.spares[i].otherClaimInputs) {
        addInput(other, applyInput(s, [i](SemState& x) {
                   if (x.spares[i] == CompStatus::Fresh)
                     x.spares[i] = CompStatus::Taken;
                   if (x.current == static_cast<std::int8_t>(i) + 1)
                     x.current = -1;
                 }));
      }
    }

    // --- Output of the current phase. ---
    switch (s.phase) {
      case Phase::Idle:
      case Phase::Fired:
        break;
      case Phase::ActivatePrimary: {
        SemState next = s;
        next.primaryActivated = true;
        next.current = 0;
        next.phase = Phase::Idle;
        plan(next, hasPrimaryActivation);
        b.interactive(from, *spec.primaryActivationOutput, stateOf(next));
        break;
      }
      case Phase::Claim: {
        SemState next = s;
        next.current = static_cast<std::int8_t>(s.claimTarget) + 1;
        next.claimTarget = -1;
        next.phase = Phase::Idle;
        b.interactive(from, spec.spares[s.claimTarget].claimOutput,
                      stateOf(next));
        break;
      }
      case Phase::Firing: {
        SemState next = s;
        next.phase = Phase::Fired;
        next.current = -1;
        next.claimTarget = -1;
        b.interactive(from, spec.firingOutput, stateOf(next));
        break;
      }
    }
  }
  return std::move(b).build();
}

}  // namespace imcdft::semantics
