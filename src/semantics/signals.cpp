#include "semantics/signals.hpp"

namespace imcdft::semantics {

std::string firingSignal(const std::string& name) { return "f_" + name; }

std::string isolatedFiringSignal(const std::string& name) {
  return "fi_" + name;
}

std::string activationSignal(const std::string& name) { return "a_" + name; }

std::string claimSignal(const std::string& name, const std::string& gate) {
  return "a_" + name + "." + gate;
}

std::string repairSignal(const std::string& name) { return "r_" + name; }

}  // namespace imcdft::semantics
