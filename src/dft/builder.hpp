#pragma once

#include <string>
#include <vector>

#include "dft/model.hpp"

/// \file builder.hpp
/// Programmatic construction of DFTs (the quickstart example uses this;
/// files use parseGalileo()).  Inputs may be referenced by name before they
/// are declared; resolution happens in build().

namespace imcdft::dft {

class DftBuilder {
 public:
  /// Adds a basic event.  \p dormancy is the factor alpha of Section 2
  /// (0 = cold, 1 = hot).  When left unspecified it defaults to hot, except
  /// for basic events directly attached as spares: a csp implies 0, an hsp
  /// implies 1, and a wsp demands an explicit value.  \p repairRate enables
  /// the Section 7.2 repair extension.
  DftBuilder& basicEvent(const std::string& name, double lambda,
                         std::optional<double> dormancy = std::nullopt,
                         std::optional<double> repairRate = std::nullopt,
                         std::uint32_t phases = 1);

  DftBuilder& andGate(const std::string& name,
                      const std::vector<std::string>& inputs);
  DftBuilder& orGate(const std::string& name,
                     const std::vector<std::string>& inputs);
  /// Fails when at least \p k of the inputs have failed.
  DftBuilder& votingGate(const std::string& name, std::uint32_t k,
                         const std::vector<std::string>& inputs);
  /// Fails when all inputs fail in left-to-right order.
  DftBuilder& pandGate(const std::string& name,
                       const std::vector<std::string>& inputs);
  /// inputs[0] is the primary, the rest are spares in claim order.
  DftBuilder& spareGate(const std::string& name, SpareKind kind,
                        const std::vector<std::string>& inputs);
  /// Sequence-enforcing gate (analysed as a cold spare, footnote 4).
  DftBuilder& seqGate(const std::string& name,
                      const std::vector<std::string>& inputs);
  /// The failure of \p trigger immediately fails every element of
  /// \p dependents.
  DftBuilder& fdep(const std::string& name, const std::string& trigger,
                   const std::vector<std::string>& dependents);
  /// The failure of \p inhibitor, if it happens first, prevents the failure
  /// of \p target (Section 7.1).
  DftBuilder& inhibition(const std::string& inhibitor,
                         const std::string& target);
  /// Pairwise mutual exclusion between all named elements.
  DftBuilder& mutex(const std::vector<std::string>& elements);

  DftBuilder& top(const std::string& name);

  /// Resolves names, applies the csp/hsp dormancy defaults to directly
  /// attached spare basic events, validates, and returns the tree.
  Dft build();

 private:
  struct PendingElement {
    Element element;                    // inputs filled during build()
    std::vector<std::string> inputNames;
    bool dormancyExplicit = false;
  };
  PendingElement& add(const std::string& name, ElementType type);

  std::vector<PendingElement> pending_;
  std::vector<std::pair<std::string, std::string>> inhibitions_;
  std::string topName_;
};

}  // namespace imcdft::dft
