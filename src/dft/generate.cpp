#include "dft/generate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

// The generator certifies its outputs against the conversion pipeline's
// structural rules (checkConvertible, activation contexts) so every tree
// it emits is analyzable by all three backends.  This reaches up into
// analysis/ from dft/ — acceptable inside the one static library, and
// exactly the coupling the certification is about.
#include "analysis/converter.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dft/builder.hpp"

namespace imcdft::dft {

namespace {

/// Everything one generation attempt accumulates.
struct GenState {
  SplitMix64 rng;
  GeneratorOptions opts;
  bool repairable = false;
  std::uint32_t elements = 0;  ///< elements created so far
  std::uint32_t beCounter = 0;
  std::uint32_t gateCounter = 0;
  DftBuilder builder;
  /// Basic events reusable as extra gate inputs (never spare slots).
  std::vector<std::string> shareableBes;
  /// Basic events attached as spares (reusable as *shared* spares only).
  std::vector<std::string> sparePool;
  /// Every element name in creation order, gates flagged (FDEP triggers).
  std::vector<std::pair<std::string, bool>> all;  ///< (name, isGate)
  std::vector<std::string> fdepDependents;
  std::vector<std::string> inhibited;

  explicit GenState(std::uint64_t streamSeed, const GeneratorOptions& o)
      : rng(streamSeed), opts(o) {}

  bool armed(std::uint32_t arm) const { return (opts.arms & arm) != 0; }
  bool budgetLeft() const { return elements < opts.maxElements; }

  double randomRate(double lo, double hi) {
    // 3-decimal rounding keeps Galileo repro files short and exact.
    return std::round((lo + (hi - lo) * rng.uniform()) * 1000.0) / 1000.0;
  }

  std::string newBasicEvent(bool shareable, double dormancy = 1.0,
                            bool dormancyExplicit = false) {
    std::string name = "e" + std::to_string(beCounter++);
    double lambda = randomRate(opts.lambdaMin, opts.lambdaMax);
    std::optional<double> mu;
    if (repairable && armed(ArmRepair) && rng.chance(0.7))
      mu = randomRate(0.5, 3.0);
    std::uint32_t phases = 1;
    if (armed(ArmErlang) && rng.chance(0.15))
      phases = static_cast<std::uint32_t>(rng.range(2, 3));
    builder.basicEvent(name, lambda,
                       dormancyExplicit ? std::optional<double>(dormancy)
                                        : std::nullopt,
                       mu, phases);
    ++elements;
    all.emplace_back(name, false);
    if (shareable) shareableBes.push_back(name);
    return name;
  }

  std::string newGateName() { return "g" + std::to_string(gateCounter++); }
};

/// The gate vocabulary available at this tree's settings.
std::vector<ElementType> gateVocabulary(const GenState& s) {
  std::vector<ElementType> vocab;
  if (s.armed(ArmAnd)) vocab.push_back(ElementType::And);
  if (s.armed(ArmOr)) vocab.push_back(ElementType::Or);
  if (s.armed(ArmVoting)) vocab.push_back(ElementType::Voting);
  if (!s.repairable) {
    if (s.armed(ArmPand)) vocab.push_back(ElementType::Pand);
    if (s.armed(ArmSpare)) vocab.push_back(ElementType::Spare);
  }
  // Every mask yields at least AND/OR so generation always terminates in
  // valid structure (the arm mask is a vocabulary *restriction*).
  if (vocab.empty()) {
    vocab.push_back(ElementType::And);
    vocab.push_back(ElementType::Or);
  }
  return vocab;
}

std::string genSubtree(GenState& s, std::uint32_t depth);

/// A leaf input: fresh basic event, or (ArmShare) a previously created
/// shared one.  Sharing stays outside spare slots — slot subtrees must be
/// structurally independent (Section 6.1).
std::string genLeaf(GenState& s) {
  if (s.armed(ArmShare) && !s.shareableBes.empty() &&
      s.rng.chance(s.opts.shareProbability)) {
    return s.shareableBes[s.rng.below(s.shareableBes.size())];
  }
  return s.newBasicEvent(/*shareable=*/true);
}

std::string genGate(GenState& s, std::uint32_t depth) {
  const std::vector<ElementType> vocab = gateVocabulary(s);
  const ElementType type = vocab[s.rng.below(vocab.size())];
  const std::string name = s.newGateName();
  ++s.elements;

  if (type == ElementType::Spare) {
    // Primary: a dedicated fresh basic event (a primary may belong to
    // exactly one spare gate and never doubles as a spare).  Spares:
    // fresh events with an explicit dormancy from the warm/cold sweep, or
    // a shared spare from another gate's pool (the CAS pump-unit shape).
    const std::uint64_t kindDraw = s.rng.below(3);
    const SpareKind kind = kindDraw == 0   ? SpareKind::Cold
                           : kindDraw == 1 ? SpareKind::Warm
                                           : SpareKind::Hot;
    std::vector<std::string> inputs;
    inputs.push_back(s.newBasicEvent(/*shareable=*/false));
    const std::uint64_t spares = s.rng.range(1, 2);
    for (std::uint64_t i = 0; i < spares; ++i) {
      if (s.armed(ArmShare) && !s.sparePool.empty() && s.rng.chance(0.4)) {
        const std::string& shared =
            s.sparePool[s.rng.below(s.sparePool.size())];
        if (std::find(inputs.begin(), inputs.end(), shared) == inputs.end()) {
          inputs.push_back(shared);
          continue;
        }
      }
      // Dormancy sweep: cold pins 0, hot pins 1, warm sweeps the middle.
      double dorm = kind == SpareKind::Cold   ? 0.0
                    : kind == SpareKind::Hot  ? 1.0
                                              : 0.1 + 0.2 * s.rng.below(5);
      std::string spare =
          s.newBasicEvent(/*shareable=*/false, dorm, /*explicit=*/true);
      s.sparePool.push_back(spare);
      inputs.push_back(spare);
    }
    s.builder.spareGate(name, kind, inputs);
    s.all.emplace_back(name, true);
    return name;
  }

  // Input lists must be duplicate-free; sharing can offer the same event
  // twice, so collect into an order-preserving set.
  auto addUnique = [](std::vector<std::string>& v, std::string in) {
    if (std::find(v.begin(), v.end(), in) == v.end())
      v.push_back(std::move(in));
  };
  std::uint64_t want =
      type == ElementType::Pand
          ? s.rng.range(2, std::min<std::uint64_t>(3, s.opts.maxChildren))
          : s.rng.range(2, s.opts.maxChildren);
  std::vector<std::string> inputs;
  for (std::uint64_t i = 0; i < want; ++i)
    addUnique(inputs, genSubtree(s, depth));
  while (inputs.size() < 2) addUnique(inputs, s.newBasicEvent(true));

  switch (type) {
    case ElementType::And:
      s.builder.andGate(name, inputs);
      break;
    case ElementType::Or:
      s.builder.orGate(name, inputs);
      break;
    case ElementType::Voting:
      s.builder.votingGate(
          name, static_cast<std::uint32_t>(s.rng.range(1, inputs.size())),
          inputs);
      break;
    case ElementType::Pand:
      s.builder.pandGate(name, inputs);
      break;
    default:
      s.builder.andGate(name, inputs);
      break;
  }
  s.all.emplace_back(name, true);
  return name;
}

std::string genSubtree(GenState& s, std::uint32_t depth) {
  if (depth == 0 || !s.budgetLeft() || s.rng.chance(0.35)) return genLeaf(s);
  return genGate(s, depth - 1);
}

bool isListed(const std::vector<std::string>& v, const std::string& x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// FDEP pass: triggers are arbitrary existing elements, dependents are
/// existing basic events (occasionally a gate, Fig. 10.c).  Multi-
/// dependent triggers are kept on purpose: simultaneous kills are the
/// paper's Section 4.4 source of nondeterminism and the oracle must
/// handle them (bounds comparison).
void addFdeps(GenState& s) {
  if (s.repairable || !s.armed(ArmFdep) || !s.rng.chance(0.5)) return;
  const std::uint64_t count = s.rng.range(1, 2);
  for (std::uint64_t f = 0; f < count; ++f) {
    const auto& trigger = s.all[s.rng.below(s.all.size())];
    std::vector<std::string> dependents;
    const std::uint64_t want = s.rng.range(1, 2);
    for (std::uint64_t d = 0; d < want; ++d) {
      const bool allowGate = s.rng.chance(0.15);
      // Rejection-sample a dependent distinct from the trigger.
      for (int tries = 0; tries < 8; ++tries) {
        const auto& cand = s.all[s.rng.below(s.all.size())];
        if (cand.second && !allowGate) continue;
        if (cand.first == trigger.first) continue;
        if (isListed(dependents, cand.first)) continue;
        dependents.push_back(cand.first);
        break;
      }
    }
    if (dependents.empty()) continue;
    s.builder.fdep("f" + std::to_string(f), trigger.first, dependents);
    for (const std::string& d : dependents) s.fdepDependents.push_back(d);
  }
}

/// Inhibition/mutex pass over shared-vocabulary basic events.  FDEP
/// dependents are excluded (auxiliary stacking is undefined in the
/// paper), as are repairable trees (no repairable inhibitions).
void addInhibitions(GenState& s) {
  if (s.repairable) return;
  auto pickPlain = [&]() -> std::string {
    for (int tries = 0; tries < 8; ++tries) {
      const std::string& cand =
          s.shareableBes[s.rng.below(s.shareableBes.size())];
      if (isListed(s.fdepDependents, cand)) continue;
      return cand;
    }
    return "";
  };
  if (s.armed(ArmInhibit) && s.shareableBes.size() >= 2 && s.rng.chance(0.3)) {
    std::string inhibitor = pickPlain();
    std::string target = pickPlain();
    if (!inhibitor.empty() && !target.empty() && inhibitor != target) {
      s.builder.inhibition(inhibitor, target);
      s.inhibited.push_back(target);
    }
  }
  if (s.armed(ArmMutex) && s.shareableBes.size() >= 2 && s.rng.chance(0.2)) {
    std::vector<std::string> group;
    const std::uint64_t want = s.rng.range(2, 3);
    for (std::uint64_t i = 0; i < want; ++i) {
      std::string cand = pickPlain();
      if (!cand.empty() && !isListed(group, cand)) group.push_back(cand);
    }
    if (group.size() >= 2) s.builder.mutex(group);
  }
}

/// One full generation attempt.  Throws (Error subclasses) when a random
/// structural clash slips through; the caller retries with tamer arms.
Dft attempt(std::uint64_t streamSeed, GeneratorOptions opts) {
  GenState s(streamSeed, opts);
  s.repairable =
      s.armed(ArmRepair) && s.rng.chance(opts.repairableProbability);
  (void)genGate(s, std::max<std::uint32_t>(1, opts.maxDepth));
  s.builder.top(s.all.back().first);
  addFdeps(s);
  addInhibitions(s);
  Dft tree = s.builder.build();
  // Certify the tree against the full conversion pipeline's structural
  // rules so every backend accepts it.
  analysis::checkConvertible(tree);
  (void)analysis::activationContexts(tree);
  return tree;
}

}  // namespace

Dft generateDft(std::uint64_t seed, const GeneratorOptions& opts) {
  // Each attempt draws from its own derived stream, so a retry never
  // shifts the randomness of other seeds and the mapping stays total.
  // Attempt 1 drops sharing (the one mechanism that can produce
  // structural clashes across modules); attempt 2 falls back to the
  // always-valid static vocabulary.
  for (int a = 0; a < 3; ++a) {
    GeneratorOptions tuned = opts;
    if (a >= 1) tuned.arms &= ~static_cast<std::uint32_t>(ArmShare);
    if (a >= 2) tuned.arms &= kStaticArms | ArmErlang | ArmRepair;
    try {
      return attempt(splitmix64(seed, static_cast<std::uint64_t>(a)), tuned);
    } catch (const Error&) {
      if (a == 2) throw;  // static attempts cannot clash; surface the bug
    }
  }
  throw Error("generateDft: unreachable");
}

std::uint32_t parseArms(const std::string& text) {
  static const std::pair<const char*, std::uint32_t> kNames[] = {
      {"and", ArmAnd},        {"or", ArmOr},       {"voting", ArmVoting},
      {"pand", ArmPand},      {"spare", ArmSpare}, {"fdep", ArmFdep},
      {"repair", ArmRepair},  {"inhibit", ArmInhibit},
      {"mutex", ArmMutex},    {"erlang", ArmErlang},
      {"share", ArmShare},    {"all", kAllArms},   {"static", kStaticArms},
  };
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string word = text.substr(pos, comma - pos);
    if (!word.empty()) {
      bool found = false;
      for (const auto& [name, bit] : kNames)
        if (word == name) {
          mask |= bit;
          found = true;
          break;
        }
      require(found, "parseArms: unknown arm '" + word + "'");
    }
    pos = comma + 1;
  }
  require(mask != 0, "parseArms: empty arm list");
  return mask;
}

std::string describeArms(std::uint32_t mask) {
  static const std::pair<const char*, std::uint32_t> kNames[] = {
      {"and", ArmAnd},       {"or", ArmOr},           {"voting", ArmVoting},
      {"pand", ArmPand},     {"spare", ArmSpare},     {"fdep", ArmFdep},
      {"repair", ArmRepair}, {"inhibit", ArmInhibit}, {"mutex", ArmMutex},
      {"erlang", ArmErlang}, {"share", ArmShare},
  };
  std::string out;
  for (const auto& [name, bit] : kNames)
    if (mask & bit) {
      if (!out.empty()) out += ',';
      out += name;
    }
  return out;
}

}  // namespace imcdft::dft
