#pragma once

#include <string>

#include "dft/model.hpp"

/// \file corpus.hpp
/// The example systems of the paper, reconstructed from Sections 5-7, plus
/// a parametric family used by the scaling benchmark.  Each model is also
/// available as Galileo text (galileo* functions) so the parser round-trip
/// is exercised.

namespace imcdft::dft::corpus {

/// Section 5.1: the cardiac assist system (CAS, Fig. 7).
///  * CPU unit: warm spare P/B, both FDEP-triggered by CS or SS;
///  * motor unit: spare MA/MB, switch MS relevant only before MA
///    (PAND(MS, MA) FDEP-kills the spare MB);
///  * pump unit: two primary pumps PA/PB sharing the cold spare PS, all
///    three must fail.
/// Expected unreliability at t = 1: 0.6579 (both the paper's tool and
/// Galileo DIFTree).
std::string galileoCas();
Dft cas();

/// Section 5.2: the cascaded PAND system (CPS, Fig. 8): PAND over module A
/// and PAND(C, D), where A, C, D are AND gates over four basic events each
/// (all rates 1).  Expected unreliability at t = 1: 0.00135.
std::string galileoCps();
Dft cps();

/// The CPS family generalized: \p modules AND gates with \p besPerModule
/// basic events each, cascaded under a chain of PANDs (modules >= 2).
Dft cascadedPands(int modules, int besPerModule, double lambda = 1.0);

/// Deep PAND-over-module chains for the on-the-fly benchmarks (E15):
/// \p depth dynamic units U_k — each an OR of an AND chain over \p width
/// basic events and a warm-spare power slot — cascaded under a
/// right-leaning chain of PANDs, with level-specific rates so no two units
/// share a module shape.  The PANDs above every unit make static
/// combination ineligible and the chain of top-level compositions long —
/// exactly the workload whose peak memory the fused compose-and-minimize
/// engine targets (depth >= 2, width >= 1).
Dft cascadedPand(int depth, int width);

/// Symmetric-replica family for the symmetry benchmarks: \p units clones
/// of the full cardiac assist system (CPU, motor and pump units, Fig. 7)
/// under a top-level OR, each clone's element names suffixed "_k".  All
/// clones share one module shape, so the symmetry reduction aggregates a
/// single representative and instantiates the other units by renaming
/// (units >= 1).
Dft clonedCas(int units);

/// Symmetric-replica family in the CPS tradition: \p banks replicated
/// sensor banks under a 2-of-N voting top.  Each bank is a dynamic module
/// PAND(A_k, B_k) whose two sides are AND chains over \p sensorsPerBank
/// basic events (all rates 1) — so the banks form one shape bucket, and
/// inside each bank the two chains form another (banks >= 2,
/// sensorsPerBank >= 1).
Dft sensorBanks(int banks, int sensorsPerBank);

/// Voter-farm family for the static-combination benchmarks: \p units
/// replicated dynamic units under a \p need-of-units VOTING top.  Each
/// unit fails when its control chain (PAND over two basic events) or its
/// power slot (warm spare) fails, so the per-unit OR and the voting top
/// form a multi-gate static layer over 2·units independent dynamic
/// modules — the shape the numeric combination path solves without ever
/// building the joint product (units >= 2, 1 <= need <= units).
Dft voterFarm(int units, int need);

/// Fig. 6.a: an FDEP trigger kills both PAND inputs simultaneously —
/// inherently nondeterministic (the PAND may or may not fire).
Dft figure6a();

/// Fig. 6.b: an FDEP trigger kills both primaries of two spare gates
/// sharing one spare — the claim race is nondeterministic.  The gates feed
/// a PAND so the race is observable in the measure (under a symmetric AND
/// the two resolutions are weakly bisimilar and aggregation correctly
/// removes the nondeterminism).
Dft figure6b();

/// Fig. 10.a: a spare gate whose primary and spare are AND modules.
Dft figure10a();

/// Fig. 10.b: nested spare gates — the spare module is itself a spare gate.
Dft figure10b();

/// Fig. 10.c: an FDEP whose dependent is a gate (sub-system) rather than a
/// basic event.
Dft figure10c();

/// Section 7.1: a switch with mutually exclusive failure modes feeding an
/// OR (failing open vs failing closed).
Dft mutexSwitch();

/// Section 7.2 / Fig. 15: repairable AND of two repairable basic events.
Dft repairableAnd(double lambda = 1.0, double mu = 2.0);

/// The classic hypothetical example computer system (HECS) of the Dugan
/// DFT tradition, with illustrative rates: two processors sharing a cold
/// spare, five memory units behind two interface units (M3 reachable via
/// either), redundant buses, and hardware/software application failure.
/// Exercises shared spares, gate-triggered FDEPs and voting together.
std::string galileoHecs();
Dft hecs();

}  // namespace imcdft::dft::corpus
