#include "dft/hash.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dft/modules.hpp"

namespace imcdft::dft {

namespace {

const char* typeTag(ElementType t) {
  switch (t) {
    case ElementType::BasicEvent: return "be";
    case ElementType::And: return "and";
    case ElementType::Or: return "or";
    case ElementType::Voting: return "vote";
    case ElementType::Pand: return "pand";
    case ElementType::Spare: return "spare";
    case ElementType::Fdep: return "fdep";
    case ElementType::Seq: return "seq";
  }
  return "?";
}

const char* spareTag(SpareKind k) {
  switch (k) {
    case SpareKind::Cold: return "csp";
    case SpareKind::Warm: return "wsp";
    case SpareKind::Hot: return "hsp";
  }
  return "?";
}

/// Exact textual form of a double (round-trippable hex float).
void appendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

/// Length-prefixed name: quoted Galileo names may contain any character
/// except '"' — including the serializer's own delimiters — so a plain
/// join would not be injective ("B C" vs "B", "C").
void appendName(std::string& out, const std::string& name) {
  out += std::to_string(name.size());
  out += ':';
  out += name;
}

/// Everything about \p e except how its identity and inputs are spelled;
/// the caller appends those (by name for exact keys, by index for shapes).
void appendAttributes(std::string& out, const Element& e) {
  out += ' ';
  out += typeTag(e.type);
  if (e.type == ElementType::Voting) {
    out += ' ';
    out += std::to_string(e.votingThreshold);
  }
  if (e.type == ElementType::Spare) {
    out += ' ';
    out += spareTag(e.spareKind);
  }
  if (e.isBasicEvent()) {
    out += " l=";
    appendDouble(out, e.be.lambda);
    out += " d=";
    appendDouble(out, e.be.dormancy);
    if (e.be.repairRate) {
      out += " m=";
      appendDouble(out, *e.be.repairRate);
    }
    if (e.be.phases != 1) {
      out += " p=";
      out += std::to_string(e.be.phases);
    }
  }
}

void appendElement(std::string& out, const Dft& dft, const Element& e) {
  appendName(out, e.name);
  appendAttributes(out, e);
  // Input order is semantically relevant for the dynamic gates and kept for
  // the static ones too (it cannot change the measures, but keeping it makes
  // the key trivially sound).
  for (ElementId in : e.inputs) {
    out += ' ';
    appendName(out, dft.element(in).name);
  }
  out += ';';
}

}  // namespace

std::string canonicalKey(const Dft& dft) {
  std::vector<ElementId> order(dft.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<ElementId>(i);
  std::sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return dft.element(a).name < dft.element(b).name;
  });

  std::string out = "top=";
  appendName(out, dft.element(dft.top()).name);
  out += ';';
  for (ElementId id : order) appendElement(out, dft, dft.element(id));

  std::vector<std::pair<std::string, std::string>> inhibitions;
  for (const Inhibition& inh : dft.inhibitions())
    inhibitions.emplace_back(dft.element(inh.inhibitor).name,
                             dft.element(inh.target).name);
  std::sort(inhibitions.begin(), inhibitions.end());
  for (const auto& [inhibitor, target] : inhibitions) {
    out += "inh ";
    appendName(out, inhibitor);
    out += ' ';
    appendName(out, target);
    out += ';';
  }
  return out;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t canonicalHash(const Dft& dft) { return fnv1a(canonicalKey(dft)); }

std::string moduleKey(const Dft& dft, ElementId root) {
  return canonicalKey(extractModule(dft, root));
}

ModuleShape moduleShape(const Dft& dft, ElementId root) {
  // extractModule remaps ids to 0..n-1 in the module's declaration order;
  // those ids are the De Bruijn-style indices of the shape.  Elements are
  // serialized in index order (sorting by name, as canonicalKey does,
  // would reintroduce the names the shape must be invariant under).
  const Dft sub = extractModule(dft, root);
  ModuleShape shape;
  shape.names.reserve(sub.size());
  for (ElementId id = 0; id < sub.size(); ++id)
    shape.names.push_back(sub.element(id).name);

  auto appendIndex = [](std::string& out, ElementId id) {
    out += '#';
    out += std::to_string(id);
  };
  std::string out = "top=";
  appendIndex(out, sub.top());
  out += ';';
  for (ElementId id = 0; id < sub.size(); ++id) {
    const Element& e = sub.element(id);
    appendIndex(out, id);
    appendAttributes(out, e);
    for (ElementId in : e.inputs) {
      out += ' ';
      appendIndex(out, in);
    }
    out += ';';
  }
  std::vector<std::pair<ElementId, ElementId>> inhibitions;
  for (const Inhibition& inh : sub.inhibitions())
    inhibitions.emplace_back(inh.inhibitor, inh.target);
  std::sort(inhibitions.begin(), inhibitions.end());
  for (const auto& [inhibitor, target] : inhibitions) {
    out += "inh ";
    appendIndex(out, inhibitor);
    out += ' ';
    appendIndex(out, target);
    out += ';';
  }
  shape.key = std::move(out);
  return shape;
}

}  // namespace imcdft::dft
