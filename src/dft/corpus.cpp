#include "dft/corpus.hpp"

#include "common/error.hpp"
#include "dft/builder.hpp"
#include "dft/galileo.hpp"

namespace imcdft::dft::corpus {

std::string galileoCas() {
  return R"(
// Cardiac assist system (Boudali/Crouzen/Stoelinga, DSN'07, Fig. 7).
toplevel "System";
"System"    or  "CPU_unit" "Motor_unit" "Pump_unit";

// CPU unit: warm spare, both CPUs killed by the cross switch or the
// system supervision failing.
"CPU_unit"  wsp "P" "B";
"Trigger"   or  "CS" "SS";
"CPU_fdep"  fdep "Trigger" "P" "B";
"P"  lambda=0.5;
"B"  lambda=0.5 dorm=0.5;
"CS" lambda=0.2;
"SS" lambda=0.2;

// Motor unit: the switch MS matters only if it fails before the primary
// motor; in that case the spare motor can no longer be turned on.
"Motor_unit" csp "MA" "MB";
"MP"         pand "MS" "MA";
"Motor_fdep" fdep "MP" "MB";
"MS" lambda=0.01;
"MA" lambda=1.0;
"MB" lambda=1.0;

// Pump unit: two primary pumps sharing one cold spare; all three pumps
// must fail.
"Pump_unit" and "Pump_A" "Pump_B";
"Pump_A"    csp "PA" "PS";
"Pump_B"    csp "PB" "PS";
"PA" lambda=1.0;
"PB" lambda=1.0;
"PS" lambda=1.0;
)";
}

Dft cas() { return parseGalileo(galileoCas()); }

std::string galileoCps() {
  return R"(
// Cascaded PAND system (DSN'07, Fig. 8).
toplevel "System";
"System" pand "A" "B";
"B"      pand "C" "D";
"A" and "A1" "A2" "A3" "A4";
"C" and "C1" "C2" "C3" "C4";
"D" and "D1" "D2" "D3" "D4";
"A1" lambda=1.0;  "A2" lambda=1.0;  "A3" lambda=1.0;  "A4" lambda=1.0;
"C1" lambda=1.0;  "C2" lambda=1.0;  "C3" lambda=1.0;  "C4" lambda=1.0;
"D1" lambda=1.0;  "D2" lambda=1.0;  "D3" lambda=1.0;  "D4" lambda=1.0;
)";
}

Dft cps() { return parseGalileo(galileoCps()); }

Dft cascadedPands(int modules, int besPerModule, double lambda) {
  require(modules >= 2 && besPerModule >= 1,
          "cascadedPands: need at least 2 modules and 1 BE per module");
  DftBuilder b;
  std::vector<std::string> moduleNames;
  for (int m = 0; m < modules; ++m) {
    std::string name = "M" + std::to_string(m);
    std::vector<std::string> bes;
    for (int i = 0; i < besPerModule; ++i) {
      std::string be = name + "_" + std::to_string(i);
      b.basicEvent(be, lambda);
      bes.push_back(be);
    }
    b.andGate(name, bes);
    moduleNames.push_back(name);
  }
  // Right-leaning cascade: P_k = PAND(M_k, P_{k+1}) like the CPS.
  std::string right = moduleNames.back();
  for (int m = modules - 2; m >= 0; --m) {
    std::string name = m == 0 ? "System" : "P" + std::to_string(m);
    b.pandGate(name, {moduleNames[m], right});
    right = name;
  }
  b.top("System");
  return b.build();
}

Dft cascadedPand(int depth, int width) {
  require(depth >= 2 && width >= 1,
          "cascadedPand: need depth >= 2 and width >= 1");
  DftBuilder b;
  std::vector<std::string> unitNames;
  for (int k = 0; k < depth; ++k) {
    const std::string s = "_" + std::to_string(k);
    // Quarter-step rates are exactly representable, so the family is
    // bit-reproducible across machines; distinct rates per level keep the
    // units in distinct shape buckets (symmetry reduction cannot absorb
    // the chain — the fused engine has to carry it).
    std::vector<std::string> bes;
    for (int i = 0; i < width; ++i) {
      std::string be = "L" + s + "_" + std::to_string(i);
      b.basicEvent(be, 1.0 + 0.25 * k);
      bes.push_back(std::move(be));
    }
    b.andGate("Chain" + s, bes);
    b.basicEvent("PP" + s, 0.75 + 0.25 * k);
    b.basicEvent("PS" + s, 0.5, 0.25);
    b.spareGate("Slot" + s, SpareKind::Warm, {"PP" + s, "PS" + s});
    b.orGate("U" + s, {"Chain" + s, "Slot" + s});
    unitNames.push_back("U" + s);
  }
  // Right-leaning cascade like the CPS: P_k = PAND(U_k, P_{k+1}).
  std::string right = unitNames.back();
  for (int k = depth - 2; k >= 0; --k) {
    std::string name = k == 0 ? "System" : "P" + std::to_string(k);
    b.pandGate(name, {unitNames[k], right});
    right = name;
  }
  b.top("System");
  return b.build();
}

Dft clonedCas(int units) {
  require(units >= 1, "clonedCas: need at least 1 unit");
  DftBuilder b;
  std::vector<std::string> roots;
  for (int u = 0; u < units; ++u) {
    const std::string s = "_" + std::to_string(u);
    // CPU unit: warm spare killed by the cross switch or supervision.
    b.basicEvent("P" + s, 0.5);
    b.basicEvent("B" + s, 0.5, 0.5);
    b.basicEvent("CS" + s, 0.2);
    b.basicEvent("SS" + s, 0.2);
    b.orGate("Trigger" + s, {"CS" + s, "SS" + s});
    b.fdep("CPU_fdep" + s, "Trigger" + s, {"P" + s, "B" + s});
    b.spareGate("CPU_unit" + s, SpareKind::Warm, {"P" + s, "B" + s});
    // Motor unit: the switch matters only before the primary motor fails.
    b.basicEvent("MS" + s, 0.01);
    b.basicEvent("MA" + s, 1.0);
    b.basicEvent("MB" + s, 1.0);
    b.pandGate("MP" + s, {"MS" + s, "MA" + s});
    b.fdep("Motor_fdep" + s, "MP" + s, {"MB" + s});
    b.spareGate("Motor_unit" + s, SpareKind::Cold, {"MA" + s, "MB" + s});
    // Pump unit: two primary pumps sharing one cold spare.
    b.basicEvent("PA" + s, 1.0);
    b.basicEvent("PB" + s, 1.0);
    b.basicEvent("PS" + s, 1.0);
    b.spareGate("Pump_A" + s, SpareKind::Cold, {"PA" + s, "PS" + s});
    b.spareGate("Pump_B" + s, SpareKind::Cold, {"PB" + s, "PS" + s});
    b.andGate("Pump_unit" + s, {"Pump_A" + s, "Pump_B" + s});
    b.orGate("Unit" + s, {"CPU_unit" + s, "Motor_unit" + s, "Pump_unit" + s});
    roots.push_back("Unit" + s);
  }
  if (units == 1) {
    b.top(roots.front());
  } else {
    b.orGate("System", roots);
    b.top("System");
  }
  return b.build();
}

Dft sensorBanks(int banks, int sensorsPerBank) {
  require(banks >= 2 && sensorsPerBank >= 1,
          "sensorBanks: need at least 2 banks and 1 sensor per chain");
  DftBuilder b;
  std::vector<std::string> bankNames;
  for (int k = 0; k < banks; ++k) {
    const std::string s = "_" + std::to_string(k);
    for (const char* side : {"A", "B"}) {
      std::vector<std::string> sensors;
      for (int i = 0; i < sensorsPerBank; ++i) {
        std::string name = std::string("S") + side + s + "_" +
                           std::to_string(i);
        b.basicEvent(name, 1.0);
        sensors.push_back(std::move(name));
      }
      b.andGate(std::string(side) + s, sensors);
    }
    b.pandGate("Bank" + s, {"A" + s, "B" + s});
    bankNames.push_back("Bank" + s);
  }
  b.votingGate("System", 2, bankNames);
  b.top("System");
  return b.build();
}

Dft voterFarm(int units, int need) {
  require(units >= 2 && need >= 1 && need <= units,
          "voterFarm: need units >= 2 and 1 <= need <= units");
  DftBuilder b;
  std::vector<std::string> unitNames;
  for (int u = 0; u < units; ++u) {
    const std::string s = "_" + std::to_string(u);
    // Control chain: the sensor must outlive the controller for the chain
    // to fail (PAND keeps the unit genuinely dynamic).
    b.basicEvent("C1" + s, 0.8);
    b.basicEvent("C2" + s, 1.2);
    b.pandGate("Ctrl" + s, {"C1" + s, "C2" + s});
    // Power slot: primary with a warm standby.
    b.basicEvent("PP" + s, 0.6);
    b.basicEvent("PS" + s, 0.6, 0.3);
    b.spareGate("Power" + s, SpareKind::Warm, {"PP" + s, "PS" + s});
    b.orGate("Unit" + s, {"Ctrl" + s, "Power" + s});
    unitNames.push_back("Unit" + s);
  }
  b.votingGate("System", static_cast<std::uint32_t>(need), unitNames);
  b.top("System");
  return b.build();
}

Dft figure6a() {
  DftBuilder b;
  b.basicEvent("T", 1.0);
  b.basicEvent("A", 1.0);
  b.basicEvent("B", 1.0);
  b.fdep("F", "T", {"A", "B"});
  b.pandGate("System", {"A", "B"});
  b.top("System");
  return b.build();
}

Dft figure6b() {
  DftBuilder b;
  b.basicEvent("T", 1.0);
  b.basicEvent("A", 1.0);
  b.basicEvent("B", 1.0);
  b.basicEvent("S", 1.0, 0.0);  // cold shared spare
  b.fdep("F", "T", {"A", "B"});
  b.spareGate("G1", SpareKind::Cold, {"A", "S"});
  b.spareGate("G2", SpareKind::Cold, {"B", "S"});
  // The paper leaves the gates' parent open.  A symmetric AND would make
  // the claim race unobservable (whoever wins, the system fails exactly
  // when S dies, and weak bisimulation rightly removes the
  // nondeterminism); a PAND keeps the race observable in the measure,
  // which is what the figure is about.
  b.pandGate("System", {"G1", "G2"});
  b.top("System");
  return b.build();
}

Dft figure10a() {
  DftBuilder b;
  b.basicEvent("A", 1.0);
  b.basicEvent("B", 1.0);
  b.basicEvent("C", 1.0, 0.5);
  b.basicEvent("D", 1.0, 0.5);
  b.andGate("primary", {"A", "B"});
  b.andGate("spare", {"C", "D"});
  b.spareGate("System", SpareKind::Warm, {"primary", "spare"});
  b.top("System");
  return b.build();
}

Dft figure10b() {
  DftBuilder b;
  b.basicEvent("A", 1.0);
  b.basicEvent("B", 1.0, 0.5);
  b.basicEvent("C", 1.0, 0.5);
  b.basicEvent("D", 1.0, 0.5);
  b.spareGate("primary", SpareKind::Warm, {"A", "B"});
  b.spareGate("spare", SpareKind::Warm, {"C", "D"});
  b.spareGate("System", SpareKind::Warm, {"primary", "spare"});
  b.top("System");
  return b.build();
}

Dft figure10c() {
  DftBuilder b;
  b.basicEvent("T", 1.0);
  b.basicEvent("B", 1.0);
  b.basicEvent("C", 1.0);
  b.basicEvent("E", 1.0);
  // The FDEP triggers the failure of gate A (a sub-system), not of its
  // parts: C keeps running.
  b.andGate("A", {"B", "C"});
  b.fdep("F", "T", {"A"});
  b.andGate("System", {"A", "E"});
  b.top("System");
  return b.build();
}

Dft mutexSwitch() {
  DftBuilder b;
  // One physical switch with two exclusive failure modes and a pump; the
  // system fails when the switch fails open, or fails closed together with
  // the pump.
  b.basicEvent("fail_open", 0.5);
  b.basicEvent("fail_closed", 0.3);
  b.basicEvent("pump", 1.0);
  b.mutex({"fail_open", "fail_closed"});
  b.andGate("closed_and_pump", {"fail_closed", "pump"});
  b.orGate("System", {"fail_open", "closed_and_pump"});
  b.top("System");
  return b.build();
}

std::string galileoHecs() {
  return R"(
// Hypothetical example computer system (HECS), illustrative rates.
toplevel "HECS";
"HECS" or "Processors" "Memory" "Buses" "Application";

// Two processors sharing one cold spare; both slots must be dead.
"Processors" and "Proc_1" "Proc_2";
"Proc_1" csp "P1" "PA";
"Proc_2" csp "P2" "PA";
"P1" lambda=0.1;
"P2" lambda=0.1;
"PA" lambda=0.1;

// Five memory units, three needed.  M1/M2 hang off interface MIU1,
// M4/M5 off MIU2, M3 is reachable through either interface.
"Memory" 3of5 "M1" "M2" "M3" "M4" "M5";
"MIU_both" and "MIU1" "MIU2";
"F1" fdep "MIU1" "M1" "M2";
"F2" fdep "MIU2" "M4" "M5";
"F3" fdep "MIU_both" "M3";
"M1" lambda=0.06;  "M2" lambda=0.06;  "M3" lambda=0.06;
"M4" lambda=0.06;  "M5" lambda=0.06;
"MIU1" lambda=0.05; "MIU2" lambda=0.05;

// Redundant buses.
"Buses" and "Bus1" "Bus2";
"Bus1" lambda=0.02;
"Bus2" lambda=0.02;

// Application: hardware, software, or the operator console.
"Application" or "HW" "SW";
"HW" lambda=0.05;
"SW" lambda=0.08;
)";
}

Dft hecs() { return parseGalileo(galileoHecs()); }

Dft repairableAnd(double lambda, double mu) {
  DftBuilder b;
  b.basicEvent("A", lambda, std::nullopt, mu);
  b.basicEvent("B", lambda, std::nullopt, mu);
  b.andGate("System", {"A", "B"});
  b.top("System");
  return b.build();
}

}  // namespace imcdft::dft::corpus
