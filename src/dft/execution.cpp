#include "dft/execution.hpp"

#include <atomic>

namespace imcdft::dft {

namespace {

/// dftfuzz --inject-bug drill flag; see the header comment.
std::atomic<bool> g_pandOrderMutation{false};

}  // namespace

void setPandOrderMutationForTesting(bool enabled) {
  g_pandOrderMutation.store(enabled, std::memory_order_relaxed);
}

bool pandOrderMutationForTesting() {
  return g_pandOrderMutation.load(std::memory_order_relaxed);
}

namespace {

bool isSpareLike(const Element& e) {
  return e.type == ElementType::Spare || e.type == ElementType::Seq;
}

std::uint32_t staticThreshold(const Element& e) {
  switch (e.type) {
    case ElementType::And:
      return static_cast<std::uint32_t>(e.inputs.size());
    case ElementType::Or:
      return 1;
    case ElementType::Voting:
      return e.votingThreshold;
    default:
      return 0;
  }
}

}  // namespace

std::vector<std::uint8_t> ExecutionState::pack() const {
  std::vector<std::uint8_t> key;
  key.reserve(failed.size() * 5 + spareCurrent.size());
  key.insert(key.end(), failed.begin(), failed.end());
  key.insert(key.end(), active.begin(), active.end());
  key.insert(key.end(), inhibited.begin(), inhibited.end());
  key.insert(key.end(), pandOk.begin(), pandOk.end());
  key.insert(key.end(), phase.begin(), phase.end());
  for (std::int8_t c : spareCurrent)
    key.push_back(static_cast<std::uint8_t>(c + 1));
  return key;
}

ExecutionState Executor::initialState() const {
  ExecutionState state;
  const std::size_t n = dft_.size();
  state.failed.assign(n, 0);
  state.active.assign(n, 0);
  state.inhibited.assign(n, 0);
  state.pandOk.assign(n, 1);
  state.phase.assign(n, 0);
  state.spareCurrent.assign(n, -1);
  activate(state, dft_.top());
  return state;
}

void Executor::failAndPropagate(ExecutionState& state, ElementId x) const {
  std::deque<ElementId> queue{x};
  while (!queue.empty()) {
    ElementId e = queue.front();
    queue.pop_front();
    fail(state, e, queue);
  }
}

void Executor::repairAndPropagate(ExecutionState& state, ElementId x) const {
  state.failed[x] = 0;
  state.phase[x] = 0;
  // Walk upwards: a failed static gate whose condition no longer holds
  // becomes operational again.
  std::deque<ElementId> queue{x};
  while (!queue.empty()) {
    ElementId e = queue.front();
    queue.pop_front();
    for (ElementId p : dft_.parents(e)) {
      const Element& gate = dft_.element(p);
      if (!state.failed[p]) continue;
      if (countFailedInputs(state, p) < staticThreshold(gate)) {
        state.failed[p] = 0;
        queue.push_back(p);
      }
    }
  }
}

void Executor::activate(ExecutionState& state, ElementId e) const {
  if (state.active[e]) return;
  state.active[e] = 1;
  const Element& el = dft_.element(e);
  if (el.isBasicEvent()) return;
  if (isSpareLike(el)) {
    if (state.failed[e]) return;
    // Activate the primary if usable, otherwise claim a spare now.
    if (!state.failed[el.inputs.front()]) {
      state.spareCurrent[e] = 0;
      activate(state, el.inputs.front());
    } else {
      std::deque<ElementId> queue;
      claimNextSpare(state, e, queue);
      // A failure discovered while claiming (exhaustion) must cascade.
      while (!queue.empty()) {
        ElementId q = queue.front();
        queue.pop_front();
        fail(state, q, queue);
      }
    }
    return;
  }
  if (el.type == ElementType::Fdep) return;
  for (ElementId in : el.inputs) activate(state, in);
}

double Executor::failureRate(const ExecutionState& state, ElementId x) const {
  const Element& e = dft_.element(x);
  if (state.failed[x] || state.inhibited[x]) return 0.0;
  return state.active[x] ? e.be.lambda : e.be.dormancy * e.be.lambda;
}

std::uint32_t Executor::countFailedInputs(const ExecutionState& state,
                                          ElementId gate) const {
  std::uint32_t c = 0;
  for (ElementId in : dft_.element(gate).inputs) c += state.failed[in] ? 1 : 0;
  return c;
}

bool Executor::spareAvailable(const ExecutionState& state, ElementId gate,
                              ElementId spare) const {
  if (state.failed[spare]) return false;
  for (ElementId user : dft_.spareUsers(spare)) {
    if (user == gate) continue;
    const Element& u = dft_.element(user);
    std::int8_t cur = state.spareCurrent[user];
    if (cur >= 1 && u.inputs[static_cast<std::size_t>(cur)] == spare)
      return false;  // taken
  }
  return true;
}

void Executor::claimNextSpare(ExecutionState& state, ElementId gate,
                              std::deque<ElementId>& queue) const {
  const Element& e = dft_.element(gate);
  for (std::size_t i = 1; i < e.inputs.size(); ++i) {
    if (spareAvailable(state, gate, e.inputs[i])) {
      state.spareCurrent[gate] = static_cast<std::int8_t>(i);
      activate(state, e.inputs[i]);
      // The claim makes this spare unavailable to the sharers; a dormant
      // sharer with a failed primary may thereby become exhausted.
      for (ElementId user : dft_.spareUsers(e.inputs[i]))
        if (user != gate) reconsiderSpareGate(state, user, queue);
      return;
    }
  }
  state.spareCurrent[gate] = -1;
  queue.push_back(gate);  // primary failed, no spare: the gate fires
}

void Executor::reconsiderSpareGate(ExecutionState& state, ElementId gate,
                                   std::deque<ElementId>& queue) const {
  if (state.failed[gate]) return;
  const Element& e = dft_.element(gate);
  if (!state.failed[e.inputs.front()]) return;  // primary still fine
  std::int8_t cur = state.spareCurrent[gate];
  if (cur >= 1 && !state.failed[e.inputs[static_cast<std::size_t>(cur)]])
    return;  // using a healthy spare
  if (!state.active[gate]) {
    // Dormant gates claim nothing, but they do fire on exhaustion.
    for (std::size_t i = 1; i < e.inputs.size(); ++i)
      if (spareAvailable(state, gate, e.inputs[i])) return;
    queue.push_back(gate);
    return;
  }
  claimNextSpare(state, gate, queue);
}

void Executor::fail(ExecutionState& state, ElementId x,
                    std::deque<ElementId>& queue) const {
  if (state.failed[x] || state.inhibited[x]) return;
  state.failed[x] = 1;

  // Inhibitions caused by x (Section 7.1): targets not yet failed can
  // never fail any more.
  for (const Inhibition& inh : dft_.inhibitions())
    if (inh.inhibitor == x && !state.failed[inh.target])
      state.inhibited[inh.target] = 1;

  // FDEP cascades: x triggering means the dependents fail now (the
  // deterministic declaration-order resolution).
  for (ElementId p : dft_.parents(x)) {
    const Element& gate = dft_.element(p);
    if (gate.type == ElementType::Fdep && gate.inputs.front() == x)
      for (std::size_t i = 1; i < gate.inputs.size(); ++i)
        queue.push_back(gate.inputs[i]);
  }

  // Parent gates react.
  for (ElementId p : dft_.parents(x)) {
    const Element& gate = dft_.element(p);
    if (state.failed[p]) continue;
    switch (gate.type) {
      case ElementType::And:
      case ElementType::Or:
      case ElementType::Voting:
        if (countFailedInputs(state, p) >= staticThreshold(gate))
          queue.push_back(p);
        break;
      case ElementType::Pand: {
        // Order is respected only if everything left of x already failed.
        std::size_t idx = 0;
        while (gate.inputs[idx] != x) ++idx;
        if (!pandOrderMutationForTesting())
          for (std::size_t j = 0; j < idx; ++j)
            if (!state.failed[gate.inputs[j]]) state.pandOk[p] = 0;
        if (state.pandOk[p] && countFailedInputs(state, p) == gate.inputs.size())
          queue.push_back(p);
        break;
      }
      case ElementType::Spare:
      case ElementType::Seq:
        // Covers the primary, the spare in use, and non-current spares
        // whose failure exhausts a waiting gate.
        reconsiderSpareGate(state, p, queue);
        break;
      case ElementType::Fdep:
      case ElementType::BasicEvent:
        break;
    }
  }
}

}  // namespace imcdft::dft
