#pragma once

#include <vector>

#include "dft/model.hpp"

/// \file modules.hpp
/// Independent-module detection (Sections 2 and 5 of the paper).
///
/// An element is an independent module when nothing below it is referenced
/// from outside.  "Below" is taken over the *dependency closure*, which
/// adds to the plain gate-input edges the couplings dynamic constructs
/// introduce: FDEP gates couple their trigger and all dependents, spare
/// gates couple every gate sharing one of their spares, and inhibitions
/// couple inhibitor and target.  This is what makes, e.g., the whole pump
/// unit of the cardiac assist system one module even though it contains two
/// spare gates.

namespace imcdft::dft {

struct ModuleInfo {
  ElementId root;
  std::vector<ElementId> members;  ///< dependency closure, sorted, incl. root
  bool dynamic = false;  ///< contains a dynamic gate or an inhibition
};

/// Elements whose behavior element \p id directly depends on.
std::vector<ElementId> directDependencies(const Dft& dft, ElementId id);

/// The dependency closure below \p root (members of the would-be module).
std::vector<ElementId> dependencyClosure(const Dft& dft, ElementId root);

/// All independent modules, in ascending order of member count.  The top
/// element always appears (the whole tree is a module).
std::vector<ModuleInfo> independentModules(const Dft& dft);

/// Builds a standalone sub-DFT from the dependency closure of \p root
/// (element names are preserved; ids are remapped).
Dft extractModule(const Dft& dft, ElementId root);

/// The maximal *static combination layer* of a tree: the connected region
/// of AND/OR/VOTING gates containing the top whose frontier inputs are
/// pairwise-disjoint independent modules, with no dynamic coupling (FDEP,
/// spare sharing, sequence, inhibition) crossing the region boundary and
/// nothing above the region at all (the region contains the top, so no
/// dynamic gate can observe the *order* of module failures — only the
/// structure function of their failure events matters).
///
/// When such a layer exists, the joint unfired product of the frontier
/// modules never has to be built: each module's unreliability can be
/// solved numerically on its own absorbing CTMC and the layer's structure
/// function evaluated over the per-time probabilities (the DIFTree
/// numeric-combination shortcut, sound precisely because the modules are
/// stochastically independent and the surrounding structure is static and
/// order-blind).  The engine's static-combination path
/// (analysis/static_combine.hpp) consumes this; any ineligibility reason
/// makes it fall back to full composition.
struct StaticLayer {
  bool eligible = false;
  /// Human-readable ineligibility reason (diagnostics); empty if eligible.
  std::string reason;
  /// Layer gates, sorted ascending; contains the top when eligible.
  std::vector<ElementId> gates;
  /// Frontier module roots, sorted ascending.  Each is the root of an
  /// independent module whose dependency closure is disjoint from every
  /// other frontier module and from the layer gates; together they cover
  /// the whole tree.  A root referenced by several layer gates appears
  /// once (the structure function sees it as one shared variable).
  std::vector<ElementId> moduleRoots;
};

/// Detects the static combination layer of \p dft.  Structural and
/// conservative: any configuration whose independence or order-blindness
/// cannot be proven yields eligible == false with a reason, never a wrong
/// decomposition.  Repairable trees are always ineligible (with repair the
/// top's first-passage time is not a function of the modules' first
/// passages).
StaticLayer detectStaticLayer(const Dft& dft);

}  // namespace imcdft::dft
