#pragma once

#include <vector>

#include "dft/model.hpp"

/// \file modules.hpp
/// Independent-module detection (Sections 2 and 5 of the paper).
///
/// An element is an independent module when nothing below it is referenced
/// from outside.  "Below" is taken over the *dependency closure*, which
/// adds to the plain gate-input edges the couplings dynamic constructs
/// introduce: FDEP gates couple their trigger and all dependents, spare
/// gates couple every gate sharing one of their spares, and inhibitions
/// couple inhibitor and target.  This is what makes, e.g., the whole pump
/// unit of the cardiac assist system one module even though it contains two
/// spare gates.

namespace imcdft::dft {

struct ModuleInfo {
  ElementId root;
  std::vector<ElementId> members;  ///< dependency closure, sorted, incl. root
  bool dynamic = false;  ///< contains a dynamic gate or an inhibition
};

/// Elements whose behavior element \p id directly depends on.
std::vector<ElementId> directDependencies(const Dft& dft, ElementId id);

/// The dependency closure below \p root (members of the would-be module).
std::vector<ElementId> dependencyClosure(const Dft& dft, ElementId root);

/// All independent modules, in ascending order of member count.  The top
/// element always appears (the whole tree is a module).
std::vector<ModuleInfo> independentModules(const Dft& dft);

/// Builds a standalone sub-DFT from the dependency closure of \p root
/// (element names are preserved; ids are remapped).
Dft extractModule(const Dft& dft, ElementId root);

}  // namespace imcdft::dft
