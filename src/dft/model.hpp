#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

/// \file model.hpp
/// Dynamic fault trees as a directed acyclic graph of elements (Section 2
/// of the paper): basic events, static gates (AND, OR, K/M voting) and
/// dynamic gates (PAND, SPARE, FDEP), plus the paper's Section 7
/// extensions (inhibition / mutual exclusivity, repairable basic events)
/// and the SEQ gate (emulated by a cold spare per the paper's footnote 4).

namespace imcdft::dft {

using ElementId = std::uint32_t;

enum class ElementType : std::uint8_t {
  BasicEvent,
  And,
  Or,
  Voting,  ///< K/M gate: fails when at least K of M inputs fail
  Pand,    ///< fails when all inputs fail, left to right
  Spare,   ///< inputs[0] = primary, inputs[1..] = spares (in claim order)
  Fdep,    ///< inputs[0] = trigger, inputs[1..] = dependent elements
  Seq,     ///< sequence enforcing; analysed as a cold spare gate
};

/// Dormancy class of a spare gate, mirroring the Galileo csp/wsp/hsp types.
/// It only affects the *default* dormancy factor given to directly attached
/// spare basic events; an explicit `dorm` attribute always wins.
enum class SpareKind : std::uint8_t { Cold, Warm, Hot };

/// Attributes of a basic event.
struct BasicEventAttrs {
  double lambda = 0.0;    ///< active failure rate (per Erlang phase)
  double dormancy = 1.0;  ///< dormancy factor alpha in [0, 1]
  std::optional<double> repairRate;  ///< mu, when the BE is repairable
  /// Erlang shape parameter: the failure delay is the sum of `phases`
  /// exponential phases of rate lambda.  1 = plain exponential.  This is
  /// the paper's Section 8 future-work item (3): phase-type distributions
  /// integrate naturally into the I/O-IMC framework.
  std::uint32_t phases = 1;
};

/// One node of the DFT DAG.
struct Element {
  std::string name;
  ElementType type = ElementType::BasicEvent;
  std::vector<ElementId> inputs;
  std::uint32_t votingThreshold = 0;  ///< K for Voting gates
  SpareKind spareKind = SpareKind::Warm;
  BasicEventAttrs be;

  bool isBasicEvent() const { return type == ElementType::BasicEvent; }
  bool isGate() const { return !isBasicEvent(); }
  /// Dynamic gates are the ones whose behavior depends on event order.
  bool isDynamicGate() const {
    return type == ElementType::Pand || type == ElementType::Spare ||
           type == ElementType::Fdep || type == ElementType::Seq;
  }
};

/// An inhibition relation (Section 7.1): if `inhibitor` fails before
/// `target`, the failure of `target` is prevented forever.
struct Inhibition {
  ElementId inhibitor;
  ElementId target;
};

/// An immutable, validated dynamic fault tree.  Use DftBuilder or
/// parseGalileo() to create one.
class Dft {
 public:
  Dft(std::vector<Element> elements, ElementId top,
      std::vector<Inhibition> inhibitions);

  std::size_t size() const { return elements_.size(); }
  const Element& element(ElementId id) const { return elements_[id]; }
  ElementId top() const { return top_; }
  const std::vector<Inhibition>& inhibitions() const { return inhibitions_; }

  /// Id lookup by name; throws ModelError for unknown names.
  ElementId byName(const std::string& name) const;
  /// Like byName but returns nullopt instead of throwing.
  std::optional<ElementId> findByName(const std::string& name) const;

  /// Gates that list \p id among their inputs (FDEPs included).
  const std::vector<ElementId>& parents(ElementId id) const {
    return parents_[id];
  }

  /// Spare gates that use \p id as a spare (inputs[1..]).
  std::vector<ElementId> spareUsers(ElementId id) const;
  /// The spare gate using \p id as primary, if any.
  std::optional<ElementId> primaryUser(ElementId id) const;
  /// FDEP gates listing \p id as a dependent element.
  std::vector<ElementId> fdepsTargeting(ElementId id) const;
  /// Inhibitors of \p id, in declaration order.
  std::vector<ElementId> inhibitorsOf(ElementId id) const;

  /// True when the tree contains a dynamic gate or an inhibition.
  bool isDynamic() const;
  /// True when any basic event is repairable.
  bool isRepairable() const;

  /// All element ids in a topological order with inputs before gates.
  std::vector<ElementId> topologicalOrder() const;

 private:
  void validate() const;

  std::vector<Element> elements_;
  ElementId top_;
  std::vector<Inhibition> inhibitions_;
  std::vector<std::vector<ElementId>> parents_;
  std::unordered_map<std::string, ElementId> byName_;
};

}  // namespace imcdft::dft
