#include "dft/modules.hpp"

#include <algorithm>
#include <queue>

namespace imcdft::dft {

std::vector<ElementId> directDependencies(const Dft& dft, ElementId id) {
  std::vector<ElementId> deps;
  const Element& e = dft.element(id);
  deps.insert(deps.end(), e.inputs.begin(), e.inputs.end());
  // A dependent element's behavior is driven by the FDEPs that target it
  // (and through them by the triggers).
  for (ElementId f : dft.fdepsTargeting(id)) deps.push_back(f);
  // Gates sharing one of our spares influence spare availability.
  if (e.type == ElementType::Spare || e.type == ElementType::Seq) {
    for (std::size_t i = 1; i < e.inputs.size(); ++i)
      for (ElementId user : dft.spareUsers(e.inputs[i]))
        if (user != id) deps.push_back(user);
  }
  // Inhibitors shape the target's failure behavior.
  for (ElementId inh : dft.inhibitorsOf(id)) deps.push_back(inh);
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

std::vector<ElementId> dependencyClosure(const Dft& dft, ElementId root) {
  std::vector<bool> seen(dft.size(), false);
  std::vector<ElementId> closure;
  std::queue<ElementId> frontier;
  seen[root] = true;
  frontier.push(root);
  while (!frontier.empty()) {
    ElementId id = frontier.front();
    frontier.pop();
    closure.push_back(id);
    for (ElementId d : directDependencies(dft, id)) {
      if (!seen[d]) {
        seen[d] = true;
        frontier.push(d);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

std::vector<ModuleInfo> independentModules(const Dft& dft) {
  // Referencers: X references d when d is a direct dependency of X.
  std::vector<std::vector<ElementId>> referencers(dft.size());
  for (ElementId x = 0; x < dft.size(); ++x)
    for (ElementId d : directDependencies(dft, x)) referencers[d].push_back(x);

  std::vector<ModuleInfo> modules;
  for (ElementId root = 0; root < dft.size(); ++root) {
    if (dft.element(root).type == ElementType::Fdep) continue;
    std::vector<ElementId> members = dependencyClosure(dft, root);
    bool independent = true;
    for (ElementId m : members) {
      if (m == root) continue;
      for (ElementId r : referencers[m]) {
        if (!std::binary_search(members.begin(), members.end(), r)) {
          independent = false;
          break;
        }
      }
      if (!independent) break;
    }
    if (!independent) continue;
    ModuleInfo info;
    info.root = root;
    info.dynamic = std::any_of(members.begin(), members.end(), [&](ElementId m) {
      return dft.element(m).isDynamicGate();
    });
    for (const Inhibition& inh : dft.inhibitions())
      if (std::binary_search(members.begin(), members.end(), inh.target))
        info.dynamic = true;
    info.members = std::move(members);
    modules.push_back(std::move(info));
  }
  // The root-id tie-break pins the relative order of equal-sized modules
  // to declaration order; the engine relies on that so isomorphic sibling
  // modules keep corresponding child orders (symmetry reduction folds the
  // representative and the siblings in corresponding orders).
  std::sort(modules.begin(), modules.end(),
            [](const ModuleInfo& a, const ModuleInfo& b) {
              return a.members.size() != b.members.size()
                         ? a.members.size() < b.members.size()
                         : a.root < b.root;
            });
  return modules;
}

Dft extractModule(const Dft& dft, ElementId root) {
  std::vector<ElementId> members = dependencyClosure(dft, root);
  std::vector<ElementId> remap(dft.size(), static_cast<ElementId>(-1));
  for (std::size_t i = 0; i < members.size(); ++i)
    remap[members[i]] = static_cast<ElementId>(i);
  std::vector<Element> elements;
  elements.reserve(members.size());
  for (ElementId m : members) {
    Element e = dft.element(m);
    for (ElementId& in : e.inputs) in = remap[in];
    elements.push_back(std::move(e));
  }
  std::vector<Inhibition> inhibitions;
  for (const Inhibition& inh : dft.inhibitions()) {
    // The closure contains the inhibitor whenever it contains the target.
    if (std::binary_search(members.begin(), members.end(), inh.target))
      inhibitions.push_back({remap[inh.inhibitor], remap[inh.target]});
  }
  return Dft(std::move(elements), remap[root], std::move(inhibitions));
}

}  // namespace imcdft::dft
