#include "dft/modules.hpp"

#include <algorithm>
#include <queue>

namespace imcdft::dft {

std::vector<ElementId> directDependencies(const Dft& dft, ElementId id) {
  std::vector<ElementId> deps;
  const Element& e = dft.element(id);
  deps.insert(deps.end(), e.inputs.begin(), e.inputs.end());
  // A dependent element's behavior is driven by the FDEPs that target it
  // (and through them by the triggers).
  for (ElementId f : dft.fdepsTargeting(id)) deps.push_back(f);
  // Gates sharing one of our spares influence spare availability.
  if (e.type == ElementType::Spare || e.type == ElementType::Seq) {
    for (std::size_t i = 1; i < e.inputs.size(); ++i)
      for (ElementId user : dft.spareUsers(e.inputs[i]))
        if (user != id) deps.push_back(user);
  }
  // Inhibitors shape the target's failure behavior.
  for (ElementId inh : dft.inhibitorsOf(id)) deps.push_back(inh);
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

std::vector<ElementId> dependencyClosure(const Dft& dft, ElementId root) {
  std::vector<bool> seen(dft.size(), false);
  std::vector<ElementId> closure;
  std::queue<ElementId> frontier;
  seen[root] = true;
  frontier.push(root);
  while (!frontier.empty()) {
    ElementId id = frontier.front();
    frontier.pop();
    closure.push_back(id);
    for (ElementId d : directDependencies(dft, id)) {
      if (!seen[d]) {
        seen[d] = true;
        frontier.push(d);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

namespace {

/// Referencer lists: X references d when d is a direct dependency of X
/// (the reverse of directDependencies, shared by the independence checks).
std::vector<std::vector<ElementId>> referencerLists(const Dft& dft) {
  std::vector<std::vector<ElementId>> referencers(dft.size());
  for (ElementId x = 0; x < dft.size(); ++x)
    for (ElementId d : directDependencies(dft, x)) referencers[d].push_back(x);
  return referencers;
}

bool isStaticGateType(ElementType t) {
  return t == ElementType::And || t == ElementType::Or ||
         t == ElementType::Voting;
}

/// The independence test shared by independentModules and
/// detectStaticLayer: no member of \p root's dependency closure
/// (\p members, sorted) is referenced from outside the closure — the root
/// itself may be referenced freely (that is how the module connects to
/// its parents).
bool independentClosure(const std::vector<std::vector<ElementId>>& referencers,
                        const std::vector<ElementId>& members,
                        ElementId root) {
  for (ElementId m : members) {
    if (m == root) continue;
    for (ElementId r : referencers[m])
      if (!std::binary_search(members.begin(), members.end(), r))
        return false;
  }
  return true;
}

}  // namespace

std::vector<ModuleInfo> independentModules(const Dft& dft) {
  const std::vector<std::vector<ElementId>> referencers = referencerLists(dft);

  std::vector<ModuleInfo> modules;
  for (ElementId root = 0; root < dft.size(); ++root) {
    if (dft.element(root).type == ElementType::Fdep) continue;
    std::vector<ElementId> members = dependencyClosure(dft, root);
    if (!independentClosure(referencers, members, root)) continue;
    ModuleInfo info;
    info.root = root;
    info.dynamic = std::any_of(members.begin(), members.end(), [&](ElementId m) {
      return dft.element(m).isDynamicGate();
    });
    for (const Inhibition& inh : dft.inhibitions())
      if (std::binary_search(members.begin(), members.end(), inh.target))
        info.dynamic = true;
    info.members = std::move(members);
    modules.push_back(std::move(info));
  }
  // The root-id tie-break pins the relative order of equal-sized modules
  // to declaration order; the engine relies on that so isomorphic sibling
  // modules keep corresponding child orders (symmetry reduction folds the
  // representative and the siblings in corresponding orders).
  std::sort(modules.begin(), modules.end(),
            [](const ModuleInfo& a, const ModuleInfo& b) {
              return a.members.size() != b.members.size()
                         ? a.members.size() < b.members.size()
                         : a.root < b.root;
            });
  return modules;
}

StaticLayer detectStaticLayer(const Dft& dft) {
  StaticLayer out;
  if (dft.isRepairable()) {
    out.reason =
        "the tree is repairable: with repair the top's first-passage time "
        "is not a function of the modules' first passages";
    return out;
  }
  if (!isStaticGateType(dft.element(dft.top()).type)) {
    out.reason = "the top element '" + dft.element(dft.top()).name +
                 "' is not a static gate";
    return out;
  }
  const std::vector<std::vector<ElementId>> referencers = referencerLists(dft);
  if (!referencers[dft.top()].empty()) {
    out.reason = "the top element is referenced by '" +
                 dft.element(referencers[dft.top()].front()).name +
                 "' (a dynamic construct observes the top)";
    return out;
  }

  // A gate is *pure static* when its direct dependencies are exactly its
  // inputs — no FDEP targets it, nothing inhibits it.  (Couplings where
  // others reference the gate — spare slots, triggers — surface through
  // the coverage check below.)  Memoized: the DFS below asks once per
  // frame resume.
  std::vector<signed char> pureMemo(dft.size(), -1);
  auto pureStatic = [&](ElementId id) {
    if (pureMemo[id] >= 0) return pureMemo[id] == 1;
    const Element& e = dft.element(id);
    bool pure = false;
    if (isStaticGateType(e.type)) {
      std::vector<ElementId> ins = e.inputs;
      std::sort(ins.begin(), ins.end());
      ins.erase(std::unique(ins.begin(), ins.end()), ins.end());
      pure = directDependencies(dft, id) == ins;
    }
    pureMemo[id] = pure ? 1 : 0;
    return pure;
  };
  auto independentRoot = [&](ElementId id) {
    return independentClosure(referencers, dependencyClosure(dft, id), id);
  };

  // Resolve every node reachable from the top: a pure static gate whose
  // inputs all resolve joins the layer; otherwise the node must be the
  // root of an independent module (the layer's frontier stops there); a
  // node that is neither makes the whole layer ineligible.  The greedy
  // preference for expanding keeps the layer maximal — more, smaller
  // modules — and the module fallback recovers exactly the places where
  // expansion would cut through an internal coupling (e.g. a shared spare
  // pool two slots down).
  enum : char { kUnknown = 0, kLayer, kModule, kFail };
  std::vector<char> state(dft.size(), kUnknown);
  std::string failName;
  struct Frame {
    ElementId id;
    std::size_t next = 0;
  };
  std::vector<Frame> stack{{dft.top(), 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (state[f.id] != kUnknown) {
      stack.pop_back();
      continue;
    }
    if (!pureStatic(f.id)) {
      state[f.id] = independentRoot(f.id) ? kModule : kFail;
      if (state[f.id] == kFail && failName.empty())
        failName = dft.element(f.id).name;
      stack.pop_back();
      continue;
    }
    const std::vector<ElementId>& ins = dft.element(f.id).inputs;
    bool descended = false;
    while (f.next < ins.size()) {
      ElementId child = ins[f.next++];
      if (state[child] == kUnknown) {
        stack.push_back({child, 0});
        descended = true;
        break;
      }
    }
    if (descended) continue;
    bool allOk = true;
    for (ElementId in : ins)
      if (state[in] != kLayer && state[in] != kModule) allOk = false;
    if (allOk) {
      state[f.id] = kLayer;
    } else {
      state[f.id] = independentRoot(f.id) ? kModule : kFail;
      if (state[f.id] == kFail && failName.empty())
        failName = dft.element(f.id).name;
    }
    stack.pop_back();
  }

  if (state[dft.top()] != kLayer) {
    out.reason =
        state[dft.top()] == kModule
            ? "the whole tree is one indivisible module (a dynamic coupling "
              "reaches every static gate below the top)"
            : "element '" + failName +
                  "' is neither a pure static gate nor the root of an "
                  "independent module";
    return out;
  }

  // Collect the layer and its frontier from the top (resolution may have
  // classified nodes that only unreachable paths lead to).
  std::vector<char> inLayer(dft.size(), 0), inFrontier(dft.size(), 0);
  std::vector<ElementId> frontier;
  std::vector<ElementId> walk{dft.top()};
  inLayer[dft.top()] = 1;
  out.gates.push_back(dft.top());
  while (!walk.empty()) {
    ElementId g = walk.back();
    walk.pop_back();
    for (ElementId in : dft.element(g).inputs) {
      if (state[in] == kLayer) {
        if (!inLayer[in]) {
          inLayer[in] = 1;
          out.gates.push_back(in);
          walk.push_back(in);
        }
      } else if (!inFrontier[in]) {
        inFrontier[in] = 1;
        frontier.push_back(in);
      }
    }
  }
  std::sort(out.gates.begin(), out.gates.end());
  std::sort(frontier.begin(), frontier.end());

  // Coverage and disjointness: every element belongs to exactly one
  // frontier module's dependency closure, or is a layer gate.  Any overlap
  // is a coupling crossing the layer boundary (a shared spare pool, an
  // FDEP whose trigger and dependent live in different modules, an
  // inhibition across modules); any uncovered element is logic the
  // decomposition cannot account for.  Both make the layer ineligible.
  constexpr ElementId kUnassigned = static_cast<ElementId>(-1);
  constexpr ElementId kLayerColor = static_cast<ElementId>(-2);
  std::vector<ElementId> color(dft.size(), kUnassigned);
  for (ElementId g : out.gates) color[g] = kLayerColor;
  for (ElementId f : frontier) {
    for (ElementId m : dependencyClosure(dft, f)) {
      if (color[m] != kUnassigned) {
        out.gates.clear();
        out.reason =
            "element '" + dft.element(m).name +
            "' is coupled into two frontier modules (a dependency crosses "
            "the layer boundary)";
        return out;
      }
      color[m] = f;
    }
  }
  for (ElementId id = 0; id < dft.size(); ++id) {
    if (color[id] == kUnassigned) {
      out.gates.clear();
      out.reason = "element '" + dft.element(id).name +
                   "' lies outside the layer decomposition";
      return out;
    }
  }

  out.eligible = true;
  out.moduleRoots = std::move(frontier);
  return out;
}

Dft extractModule(const Dft& dft, ElementId root) {
  std::vector<ElementId> members = dependencyClosure(dft, root);
  std::vector<ElementId> remap(dft.size(), static_cast<ElementId>(-1));
  for (std::size_t i = 0; i < members.size(); ++i)
    remap[members[i]] = static_cast<ElementId>(i);
  std::vector<Element> elements;
  elements.reserve(members.size());
  for (ElementId m : members) {
    Element e = dft.element(m);
    for (ElementId& in : e.inputs) in = remap[in];
    elements.push_back(std::move(e));
  }
  std::vector<Inhibition> inhibitions;
  for (const Inhibition& inh : dft.inhibitions()) {
    // The closure contains the inhibitor whenever it contains the target.
    if (std::binary_search(members.begin(), members.end(), inh.target))
      inhibitions.push_back({remap[inh.inhibitor], remap[inh.target]});
  }
  return Dft(std::move(elements), remap[root], std::move(inhibitions));
}

}  // namespace imcdft::dft
