#pragma once

#include <string>

#include "dft/model.hpp"

/// \file galileo.hpp
/// Parser for the Galileo DFT textual format [11], the input format the
/// paper's conversion tool consumes, extended with the paper's Section 7
/// elements:
///
/// \code
///   toplevel "System";
///   "System" or "CPU" "Motors";
///   "CPU"    wsp "P" "B";           // primary first, spares in claim order
///   "V"      2of3 "x" "y" "z";      // voting gate
///   "F"      fdep "T" "P" "B";      // trigger first, then dependents
///   "S"      seq "a" "b" "c";       // sequence enforcing
///   "M"      mutex "open" "closed"; // Section 7.1 mutual exclusivity
///   "I"      inhibit "B" "A";       // A inhibits B (A first prevents B)
///   "P"      lambda=0.5 dorm=0.3 mu=1.2;   // BE: rate, dormancy, repair
/// \endcode
///
/// Comments: // to end of line and /* ... */.  Names may be quoted or bare
/// words.  Gate keywords are case-insensitive; `spare` is a synonym for
/// `wsp`.

namespace imcdft::dft {

/// Parses a Galileo description into a validated Dft.
/// Throws ParseError (with line information) on syntax errors and
/// ModelError on structural ones.
Dft parseGalileo(const std::string& text);

/// Prints \p dft back as Galileo text such that
/// parseGalileo(printGalileo(dft)) reconstructs the tree exactly:
/// elements are emitted in id order (the parser assigns ids in statement
/// order), every basic-event attribute is written explicitly (doubles in
/// shortest round-trip form via std::to_chars) and each inhibition becomes
/// its own `inhibit` statement in declaration order.  The fuzzing
/// shrinker relies on this faithfulness to emit replayable repro files;
/// the property is enforced over every generator output in
/// tests/test_generate.cpp.
std::string printGalileo(const Dft& dft);

}  // namespace imcdft::dft
