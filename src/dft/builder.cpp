#include "dft/builder.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace imcdft::dft {

DftBuilder::PendingElement& DftBuilder::add(const std::string& name,
                                            ElementType type) {
  require(!name.empty(), "DftBuilder: empty element name");
  for (const auto& p : pending_)
    require(p.element.name != name,
            "DftBuilder: duplicate element name '" + name + "'");
  PendingElement p;
  p.element.name = name;
  p.element.type = type;
  pending_.push_back(std::move(p));
  return pending_.back();
}

DftBuilder& DftBuilder::basicEvent(const std::string& name, double lambda,
                                   std::optional<double> dormancy,
                                   std::optional<double> repairRate,
                                   std::uint32_t phases) {
  PendingElement& p = add(name, ElementType::BasicEvent);
  p.element.be.lambda = lambda;
  if (dormancy) {
    p.element.be.dormancy = *dormancy;
    p.dormancyExplicit = true;
  }
  p.element.be.repairRate = repairRate;
  p.element.be.phases = phases;
  return *this;
}

DftBuilder& DftBuilder::andGate(const std::string& name,
                                const std::vector<std::string>& inputs) {
  add(name, ElementType::And).inputNames = inputs;
  return *this;
}

DftBuilder& DftBuilder::orGate(const std::string& name,
                               const std::vector<std::string>& inputs) {
  add(name, ElementType::Or).inputNames = inputs;
  return *this;
}

DftBuilder& DftBuilder::votingGate(const std::string& name, std::uint32_t k,
                                   const std::vector<std::string>& inputs) {
  PendingElement& p = add(name, ElementType::Voting);
  p.element.votingThreshold = k;
  p.inputNames = inputs;
  return *this;
}

DftBuilder& DftBuilder::pandGate(const std::string& name,
                                 const std::vector<std::string>& inputs) {
  add(name, ElementType::Pand).inputNames = inputs;
  return *this;
}

DftBuilder& DftBuilder::spareGate(const std::string& name, SpareKind kind,
                                  const std::vector<std::string>& inputs) {
  PendingElement& p = add(name, ElementType::Spare);
  p.element.spareKind = kind;
  p.inputNames = inputs;
  return *this;
}

DftBuilder& DftBuilder::seqGate(const std::string& name,
                                const std::vector<std::string>& inputs) {
  PendingElement& p = add(name, ElementType::Seq);
  p.element.spareKind = SpareKind::Cold;
  p.inputNames = inputs;
  return *this;
}

DftBuilder& DftBuilder::fdep(const std::string& name,
                             const std::string& trigger,
                             const std::vector<std::string>& dependents) {
  PendingElement& p = add(name, ElementType::Fdep);
  p.inputNames.push_back(trigger);
  p.inputNames.insert(p.inputNames.end(), dependents.begin(),
                      dependents.end());
  return *this;
}

DftBuilder& DftBuilder::inhibition(const std::string& inhibitor,
                                   const std::string& target) {
  inhibitions_.emplace_back(inhibitor, target);
  return *this;
}

DftBuilder& DftBuilder::mutex(const std::vector<std::string>& elements) {
  for (std::size_t i = 0; i < elements.size(); ++i)
    for (std::size_t j = 0; j < elements.size(); ++j)
      if (i != j) inhibitions_.emplace_back(elements[i], elements[j]);
  return *this;
}

DftBuilder& DftBuilder::top(const std::string& name) {
  topName_ = name;
  return *this;
}

Dft DftBuilder::build() {
  require(!topName_.empty(), "DftBuilder: top element not set");
  std::unordered_map<std::string, ElementId> byName;
  for (ElementId id = 0; id < pending_.size(); ++id)
    byName.emplace(pending_[id].element.name, id);
  auto resolve = [&](const std::string& name) {
    auto it = byName.find(name);
    require(it != byName.end(), "DftBuilder: unknown element '" + name + "'");
    return it->second;
  };

  // Apply the spare-kind dormancy defaults to directly attached spare BEs.
  for (const PendingElement& gate : pending_) {
    if (gate.element.type != ElementType::Spare &&
        gate.element.type != ElementType::Seq)
      continue;
    for (std::size_t i = 1; i < gate.inputNames.size(); ++i) {
      PendingElement& spare = pending_[resolve(gate.inputNames[i])];
      if (!spare.element.isBasicEvent() || spare.dormancyExplicit) continue;
      switch (gate.element.spareKind) {
        case SpareKind::Cold:
          spare.element.be.dormancy = 0.0;
          spare.dormancyExplicit = true;
          break;
        case SpareKind::Hot:
          spare.element.be.dormancy = 1.0;
          spare.dormancyExplicit = true;
          break;
        case SpareKind::Warm:
          throw ModelError(
              "DftBuilder: warm spare basic event '" +
              spare.element.name +
              "' needs an explicit dormancy factor (dorm attribute)");
      }
    }
  }

  std::vector<Element> elements;
  elements.reserve(pending_.size());
  for (PendingElement& p : pending_) {
    for (const std::string& in : p.inputNames)
      p.element.inputs.push_back(resolve(in));
    elements.push_back(std::move(p.element));
  }
  std::vector<Inhibition> inhibitions;
  for (const auto& [inhibitor, target] : inhibitions_)
    inhibitions.push_back({resolve(inhibitor), resolve(target)});
  return Dft(std::move(elements), resolve(topName_), std::move(inhibitions));
}

}  // namespace imcdft::dft
