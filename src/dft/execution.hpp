#pragma once

#include <deque>
#include <vector>

#include "dft/model.hpp"

/// \file execution.hpp
/// A direct, token-game execution semantics for DFTs: a global
/// configuration plus an instantaneous propagation engine (FDEP cascades,
/// spare claiming and activation, gate firing, inhibition, repair).
///
/// This is the semantics the DIFTree-style monolithic generator expands
/// exhaustively and the Monte-Carlo simulator samples; having both share
/// one engine while the compositional I/O-IMC pipeline implements the
/// semantics completely independently gives the differential test suite
/// two genuinely different oracles.
///
/// Where the I/O-IMC semantics is nondeterministic (simultaneous FDEP
/// kills, claim races, Section 4.4 of the paper) this engine resolves
/// deterministically in declaration order.

namespace imcdft::dft {

/// Fault-injection hook for the differential fuzzing harness (dftfuzz
/// --inject-bug, tests/test_fuzz.cpp): when enabled, the executor ignores
/// PAND input order, silently turning every PAND into an AND.  The
/// compositional pipeline is unaffected, so the oracle must detect the
/// divergence statistically and the shrinker must reduce it to a minimal
/// PAND repro — a standing end-to-end drill that the harness actually
/// catches semantic bugs.  Never enable outside tests; the flag is
/// process-global (atomic) and defaults to off.
void setPandOrderMutationForTesting(bool enabled);
bool pandOrderMutationForTesting();

/// Global configuration of a tree during execution.
struct ExecutionState {
  std::vector<std::uint8_t> failed;     ///< per element
  std::vector<std::uint8_t> active;     ///< per element (BEs & spare gates)
  std::vector<std::uint8_t> inhibited;  ///< per element
  std::vector<std::uint8_t> pandOk;     ///< per element (PANDs only)
  std::vector<std::uint8_t> phase;      ///< per element (Erlang BEs only)
  /// Per spare gate: -1 none, 0 primary, i >= 1 spare i.
  std::vector<std::int8_t> spareCurrent;

  /// Canonical byte encoding (used as the state key by the monolithic
  /// generator).
  std::vector<std::uint8_t> pack() const;
};

/// The instantaneous propagation engine.  Stateless apart from the tree
/// reference; all mutation happens on caller-owned ExecutionStates.
class Executor {
 public:
  explicit Executor(const Dft& dft) : dft_(dft) {}

  /// All-operational configuration with the top's subtree activated.
  ExecutionState initialState() const;

  /// Fails element \p x and runs the cascade to fixpoint.
  void failAndPropagate(ExecutionState& state, ElementId x) const;

  /// Repairs basic event \p x (static repairable trees only).  The Erlang
  /// failure process restarts from phase zero.
  void repairAndPropagate(ExecutionState& state, ElementId x) const;

  /// Recursively activates an element's subtree, claiming spares where a
  /// dormant spare gate with a failed primary becomes active.
  void activate(ExecutionState& state, ElementId e) const;

  /// Current failure rate of basic event \p x (0 when failed, inhibited,
  /// or cold-dormant); per Erlang phase.
  double failureRate(const ExecutionState& state, ElementId x) const;

  const Dft& dft() const { return dft_; }

 private:
  std::uint32_t countFailedInputs(const ExecutionState& state,
                                  ElementId gate) const;
  bool spareAvailable(const ExecutionState& state, ElementId gate,
                      ElementId spare) const;
  void claimNextSpare(ExecutionState& state, ElementId gate,
                      std::deque<ElementId>& queue) const;
  void reconsiderSpareGate(ExecutionState& state, ElementId gate,
                           std::deque<ElementId>& queue) const;
  void fail(ExecutionState& state, ElementId x,
            std::deque<ElementId>& queue) const;

  const Dft& dft_;
};

}  // namespace imcdft::dft
