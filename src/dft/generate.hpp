#pragma once

#include <cstdint>
#include <string>

#include "dft/model.hpp"

/// \file generate.hpp
/// Seeded random-DFT generator, the input side of the mass differential
/// fuzzing harness (src/fuzz, tools/dftfuzz.cpp).
///
/// generateDft(seed) emits a *valid, analyzable* tree over the full gate
/// vocabulary — AND/OR/K-of-M voting, PAND, SPARE with warm/cold/hot
/// dormancy sweeps, FDEP (including multi-dependent triggers, which
/// deliberately produce nondeterministic models), repairable basic events,
/// Erlang phases and the Section 7 inhibition/mutex extensions — with
/// tunable depth/width/sharing knobs.  Every output passes Dft validation
/// *and* the conversion pipeline's checkConvertible, so a generated tree
/// can always be driven through all three backends (composition,
/// static-combine, simulation).
///
/// Determinism contract: the same (seed, options) pair produces the same
/// tree on every platform and standard library (the generator samples
/// through common/rng.hpp, never std::*_distribution), so a CI seed range
/// names the same corpus everywhere and a failing seed is a repro by
/// itself.
///
/// The per-feature arm mask exists so CI can bisect which feature broke: a
/// disagreement that appears with `--arms all` but not `--arms
/// static,pand` indicts the spare/FDEP arms, before any shrinking runs.

namespace imcdft::dft {

/// Feature arms of the generator.  Each bit gates one semantic feature;
/// the structural AND/OR arms are always available as fallback so every
/// mask yields valid trees.
enum GeneratorArm : std::uint32_t {
  ArmAnd = 1u << 0,
  ArmOr = 1u << 1,
  ArmVoting = 1u << 2,
  ArmPand = 1u << 3,
  ArmSpare = 1u << 4,    ///< spare gates incl. warm/cold/hot dormancy sweep
  ArmFdep = 1u << 5,     ///< functional dependencies (multi-dependent too)
  ArmRepair = 1u << 6,   ///< repairable static trees (Section 7.2)
  ArmInhibit = 1u << 7,  ///< inhibition pairs (Section 7.1)
  ArmMutex = 1u << 8,    ///< pairwise mutual exclusion (Section 7.1)
  ArmErlang = 1u << 9,   ///< Erlang failure phases > 1
  ArmShare = 1u << 10,   ///< shared basic events / shared spare pools
};

/// All arms enabled (the default fuzzing vocabulary).
inline constexpr std::uint32_t kAllArms =
    ArmAnd | ArmOr | ArmVoting | ArmPand | ArmSpare | ArmFdep | ArmRepair |
    ArmInhibit | ArmMutex | ArmErlang | ArmShare;
/// The static subset: AND/OR/VOTING over plain exponential events.
inline constexpr std::uint32_t kStaticArms = ArmAnd | ArmOr | ArmVoting;

struct GeneratorOptions {
  std::uint32_t arms = kAllArms;
  /// Maximum gate nesting depth below the top gate.
  std::uint32_t maxDepth = 3;
  /// Maximum inputs per AND/OR/VOTING gate (PANDs cap at 3, spare gates
  /// carry a primary plus 1-2 spares).
  std::uint32_t maxChildren = 3;
  /// Soft cap on total elements; subtree expansion stops once reached.
  std::uint32_t maxElements = 18;
  /// Probability that a leaf position reuses an existing shared basic
  /// event instead of minting a fresh one (ArmShare).
  double shareProbability = 0.3;
  /// Probability that a tree with ArmRepair becomes a repairable static
  /// tree (the framework defines repair only for AND/OR/VOTING trees).
  double repairableProbability = 0.15;
  /// Failure-rate range; rates are rounded to 3 decimals for readable
  /// Galileo repro files.
  double lambdaMin = 0.2;
  double lambdaMax = 2.5;
};

/// Generates the deterministic random tree of \p seed.  The result always
/// validates and converts (analysis::checkConvertible); internally the
/// generator retries with progressively tamer feature settings on the rare
/// structural clash, consuming nothing from the main stream, so the
/// mapping seed -> tree stays total and deterministic.
Dft generateDft(std::uint64_t seed, const GeneratorOptions& opts = {});

/// Parses a comma-separated arm list ("pand,spare,share", "all",
/// "static") into a mask; throws Error on unknown names.
std::uint32_t parseArms(const std::string& text);

/// Human-readable arm list of \p mask ("and,or,voting,...").
std::string describeArms(std::uint32_t mask);

}  // namespace imcdft::dft
