#include "dft/model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imcdft::dft {

Dft::Dft(std::vector<Element> elements, ElementId top,
         std::vector<Inhibition> inhibitions)
    : elements_(std::move(elements)),
      top_(top),
      inhibitions_(std::move(inhibitions)) {
  parents_.resize(elements_.size());
  for (ElementId id = 0; id < elements_.size(); ++id) {
    require(byName_.emplace(elements_[id].name, id).second,
            "Dft: duplicate element name '" + elements_[id].name + "'");
    for (ElementId in : elements_[id].inputs) {
      require(in < elements_.size(), "Dft: input id out of range");
      parents_[in].push_back(id);
    }
  }
  validate();
}

ElementId Dft::byName(const std::string& name) const {
  auto it = byName_.find(name);
  require(it != byName_.end(), "Dft: unknown element '" + name + "'");
  return it->second;
}

std::optional<ElementId> Dft::findByName(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

std::vector<ElementId> Dft::spareUsers(ElementId id) const {
  std::vector<ElementId> out;
  for (ElementId p : parents_[id]) {
    const Element& g = elements_[p];
    if (g.type != ElementType::Spare && g.type != ElementType::Seq) continue;
    for (std::size_t i = 1; i < g.inputs.size(); ++i)
      if (g.inputs[i] == id) {
        out.push_back(p);
        break;
      }
  }
  return out;
}

std::optional<ElementId> Dft::primaryUser(ElementId id) const {
  for (ElementId p : parents_[id]) {
    const Element& g = elements_[p];
    if ((g.type == ElementType::Spare || g.type == ElementType::Seq) &&
        g.inputs.front() == id)
      return p;
  }
  return std::nullopt;
}

std::vector<ElementId> Dft::fdepsTargeting(ElementId id) const {
  std::vector<ElementId> out;
  for (ElementId p : parents_[id]) {
    const Element& g = elements_[p];
    if (g.type != ElementType::Fdep) continue;
    for (std::size_t i = 1; i < g.inputs.size(); ++i)
      if (g.inputs[i] == id) {
        out.push_back(p);
        break;
      }
  }
  return out;
}

std::vector<ElementId> Dft::inhibitorsOf(ElementId id) const {
  std::vector<ElementId> out;
  for (const Inhibition& inh : inhibitions_)
    if (inh.target == id) out.push_back(inh.inhibitor);
  return out;
}

bool Dft::isDynamic() const {
  if (!inhibitions_.empty()) return true;
  return std::any_of(elements_.begin(), elements_.end(),
                     [](const Element& e) { return e.isDynamicGate(); });
}

bool Dft::isRepairable() const {
  return std::any_of(elements_.begin(), elements_.end(), [](const Element& e) {
    return e.isBasicEvent() && e.be.repairRate.has_value();
  });
}

std::vector<ElementId> Dft::topologicalOrder() const {
  std::vector<std::uint32_t> pendingInputs(elements_.size(), 0);
  for (ElementId id = 0; id < elements_.size(); ++id)
    pendingInputs[id] = static_cast<std::uint32_t>(elements_[id].inputs.size());
  std::vector<ElementId> ready, order;
  for (ElementId id = 0; id < elements_.size(); ++id)
    if (pendingInputs[id] == 0) ready.push_back(id);
  while (!ready.empty()) {
    ElementId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (ElementId p : parents_[id])
      if (--pendingInputs[p] == 0) ready.push_back(p);
  }
  require(order.size() == elements_.size(), "Dft: cycle among elements");
  return order;
}

void Dft::validate() const {
  require(!elements_.empty(), "Dft: empty tree");
  require(top_ < elements_.size(), "Dft: top element out of range");
  require(elements_[top_].type != ElementType::Fdep,
          "Dft: the top element may not be an FDEP gate (dummy output)");

  for (ElementId id = 0; id < elements_.size(); ++id) {
    const Element& e = elements_[id];
    switch (e.type) {
      case ElementType::BasicEvent:
        require(e.inputs.empty(), "Dft: basic event '" + e.name + "' has inputs");
        require(e.be.lambda > 0.0,
                "Dft: basic event '" + e.name + "' needs lambda > 0");
        require(e.be.dormancy >= 0.0 && e.be.dormancy <= 1.0,
                "Dft: basic event '" + e.name + "' needs dormancy in [0,1]");
        if (e.be.repairRate)
          require(*e.be.repairRate > 0.0,
                  "Dft: basic event '" + e.name + "' needs repair rate > 0");
        require(e.be.phases >= 1 && e.be.phases <= 64,
                "Dft: basic event '" + e.name + "' needs phases in [1, 64]");
        break;
      case ElementType::And:
      case ElementType::Or:
        require(!e.inputs.empty(), "Dft: gate '" + e.name + "' has no inputs");
        break;
      case ElementType::Voting:
        require(!e.inputs.empty(), "Dft: gate '" + e.name + "' has no inputs");
        require(e.votingThreshold >= 1 &&
                    e.votingThreshold <= e.inputs.size(),
                "Dft: voting gate '" + e.name + "' has threshold out of range");
        break;
      case ElementType::Pand:
        require(e.inputs.size() >= 2,
                "Dft: PAND gate '" + e.name + "' needs at least 2 inputs");
        break;
      case ElementType::Spare:
      case ElementType::Seq:
        require(e.inputs.size() >= 2,
                "Dft: spare/seq gate '" + e.name +
                    "' needs a primary and at least one spare");
        break;
      case ElementType::Fdep:
        require(e.inputs.size() >= 2,
                "Dft: FDEP gate '" + e.name +
                    "' needs a trigger and at least one dependent");
        break;
    }
    // FDEP outputs are dummy: nothing may use an FDEP as an input, and
    // FDEP gates themselves may not be triggers/dependents/spares.
    for (ElementId in : e.inputs)
      require(elements_[in].type != ElementType::Fdep,
              "Dft: FDEP gate '" + elements_[in].name +
                  "' used as an input of '" + e.name + "'");
  }
  for (const Inhibition& inh : inhibitions_) {
    require(inh.inhibitor < elements_.size() && inh.target < elements_.size(),
            "Dft: inhibition ids out of range");
    require(elements_[inh.target].type != ElementType::Fdep &&
                elements_[inh.inhibitor].type != ElementType::Fdep,
            "Dft: FDEP gates cannot take part in inhibitions");
  }
  // Acyclicity (throws on cycles).
  (void)topologicalOrder();
}

}  // namespace imcdft::dft
