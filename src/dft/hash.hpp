#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dft/model.hpp"

/// \file hash.hpp
/// Canonical fingerprints of fault trees, the foundation of the Analyzer's
/// session caches (analysis/analyzer.hpp) and of the engine's symmetry
/// reduction (analysis/engine.hpp).
///
/// Two kinds of key are provided:
///
///  * canonicalKey() / moduleKey() — *exact* keys.  Two trees that differ
///    only in declaration order (and therefore in element ids) serialize to
///    the same canonical key: elements are emitted sorted by name, with
///    inputs referred to by name.  Everything that influences the converted
///    I/O-IMC community is included — element types, input order
///    (semantically relevant for PAND/SPARE/FDEP/SEQ), voting thresholds,
///    spare kinds, basic-event attributes, inhibitions and the top element.
///
///  * moduleShape() — a *rename-invariant* key.  Element names are replaced
///    by De Bruijn-style indices (the element's position in the extracted
///    module, i.e. declaration order within the module), and the concrete
///    names are emitted alongside, in index order.  Two modules with equal
///    shape keys are isomorphic as DFTs under the substitution
///    names()[i] -> otherNames()[i]; the engine exploits this to aggregate
///    one representative per shape and instantiate the isomorphic siblings
///    via ioimc::renameActions (the paper's Section 5.2 reuse-by-renaming,
///    automated).

namespace imcdft::dft {

/// Exact canonical serialization of \p dft (collision-free cache key).
std::string canonicalKey(const Dft& dft);

/// FNV-1a 64-bit hash of canonicalKey() (compact fingerprint for reports).
std::uint64_t canonicalHash(const Dft& dft);

/// Canonical key of the independent module rooted at \p root, i.e. of the
/// standalone sub-DFT over its dependency closure (see dft/modules.hpp).
/// Identical module keys across different trees mean the module converts
/// and aggregates to the same I/O-IMC, provided the module is always
/// active (the Analyzer checks that before reusing a cached model).
std::string moduleKey(const Dft& dft, ElementId root);

/// The rename-invariant fingerprint of one independent module: the
/// canonical serialization with element names replaced by indices, plus
/// the concrete names those indices stand for.
struct ModuleShape {
  /// Serialization of the module sub-DFT over name indices ("#0", "#1",
  /// ...).  Equal keys imply DFT isomorphism under the index-wise name
  /// substitution.
  std::string key;
  /// Concrete element names in index order (index i of the key names
  /// names[i]).  Indices follow the module's internal declaration order,
  /// so two clones of a sub-tree match only when their members are
  /// declared in the same relative order — a conservative, never unsound
  /// restriction.
  std::vector<std::string> names;
};

/// Computes the shape of the independent module rooted at \p root (the
/// standalone sub-DFT over its dependency closure, as extractModule()
/// builds it).
ModuleShape moduleShape(const Dft& dft, ElementId root);

/// FNV-1a 64-bit hash over an arbitrary string (exposed for option keys).
std::uint64_t fnv1a(const std::string& text);

}  // namespace imcdft::dft
