#pragma once

#include <cstdint>
#include <string>

#include "dft/model.hpp"

/// \file hash.hpp
/// Canonical fingerprints of fault trees, the foundation of the Analyzer's
/// session caches (analysis/analyzer.hpp).  Two trees that differ only in
/// declaration order (and therefore in element ids) serialize to the same
/// canonical key: elements are emitted sorted by name, with inputs referred
/// to by name.  Everything that influences the converted I/O-IMC community
/// is included — element types, input order (semantically relevant for
/// PAND/SPARE/FDEP/SEQ), voting thresholds, spare kinds, basic-event
/// attributes, inhibitions and the top element.

namespace imcdft::dft {

/// Exact canonical serialization of \p dft (collision-free cache key).
std::string canonicalKey(const Dft& dft);

/// FNV-1a 64-bit hash of canonicalKey() (compact fingerprint for reports).
std::uint64_t canonicalHash(const Dft& dft);

/// Canonical key of the independent module rooted at \p root, i.e. of the
/// standalone sub-DFT over its dependency closure (see dft/modules.hpp).
/// Identical module keys across different trees mean the module converts
/// and aggregates to the same I/O-IMC, provided the module is always
/// active (the Analyzer checks that before reusing a cached model).
std::string moduleKey(const Dft& dft, ElementId root);

/// FNV-1a 64-bit hash over an arbitrary string (exposed for option keys).
std::uint64_t fnv1a(const std::string& text);

}  // namespace imcdft::dft
