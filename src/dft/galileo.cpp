#include "dft/galileo.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "dft/builder.hpp"

namespace imcdft::dft {

namespace {

struct Token {
  enum class Kind { Name, Equals, Semicolon, End };
  Kind kind = Kind::End;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skipWhitespaceAndComments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) {
      tok.kind = Token::Kind::End;
      return tok;
    }
    char c = text_[pos_];
    if (c == ';') {
      ++pos_;
      tok.kind = Token::Kind::Semicolon;
      return tok;
    }
    if (c == '=') {
      ++pos_;
      tok.kind = Token::Kind::Equals;
      return tok;
    }
    if (c == '"') {
      ++pos_;
      std::string name;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\n') ++line_;
        name += text_[pos_++];
      }
      if (pos_ >= text_.size())
        throw ParseError("unterminated quoted name", tok.line);
      ++pos_;  // closing quote
      tok.kind = Token::Kind::Name;
      tok.text = std::move(name);
      return tok;
    }
    if (isWordChar(c)) {
      std::string word;
      while (pos_ < text_.size() && isWordChar(text_[pos_]))
        word += text_[pos_++];
      tok.kind = Token::Kind::Name;
      tok.text = std::move(word);
      return tok;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", line_);
  }

 private:
  static bool isWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-' || c == '+';
  }

  void skipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= text_.size())
          throw ParseError("unterminated block comment", line_);
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

std::string toLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Parses "KofM" (e.g. "2of3"); returns K when the word has that shape.
std::optional<std::uint32_t> parseVoting(const std::string& word,
                                         std::size_t* outOf) {
  std::size_t pos = word.find("of");
  if (pos == std::string::npos || pos == 0 || pos + 2 >= word.size())
    return std::nullopt;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (i >= pos && i < pos + 2) continue;
    if (!std::isdigit(static_cast<unsigned char>(word[i]))) return std::nullopt;
  }
  std::uint32_t k = static_cast<std::uint32_t>(
      std::strtoul(word.substr(0, pos).c_str(), nullptr, 10));
  *outOf = std::strtoul(word.substr(pos + 2).c_str(), nullptr, 10);
  return k;
}

double parseNumber(const std::string& text, int line) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0')
    throw ParseError("expected a number, got '" + text + "'", line);
  return value;
}

}  // namespace

Dft parseGalileo(const std::string& text) {
  Lexer lexer(text);
  DftBuilder builder;
  bool sawToplevel = false;

  Token tok = lexer.next();
  while (tok.kind != Token::Kind::End) {
    if (tok.kind != Token::Kind::Name)
      throw ParseError("expected a statement", tok.line);
    const int stmtLine = tok.line;

    // Collect the raw statement up to the semicolon.
    std::vector<Token> stmt;
    stmt.push_back(tok);
    while (true) {
      tok = lexer.next();
      if (tok.kind == Token::Kind::End)
        throw ParseError("missing ';' at end of input", stmtLine);
      if (tok.kind == Token::Kind::Semicolon) break;
      stmt.push_back(tok);
    }
    tok = lexer.next();  // lookahead for the next statement

    const std::string head = toLower(stmt[0].text);
    if (head == "toplevel") {
      if (stmt.size() != 2 || stmt[1].kind != Token::Kind::Name)
        throw ParseError("toplevel expects exactly one element name", stmtLine);
      builder.top(stmt[1].text);
      sawToplevel = true;
      continue;
    }

    if (stmt.size() < 2) throw ParseError("incomplete statement", stmtLine);

    if (stmt[1].kind == Token::Kind::Equals || (stmt.size() >= 3 &&
        stmt[2].kind == Token::Kind::Equals)) {
      // Basic event: <name> attr=value ...
      const std::string name = stmt[0].text;
      std::optional<double> lambda, dorm, mu;
      std::uint32_t phases = 1;
      std::size_t i = 1;
      while (i < stmt.size()) {
        if (i + 2 >= stmt.size())
          throw ParseError("malformed attribute", stmtLine);
        if (stmt[i].kind != Token::Kind::Name ||
            stmt[i + 1].kind != Token::Kind::Equals ||
            stmt[i + 2].kind != Token::Kind::Name)
          throw ParseError("malformed attribute (expected key=value)",
                           stmtLine);
        const std::string key = toLower(stmt[i].text);
        const double value = parseNumber(stmt[i + 2].text, stmt[i + 2].line);
        if (key == "lambda" || key == "rate")
          lambda = value;
        else if (key == "dorm")
          dorm = value;
        else if (key == "mu" || key == "repair")
          mu = value;
        else if (key == "phases")
          phases = static_cast<std::uint32_t>(value);
        else
          throw ParseError("unknown basic event attribute '" + key + "'",
                           stmtLine);
        i += 3;
      }
      if (!lambda)
        throw ParseError("basic event '" + name + "' needs lambda=", stmtLine);
      builder.basicEvent(name, *lambda, dorm, mu, phases);
      continue;
    }

    // Gate: <name> <type> <input>+
    const std::string name = stmt[0].text;
    const std::string type = toLower(stmt[1].text);
    std::vector<std::string> inputs;
    for (std::size_t i = 2; i < stmt.size(); ++i) {
      if (stmt[i].kind != Token::Kind::Name)
        throw ParseError("expected input name", stmt[i].line);
      inputs.push_back(stmt[i].text);
    }
    if (inputs.empty())
      throw ParseError("gate '" + name + "' has no inputs", stmtLine);

    std::size_t outOf = 0;
    if (auto k = parseVoting(type, &outOf)) {
      if (outOf != inputs.size())
        throw ParseError("voting gate '" + name + "' declares " +
                             std::to_string(outOf) + " inputs but lists " +
                             std::to_string(inputs.size()),
                         stmtLine);
      builder.votingGate(name, *k, inputs);
    } else if (type == "and") {
      builder.andGate(name, inputs);
    } else if (type == "or") {
      builder.orGate(name, inputs);
    } else if (type == "pand") {
      builder.pandGate(name, inputs);
    } else if (type == "wsp" || type == "spare") {
      builder.spareGate(name, SpareKind::Warm, inputs);
    } else if (type == "csp") {
      builder.spareGate(name, SpareKind::Cold, inputs);
    } else if (type == "hsp") {
      builder.spareGate(name, SpareKind::Hot, inputs);
    } else if (type == "seq") {
      builder.seqGate(name, inputs);
    } else if (type == "fdep") {
      if (inputs.size() < 2)
        throw ParseError("fdep '" + name + "' needs a trigger and dependents",
                         stmtLine);
      builder.fdep(name, inputs.front(),
                   {inputs.begin() + 1, inputs.end()});
    } else if (type == "mutex") {
      builder.mutex(inputs);
    } else if (type == "inhibit") {
      if (inputs.size() < 2)
        throw ParseError(
            "inhibit '" + name + "' needs a target and at least one inhibitor",
            stmtLine);
      for (std::size_t i = 1; i < inputs.size(); ++i)
        builder.inhibition(inputs[i], inputs.front());
    } else {
      throw ParseError("unknown gate type '" + type + "'", stmtLine);
    }
  }

  if (!sawToplevel) throw ParseError("missing toplevel declaration", 1);
  return builder.build();
}

namespace {

/// Shortest decimal representation that strtod parses back bit-exactly.
std::string formatNumber(double value) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  require(ec == std::errc(), "printGalileo: number formatting failed");
  return std::string(buf, end);
}

std::string quoted(const std::string& name) { return '"' + name + '"'; }

const char* spareKeyword(SpareKind kind) {
  switch (kind) {
    case SpareKind::Cold: return "csp";
    case SpareKind::Warm: return "wsp";
    case SpareKind::Hot: return "hsp";
  }
  return "wsp";
}

}  // namespace

std::string printGalileo(const Dft& dft) {
  std::string out;
  out += "toplevel " + quoted(dft.element(dft.top()).name) + ";\n";

  for (ElementId id = 0; id < dft.size(); ++id) {
    const Element& e = dft.element(id);
    if (e.isBasicEvent()) {
      out += quoted(e.name) + " lambda=" + formatNumber(e.be.lambda) +
             " dorm=" + formatNumber(e.be.dormancy);
      if (e.be.repairRate)
        out += " mu=" + formatNumber(*e.be.repairRate);
      if (e.be.phases != 1)
        out += " phases=" + std::to_string(e.be.phases);
      out += ";\n";
      continue;
    }
    out += quoted(e.name) + ' ';
    switch (e.type) {
      case ElementType::And: out += "and"; break;
      case ElementType::Or: out += "or"; break;
      case ElementType::Voting:
        out += std::to_string(e.votingThreshold) + "of" +
               std::to_string(e.inputs.size());
        break;
      case ElementType::Pand: out += "pand"; break;
      case ElementType::Spare: out += spareKeyword(e.spareKind); break;
      case ElementType::Seq: out += "seq"; break;
      case ElementType::Fdep: out += "fdep"; break;
      case ElementType::BasicEvent: break;  // handled above
    }
    for (ElementId in : e.inputs) out += ' ' + quoted(dft.element(in).name);
    out += ";\n";
  }

  // One `inhibit` statement per inhibition, in declaration order, so the
  // parser rebuilds the inhibitions vector exactly (mutexes were already
  // expanded pairwise at build time).  Statement names must not collide
  // with element names; they create no elements, only a label.
  std::size_t counter = 0;
  for (const Inhibition& inh : dft.inhibitions()) {
    std::string label;
    do {
      label = "inh" + std::to_string(counter++);
    } while (dft.findByName(label));
    out += quoted(label) + " inhibit " + quoted(dft.element(inh.target).name) +
           ' ' + quoted(dft.element(inh.inhibitor).name) + ";\n";
  }
  return out;
}

}  // namespace imcdft::dft
