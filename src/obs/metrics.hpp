#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>

/// \file metrics.hpp
/// Central metrics registry: named counters, gauges and log-linear
/// histograms behind one interface.  All update paths are single atomic
/// operations (wait-free); registration returns stable references, so hot
/// paths resolve a metric once (function-local static) and never touch the
/// registry again.  The whole registry serialises to JSON for the
/// `dftimc --metrics-json` end-of-run dump.
namespace imcdft::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins (or high-watermark) gauge.
class Gauge {
 public:
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise to `v` if larger (high-watermark use, e.g. peak live states).
  void atLeast(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log-linear histogram over non-negative integer samples (16 sub-buckets
/// per power of two, ~6% relative quantile error).  Units are up to the
/// caller; latency histograms record nanoseconds.
class Histogram {
 public:
  /// Values 0..15 map to exact buckets; larger values land in bucket
  /// 16*(octave-3)+sub, giving 16 + 60*16 buckets over the uint64 range.
  static constexpr std::size_t kBuckets = 16 + 60 * 16;

  void record(std::uint64_t v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t minValue() const;  ///< 0 when empty
  std::uint64_t maxValue() const;
  double mean() const;
  /// Approximate quantile (bucket-midpoint interpolation); q in [0,1].
  /// Returns 0 when empty.
  double quantile(double q) const;
  void reset();

 private:
  static std::size_t bucketIndex(std::uint64_t v);
  static double bucketMid(std::size_t index);

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Name -> metric map.  counter()/gauge()/histogram() register on first
/// use and return references that stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry every pipeline metric lives in.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Serialise every registered metric, sorted by name:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,mean,p50,p90,p95,p99}}}.  Every emitted number is finite.
  void writeJson(std::ostream& out) const;

  /// Zero all values (registrations and references stay valid).
  void reset();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace imcdft::obs
