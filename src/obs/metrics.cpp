#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace imcdft::obs {

namespace {

/// Raise-to / lower-to CAS loops for the min/max watermarks.
void atomicMin(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucketIndex(std::uint64_t v) {
  if (v < 16) return static_cast<std::size_t>(v);
  const int octave = 63 - std::countl_zero(v);  // >= 4
  const std::uint64_t sub = (v >> (octave - 4)) & 15u;
  return 16 + static_cast<std::size_t>(octave - 4) * 16 +
         static_cast<std::size_t>(sub);
}

double Histogram::bucketMid(std::size_t index) {
  if (index < 16) return static_cast<double>(index);
  const std::size_t octave = 4 + (index - 16) / 16;
  const std::uint64_t sub = (index - 16) % 16;
  const double lower = std::ldexp(1.0, static_cast<int>(octave)) +
                       static_cast<double>(sub) *
                           std::ldexp(1.0, static_cast<int>(octave) - 4);
  const double width = std::ldexp(1.0, static_cast<int>(octave) - 4);
  return lower + width / 2.0;
}

void Histogram::record(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomicMin(min_, v);
  atomicMax(max_, v);
  buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::minValue() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

std::uint64_t Histogram::maxValue() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, nearest-rank definition).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // Clamp the bucket estimate into the observed range so tiny
      // populations report sane numbers.
      double est = bucketMid(i);
      est = std::max(est, static_cast<double>(minValue()));
      est = std::min(est, static_cast<double>(maxValue()));
      return est;
    }
  }
  return static_cast<double>(maxValue());
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // usable during exit
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end())
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end())
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end())
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

namespace {

void appendEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void appendNumber(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

void MetricsRegistry::writeJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string body;
  body += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    \"";
    appendEscaped(body, name);
    char buf[32];
    std::snprintf(buf, sizeof buf, "\": %llu",
                  static_cast<unsigned long long>(c->value()));
    body += buf;
  }
  body += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    \"";
    appendEscaped(body, name);
    char buf[32];
    std::snprintf(buf, sizeof buf, "\": %llu",
                  static_cast<unsigned long long>(g->value()));
    body += buf;
  }
  body += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    \"";
    appendEscaped(body, name);
    body += "\": {";
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                  "\"max\": %llu, ",
                  static_cast<unsigned long long>(h->count()),
                  static_cast<unsigned long long>(h->sum()),
                  static_cast<unsigned long long>(h->minValue()),
                  static_cast<unsigned long long>(h->maxValue()));
    body += buf;
    body += "\"mean\": ";
    appendNumber(body, h->mean());
    body += ", \"p50\": ";
    appendNumber(body, h->quantile(0.50));
    body += ", \"p90\": ";
    appendNumber(body, h->quantile(0.90));
    body += ", \"p95\": ";
    appendNumber(body, h->quantile(0.95));
    body += ", \"p99\": ";
    appendNumber(body, h->quantile(0.99));
    body += "}";
  }
  body += "\n  }\n}\n";
  out << body;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

}  // namespace imcdft::obs
