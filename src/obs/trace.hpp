#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file trace.hpp
/// Low-overhead structured tracing: RAII scoped spans with typed integer
/// attributes, written into lock-free per-thread ring buffers and exported
/// as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
///
/// Design notes (see ARCHITECTURE.md "Observability"):
///  - A span is recorded as ONE complete ring entry, written once when the
///    span ends.  Export expands each entry into a balanced begin/end pair
///    ordered by a per-thread sequence number, so a drained trace is always
///    well formed: begins and ends balance per thread, per-thread
///    timestamps are monotonic, and dropping whole entries from a full
///    ring can never orphan a begin (any subset of a properly nested span
///    family is still properly nested).
///  - The ring overwrites oldest-first, so the late-written outer spans
///    (request, compose, measure) survive even when a pathological run
///    overflows a thread's ring with fine-grained inner spans.
///  - Tracing off is a dead branch: every emit site starts with one
///    relaxed atomic load and a predictable branch; no ring is even
///    allocated until a thread emits its first event while enabled.
///    Measures are bitwise identical with tracing on vs off (tested).
namespace imcdft::obs {

/// One typed span/instant attribute: a label and an integer value.
struct TraceArg {
  const char* key = "";
  std::uint64_t value = 0;
};

inline constexpr std::size_t kMaxTraceArgs = 4;
/// Inline detail-string capacity (module names, budget axes, ...); longer
/// strings are truncated rather than heap-allocated on the hot path.
inline constexpr std::size_t kTraceDetailBytes = 48;

namespace detail {
extern std::atomic<bool> gTraceEnabled;
}  // namespace detail

/// One relaxed load; the only cost tracing adds when disabled.
inline bool traceEnabled() {
  return detail::gTraceEnabled.load(std::memory_order_relaxed);
}

/// Globally enable/disable span collection.  Enabling does not clear
/// previously collected events; see clearTrace().
void setTraceEnabled(bool on);

/// Drop all collected events (and the dropped-event counters).  Call only
/// while no traced work is running.
void clearTrace();

/// Set the per-thread ring capacity in events for rings allocated after
/// the call (existing rings keep their size).  Call before enabling.
void setTraceCapacity(std::size_t eventsPerThread);

/// The current thread's trace context (a request id; 0 = none).  Exported
/// as the Chrome trace "pid", which groups each request's spans into its
/// own process track in Perfetto.
std::uint64_t currentTraceContext();

/// RAII override of the current thread's trace context.  Worker pools
/// capture the submitting thread's context and re-establish it in the
/// worker so module-task spans land in the right request group.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII scoped span.  Construction snapshots the clock; destruction writes
/// one complete record into the calling thread's ring.  `name` must be a
/// string literal (stored by pointer); `detail` is copied (truncated to
/// kTraceDetailBytes-1).  Everything is a no-op when tracing is disabled
/// at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::string_view detailText = {});
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a typed attribute (up to kMaxTraceArgs; extras are dropped).
  /// `key` must be a string literal.
  void arg(const char* key, std::uint64_t value);

 private:
  const char* name_ = nullptr;  ///< nullptr = span disabled, all no-ops
  std::uint64_t beginNanos_ = 0;
  std::uint64_t beginSeq_ = 0;
  std::uint8_t numArgs_ = 0;
  std::uint8_t detailLen_ = 0;
  TraceArg args_[kMaxTraceArgs];
  char detail_[kTraceDetailBytes];
};

/// Zero-duration instant event (budget trips, fallbacks, cache probes).
void traceInstant(const char* name, std::string_view detailText = {},
                  std::initializer_list<TraceArg> args = {});

/// One drained event, expanded for tests and export.
struct TraceRecord {
  const char* name = "";
  bool instant = false;
  std::uint64_t ctx = 0;      ///< request id (exported pid)
  std::uint32_t tid = 0;      ///< registration-order thread id
  std::uint64_t beginSeq = 0; ///< per-thread order of span begin
  std::uint64_t endSeq = 0;   ///< per-thread order of span end (== beginSeq
                              ///< for instants)
  std::uint64_t beginNanos = 0;
  std::uint64_t durNanos = 0;
  std::string detail;
  std::vector<TraceArg> args;
};

struct TraceSnapshot {
  std::vector<TraceRecord> records;  ///< sorted by (tid, endSeq)
  std::size_t dropped = 0;           ///< ring-overflow losses, all threads
};

/// Drain a copy of every thread's ring.  Quiescent use only: call after
/// all traced worker threads have been joined (the joins establish the
/// needed happens-before edges).
TraceSnapshot snapshotTrace();

struct TraceWriteStats {
  std::size_t events = 0;   ///< JSON events written (B+E+i+metadata)
  std::size_t spans = 0;    ///< duration spans among them
  std::size_t dropped = 0;  ///< ring-overflow losses reported in otherData
};

/// Export everything collected so far as Chrome trace-event JSON
/// ({"traceEvents": [...], ...}; ts/dur in microseconds).  Quiescent use
/// only, like snapshotTrace().
TraceWriteStats writeChromeTrace(std::ostream& out);

}  // namespace imcdft::obs
