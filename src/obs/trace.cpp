#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>

namespace imcdft::obs {

namespace detail {
std::atomic<bool> gTraceEnabled{false};
}  // namespace detail

namespace {

std::atomic<std::size_t> gCapacity{8192};

std::uint64_t nowNanos() {
  // Steady (monotonic) clock relative to a process-lifetime epoch: span
  // timestamps never go backwards within a thread, which the exporter and
  // the trace checker both rely on.
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// One complete span or instant, written exactly once by its owning thread.
struct Event {
  const char* name = "";
  bool instant = false;
  std::uint64_t ctx = 0;
  std::uint64_t beginSeq = 0;
  std::uint64_t endSeq = 0;
  std::uint64_t beginNanos = 0;
  std::uint64_t durNanos = 0;
  std::uint8_t numArgs = 0;
  std::uint8_t detailLen = 0;
  TraceArg args[kMaxTraceArgs];
  char detail[kTraceDetailBytes];
};

/// Per-thread ring.  Only the owning thread writes; drains happen after
/// the owning thread was joined (or from the owning thread itself), so the
/// entries need no per-slot synchronisation — `written` is atomic only to
/// keep the counter itself well defined across that join.
struct Ring {
  Ring(std::uint32_t id, std::size_t cap) : tid(id) {
    events.resize(cap == 0 ? 1 : cap);
  }
  std::uint32_t tid;
  std::vector<Event> events;
  std::atomic<std::uint64_t> written{0};
  std::uint64_t nextSeq = 0;

  void push(const Event& ev) {
    const std::uint64_t w = written.load(std::memory_order_relaxed);
    events[w % events.size()] = ev;
    written.store(w + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

/// The calling thread's ring, allocated and registered on first use (i.e.
/// never for threads that run entirely with tracing off).  The registry
/// holds a shared_ptr so the ring outlives its thread.
Ring* localRing() {
  thread_local std::shared_ptr<Ring> tls;
  if (!tls) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    tls = std::make_shared<Ring>(static_cast<std::uint32_t>(reg.rings.size()) + 1,
                                 gCapacity.load(std::memory_order_relaxed));
    reg.rings.push_back(tls);
  }
  return tls.get();
}

thread_local std::uint64_t tlsContext = 0;

void copyDetail(std::string_view text, char* dst, std::uint8_t& len) {
  const std::size_t n = std::min(text.size(), kTraceDetailBytes - 1);
  std::memcpy(dst, text.data(), n);
  dst[n] = '\0';
  len = static_cast<std::uint8_t>(n);
}

void appendJsonEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void setTraceEnabled(bool on) {
  detail::gTraceEnabled.store(on, std::memory_order_relaxed);
}

void clearTrace() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& ring : reg.rings) ring->written.store(0, std::memory_order_relaxed);
}

void setTraceCapacity(std::size_t eventsPerThread) {
  gCapacity.store(eventsPerThread == 0 ? 1 : eventsPerThread,
                  std::memory_order_relaxed);
}

std::uint64_t currentTraceContext() { return tlsContext; }

ScopedTraceContext::ScopedTraceContext(std::uint64_t ctx) : prev_(tlsContext) {
  tlsContext = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tlsContext = prev_; }

TraceSpan::TraceSpan(const char* name, std::string_view detailText) {
  if (!traceEnabled()) return;  // dead branch: name_ stays null
  name_ = name;
  beginNanos_ = nowNanos();
  beginSeq_ = ++localRing()->nextSeq;
  copyDetail(detailText, detail_, detailLen_);
}

void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (!name_ || numArgs_ >= kMaxTraceArgs) return;
  args_[numArgs_++] = TraceArg{key, value};
}

TraceSpan::~TraceSpan() {
  if (!name_) return;
  Ring* ring = localRing();
  Event ev;
  ev.name = name_;
  ev.instant = false;
  ev.ctx = tlsContext;
  ev.beginSeq = beginSeq_;
  ev.endSeq = ++ring->nextSeq;
  ev.beginNanos = beginNanos_;
  const std::uint64_t end = nowNanos();
  ev.durNanos = end > beginNanos_ ? end - beginNanos_ : 0;
  ev.numArgs = numArgs_;
  for (std::uint8_t i = 0; i < numArgs_; ++i) ev.args[i] = args_[i];
  ev.detailLen = detailLen_;
  std::memcpy(ev.detail, detail_, detailLen_ + 1u);
  ring->push(ev);
}

void traceInstant(const char* name, std::string_view detailText,
                  std::initializer_list<TraceArg> args) {
  if (!traceEnabled()) return;
  Ring* ring = localRing();
  Event ev;
  ev.name = name;
  ev.instant = true;
  ev.ctx = tlsContext;
  ev.beginSeq = ev.endSeq = ++ring->nextSeq;
  ev.beginNanos = nowNanos();
  ev.durNanos = 0;
  for (const TraceArg& a : args) {
    if (ev.numArgs >= kMaxTraceArgs) break;
    ev.args[ev.numArgs++] = a;
  }
  copyDetail(detailText, ev.detail, ev.detailLen);
  ring->push(ev);
}

TraceSnapshot snapshotTrace() {
  TraceSnapshot snap;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::uint64_t written = ring->written.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->events.size();
    const std::uint64_t kept = std::min(written, cap);
    if (written > cap) snap.dropped += static_cast<std::size_t>(written - cap);
    for (std::uint64_t i = 0; i < kept; ++i) {
      const Event& ev = ring->events[i];
      TraceRecord rec;
      rec.name = ev.name;
      rec.instant = ev.instant;
      rec.ctx = ev.ctx;
      rec.tid = ring->tid;
      rec.beginSeq = ev.beginSeq;
      rec.endSeq = ev.endSeq;
      rec.beginNanos = ev.beginNanos;
      rec.durNanos = ev.durNanos;
      rec.detail.assign(ev.detail, ev.detailLen);
      rec.args.assign(ev.args, ev.args + ev.numArgs);
      snap.records.push_back(std::move(rec));
    }
  }
  std::sort(snap.records.begin(), snap.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.endSeq < b.endSeq;
            });
  return snap;
}

TraceWriteStats writeChromeTrace(std::ostream& out) {
  const TraceSnapshot snap = snapshotTrace();

  // Expand each span record into a balanced B/E pair; instants stay 'i'.
  struct JsonEvent {
    const TraceRecord* rec;
    char phase;         // 'B', 'E' or 'i'
    std::uint64_t seq;  // per-thread order
    std::uint64_t tsNanos;
  };
  std::vector<JsonEvent> events;
  events.reserve(snap.records.size() * 2);
  std::set<std::uint64_t> contexts;
  TraceWriteStats stats;
  stats.dropped = snap.dropped;
  for (const TraceRecord& rec : snap.records) {
    contexts.insert(rec.ctx);
    if (rec.instant) {
      events.push_back({&rec, 'i', rec.endSeq, rec.beginNanos});
    } else {
      ++stats.spans;
      events.push_back({&rec, 'B', rec.beginSeq, rec.beginNanos});
      events.push_back({&rec, 'E', rec.endSeq, rec.beginNanos + rec.durNanos});
    }
  }
  // Per-thread sequence order == per-thread timestamp order (same steady
  // clock, same thread); sorting by (tid, seq) keeps each thread's stream
  // monotonic and begins/ends balanced in file order.
  std::sort(events.begin(), events.end(),
            [](const JsonEvent& a, const JsonEvent& b) {
              if (a.rec->tid != b.rec->tid) return a.rec->tid < b.rec->tid;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.phase == 'B';  // defensive; seqs are unique per thread
            });

  std::string body;
  body.reserve(events.size() * 96 + 1024);
  body += "{\"traceEvents\":[\n";
  bool first = true;
  // Process-name metadata: one track group per request context.
  for (std::uint64_t ctx : contexts) {
    if (!first) body += ",\n";
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%llu,\"tid\":0,\"name\":"
                  "\"process_name\",\"args\":{\"name\":\"%s%llu\"}}",
                  static_cast<unsigned long long>(ctx),
                  ctx == 0 ? "dftimc ctx " : "request r",
                  static_cast<unsigned long long>(ctx));
    body += buf;
    ++stats.events;
  }
  for (const JsonEvent& ev : events) {
    if (!first) body += ",\n";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":%llu,\"tid\":%u,"
                  "\"ts\":%.3f",
                  ev.rec->name, ev.phase,
                  static_cast<unsigned long long>(ev.rec->ctx), ev.rec->tid,
                  static_cast<double>(ev.tsNanos) / 1000.0);
    body += buf;
    const bool wantArgs =
        ev.phase != 'E' && (!ev.rec->detail.empty() || !ev.rec->args.empty());
    if (wantArgs) {
      body += ",\"args\":{";
      bool firstArg = true;
      if (!ev.rec->detail.empty()) {
        body += "\"detail\":\"";
        appendJsonEscaped(body, ev.rec->detail);
        body += '"';
        firstArg = false;
      }
      for (const TraceArg& a : ev.rec->args) {
        if (!firstArg) body += ',';
        firstArg = false;
        body += '"';
        appendJsonEscaped(body, a.key);
        std::snprintf(buf, sizeof buf, "\":%llu",
                      static_cast<unsigned long long>(a.value));
        body += buf;
      }
      body += '}';
    }
    body += '}';
    ++stats.events;
  }
  char tail[128];
  std::snprintf(tail, sizeof tail,
                "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"droppedEvents\":%llu}}\n",
                static_cast<unsigned long long>(snap.dropped));
  body += tail;
  out << body;
  return stats;
}

}  // namespace imcdft::obs
