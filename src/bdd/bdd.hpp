#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

/// \file bdd.hpp
/// A small reduced ordered binary decision diagram (ROBDD) package.
///
/// DIFTree (the paper's baseline, [11]) solves *static* fault tree modules
/// with binary decision diagrams; this is the substrate that reproduces
/// that part of the pipeline.  Supports the usual apply-style boolean
/// operators via ITE with a computed-table, top-event probability
/// evaluation by Shannon expansion, and minimal cut set extraction.

namespace imcdft::bdd {

/// Index into the manager's node array.  0 and 1 are the terminals.
using NodeRef = std::uint32_t;

inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

class BddManager {
 public:
  /// Creates a manager for \p numVars variables ordered by index.
  explicit BddManager(std::uint32_t numVars);

  std::uint32_t numVars() const { return numVars_; }

  /// The BDD for variable \p var.
  NodeRef variable(std::uint32_t var);

  NodeRef bddNot(NodeRef f);
  NodeRef bddAnd(NodeRef f, NodeRef g);
  NodeRef bddOr(NodeRef f, NodeRef g);
  /// If-then-else: the universal connective all others reduce to.
  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  /// BDD of "at least k of the given variables/functions are true"
  /// (the K/M voting gate).
  NodeRef atLeast(const std::vector<NodeRef>& fs, std::uint32_t k);

  /// Number of nodes reachable from \p f (terminals excluded).
  std::size_t size(NodeRef f) const;

  /// P(f = 1) when variable v is true independently with probability
  /// \p varProbs[v]; computed by Shannon expansion with memoization.
  double probability(NodeRef f, const std::vector<double>& varProbs) const;

  /// All minimal cut sets of f (monotone f), as sorted variable lists.
  std::vector<std::vector<std::uint32_t>> minimalCutSets(NodeRef f) const;

  /// Total number of live nodes (for benchmarks).
  std::size_t numNodes() const { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t var;
    NodeRef low;
    NodeRef high;
  };

  NodeRef mkNode(std::uint32_t var, NodeRef low, NodeRef high);
  std::uint32_t varOf(NodeRef f) const;

  std::uint32_t numVars_;
  std::vector<Node> nodes_;  // nodes_[0], nodes_[1] are terminal sentinels
  std::unordered_map<std::uint64_t, NodeRef> uniqueTable_;
  mutable std::unordered_map<std::uint64_t, NodeRef> iteCache_;
};

}  // namespace imcdft::bdd
