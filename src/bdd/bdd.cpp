#include "bdd/bdd.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace imcdft::bdd {

namespace {

std::uint64_t tripleKey(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  // 21 bits per component is ample for our node counts.
  return (static_cast<std::uint64_t>(a) << 42) |
         (static_cast<std::uint64_t>(b) << 21) | c;
}

}  // namespace

BddManager::BddManager(std::uint32_t numVars) : numVars_(numVars) {
  // Terminal sentinels: var index beyond every real variable so that the
  // top-variable computation in ite() treats them as "bottom".
  nodes_.push_back({numVars_, kFalse, kFalse});  // 0
  nodes_.push_back({numVars_, kTrue, kTrue});    // 1
}

std::uint32_t BddManager::varOf(NodeRef f) const { return nodes_[f].var; }

NodeRef BddManager::mkNode(std::uint32_t var, NodeRef low, NodeRef high) {
  if (low == high) return low;  // reduction rule
  std::uint64_t key = tripleKey(var, low, high);
  auto [it, inserted] =
      uniqueTable_.try_emplace(key, static_cast<NodeRef>(nodes_.size()));
  if (inserted) nodes_.push_back({var, low, high});
  return it->second;
}

NodeRef BddManager::variable(std::uint32_t var) {
  require(var < numVars_, "BddManager: variable index out of range");
  return mkNode(var, kFalse, kTrue);
}

NodeRef BddManager::ite(NodeRef f, NodeRef g, NodeRef h) {
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  std::uint64_t key = tripleKey(f, g, h);
  auto cached = iteCache_.find(key);
  if (cached != iteCache_.end()) return cached->second;

  std::uint32_t top = std::min({varOf(f), varOf(g), varOf(h)});
  auto cofactor = [&](NodeRef x, bool positive) {
    if (varOf(x) != top) return x;
    return positive ? nodes_[x].high : nodes_[x].low;
  };
  NodeRef high = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  NodeRef low =
      ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  NodeRef result = mkNode(top, low, high);
  iteCache_.emplace(key, result);
  return result;
}

NodeRef BddManager::bddNot(NodeRef f) { return ite(f, kFalse, kTrue); }
NodeRef BddManager::bddAnd(NodeRef f, NodeRef g) { return ite(f, g, kFalse); }
NodeRef BddManager::bddOr(NodeRef f, NodeRef g) { return ite(f, kTrue, g); }

NodeRef BddManager::atLeast(const std::vector<NodeRef>& fs, std::uint32_t k) {
  require(k <= fs.size(), "BddManager::atLeast: threshold exceeds inputs");
  // Dynamic programming over "at least j of the first i inputs".
  // row[j] = BDD for "at least j of the inputs seen so far".
  std::vector<NodeRef> row(k + 1, kFalse);
  row[0] = kTrue;
  for (NodeRef f : fs) {
    for (std::uint32_t j = k; j >= 1; --j)
      row[j] = ite(f, row[j - 1], row[j]);
  }
  return row[k];
}

std::size_t BddManager::size(NodeRef f) const {
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    NodeRef n = stack.back();
    stack.pop_back();
    if (n <= kTrue || !seen.insert(n).second) continue;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return seen.size();
}

double BddManager::probability(NodeRef f,
                               const std::vector<double>& varProbs) const {
  require(varProbs.size() == numVars_,
          "BddManager::probability: wrong number of variable probabilities");
  std::unordered_map<NodeRef, double> memo;
  // Iterative post-order to avoid deep recursion on large BDDs.
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    NodeRef n = stack.back();
    if (n == kFalse || n == kTrue) {
      memo[n] = n == kTrue ? 1.0 : 0.0;
      stack.pop_back();
      continue;
    }
    if (memo.count(n)) {
      stack.pop_back();
      continue;
    }
    NodeRef lo = nodes_[n].low, hi = nodes_[n].high;
    auto itLo = memo.find(lo), itHi = memo.find(hi);
    if (itLo != memo.end() && itHi != memo.end()) {
      double p = varProbs[nodes_[n].var];
      memo[n] = p * itHi->second + (1.0 - p) * itLo->second;
      stack.pop_back();
    } else {
      if (itHi == memo.end()) stack.push_back(hi);
      if (itLo == memo.end()) stack.push_back(lo);
    }
  }
  return memo[f];
}

std::vector<std::vector<std::uint32_t>> BddManager::minimalCutSets(
    NodeRef f) const {
  // Enumerate paths to the 1-terminal keeping only positive literals, then
  // filter non-minimal sets.  Adequate for the monotone functions produced
  // by fault trees.
  std::vector<std::vector<std::uint32_t>> sets;
  std::vector<std::uint32_t> path;
  struct Frame {
    NodeRef node;
    int stage;  // 0: descend low, 1: descend high (var in path), 2: done
  };
  std::vector<Frame> stack{{f, 0}};
  while (!stack.empty()) {
    Frame& fr = stack.back();
    if (fr.node == kTrue) {
      sets.push_back(path);
      stack.pop_back();
      continue;
    }
    if (fr.node == kFalse) {
      stack.pop_back();
      continue;
    }
    if (fr.stage == 0) {
      fr.stage = 1;
      stack.push_back({nodes_[fr.node].low, 0});
    } else if (fr.stage == 1) {
      fr.stage = 2;
      path.push_back(nodes_[fr.node].var);
      stack.push_back({nodes_[fr.node].high, 0});
    } else {
      path.pop_back();
      stack.pop_back();
    }
  }
  for (auto& s : sets) std::sort(s.begin(), s.end());
  std::sort(sets.begin(), sets.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::vector<std::vector<std::uint32_t>> minimal;
  for (const auto& s : sets) {
    bool superset = false;
    for (const auto& m : minimal) {
      if (std::includes(s.begin(), s.end(), m.begin(), m.end())) {
        superset = true;
        break;
      }
    }
    if (!superset) minimal.push_back(s);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

}  // namespace imcdft::bdd
