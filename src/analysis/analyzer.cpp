#include "analysis/analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/measures.hpp"
#include "analysis/static_combine.hpp"
#include "analysis/symmetry.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "ctmc/mttf.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "dft/galileo.hpp"
#include "dft/hash.hpp"
#include "dft/modules.hpp"
#include "ioimc/bisimulation.hpp"
#include "ioimc/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/quotient_store.hpp"

namespace imcdft::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Auto-assigned request/trace ids (AnalysisRequest::requestId == 0).
std::uint64_t nextRequestId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Mirrors one finished request's scattered counters into the central
/// metrics registry.  Runs unconditionally (a handful of relaxed atomic
/// adds; measure-neutral by construction, like the tracing dead branch).
void publishRequestMetrics(const AnalysisReport& report, double wallSeconds) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  static obs::Counter& requests = reg.counter("analyzer.requests");
  static obs::Counter& treeHits = reg.counter("analyzer.cache.tree_hits");
  static obs::Counter& treeMisses = reg.counter("analyzer.cache.tree_misses");
  static obs::Counter& moduleHits = reg.counter("analyzer.cache.module_hits");
  static obs::Counter& moduleMisses =
      reg.counter("analyzer.cache.module_misses");
  static obs::Counter& stepsRun = reg.counter("engine.steps_run");
  static obs::Counter& stepsSaved = reg.counter("engine.steps_saved");
  static obs::Counter& storeHits = reg.counter("store.hits");
  static obs::Counter& storeMisses = reg.counter("store.misses");
  static obs::Counter& storeWrites = reg.counter("store.writes");
  static obs::Counter& storeErrors = reg.counter("store.errors");
  static obs::Counter& inflightJoins = reg.counter("analyzer.inflight_joins");
  static obs::Counter& evictions = reg.counter("analyzer.cache.evictions");
  static obs::Counter& refineRun = reg.counter("otf.refine_passes_run");
  static obs::Counter& refineSkipped =
      reg.counter("otf.refine_passes_skipped");
  static obs::Counter& pipelined = reg.counter("otf.pipelined_steps");
  static obs::Counter& rollbacks = reg.counter("otf.pipeline_rollbacks");
  static obs::Counter& measuresOk = reg.counter("analyzer.measures_ok");
  static obs::Counter& measuresFailed =
      reg.counter("analyzer.measures_failed");
  static obs::Gauge& peakStates = reg.gauge("engine.peak_aggregated_states");
  static obs::Histogram& wall = reg.histogram("analyzer.request_nanos");
  requests.add();
  treeHits.add(report.cache.treeHits);
  treeMisses.add(report.cache.treeMisses);
  moduleHits.add(report.cache.moduleHits);
  moduleMisses.add(report.cache.moduleMisses);
  stepsRun.add(report.cache.stepsRun);
  stepsSaved.add(report.cache.stepsSaved);
  storeHits.add(report.cache.storeHits);
  storeMisses.add(report.cache.storeMisses);
  storeWrites.add(report.cache.storeWrites);
  storeErrors.add(report.cache.storeErrors);
  inflightJoins.add(report.cache.inflightJoins);
  evictions.add(report.cache.treeEvictions + report.cache.moduleEvictions +
                report.cache.chainEvictions + report.cache.curveEvictions);
  refineRun.add(report.cache.otfRefinePassesRun);
  refineSkipped.add(report.cache.otfRefinePassesSkipped);
  pipelined.add(report.cache.otfPipelinedSteps);
  rollbacks.add(report.cache.otfPipelineRollbacks);
  for (const MeasureResult& m : report.measures)
    (m.ok ? measuresOk : measuresFailed).add();
  if (report.analysis)
    peakStates.atLeast(report.stats().peakAggregatedStates);
  wall.record(static_cast<std::uint64_t>(wallSeconds * 1e9));
}

/// Serialization of every option that influences the composed model (or
/// its reported statistics, which symmetry changes); part of both cache
/// keys.  EngineOptions::storeDir is deliberately absent: a store hit is
/// bitwise identical to cold aggregation, so the same analysis keyed with
/// and without a store must share cache entries (and store records written
/// by a session with one store directory stay valid for every other).
std::string optionsKey(const AnalysisOptions& opts) {
  std::string key = "sg=";
  key += opts.conversion.subsetGates ? '1' : '0';
  key += ";st=";
  key += std::to_string(static_cast<int>(opts.engine.strategy));
  key += ";ae=";
  key += opts.engine.aggregateEachStep ? '1' : '0';
  key += ";cs=";
  key += opts.engine.collapseSinks ? '1' : '0';
  key += ";ou=";
  key += opts.engine.weak.outputsUrgent ? '1' : '0';
  key += ";sy=";
  key += opts.engine.symmetry ? '1' : '0';
  // The fused engine is built to be bit-identical to the classic path, but
  // its stats (peaks, fused-step counters) differ — and fallback behavior
  // may evolve — so cached analyses are keyed per path.  The live-state
  // cap changes which steps fall back (and hence the cached stats and
  // diagnostics), so it is part of the key too.
  key += ";ot=";
  key += opts.engine.onTheFly ? '1' : '0';
  key += ";oc=";
  key += std::to_string(opts.engine.onTheFlyMaxVisited);
  // The refinement cadence and the pipeline drill never change result
  // bytes, but both change the cached stats (pass counters, rollback
  // counters), so they are keyed.  otfIntraStepParallel is deliberately
  // absent: it is bit-identical *and* stat-compatible (otfIntraWorkers is
  // reported as a max, not cached per entry).
  key += ";or=";
  key += std::to_string(opts.engine.otfRefineCadence);
  key += ";od=";
  key += opts.engine.otfPipelineDrill ? '1' : '0';
  return key;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Exact serialization of a time grid (hexfloat: no rounding collisions);
/// the curve-cache key suffix.
std::string gridKey(const std::vector<double>& times) {
  std::string key;
  char buf[40];
  for (double t : times) {
    std::snprintf(buf, sizeof buf, "%a,", t);
    key += buf;
  }
  return key;
}

/// The numeric path's per-module fingerprint: rename-invariant shape under
/// symmetry (isomorphic siblings share one solved chain and one curve),
/// exact module key otherwise — mirroring the module cache's keying.
std::string chainKey(const dft::Dft& tree, dft::ElementId root,
                     const AnalysisOptions& opts, const std::string& optsKey) {
  std::string k;
  if (opts.engine.symmetry) {
    k = "shape\x1f";
    k += dft::moduleShape(tree, root).key;
  } else {
    k = dft::moduleKey(tree, root);
  }
  k += '\x1f';
  k += optsKey;
  return k;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* measureKindName(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::Unreliability: return "unreliability";
    case MeasureKind::UnreliabilityBounds: return "unreliability-bounds";
    case MeasureKind::Unavailability: return "unavailability";
    case MeasureKind::SteadyStateUnavailability:
      return "steady-state-unavailability";
    case MeasureKind::Mttf: return "mttf";
  }
  return "?";
}

/// The engine-facing adapter around the session's module cache and the
/// persistent store.  Only always-active modules are cacheable: a module
/// activated from outside (it is somebody's spare) converts to different
/// elementary models depending on that outside context, which the module
/// key cannot see.  Independence guarantees everything else — no element
/// below the module root is referenced from outside it, so the key (the
/// canonical fingerprint of the module's sub-tree) determines the
/// aggregated model.
///
/// With symmetric keying (EngineOptions::symmetry) the fingerprint is the
/// rename-invariant shape instead, and each entry records the concrete
/// name basis it was stored under.  A hit whose names differ from the
/// entry's instantiates the stored model via ioimc::renameActions; the
/// induced ActionId map must cover the model and be injective (see
/// analysis/symmetry.hpp) or the lookup counts as a miss and the module
/// aggregates normally.
///
/// Lookup order is memory, then store: a store hit deserializes the module
/// quotient into the session symbol table, promotes it into the in-memory
/// LRU, and then behaves exactly like a session hit (including the
/// rename-instantiation path).  Freshly aggregated modules are published
/// back to the store.
///
/// Thread safety: lookup() runs on this request's calling thread (per the
/// ModuleCache contract) and may write the request's CacheStats directly;
/// store() runs on engine worker threads and accumulates its counters in
/// atomics, folded into the request stats by foldInto() after the engine
/// returns.
class Analyzer::SessionModuleCache : public ModuleCache {
 public:
  SessionModuleCache(Analyzer& owner, const std::vector<ActivationContext>& ctx,
                     std::string optsKey, bool shapeKeyed,
                     CacheStats& requestStats,
                     std::shared_ptr<store::QuotientStore> store)
      : owner_(owner),
        contexts_(ctx),
        optsKey_(std::move(optsKey)),
        shapeKeyed_(shapeKeyed),
        stats_(requestStats),
        store_(std::move(store)) {}

  std::optional<CachedModule> lookup(const dft::Dft& dft,
                                     dft::ElementId root) override {
    if (!cacheable(root)) return std::nullopt;
    dft::ModuleShape shape;
    const std::string k = key(dft, root, shape);
    std::shared_ptr<const ModuleEntry> entry;
    if (std::optional<std::shared_ptr<const ModuleEntry>> hit =
            owner_.modules_.get(k))
      entry = std::move(*hit);
    if (!entry && store_) {
      if (std::optional<store::QuotientStore::LoadedModule> loaded =
              store_->loadModule(k, owner_.symbols_)) {
        entry = std::make_shared<const ModuleEntry>(
            ModuleEntry{std::move(loaded->model), loaded->steps,
                        std::move(loaded->names)});
        ++stats_.storeHits;
        stats_.moduleEvictions += owner_.modules_.put(k, entry);
      } else {
        ++stats_.storeMisses;
      }
    }
    if (!entry) {
      ++stats_.moduleMisses;
      obs::traceInstant("module-cache", dft.element(root).name, {{"hit", 0}});
      return std::nullopt;
    }
    if (!shapeKeyed_ || entry->names == shape.names) {
      ++stats_.moduleHits;
      obs::traceInstant("module-cache", dft.element(root).name, {{"hit", 1}});
      return CachedModule{entry->model, entry->steps};
    }
    // Same shape, different names: instantiate the stored model under the
    // lifted substitution.  Cross-request reuse only needs an injective,
    // complete map — the instance is isomorphic to what aggregating this
    // module would produce, so all measures agree exactly.
    std::optional<ioimc::IOIMC> instance =
        renamedInstance(dft, root, shape, *entry);
    if (!instance) {
      ++stats_.moduleMisses;
      return std::nullopt;
    }
    ++stats_.moduleHits;
    return CachedModule{std::move(*instance), entry->steps};
  }

  void store(const dft::Dft& dft, dft::ElementId root,
             const ioimc::IOIMC& model, std::size_t steps) override {
    if (!cacheable(root)) return;
    dft::ModuleShape shape;
    std::string k = key(dft, root, shape);
    if (store_ && store_->storeModule(k, model, steps, shape.names))
      storeWrites_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t evicted = owner_.modules_.put(
        std::move(k), std::make_shared<const ModuleEntry>(
                          ModuleEntry{model, steps, std::move(shape.names)}));
    moduleEvictions_.fetch_add(evicted, std::memory_order_relaxed);
  }

  /// Folds the worker-thread counters into the request's stats; call after
  /// composeCommunity() has returned (no store() can still be running).
  void foldInto(CacheStats& stats) const {
    stats.storeWrites += storeWrites_.load(std::memory_order_relaxed);
    stats.moduleEvictions += moduleEvictions_.load(std::memory_order_relaxed);
  }

 private:
  bool cacheable(dft::ElementId root) const {
    return root < contexts_.size() && contexts_[root].alwaysActive;
  }
  /// Builds the cache key; under shape keying \p shape receives the
  /// computed shape (key and name basis) as a side product.
  std::string key(const dft::Dft& dft, dft::ElementId root,
                  dft::ModuleShape& shape) const {
    std::string k;
    if (shapeKeyed_) {
      shape = dft::moduleShape(dft, root);
      k = "shape\x1f";
      k += shape.key;
    } else {
      k = dft::moduleKey(dft, root);
    }
    k += '\x1f';
    k += optsKey_;
    return k;
  }

  std::optional<ioimc::IOIMC> renamedInstance(const dft::Dft& dft,
                                              dft::ElementId root,
                                              const dft::ModuleShape& shape,
                                              const ModuleEntry& entry) const {
    const dft::Dft module = dft::extractModule(dft, root);
    std::optional<std::unordered_map<std::string, std::string>> lift =
        liftElementRenaming(module, entry.names, shape.names);
    if (!lift) return std::nullopt;
    std::optional<std::unordered_map<ioimc::ActionId, std::string>> renaming =
        modelRenaming(entry.model, *lift);
    if (!renaming) return std::nullopt;
    return ioimc::renameActions(entry.model, *renaming);
  }

  Analyzer& owner_;
  const std::vector<ActivationContext>& contexts_;
  std::string optsKey_;
  const bool shapeKeyed_;
  CacheStats& stats_;
  std::shared_ptr<store::QuotientStore> store_;
  /// Worker-thread counters (store() side); see foldInto().
  std::atomic<std::size_t> storeWrites_{0};
  std::atomic<std::size_t> moduleEvictions_{0};
};

Analyzer::Analyzer(AnalyzerOptions opts)
    : opts_(opts),
      symbols_(ioimc::makeSymbolTable()),
      trees_(opts.maxCachedTrees),
      modules_(opts.maxCachedModules),
      chains_(opts.maxCachedModules),
      curves_(opts.maxCachedCurves) {}

Analyzer::~Analyzer() = default;

CacheStats Analyzer::cacheStats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return sessionStats_;
}

void Analyzer::clearCache() {
  trees_.clear();
  modules_.clear();
  chains_.clear();
  curves_.clear();
}

std::shared_ptr<store::QuotientStore> Analyzer::openStore(
    const std::string& dir, std::vector<Diagnostic>& diagnostics) {
  if (dir.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(storesMutex_);
  auto it = stores_.find(dir);
  if (it != stores_.end()) return it->second;
  std::shared_ptr<store::QuotientStore> handle;
  try {
    handle = store::QuotientStore::open(dir);
  } catch (const Error& e) {
    // Soft: the session keeps serving without persistence.  Remembered as
    // disabled so a long-lived service warns once, not once per request.
    diagnostics.push_back(
        {Severity::Warning,
         std::string("quotient store disabled: ") + e.what()});
  }
  stores_.emplace(dir, handle);
  return handle;
}

std::shared_ptr<const DftAnalysis> Analyzer::runNumericPipeline(
    const dft::Dft& tree, const dft::StaticLayer& layer,
    const AnalysisOptions& opts, PhaseTimings& timings,
    CacheStats& requestStats, std::vector<Diagnostic>& diagnostics,
    const std::shared_ptr<store::QuotientStore>& store) {
  obs::TraceSpan span("numeric-combine");
  // Belt and suspenders: the layer's structural checks already imply that
  // every frontier module is always active (its only referencers are the
  // layer's static gates), but the conversion's activation analysis is the
  // authority — disagree and we fall back.
  const std::vector<ActivationContext> contexts = activationContexts(tree);
  for (dft::ElementId root : layer.moduleRoots) {
    if (root >= contexts.size() || !contexts[root].alwaysActive) {
      diagnostics.push_back(
          {Severity::Info,
           "static combination disabled: module '" +
               tree.element(root).name + "' is not always active"});
      return nullptr;
    }
  }

  const std::string optsKey_ = optionsKey(opts);
  const bool useChainCache = opts_.cacheModules;
  std::vector<StaticCombination::SolvedChain> solved;
  std::vector<NumericModule> modules;
  std::vector<std::size_t> solvedSteps;          // per solved chain
  std::vector<std::size_t> membersOfChain;       // bucket sizes
  std::unordered_map<std::string, std::size_t> localIndex;
  CompositionStats stats;

  for (dft::ElementId root : layer.moduleRoots) {
    const std::string key = chainKey(tree, root, opts, optsKey_);
    std::size_t index;
    auto local = localIndex.find(key);
    if (local != localIndex.end()) {
      // Symmetric sibling within this request: one curve for free.
      index = local->second;
      ++membersOfChain[index];
      ++stats.symmetricModulesReused;
      stats.symmetrySavedSteps += solvedSteps[index];
    } else {
      std::shared_ptr<const DftAnalysis> sub;
      std::size_t steps = 0;
      if (useChainCache) {
        if (std::optional<ChainEntry> hit = chains_.get(key)) {
          sub = std::move(hit->analysis);
          steps = hit->steps;
          ++requestStats.moduleHits;
          ++stats.cachedModules;
          stats.stepsSaved += steps;
          requestStats.stepsSaved += steps;
        }
      }
      if (!sub) {
        ++requestStats.moduleMisses;
        const dft::Dft moduleDft = dft::extractModule(tree, root);
        PhaseTimings subTimings;
        sub = runPipeline(moduleDft, opts, subTimings, requestStats, store);
        // Fold *all* phases of the sub-module pipeline (including the
        // fused-engine stage breakdown), not just convert/compose/extract:
        // the per-module pipelines are the only place this request spends
        // pipeline time, so dropping fields would make --stats, the serve
        // summary and traces disagree.
        timings.accumulate(subTimings);
        if (sub->nondeterministic) {
          diagnostics.push_back(
              {Severity::Warning,
               "static combination fell back to full composition: module '" +
                   tree.element(root).name +
                   "' is nondeterministic (FDEP-induced simultaneity, "
                   "Section 4.4)"});
          return nullptr;
        }
        steps = sub->stats.steps.size();
        // Fold the per-module pipeline into the request's stats: its steps
        // are the only compositions that happen at all, and its peaks bound
        // the largest intermediate model of the whole analysis.
        stats.steps.insert(stats.steps.end(), sub->stats.steps.begin(),
                           sub->stats.steps.end());
        stats.cachedModules += sub->stats.cachedModules;
        stats.stepsSaved += sub->stats.stepsSaved;
        stats.symmetricBuckets += sub->stats.symmetricBuckets;
        stats.symmetricModulesReused += sub->stats.symmetricModulesReused;
        stats.symmetrySavedSteps += sub->stats.symmetrySavedSteps;
        stats.onTheFlySteps += sub->stats.onTheFlySteps;
        stats.onTheFlyFallbacks += sub->stats.onTheFlyFallbacks;
        stats.onTheFlySavedPeakStates += sub->stats.onTheFlySavedPeakStates;
        stats.otfRefinePassesRun += sub->stats.otfRefinePassesRun;
        stats.otfRefinePassesSkipped += sub->stats.otfRefinePassesSkipped;
        stats.otfIntraWorkers =
            std::max(stats.otfIntraWorkers, sub->stats.otfIntraWorkers);
        stats.otfPipelinedSteps += sub->stats.otfPipelinedSteps;
        stats.otfPipelineRollbacks += sub->stats.otfPipelineRollbacks;
        for (const std::string& reason : sub->stats.onTheFlyFallbackReasons)
          stats.noteOnTheFlyFallbackReason(reason);
        stats.peakComposedStates =
            std::max(stats.peakComposedStates, sub->stats.peakComposedStates);
        stats.peakComposedTransitions = std::max(
            stats.peakComposedTransitions, sub->stats.peakComposedTransitions);
        stats.peakAggregatedStates = std::max(stats.peakAggregatedStates,
                                              sub->stats.peakAggregatedStates);
        stats.peakAggregatedTransitions =
            std::max(stats.peakAggregatedTransitions,
                     sub->stats.peakAggregatedTransitions);
        if (useChainCache)
          requestStats.chainEvictions += chains_.put(key, ChainEntry{sub, steps});
      }
      index = solved.size();
      solved.push_back({key, std::move(sub)});
      solvedSteps.push_back(steps);
      membersOfChain.push_back(1);
      localIndex.emplace(key, index);
    }
    const DftAnalysis& chain = *solved[index].analysis;
    modules.push_back(NumericModule{tree.element(root).name, index,
                                    chain.closedModel.numStates(),
                                    chain.closedModel.numTransitions()});
  }
  for (std::size_t members : membersOfChain)
    if (members >= 2) ++stats.symmetricBuckets;
  for (const NumericModule& m : modules)
    stats.modules.push_back(ModuleResult{m.name, m.states, m.transitions});

  // The placeholder model keeps DftAnalysis well-formed (exports and state
  // counts read 1 state, 0 transitions); every measure evaluates through
  // staticCombo instead.
  std::vector<std::vector<ioimc::InteractiveTransition>> inter(1);
  std::vector<std::vector<ioimc::MarkovianTransition>> markov(1);
  ioimc::IOIMC placeholder("static-combination", symbols_, ioimc::Signature{},
                           0, std::move(inter), std::move(markov), {0}, {});
  DftAnalysis result{std::move(placeholder),
                     std::move(stats),
                     Extraction{},
                     /*nondeterministic=*/false,
                     /*repairable=*/false,
                     nullptr,
                     std::make_shared<StaticCombination>(
                         tree, layer, std::move(solved), std::move(modules))};
  return std::make_shared<DftAnalysis>(std::move(result));
}

std::vector<double> Analyzer::cachedCurve(
    const StaticCombination& combo, std::size_t chainIndex,
    const std::vector<double>& times,
    const std::shared_ptr<store::QuotientStore>& store, CacheStats& stats,
    const CancelToken* cancel) {
  if (!opts_.cacheModules) return combo.solveCurve(chainIndex, times, cancel);
  std::string key = combo.chains()[chainIndex].key;
  key += '\x1f';
  key += gridKey(times);
  if (std::optional<std::vector<double>> hit = curves_.get(key))
    return std::move(*hit);
  if (store) {
    if (std::optional<std::vector<double>> loaded = store->loadCurve(key)) {
      ++stats.storeHits;
      stats.curveEvictions += curves_.put(std::move(key), *loaded);
      return std::move(*loaded);
    }
    ++stats.storeMisses;
  }
  std::vector<double> curve = combo.solveCurve(chainIndex, times, cancel);
  if (store && store->storeCurve(key, curve)) ++stats.storeWrites;
  stats.curveEvictions += curves_.put(std::move(key), curve);
  return curve;
}

std::shared_ptr<const DftAnalysis> Analyzer::runPipeline(
    const dft::Dft& tree, const AnalysisOptions& opts, PhaseTimings& timings,
    CacheStats& requestStats,
    const std::shared_ptr<store::QuotientStore>& store) {
  ConversionOptions conversion = opts.conversion;
  const bool customSymbols =
      conversion.symbols && conversion.symbols != symbols_;
  if (!conversion.symbols) conversion.symbols = symbols_;

  Clock::time_point phase = Clock::now();
  std::optional<obs::TraceSpan> span;
  span.emplace("convert");
  Community community = convertDft(tree, conversion);
  span->arg("models", community.models.size());
  span.reset();
  timings.convert = secondsSince(phase);
  const bool repairable = community.repairable;
  // Keep the activation contexts alive past the move of the community into
  // the engine: the module-cache hook consults them for cacheability.
  const std::vector<ActivationContext> contexts = community.contexts;

  phase = Clock::now();
  span.emplace("compose");
  // Cached module models are interned in the session table; a community
  // built over a caller-supplied table cannot exchange models with them.
  const bool useModuleCache =
      opts_.cacheModules && !customSymbols &&
      opts.engine.strategy == CompositionStrategy::Modular;
  SessionModuleCache moduleCache(*this, contexts, optionsKey(opts),
                                 /*shapeKeyed=*/opts.engine.symmetry,
                                 requestStats,
                                 useModuleCache ? store : nullptr);
  EngineResult engine =
      composeCommunity(std::move(community), tree, opts.engine,
                       useModuleCache ? &moduleCache : nullptr);
  moduleCache.foldInto(requestStats);
  span->arg("steps", engine.stats.steps.size());
  span->arg("states", engine.model.numStates());
  span.reset();
  timings.compose = secondsSince(phase);
  // Roll the fused engine's per-stage wall time into the one PhaseTimings
  // accounting (the per-step values stay in CompositionStats for drill-in).
  for (const CompositionStep& step : engine.stats.steps) {
    timings.otfExpand += step.otfExpandSeconds;
    timings.otfRefine += step.otfRefineSeconds;
    timings.otfCollapse += step.otfCollapseSeconds;
    timings.otfRenumber += step.otfRenumberSeconds;
  }
  requestStats.stepsRun += engine.stats.steps.size();
  requestStats.stepsSaved += engine.stats.stepsSaved;
  requestStats.otfRefinePassesRun += engine.stats.otfRefinePassesRun;
  requestStats.otfRefinePassesSkipped += engine.stats.otfRefinePassesSkipped;
  requestStats.otfIntraWorkers =
      std::max(requestStats.otfIntraWorkers, engine.stats.otfIntraWorkers);
  requestStats.otfPipelinedSteps += engine.stats.otfPipelinedSteps;
  requestStats.otfPipelineRollbacks += engine.stats.otfPipelineRollbacks;

  // Absorb failure states, re-aggregate (usually shrinks further), extract.
  phase = Clock::now();
  span.emplace("extract");
  ioimc::IOIMC absorbedModel =
      ioimc::makeLabelAbsorbing(engine.model, kDownLabel);
  absorbedModel = ioimc::aggregate(absorbedModel, opts.engine.weak);
  Extraction absorbed = extract(absorbedModel, kDownLabel);
  span.reset();
  timings.extract = secondsSince(phase);

  DftAnalysis result{std::move(engine.model), std::move(engine.stats),
                     std::move(absorbed), false, repairable, nullptr,
                     nullptr};
  result.nondeterministic = !result.absorbed.deterministic;
  return std::make_shared<DftAnalysis>(std::move(result));
}

AnalysisReport Analyzer::analyze(const AnalysisRequest& request) {
  AnalysisReport report;
  report.label = request.label;
  report.requestId =
      request.requestId != 0 ? request.requestId : nextRequestId();

  // Every span this request emits (including those from engine worker
  // threads, which re-establish the context) carries the request id as its
  // trace context; the Chrome export groups them into one per-request
  // track.  The context guard outlives the request span (declared first).
  const Clock::time_point requestStart = Clock::now();
  obs::ScopedTraceContext traceCtx(report.requestId);
  obs::TraceSpan requestSpan("request", request.label);

  // --- Resolve the DFT source. ---
  Clock::time_point phase = Clock::now();
  std::optional<dft::Dft> parsed;
  const dft::Dft* tree = nullptr;
  {
    obs::TraceSpan parseSpan("parse");
    switch (request.source) {
      case AnalysisRequest::Source::InMemory:
        require(request.tree.has_value(),
                "AnalysisRequest: in-memory request without a tree");
        tree = &*request.tree;
        break;
      case AnalysisRequest::Source::GalileoText:
        parsed = dft::parseGalileo(request.galileo);
        tree = &*parsed;
        break;
      case AnalysisRequest::Source::GalileoFile:
        parsed = dft::parseGalileo(readFile(request.galileo));
        tree = &*parsed;
        break;
    }
  }
  report.timings.parse = secondsSince(phase);

  // --- Resource budget. ---
  // A limited request gets a CancelToken wired through the engine options
  // into every hot loop (merge steps, product expansion, refinement
  // passes, the OTF frontier, uniformization sweeps).  The options *copy*
  // carries the token; the cache keys below are computed from the same
  // options and are budget-blind by construction (optionsKey never
  // serializes the token), so budgeted and unbudgeted requests share the
  // tree cache — a budget decides whether an answer is produced, never
  // which answer.
  AnalysisOptions options = request.options;
  std::shared_ptr<CancelToken> cancel;
  if (request.budget.limited()) {
    cancel = std::make_shared<CancelToken>();
    if (request.budget.deadlineSeconds > 0.0)
      cancel->limitDeadline(request.budget.deadlineSeconds);
    if (request.budget.maxLiveStates > 0)
      cancel->limitLiveStates(request.budget.maxLiveStates);
    if (request.budget.maxMemoryBytes > 0)
      cancel->limitMemoryBytes(request.budget.maxMemoryBytes);
    if (request.budget.maxCheckpoints > 0)
      cancel->limitCheckpoints(request.budget.maxCheckpoints);
    options.engine.cancel = cancel;
    options.engine.weak.cancel = cancel.get();
  }

  // --- Whole-tree cache lookup / pipeline run. ---
  std::string treeKey = dft::canonicalKey(*tree);
  report.treeHash = dft::fnv1a(treeKey);
  treeKey += '\x1f';
  treeKey += optionsKey(options);

  // Requests with their own symbol table are served one-shot: every cached
  // model (and every model a cached DftAnalysis holds) is interned in the
  // session table, which is not the table such a request asked for.  The
  // persistent store deserializes into the session table too, so it is
  // gated the same way.
  const bool sessionSymbols = !options.conversion.symbols ||
                              options.conversion.symbols == symbols_;
  const bool useTreeCache = opts_.cacheTrees && sessionSymbols;

  // Static-layer numeric combination (EngineOptions::staticCombine): only
  // unreliability-kind measures can be read off per-module curves, so any
  // other requested measure routes to the full composition pipeline — and
  // the tree-cache key records which kind of analysis is stored (";nc=").
  // A numeric-kind request probes the numeric key first and the full key
  // second (a full analysis answers unreliability too, and an ineligible
  // or fallen-back tree is stored under the full key); other requests
  // probe only the full key.  Layer detection itself — a structural walk
  // over the whole tree — runs only on a cache miss.
  const bool wantNumeric =
      options.engine.staticCombine && sessionSymbols &&
      options.engine.strategy == CompositionStrategy::Modular &&
      !request.measures.empty() &&
      std::all_of(request.measures.begin(), request.measures.end(),
                  [](const MeasureSpec& m) {
                    return m.kind == MeasureKind::Unreliability ||
                           m.kind == MeasureKind::UnreliabilityBounds;
                  });
  const std::string fullKey = treeKey + ";nc=0";
  const std::string numericKey = treeKey + ";nc=1";

  const std::shared_ptr<store::QuotientStore> storeHandle =
      sessionSymbols ? openStore(options.engine.storeDir, report.diagnostics)
                     : nullptr;

  auto probeTreeCache = [&]() -> std::shared_ptr<const DftAnalysis> {
    if (!useTreeCache) return nullptr;
    if (wantNumeric)
      if (std::optional<std::shared_ptr<const DftAnalysis>> hit =
              trees_.get(numericKey))
        return *hit;
    if (std::optional<std::shared_ptr<const DftAnalysis>> hit =
            trees_.get(fullKey))
      return *hit;
    return nullptr;
  };
  auto noteTreeHit = [&]() {
    report.fromCache = true;
    ++report.cache.treeHits;
    obs::traceInstant("tree-cache", request.label, {{"hit", 1}});
    report.diagnostics.push_back(
        {Severity::Info, "composition served from the whole-tree cache"});
  };

  std::shared_ptr<const DftAnalysis> analysis = probeTreeCache();
  if (analysis) noteTreeHit();

  // --- In-flight dedup. ---
  // The first concurrent request for a fingerprint becomes the leader and
  // aggregates; identical requests arriving while it runs join its future
  // instead of aggregating again.  The wantNumeric flag is part of the
  // flight key because the two request kinds build different analyses.
  // Budgeted requests never lead or join a flight with differently (or un-)
  // budgeted ones: a joiner inherits the leader's exception, and a leader
  // whose budget trips mid-aggregation would fail joiners who asked for no
  // limit at all.  Identically budgeted concurrent requests still dedup.
  std::string flightKey = treeKey + (wantNumeric ? ";wn=1" : ";wn=0");
  if (request.budget.limited()) {
    const Budget& b = request.budget;
    flightKey += ";bg=" + std::to_string(b.deadlineSeconds) + ',' +
                 std::to_string(b.maxLiveStates) + ',' +
                 std::to_string(b.maxMemoryBytes) + ',' +
                 std::to_string(b.maxCheckpoints);
  }
  bool leader = false;
  std::promise<std::shared_ptr<const DftAnalysis>> flightPromise;
  std::shared_future<std::shared_ptr<const DftAnalysis>> flight;
  if (!analysis && useTreeCache) {
    std::unique_lock<std::mutex> lock(inflightMutex_);
    auto it = inflight_.find(flightKey);
    if (it != inflight_.end()) {
      flight = it->second;
    } else {
      // Double-check the tree cache under the flight lock: a leader may
      // have finished (published and left the map) between our first probe
      // and here.
      analysis = probeTreeCache();
      if (analysis) {
        noteTreeHit();
      } else {
        flight = flightPromise.get_future().share();
        inflight_.emplace(flightKey, flight);
        leader = true;
      }
    }
    lock.unlock();
    if (!leader && !analysis) {
      // Joiner: block on the leader's aggregation (its exception, if any,
      // rethrows here — identical input, identical failure).
      analysis = flight.get();
      report.fromCache = true;
      ++report.cache.inflightJoins;
      report.diagnostics.push_back(
          {Severity::Info,
           "served from an in-flight aggregation of a concurrent identical "
           "request"});
    }
  }

  if (!analysis) {
    std::string storeKey = fullKey;
    try {
      ++report.cache.treeMisses;
      obs::traceInstant("tree-cache", request.label, {{"hit", 0}});
      if (wantNumeric) {
        dft::StaticLayer layer = dft::detectStaticLayer(*tree);
        if (layer.eligible) {
          analysis =
              runNumericPipeline(*tree, layer, options, report.timings,
                                 report.cache, report.diagnostics, storeHandle);
          if (analysis) storeKey = numericKey;
          // Null = a module was nondeterministic (Warning already
          // attached); the fallen-back full analysis lands under fullKey.
        } else {
          report.diagnostics.push_back(
              {Severity::Info,
               "static combination not applicable: " + layer.reason});
        }
      }
      bool fresh = false;
      if (!analysis && storeHandle) {
        // Whole-tree store probe: a hit skips conversion and composition
        // entirely; only the (cheap) absorb/re-aggregate/extract tail runs
        // on the already-aggregated quotient.  Numeric-path analyses are
        // never persisted whole-tree (their value lives in module and
        // curve records), so the probe is for the full key.
        phase = Clock::now();
        if (std::optional<store::QuotientStore::LoadedTree> loaded =
                storeHandle->loadTree(fullKey, symbols_)) {
          ioimc::IOIMC absorbedModel =
              ioimc::makeLabelAbsorbing(loaded->model, kDownLabel);
          absorbedModel = ioimc::aggregate(absorbedModel, options.engine.weak);
          Extraction absorbed = extract(absorbedModel, kDownLabel);
          DftAnalysis rebuilt{std::move(loaded->model), CompositionStats{},
                              std::move(absorbed), false, loaded->repairable,
                              nullptr, nullptr};
          rebuilt.nondeterministic = !rebuilt.absorbed.deterministic;
          analysis = std::make_shared<DftAnalysis>(std::move(rebuilt));
          ++report.cache.storeHits;
          obs::traceInstant("store-probe", request.label, {{"hit", 1}});
          report.timings.extract += secondsSince(phase);
          report.diagnostics.push_back(
              {Severity::Info,
               "whole-tree quotient served from the persistent store "
               "(composition skipped)"});
        } else {
          ++report.cache.storeMisses;
          obs::traceInstant("store-probe", request.label, {{"hit", 0}});
        }
      }
      if (!analysis) {
        analysis = runPipeline(*tree, options, report.timings, report.cache,
                               storeHandle);
        fresh = true;
      }
      if (report.cache.moduleHits > 0)
        report.diagnostics.push_back(
            {Severity::Info,
             std::to_string(report.cache.moduleHits) +
                 " module(s) spliced from the session cache, saving " +
                 std::to_string(report.cache.stepsSaved) +
                 " composition step(s)"});
      if (analysis->stats.symmetricModulesReused > 0)
        report.diagnostics.push_back(
            {Severity::Info,
             std::to_string(analysis->stats.symmetricModulesReused) +
                 " symmetric module(s) instantiated by renaming (" +
                 std::to_string(analysis->stats.symmetricBuckets) +
                 " shape bucket(s)), saving " +
                 std::to_string(analysis->stats.symmetrySavedSteps) +
                 " composition step(s)"});
      if (analysis->stats.onTheFlySteps > 0)
        report.diagnostics.push_back(
            {Severity::Info,
             std::to_string(analysis->stats.onTheFlySteps) +
                 " composition step(s) ran fused (on-the-fly), keeping at "
                 "least " +
                 std::to_string(analysis->stats.onTheFlySavedPeakStates) +
                 " product state(s) below the materialization bound"});
      if (analysis->stats.onTheFlyFallbacks > 0) {
        std::string why;
        for (const std::string& reason :
             analysis->stats.onTheFlyFallbackReasons) {
          if (!why.empty()) why += "; ";
          why += reason;
        }
        report.diagnostics.push_back(
            {Severity::Warning,
             "on-the-fly composition fell back to the classic path for " +
                 std::to_string(analysis->stats.onTheFlyFallbacks) +
                 " step(s): " + why});
      }
      // Publish the freshly composed whole-tree quotient to the store.
      // Store-loaded and numeric analyses are skipped: the former's record
      // already exists, the latter is served by module/curve records.
      if (fresh && storeHandle && !analysis->staticCombo) {
        if (storeHandle->storeTree(fullKey, analysis->closedModel,
                                   analysis->repairable))
          ++report.cache.storeWrites;
      }
      if (useTreeCache)
        report.cache.treeEvictions +=
            trees_.put(std::move(storeKey), analysis);
    } catch (...) {
      if (leader) {
        flightPromise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(inflightMutex_);
        inflight_.erase(flightKey);
      }
      throw;
    }
    if (leader) {
      flightPromise.set_value(analysis);
      std::lock_guard<std::mutex> lock(inflightMutex_);
      inflight_.erase(flightKey);
    }
  }
  report.analysis = analysis;
  if (analysis->staticCombo)
    report.diagnostics.push_back(
        {Severity::Info, analysis->staticCombo->summary()});

  // --- Evaluate the measures. ---
  phase = Clock::now();
  // Numeric-path curves are served through the session curve cache, so a
  // batch over symmetric or repeated grids solves each distinct chain once.
  auto numericCurve = [&](const std::vector<double>& times) {
    return analysis->staticCombo->evaluate(
        times, [&](std::size_t index, const std::vector<double>& ts) {
          return cachedCurve(*analysis->staticCombo, index, ts, storeHandle,
                             report.cache, cancel.get());
        });
  };
  // Transient solves of budgeted requests checkpoint once per
  // uniformization step (null token = zero overhead).
  ctmc::TransientOptions solveOpts;
  solveOpts.cancel = cancel.get();
  auto warn = [&](const std::string& message) {
    report.diagnostics.push_back({Severity::Warning, message});
  };
  auto fail = [&](MeasureResult& r, const std::string& message) {
    r.ok = false;
    r.error = message;
    report.diagnostics.push_back(
        {Severity::Error,
         std::string(measureKindName(r.spec.kind)) + ": " + message});
  };
  auto requireGrid = [&](MeasureResult& r) {
    if (!r.spec.times.empty()) return true;
    fail(r, "empty time grid");
    return false;
  };

  // A budget trip during measure evaluation degrades, it does not fail:
  // the analysis itself (cached or fresh) is already paid for, so the
  // measures solved before the trip stay in the report, the tripped and
  // remaining measures are marked failed, and a Warning flags the report
  // as partial.  Contrast with a trip during aggregation, which unwinds
  // analyze() entirely (there is no analysis to report measures against).
  bool budgetSpent = false;
  for (const MeasureSpec& spec : request.measures) {
    obs::TraceSpan measureSpan("measure", measureKindName(spec.kind));
    measureSpan.arg("points", spec.times.size());
    MeasureResult r;
    r.spec = spec;
    r.ok = true;
    if (budgetSpent) {
      r.ok = false;
      r.error = "skipped: resource budget exhausted by an earlier measure";
      report.measures.push_back(std::move(r));
      continue;
    }
    try {
      switch (spec.kind) {
        case MeasureKind::Unreliability:
          if (!requireGrid(r)) break;
          if (analysis->staticCombo) {
            r.values = numericCurve(spec.times);
          } else if (analysis->nondeterministic) {
            r.boundsSubstituted = true;
            for (double t : spec.times)
              r.bounds.push_back(unreliabilityBounds(*analysis, t));
            warn(
                "the model is nondeterministic (FDEP-induced simultaneity, "
                "Section 4.4): scheduler bounds substituted for point "
                "unreliability");
          } else {
            r.values = unreliabilityCurve(*analysis, spec.times, solveOpts);
          }
          break;
        case MeasureKind::UnreliabilityBounds:
          if (!requireGrid(r)) break;
          if (analysis->staticCombo) {
            // The numeric path only exists when every module extraction is
            // deterministic; the scheduler bounds coincide.
            for (double v : numericCurve(spec.times))
              r.bounds.push_back(ctmdp::ReachabilityBounds{v, v});
          } else {
            for (double t : spec.times)
              r.bounds.push_back(unreliabilityBounds(*analysis, t));
          }
          break;
        case MeasureKind::Unavailability:
          if (!requireGrid(r)) break;
          for (double t : spec.times)
            r.values.push_back(unavailability(*analysis, t, solveOpts));
          break;
        case MeasureKind::SteadyStateUnavailability:
          r.values.push_back(steadyStateUnavailability(*analysis));
          break;
        case MeasureKind::Mttf: {
          if (analysis->nondeterministic) {
            fail(r,
                 "the model is nondeterministic; no scheduler-free "
                 "expectation exists");
            break;
          }
          ctmc::MttfResult mttf =
              ctmc::expectedTimeToLabel(analysis->absorbed.chain, kDownLabel);
          if (!mttf.finite) {
            r.values.push_back(kInf);
            warn(
                "MTTF is infinite: the top event is missed with positive "
                "probability");
          } else {
            r.values.push_back(mttf.value);
          }
          break;
        }
      }
    } catch (const BudgetExceeded& e) {
      fail(r, e.what());
      warn(std::string("partial report: resource budget exhausted at '") +
           e.checkpoint() + "' while evaluating " +
           measureKindName(spec.kind) +
           "; remaining measure(s) skipped, earlier results kept");
      budgetSpent = true;
    } catch (const Error& e) {
      fail(r, e.what());
    }
    report.measures.push_back(std::move(r));
  }
  report.timings.measure = secondsSince(phase);

  // --- Session bookkeeping. ---
  if (storeHandle) {
    // Surface soft store failures on whichever request drains them first
    // (the store is shared; attribution is best-effort by design).
    for (std::string& w : storeHandle->drainWarnings()) {
      ++report.cache.storeErrors;
      report.diagnostics.push_back(
          {Severity::Warning, "quotient store: " + std::move(w)});
    }
  }
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    sessionStats_.accumulate(report.cache);
  }
  requestSpan.arg("from_cache", report.fromCache ? 1 : 0);
  requestSpan.arg("measures", report.measures.size());
  publishRequestMetrics(report, secondsSince(requestStart));
  return report;
}

std::vector<AnalysisReport> Analyzer::analyzeBatch(
    const std::vector<AnalysisRequest>& requests) {
  std::vector<AnalysisReport> reports;
  reports.reserve(requests.size());
  for (const AnalysisRequest& request : requests)
    reports.push_back(analyze(request));
  return reports;
}

std::vector<AnalysisReport> Analyzer::analyzeBatch(
    const std::vector<AnalysisRequest>& requests, unsigned workers) {
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > requests.size())
    workers = static_cast<unsigned>(requests.size());
  if (workers <= 1) return analyzeBatch(requests);

  std::vector<AnalysisReport> reports(requests.size());
  std::atomic<std::size_t> next{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;
  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= requests.size()) return;
      try {
        reports[i] = analyze(requests[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  if (firstError) std::rethrow_exception(firstError);
  return reports;
}

}  // namespace imcdft::analysis
