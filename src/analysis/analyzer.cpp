#include "analysis/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "analysis/measures.hpp"
#include "analysis/static_combine.hpp"
#include "analysis/symmetry.hpp"
#include "common/error.hpp"
#include "ctmc/mttf.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "dft/galileo.hpp"
#include "dft/hash.hpp"
#include "dft/modules.hpp"
#include "ioimc/bisimulation.hpp"
#include "ioimc/ops.hpp"

namespace imcdft::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Serialization of every option that influences the composed model (or
/// its reported statistics, which symmetry changes); part of both cache
/// keys.
std::string optionsKey(const AnalysisOptions& opts) {
  std::string key = "sg=";
  key += opts.conversion.subsetGates ? '1' : '0';
  key += ";st=";
  key += std::to_string(static_cast<int>(opts.engine.strategy));
  key += ";ae=";
  key += opts.engine.aggregateEachStep ? '1' : '0';
  key += ";cs=";
  key += opts.engine.collapseSinks ? '1' : '0';
  key += ";ou=";
  key += opts.engine.weak.outputsUrgent ? '1' : '0';
  key += ";sy=";
  key += opts.engine.symmetry ? '1' : '0';
  // The fused engine is built to be bit-identical to the classic path, but
  // its stats (peaks, fused-step counters) differ — and fallback behavior
  // may evolve — so cached analyses are keyed per path.  The live-state
  // cap changes which steps fall back (and hence the cached stats and
  // diagnostics), so it is part of the key too.
  key += ";ot=";
  key += opts.engine.onTheFly ? '1' : '0';
  key += ";oc=";
  key += std::to_string(opts.engine.onTheFlyMaxVisited);
  return key;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Exact serialization of a time grid (hexfloat: no rounding collisions);
/// the curve-cache key suffix.
std::string gridKey(const std::vector<double>& times) {
  std::string key;
  char buf[40];
  for (double t : times) {
    std::snprintf(buf, sizeof buf, "%a,", t);
    key += buf;
  }
  return key;
}

/// The numeric path's per-module fingerprint: rename-invariant shape under
/// symmetry (isomorphic siblings share one solved chain and one curve),
/// exact module key otherwise — mirroring the module cache's keying.
std::string chainKey(const dft::Dft& tree, dft::ElementId root,
                     const AnalysisOptions& opts, const std::string& optsKey) {
  std::string k;
  if (opts.engine.symmetry) {
    k = "shape\x1f";
    k += dft::moduleShape(tree, root).key;
  } else {
    k = dft::moduleKey(tree, root);
  }
  k += '\x1f';
  k += optsKey;
  return k;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* measureKindName(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::Unreliability: return "unreliability";
    case MeasureKind::UnreliabilityBounds: return "unreliability-bounds";
    case MeasureKind::Unavailability: return "unavailability";
    case MeasureKind::SteadyStateUnavailability:
      return "steady-state-unavailability";
    case MeasureKind::Mttf: return "mttf";
  }
  return "?";
}

/// The engine-facing adapter around the session's module map.  Only
/// always-active modules are cacheable: a module activated from outside
/// (it is somebody's spare) converts to different elementary models
/// depending on that outside context, which the module key cannot see.
/// Independence guarantees everything else — no element below the module
/// root is referenced from outside it, so the key (the canonical
/// fingerprint of the module's sub-tree) determines the aggregated model.
///
/// With symmetric keying (EngineOptions::symmetry) the fingerprint is the
/// rename-invariant shape instead, and each entry records the concrete
/// name basis it was stored under.  A hit whose names differ from the
/// entry's instantiates the stored model via ioimc::renameActions; the
/// induced ActionId map must cover the model and be injective (see
/// analysis/symmetry.hpp) or the lookup counts as a miss and the module
/// aggregates normally.
class Analyzer::SessionModuleCache : public ModuleCache {
 public:
  SessionModuleCache(Analyzer& owner, const std::vector<ActivationContext>& ctx,
                     std::string optsKey, bool shapeKeyed,
                     CacheStats& requestStats)
      : owner_(owner),
        contexts_(ctx),
        optsKey_(std::move(optsKey)),
        shapeKeyed_(shapeKeyed),
        stats_(requestStats) {}

  std::optional<CachedModule> lookup(const dft::Dft& dft,
                                     dft::ElementId root) override {
    if (!cacheable(root)) return std::nullopt;
    // Key computation (module extraction + serialization) happens before
    // the lock, and the rename-copy of a hit happens after it — only the
    // map probe and the entry copy hold modulesMutex_.
    dft::ModuleShape shape;
    const std::string k = key(dft, root, shape);
    std::optional<ModuleEntry> entry;
    {
      std::lock_guard<std::mutex> lock(owner_.modulesMutex_);
      auto it = owner_.modules_.find(k);
      if (it != owner_.modules_.end()) entry = it->second;
    }
    if (!entry) {
      ++stats_.moduleMisses;
      return std::nullopt;
    }
    if (!shapeKeyed_ || entry->names == shape.names) {
      ++stats_.moduleHits;
      return CachedModule{std::move(entry->model), entry->steps};
    }
    // Same shape, different names: instantiate the stored model under the
    // lifted substitution.  Cross-request reuse only needs an injective,
    // complete map — the instance is isomorphic to what aggregating this
    // module would produce, so all measures agree exactly.
    std::optional<ioimc::IOIMC> instance =
        renamedInstance(dft, root, shape, *entry);
    if (!instance) {
      ++stats_.moduleMisses;
      return std::nullopt;
    }
    ++stats_.moduleHits;
    return CachedModule{std::move(*instance), entry->steps};
  }

  void store(const dft::Dft& dft, dft::ElementId root,
             const ioimc::IOIMC& model, std::size_t steps) override {
    if (!cacheable(root)) return;
    dft::ModuleShape shape;
    std::string k = key(dft, root, shape);
    std::lock_guard<std::mutex> lock(owner_.modulesMutex_);
    if (owner_.modules_.size() >= owner_.opts_.maxCachedModules)
      owner_.modules_.clear();
    owner_.modules_.insert_or_assign(
        std::move(k), ModuleEntry{model, steps, std::move(shape.names)});
  }

 private:
  bool cacheable(dft::ElementId root) const {
    return root < contexts_.size() && contexts_[root].alwaysActive;
  }
  /// Builds the cache key; under shape keying \p shape receives the
  /// computed shape (key and name basis) as a side product.
  std::string key(const dft::Dft& dft, dft::ElementId root,
                  dft::ModuleShape& shape) const {
    std::string k;
    if (shapeKeyed_) {
      shape = dft::moduleShape(dft, root);
      k = "shape\x1f";
      k += shape.key;
    } else {
      k = dft::moduleKey(dft, root);
    }
    k += '\x1f';
    k += optsKey_;
    return k;
  }

  std::optional<ioimc::IOIMC> renamedInstance(const dft::Dft& dft,
                                              dft::ElementId root,
                                              const dft::ModuleShape& shape,
                                              const ModuleEntry& entry) const {
    const dft::Dft module = dft::extractModule(dft, root);
    std::optional<std::unordered_map<std::string, std::string>> lift =
        liftElementRenaming(module, entry.names, shape.names);
    if (!lift) return std::nullopt;
    std::optional<std::unordered_map<ioimc::ActionId, std::string>> renaming =
        modelRenaming(entry.model, *lift);
    if (!renaming) return std::nullopt;
    return ioimc::renameActions(entry.model, *renaming);
  }

  Analyzer& owner_;
  const std::vector<ActivationContext>& contexts_;
  std::string optsKey_;
  const bool shapeKeyed_;
  CacheStats& stats_;
};

Analyzer::Analyzer(AnalyzerOptions opts)
    : opts_(opts), symbols_(ioimc::makeSymbolTable()) {}

Analyzer::~Analyzer() = default;

void Analyzer::clearCache() {
  trees_.clear();
  modules_.clear();
  chains_.clear();
  curves_.clear();
}

std::shared_ptr<const DftAnalysis> Analyzer::runNumericPipeline(
    const dft::Dft& tree, const dft::StaticLayer& layer,
    const AnalysisOptions& opts, PhaseTimings& timings,
    CacheStats& requestStats, std::vector<Diagnostic>& diagnostics) {
  // Belt and suspenders: the layer's structural checks already imply that
  // every frontier module is always active (its only referencers are the
  // layer's static gates), but the conversion's activation analysis is the
  // authority — disagree and we fall back.
  const std::vector<ActivationContext> contexts = activationContexts(tree);
  for (dft::ElementId root : layer.moduleRoots) {
    if (root >= contexts.size() || !contexts[root].alwaysActive) {
      diagnostics.push_back(
          {Severity::Info,
           "static combination disabled: module '" +
               tree.element(root).name + "' is not always active"});
      return nullptr;
    }
  }

  const std::string optsKey_ = optionsKey(opts);
  const bool useChainCache = opts_.cacheModules;
  std::vector<StaticCombination::SolvedChain> solved;
  std::vector<NumericModule> modules;
  std::vector<std::size_t> solvedSteps;          // per solved chain
  std::vector<std::size_t> membersOfChain;       // bucket sizes
  std::unordered_map<std::string, std::size_t> localIndex;
  CompositionStats stats;

  for (dft::ElementId root : layer.moduleRoots) {
    const std::string key = chainKey(tree, root, opts, optsKey_);
    std::size_t index;
    auto local = localIndex.find(key);
    if (local != localIndex.end()) {
      // Symmetric sibling within this request: one curve for free.
      index = local->second;
      ++membersOfChain[index];
      ++stats.symmetricModulesReused;
      stats.symmetrySavedSteps += solvedSteps[index];
    } else {
      std::shared_ptr<const DftAnalysis> sub;
      std::size_t steps = 0;
      if (useChainCache) {
        auto it = chains_.find(key);
        if (it != chains_.end()) {
          sub = it->second.analysis;
          steps = it->second.steps;
          ++requestStats.moduleHits;
          ++stats.cachedModules;
          stats.stepsSaved += steps;
          requestStats.stepsSaved += steps;
        }
      }
      if (!sub) {
        ++requestStats.moduleMisses;
        const dft::Dft moduleDft = dft::extractModule(tree, root);
        PhaseTimings subTimings;
        sub = runPipeline(moduleDft, opts, subTimings, requestStats);
        timings.convert += subTimings.convert;
        timings.compose += subTimings.compose;
        timings.extract += subTimings.extract;
        if (sub->nondeterministic) {
          diagnostics.push_back(
              {Severity::Warning,
               "static combination fell back to full composition: module '" +
                   tree.element(root).name +
                   "' is nondeterministic (FDEP-induced simultaneity, "
                   "Section 4.4)"});
          return nullptr;
        }
        steps = sub->stats.steps.size();
        // Fold the per-module pipeline into the request's stats: its steps
        // are the only compositions that happen at all, and its peaks bound
        // the largest intermediate model of the whole analysis.
        stats.steps.insert(stats.steps.end(), sub->stats.steps.begin(),
                           sub->stats.steps.end());
        stats.cachedModules += sub->stats.cachedModules;
        stats.stepsSaved += sub->stats.stepsSaved;
        stats.symmetricBuckets += sub->stats.symmetricBuckets;
        stats.symmetricModulesReused += sub->stats.symmetricModulesReused;
        stats.symmetrySavedSteps += sub->stats.symmetrySavedSteps;
        stats.onTheFlySteps += sub->stats.onTheFlySteps;
        stats.onTheFlyFallbacks += sub->stats.onTheFlyFallbacks;
        stats.onTheFlySavedPeakStates += sub->stats.onTheFlySavedPeakStates;
        for (const std::string& reason : sub->stats.onTheFlyFallbackReasons)
          stats.noteOnTheFlyFallbackReason(reason);
        stats.peakComposedStates =
            std::max(stats.peakComposedStates, sub->stats.peakComposedStates);
        stats.peakComposedTransitions = std::max(
            stats.peakComposedTransitions, sub->stats.peakComposedTransitions);
        stats.peakAggregatedStates = std::max(stats.peakAggregatedStates,
                                              sub->stats.peakAggregatedStates);
        stats.peakAggregatedTransitions =
            std::max(stats.peakAggregatedTransitions,
                     sub->stats.peakAggregatedTransitions);
        if (useChainCache) {
          if (chains_.size() >= opts_.maxCachedModules) chains_.clear();
          chains_.insert_or_assign(key, ChainEntry{sub, steps});
        }
      }
      index = solved.size();
      solved.push_back({key, std::move(sub)});
      solvedSteps.push_back(steps);
      membersOfChain.push_back(1);
      localIndex.emplace(key, index);
    }
    const DftAnalysis& chain = *solved[index].analysis;
    modules.push_back(NumericModule{tree.element(root).name, index,
                                    chain.closedModel.numStates(),
                                    chain.closedModel.numTransitions()});
  }
  for (std::size_t members : membersOfChain)
    if (members >= 2) ++stats.symmetricBuckets;
  for (const NumericModule& m : modules)
    stats.modules.push_back(ModuleResult{m.name, m.states, m.transitions});

  // The placeholder model keeps DftAnalysis well-formed (exports and state
  // counts read 1 state, 0 transitions); every measure evaluates through
  // staticCombo instead.
  std::vector<std::vector<ioimc::InteractiveTransition>> inter(1);
  std::vector<std::vector<ioimc::MarkovianTransition>> markov(1);
  ioimc::IOIMC placeholder("static-combination", symbols_, ioimc::Signature{},
                           0, std::move(inter), std::move(markov), {0}, {});
  DftAnalysis result{std::move(placeholder),
                     std::move(stats),
                     Extraction{},
                     /*nondeterministic=*/false,
                     /*repairable=*/false,
                     std::nullopt,
                     std::make_shared<StaticCombination>(
                         tree, layer, std::move(solved), std::move(modules))};
  return std::make_shared<DftAnalysis>(std::move(result));
}

std::vector<double> Analyzer::cachedCurve(const StaticCombination& combo,
                                          std::size_t chainIndex,
                                          const std::vector<double>& times) {
  if (!opts_.cacheModules) return combo.solveCurve(chainIndex, times);
  std::string key = combo.chains()[chainIndex].key;
  key += '\x1f';
  key += gridKey(times);
  auto it = curves_.find(key);
  if (it != curves_.end()) return it->second;
  std::vector<double> curve = combo.solveCurve(chainIndex, times);
  if (curves_.size() >= opts_.maxCachedCurves) curves_.clear();
  curves_.emplace(std::move(key), curve);
  return curve;
}

std::shared_ptr<const DftAnalysis> Analyzer::runPipeline(
    const dft::Dft& tree, const AnalysisOptions& opts, PhaseTimings& timings,
    CacheStats& requestStats) {
  ConversionOptions conversion = opts.conversion;
  const bool customSymbols =
      conversion.symbols && conversion.symbols != symbols_;
  if (!conversion.symbols) conversion.symbols = symbols_;

  Clock::time_point phase = Clock::now();
  Community community = convertDft(tree, conversion);
  timings.convert = secondsSince(phase);
  const bool repairable = community.repairable;
  // Keep the activation contexts alive past the move of the community into
  // the engine: the module-cache hook consults them for cacheability.
  const std::vector<ActivationContext> contexts = community.contexts;

  phase = Clock::now();
  SessionModuleCache moduleCache(*this, contexts, optionsKey(opts),
                                 /*shapeKeyed=*/opts.engine.symmetry,
                                 requestStats);
  // Cached module models are interned in the session table; a community
  // built over a caller-supplied table cannot exchange models with them.
  const bool useModuleCache =
      opts_.cacheModules && !customSymbols &&
      opts.engine.strategy == CompositionStrategy::Modular;
  EngineResult engine =
      composeCommunity(std::move(community), tree, opts.engine,
                       useModuleCache ? &moduleCache : nullptr);
  timings.compose = secondsSince(phase);
  requestStats.stepsRun += engine.stats.steps.size();
  requestStats.stepsSaved += engine.stats.stepsSaved;

  // Absorb failure states, re-aggregate (usually shrinks further), extract.
  phase = Clock::now();
  ioimc::IOIMC absorbedModel =
      ioimc::makeLabelAbsorbing(engine.model, kDownLabel);
  absorbedModel = ioimc::aggregate(absorbedModel, opts.engine.weak);
  Extraction absorbed = extract(absorbedModel, kDownLabel);
  timings.extract = secondsSince(phase);

  DftAnalysis result{std::move(engine.model), std::move(engine.stats),
                     std::move(absorbed), false, repairable, std::nullopt,
                     nullptr};
  result.nondeterministic = !result.absorbed.deterministic;
  return std::make_shared<DftAnalysis>(std::move(result));
}

AnalysisReport Analyzer::analyze(const AnalysisRequest& request) {
  AnalysisReport report;
  report.label = request.label;

  // --- Resolve the DFT source. ---
  Clock::time_point phase = Clock::now();
  std::optional<dft::Dft> parsed;
  const dft::Dft* tree = nullptr;
  switch (request.source) {
    case AnalysisRequest::Source::InMemory:
      require(request.tree.has_value(),
              "AnalysisRequest: in-memory request without a tree");
      tree = &*request.tree;
      break;
    case AnalysisRequest::Source::GalileoText:
      parsed = dft::parseGalileo(request.galileo);
      tree = &*parsed;
      break;
    case AnalysisRequest::Source::GalileoFile:
      parsed = dft::parseGalileo(readFile(request.galileo));
      tree = &*parsed;
      break;
  }
  report.timings.parse = secondsSince(phase);

  // --- Whole-tree cache lookup / pipeline run. ---
  std::string treeKey = dft::canonicalKey(*tree);
  report.treeHash = dft::fnv1a(treeKey);
  treeKey += '\x1f';
  treeKey += optionsKey(request.options);

  // Requests with their own symbol table are served one-shot: every cached
  // model (and every model a cached DftAnalysis holds) is interned in the
  // session table, which is not the table such a request asked for.
  const bool sessionSymbols = !request.options.conversion.symbols ||
                              request.options.conversion.symbols == symbols_;
  const bool useTreeCache = opts_.cacheTrees && sessionSymbols;

  // Static-layer numeric combination (EngineOptions::staticCombine): only
  // unreliability-kind measures can be read off per-module curves, so any
  // other requested measure routes to the full composition pipeline — and
  // the tree-cache key records which kind of analysis is stored (";nc=").
  // A numeric-kind request probes the numeric key first and the full key
  // second (a full analysis answers unreliability too, and an ineligible
  // or fallen-back tree is stored under the full key); other requests
  // probe only the full key.  Layer detection itself — a structural walk
  // over the whole tree — runs only on a cache miss.
  const bool wantNumeric =
      request.options.engine.staticCombine && sessionSymbols &&
      request.options.engine.strategy == CompositionStrategy::Modular &&
      !request.measures.empty() &&
      std::all_of(request.measures.begin(), request.measures.end(),
                  [](const MeasureSpec& m) {
                    return m.kind == MeasureKind::Unreliability ||
                           m.kind == MeasureKind::UnreliabilityBounds;
                  });
  const std::string fullKey = treeKey + ";nc=0";
  const std::string numericKey = treeKey + ";nc=1";

  std::shared_ptr<const DftAnalysis> analysis;
  if (useTreeCache) {
    auto it = wantNumeric ? trees_.find(numericKey) : trees_.end();
    if (it == trees_.end()) it = trees_.find(fullKey);
    if (it != trees_.end()) {
      analysis = it->second;
      report.fromCache = true;
      ++report.cache.treeHits;
      report.diagnostics.push_back(
          {Severity::Info, "composition served from the whole-tree cache"});
    }
  }
  std::string storeKey = fullKey;
  if (!analysis) {
    ++report.cache.treeMisses;
    if (wantNumeric) {
      dft::StaticLayer layer = dft::detectStaticLayer(*tree);
      if (layer.eligible) {
        analysis = runNumericPipeline(*tree, layer, request.options,
                                      report.timings, report.cache,
                                      report.diagnostics);
        if (analysis) storeKey = numericKey;
        // Null = a module was nondeterministic (Warning already
        // attached); the fallen-back full analysis lands under fullKey.
      } else {
        report.diagnostics.push_back(
            {Severity::Info,
             "static combination not applicable: " + layer.reason});
      }
    }
    if (!analysis)
      analysis = runPipeline(*tree, request.options, report.timings,
                             report.cache);
    if (report.cache.moduleHits > 0)
      report.diagnostics.push_back(
          {Severity::Info,
           std::to_string(report.cache.moduleHits) +
               " module(s) spliced from the session cache, saving " +
               std::to_string(report.cache.stepsSaved) +
               " composition step(s)"});
    if (analysis->stats.symmetricModulesReused > 0)
      report.diagnostics.push_back(
          {Severity::Info,
           std::to_string(analysis->stats.symmetricModulesReused) +
               " symmetric module(s) instantiated by renaming (" +
               std::to_string(analysis->stats.symmetricBuckets) +
               " shape bucket(s)), saving " +
               std::to_string(analysis->stats.symmetrySavedSteps) +
               " composition step(s)"});
    if (analysis->stats.onTheFlySteps > 0)
      report.diagnostics.push_back(
          {Severity::Info,
           std::to_string(analysis->stats.onTheFlySteps) +
               " composition step(s) ran fused (on-the-fly), keeping at "
               "least " +
               std::to_string(analysis->stats.onTheFlySavedPeakStates) +
               " product state(s) below the materialization bound"});
    if (analysis->stats.onTheFlyFallbacks > 0) {
      std::string why;
      for (const std::string& reason : analysis->stats.onTheFlyFallbackReasons) {
        if (!why.empty()) why += "; ";
        why += reason;
      }
      report.diagnostics.push_back(
          {Severity::Warning,
           "on-the-fly composition fell back to the classic path for " +
               std::to_string(analysis->stats.onTheFlyFallbacks) +
               " step(s): " + why});
    }
    if (useTreeCache) {
      if (trees_.size() >= opts_.maxCachedTrees) trees_.clear();
      trees_.emplace(std::move(storeKey), analysis);
    }
  }
  report.analysis = analysis;
  if (analysis->staticCombo)
    report.diagnostics.push_back(
        {Severity::Info, analysis->staticCombo->summary()});

  // --- Evaluate the measures. ---
  phase = Clock::now();
  // Numeric-path curves are served through the session curve cache, so a
  // batch over symmetric or repeated grids solves each distinct chain once.
  auto numericCurve = [&](const std::vector<double>& times) {
    return analysis->staticCombo->evaluate(
        times, [&](std::size_t index, const std::vector<double>& ts) {
          return cachedCurve(*analysis->staticCombo, index, ts);
        });
  };
  auto warn = [&](const std::string& message) {
    report.diagnostics.push_back({Severity::Warning, message});
  };
  auto fail = [&](MeasureResult& r, const std::string& message) {
    r.ok = false;
    r.error = message;
    report.diagnostics.push_back(
        {Severity::Error,
         std::string(measureKindName(r.spec.kind)) + ": " + message});
  };
  auto requireGrid = [&](MeasureResult& r) {
    if (!r.spec.times.empty()) return true;
    fail(r, "empty time grid");
    return false;
  };

  for (const MeasureSpec& spec : request.measures) {
    MeasureResult r;
    r.spec = spec;
    r.ok = true;
    try {
      switch (spec.kind) {
        case MeasureKind::Unreliability:
          if (!requireGrid(r)) break;
          if (analysis->staticCombo) {
            r.values = numericCurve(spec.times);
          } else if (analysis->nondeterministic) {
            r.boundsSubstituted = true;
            for (double t : spec.times)
              r.bounds.push_back(unreliabilityBounds(*analysis, t));
            warn(
                "the model is nondeterministic (FDEP-induced simultaneity, "
                "Section 4.4): scheduler bounds substituted for point "
                "unreliability");
          } else {
            r.values = unreliabilityCurve(*analysis, spec.times);
          }
          break;
        case MeasureKind::UnreliabilityBounds:
          if (!requireGrid(r)) break;
          if (analysis->staticCombo) {
            // The numeric path only exists when every module extraction is
            // deterministic; the scheduler bounds coincide.
            for (double v : numericCurve(spec.times))
              r.bounds.push_back(ctmdp::ReachabilityBounds{v, v});
          } else {
            for (double t : spec.times)
              r.bounds.push_back(unreliabilityBounds(*analysis, t));
          }
          break;
        case MeasureKind::Unavailability:
          if (!requireGrid(r)) break;
          for (double t : spec.times)
            r.values.push_back(unavailability(*analysis, t));
          break;
        case MeasureKind::SteadyStateUnavailability:
          r.values.push_back(steadyStateUnavailability(*analysis));
          break;
        case MeasureKind::Mttf: {
          if (analysis->nondeterministic) {
            fail(r,
                 "the model is nondeterministic; no scheduler-free "
                 "expectation exists");
            break;
          }
          ctmc::MttfResult mttf =
              ctmc::expectedTimeToLabel(analysis->absorbed.chain, kDownLabel);
          if (!mttf.finite) {
            r.values.push_back(kInf);
            warn(
                "MTTF is infinite: the top event is missed with positive "
                "probability");
          } else {
            r.values.push_back(mttf.value);
          }
          break;
        }
      }
    } catch (const Error& e) {
      fail(r, e.what());
    }
    report.measures.push_back(std::move(r));
  }
  report.timings.measure = secondsSince(phase);

  // --- Session bookkeeping. ---
  sessionStats_.treeHits += report.cache.treeHits;
  sessionStats_.treeMisses += report.cache.treeMisses;
  sessionStats_.moduleHits += report.cache.moduleHits;
  sessionStats_.moduleMisses += report.cache.moduleMisses;
  sessionStats_.stepsRun += report.cache.stepsRun;
  sessionStats_.stepsSaved += report.cache.stepsSaved;
  return report;
}

std::vector<AnalysisReport> Analyzer::analyzeBatch(
    const std::vector<AnalysisRequest>& requests) {
  std::vector<AnalysisReport> reports;
  reports.reserve(requests.size());
  for (const AnalysisRequest& request : requests)
    reports.push_back(analyze(request));
  return reports;
}

}  // namespace imcdft::analysis
