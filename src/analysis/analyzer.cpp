#include "analysis/analyzer.hpp"

#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "analysis/measures.hpp"
#include "analysis/symmetry.hpp"
#include "common/error.hpp"
#include "ctmc/mttf.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "dft/galileo.hpp"
#include "dft/hash.hpp"
#include "dft/modules.hpp"
#include "ioimc/bisimulation.hpp"
#include "ioimc/ops.hpp"

namespace imcdft::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Serialization of every option that influences the composed model (or
/// its reported statistics, which symmetry changes); part of both cache
/// keys.
std::string optionsKey(const AnalysisOptions& opts) {
  std::string key = "sg=";
  key += opts.conversion.subsetGates ? '1' : '0';
  key += ";st=";
  key += std::to_string(static_cast<int>(opts.engine.strategy));
  key += ";ae=";
  key += opts.engine.aggregateEachStep ? '1' : '0';
  key += ";cs=";
  key += opts.engine.collapseSinks ? '1' : '0';
  key += ";ou=";
  key += opts.engine.weak.outputsUrgent ? '1' : '0';
  key += ";sy=";
  key += opts.engine.symmetry ? '1' : '0';
  return key;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* measureKindName(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::Unreliability: return "unreliability";
    case MeasureKind::UnreliabilityBounds: return "unreliability-bounds";
    case MeasureKind::Unavailability: return "unavailability";
    case MeasureKind::SteadyStateUnavailability:
      return "steady-state-unavailability";
    case MeasureKind::Mttf: return "mttf";
  }
  return "?";
}

/// The engine-facing adapter around the session's module map.  Only
/// always-active modules are cacheable: a module activated from outside
/// (it is somebody's spare) converts to different elementary models
/// depending on that outside context, which the module key cannot see.
/// Independence guarantees everything else — no element below the module
/// root is referenced from outside it, so the key (the canonical
/// fingerprint of the module's sub-tree) determines the aggregated model.
///
/// With symmetric keying (EngineOptions::symmetry) the fingerprint is the
/// rename-invariant shape instead, and each entry records the concrete
/// name basis it was stored under.  A hit whose names differ from the
/// entry's instantiates the stored model via ioimc::renameActions; the
/// induced ActionId map must cover the model and be injective (see
/// analysis/symmetry.hpp) or the lookup counts as a miss and the module
/// aggregates normally.
class Analyzer::SessionModuleCache : public ModuleCache {
 public:
  SessionModuleCache(Analyzer& owner, const std::vector<ActivationContext>& ctx,
                     std::string optsKey, bool shapeKeyed,
                     CacheStats& requestStats)
      : owner_(owner),
        contexts_(ctx),
        optsKey_(std::move(optsKey)),
        shapeKeyed_(shapeKeyed),
        stats_(requestStats) {}

  std::optional<CachedModule> lookup(const dft::Dft& dft,
                                     dft::ElementId root) override {
    if (!cacheable(root)) return std::nullopt;
    // Key computation (module extraction + serialization) happens before
    // the lock, and the rename-copy of a hit happens after it — only the
    // map probe and the entry copy hold modulesMutex_.
    dft::ModuleShape shape;
    const std::string k = key(dft, root, shape);
    std::optional<ModuleEntry> entry;
    {
      std::lock_guard<std::mutex> lock(owner_.modulesMutex_);
      auto it = owner_.modules_.find(k);
      if (it != owner_.modules_.end()) entry = it->second;
    }
    if (!entry) {
      ++stats_.moduleMisses;
      return std::nullopt;
    }
    if (!shapeKeyed_ || entry->names == shape.names) {
      ++stats_.moduleHits;
      return CachedModule{std::move(entry->model), entry->steps};
    }
    // Same shape, different names: instantiate the stored model under the
    // lifted substitution.  Cross-request reuse only needs an injective,
    // complete map — the instance is isomorphic to what aggregating this
    // module would produce, so all measures agree exactly.
    std::optional<ioimc::IOIMC> instance =
        renamedInstance(dft, root, shape, *entry);
    if (!instance) {
      ++stats_.moduleMisses;
      return std::nullopt;
    }
    ++stats_.moduleHits;
    return CachedModule{std::move(*instance), entry->steps};
  }

  void store(const dft::Dft& dft, dft::ElementId root,
             const ioimc::IOIMC& model, std::size_t steps) override {
    if (!cacheable(root)) return;
    dft::ModuleShape shape;
    std::string k = key(dft, root, shape);
    std::lock_guard<std::mutex> lock(owner_.modulesMutex_);
    if (owner_.modules_.size() >= owner_.opts_.maxCachedModules)
      owner_.modules_.clear();
    owner_.modules_.insert_or_assign(
        std::move(k), ModuleEntry{model, steps, std::move(shape.names)});
  }

 private:
  bool cacheable(dft::ElementId root) const {
    return root < contexts_.size() && contexts_[root].alwaysActive;
  }
  /// Builds the cache key; under shape keying \p shape receives the
  /// computed shape (key and name basis) as a side product.
  std::string key(const dft::Dft& dft, dft::ElementId root,
                  dft::ModuleShape& shape) const {
    std::string k;
    if (shapeKeyed_) {
      shape = dft::moduleShape(dft, root);
      k = "shape\x1f";
      k += shape.key;
    } else {
      k = dft::moduleKey(dft, root);
    }
    k += '\x1f';
    k += optsKey_;
    return k;
  }

  std::optional<ioimc::IOIMC> renamedInstance(const dft::Dft& dft,
                                              dft::ElementId root,
                                              const dft::ModuleShape& shape,
                                              const ModuleEntry& entry) const {
    const dft::Dft module = dft::extractModule(dft, root);
    std::optional<std::unordered_map<std::string, std::string>> lift =
        liftElementRenaming(module, entry.names, shape.names);
    if (!lift) return std::nullopt;
    std::optional<std::unordered_map<ioimc::ActionId, std::string>> renaming =
        modelRenaming(entry.model, *lift);
    if (!renaming) return std::nullopt;
    return ioimc::renameActions(entry.model, *renaming);
  }

  Analyzer& owner_;
  const std::vector<ActivationContext>& contexts_;
  std::string optsKey_;
  const bool shapeKeyed_;
  CacheStats& stats_;
};

Analyzer::Analyzer(AnalyzerOptions opts)
    : opts_(opts), symbols_(ioimc::makeSymbolTable()) {}

Analyzer::~Analyzer() = default;

void Analyzer::clearCache() {
  trees_.clear();
  modules_.clear();
}

std::shared_ptr<const DftAnalysis> Analyzer::runPipeline(
    const dft::Dft& tree, const AnalysisOptions& opts, PhaseTimings& timings,
    CacheStats& requestStats) {
  ConversionOptions conversion = opts.conversion;
  const bool customSymbols =
      conversion.symbols && conversion.symbols != symbols_;
  if (!conversion.symbols) conversion.symbols = symbols_;

  Clock::time_point phase = Clock::now();
  Community community = convertDft(tree, conversion);
  timings.convert = secondsSince(phase);
  const bool repairable = community.repairable;
  // Keep the activation contexts alive past the move of the community into
  // the engine: the module-cache hook consults them for cacheability.
  const std::vector<ActivationContext> contexts = community.contexts;

  phase = Clock::now();
  SessionModuleCache moduleCache(*this, contexts, optionsKey(opts),
                                 /*shapeKeyed=*/opts.engine.symmetry,
                                 requestStats);
  // Cached module models are interned in the session table; a community
  // built over a caller-supplied table cannot exchange models with them.
  const bool useModuleCache =
      opts_.cacheModules && !customSymbols &&
      opts.engine.strategy == CompositionStrategy::Modular;
  EngineResult engine =
      composeCommunity(std::move(community), tree, opts.engine,
                       useModuleCache ? &moduleCache : nullptr);
  timings.compose = secondsSince(phase);
  requestStats.stepsRun += engine.stats.steps.size();
  requestStats.stepsSaved += engine.stats.stepsSaved;

  // Absorb failure states, re-aggregate (usually shrinks further), extract.
  phase = Clock::now();
  ioimc::IOIMC absorbedModel =
      ioimc::makeLabelAbsorbing(engine.model, kDownLabel);
  absorbedModel = ioimc::aggregate(absorbedModel, opts.engine.weak);
  Extraction absorbed = extract(absorbedModel, kDownLabel);
  timings.extract = secondsSince(phase);

  DftAnalysis result{std::move(engine.model), std::move(engine.stats),
                     std::move(absorbed), false, repairable, std::nullopt};
  result.nondeterministic = !result.absorbed.deterministic;
  return std::make_shared<DftAnalysis>(std::move(result));
}

AnalysisReport Analyzer::analyze(const AnalysisRequest& request) {
  AnalysisReport report;
  report.label = request.label;

  // --- Resolve the DFT source. ---
  Clock::time_point phase = Clock::now();
  std::optional<dft::Dft> parsed;
  const dft::Dft* tree = nullptr;
  switch (request.source) {
    case AnalysisRequest::Source::InMemory:
      require(request.tree.has_value(),
              "AnalysisRequest: in-memory request without a tree");
      tree = &*request.tree;
      break;
    case AnalysisRequest::Source::GalileoText:
      parsed = dft::parseGalileo(request.galileo);
      tree = &*parsed;
      break;
    case AnalysisRequest::Source::GalileoFile:
      parsed = dft::parseGalileo(readFile(request.galileo));
      tree = &*parsed;
      break;
  }
  report.timings.parse = secondsSince(phase);

  // --- Whole-tree cache lookup / pipeline run. ---
  std::string treeKey = dft::canonicalKey(*tree);
  report.treeHash = dft::fnv1a(treeKey);
  treeKey += '\x1f';
  treeKey += optionsKey(request.options);

  // Requests with their own symbol table are served one-shot: every cached
  // model (and every model a cached DftAnalysis holds) is interned in the
  // session table, which is not the table such a request asked for.
  const bool useTreeCache =
      opts_.cacheTrees && (!request.options.conversion.symbols ||
                           request.options.conversion.symbols == symbols_);

  std::shared_ptr<const DftAnalysis> analysis;
  if (useTreeCache) {
    auto it = trees_.find(treeKey);
    if (it != trees_.end()) {
      analysis = it->second;
      report.fromCache = true;
      ++report.cache.treeHits;
      report.diagnostics.push_back(
          {Severity::Info, "composition served from the whole-tree cache"});
    }
  }
  if (!analysis) {
    ++report.cache.treeMisses;
    analysis = runPipeline(*tree, request.options, report.timings,
                           report.cache);
    if (report.cache.moduleHits > 0)
      report.diagnostics.push_back(
          {Severity::Info,
           std::to_string(report.cache.moduleHits) +
               " module(s) spliced from the session cache, saving " +
               std::to_string(report.cache.stepsSaved) +
               " composition step(s)"});
    if (analysis->stats.symmetricModulesReused > 0)
      report.diagnostics.push_back(
          {Severity::Info,
           std::to_string(analysis->stats.symmetricModulesReused) +
               " symmetric module(s) instantiated by renaming (" +
               std::to_string(analysis->stats.symmetricBuckets) +
               " shape bucket(s)), saving " +
               std::to_string(analysis->stats.symmetrySavedSteps) +
               " composition step(s)"});
    if (useTreeCache) {
      if (trees_.size() >= opts_.maxCachedTrees) trees_.clear();
      trees_.emplace(std::move(treeKey), analysis);
    }
  }
  report.analysis = analysis;

  // --- Evaluate the measures. ---
  phase = Clock::now();
  auto warn = [&](const std::string& message) {
    report.diagnostics.push_back({Severity::Warning, message});
  };
  auto fail = [&](MeasureResult& r, const std::string& message) {
    r.ok = false;
    r.error = message;
    report.diagnostics.push_back(
        {Severity::Error,
         std::string(measureKindName(r.spec.kind)) + ": " + message});
  };
  auto requireGrid = [&](MeasureResult& r) {
    if (!r.spec.times.empty()) return true;
    fail(r, "empty time grid");
    return false;
  };

  for (const MeasureSpec& spec : request.measures) {
    MeasureResult r;
    r.spec = spec;
    r.ok = true;
    try {
      switch (spec.kind) {
        case MeasureKind::Unreliability:
          if (!requireGrid(r)) break;
          if (analysis->nondeterministic) {
            r.boundsSubstituted = true;
            for (double t : spec.times)
              r.bounds.push_back(unreliabilityBounds(*analysis, t));
            warn(
                "the model is nondeterministic (FDEP-induced simultaneity, "
                "Section 4.4): scheduler bounds substituted for point "
                "unreliability");
          } else {
            r.values = unreliabilityCurve(*analysis, spec.times);
          }
          break;
        case MeasureKind::UnreliabilityBounds:
          if (!requireGrid(r)) break;
          for (double t : spec.times)
            r.bounds.push_back(unreliabilityBounds(*analysis, t));
          break;
        case MeasureKind::Unavailability:
          if (!requireGrid(r)) break;
          for (double t : spec.times)
            r.values.push_back(unavailability(*analysis, t));
          break;
        case MeasureKind::SteadyStateUnavailability:
          r.values.push_back(steadyStateUnavailability(*analysis));
          break;
        case MeasureKind::Mttf: {
          if (analysis->nondeterministic) {
            fail(r,
                 "the model is nondeterministic; no scheduler-free "
                 "expectation exists");
            break;
          }
          ctmc::MttfResult mttf =
              ctmc::expectedTimeToLabel(analysis->absorbed.chain, kDownLabel);
          if (!mttf.finite) {
            r.values.push_back(kInf);
            warn(
                "MTTF is infinite: the top event is missed with positive "
                "probability");
          } else {
            r.values.push_back(mttf.value);
          }
          break;
        }
      }
    } catch (const Error& e) {
      fail(r, e.what());
    }
    report.measures.push_back(std::move(r));
  }
  report.timings.measure = secondsSince(phase);

  // --- Session bookkeeping. ---
  sessionStats_.treeHits += report.cache.treeHits;
  sessionStats_.treeMisses += report.cache.treeMisses;
  sessionStats_.moduleHits += report.cache.moduleHits;
  sessionStats_.moduleMisses += report.cache.moduleMisses;
  sessionStats_.stepsRun += report.cache.stepsRun;
  sessionStats_.stepsSaved += report.cache.stepsSaved;
  return report;
}

std::vector<AnalysisReport> Analyzer::analyzeBatch(
    const std::vector<AnalysisRequest>& requests) {
  std::vector<AnalysisReport> reports;
  reports.reserve(requests.size());
  for (const AnalysisRequest& request : requests)
    reports.push_back(analyze(request));
  return reports;
}

}  // namespace imcdft::analysis
