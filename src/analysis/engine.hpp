#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/converter.hpp"
#include "dft/model.hpp"
#include "ioimc/bisimulation.hpp"
#include "ioimc/model.hpp"

/// \file engine.hpp
/// Steps 2-5 of the paper's conversion/analysis algorithm: repeatedly pick
/// two I/O-IMC of the community, parallel-compose them, hide the output
/// signals that are no longer synchronized on, and aggregate with weak
/// bisimulation, until a single model remains.

namespace imcdft::analysis {

/// Order in which the community is folded.
enum class CompositionStrategy {
  /// Compose the models of each independent DFT module first (the paper's
  /// Section 5.2 modular analysis); greedy within each module.
  Modular,
  /// Repeatedly compose the cheapest synchronizing pair.
  Greedy,
  /// Fold the community left to right as converted.
  Declaration,
};

struct EngineOptions {
  CompositionStrategy strategy = CompositionStrategy::Modular;
  /// Aggregate after every composition step (turning this off reproduces
  /// the state-space blow-up the paper warns about).
  bool aggregateEachStep = true;
  /// Merge states whose whole future is unobservable (see
  /// ioimc::collapseUnobservableSinks); measure-preserving.
  bool collapseSinks = true;
  /// Worker threads for the Modular strategy's per-module aggregation
  /// (independent modules share no mutable state, so their
  /// compose/hide/aggregate chains run concurrently).  0 means
  /// std::thread::hardware_concurrency(); 1 runs everything on the calling
  /// thread.  Results are bitwise identical for every thread count: each
  /// module task is a pure function of its inputs and the results are
  /// folded in a fixed order.
  unsigned numThreads = 0;
  /// Symmetry reduction (Modular strategy only): bucket independent modules
  /// by their rename-invariant shape (dft::moduleShape), aggregate exactly
  /// one representative per bucket, and instantiate the isomorphic siblings
  /// with ioimc::renameActions under the recorded name substitution — the
  /// paper's Section 5.2 manual reuse of the CAS motor/pump unit, automated.
  /// Symmetric trees then cost O(shapes) aggregations instead of
  /// O(modules).  Reuse only happens when the induced ActionId map is
  /// strictly order-preserving and the module structures correspond
  /// exactly, which makes every measure *bitwise identical* to the
  /// symmetry-off run; any check failure falls back to aggregating the
  /// module normally (see analysis/symmetry.hpp).
  bool symmetry = true;
  /// Static-layer numeric combination (Analyzer pipeline, Modular strategy
  /// only): when the top of the tree is a static combination layer over
  /// independent modules (dft::detectStaticLayer), solve each module's
  /// unreliability numerically on its own absorbing CTMC and evaluate the
  /// layer's structure function over the per-time probabilities with a BDD
  /// instead of composing the joint unfired product — linear in the number
  /// of modules where composition is exponential (see
  /// analysis/static_combine.hpp).  Falls back to full composition, with a
  /// diagnostic, whenever eligibility cannot be proven or a module turns
  /// out nondeterministic.  Exact up to CTMC transient tolerances; the E14
  /// bench enforces 1e-9-relative agreement with the composition path.
  bool staticCombine = true;
  ioimc::WeakOptions weak;
};

/// Records of one compose/hide/aggregate step.
struct CompositionStep {
  std::string name;                 ///< "left || right" of the composed pair
  std::size_t leftStates = 0;       ///< operand sizes going in
  std::size_t rightStates = 0;
  std::size_t composedStates = 0;   ///< product size before aggregation
  std::size_t composedTransitions = 0;
  std::size_t aggregatedStates = 0; ///< size after hide/collapse/aggregate
  std::size_t aggregatedTransitions = 0;
};

/// Aggregated I/O-IMC of one completed independent module.  Modules that
/// were spliced from a cache or instantiated by symmetry renaming appear
/// here too, under their own name with the reused model's sizes.
struct ModuleResult {
  std::string name;        ///< module root element's name
  std::size_t states = 0;  ///< aggregated module model size
  std::size_t transitions = 0;
};

struct CompositionStats {
  std::vector<CompositionStep> steps;
  std::vector<ModuleResult> modules;
  /// Modules spliced in from a ModuleCache instead of being composed.
  std::size_t cachedModules = 0;
  /// Compose/hide/aggregate steps those splices avoided (as recorded when
  /// the cached model was originally built).
  std::size_t stepsSaved = 0;
  /// Symmetry reduction (EngineOptions::symmetry): shape buckets that held
  /// at least two isomorphic modules in this run.
  std::size_t symmetricBuckets = 0;
  /// Sibling module aggregations skipped by instantiating the bucket
  /// representative's aggregated model under an action renaming.
  std::size_t symmetricModulesReused = 0;
  /// Compose/hide/aggregate steps those instantiations avoided (the
  /// representative's subtree step count, once per reused sibling).
  std::size_t symmetrySavedSteps = 0;
  /// Size of the biggest I/O-IMC generated by any composition step.
  std::size_t peakComposedStates = 0;
  std::size_t peakComposedTransitions = 0;
  /// Size of the biggest model after aggregation.
  std::size_t peakAggregatedStates = 0;
  std::size_t peakAggregatedTransitions = 0;
};

struct EngineResult {
  ioimc::IOIMC model;  ///< single remaining I/O-IMC, all outputs hidden
  CompositionStats stats;
};

/// A reusable aggregated module model, as exchanged with a ModuleCache.
struct CachedModule {
  ioimc::IOIMC model;
  /// Compose/hide/aggregate steps it originally took to build the model
  /// (what a cache hit saves).
  std::size_t steps = 0;
};

/// Cache consulted by the Modular strategy for whole independent modules.
/// lookup() is called before a module subtree is composed; a hit splices
/// the cached aggregated I/O-IMC into the community and skips the subtree
/// entirely.  store() offers every freshly aggregated proper module.  The
/// implementation decides cacheability and keying (see
/// analysis/analyzer.hpp for the session implementation; it keys on the
/// module's canonical sub-tree hash and rejects modules whose activation
/// depends on context outside the module).
///
/// Thread safety: lookup() is only invoked from the engine's calling
/// thread, but store() is invoked from worker threads when
/// EngineOptions::numThreads enables parallel module aggregation —
/// implementations must synchronize store() against itself and lookup().
class ModuleCache {
 public:
  virtual ~ModuleCache() = default;
  virtual std::optional<CachedModule> lookup(const dft::Dft& dft,
                                             dft::ElementId root) = 0;
  virtual void store(const dft::Dft& dft, dft::ElementId root,
                     const ioimc::IOIMC& model, std::size_t steps) = 0;
};

/// Folds the community into a single aggregated I/O-IMC.  \p dft is used by
/// the Modular strategy to group models by independent module.  \p cache,
/// when non-null, lets the Modular strategy reuse previously aggregated
/// module models across invocations (other strategies ignore it).
EngineResult composeCommunity(Community community, const dft::Dft& dft,
                              const EngineOptions& opts = {},
                              ModuleCache* cache = nullptr);

}  // namespace imcdft::analysis
