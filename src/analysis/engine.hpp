#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/converter.hpp"
#include "common/cancel.hpp"
#include "dft/model.hpp"
#include "ioimc/bisimulation.hpp"
#include "ioimc/model.hpp"

/// \file engine.hpp
/// Steps 2-5 of the paper's conversion/analysis algorithm: repeatedly pick
/// two I/O-IMC of the community, parallel-compose them, hide the output
/// signals that are no longer synchronized on, and aggregate with weak
/// bisimulation, until a single model remains.

namespace imcdft::analysis {

/// Order in which the community is folded.
enum class CompositionStrategy {
  /// Compose the models of each independent DFT module first (the paper's
  /// Section 5.2 modular analysis); greedy within each module.
  Modular,
  /// Repeatedly compose the cheapest synchronizing pair.
  Greedy,
  /// Fold the community left to right as converted.
  Declaration,
};

struct EngineOptions {
  CompositionStrategy strategy = CompositionStrategy::Modular;
  /// Aggregate after every composition step (turning this off reproduces
  /// the state-space blow-up the paper warns about).
  bool aggregateEachStep = true;
  /// Merge states whose whole future is unobservable (see
  /// ioimc::collapseUnobservableSinks); measure-preserving.
  bool collapseSinks = true;
  /// Worker threads for the Modular strategy's per-module aggregation
  /// (independent modules share no mutable state, so their
  /// compose/hide/aggregate chains run concurrently).  0 means
  /// std::thread::hardware_concurrency(); 1 runs everything on the calling
  /// thread.  Results are bitwise identical for every thread count: each
  /// module task is a pure function of its inputs and the results are
  /// folded in a fixed order.
  unsigned numThreads = 0;
  /// Symmetry reduction (Modular strategy only): bucket independent modules
  /// by their rename-invariant shape (dft::moduleShape), aggregate exactly
  /// one representative per bucket, and instantiate the isomorphic siblings
  /// with ioimc::renameActions under the recorded name substitution — the
  /// paper's Section 5.2 manual reuse of the CAS motor/pump unit, automated.
  /// Symmetric trees then cost O(shapes) aggregations instead of
  /// O(modules).  Reuse only happens when the induced ActionId map is
  /// strictly order-preserving and the module structures correspond
  /// exactly, which makes every measure *bitwise identical* to the
  /// symmetry-off run; any check failure falls back to aggregating the
  /// module normally (see analysis/symmetry.hpp).
  bool symmetry = true;
  /// Static-layer numeric combination (Analyzer pipeline, Modular strategy
  /// only): when the top of the tree is a static combination layer over
  /// independent modules (dft::detectStaticLayer), solve each module's
  /// unreliability numerically on its own absorbing CTMC and evaluate the
  /// layer's structure function over the per-time probabilities with a BDD
  /// instead of composing the joint unfired product — linear in the number
  /// of modules where composition is exponential (see
  /// analysis/static_combine.hpp).  Falls back to full composition, with a
  /// diagnostic, whenever eligibility cannot be proven or a module turns
  /// out nondeterministic.  Exact up to CTMC transient tolerances; the E14
  /// bench enforces 1e-9-relative agreement with the composition path.
  bool staticCombine = true;
  /// Fused compose-and-minimize (ioimc::otf::otfComposeAggregate): every
  /// per-step compose/hide/collapse/aggregate chain explores the
  /// synchronized product frontier-by-frontier and collapses product
  /// states into weak-bisimulation classes *while exploration is still
  /// running*, so the peak memory of a composition step scales with the
  /// running quotient instead of the full reachable product.  The fused
  /// result is canonically renumbered and re-verified as a fixpoint of the
  /// ordinary refinement; measures are bit-identical to the classic path
  /// (the E15 bench enforces this).  Any invariant failure falls back to
  /// the classic chain for that step — never a wrong answer — and is
  /// counted in CompositionStats::onTheFlyFallbacks (the Analyzer attaches
  /// a Diagnostic).  Only applies when aggregateEachStep is on.
  bool onTheFly = true;
  /// Safety valve for the fused engine: a step whose live region exceeds
  /// this many states falls back to the classic chain.  0 = unlimited.
  std::size_t onTheFlyMaxVisited = 0;
  /// Base refinement cadence of the fused engine
  /// (ioimc::otf::OtfOptions::refineCadence): a partial refinement runs
  /// when the live region grew by this factor since the last pass, and the
  /// engine backs the working cadence off after unproductive passes.  2.0
  /// reproduces the old fixed-doubling trigger points while yields last.
  /// Never changes result bytes — only peak live states vs wall time — but
  /// it does change reported stats, so it IS part of the semantic cache
  /// key.  Values below 1 are clamped to 1.
  double otfRefineCadence = 2.0;
  /// Parallelize the per-iteration signature encoding *inside* each fused
  /// composition step (hardware concurrency; off = fully sequential
  /// refinement).  One worker pool is shared across the steps of a merge.
  /// Bitwise identical on or off — encoding is block-parallel, interning
  /// stays sequential in state order — and therefore deliberately NOT part
  /// of the semantic cache key.
  bool otfIntraStepParallel = true;
  /// Test/bench hook: treat every confirmed deferred-fixpoint verification
  /// as if it had produced a correction, forcing the pipeline rollback
  /// path to execute with byte-identical inputs.  Results are unchanged;
  /// CompositionStats::otfPipelineRollbacks counts the forced rollbacks.
  /// Changes stats, so it IS part of the semantic cache key.
  bool otfPipelineDrill = false;
  /// Directory of the persistent quotient store (store/quotient_store.hpp).
  /// Empty disables persistence.  The Analyzer reads aggregated module and
  /// whole-tree quotients plus solved curves from it before aggregating,
  /// and publishes fresh results back; a fleet of processes pointed at one
  /// directory shares a warm cache across restarts.  Deliberately NOT part
  /// of the semantic cache key (optionsKey): store hits are bitwise
  /// identical to cold aggregation, so the same analysis keyed with and
  /// without a store must share cache entries.
  std::string storeDir;
  /// Cooperative cancellation / resource budget (common/cancel.hpp).  The
  /// engine checkpoints the token once per merge step and hands it to
  /// every hot loop below it (compose expansion, refinement iterations,
  /// the on-the-fly frontier); an exhausted budget unwinds the whole
  /// composition with BudgetExceeded.  Deliberately NOT part of the
  /// semantic cache key (optionsKey): a budget never changes a result,
  /// only whether it is produced.  The Analyzer builds the token from
  /// AnalysisRequest::budget and mirrors it into weak.cancel; direct
  /// engine callers who set one should do the same.
  std::shared_ptr<CancelToken> cancel;
  ioimc::WeakOptions weak;
};

/// Records of one compose/hide/aggregate step.
struct CompositionStep {
  std::string name;                 ///< "left || right" of the composed pair
  std::size_t leftStates = 0;       ///< operand sizes going in
  std::size_t rightStates = 0;
  /// Largest intermediate of the step: the full product size on the
  /// classic path, the peak *live* region when the step ran fused
  /// (onTheFly) — both are the step's peak-memory proxy.
  std::size_t composedStates = 0;
  std::size_t composedTransitions = 0;
  std::size_t aggregatedStates = 0; ///< size after hide/collapse/aggregate
  std::size_t aggregatedTransitions = 0;
  /// The step ran through the fused compose-and-minimize engine.
  bool onTheFly = false;
  /// The fused engine was attempted but hit an invariant failure; the step
  /// was served by the classic chain instead (reason below).
  bool onTheFlyFallback = false;
  std::string onTheFlyFallbackReason;
  /// Fused-step detail (all zero on classic steps): partial refinement
  /// passes run, passes the adaptive cadence deferred relative to the old
  /// fixed-doubling policy, and the intra-step encoding pool size (0 =
  /// the refinement never went parallel).
  std::size_t otfRefinePassesRun = 0;
  std::size_t otfRefinePassesSkipped = 0;
  unsigned otfIntraWorkers = 0;
  /// The step's fixpoint verification was deferred and overlapped with the
  /// next step's exploration; otfPipelineRollback marks the rare case
  /// where the verification amended the optimistic result and the
  /// overlapped work was redone (final bytes are identical either way).
  bool otfPipelined = false;
  bool otfPipelineRollback = false;
  /// Wall-time breakdown of the fused step (see ioimc::otf::OtfStats).
  double otfExpandSeconds = 0.0;
  double otfRefineSeconds = 0.0;
  double otfCollapseSeconds = 0.0;
  double otfRenumberSeconds = 0.0;
};

/// Aggregated I/O-IMC of one completed independent module.  Modules that
/// were spliced from a cache or instantiated by symmetry renaming appear
/// here too, under their own name with the reused model's sizes.
struct ModuleResult {
  std::string name;        ///< module root element's name
  std::size_t states = 0;  ///< aggregated module model size
  std::size_t transitions = 0;
};

struct CompositionStats {
  std::vector<CompositionStep> steps;
  std::vector<ModuleResult> modules;
  /// Modules spliced in from a ModuleCache instead of being composed.
  std::size_t cachedModules = 0;
  /// Compose/hide/aggregate steps those splices avoided (as recorded when
  /// the cached model was originally built).
  std::size_t stepsSaved = 0;
  /// Symmetry reduction (EngineOptions::symmetry): shape buckets that held
  /// at least two isomorphic modules in this run.
  std::size_t symmetricBuckets = 0;
  /// Sibling module aggregations skipped by instantiating the bucket
  /// representative's aggregated model under an action renaming.
  std::size_t symmetricModulesReused = 0;
  /// Compose/hide/aggregate steps those instantiations avoided (the
  /// representative's subtree step count, once per reused sibling).
  std::size_t symmetrySavedSteps = 0;
  /// Size of the biggest intermediate any composition step materialized
  /// (full product on the classic path, peak live region on fused steps).
  std::size_t peakComposedStates = 0;
  std::size_t peakComposedTransitions = 0;
  /// Size of the biggest model after aggregation.
  std::size_t peakAggregatedStates = 0;
  std::size_t peakAggregatedTransitions = 0;
  /// Fused compose-and-minimize (EngineOptions::onTheFly): steps served by
  /// the fused engine, and steps that fell back to the classic chain.
  std::size_t onTheFlySteps = 0;
  std::size_t onTheFlyFallbacks = 0;
  /// Peak states the fused steps never materialized, summed against the
  /// |left| x |right| materialization bound of each fused step (the exact
  /// reachable-product size is only known when the classic path runs; the
  /// E15 bench measures that comparison directly).
  std::size_t onTheFlySavedPeakStates = 0;
  /// Partial refinement passes across all fused steps: run, and deferred
  /// by the adaptive cadence relative to the old fixed-doubling policy.
  std::size_t otfRefinePassesRun = 0;
  std::size_t otfRefinePassesSkipped = 0;
  /// Largest intra-step encoding pool any fused step used (0 = the
  /// refinement never went parallel anywhere).
  unsigned otfIntraWorkers = 0;
  /// Fused steps whose fixpoint verification overlapped the next step's
  /// exploration, and how many of those verifications amended the
  /// optimistic result (forcing the overlapped work to be redone).
  std::size_t otfPipelinedSteps = 0;
  std::size_t otfPipelineRollbacks = 0;
  /// Distinct fallback reasons seen (deduplicated, capped; Diagnostics).
  std::vector<std::string> onTheFlyFallbackReasons;

  /// Appends \p reason to onTheFlyFallbackReasons unless it is already
  /// recorded or the cap (8 distinct reasons) is reached — the one policy
  /// for both the engine's per-step folding and the Analyzer's
  /// per-module stat merging.
  void noteOnTheFlyFallbackReason(const std::string& reason);
};

struct EngineResult {
  ioimc::IOIMC model;  ///< single remaining I/O-IMC, all outputs hidden
  CompositionStats stats;
};

/// A reusable aggregated module model, as exchanged with a ModuleCache.
struct CachedModule {
  ioimc::IOIMC model;
  /// Compose/hide/aggregate steps it originally took to build the model
  /// (what a cache hit saves).
  std::size_t steps = 0;
};

/// Cache consulted by the Modular strategy for whole independent modules.
/// lookup() is called before a module subtree is composed; a hit splices
/// the cached aggregated I/O-IMC into the community and skips the subtree
/// entirely.  store() offers every freshly aggregated proper module.  The
/// implementation decides cacheability and keying (see
/// analysis/analyzer.hpp for the session implementation; it keys on the
/// module's canonical sub-tree hash and rejects modules whose activation
/// depends on context outside the module).
///
/// Thread safety: lookup() is only invoked from the engine's calling
/// thread, but store() is invoked from worker threads when
/// EngineOptions::numThreads enables parallel module aggregation —
/// implementations must synchronize store() against itself and lookup().
class ModuleCache {
 public:
  virtual ~ModuleCache() = default;
  virtual std::optional<CachedModule> lookup(const dft::Dft& dft,
                                             dft::ElementId root) = 0;
  virtual void store(const dft::Dft& dft, dft::ElementId root,
                     const ioimc::IOIMC& model, std::size_t steps) = 0;
};

/// Folds the community into a single aggregated I/O-IMC.  \p dft is used by
/// the Modular strategy to group models by independent module.  \p cache,
/// when non-null, lets the Modular strategy reuse previously aggregated
/// module models across invocations (other strategies ignore it).
EngineResult composeCommunity(Community community, const dft::Dft& dft,
                              const EngineOptions& opts = {},
                              ModuleCache* cache = nullptr);

}  // namespace imcdft::analysis
