#include "analysis/converter.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "semantics/elements.hpp"
#include "semantics/signals.hpp"
#include "semantics/spare_gate.hpp"

namespace imcdft::analysis {

using dft::Dft;
using dft::Element;
using dft::ElementId;
using dft::ElementType;

namespace {

using semantics::activationSignal;
using semantics::claimSignal;
using semantics::firingSignal;
using semantics::isolatedFiringSignal;
using semantics::repairSignal;

bool isSpareLike(const Element& e) {
  return e.type == ElementType::Spare || e.type == ElementType::Seq;
}

/// Structural descendants of \p root following gate inputs only (no FDEP /
/// sharing edges); this is the subtree activation flows through.
std::vector<ElementId> structuralSubtree(const Dft& dft, ElementId root) {
  std::vector<bool> seen(dft.size(), false);
  std::vector<ElementId> out, stack{root};
  seen[root] = true;
  while (!stack.empty()) {
    ElementId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    for (ElementId in : dft.element(id).inputs)
      if (!seen[in]) {
        seen[in] = true;
        stack.push_back(in);
      }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// True when \p id sits in a primary/spare slot of some spare or seq gate.
bool isSlotElement(const Dft& dft, ElementId id) {
  return dft.primaryUser(id).has_value() || !dft.spareUsers(id).empty();
}

}  // namespace

void checkConvertible(const Dft& dft) {
  const bool repairable = dft.isRepairable();
  for (ElementId id = 0; id < dft.size(); ++id) {
    const Element& e = dft.element(id);
    if (repairable && e.type != ElementType::BasicEvent &&
        e.type != ElementType::And && e.type != ElementType::Or &&
        e.type != ElementType::Voting) {
      throw UnsupportedError(
          "repairable trees support only AND/OR/K-M gates (the paper does "
          "not define repairable dynamic gates); offending element: '" +
          e.name + "'");
    }
    // Duplicate inputs break the single-firing discipline of the gates.
    std::vector<ElementId> ins = e.inputs;
    std::sort(ins.begin(), ins.end());
    require(std::adjacent_find(ins.begin(), ins.end()) == ins.end(),
            "gate '" + e.name + "' lists the same input twice");

    // FDEP dependents cannot also be inhibited (auxiliary stacking is
    // undefined in the paper).
    if (!dft.fdepsTargeting(id).empty())
      require(dft.inhibitorsOf(id).empty(),
              "element '" + e.name +
                  "' is both FDEP-dependent and inhibited; this combination "
                  "is not defined");

    if (isSpareLike(e)) {
      // Primary used by exactly one gate; nothing is both primary and spare.
      ElementId primary = e.inputs.front();
      require(dft.spareUsers(primary).empty(),
              "element '" + dft.element(primary).name +
                  "' is used both as a primary and as a spare");
      std::size_t primaryUses = 0;
      for (ElementId p : dft.parents(primary))
        if (isSpareLike(dft.element(p)) &&
            dft.element(p).inputs.front() == primary)
          ++primaryUses;
      require(primaryUses == 1, "element '" + dft.element(primary).name +
                                    "' is the primary of several spare gates");
    }
  }
  if (repairable && !dft.inhibitions().empty())
    throw UnsupportedError("repairable trees do not support inhibitions");

  // Slot subtrees must be structurally independent: every element below a
  // primary/spare slot may only be input to gates inside the same subtree
  // (FDEPs may still *target* inside elements: that is failure semantics,
  // not activation).  This is the paper's Section 6.1 independence
  // requirement, generalized.
  for (ElementId id = 0; id < dft.size(); ++id) {
    if (!isSlotElement(dft, id)) continue;
    std::vector<ElementId> subtree = structuralSubtree(dft, id);
    for (ElementId member : subtree) {
      if (member == id) continue;
      for (ElementId p : dft.parents(member)) {
        if (dft.element(p).type == ElementType::Fdep) continue;
        require(std::binary_search(subtree.begin(), subtree.end(), p),
                "element '" + dft.element(member).name +
                    "' inside spare module '" + dft.element(id).name +
                    "' is referenced from outside the module");
      }
    }
  }
}

std::vector<ActivationContext> activationContexts(const Dft& dft) {
  std::vector<ActivationContext> ctx(dft.size());

  // Parent-first order: gates before their inputs.
  std::vector<ElementId> order = dft.topologicalOrder();
  std::reverse(order.begin(), order.end());

  for (ElementId id : order) {
    const Element& e = dft.element(id);
    ActivationContext c;

    if (auto gate = dft.primaryUser(id)) {
      // Primary slot: activated by its gate when the gate becomes active.
      // An always-active gate activates its primary at time zero, so the
      // primary is simply always active.
      const ActivationContext& gateCtx = ctx[*gate];
      if (gateCtx.alwaysActive) {
        c.alwaysActive = true;
      } else {
        c.alwaysActive = false;
        c.signal = claimSignal(e.name, dft.element(*gate).name);
      }
    } else if (std::vector<ElementId> users = dft.spareUsers(id);
               !users.empty()) {
      // Spare slot: activated when some gate claims it.  With several
      // sharers the activation auxiliary merges the claim signals.
      c.alwaysActive = false;
      c.signal = users.size() == 1
                     ? claimSignal(e.name, dft.element(users.front()).name)
                     : activationSignal(e.name);
    } else {
      // Inherit from the structural parents (FDEPs do not activate).
      bool first = true;
      bool haveParent = false;
      for (ElementId p : dft.parents(id)) {
        if (dft.element(p).type == ElementType::Fdep) continue;
        haveParent = true;
        const ActivationContext& pc = ctx[p];
        if (first) {
          c = pc;
          first = false;
        } else {
          require(c.alwaysActive == pc.alwaysActive && c.signal == pc.signal,
                  "element '" + e.name +
                      "' inherits conflicting activation contexts");
        }
      }
      if (!haveParent) c.alwaysActive = true;  // top or FDEP-only references
    }
    ctx[id] = c;
  }
  return ctx;
}

Community convertDft(const Dft& dft, const ConversionOptions& opts) {
  checkConvertible(dft);
  Community community;
  community.symbols = opts.symbols ? opts.symbols : makeSymbolTable();
  community.repairable = dft.isRepairable();
  community.contexts = activationContexts(dft);
  const auto& ctx = community.contexts;
  ioimc::SymbolTablePtr symbols = community.symbols;

  // Canonical firing signal of each element, and whether it is wrapped by a
  // firing or inhibition auxiliary.
  auto isWrapped = [&](ElementId id) {
    return !dft.fdepsTargeting(id).empty() || !dft.inhibitorsOf(id).empty();
  };
  auto ownOutput = [&](ElementId id) {
    const std::string& name = dft.element(id).name;
    return isWrapped(id) ? isolatedFiringSignal(name) : firingSignal(name);
  };
  auto activationInput = [&](ElementId id) -> std::optional<std::string> {
    if (ctx[id].alwaysActive) return std::nullopt;
    return ctx[id].signal;
  };
  auto isRepairableElement = [&](ElementId id) {
    const Element& e = dft.element(id);
    if (e.isBasicEvent()) return e.be.repairRate.has_value();
    return community.repairable;  // all gates of a repairable tree repair
  };

  auto addModel = [&](ioimc::IOIMC model, std::vector<ElementId> elements) {
    community.models.push_back({std::move(model), std::move(elements)});
  };

  for (ElementId id = 0; id < dft.size(); ++id) {
    const Element& e = dft.element(id);
    switch (e.type) {
      case ElementType::BasicEvent: {
        if (e.be.repairRate) {
          addModel(semantics::repairableBasicEvent(
                       symbols, e.name, e.be.lambda, *e.be.repairRate,
                       e.be.dormancy, activationInput(id), ownOutput(id),
                       repairSignal(e.name), e.be.phases),
                   {id});
        } else {
          addModel(semantics::basicEvent(symbols, e.name, e.be.lambda,
                                         e.be.dormancy, activationInput(id),
                                         ownOutput(id), e.be.phases),
                   {id});
        }
        break;
      }
      case ElementType::And:
      case ElementType::Or:
      case ElementType::Voting: {
        const std::uint32_t n = static_cast<std::uint32_t>(e.inputs.size());
        const std::uint32_t k = e.type == ElementType::And ? n
                                : e.type == ElementType::Or
                                    ? 1
                                    : e.votingThreshold;
        if (community.repairable) {
          std::vector<semantics::RepairableInput> ins;
          for (ElementId in : e.inputs) {
            semantics::RepairableInput ri;
            ri.firingInput = firingSignal(dft.element(in).name);
            if (isRepairableElement(in))
              ri.repairInput = repairSignal(dft.element(in).name);
            ins.push_back(std::move(ri));
          }
          addModel(semantics::repairableThresholdGate(
                       symbols, e.name, {k}, ins, ownOutput(id),
                       repairSignal(e.name)),
                   {id});
        } else {
          std::vector<std::string> ins;
          for (ElementId in : e.inputs)
            ins.push_back(firingSignal(dft.element(in).name));
          ioimc::IOIMC gate =
              opts.subsetGates
                  ? semantics::subsetGate(symbols, e.name, {k}, ins,
                                          ownOutput(id))
                  : semantics::countingGate(symbols, e.name, {k}, ins,
                                            ownOutput(id));
          addModel(std::move(gate), {id});
        }
        break;
      }
      case ElementType::Pand: {
        std::vector<std::string> ins;
        for (ElementId in : e.inputs)
          ins.push_back(firingSignal(dft.element(in).name));
        addModel(semantics::pandGate(symbols, e.name, ins, ownOutput(id)),
                 {id});
        break;
      }
      case ElementType::Spare:
      case ElementType::Seq: {
        semantics::SpareGateSpec spec;
        spec.name = e.name;
        spec.firingOutput = ownOutput(id);
        spec.activationInput = activationInput(id);
        ElementId primary = e.inputs.front();
        spec.primaryFiringInput = firingSignal(dft.element(primary).name);
        if (!ctx[primary].alwaysActive)
          spec.primaryActivationOutput =
              claimSignal(dft.element(primary).name, e.name);
        std::vector<ElementId> involved{id};
        for (std::size_t i = 1; i < e.inputs.size(); ++i) {
          ElementId spare = e.inputs[i];
          semantics::SpareSlot slot;
          slot.firingInput = firingSignal(dft.element(spare).name);
          slot.claimOutput = claimSignal(dft.element(spare).name, e.name);
          for (ElementId user : dft.spareUsers(spare)) {
            if (user == id) continue;
            slot.otherClaimInputs.push_back(
                claimSignal(dft.element(spare).name, dft.element(user).name));
            involved.push_back(user);
          }
          spec.spares.push_back(std::move(slot));
        }
        addModel(semantics::spareGate(symbols, spec), std::move(involved));
        break;
      }
      case ElementType::Fdep:
        // FDEP gates have no model of their own; the firing auxiliaries of
        // their dependents (below) carry the semantics.
        break;
    }

    // Firing auxiliary for FDEP dependents (Fig. 5).
    const std::vector<ElementId> fdeps = dft.fdepsTargeting(id);
    if (!fdeps.empty()) {
      std::vector<std::string> ins{isolatedFiringSignal(e.name)};
      std::vector<ElementId> involved{id};
      for (ElementId f : fdeps) {
        ElementId trigger = dft.element(f).inputs.front();
        ins.push_back(firingSignal(dft.element(trigger).name));
        involved.push_back(f);
        involved.push_back(trigger);
      }
      addModel(semantics::orAuxiliary(symbols, "FA_" + e.name, ins,
                                      firingSignal(e.name)),
               std::move(involved));
    }

    // Inhibition auxiliary (Fig. 12).
    const std::vector<ElementId> inhibitors = dft.inhibitorsOf(id);
    if (!inhibitors.empty()) {
      std::vector<std::string> inhIns;
      std::vector<ElementId> involved{id};
      for (ElementId a : inhibitors) {
        inhIns.push_back(firingSignal(dft.element(a).name));
        involved.push_back(a);
      }
      addModel(semantics::inhibitionAuxiliary(symbols, "IA_" + e.name,
                                              isolatedFiringSignal(e.name),
                                              inhIns, firingSignal(e.name)),
               std::move(involved));
    }

    // Activation auxiliary for spares shared by several gates.
    const std::vector<ElementId> users = dft.spareUsers(id);
    if (users.size() > 1) {
      std::vector<std::string> claims;
      std::vector<ElementId> involved{id};
      for (ElementId user : users) {
        claims.push_back(claimSignal(e.name, dft.element(user).name));
        involved.push_back(user);
      }
      addModel(semantics::orAuxiliary(symbols, "AA_" + e.name, claims,
                                      activationSignal(e.name)),
               std::move(involved));
    }
  }

  // Top-event monitor; its "down" label is what every measure observes.
  community.topFiringSignal = firingSignal(dft.element(dft.top()).name);
  std::optional<std::string> repairIn;
  if (community.repairable && isRepairableElement(dft.top()))
    repairIn = repairSignal(dft.element(dft.top()).name);
  addModel(semantics::monitor(symbols, community.topFiringSignal, repairIn),
           {dft.top()});
  return community;
}

}  // namespace imcdft::analysis
