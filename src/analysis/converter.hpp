#pragma once

#include <string>
#include <vector>

#include "dft/model.hpp"
#include "ioimc/model.hpp"

/// \file converter.hpp
/// Step 1 of the paper's conversion/analysis algorithm (Section 5): map
/// each DFT element to its elementary I/O-IMC and match all inputs and
/// outputs.  The result is the *community* of I/O-IMC, including the
/// auxiliary models (firing auxiliaries for FDEP dependents, activation
/// auxiliaries for shared spares, inhibition auxiliaries) and a top-event
/// monitor whose "down" label survives aggregation.

namespace imcdft::analysis {

struct ConversionOptions {
  /// Use the subset-tracking AND/OR/K-M gates instead of the counting ones
  /// (ablation; exponentially larger elementary models).
  bool subsetGates = false;
  /// Symbol table to intern action names in.  When null a fresh table is
  /// created per conversion.  The Analyzer session passes its own table so
  /// models cached from one request can be composed with communities
  /// converted for later requests (composition requires a shared table).
  ioimc::SymbolTablePtr symbols;
};

/// How an element gets activated (Section 4/6 of the paper).
struct ActivationContext {
  bool alwaysActive = true;
  std::string signal;  ///< activation input when not always active
};

/// One member of the community.
struct CommunityModel {
  ioimc::IOIMC model;
  /// DFT elements this model involves, used by the modular composition
  /// strategy to group models by independent module.
  std::vector<dft::ElementId> elements;
};

struct Community {
  ioimc::SymbolTablePtr symbols;
  std::vector<CommunityModel> models;
  std::string topFiringSignal;
  bool repairable = false;
  /// Per-element activation context (diagnostics and the DIFTree baseline
  /// reuse this).
  std::vector<ActivationContext> contexts;
};

/// Computes each element's activation context; exposed separately because
/// the DIFTree baseline needs the same information.  Throws ModelError on
/// activation conflicts (an element shared between differently-activated
/// spare modules).
std::vector<ActivationContext> activationContexts(const dft::Dft& dft);

/// Validates that the tree only uses combinations this framework defines
/// (e.g. repairable trees must be static; FDEP-dependents cannot also be
/// inhibited) and throws UnsupportedError / ModelError otherwise.
void checkConvertible(const dft::Dft& dft);

/// Builds the community.  Throws on unsupported trees (see
/// checkConvertible).
Community convertDft(const dft::Dft& dft, const ConversionOptions& opts = {});

}  // namespace imcdft::analysis
