#include "analysis/measures.hpp"

#include "common/error.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "ioimc/bisimulation.hpp"
#include "ioimc/ops.hpp"

namespace imcdft::analysis {

DftAnalysis analyzeDft(const dft::Dft& dft, const AnalysisOptions& opts) {
  Community community = convertDft(dft, opts.conversion);
  const bool repairable = community.repairable;
  EngineResult engine = composeCommunity(std::move(community), dft, opts.engine);

  // Absorb failure states, re-aggregate (usually shrinks further), extract.
  ioimc::IOIMC absorbedModel =
      ioimc::makeLabelAbsorbing(engine.model, kDownLabel);
  absorbedModel = ioimc::aggregate(absorbedModel, opts.engine.weak);
  Extraction absorbed = extract(absorbedModel, kDownLabel);

  DftAnalysis analysis{std::move(engine.model), std::move(engine.stats),
                       std::move(absorbed), false, repairable};
  analysis.nondeterministic = !analysis.absorbed.deterministic;
  return analysis;
}

double unreliability(const DftAnalysis& analysis, double missionTime) {
  require(!analysis.nondeterministic,
          "unreliability: the model is nondeterministic (FDEP simultaneity, "
          "Section 4.4); use unreliabilityBounds()");
  return ctmc::probabilityOfLabelAt(analysis.absorbed.chain, kDownLabel,
                                    missionTime);
}

std::vector<double> unreliabilityCurve(const DftAnalysis& analysis,
                                       const std::vector<double>& times) {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(unreliability(analysis, t));
  return out;
}

ctmdp::ReachabilityBounds unreliabilityBounds(const DftAnalysis& analysis,
                                              double missionTime) {
  return ctmdp::reachabilityBounds(analysis.absorbed.mdp, missionTime);
}

namespace {

/// Extraction of the *non-absorbed* model: needed for unavailability,
/// where the system leaves the down states again after repair.
Extraction extractFull(const DftAnalysis& analysis) {
  Extraction full = extract(analysis.closedModel, kDownLabel);
  require(full.deterministic,
          "unavailability: the model is nondeterministic; no scheduler-free "
          "answer exists");
  return full;
}

}  // namespace

double unavailability(const DftAnalysis& analysis, double t) {
  Extraction full = extractFull(analysis);
  return ctmc::probabilityOfLabelAt(full.chain, kDownLabel, t);
}

double steadyStateUnavailability(const DftAnalysis& analysis) {
  require(analysis.repairable,
          "steadyStateUnavailability: the tree is not repairable; the limit "
          "is trivially the probability of eventual failure");
  Extraction full = extractFull(analysis);
  return ctmc::steadyStateLabelProbability(full.chain, kDownLabel);
}

}  // namespace imcdft::analysis
