#include "analysis/measures.hpp"

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"

namespace imcdft::analysis {

DftAnalysis analyzeDft(const dft::Dft& dft, const AnalysisOptions& opts) {
  // One-shot session: no caching, same pipeline as Analyzer::analyze.
  AnalyzerOptions sessionOpts;
  sessionOpts.cacheTrees = false;
  sessionOpts.cacheModules = false;
  Analyzer session(sessionOpts);
  AnalysisReport report =
      session.analyze(AnalysisRequest::forDft(dft).withOptions(opts));
  return *report.analysis;
}

double unreliability(const DftAnalysis& analysis, double missionTime) {
  require(!analysis.nondeterministic,
          "unreliability: the model is nondeterministic (FDEP simultaneity, "
          "Section 4.4); use unreliabilityBounds()");
  return ctmc::probabilityOfLabelAt(analysis.absorbed.chain, kDownLabel,
                                    missionTime);
}

std::vector<double> unreliabilityCurve(const DftAnalysis& analysis,
                                       const std::vector<double>& times) {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(unreliability(analysis, t));
  return out;
}

ctmdp::ReachabilityBounds unreliabilityBounds(const DftAnalysis& analysis,
                                              double missionTime) {
  return ctmdp::reachabilityBounds(analysis.absorbed.mdp, missionTime);
}

const Extraction& fullExtraction(const DftAnalysis& analysis) {
  if (!analysis.fullMemo) {
    Extraction full = extract(analysis.closedModel, kDownLabel);
    require(full.deterministic,
            "unavailability: the model is nondeterministic; no "
            "scheduler-free answer exists");
    analysis.fullMemo = std::move(full);
  }
  return *analysis.fullMemo;
}

double unavailability(const DftAnalysis& analysis, double t) {
  return ctmc::probabilityOfLabelAt(fullExtraction(analysis).chain, kDownLabel,
                                    t);
}

double steadyStateUnavailability(const DftAnalysis& analysis) {
  require(analysis.repairable,
          "steadyStateUnavailability: the tree is not repairable; the limit "
          "is trivially the probability of eventual failure");
  return ctmc::steadyStateLabelProbability(fullExtraction(analysis).chain,
                                           kDownLabel);
}

}  // namespace imcdft::analysis
