#include "analysis/measures.hpp"

#include <memory>
#include <utility>

#include "analysis/analyzer.hpp"
#include "analysis/static_combine.hpp"
#include "common/error.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"

namespace imcdft::analysis {

DftAnalysis analyzeDft(const dft::Dft& dft, const AnalysisOptions& opts) {
  // One-shot session: no caching, same pipeline as Analyzer::analyze.
  AnalyzerOptions sessionOpts;
  sessionOpts.cacheTrees = false;
  sessionOpts.cacheModules = false;
  Analyzer session(sessionOpts);
  AnalysisReport report =
      session.analyze(AnalysisRequest::forDft(dft).withOptions(opts));
  return *report.analysis;
}

double unreliability(const DftAnalysis& analysis, double missionTime) {
  if (analysis.staticCombo)
    return analysis.staticCombo->unreliabilityCurve({missionTime}).front();
  require(!analysis.nondeterministic,
          "unreliability: the model is nondeterministic (FDEP simultaneity, "
          "Section 4.4); use unreliabilityBounds()");
  return ctmc::probabilityOfLabelAt(analysis.absorbed.chain, kDownLabel,
                                    missionTime);
}

std::vector<double> unreliabilityCurve(const DftAnalysis& analysis,
                                       const std::vector<double>& times,
                                       const ctmc::TransientOptions& transient) {
  if (analysis.staticCombo) {
    // The numeric path solves its module curves under its own (tighter)
    // tolerances; only the cancellation token is forwarded.
    return analysis.staticCombo->evaluate(
        times, [&](std::size_t index, const std::vector<double>& ts) {
          return analysis.staticCombo->solveCurve(index, ts, transient.cancel);
        });
  }
  require(!analysis.nondeterministic,
          "unreliability: the model is nondeterministic (FDEP simultaneity, "
          "Section 4.4); use unreliabilityBounds()");
  // One shared uniformization sweep for the whole grid (each point is
  // bitwise identical to a per-point unreliability() call).
  return ctmc::labelCurve(analysis.absorbed.chain, kDownLabel, times,
                          transient);
}

ctmdp::ReachabilityBounds unreliabilityBounds(const DftAnalysis& analysis,
                                              double missionTime) {
  if (analysis.staticCombo) {
    // The numeric path only exists when every module is deterministic; the
    // scheduler bounds collapse onto the point value.
    const double v = unreliability(analysis, missionTime);
    return {v, v};
  }
  return ctmdp::reachabilityBounds(analysis.absorbed.mdp, missionTime);
}

const Extraction& fullExtraction(const DftAnalysis& analysis) {
  require(!analysis.staticCombo,
          "fullExtraction: not available under static combination (the "
          "joint model was never built); rerun with "
          "EngineOptions::staticCombine off");
  // Concurrent sessions share one DftAnalysis; the memo is installed with
  // a first-write-wins CAS.  Racing threads compute identical extractions
  // (the pipeline is deterministic), so whichever pointer lands is correct
  // and, being immutable afterwards, safe to return by reference.
  auto memo = std::atomic_load_explicit(&analysis.fullMemo,
                                        std::memory_order_acquire);
  if (!memo) {
    Extraction full = extract(analysis.closedModel, kDownLabel);
    require(full.deterministic,
            "unavailability: the model is nondeterministic; no "
            "scheduler-free answer exists");
    auto fresh = std::make_shared<const Extraction>(std::move(full));
    std::shared_ptr<const Extraction> expected;
    if (std::atomic_compare_exchange_strong(&analysis.fullMemo, &expected,
                                            fresh))
      memo = std::move(fresh);
    else
      memo = std::move(expected);
  }
  return *memo;
}

double unavailability(const DftAnalysis& analysis, double t,
                      const ctmc::TransientOptions& transient) {
  return ctmc::probabilityOfLabelAt(fullExtraction(analysis).chain, kDownLabel,
                                    t, transient);
}

double steadyStateUnavailability(const DftAnalysis& analysis) {
  require(analysis.repairable,
          "steadyStateUnavailability: the tree is not repairable; the limit "
          "is trivially the probability of eventual failure");
  return ctmc::steadyStateLabelProbability(fullExtraction(analysis).chain,
                                           kDownLabel);
}

}  // namespace imcdft::analysis
