#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "dft/model.hpp"
#include "dft/modules.hpp"
#include "diftree/modular.hpp"

/// \file static_combine.hpp
/// The static-layer numeric combination path (EngineOptions::staticCombine).
///
/// When dft::detectStaticLayer proves that the top of the tree is a static
/// combination layer — AND/OR/VOTING gates over stochastically independent,
/// always-active modules, with no dynamic coupling crossing the boundary —
/// the joint unfired product of the modules never has to be materialized.
/// Instead the Analyzer:
///
///  1. runs the ordinary compositional pipeline *per frontier module* (so
///     the worker pool, the symmetry reduction and the session module
///     cache all still apply inside each module), extracting one absorbing
///     CTMC per distinct module;
///  2. solves each CTMC's "down"-probability at every requested mission
///     time with one shared uniformization sweep (ctmc::labelCurve);
///  3. evaluates the layer's structure function over the per-time
///     probabilities with a BDD (diftree::StaticStructure — the DIFTree
///     static solver, generalized to per-time probability vectors).
///
/// This is the DIFTree shortcut of replacing a solved module by a pseudo
/// basic event under a static parent, lifted from constant probabilities
/// to whole unreliability curves: sound because the modules are
/// independent (disjoint closures, no cross edges) and failures are
/// monotone in an unrepairable tree, so "top failed by t" is exactly the
/// structure function of "module i failed by t".  Work becomes linear in
/// the number of modules where composition is exponential.
///
/// A StaticCombination is the cacheable result of steps 1 and 3: the
/// solved chains plus the compiled structure function.  It hangs off
/// DftAnalysis::staticCombo; the Analyzer evaluates time grids against it
/// (with a session curve cache keyed chain-fingerprint x grid), and the
/// free functions in measures.hpp evaluate it cache-less.

namespace imcdft {
class CancelToken;  // common/cancel.hpp
}

namespace imcdft::analysis {

/// One frontier module of a solved static combination.  Symmetric siblings
/// share a chain index ("one curve for free").
struct NumericModule {
  std::string name;       ///< module root element name in the original tree
  std::size_t chain = 0;  ///< index into chains()
  std::size_t states = 0;       ///< aggregated module model size
  std::size_t transitions = 0;
};

class StaticCombination {
 public:
  /// One distinct solved module: the per-module pipeline result (its
  /// absorbed extraction carries the CTMC the curves are computed on) plus
  /// the session fingerprint it was solved under (module shape or exact
  /// key, times the engine options — the curve-cache key prefix).
  struct SolvedChain {
    std::string key;
    std::shared_ptr<const DftAnalysis> analysis;
  };

  /// Compiles the layer's structure function over one pseudo basic event
  /// per frontier module.  \p modules must be aligned with
  /// \p layer.moduleRoots; every NumericModule::chain must index
  /// \p chains.
  StaticCombination(const dft::Dft& tree, const dft::StaticLayer& layer,
                    std::vector<SolvedChain> chains,
                    std::vector<NumericModule> modules);

  /// Curve supplier hook: returns the "down"-probability curve of
  /// chains()[index] over \p times.  The Analyzer passes a session-cached
  /// supplier; null falls back to solveCurve().
  using CurveFn = std::function<std::vector<double>(
      std::size_t index, const std::vector<double>& times)>;

  /// System unreliability at every time point: per-chain curves through
  /// \p curveFor, then one structure-function evaluation per time.
  std::vector<double> evaluate(const std::vector<double>& times,
                               const CurveFn& curveFor) const;

  /// Cache-less convenience (the deprecated free-function facade).
  std::vector<double> unreliabilityCurve(
      const std::vector<double>& times) const {
    return evaluate(times, nullptr);
  }

  /// Solves chains()[index]'s curve directly (one uniformization sweep).
  /// \p cancel, when set, is checkpointed once per uniformization step so a
  /// budgeted request unwinds mid-sweep (common/cancel.hpp; not owned).
  std::vector<double> solveCurve(std::size_t index,
                                 const std::vector<double>& times,
                                 const CancelToken* cancel = nullptr) const;

  const std::vector<SolvedChain>& chains() const { return chains_; }
  const std::vector<NumericModule>& modules() const { return modules_; }
  std::size_t layerGateCount() const { return layerGateCount_; }
  std::size_t bddNodes() const { return structure_.bddNodes(); }

  /// One-line description for diagnostics and --stats.
  std::string summary() const;

 private:
  StaticCombination(dft::Dft layerDft, std::size_t layerGateCount,
                    std::vector<SolvedChain> chains,
                    std::vector<NumericModule> modules);

  diftree::StaticStructure structure_;
  std::size_t layerSize_ = 0;       ///< element count of the layer mini-DFT
  std::size_t layerGateCount_ = 0;
  /// Mini-DFT basic-event id -> chain index, in basic-event order.
  std::vector<std::pair<dft::ElementId, std::size_t>> binding_;
  std::vector<SolvedChain> chains_;
  std::vector<NumericModule> modules_;
};

/// The layer as a standalone static DFT: one basic event per frontier
/// module root (names preserved) under copies of the layer gates.  This is
/// what StaticCombination compiles; exposed for tests.
dft::Dft buildLayerDft(const dft::Dft& dft, const dft::StaticLayer& layer);

}  // namespace imcdft::analysis
