#include "analysis/engine.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "dft/modules.hpp"
#include "ioimc/compose.hpp"
#include "ioimc/ops.hpp"

namespace imcdft::analysis {

using ioimc::IOIMC;

namespace {

/// Mutable pool of community members; slots become empty as pairs merge.
class Composer {
 public:
  Composer(Community community, const EngineOptions& opts)
      : opts_(opts) {
    for (CommunityModel& m : community.models)
      slots_.push_back(std::move(m.model));
  }

  std::size_t numSlots() const { return slots_.size(); }
  const IOIMC& slot(std::size_t i) const { return *slots_[i]; }
  bool alive(std::size_t i) const { return slots_[i].has_value(); }

  /// Hides the outputs of \p m that no other live model consumes, then
  /// aggregates.
  IOIMC hideAndAggregate(IOIMC m, std::size_t skipA, std::size_t skipB) {
    std::vector<ioimc::ActionId> hidden;
    for (ioimc::ActionId out : m.signature().outputs()) {
      bool used = false;
      for (std::size_t i = 0; i < slots_.size() && !used; ++i) {
        if (!slots_[i] || i == skipA || i == skipB) continue;
        used = slots_[i]->signature().isInput(out);
      }
      if (!used) hidden.push_back(out);
    }
    IOIMC result = ioimc::hide(m, hidden);
    if (opts_.collapseSinks) result = ioimc::collapseUnobservableSinks(result);
    if (opts_.aggregateEachStep) result = ioimc::aggregate(result, opts_.weak);
    return result;
  }

  /// Composes slots \p a and \p b; stores the result in a fresh slot whose
  /// index is returned.
  std::size_t composePair(std::size_t a, std::size_t b) {
    CompositionStep step;
    step.name = slots_[a]->name() + " || " + slots_[b]->name();
    step.leftStates = slots_[a]->numStates();
    step.rightStates = slots_[b]->numStates();
    IOIMC composed = ioimc::compose(*slots_[a], *slots_[b]);
    step.composedStates = composed.numStates();
    step.composedTransitions = composed.numTransitions();
    IOIMC result = hideAndAggregate(std::move(composed), a, b);
    step.aggregatedStates = result.numStates();
    step.aggregatedTransitions = result.numTransitions();

    stats_.peakComposedStates =
        std::max(stats_.peakComposedStates, step.composedStates);
    stats_.peakComposedTransitions =
        std::max(stats_.peakComposedTransitions, step.composedTransitions);
    stats_.peakAggregatedStates =
        std::max(stats_.peakAggregatedStates, step.aggregatedStates);
    stats_.peakAggregatedTransitions =
        std::max(stats_.peakAggregatedTransitions, step.aggregatedTransitions);
    stats_.steps.push_back(std::move(step));

    slots_[a].reset();
    slots_[b].reset();
    slots_.push_back(std::move(result));
    return slots_.size() - 1;
  }

  /// True when the two models share a synchronizing action.
  bool synchronize(std::size_t a, std::size_t b) const {
    const ioimc::Signature& sa = slots_[a]->signature();
    const ioimc::Signature& sb = slots_[b]->signature();
    auto anyShared = [](const std::vector<ioimc::ActionId>& xs,
                        const ioimc::Signature& other) {
      return std::any_of(xs.begin(), xs.end(), [&](ioimc::ActionId x) {
        return other.isInput(x) || other.isOutput(x);
      });
    };
    return anyShared(sa.outputs(), sb) || anyShared(sa.inputs(), sb);
  }

  /// Greedily merges the given live slots into one; returns its index.
  std::size_t mergePool(std::vector<std::size_t> pool) {
    require(!pool.empty(), "composeCommunity: empty module pool");
    while (pool.size() > 1) {
      // Cheapest synchronizing pair; fall back to cheapest pair overall.
      std::size_t bestI = 0, bestJ = 1;
      double bestCost = std::numeric_limits<double>::infinity();
      bool bestSync = false;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        for (std::size_t j = i + 1; j < pool.size(); ++j) {
          double cost = static_cast<double>(slots_[pool[i]]->numStates()) *
                        static_cast<double>(slots_[pool[j]]->numStates());
          bool sync = synchronize(pool[i], pool[j]);
          if ((sync && !bestSync) ||
              (sync == bestSync && cost < bestCost)) {
            bestI = i;
            bestJ = j;
            bestCost = cost;
            bestSync = sync;
          }
        }
      }
      std::size_t merged = composePair(pool[bestI], pool[bestJ]);
      pool.erase(pool.begin() + bestJ);
      pool.erase(pool.begin() + bestI);
      pool.push_back(merged);
    }
    return pool.front();
  }

  CompositionStats takeStats() { return std::move(stats_); }
  IOIMC takeModel(std::size_t idx) { return std::move(*slots_[idx]); }

  void recordModule(const std::string& name, std::size_t idx) {
    stats_.modules.push_back(
        {name, slots_[idx]->numStates(), slots_[idx]->numTransitions()});
  }

  /// Adds a model that was not part of the original community (a cached
  /// module spliced in by a ModuleCache hit); returns its slot index.
  std::size_t addSlot(IOIMC model) {
    slots_.push_back(std::move(model));
    return slots_.size() - 1;
  }

  /// Drops a model that will never be composed (its module was served from
  /// the cache), so it neither counts as a signal consumer in the hiding
  /// scan nor stays in memory.
  void releaseSlot(std::size_t i) { slots_[i].reset(); }

  std::size_t stepsSoFar() const { return stats_.steps.size(); }

  void noteCacheSplice(std::size_t stepsSaved) {
    ++stats_.cachedModules;
    stats_.stepsSaved += stepsSaved;
  }

 private:
  EngineOptions opts_;
  std::vector<std::optional<IOIMC>> slots_;
  CompositionStats stats_;
};

/// Node of the module containment tree used by the Modular strategy.
struct ModuleNode {
  std::string name;
  std::vector<std::size_t> ownModels;   // community model indices
  std::vector<std::size_t> childModules;  // indices into the node array
};

}  // namespace

EngineResult composeCommunity(Community community, const dft::Dft& dft,
                              const EngineOptions& opts, ModuleCache* cache) {
  require(!community.models.empty(), "composeCommunity: empty community");

  // Remember the element sets before handing the models to the composer.
  std::vector<std::vector<dft::ElementId>> modelElements;
  for (const CommunityModel& m : community.models)
    modelElements.push_back(m.elements);

  Composer composer(std::move(community), opts);
  std::size_t finalIdx = 0;

  if (opts.strategy != CompositionStrategy::Modular) {
    std::vector<std::size_t> pool(composer.numSlots());
    for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
    if (opts.strategy == CompositionStrategy::Declaration) {
      std::size_t acc = pool.front();
      for (std::size_t i = 1; i < pool.size(); ++i)
        acc = composer.composePair(acc, pool[i]);
      finalIdx = acc;
    } else {
      finalIdx = composer.mergePool(std::move(pool));
    }
  } else {
    // Build the module containment tree (modules sorted by size, so a
    // module's parent is the first later module that contains its root).
    std::vector<dft::ModuleInfo> modules = dft::independentModules(dft);
    std::vector<ModuleNode> nodes(modules.size());
    std::vector<int> parent(modules.size(), -1);
    for (std::size_t i = 0; i < modules.size(); ++i) {
      nodes[i].name = dft.element(modules[i].root).name;
      for (std::size_t j = i + 1; j < modules.size(); ++j) {
        if (std::binary_search(modules[j].members.begin(),
                               modules[j].members.end(), modules[i].root) &&
            modules[j].root != modules[i].root) {
          parent[i] = static_cast<int>(j);
          break;
        }
      }
      if (parent[i] >= 0)
        nodes[parent[i]].childModules.push_back(i);
    }
    // The root module (whole tree) is the largest one containing top.
    // Trees where an element below the top is also watched by a gate
    // outside the top's dependency closure have no independent module
    // around the top at all; fall back to plain greedy composition then.
    int rootNode = -1;
    for (std::size_t i = 0; i < modules.size(); ++i)
      if (parent[i] < 0 && std::binary_search(modules[i].members.begin(),
                                              modules[i].members.end(),
                                              dft.top()))
        rootNode = static_cast<int>(i);
    if (rootNode < 0) {
      std::vector<std::size_t> pool(composer.numSlots());
      for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
      finalIdx = composer.mergePool(std::move(pool));
      EngineResult fallback{composer.takeModel(finalIdx),
                            composer.takeStats()};
      fallback.model = ioimc::hideAllOutputs(fallback.model);
      if (opts.collapseSinks)
        fallback.model = ioimc::collapseUnobservableSinks(fallback.model);
      fallback.model = ioimc::aggregate(fallback.model, opts.weak);
      return fallback;
    }
    // Any other parentless module hangs off the root (conservative).
    for (std::size_t i = 0; i < modules.size(); ++i)
      if (parent[i] < 0 && static_cast<int>(i) != rootNode) {
        parent[i] = rootNode;
        nodes[rootNode].childModules.push_back(i);
      }

    // Assign every community model to the smallest module containing all
    // the elements it involves.
    for (std::size_t m = 0; m < modelElements.size(); ++m) {
      int best = rootNode;
      for (std::size_t i = 0; i < modules.size(); ++i) {
        bool containsAll = std::all_of(
            modelElements[m].begin(), modelElements[m].end(),
            [&](dft::ElementId e) {
              return std::binary_search(modules[i].members.begin(),
                                        modules[i].members.end(), e);
            });
        if (containsAll) {
          best = static_cast<int>(i);
          break;  // modules are sorted by size: first hit is smallest
        }
      }
      nodes[best].ownModels.push_back(m);
    }

    // Depth-first composition: children first, then the module's own pool.
    // Iterative post-order over the containment tree.
    struct Frame {
      int node;
      std::size_t child = 0;
      std::vector<std::size_t> pool;
      std::size_t stepsAtEntry = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({rootNode, 0, {}, composer.stepsSoFar()});
    std::size_t resultIdx = 0;
    while (!stack.empty()) {
      Frame& f = stack.back();
      ModuleNode& node = nodes[f.node];
      if (f.child == 0) f.pool = node.ownModels;
      if (f.child < node.childModules.size()) {
        int child = static_cast<int>(node.childModules[f.child++]);
        // A cache hit replaces the whole child subtree with its previously
        // aggregated model.  Trivial modules (a single community model,
        // e.g. a lone basic event) are not worth caching.
        const ModuleNode& childNode = nodes[child];
        const bool trivial =
            childNode.childModules.empty() && childNode.ownModels.size() <= 1;
        if (cache && !trivial) {
          if (std::optional<CachedModule> hit =
                  cache->lookup(dft, modules[child].root)) {
            // The skipped subtree's community models will never be
            // composed; release them so they stop acting as signal
            // consumers (and free their memory).
            std::vector<int> pending{child};
            while (!pending.empty()) {
              int n = pending.back();
              pending.pop_back();
              for (std::size_t m : nodes[n].ownModels)
                composer.releaseSlot(m);
              for (std::size_t c : nodes[n].childModules)
                pending.push_back(static_cast<int>(c));
            }
            std::size_t slot = composer.addSlot(std::move(hit->model));
            composer.recordModule(nodes[child].name, slot);
            composer.noteCacheSplice(hit->steps);
            f.pool.push_back(slot);
            continue;
          }
        }
        stack.push_back({child, 0, {}, composer.stepsSoFar()});
        continue;
      }
      // A module with a single member does not need composing, but modules
      // with several members fold into one model.
      const bool properModule = f.pool.size() > 1;
      const int nodeIdx = f.node;
      const std::size_t stepsAtEntry = f.stepsAtEntry;
      std::size_t merged = composer.mergePool(f.pool);
      if (properModule) composer.recordModule(node.name, merged);
      stack.pop_back();
      if (stack.empty()) {
        resultIdx = merged;
      } else {
        stack.back().pool.push_back(merged);
        if (cache && properModule)
          cache->store(dft, modules[nodeIdx].root, composer.slot(merged),
                       composer.stepsSoFar() - stepsAtEntry);
      }
    }
    finalIdx = resultIdx;
  }

  EngineResult result{composer.takeModel(finalIdx), composer.takeStats()};
  // A single-model community may still carry unhidden outputs.
  result.model = ioimc::hideAllOutputs(result.model);
  if (opts.collapseSinks)
    result.model = ioimc::collapseUnobservableSinks(result.model);
  result.model = ioimc::aggregate(result.model, opts.weak);
  return result;
}

}  // namespace imcdft::analysis
