#include "analysis/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "analysis/symmetry.hpp"
#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "dft/hash.hpp"
#include "dft/modules.hpp"
#include "ioimc/compose.hpp"
#include "ioimc/ops.hpp"
#include "ioimc/otf_compose.hpp"
#include "ioimc/signature_interner.hpp"
#include "obs/trace.hpp"

namespace imcdft::analysis {

using ioimc::IOIMC;


void CompositionStats::noteOnTheFlyFallbackReason(const std::string& reason) {
  if (onTheFlyFallbackReasons.size() >= 8) return;
  if (std::find(onTheFlyFallbackReasons.begin(), onTheFlyFallbackReasons.end(),
                reason) != onTheFlyFallbackReasons.end())
    return;
  onTheFlyFallbackReasons.push_back(reason);
}

namespace {

/// The outputs among \p outputs that are consumed neither by a live pool
/// member (other than the two operands) nor externally — what the step
/// hides right after composing.
std::vector<ioimc::ActionId> hiddenOutputsFor(
    const std::vector<ioimc::ActionId>& outputs,
    const std::vector<std::optional<IOIMC>>& pool, std::size_t skipA,
    std::size_t skipB, const std::function<bool(ioimc::ActionId)>& usedOutside) {
  std::vector<ioimc::ActionId> hidden;
  for (ioimc::ActionId out : outputs) {
    bool used = false;
    for (std::size_t i = 0; i < pool.size() && !used; ++i) {
      if (!pool[i] || i == skipA || i == skipB) continue;
      used = pool[i]->signature().isInput(out);
    }
    if (!used && usedOutside) used = usedOutside(out);
    if (!used) hidden.push_back(out);
  }
  return hidden;
}

/// Hides the outputs of \p m that are consumed neither by a live pool
/// member nor externally, then collapses/aggregates per the options.
IOIMC hideAndAggregatePool(
    IOIMC m, const EngineOptions& opts,
    const std::vector<std::optional<IOIMC>>& pool, std::size_t skipA,
    std::size_t skipB, const std::function<bool(ioimc::ActionId)>& usedOutside) {
  IOIMC result = ioimc::hide(
      m, hiddenOutputsFor(m.signature().outputs(), pool, skipA, skipB,
                          usedOutside));
  if (opts.collapseSinks) result = ioimc::collapseUnobservableSinks(result);
  // To fixpoint, not a single pass: the fused on-the-fly path and this
  // classic chain reach byte-identical results only in the *minimal*
  // quotient (both are canonically renumbered there).
  if (opts.aggregateEachStep)
    result = ioimc::aggregateFixpoint(result, opts.weak);
  return result;
}

/// Folds the per-step size maxima and on-the-fly counters into the stats.
void foldPeaks(CompositionStats& stats) {
  for (const CompositionStep& s : stats.steps) {
    stats.peakComposedStates =
        std::max(stats.peakComposedStates, s.composedStates);
    stats.peakComposedTransitions =
        std::max(stats.peakComposedTransitions, s.composedTransitions);
    stats.peakAggregatedStates =
        std::max(stats.peakAggregatedStates, s.aggregatedStates);
    stats.peakAggregatedTransitions =
        std::max(stats.peakAggregatedTransitions, s.aggregatedTransitions);
    if (s.onTheFly) {
      ++stats.onTheFlySteps;
      const std::size_t bound = s.leftStates * s.rightStates;
      if (bound > s.composedStates)
        stats.onTheFlySavedPeakStates += bound - s.composedStates;
    }
    if (s.onTheFlyFallback) {
      ++stats.onTheFlyFallbacks;
      stats.noteOnTheFlyFallbackReason(s.onTheFlyFallbackReason);
    }
    stats.otfRefinePassesRun += s.otfRefinePassesRun;
    stats.otfRefinePassesSkipped += s.otfRefinePassesSkipped;
    stats.otfIntraWorkers = std::max(stats.otfIntraWorkers, s.otfIntraWorkers);
    if (s.otfPipelined) ++stats.otfPipelinedSteps;
    if (s.otfPipelineRollback) ++stats.otfPipelineRollbacks;
  }
}

/// True when the two models share a synchronizing action.
bool synchronize(const IOIMC& a, const IOIMC& b) {
  const ioimc::Signature& sa = a.signature();
  const ioimc::Signature& sb = b.signature();
  auto anyShared = [](const std::vector<ioimc::ActionId>& xs,
                      const ioimc::Signature& other) {
    return std::any_of(xs.begin(), xs.end(), [&](ioimc::ActionId x) {
      return other.isInput(x) || other.isOutput(x);
    });
  };
  return anyShared(sa.outputs(), sb) || anyShared(sa.inputs(), sb);
}

/// Results below this size verify their deferred fixpoint inline — the
/// check costs microseconds there and pipelining it would only add thread
/// churn.
constexpr std::size_t kPipelineMinStates = 64;

/// In-flight deferred fixpoint verification of one fused step (the
/// engine-level pipelining): the step's optimistic first-pass result is
/// already committed to the pool and its verification runs on a background
/// thread while the merge loop explores the next step.  Joined before the
/// next step commits anything, so at most one verification is ever
/// outstanding and every rollback touches only the last committed step.
struct PendingVerify {
  std::future<std::optional<IOIMC>> verdict;
  std::size_t resultSlot = 0;        ///< pool slot of the optimistic model
  std::size_t stepIndex = 0;         ///< index of the step's record
  std::size_t aSlot = 0, bSlot = 0;  ///< the operands' pool slots
  /// The operands, kept alive for the rare classic redo of the step.
  std::optional<IOIMC> aModel, bModel;
};

/// Greedily folds the live entries of \p pool into one model, recording
/// one CompositionStep per pairwise composition into \p steps.  The
/// cheapest synchronizing pair merges first; \p usedOutside reports
/// whether an output action has consumers beyond this pool (null = none).
///
/// Fused steps run with a deferred fixpoint check: the optimistic
/// first-pass aggregate is committed immediately and verified on a
/// background thread while the next step's product is already being
/// explored.  The verification almost always confirms the bytes (one
/// quotient pass is a fixpoint on typical models); when it instead amends
/// them, the overlapped work is discarded and redone against the corrected
/// model, so the returned model — and every recorded size — is identical
/// to a fully sequential run.
std::size_t mergePool(std::vector<std::optional<IOIMC>>& pool,
                      std::vector<std::size_t> live,
                      const EngineOptions& opts,
                      std::vector<CompositionStep>& steps,
                      const std::function<bool(ioimc::ActionId)>& usedOutside) {
  require(!live.empty(), "composeCommunity: empty module pool");
  // One encoding pool shared by every fused step of this merge, so
  // repeated refinement passes reuse the same worker threads instead of
  // respawning them per step.  Created lazily: only when intra-step
  // parallelism is on and a step's product bound is big enough that the
  // parallel encode path could engage at all.
  std::unique_ptr<WorkerPool> encodePool;
  auto encodePoolFor = [&](std::size_t leftStates,
                           std::size_t rightStates) -> WorkerPool* {
    if (!opts.otfIntraStepParallel) return nullptr;
    if (!encodePool) {
      if (leftStates * rightStates < ioimc::detail::kIntraParallelMinStates)
        return nullptr;
      const unsigned t = std::thread::hardware_concurrency();
      if (t > 1) encodePool = std::make_unique<WorkerPool>(t);
    }
    return encodePool.get();
  };

  std::optional<PendingVerify> pending;

  // Joins the outstanding deferred verification.  Returns true when it
  // amended the pool — the caller's in-flight selection/exploration was
  // based on stale bytes and must be redone.
  auto joinPending = [&]() -> bool {
    if (!pending) return false;
    PendingVerify p = std::move(*pending);
    pending.reset();
    std::optional<IOIMC> corrected;
    try {
      corrected = p.verdict.get();
    } catch (const BudgetExceeded&) {
      throw;
    } catch (const Error& e) {
      // The optimistic bytes cannot be trusted and the correction pass
      // failed (e.g. an incomplete canonical renumbering): rewind the step
      // record and serve the step through the classic chain, exactly like
      // a non-deferred invariant failure would have.  Redone inline —
      // retrying the fused path would deterministically fail again.
      steps.resize(p.stepIndex);
      pool[p.aSlot] = std::move(p.aModel);
      pool[p.bSlot] = std::move(p.bModel);
      pool[p.resultSlot].reset();
      CompositionStep redo;
      redo.name = pool[p.aSlot]->name() + " || " + pool[p.bSlot]->name();
      redo.leftStates = pool[p.aSlot]->numStates();
      redo.rightStates = pool[p.bSlot]->numStates();
      redo.onTheFlyFallback = true;
      redo.onTheFlyFallbackReason = e.what();
      obs::traceInstant("otf-fallback", redo.onTheFlyFallbackReason);
      IOIMC composed =
          ioimc::compose(*pool[p.aSlot], *pool[p.bSlot], opts.cancel.get());
      redo.composedStates = composed.numStates();
      redo.composedTransitions = composed.numTransitions();
      IOIMC redone = hideAndAggregatePool(std::move(composed), opts, pool,
                                          p.aSlot, p.bSlot, usedOutside);
      redo.aggregatedStates = redone.numStates();
      redo.aggregatedTransitions = redone.numTransitions();
      steps.push_back(std::move(redo));
      pool[p.aSlot].reset();
      pool[p.bSlot].reset();
      pool[p.resultSlot].emplace(std::move(redone));
      return true;
    }
    if (!corrected) return false;  // confirmed: the handed-out bytes stand
    // The verification found further merges: swap the corrected model into
    // the step's slot and patch its record.  The overlapped exploration
    // read the optimistic bytes and is stale.
    pool[p.resultSlot].emplace(std::move(*corrected));
    steps[p.stepIndex].aggregatedStates = pool[p.resultSlot]->numStates();
    steps[p.stepIndex].aggregatedTransitions =
        pool[p.resultSlot]->numTransitions();
    steps[p.stepIndex].otfPipelineRollback = true;
    obs::traceInstant("otf-rollback", steps[p.stepIndex].name);
    return true;
  };

  while (live.size() > 1) {
    // One budget checkpoint per merge step: catches explosion between hot
    // loops (e.g. a pool whose pairwise products are individually cheap
    // but whose count is huge).  The live pool size is the step's peak
    // proxy; the finer-grained accounting happens inside compose / the
    // fused engine / the refinement loops, which all carry the same token.
    if (opts.cancel) opts.cancel->checkpoint("merge-step", live.size());
    std::size_t bestI = 0, bestJ = 1;
    double bestCost = std::numeric_limits<double>::infinity();
    bool bestSync = false;
    for (std::size_t i = 0; i < live.size(); ++i) {
      for (std::size_t j = i + 1; j < live.size(); ++j) {
        double cost = static_cast<double>(pool[live[i]]->numStates()) *
                      static_cast<double>(pool[live[j]]->numStates());
        bool sync = synchronize(*pool[live[i]], *pool[live[j]]);
        if ((sync && !bestSync) || (sync == bestSync && cost < bestCost)) {
          bestI = i;
          bestJ = j;
          bestCost = cost;
          bestSync = sync;
        }
      }
    }
    std::size_t a = live[bestI], b = live[bestJ];
    CompositionStep step;
    step.name = pool[a]->name() + " || " + pool[b]->name();
    step.leftStates = pool[a]->numStates();
    step.rightStates = pool[b]->numStates();
    obs::TraceSpan stepSpan("compose.step", step.name);
    stepSpan.arg("left_states", step.leftStates);
    stepSpan.arg("right_states", step.rightStates);
    std::optional<IOIMC> fused;
    bool fusedVerified = true;
    if (opts.onTheFly && opts.aggregateEachStep) {
      // The composite's outputs (out(A) u out(B); shared outputs are
      // rejected by compose anyway) determine the hide set without
      // materializing the product.
      std::vector<ioimc::ActionId> outs = pool[a]->signature().outputs();
      const std::vector<ioimc::ActionId>& outsB =
          pool[b]->signature().outputs();
      outs.insert(outs.end(), outsB.begin(), outsB.end());
      std::sort(outs.begin(), outs.end());
      outs.erase(std::unique(outs.begin(), outs.end()), outs.end());
      ioimc::otf::OtfOptions fusedOpts;
      fusedOpts.weak = opts.weak;
      fusedOpts.weak.intraThreads = opts.otfIntraStepParallel ? 0u : 1u;
      fusedOpts.collapseSinks = opts.collapseSinks;
      fusedOpts.maxLiveStates = opts.onTheFlyMaxVisited;
      fusedOpts.refineCadence = opts.otfRefineCadence;
      fusedOpts.intraThreads = opts.otfIntraStepParallel ? 0u : 1u;
      fusedOpts.encodePool =
          encodePoolFor(step.leftStates, step.rightStates);
      fusedOpts.deferFixpoint = true;
      ioimc::otf::OtfResult r = ioimc::otf::otfComposeAggregate(
          *pool[a], *pool[b],
          hiddenOutputsFor(outs, pool, a, b, usedOutside), fusedOpts);
      if (r.ok) {
        step.onTheFly = true;
        step.composedStates = r.stats.peakLiveStates;
        step.composedTransitions = r.stats.peakLiveTransitions;
        step.otfRefinePassesRun = r.stats.refinementRounds;
        step.otfRefinePassesSkipped = r.stats.refinePassesSkipped;
        step.otfIntraWorkers = r.stats.intraWorkers;
        step.otfExpandSeconds = r.stats.expandSeconds;
        step.otfRefineSeconds = r.stats.refineSeconds;
        step.otfCollapseSeconds = r.stats.collapseSeconds;
        step.otfRenumberSeconds = r.stats.renumberSeconds;
        fused.emplace(std::move(*r.model));
        fusedVerified = r.fixpointVerified;
      } else {
        step.onTheFlyFallback = true;
        step.onTheFlyFallbackReason = std::move(r.failureReason);
        obs::traceInstant("otf-fallback", step.onTheFlyFallbackReason);
      }
    }
    // Join the previous fused step's deferred verification before this
    // step commits anything: when it amended the pool, this iteration's
    // selection and exploration were stale — redo the whole iteration.
    if (joinPending()) continue;
    IOIMC result = [&] {
      if (fused) return std::move(*fused);
      IOIMC composed = ioimc::compose(*pool[a], *pool[b], opts.cancel.get());
      step.composedStates = composed.numStates();
      step.composedTransitions = composed.numTransitions();
      return hideAndAggregatePool(std::move(composed), opts, pool, a, b,
                                  usedOutside);
    }();
    bool pipelineThis = false;
    if (fused && !fusedVerified) {
      // Overlapping the verification only pays when a second core can run
      // it; on one core the async handoff (model copy + thread) is pure
      // overhead over the inline check.  The drill forces the overlapped
      // path regardless, so its rollback machinery stays testable
      // everywhere.
      if (opts.otfPipelineDrill ||
          (std::thread::hardware_concurrency() > 1 &&
           result.numStates() >= kPipelineMinStates)) {
        pipelineThis = true;
      } else {
        // Small result: complete the deferred check right here — it costs
        // less than a thread handoff.
        ioimc::WeakOptions verifyWeak = opts.weak;
        verifyWeak.intraThreads = 1;
        try {
          if (std::optional<IOIMC> v =
                  ioimc::otf::verifyAggregateFixpoint(result, verifyWeak))
            result = std::move(*v);
        } catch (const BudgetExceeded&) {
          throw;
        } catch (const Error& e) {
          step.onTheFly = false;
          step.onTheFlyFallback = true;
          step.onTheFlyFallbackReason = e.what();
          obs::traceInstant("otf-fallback", step.onTheFlyFallbackReason);
          IOIMC composed =
              ioimc::compose(*pool[a], *pool[b], opts.cancel.get());
          step.composedStates = composed.numStates();
          step.composedTransitions = composed.numTransitions();
          result = hideAndAggregatePool(std::move(composed), opts, pool, a,
                                        b, usedOutside);
        }
      }
    }
    step.aggregatedStates = result.numStates();
    step.aggregatedTransitions = result.numTransitions();
    if (pipelineThis) {
      step.otfPipelined = true;
      PendingVerify p;
      p.resultSlot = pool.size();
      p.stepIndex = steps.size();
      p.aSlot = a;
      p.bSlot = b;
      p.aModel = std::move(pool[a]);
      p.bModel = std::move(pool[b]);
      ioimc::WeakOptions verifyWeak = opts.weak;
      verifyWeak.intraThreads = 1;
      const bool drill = opts.otfPipelineDrill;
      IOIMC copy = result;  // verified on a private copy; pool may move
      const std::uint64_t traceCtx = obs::currentTraceContext();
      p.verdict = std::async(
          std::launch::async,
          [m = std::move(copy), verifyWeak, drill,
           traceCtx]() mutable -> std::optional<IOIMC> {
            obs::ScopedTraceContext ctxGuard(traceCtx);
            obs::TraceSpan span("otf.verify");
            std::optional<IOIMC> v =
                ioimc::otf::verifyAggregateFixpoint(m, verifyWeak);
            // Drill: pretend the confirmation was a correction (the bytes
            // are identical) so the rollback path gets exercised.
            if (!v && drill) v.emplace(std::move(m));
            return v;
          });
      pending.emplace(std::move(p));
    }
    stepSpan.arg("aggregated_states", step.aggregatedStates);
    stepSpan.arg("otf", step.onTheFly ? 1 : 0);
    steps.push_back(std::move(step));
    pool[a].reset();
    pool[b].reset();
    pool.emplace_back(std::move(result));
    live.erase(live.begin() + bestJ);
    live.erase(live.begin() + bestI);
    live.push_back(pool.size() - 1);
  }
  // Drain the last step's verification; a rollback here only swaps or
  // recomputes the final model in place, so one join settles it.
  joinPending();
  return live.front();
}

/// Node of the module containment tree used by the Modular strategy.
struct ModuleNode {
  std::string name;
  std::vector<std::size_t> ownModels;     // community model indices
  std::vector<std::size_t> childModules;  // indices into the node array
};

/// Parallel aggregation of the module containment tree: one task per
/// module node, executed once all child modules finished, on a small
/// worker pool.  Tasks share no mutable state — every node folds its own
/// community models plus its children's aggregated results, and the
/// question "is this output consumed outside the pool?" is answered from
/// the *static* input sets of the original community models outside the
/// node's subtree (a composite consumes an input action iff one of its
/// members did, so the static answer equals the sequential engine's scan
/// over live slots).  Results are therefore bitwise identical for every
/// thread count.
class ModularAggregator {
 public:
  ModularAggregator(std::vector<std::optional<IOIMC>> models,
                    std::vector<ModuleNode> nodes, int rootNode,
                    const std::vector<dft::ModuleInfo>& modules,
                    std::vector<int> parentOf, const dft::Dft& dft,
                    const std::vector<std::vector<dft::ElementId>>& modelElements,
                    const std::vector<ActivationContext>& contexts,
                    const EngineOptions& opts, ModuleCache* cache)
      : models_(std::move(models)),
        nodes_(std::move(nodes)),
        parentOf_(std::move(parentOf)),
        rootNode_(rootNode),
        modules_(modules),
        dft_(dft),
        modelElements_(modelElements),
        contexts_(contexts),
        opts_(opts),
        cache_(cache) {
    const std::size_t numNodes = nodes_.size();
    spliced_.assign(numNodes, false);
    spliceRecord_.resize(numNodes);
    spliceSavedSteps_.assign(numNodes, 0);
    results_.resize(numNodes);
    stats_.resize(numNodes);
    moduleRecord_.resize(numNodes);
    properModule_.assign(numNodes, 0);
    pending_.assign(numNodes, 0);
    symmetric_.assign(numNodes, 0);
    symRepOf_.assign(numNodes, -1);
    symSiblingsOf_.resize(numNodes);
    symRenaming_.resize(numNodes);
    symRecord_.resize(numNodes);
    buildSubtreeMembership();
  }

  /// Resolves cache splices (sequentially, on the calling thread), plans
  /// the symmetry buckets, then aggregates all remaining module tasks on
  /// \p numThreads workers and returns the root model plus deterministic,
  /// post-ordered stats.
  std::pair<IOIMC, CompositionStats> run(unsigned numThreads) {
    resolveSplices(rootNode_);
    if (opts_.symmetry) planSymmetry();
    scheduleReadyTasks();
    runWorkers(numThreads);
    if (firstError_) std::rethrow_exception(firstError_);

    CompositionStats stats;
    stats.symmetricBuckets = symmetricBuckets_;
    collectStats(rootNode_, stats);
    foldPeaks(stats);
    return {std::move(*results_[rootNode_]), std::move(stats)};
  }

 private:
  /// models_ index sets of each node's subtree (own models + descendants),
  /// used for the static "consumed outside this subtree?" test.
  void buildSubtreeMembership() {
    inSubtree_.assign(nodes_.size(),
                      std::vector<char>(models_.size(), 0));
    // Children have larger module indices than parents is not guaranteed;
    // do an explicit post-order walk.
    struct Frame {
      int node;
      std::size_t child = 0;
    };
    std::vector<Frame> stack{{rootNode_, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.child < nodes_[f.node].childModules.size()) {
        stack.push_back({static_cast<int>(nodes_[f.node].childModules[f.child++]), 0});
        continue;
      }
      std::vector<char>& mine = inSubtree_[f.node];
      for (std::size_t m : nodes_[f.node].ownModels) mine[m] = 1;
      for (std::size_t c : nodes_[f.node].childModules)
        for (std::size_t m = 0; m < models_.size(); ++m)
          if (inSubtree_[c][m]) mine[m] = 1;
      stack.pop_back();
    }
    // Static consumer lists: which original community models input which
    // action.
    for (std::size_t m = 0; m < models_.size(); ++m)
      for (ioimc::ActionId in : models_[m]->signature().inputs())
        consumers_[in].push_back(static_cast<std::uint32_t>(m));
  }

  bool usedOutsideSubtree(ioimc::ActionId action, int node) const {
    auto it = consumers_.find(action);
    if (it == consumers_.end()) return false;
    const std::vector<char>& mine = inSubtree_[node];
    for (std::uint32_t m : it->second)
      if (!mine[m]) return true;
    return false;
  }

  /// Walks the tree in the sequential engine's order, consulting the cache
  /// for every non-trivial child module; a hit marks the whole child
  /// subtree spliced (its tasks never run).
  void resolveSplices(int root) {
    std::vector<int> pendingNodes{root};
    while (!pendingNodes.empty()) {
      int node = pendingNodes.back();
      pendingNodes.pop_back();
      for (std::size_t childIdx : nodes_[node].childModules) {
        int child = static_cast<int>(childIdx);
        const ModuleNode& childNode = nodes_[child];
        const bool trivial =
            childNode.childModules.empty() && childNode.ownModels.size() <= 1;
        if (cache_ && !trivial) {
          if (std::optional<CachedModule> hit =
                  cache_->lookup(dft_, modules_[child].root)) {
            spliced_[child] = true;
            spliceRecord_[child] = ModuleResult{childNode.name,
                                                hit->model.numStates(),
                                                hit->model.numTransitions()};
            spliceSavedSteps_[child] = hit->steps;
            results_[child].emplace(std::move(hit->model));
            releaseSubtreeModels(child);
            continue;
          }
        }
        pendingNodes.push_back(child);
      }
    }
  }

  /// Frees the community models of a spliced-away subtree: they will
  /// never be composed and must not hold memory for the whole run (the
  /// static consumer lists were built from their signatures beforehand).
  void releaseSubtreeModels(int root) {
    std::vector<int> pendingNodes{root};
    while (!pendingNodes.empty()) {
      int node = pendingNodes.back();
      pendingNodes.pop_back();
      for (std::size_t m : nodes_[node].ownModels) models_[m].reset();
      for (std::size_t c : nodes_[node].childModules)
        pendingNodes.push_back(static_cast<int>(c));
    }
  }

  // ---------------------------------------------------------------------
  // Symmetry reduction: one aggregation per module shape.
  // ---------------------------------------------------------------------

  /// Buckets the eligible module nodes by their rename-invariant shape
  /// (dft::moduleShape).  The first member of a bucket becomes its
  /// *representative* and is aggregated normally; every further member
  /// whose structure and induced action renaming pass the checks of
  /// planSiblingRenaming() is marked symmetric — its subtree is never
  /// scheduled, and its result is instantiated from the representative's
  /// via ioimc::renameActions when the representative completes.  Any
  /// check failure silently falls back to normal aggregation.
  void planSymmetry() {
    if (contexts_.empty()) return;
    std::vector<char> absorbed(nodes_.size(), 0);
    // Nodes inside a spliced subtree never run; they must not become
    // representatives (their results would never materialize).
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      if (spliced_[i]) absorbSubtree(static_cast<int>(i), absorbed);
    std::unordered_map<std::string, int> repOfShape;
    std::unordered_map<int, dft::ModuleShape> shapeOf;
    // Walk larger modules first (node indices ascend with module size):
    // when an outer sibling is absorbed, its inner modules are marked
    // before they are visited, so nested buckets never overlap.
    for (int node = static_cast<int>(nodes_.size()) - 1; node >= 0; --node) {
      if (node == rootNode_ || spliced_[node] || absorbed[node]) continue;
      const ModuleNode& n = nodes_[node];
      if (n.childModules.empty() && n.ownModels.size() <= 1)
        continue;  // trivial: reuse would not save any composition
      const dft::ElementId moduleRoot = modules_[node].root;
      if (moduleRoot >= contexts_.size() || !contexts_[moduleRoot].alwaysActive)
        continue;  // context-dependent conversion; not reusable
      if (subtreeHasSplice(node)) continue;  // the cache already covers it
      dft::ModuleShape shape = dft::moduleShape(dft_, moduleRoot);
      auto [it, fresh] = repOfShape.try_emplace(shape.key, node);
      if (fresh) {
        shapeOf.emplace(node, std::move(shape));
        continue;
      }
      const int rep = it->second;
      std::optional<std::unordered_map<ioimc::ActionId, std::string>> renaming =
          planSiblingRenaming(rep, shapeOf.at(rep), node, shape);
      if (!renaming) continue;  // fall back to aggregating this module
      symmetric_[node] = 1;
      symRepOf_[node] = rep;
      symSiblingsOf_[rep].push_back(node);
      symRenaming_[node] = std::move(*renaming);
      absorbSubtree(node, absorbed);
      releaseSubtreeModels(node);
    }
    for (const std::vector<int>& siblings : symSiblingsOf_)
      if (!siblings.empty()) ++symmetricBuckets_;
  }

  void absorbSubtree(int root, std::vector<char>& absorbed) const {
    std::vector<int> stack{root};
    while (!stack.empty()) {
      int node = stack.back();
      stack.pop_back();
      absorbed[node] = 1;
      for (std::size_t c : nodes_[node].childModules)
        stack.push_back(static_cast<int>(c));
    }
  }

  bool subtreeHasSplice(int root) const {
    std::vector<int> stack{root};
    while (!stack.empty()) {
      int node = stack.back();
      stack.pop_back();
      for (std::size_t c : nodes_[node].childModules) {
        if (spliced_[c]) return true;
        stack.push_back(static_cast<int>(c));
      }
    }
    return false;
  }

  /// All action ids appearing in the signatures of the node's subtree
  /// community models, sorted and deduplicated.  This over-approximates
  /// the action universe of every model the subtree's aggregation can
  /// produce (compose introduces no actions, hiding only changes roles,
  /// and the quotient adds only tau).
  std::vector<ioimc::ActionId> subtreeActions(int node) const {
    std::vector<ioimc::ActionId> acts;
    const std::vector<char>& mine = inSubtree_[node];
    for (std::size_t m = 0; m < models_.size(); ++m) {
      if (!mine[m] || !models_[m]) continue;
      const ioimc::Signature& s = models_[m]->signature();
      acts.insert(acts.end(), s.inputs().begin(), s.inputs().end());
      acts.insert(acts.end(), s.outputs().begin(), s.outputs().end());
      acts.insert(acts.end(), s.internals().begin(), s.internals().end());
    }
    std::sort(acts.begin(), acts.end());
    acts.erase(std::unique(acts.begin(), acts.end()), acts.end());
    return acts;
  }

  /// Verifies that the sibling's module subtree corresponds node-for-node
  /// and model-for-model to the representative's under the index-wise
  /// member substitution — same child order, same own-model element sets.
  /// Corresponding structures plus an order-preserving action map make the
  /// representative's aggregation *equivariant*: every ordering decision
  /// on the sibling's side mirrors the representative's, so the renamed
  /// result is bitwise what aggregating the sibling would have produced.
  bool structuresCorrespond(int rep, int sib) const {
    static constexpr dft::ElementId kNoElement =
        static_cast<dft::ElementId>(-1);
    const std::vector<dft::ElementId>& ma = modules_[rep].members;
    const std::vector<dft::ElementId>& mb = modules_[sib].members;
    if (ma.size() != mb.size()) return false;
    std::vector<dft::ElementId> toSib(dft_.size(), kNoElement);
    for (std::size_t i = 0; i < ma.size(); ++i) toSib[ma[i]] = mb[i];
    std::vector<std::pair<int, int>> stack{{rep, sib}};
    while (!stack.empty()) {
      auto [x, y] = stack.back();
      stack.pop_back();
      if (toSib[modules_[x].root] != modules_[y].root) return false;
      const ModuleNode& nx = nodes_[x];
      const ModuleNode& ny = nodes_[y];
      if (nx.childModules.size() != ny.childModules.size()) return false;
      if (nx.ownModels.size() != ny.ownModels.size()) return false;
      for (std::size_t k = 0; k < nx.ownModels.size(); ++k) {
        std::vector<dft::ElementId> ea = modelElements_[nx.ownModels[k]];
        for (dft::ElementId& e : ea) {
          if (e >= toSib.size() || toSib[e] == kNoElement) return false;
          e = toSib[e];
        }
        std::sort(ea.begin(), ea.end());
        std::vector<dft::ElementId> eb = modelElements_[ny.ownModels[k]];
        std::sort(eb.begin(), eb.end());
        if (ea != eb) return false;
      }
      for (std::size_t c = 0; c < nx.childModules.size(); ++c)
        stack.push_back({static_cast<int>(nx.childModules[c]),
                         static_cast<int>(ny.childModules[c])});
    }
    return true;
  }

  /// Builds and validates the ActionId renaming that instantiates \p sib
  /// from \p rep: structures must correspond, the lifted name substitution
  /// must cover the representative's whole subtree action universe, its
  /// image must be exactly the sibling's universe, the id map must be
  /// strictly order-preserving (the bitwise-identity condition, see
  /// analysis/symmetry.hpp), and externally visible outputs must stay
  /// externally visible on both sides (equal hide sets).
  std::optional<std::unordered_map<ioimc::ActionId, std::string>>
  planSiblingRenaming(int rep, const dft::ModuleShape& repShape, int sib,
                      const dft::ModuleShape& sibShape) const {
    if (repShape.names.size() != sibShape.names.size()) return std::nullopt;
    if (!structuresCorrespond(rep, sib)) return std::nullopt;

    const dft::Dft repModule = dft::extractModule(dft_, modules_[rep].root);
    std::optional<std::unordered_map<std::string, std::string>> lift =
        liftElementRenaming(repModule, repShape.names, sibShape.names);
    if (!lift) return std::nullopt;

    const SymbolTable& symbols = *symbolTable();
    const std::vector<ioimc::ActionId> repActs = subtreeActions(rep);
    std::vector<ActionIdPair> pairs;
    pairs.reserve(repActs.size() + 1);
    for (ioimc::ActionId a : repActs) {
      auto it = lift->find(symbols.name(a));
      if (it == lift->end()) return std::nullopt;
      ioimc::ActionId to = symbols.find(it->second);
      if (to == SymbolTable::npos) return std::nullopt;
      pairs.emplace_back(a, to);
    }
    // In a warm session tau may already be interned between the two
    // modules' name blocks; it stays fixed, so it must not break the
    // order correspondence.  (Cold runs intern tau after every community
    // name, where it cannot interfere.)
    const ioimc::ActionId tau = symbols.find(ioimc::kTauName);
    if (tau != SymbolTable::npos) pairs.emplace_back(tau, tau);
    if (!orderPreserving(pairs)) return std::nullopt;

    // The image must be exactly the sibling's action universe.
    std::vector<ioimc::ActionId> image;
    image.reserve(repActs.size());
    for (const ActionIdPair& p : pairs)
      if (p.first != tau || tau == SymbolTable::npos) image.push_back(p.second);
    std::sort(image.begin(), image.end());
    if (image != subtreeActions(sib)) return std::nullopt;

    // Equal hide sets: an output consumed outside one subtree must map to
    // an output consumed outside the other, and vice versa.
    std::unordered_map<ioimc::ActionId, ioimc::ActionId> idMap(pairs.begin(),
                                                               pairs.end());
    const std::vector<char>& mine = inSubtree_[rep];
    for (std::size_t m = 0; m < models_.size(); ++m) {
      if (!mine[m] || !models_[m]) continue;
      for (ioimc::ActionId out : models_[m]->signature().outputs())
        if (usedOutsideSubtree(out, rep) !=
            usedOutsideSubtree(idMap.at(out), sib))
          return std::nullopt;
    }

    std::unordered_map<ioimc::ActionId, std::string> renaming;
    for (const ActionIdPair& p : pairs)
      if (p.first != p.second) renaming.emplace(p.first, symbols.name(p.second));
    return renaming;
  }

  /// The shared symbol table (every community model interns in one table;
  /// compose() asserts as much).
  const ioimc::SymbolTablePtr& symbolTable() const {
    for (const std::optional<IOIMC>& m : models_)
      if (m) return m->symbols();
    for (const std::optional<IOIMC>& r : results_)
      if (r) return r->symbols();
    throw ModelError("composeCommunity: no model left to take symbols from");
  }

  /// Instantiates every symmetric sibling of \p rep by renaming the
  /// representative's aggregated model (called right after the
  /// representative's task finishes, before its parent may consume it).
  void instantiateSiblings(int rep) {
    for (int sib : symSiblingsOf_[rep]) {
      IOIMC instance =
          ioimc::renameActions(*results_[rep], symRenaming_[sib]);
      symRecord_[sib] = ModuleResult{nodes_[sib].name, instance.numStates(),
                                     instance.numTransitions()};
      results_[sib].emplace(std::move(instance));
    }
  }

  int liveChildren(int node) const {
    int count = 0;
    for (std::size_t c : nodes_[node].childModules)
      if (!spliced_[c]) ++count;
    return count;
  }

  void scheduleReadyTasks() {
    struct Frame {
      int node;
      std::size_t child = 0;
    };
    std::vector<Frame> stack{{rootNode_, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const ModuleNode& node = nodes_[f.node];
      if (f.child == 0) {
        ++numTasks_;
        int live = liveChildren(f.node);
        pending_[f.node] = live;
        if (live == 0) ready_.push_back(f.node);
      }
      if (f.child < node.childModules.size()) {
        int child = static_cast<int>(node.childModules[f.child++]);
        // Spliced children already carry results; symmetric children are
        // instantiated when their representative finishes — neither
        // subtree gets tasks of its own.
        if (!spliced_[child] && !symmetric_[child])
          stack.push_back({child, 0});
        continue;
      }
      stack.pop_back();
    }
  }

  void runWorkers(unsigned numThreads) {
    // More workers than module tasks would only block on the condition
    // variable and be joined again; a small tree gets a small pool.
    numThreads =
        static_cast<unsigned>(std::min<std::size_t>(numThreads, numTasks_));
    if (numThreads <= 1) {
      while (!ready_.empty() && !firstError_) {
        int node = ready_.front();
        ready_.pop_front();
        runTask(node);
      }
      return;
    }
    std::vector<std::thread> workers;
    auto workerLoop = [this] {
      // Module-task spans of this worker land in the submitting request's
      // trace group (the context was captured at aggregator construction).
      obs::ScopedTraceContext ctxGuard(traceCtx_);
      std::unique_lock<std::mutex> lock(mutex_);
      while (true) {
        cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
        if (stop_ || ready_.empty()) return;  // error, completion, or drained
        int node = ready_.front();
        ready_.pop_front();
        lock.unlock();
        runTask(node);
        lock.lock();
      }
    };
    workers.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i)
      workers.emplace_back(workerLoop);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return done_ || firstError_ != nullptr; });
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers) w.join();
  }

  void runTask(int node) {
    try {
      runModuleTask(node);
      // Symmetric siblings are pure renames of this result; materialize
      // them before any parent (theirs or ours) can become ready.
      if (!symSiblingsOf_[node].empty()) instantiateSiblings(node);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) firstError_ = std::current_exception();
      stop_ = true;
      cv_.notify_all();
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (node == rootNode_) {
      done_ = true;
      stop_ = true;
    } else if (!stop_) {
      int parent = parentOf_[node];
      if (--pending_[parent] == 0) ready_.push_back(parent);
      for (int sib : symSiblingsOf_[node]) {
        int sibParent = parentOf_[sib];
        if (--pending_[sibParent] == 0) ready_.push_back(sibParent);
      }
    }
    cv_.notify_all();
  }

  void runModuleTask(int nodeIdx) {
    const ModuleNode& node = nodes_[nodeIdx];
    obs::TraceSpan span("module", node.name);
    std::vector<std::optional<IOIMC>> pool;
    std::vector<std::size_t> live;
    pool.reserve(node.ownModels.size() + node.childModules.size());
    for (std::size_t m : node.ownModels) {
      pool.emplace_back(std::move(models_[m]));
      live.push_back(pool.size() - 1);
    }
    for (std::size_t c : node.childModules) {
      pool.emplace_back(std::move(results_[c]));
      results_[c].reset();
      live.push_back(pool.size() - 1);
    }
    const bool properModule = live.size() > 1;
    properModule_[nodeIdx] = properModule ? 1 : 0;
    auto usedOutside = [this, nodeIdx](ioimc::ActionId a) {
      return usedOutsideSubtree(a, nodeIdx);
    };
    std::size_t merged =
        mergePool(pool, std::move(live), opts_, stats_[nodeIdx], usedOutside);
    if (properModule)
      moduleRecord_[nodeIdx] = ModuleResult{node.name,
                                            pool[merged]->numStates(),
                                            pool[merged]->numTransitions()};
    if (cache_ && properModule && nodeIdx != rootNode_)
      cache_->store(dft_, modules_[nodeIdx].root, *pool[merged],
                    subtreeSteps(nodeIdx));
    span.arg("states", pool[merged]->numStates());
    span.arg("transitions", pool[merged]->numTransitions());
    results_[nodeIdx].emplace(std::move(*pool[merged]));
  }

  /// Compose steps actually executed for this node's whole subtree (what a
  /// future cache hit on the module saves).
  std::size_t subtreeSteps(int root) const {
    std::size_t steps = 0;
    std::vector<int> pendingNodes{root};
    while (!pendingNodes.empty()) {
      int node = pendingNodes.back();
      pendingNodes.pop_back();
      steps += stats_[node].size();
      for (std::size_t c : nodes_[node].childModules)
        if (!spliced_[c]) pendingNodes.push_back(static_cast<int>(c));
    }
    return steps;
  }

  /// Concatenates per-node stats in the sequential engine's post-order.
  void collectStats(int root, CompositionStats& out) const {
    struct Frame {
      int node;
      std::size_t child = 0;
    };
    std::vector<Frame> stack{{root, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::vector<std::size_t>& children = nodes_[f.node].childModules;
      if (f.child < children.size()) {
        int child = static_cast<int>(children[f.child++]);
        if (spliced_[child]) {
          out.modules.push_back(spliceRecord_[child]);
          ++out.cachedModules;
          out.stepsSaved += spliceSavedSteps_[child];
        } else if (symmetric_[child]) {
          out.modules.push_back(symRecord_[child]);
          ++out.symmetricModulesReused;
          out.symmetrySavedSteps += subtreeSteps(symRepOf_[child]);
        } else {
          stack.push_back({child, 0});
        }
        continue;
      }
      out.steps.insert(out.steps.end(), stats_[f.node].begin(),
                       stats_[f.node].end());
      if (properModule_[f.node]) out.modules.push_back(moduleRecord_[f.node]);
      stack.pop_back();
    }
  }

  std::vector<std::optional<IOIMC>> models_;
  std::vector<ModuleNode> nodes_;
  std::vector<int> parentOf_;
  int rootNode_;
  const std::vector<dft::ModuleInfo>& modules_;
  const dft::Dft& dft_;
  const std::vector<std::vector<dft::ElementId>>& modelElements_;
  const std::vector<ActivationContext>& contexts_;
  const EngineOptions& opts_;
  ModuleCache* cache_;

  std::vector<std::vector<char>> inSubtree_;
  std::unordered_map<ioimc::ActionId, std::vector<std::uint32_t>> consumers_;

  std::vector<bool> spliced_;
  std::vector<ModuleResult> spliceRecord_;
  std::vector<std::size_t> spliceSavedSteps_;
  std::vector<std::optional<IOIMC>> results_;
  std::vector<std::vector<CompositionStep>> stats_;
  std::vector<ModuleResult> moduleRecord_;
  std::vector<char> properModule_;  ///< char: workers write concurrently
  std::vector<int> pending_;  ///< unfinished children; mutex_-guarded

  /// Symmetry plan (fixed before scheduling; only symRecord_ is written
  /// later, by the representative's worker, before any reader can run).
  std::vector<char> symmetric_;  ///< instantiated from a representative
  std::vector<int> symRepOf_;    ///< sibling -> its bucket representative
  std::vector<std::vector<int>> symSiblingsOf_;  ///< representative -> siblings
  std::vector<std::unordered_map<ioimc::ActionId, std::string>> symRenaming_;
  std::vector<ModuleResult> symRecord_;
  std::size_t symmetricBuckets_ = 0;

  std::size_t numTasks_ = 0;  ///< scheduled (non-spliced) module tasks
  /// The submitting request's trace context, re-established in workers.
  const std::uint64_t traceCtx_ = obs::currentTraceContext();
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<int> ready_;
  bool stop_ = false;
  bool done_ = false;
  std::exception_ptr firstError_;
};

}  // namespace

EngineResult composeCommunity(Community community, const dft::Dft& dft,
                              const EngineOptions& opts, ModuleCache* cache) {
  require(!community.models.empty(), "composeCommunity: empty community");

  // Remember the element sets and activation contexts before taking the
  // models (the symmetry planner consults both).
  std::vector<std::vector<dft::ElementId>> modelElements;
  for (const CommunityModel& m : community.models)
    modelElements.push_back(m.elements);
  const std::vector<ActivationContext> contexts =
      std::move(community.contexts);
  std::vector<std::optional<IOIMC>> slots;
  slots.reserve(community.models.size());
  for (CommunityModel& m : community.models)
    slots.emplace_back(std::move(m.model));

  auto finishResult = [&](EngineResult result) {
    obs::TraceSpan span("finalize");
    result.model = ioimc::hideAllOutputs(result.model);
    if (opts.collapseSinks)
      result.model = ioimc::collapseUnobservableSinks(result.model);
    result.model = ioimc::aggregate(result.model, opts.weak);
    span.arg("states", result.model.numStates());
    return result;
  };

  auto sequentialMerge = [&](std::vector<std::size_t> live) {
    CompositionStats stats;
    std::size_t finalIdx =
        mergePool(slots, std::move(live), opts, stats.steps, nullptr);
    foldPeaks(stats);
    return EngineResult{std::move(*slots[finalIdx]), std::move(stats)};
  };

  if (opts.strategy != CompositionStrategy::Modular) {
    std::vector<std::size_t> live(slots.size());
    for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;
    if (opts.strategy == CompositionStrategy::Declaration) {
      CompositionStats stats;
      const std::size_t originalCount = slots.size();
      std::size_t acc = 0;
      for (std::size_t i = 1; i < originalCount; ++i) {
        std::vector<std::size_t> pair{acc, i};
        acc = mergePool(slots, std::move(pair), opts, stats.steps, nullptr);
      }
      foldPeaks(stats);
      return finishResult(
          EngineResult{std::move(*slots[acc]), std::move(stats)});
    }
    return finishResult(sequentialMerge(std::move(live)));
  }

  // Build the module containment tree (modules sorted by size, so a
  // module's parent is the first later module that contains its root).
  std::optional<obs::TraceSpan> modularizeSpan;
  modularizeSpan.emplace("modularize");
  std::vector<dft::ModuleInfo> modules = dft::independentModules(dft);
  std::vector<ModuleNode> nodes(modules.size());
  std::vector<int> parent(modules.size(), -1);
  for (std::size_t i = 0; i < modules.size(); ++i) {
    nodes[i].name = dft.element(modules[i].root).name;
    for (std::size_t j = i + 1; j < modules.size(); ++j) {
      if (std::binary_search(modules[j].members.begin(),
                             modules[j].members.end(), modules[i].root) &&
          modules[j].root != modules[i].root) {
        parent[i] = static_cast<int>(j);
        break;
      }
    }
    if (parent[i] >= 0)
      nodes[parent[i]].childModules.push_back(i);
  }
  // The root module (whole tree) is the largest one containing top.
  // Trees where an element below the top is also watched by a gate
  // outside the top's dependency closure have no independent module
  // around the top at all; fall back to plain greedy composition then.
  int rootNode = -1;
  for (std::size_t i = 0; i < modules.size(); ++i)
    if (parent[i] < 0 && std::binary_search(modules[i].members.begin(),
                                            modules[i].members.end(),
                                            dft.top()))
      rootNode = static_cast<int>(i);
  if (rootNode < 0) {
    std::vector<std::size_t> live(slots.size());
    for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;
    return finishResult(sequentialMerge(std::move(live)));
  }
  // Any other parentless module hangs off the root (conservative).
  for (std::size_t i = 0; i < modules.size(); ++i)
    if (parent[i] < 0 && static_cast<int>(i) != rootNode) {
      parent[i] = rootNode;
      nodes[rootNode].childModules.push_back(i);
    }

  // Assign every community model to the smallest module containing all
  // the elements it involves.
  for (std::size_t m = 0; m < modelElements.size(); ++m) {
    int best = rootNode;
    for (std::size_t i = 0; i < modules.size(); ++i) {
      bool containsAll = std::all_of(
          modelElements[m].begin(), modelElements[m].end(),
          [&](dft::ElementId e) {
            return std::binary_search(modules[i].members.begin(),
                                      modules[i].members.end(), e);
          });
      if (containsAll) {
        best = static_cast<int>(i);
        break;  // modules are sorted by size: first hit is smallest
      }
    }
    nodes[best].ownModels.push_back(m);
  }

  unsigned numThreads = opts.numThreads;
  if (numThreads == 0) {
    numThreads = std::thread::hardware_concurrency();
    if (numThreads == 0) numThreads = 1;
  }
  modularizeSpan->arg("modules", modules.size());
  modularizeSpan.reset();

  ModularAggregator aggregator(std::move(slots), std::move(nodes), rootNode,
                               modules, std::move(parent), dft, modelElements,
                               contexts, opts, cache);
  auto [model, stats] = aggregator.run(numThreads);
  return finishResult(EngineResult{std::move(model), std::move(stats)});
}

}  // namespace imcdft::analysis
