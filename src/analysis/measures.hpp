#pragma once

#include <string>
#include <vector>

#include "analysis/converter.hpp"
#include "analysis/engine.hpp"
#include "analysis/extract.hpp"
#include "ctmdp/reachability.hpp"
#include "dft/model.hpp"

/// \file measures.hpp
/// The end-to-end facade: DFT in, reliability measures out.  This is the
/// public API the examples and benchmarks use.

namespace imcdft::analysis {

/// The state label the top-event monitor attaches to failed states.
inline constexpr const char* kDownLabel = "down";

struct AnalysisOptions {
  ConversionOptions conversion;
  EngineOptions engine;
};

/// Result of the compositional-aggregation pipeline, ready for measures.
struct DftAnalysis {
  /// The single aggregated I/O-IMC of the whole tree, all signals hidden.
  ioimc::IOIMC closedModel;
  CompositionStats stats;
  /// Extraction of the failure-absorbed model (for unreliability).
  Extraction absorbed;
  /// True when FDEP-induced simultaneity left real nondeterminism, in which
  /// case unreliability() throws and unreliabilityBounds() applies
  /// (Section 4.4 of the paper).
  bool nondeterministic = false;
  bool repairable = false;
};

/// Runs conversion, compositional aggregation and extraction.
DftAnalysis analyzeDft(const dft::Dft& dft, const AnalysisOptions& opts = {});

/// P(system failed by time t), the paper's headline measure.  Requires a
/// deterministic model; see unreliabilityBounds() otherwise.
double unreliability(const DftAnalysis& analysis, double missionTime);

/// Unreliability evaluated at several mission times.
std::vector<double> unreliabilityCurve(const DftAnalysis& analysis,
                                       const std::vector<double>& times);

/// [min, max] over schedulers, for nondeterministic models (also valid for
/// deterministic ones, where both bounds coincide).
ctmdp::ReachabilityBounds unreliabilityBounds(const DftAnalysis& analysis,
                                              double missionTime);

/// P(system is down at time t) for repairable models (Section 7.2).
double unavailability(const DftAnalysis& analysis, double t);

/// Long-run fraction of time the system is down (repairable models).
double steadyStateUnavailability(const DftAnalysis& analysis);

}  // namespace imcdft::analysis
