#pragma once

#include <string>
#include <vector>

#include "analysis/converter.hpp"
#include "analysis/engine.hpp"
#include "analysis/extract.hpp"
#include "analysis/report.hpp"
#include "analysis/request.hpp"
#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "dft/model.hpp"

/// \file measures.hpp
/// The original free-function facade: DFT in, reliability measures out.
///
/// \deprecated This surface is kept for compatibility and produces the
/// exact same numbers as before, but every function here is now a thin
/// wrapper over a one-shot Analyzer session (analysis/analyzer.hpp).  New
/// code should create an Analyzer and submit AnalysisRequests: a session
/// amortizes composition across measures, time grids and scenario variants
/// through its whole-tree and per-module caches, none of which these free
/// functions can offer.  See README.md for the migration table.

namespace imcdft::analysis {

/// Runs conversion, compositional aggregation and extraction.
/// \deprecated Equivalent to Analyzer().analyze(AnalysisRequest::forDft(
/// dft).withOptions(opts)) — use the session API to get caching.
DftAnalysis analyzeDft(const dft::Dft& dft, const AnalysisOptions& opts = {});

/// P(system failed by time t), the paper's headline measure.  Requires a
/// deterministic model; see unreliabilityBounds() otherwise.
/// \deprecated Prefer MeasureSpec::unreliability on an Analyzer request.
double unreliability(const DftAnalysis& analysis, double missionTime);

/// Unreliability evaluated at several mission times.  \p transient carries
/// the uniformization tolerances and, for budgeted requests, the
/// cancellation token checkpointed on every sweep step.
/// \deprecated Prefer MeasureSpec::unreliability with a time grid.
std::vector<double> unreliabilityCurve(
    const DftAnalysis& analysis, const std::vector<double>& times,
    const ctmc::TransientOptions& transient = {});

/// [min, max] over schedulers, for nondeterministic models (also valid for
/// deterministic ones, where both bounds coincide).
/// \deprecated Prefer MeasureSpec::unreliabilityBounds.
ctmdp::ReachabilityBounds unreliabilityBounds(const DftAnalysis& analysis,
                                              double missionTime);

/// P(system is down at time t) for repairable models (Section 7.2).
/// \deprecated Prefer MeasureSpec::unavailability.
double unavailability(const DftAnalysis& analysis, double t,
                      const ctmc::TransientOptions& transient = {});

/// Long-run fraction of time the system is down (repairable models).
/// \deprecated Prefer MeasureSpec::steadyStateUnavailability.
double steadyStateUnavailability(const DftAnalysis& analysis);

/// Extraction of the *non-absorbed* model, memoized on the analysis
/// (shared by the unavailability measures; throws on nondeterminism).
/// The memoization writes DftAnalysis::fullMemo without synchronization;
/// see the note there before sharing one analysis across threads.
const Extraction& fullExtraction(const DftAnalysis& analysis);

}  // namespace imcdft::analysis
