#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dft/model.hpp"
#include "ioimc/model.hpp"

/// \file symmetry.hpp
/// Shared machinery of the symmetry reduction (the paper's Section 5.2
/// reuse-by-renaming, automated): lifting an element-name substitution to
/// the signal-name level, and validating that the induced ActionId map is
/// safe to apply to an aggregated module I/O-IMC.
///
/// Two modules with equal dft::moduleShape() keys are isomorphic under the
/// index-wise name substitution sigma.  The conversion (analysis/converter)
/// derives every community action name from element names through the five
/// signal constructors of semantics/signals.hpp, so sigma lifts to a map of
/// action names; applying ioimc::renameActions with that map to the
/// representative's aggregated model yields the sibling's aggregated model.
/// Both consumers of the lift validate it before use:
///
///  * the engine (same-request symmetry) additionally requires the id map
///    to be *order-preserving*; because every ordering decision in
///    compose/hide/quotient depends on ActionIds only through their
///    relative order (never their raw values), an order-preserving rename
///    makes the instantiated sibling bitwise identical to what aggregating
///    the sibling itself would have produced — the foundation of the
///    "--symmetry on is bit-identical to --symmetry off" guarantee;
///  * the Analyzer's shape-keyed module cache (cross-request reuse) only
///    requires injectivity and completeness; a hit is then exact up to
///    action renaming (the spliced model is isomorphic, all measures are
///    mathematically equal).
///
/// Every check failure makes the caller fall back to aggregating the
/// module normally, so an ambiguous lift can cost performance but never
/// correctness.

namespace imcdft::analysis {

/// Lifts the element-name substitution oldNames[i] -> newNames[i] to the
/// signal-name level: for every element, its firing / isolated-firing /
/// activation / repair signals, and for every spare-like gate, the claim
/// signals of its slots (primary and spares).  \p module is the extracted
/// module sub-DFT of the *old* side, whose element ids index both name
/// vectors.  Returns std::nullopt when the lift is ambiguous, i.e. two
/// distinct signals collapse to the same concrete string (possible only
/// with adversarial element names such as "i_X" making "f_" + "i_X" equal
/// "fi_" + "X").
std::optional<std::unordered_map<std::string, std::string>>
liftElementRenaming(const dft::Dft& module,
                    const std::vector<std::string>& oldNames,
                    const std::vector<std::string>& newNames);

/// One validated (old, new) ActionId pair of a module renaming.
using ActionIdPair = std::pair<ioimc::ActionId, ioimc::ActionId>;

/// Sorts \p pairs by old id and reports whether the map is strictly
/// order-preserving (new ids strictly increase with old ids; duplicates of
/// either side fail).  Order preservation implies injectivity and is what
/// makes a renamed instantiation bitwise identical to a from-scratch
/// aggregation (see the file comment).
bool orderPreserving(std::vector<ActionIdPair>& pairs);

/// Builds the ActionId -> new-name renaming of \p model induced by
/// \p nameMap (a lift produced by liftElementRenaming), as the Analyzer's
/// shape-keyed module cache applies to a stored model.  Every non-tau
/// action of the model's signature must be covered by the lift, every
/// target name must already be interned (the sibling's own community
/// interned them during conversion), and the resulting id map must be
/// injective.  (The engine's same-request reuse performs its stricter
/// order-preserving validation over the whole subtree action universe
/// instead, before any model exists — see engine.cpp.)  Returns
/// std::nullopt when any condition fails; identity entries are omitted
/// from the result.
std::optional<std::unordered_map<ioimc::ActionId, std::string>>
modelRenaming(const ioimc::IOIMC& model,
              const std::unordered_map<std::string, std::string>& nameMap);

}  // namespace imcdft::analysis
