#pragma once

#include "ctmc/ctmc.hpp"
#include "ctmdp/ctmdp.hpp"
#include "ioimc/model.hpp"

/// \file extract.hpp
/// Step 6 of the paper's algorithm: read the single remaining I/O-IMC as a
/// CTMC — or, when FDEP-induced nondeterminism survives (Section 4.4), as a
/// CTMDP.  The model must be fully hidden: only internal and Markovian
/// transitions may remain (the engine guarantees this; leftover input or
/// output transitions indicate a wiring bug and raise ModelError).
///
/// Internal transitions take no time (maximal progress), so states that
/// have them are *vanishing*.  When every vanishing state has a unique
/// successor the model is deterministic and vanishing states are eliminated
/// by forwarding; otherwise the vanishing choices become the CTMDP's
/// immediate nondeterminism.

namespace imcdft::analysis {

struct Extraction {
  bool deterministic = false;
  ctmc::Ctmc chain;   ///< filled when deterministic
  ctmdp::Ctmdp mdp;   ///< always filled (degenerate when deterministic)
};

/// Extracts from a closed model.  \p goalLabel marks the CTMDP goal states
/// (they must already be absorbing for the CTMDP to validate; use
/// ioimc::makeLabelAbsorbing first for reachability measures).
Extraction extract(const ioimc::IOIMC& closed, const std::string& goalLabel);

}  // namespace imcdft::analysis
