#include "analysis/extract.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imcdft::analysis {

using ioimc::IOIMC;
using ioimc::StateId;

Extraction extract(const IOIMC& closed, const std::string& goalLabel) {
  for (StateId s = 0; s < closed.numStates(); ++s)
    for (const auto& t : closed.interactive(s))
      require(closed.signature().isInternal(t.action),
              "extract: model still has visible transition on action '" +
                  closed.actionName(t.action) +
                  "' — the community was not fully composed/hidden");

  const std::size_t n = closed.numStates();
  std::vector<std::vector<StateId>> tauSucc(n);
  for (StateId s = 0; s < n; ++s) {
    for (const auto& t : closed.interactive(s)) tauSucc[s].push_back(t.to);
    std::sort(tauSucc[s].begin(), tauSucc[s].end());
    tauSucc[s].erase(std::unique(tauSucc[s].begin(), tauSucc[s].end()),
                     tauSucc[s].end());
  }
  auto vanishing = [&](StateId s) { return !tauSucc[s].empty(); };

  Extraction out;
  out.deterministic = true;
  for (StateId s = 0; s < n; ++s)
    if (tauSucc[s].size() > 1) out.deterministic = false;

  const int goalIdx = closed.labelIndex(goalLabel);

  // --- CTMDP view: keep every state; choices at vanishing states. ---
  ctmdp::Ctmdp& mdp = out.mdp;
  mdp.initial = closed.initial();
  mdp.rates.resize(n);
  mdp.choices.resize(n);
  mdp.goal.assign(n, false);
  for (StateId s = 0; s < n; ++s) {
    mdp.goal[s] = closed.hasLabel(s, goalIdx);
    if (vanishing(s)) {
      mdp.choices[s] = tauSucc[s];  // maximal progress: rates are dead here
    } else {
      for (const auto& t : closed.markovian(s))
        mdp.rates[s].push_back({t.rate, t.to});
    }
  }

  if (!out.deterministic) return out;

  // --- Deterministic: eliminate vanishing states by forwarding. ---
  std::vector<StateId> resolved(n, static_cast<StateId>(-1));
  for (StateId s = 0; s < n; ++s) {
    if (resolved[s] != static_cast<StateId>(-1)) continue;
    std::vector<StateId> path;
    StateId cur = s;
    while (vanishing(cur) && resolved[cur] == static_cast<StateId>(-1)) {
      path.push_back(cur);
      cur = tauSucc[cur].front();
      require(std::find(path.begin(), path.end(), cur) == path.end(),
              "extract: divergent internal cycle (time-lock)");
    }
    StateId target = vanishing(cur) ? resolved[cur] : cur;
    for (StateId p : path) resolved[p] = target;
    resolved[s] = target;
  }

  std::vector<StateId> remap(n, static_cast<StateId>(-1));
  ctmc::Ctmc& chain = out.chain;
  chain.labelNames = closed.labelNames();
  for (StateId s = 0; s < n; ++s) {
    if (vanishing(s)) continue;
    remap[s] = static_cast<StateId>(chain.rates.size());
    chain.rates.emplace_back();
    chain.labelMasks.push_back(closed.labelMask(s));
  }
  for (StateId s = 0; s < n; ++s) {
    if (vanishing(s)) continue;
    for (const auto& t : closed.markovian(s))
      chain.rates[remap[s]].push_back({t.rate, remap[resolved[t.to]]});
  }
  chain.initial = remap[resolved[closed.initial()]];
  chain.validate();
  return out;
}

}  // namespace imcdft::analysis
