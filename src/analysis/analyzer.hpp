#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/request.hpp"
#include "dft/modules.hpp"
#include "ioimc/model.hpp"

/// \file analyzer.hpp
/// The session-oriented public analysis API.
///
/// An Analyzer owns the paper's whole pipeline (convert -> compose -> hide
/// -> aggregate -> extract -> solve) behind a typed request/response
/// surface, and amortizes the expensive composition work across requests
/// through two caches:
///
///  * a whole-tree cache keyed by the canonical tree fingerprint plus the
///    conversion/engine options — a repeated request is a pure lookup;
///  * a per-module cache of aggregated independent-module I/O-IMCs — a
///    batch over N scenario variants that share modules only re-composes
///    what changed.  With EngineOptions::symmetry enabled the module cache
///    keys on the *rename-invariant* shape (dft::moduleShape) and records
///    the concrete-name basis of the stored model; a later module of the
///    same shape but different names hits too and is instantiated via
///    ioimc::renameActions, so a batch over N symmetric variants
///    aggregates each shape once.  With symmetry disabled the cache keys
///    on the exact module fingerprint (dft::moduleKey) as before.
///
/// The module cache mirrors the nested-reuse idea of DIFTree-style modular
/// analysis (Section 5.2 of the paper): an independent module's aggregated
/// model is context-free as long as the module is always active, so it can
/// be spliced into any later community that contains the same module.  All
/// requests of a session intern action names in one shared symbol table to
/// make that splicing sound.
///
/// Analyzer is not thread-safe; use one session per thread.

namespace imcdft::analysis {

struct AnalyzerOptions {
  /// Serve repeated identical (tree, options) requests from cache.
  bool cacheTrees = true;
  /// Reuse aggregated independent-module models across requests (Modular
  /// strategy only).  Also gates the numeric path's solved-chain and
  /// per-module curve caches (they are module-level caches too).
  bool cacheModules = true;
  /// Crude bounds: when a cache grows past its limit it is cleared whole.
  std::size_t maxCachedTrees = 256;
  std::size_t maxCachedModules = 1024;
  /// Numeric-path curve cache entries (one per solved chain x time grid).
  std::size_t maxCachedCurves = 4096;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions opts = {});
  ~Analyzer();
  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Serves one request: resolves the DFT source, runs (or looks up) the
  /// pipeline, evaluates every requested measure.  Model-level
  /// incompatibilities (a nondeterministic model asked for a point
  /// unreliability, unavailability of an irreparable tree) surface as
  /// diagnostics and per-measure errors, not exceptions; exceptions are
  /// reserved for malformed input (parse errors, unsupported trees).
  AnalysisReport analyze(const AnalysisRequest& request);

  /// Serves the requests in order against the shared session caches and
  /// returns one report each.  Scenario variants that share independent
  /// modules only re-compose what changed.
  std::vector<AnalysisReport> analyzeBatch(
      const std::vector<AnalysisRequest>& requests);

  /// Session-wide cache counters (sums over all analyze() calls).
  const CacheStats& cacheStats() const { return sessionStats_; }

  /// Number of entries currently cached.
  std::size_t cachedTreeCount() const { return trees_.size(); }
  std::size_t cachedModuleCount() const { return modules_.size(); }
  /// Numeric-path caches: solved per-module CTMCs and their unreliability
  /// curves (see analysis/static_combine.hpp).
  std::size_t cachedChainCount() const { return chains_.size(); }
  std::size_t cachedCurveCount() const { return curves_.size(); }

  void clearCache();

  /// The session symbol table every request's models intern into.
  const ioimc::SymbolTablePtr& symbols() const { return symbols_; }

 private:
  class SessionModuleCache;
  struct ModuleEntry {
    ioimc::IOIMC model;
    std::size_t steps = 0;
    /// Concrete element names behind the shape's indices (shape-keyed
    /// entries only): a same-shape module with different names renames the
    /// stored model from this basis at lookup.
    std::vector<std::string> names;
  };

  std::shared_ptr<const DftAnalysis> runPipeline(const dft::Dft& tree,
                                                 const AnalysisOptions& opts,
                                                 PhaseTimings& timings,
                                                 CacheStats& requestStats);

  /// The static-combination numeric path: per-module pipelines + BDD
  /// structure function over the frontier of \p layer (which must be
  /// eligible).  Returns null — after appending a Warning — when a module
  /// turns out nondeterministic; the caller then falls back to
  /// runPipeline.
  std::shared_ptr<const DftAnalysis> runNumericPipeline(
      const dft::Dft& tree, const dft::StaticLayer& layer,
      const AnalysisOptions& opts, PhaseTimings& timings,
      CacheStats& requestStats, std::vector<Diagnostic>& diagnostics);

  /// Serves a numeric-path chain's curve from the session curve cache
  /// (keyed chain fingerprint x time grid), solving on miss.
  std::vector<double> cachedCurve(const StaticCombination& combo,
                                  std::size_t chainIndex,
                                  const std::vector<double>& times);

  AnalyzerOptions opts_;
  ioimc::SymbolTablePtr symbols_;
  CacheStats sessionStats_;
  std::unordered_map<std::string, std::shared_ptr<const DftAnalysis>> trees_;
  /// Guards modules_: the engine's parallel module aggregation stores
  /// freshly aggregated modules from its worker threads (the rest of the
  /// Analyzer stays single-threaded-per-session).
  std::mutex modulesMutex_;
  std::unordered_map<std::string, ModuleEntry> modules_;
  /// Numeric-path solved chains: module fingerprint (shape or exact, plus
  /// engine options) -> whole per-module pipeline result.  Only touched
  /// from the session thread.
  struct ChainEntry {
    std::shared_ptr<const DftAnalysis> analysis;
    std::size_t steps = 0;  ///< compose steps a hit saves
  };
  std::unordered_map<std::string, ChainEntry> chains_;
  /// Numeric-path curves: chain fingerprint x time grid -> unreliability
  /// curve ("symmetric siblings get one curve for free" across requests).
  std::unordered_map<std::string, std::vector<double>> curves_;
};

}  // namespace imcdft::analysis
