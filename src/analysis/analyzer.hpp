#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/request.hpp"
#include "common/lru_map.hpp"
#include "dft/modules.hpp"
#include "ioimc/model.hpp"

/// \file analyzer.hpp
/// The session-oriented public analysis API.
///
/// An Analyzer owns the paper's whole pipeline (convert -> compose -> hide
/// -> aggregate -> extract -> solve) behind a typed request/response
/// surface, and amortizes the expensive composition work across requests
/// through two caches:
///
///  * a whole-tree cache keyed by the canonical tree fingerprint plus the
///    conversion/engine options — a repeated request is a pure lookup;
///  * a per-module cache of aggregated independent-module I/O-IMCs — a
///    batch over N scenario variants that share modules only re-composes
///    what changed.  With EngineOptions::symmetry enabled the module cache
///    keys on the *rename-invariant* shape (dft::moduleShape) and records
///    the concrete-name basis of the stored model; a later module of the
///    same shape but different names hits too and is instantiated via
///    ioimc::renameActions, so a batch over N symmetric variants
///    aggregates each shape once.  With symmetry disabled the cache keys
///    on the exact module fingerprint (dft::moduleKey) as before.
///
/// The module cache mirrors the nested-reuse idea of DIFTree-style modular
/// analysis (Section 5.2 of the paper): an independent module's aggregated
/// model is context-free as long as the module is always active, so it can
/// be spliced into any later community that contains the same module.  All
/// requests of a session intern action names in one shared symbol table to
/// make that splicing sound.
///
/// Concurrency.  One Analyzer serves any number of concurrent sessions:
/// every cache is an internally synchronized LRU map (common/lru_map.hpp,
/// the module and curve caches sharded by key hash), the session symbol
/// table is itself synchronized, and cached DftAnalysis objects are
/// immutable once published (the one lazily computed field, fullMemo, is
/// installed with a first-write-wins CAS — see measures.cpp).  Concurrent
/// requests for the *same* fingerprint dedup in flight: the first becomes
/// the leader and runs the aggregation, later arrivals block on a shared
/// future and receive the leader's (identical) result, counted in
/// CacheStats::inflightJoins.  N identical concurrent requests therefore
/// perform exactly one aggregation.
///
/// Persistence.  When EngineOptions::storeDir names a directory, the
/// session reads aggregated whole-tree and module quotients plus solved
/// numeric-path curves from the content-addressed on-disk store
/// (store/quotient_store.hpp) before aggregating, and publishes fresh
/// results back.  Store records are keyed by the same canonical
/// fingerprints as the in-memory caches and deserialize by action *name*
/// into the session symbol table, so a store hit is bitwise identical to
/// the cold aggregation it replaces.  Store failures are soft: they count
/// as misses, attach Warning diagnostics, and never change an answer.

namespace imcdft {
class CancelToken;  // common/cancel.hpp
}

namespace imcdft::store {
class QuotientStore;  // store/quotient_store.hpp
}

namespace imcdft::analysis {

struct AnalyzerOptions {
  /// Serve repeated identical (tree, options) requests from cache.
  bool cacheTrees = true;
  /// Reuse aggregated independent-module models across requests (Modular
  /// strategy only).  Also gates the numeric path's solved-chain and
  /// per-module curve caches (they are module-level caches too) and the
  /// persistent store's module/curve record traffic.
  bool cacheModules = true;
  /// Capacity bounds: least-recently-used entries are evicted once a cache
  /// grows past its limit (counted in CacheStats::*Evictions); 0 means
  /// unbounded.
  std::size_t maxCachedTrees = 256;
  std::size_t maxCachedModules = 1024;
  /// Numeric-path curve cache entries (one per solved chain x time grid).
  std::size_t maxCachedCurves = 4096;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions opts = {});
  ~Analyzer();
  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Serves one request: resolves the DFT source, runs (or looks up) the
  /// pipeline, evaluates every requested measure.  Model-level
  /// incompatibilities (a nondeterministic model asked for a point
  /// unreliability, unavailability of an irreparable tree) surface as
  /// diagnostics and per-measure errors, not exceptions; exceptions are
  /// reserved for malformed input (parse errors, unsupported trees).
  ///
  /// Safe to call from any number of threads concurrently; see the file
  /// comment for the concurrency contract.
  AnalysisReport analyze(const AnalysisRequest& request);

  /// Serves the requests in order against the shared session caches and
  /// returns one report each.  Scenario variants that share independent
  /// modules only re-compose what changed.
  std::vector<AnalysisReport> analyzeBatch(
      const std::vector<AnalysisRequest>& requests);

  /// Concurrent batch: serves the requests on \p workers threads over the
  /// shared session caches and returns the reports in request order.
  /// 0 picks std::thread::hardware_concurrency().  Identical requests
  /// dedup in flight (one aggregation, many joiners).  The first
  /// exception, if any, is rethrown after all workers finish.
  std::vector<AnalysisReport> analyzeBatch(
      const std::vector<AnalysisRequest>& requests, unsigned workers);

  /// Session-wide cache counters (sums over all analyze() calls so far).
  CacheStats cacheStats() const;

  /// Number of entries currently cached.
  std::size_t cachedTreeCount() const { return trees_.size(); }
  std::size_t cachedModuleCount() const { return modules_.size(); }
  /// Numeric-path caches: solved per-module CTMCs and their unreliability
  /// curves (see analysis/static_combine.hpp).
  std::size_t cachedChainCount() const { return chains_.size(); }
  std::size_t cachedCurveCount() const { return curves_.size(); }

  void clearCache();

  /// The session symbol table every request's models intern into.
  const ioimc::SymbolTablePtr& symbols() const { return symbols_; }

 private:
  class SessionModuleCache;
  struct ModuleEntry {
    ioimc::IOIMC model;
    std::size_t steps = 0;
    /// Concrete element names behind the shape's indices (shape-keyed
    /// entries only): a same-shape module with different names renames the
    /// stored model from this basis at lookup.
    std::vector<std::string> names;
  };
  /// Numeric-path solved chain: module fingerprint (shape or exact, plus
  /// engine options) -> whole per-module pipeline result.
  struct ChainEntry {
    std::shared_ptr<const DftAnalysis> analysis;
    std::size_t steps = 0;  ///< compose steps a hit saves
  };

  std::shared_ptr<const DftAnalysis> runPipeline(
      const dft::Dft& tree, const AnalysisOptions& opts,
      PhaseTimings& timings, CacheStats& requestStats,
      const std::shared_ptr<store::QuotientStore>& store);

  /// The static-combination numeric path: per-module pipelines + BDD
  /// structure function over the frontier of \p layer (which must be
  /// eligible).  Returns null — after appending a Warning — when a module
  /// turns out nondeterministic; the caller then falls back to
  /// runPipeline.
  std::shared_ptr<const DftAnalysis> runNumericPipeline(
      const dft::Dft& tree, const dft::StaticLayer& layer,
      const AnalysisOptions& opts, PhaseTimings& timings,
      CacheStats& requestStats, std::vector<Diagnostic>& diagnostics,
      const std::shared_ptr<store::QuotientStore>& store);

  /// Serves a numeric-path chain's curve from the session curve cache
  /// (keyed chain fingerprint x time grid), then from the persistent
  /// store, solving on a double miss (and publishing the fresh curve).
  /// \p cancel (may be null) is checkpointed during the solve; a budget
  /// trip throws before anything is cached, so caches stay consistent.
  std::vector<double> cachedCurve(
      const StaticCombination& combo, std::size_t chainIndex,
      const std::vector<double>& times,
      const std::shared_ptr<store::QuotientStore>& store, CacheStats& stats,
      const CancelToken* cancel = nullptr);

  /// Resolves (and memoizes) the store handle for \p dir; an empty dir
  /// returns null.  A directory that cannot be opened warns once (on the
  /// first request that touches it) and is remembered as disabled.
  std::shared_ptr<store::QuotientStore> openStore(
      const std::string& dir, std::vector<Diagnostic>& diagnostics);

  AnalyzerOptions opts_;
  ioimc::SymbolTablePtr symbols_;

  mutable std::mutex statsMutex_;
  CacheStats sessionStats_;

  /// The four session caches; all internally synchronized LRU maps.
  /// trees_/chains_ are only touched from request-serving threads;
  /// modules_ is also stored into from the engine's worker threads, and
  /// curves_ takes measure-evaluation traffic from every session — both
  /// are sharded to keep concurrent sessions off one mutex.
  LruMap<std::shared_ptr<const DftAnalysis>> trees_;
  ShardedLruMap<std::shared_ptr<const ModuleEntry>> modules_;
  LruMap<ChainEntry> chains_;
  ShardedLruMap<std::vector<double>> curves_;

  /// In-flight dedup: fingerprint -> the future every concurrent identical
  /// request joins on.  Entries live only while a leader is aggregating.
  std::mutex inflightMutex_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const DftAnalysis>>>
      inflight_;

  /// Persistent stores by directory (null = directory unusable, warned).
  std::mutex storesMutex_;
  std::unordered_map<std::string, std::shared_ptr<store::QuotientStore>>
      stores_;
};

}  // namespace imcdft::analysis
