#include "analysis/static_combine.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "ctmc/transient.hpp"
#include "dft/builder.hpp"

namespace imcdft::analysis {

dft::Dft buildLayerDft(const dft::Dft& dft, const dft::StaticLayer& layer) {
  require(layer.eligible, "buildLayerDft: layer is not eligible");
  dft::DftBuilder b;
  // One pseudo basic event per frontier module; the rate is never used
  // (probabilities are substituted directly), only the structure matters.
  for (dft::ElementId root : layer.moduleRoots)
    b.basicEvent(dft.element(root).name, 1.0);
  // Layer gates in input-before-gate order.
  std::vector<char> inLayer(dft.size(), 0);
  for (dft::ElementId g : layer.gates) inLayer[g] = 1;
  for (dft::ElementId id : dft.topologicalOrder()) {
    if (!inLayer[id]) continue;
    const dft::Element& e = dft.element(id);
    std::vector<std::string> inputs;
    inputs.reserve(e.inputs.size());
    for (dft::ElementId in : e.inputs) inputs.push_back(dft.element(in).name);
    switch (e.type) {
      case dft::ElementType::And:
        b.andGate(e.name, inputs);
        break;
      case dft::ElementType::Or:
        b.orGate(e.name, inputs);
        break;
      case dft::ElementType::Voting:
        b.votingGate(e.name, e.votingThreshold, inputs);
        break;
      default:
        throw ModelError("buildLayerDft: layer gate '" + e.name +
                         "' is not static");
    }
  }
  b.top(dft.element(dft.top()).name);
  return b.build();
}

StaticCombination::StaticCombination(const dft::Dft& tree,
                                     const dft::StaticLayer& layer,
                                     std::vector<SolvedChain> chains,
                                     std::vector<NumericModule> modules)
    : StaticCombination(buildLayerDft(tree, layer), layer.gates.size(),
                        std::move(chains), std::move(modules)) {
  require(modules_.size() == layer.moduleRoots.size(),
          "StaticCombination: one NumericModule per frontier root expected");
}

StaticCombination::StaticCombination(dft::Dft layerDft,
                                     std::size_t layerGateCount,
                                     std::vector<SolvedChain> chains,
                                     std::vector<NumericModule> modules)
    : structure_(layerDft),
      layerGateCount_(layerGateCount),
      chains_(std::move(chains)),
      modules_(std::move(modules)) {
  // Bind the mini-DFT's basic events (declared in frontier order) to the
  // chain of the equally-named module.
  layerSize_ = layerDft.size();
  std::unordered_map<std::string, std::size_t> chainOfName;
  for (const NumericModule& m : modules_) {
    require(m.chain < chains_.size(), "StaticCombination: chain out of range");
    chainOfName.emplace(m.name, m.chain);
  }
  for (dft::ElementId id = 0; id < layerDft.size(); ++id) {
    if (!layerDft.element(id).isBasicEvent()) continue;
    auto it = chainOfName.find(layerDft.element(id).name);
    require(it != chainOfName.end(),
            "StaticCombination: frontier module without a solved chain");
    binding_.emplace_back(id, it->second);
  }
}

std::vector<double> StaticCombination::solveCurve(
    std::size_t index, const std::vector<double>& times,
    const CancelToken* cancel) const {
  // Module chains are tiny, so the curves are solved tighter than the
  // composition path's default 1e-10 truncation: the structure function
  // combines several per-module errors, and the E14 agreement budget
  // (1e-9 relative with an absolute floor at the uniformization
  // tolerance) should be spent on the composition side, not here.
  ctmc::TransientOptions opts;
  opts.epsilon = 1e-12;
  opts.cancel = cancel;
  return ctmc::labelCurve(chains_[index].analysis->absorbed.chain, kDownLabel,
                          times, opts);
}

std::vector<double> StaticCombination::evaluate(
    const std::vector<double>& times, const CurveFn& curveFor) const {
  std::vector<std::vector<double>> curves(chains_.size());
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    curves[i] = curveFor ? curveFor(i, times) : solveCurve(i, times);
    require(curves[i].size() == times.size(),
            "StaticCombination: curve length mismatch");
  }
  std::vector<double> out;
  out.reserve(times.size());
  std::vector<double> probs(layerSize_, 0.0);
  for (std::size_t j = 0; j < times.size(); ++j) {
    for (const auto& [beId, chain] : binding_) probs[beId] = curves[chain][j];
    out.push_back(structure_.probability(probs));
  }
  return out;
}

std::string StaticCombination::summary() const {
  return "static combination: layer of " + std::to_string(layerGateCount_) +
         " gate(s) over " + std::to_string(modules_.size()) +
         " independent module(s), " + std::to_string(chains_.size()) +
         " distinct curve(s) solved numerically";
}

}  // namespace imcdft::analysis
