#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/converter.hpp"
#include "analysis/engine.hpp"
#include "dft/model.hpp"

/// \file request.hpp
/// The typed request side of the Analyzer session API: what to analyze
/// (a DFT given in memory, as Galileo text, or as a file path), which
/// measures to evaluate (each with its own time grid), and the
/// conversion/engine knobs to use.  See analysis/analyzer.hpp for the
/// session object that consumes requests and analysis/report.hpp for the
/// response side.

namespace imcdft::analysis {

/// Knobs of the conversion/composition pipeline (shared by the old
/// analyzeDft facade and the Analyzer).
struct AnalysisOptions {
  ConversionOptions conversion;
  EngineOptions engine;
};

enum class MeasureKind : std::uint8_t {
  /// P(system failed by t) over the request's time grid.  On
  /// nondeterministic models the Analyzer substitutes scheduler bounds and
  /// attaches a warning diagnostic instead of failing.
  Unreliability,
  /// [min, max] over schedulers at each grid point (valid for
  /// deterministic models too, where the bounds coincide).
  UnreliabilityBounds,
  /// P(system down at t) over the grid; repairable deterministic models.
  Unavailability,
  /// Long-run fraction of time the system is down; repairable models.
  SteadyStateUnavailability,
  /// Mean time to failure (expected first hitting time of the top event).
  Mttf,
};

/// Resource budget of one request (see common/cancel.hpp for the token it
/// becomes).  All limits default to 0 = unlimited.  A budget never changes
/// an answer — only whether the request completes: a tripped request
/// unwinds with a typed BudgetExceeded (pipeline phase) or degrades to a
/// partial report with a Warning diagnostic (measure phase), and a re-run
/// with a larger budget is bitwise identical to an unbudgeted run.
struct Budget {
  /// Wall-clock deadline in seconds, measured from the start of analyze().
  double deadlineSeconds = 0.0;
  /// Cap on the live states of any single pipeline step (compose product,
  /// on-the-fly live region, refinement input).
  std::size_t maxLiveStates = 0;
  /// Rough memory cap over a step's live model (states and transitions
  /// charged at nominal per-item sizes; a coarse runaway guard).
  std::size_t maxMemoryBytes = 0;
  /// Deterministic cap: trip at exactly the Nth cancellation checkpoint.
  /// A test hook — production budgets use the limits above.
  std::uint64_t maxCheckpoints = 0;

  bool limited() const {
    return deadlineSeconds > 0.0 || maxLiveStates > 0 || maxMemoryBytes > 0 ||
           maxCheckpoints > 0;
  }
};

/// One requested measure.  Time-dependent kinds carry a grid of mission
/// times; the scalar kinds ignore it.
struct MeasureSpec {
  MeasureKind kind = MeasureKind::Unreliability;
  std::vector<double> times;

  static MeasureSpec unreliability(std::vector<double> times) {
    return {MeasureKind::Unreliability, std::move(times)};
  }
  static MeasureSpec unreliabilityBounds(std::vector<double> times) {
    return {MeasureKind::UnreliabilityBounds, std::move(times)};
  }
  static MeasureSpec unavailability(std::vector<double> times) {
    return {MeasureKind::Unavailability, std::move(times)};
  }
  static MeasureSpec steadyStateUnavailability() {
    return {MeasureKind::SteadyStateUnavailability, {}};
  }
  static MeasureSpec mttf() { return {MeasureKind::Mttf, {}}; }
};

/// Human-readable name of a measure kind (reports and CLI output).
const char* measureKindName(MeasureKind kind);

/// A self-contained unit of work for the Analyzer: one DFT plus any number
/// of measures.  Build with one of the factories, then chain measure()
/// calls:
///
/// \code
///   AnalysisRequest req = AnalysisRequest::forDft(tree, "baseline")
///                             .measure(MeasureSpec::unreliability({1.0}))
///                             .measure(MeasureSpec::mttf());
/// \endcode
struct AnalysisRequest {
  enum class Source : std::uint8_t { InMemory, GalileoText, GalileoFile };

  Source source = Source::InMemory;
  /// Filled for InMemory requests.
  std::optional<dft::Dft> tree;
  /// Galileo text (GalileoText) or file path (GalileoFile).
  std::string galileo;
  /// Scenario name echoed in the report (batch bookkeeping).
  std::string label;
  std::vector<MeasureSpec> measures;
  AnalysisOptions options;
  /// Resource budget (deadline / live-state / memory caps); default
  /// unlimited.  Deliberately not part of any cache key except the
  /// in-flight dedup key: budgets never change answers.
  Budget budget;
  /// Stable request/trace id echoed in the report, stamped on every span
  /// this request emits (the Chrome trace "pid") and printed in serve-mode
  /// slot headers and slow-request log lines, so a trace file, a
  /// diagnostic and a serve summary row can be joined.  0 = let the
  /// Analyzer assign the next id from a process-wide counter.
  std::uint64_t requestId = 0;

  static AnalysisRequest forDft(dft::Dft tree, std::string label = "") {
    AnalysisRequest req;
    req.source = Source::InMemory;
    req.tree = std::move(tree);
    req.label = std::move(label);
    return req;
  }
  static AnalysisRequest forGalileo(std::string text, std::string label = "") {
    AnalysisRequest req;
    req.source = Source::GalileoText;
    req.galileo = std::move(text);
    req.label = std::move(label);
    return req;
  }
  static AnalysisRequest forGalileoFile(std::string path,
                                        std::string label = "") {
    AnalysisRequest req;
    req.source = Source::GalileoFile;
    req.galileo = std::move(path);
    req.label = std::move(label);
    return req;
  }

  AnalysisRequest& measure(MeasureSpec spec) {
    measures.push_back(std::move(spec));
    return *this;
  }
  AnalysisRequest& withOptions(AnalysisOptions opts) {
    options = std::move(opts);
    return *this;
  }
  AnalysisRequest& withBudget(Budget b) {
    budget = b;
    return *this;
  }
  AnalysisRequest& withRequestId(std::uint64_t id) {
    requestId = id;
    return *this;
  }
};

}  // namespace imcdft::analysis
