#include "analysis/symmetry.hpp"

#include <algorithm>

#include "semantics/signals.hpp"

namespace imcdft::analysis {

std::optional<std::unordered_map<std::string, std::string>>
liftElementRenaming(const dft::Dft& module,
                    const std::vector<std::string>& oldNames,
                    const std::vector<std::string>& newNames) {
  if (oldNames.size() != newNames.size() || module.size() != oldNames.size())
    return std::nullopt;
  std::unordered_map<std::string, std::string> lift;
  lift.reserve(5 * oldNames.size());
  bool ambiguous = false;
  auto add = [&](std::string from, const std::string& to) {
    auto [it, fresh] = lift.try_emplace(std::move(from), to);
    if (!fresh && it->second != to) ambiguous = true;
  };
  for (std::size_t i = 0; i < oldNames.size(); ++i) {
    const std::string& o = oldNames[i];
    const std::string& n = newNames[i];
    add(semantics::firingSignal(o), semantics::firingSignal(n));
    add(semantics::isolatedFiringSignal(o), semantics::isolatedFiringSignal(n));
    add(semantics::activationSignal(o), semantics::activationSignal(n));
    add(semantics::repairSignal(o), semantics::repairSignal(n));
  }
  // Claim signals name a (slot, gate) pair; the conversion only emits them
  // for the slots of spare-like gates, so only those pairs are lifted.
  for (dft::ElementId g = 0; g < module.size(); ++g) {
    const dft::Element& e = module.element(g);
    if (e.type != dft::ElementType::Spare && e.type != dft::ElementType::Seq)
      continue;
    for (dft::ElementId slot : e.inputs)
      add(semantics::claimSignal(oldNames[slot], oldNames[g]),
          semantics::claimSignal(newNames[slot], newNames[g]));
  }
  if (ambiguous) return std::nullopt;
  return lift;
}

bool orderPreserving(std::vector<ActionIdPair>& pairs) {
  std::sort(pairs.begin(), pairs.end());
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].first == pairs[i - 1].first) return false;
    if (pairs[i].second <= pairs[i - 1].second) return false;
  }
  return true;
}

std::optional<std::unordered_map<ioimc::ActionId, std::string>>
modelRenaming(const ioimc::IOIMC& model,
              const std::unordered_map<std::string, std::string>& nameMap) {
  const SymbolTable& symbols = *model.symbols();
  std::vector<ActionIdPair> pairs;
  auto mapActions = [&](const std::vector<ioimc::ActionId>& actions) {
    for (ioimc::ActionId a : actions) {
      const std::string& name = symbols.name(a);
      if (name == ioimc::kTauName) {
        pairs.emplace_back(a, a);
        continue;
      }
      auto it = nameMap.find(name);
      if (it == nameMap.end()) return false;  // unexpected action
      ioimc::ActionId to = symbols.find(it->second);
      if (to == SymbolTable::npos) return false;  // target never interned
      pairs.emplace_back(a, to);
    }
    return true;
  };
  if (!mapActions(model.signature().inputs()) ||
      !mapActions(model.signature().outputs()) ||
      !mapActions(model.signature().internals()))
    return std::nullopt;

  // Injectivity is mandatory: a non-injective rename would merge distinct
  // actions and change the semantics.
  std::vector<ioimc::ActionId> targets;
  targets.reserve(pairs.size());
  for (const ActionIdPair& p : pairs) targets.push_back(p.second);
  std::sort(targets.begin(), targets.end());
  if (std::adjacent_find(targets.begin(), targets.end()) != targets.end())
    return std::nullopt;

  std::unordered_map<ioimc::ActionId, std::string> renaming;
  for (const ActionIdPair& p : pairs)
    if (p.first != p.second) renaming.emplace(p.first, symbols.name(p.second));
  return renaming;
}

}  // namespace imcdft::analysis
