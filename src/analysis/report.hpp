#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "analysis/extract.hpp"
#include "analysis/request.hpp"
#include "ctmdp/reachability.hpp"

/// \file report.hpp
/// The typed response side of the Analyzer session API: per-measure
/// results, structured diagnostics, composition statistics, cache-hit
/// counters and per-phase timings.

namespace imcdft::analysis {

class StaticCombination;  // analysis/static_combine.hpp

/// The state label the top-event monitor attaches to failed states.
inline constexpr const char* kDownLabel = "down";

/// Result of the compositional-aggregation pipeline, ready for measures.
/// (This is the old analyzeDft() return type; the Analyzer shares one
/// instance per distinct tree across all measures and cached requests.)
struct DftAnalysis {
  /// The single aggregated I/O-IMC of the whole tree, all signals hidden.
  ioimc::IOIMC closedModel;
  CompositionStats stats;
  /// Extraction of the failure-absorbed model (for unreliability).
  Extraction absorbed;
  /// True when FDEP-induced simultaneity left real nondeterminism, in which
  /// case unreliability() throws and unreliabilityBounds() applies
  /// (Section 4.4 of the paper).
  bool nondeterministic = false;
  bool repairable = false;
  /// Lazily computed extraction of the *non-absorbed* model (needed by the
  /// unavailability measures, where the system leaves the down states again
  /// after repair).  Use fullExtraction() in measures.hpp; do not touch.
  /// Accessed only through the std::atomic_* shared_ptr free functions:
  /// reports of concurrent sessions share a single DftAnalysis, and the
  /// first successfully installed extraction wins (racing threads compute
  /// identical values, so the race is benign and the published pointer
  /// never changes afterwards).
  mutable std::shared_ptr<const Extraction> fullMemo;
  /// Set when the static-combination numeric path served this analysis
  /// (EngineOptions::staticCombine): per-module absorbing CTMCs plus the
  /// layer's BDD structure function.  closedModel is then a one-state
  /// placeholder and absorbed is empty — unreliability measures evaluate
  /// through this object instead (see analysis/static_combine.hpp).
  std::shared_ptr<const StaticCombination> staticCombo;
};

enum class Severity : std::uint8_t { Info, Warning, Error };

/// A structured note attached to a report, e.g. "nondeterministic model:
/// bounds substituted for point unreliability".
struct Diagnostic {
  Severity severity = Severity::Info;
  std::string message;
};

/// Result of one MeasureSpec.
struct MeasureResult {
  MeasureSpec spec;  ///< echo of the request
  /// False when the measure does not apply to this model (the reason is in
  /// error and mirrored as an Error diagnostic on the report).
  bool ok = false;
  /// Point values, one per grid point (one entry for the scalar kinds).
  /// Empty when boundsSubstituted is set.
  std::vector<double> values;
  /// Scheduler bounds per grid point; filled for UnreliabilityBounds and
  /// for Unreliability on nondeterministic models.
  std::vector<ctmdp::ReachabilityBounds> bounds;
  /// Set when an Unreliability request met a nondeterministic model and
  /// bounds were returned instead of point values (with a warning).
  bool boundsSubstituted = false;
  std::string error;
};

/// Wall-clock seconds spent in each phase of serving one request.
struct PhaseTimings {
  double parse = 0.0;    ///< Galileo parsing (0 for in-memory trees)
  double convert = 0.0;  ///< DFT -> I/O-IMC community
  double compose = 0.0;  ///< compose/hide/aggregate folding
  double extract = 0.0;  ///< absorption + CTMC/CTMDP extraction
  double measure = 0.0;  ///< numerical solvers over all measures
  /// Fused-engine stage breakdown of `compose`, summed over every
  /// on-the-fly step of the request (including sub-module pipelines of
  /// the numeric path).  These are subsets of `compose`, not extra
  /// phases, so total() deliberately excludes them; `--stats`, the serve
  /// summary and exported traces all read this one accounting.
  double otfExpand = 0.0;
  double otfRefine = 0.0;
  double otfCollapse = 0.0;
  double otfRenumber = 0.0;
  double total() const {
    return parse + convert + compose + extract + measure;
  }
  double otfStages() const {
    return otfExpand + otfRefine + otfCollapse + otfRenumber;
  }
  /// Field-wise sum (sub-module pipelines and serve-batch aggregation).
  void accumulate(const PhaseTimings& other) {
    parse += other.parse;
    convert += other.convert;
    compose += other.compose;
    extract += other.extract;
    measure += other.measure;
    otfExpand += other.otfExpand;
    otfRefine += other.otfRefine;
    otfCollapse += other.otfCollapse;
    otfRenumber += other.otfRenumber;
  }
};

/// Cache activity, either of one request (AnalysisReport::cache) or of a
/// whole session (Analyzer::cacheStats()).
struct CacheStats {
  /// Whole-tree cache: a hit skips conversion, composition and extraction.
  std::size_t treeHits = 0;
  std::size_t treeMisses = 0;
  /// Module cache: a hit splices a previously aggregated module I/O-IMC.
  std::size_t moduleHits = 0;
  std::size_t moduleMisses = 0;
  /// Compose/hide/aggregate steps actually executed vs avoided by hits.
  std::size_t stepsRun = 0;
  std::size_t stepsSaved = 0;
  /// Persistent quotient store (EngineOptions::storeDir): records served
  /// from / probed and absent in the on-disk store, summed over all three
  /// record kinds (whole-tree quotients, module quotients, solved curves).
  /// Store hits at the module level also count as moduleHits (they splice
  /// like a session-cache hit would).
  std::size_t storeHits = 0;
  std::size_t storeMisses = 0;
  /// New record files published to the store (existing records are never
  /// rewritten and do not count).
  std::size_t storeWrites = 0;
  /// Soft store problems observed (a record that failed to load —
  /// truncation, corruption, checksum or version mismatch — or a publish
  /// that failed).  Each degrades to the cold path and attaches a Warning
  /// diagnostic — never a wrong answer.
  std::size_t storeErrors = 0;
  /// Requests that joined an in-flight identical aggregation started by a
  /// concurrent request instead of running their own (in-flight dedup).
  std::size_t inflightJoins = 0;
  /// LRU evictions per session cache (entries dropped past the capacity
  /// bounds in AnalyzerOptions).
  std::size_t treeEvictions = 0;
  std::size_t moduleEvictions = 0;
  std::size_t chainEvictions = 0;
  std::size_t curveEvictions = 0;
  /// Fused-engine refinement activity (EngineOptions::otfRefineCadence):
  /// partial refinement passes run across all fused steps, and passes the
  /// adaptive cadence deferred relative to the old fixed-doubling policy.
  std::size_t otfRefinePassesRun = 0;
  std::size_t otfRefinePassesSkipped = 0;
  /// Largest intra-step encoding pool any fused step used (max, not sum —
  /// 0 means the refinement never went parallel).
  unsigned otfIntraWorkers = 0;
  /// Fused steps whose fixpoint verification overlapped the next step's
  /// exploration, and verifications that amended the optimistic result.
  std::size_t otfPipelinedSteps = 0;
  std::size_t otfPipelineRollbacks = 0;

  /// Field-wise sum (request stats folding into session stats).
  void accumulate(const CacheStats& other) {
    treeHits += other.treeHits;
    treeMisses += other.treeMisses;
    moduleHits += other.moduleHits;
    moduleMisses += other.moduleMisses;
    stepsRun += other.stepsRun;
    stepsSaved += other.stepsSaved;
    storeHits += other.storeHits;
    storeMisses += other.storeMisses;
    storeWrites += other.storeWrites;
    storeErrors += other.storeErrors;
    inflightJoins += other.inflightJoins;
    treeEvictions += other.treeEvictions;
    moduleEvictions += other.moduleEvictions;
    chainEvictions += other.chainEvictions;
    curveEvictions += other.curveEvictions;
    otfRefinePassesRun += other.otfRefinePassesRun;
    otfRefinePassesSkipped += other.otfRefinePassesSkipped;
    otfIntraWorkers = std::max(otfIntraWorkers, other.otfIntraWorkers);
    otfPipelinedSteps += other.otfPipelinedSteps;
    otfPipelineRollbacks += other.otfPipelineRollbacks;
  }
};

/// Response to one AnalysisRequest.
struct AnalysisReport {
  std::string label;  ///< echo of the request label
  /// The request/trace id this report was served under (the requested id,
  /// or the auto-assigned one when the request left it 0).  Matches the
  /// "pid" of every span the request emitted into a `--trace` export.
  std::uint64_t requestId = 0;
  /// Canonical fingerprint of the analyzed tree (dft::canonicalHash).
  std::uint64_t treeHash = 0;
  /// True when the whole-tree cache served this request (a pure lookup).
  bool fromCache = false;
  /// The underlying pipeline result; shared with the session cache and
  /// with other reports for the same tree.
  std::shared_ptr<const DftAnalysis> analysis;
  std::vector<MeasureResult> measures;
  std::vector<Diagnostic> diagnostics;
  CacheStats cache;  ///< activity attributable to this request alone
  PhaseTimings timings;

  const CompositionStats& stats() const { return analysis->stats; }
  bool nondeterministic() const { return analysis->nondeterministic; }
  /// True when every requested measure evaluated (possibly with warnings).
  bool allMeasuresOk() const {
    for (const MeasureResult& m : measures)
      if (!m.ok) return false;
    return true;
  }
};

}  // namespace imcdft::analysis
