#include "simulation/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dft/execution.hpp"

namespace imcdft::simulation {

using dft::Dft;
using dft::Element;
using dft::ElementId;
using dft::ExecutionState;
using dft::Executor;

namespace {

/// One trajectory up to the mission time.  Returns whether the top element
/// had fired by then (everFailed) and whether it is failed at the horizon
/// (downAtEnd; differs from everFailed only for repairable trees).
struct RunOutcome {
  bool everFailed = false;
  bool downAtEnd = false;
};

RunOutcome simulateOnce(const Executor& executor, double missionTime,
                        std::mt19937_64& rng) {
  const Dft& dft = executor.dft();
  ExecutionState state = executor.initialState();
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  RunOutcome outcome;
  double now = 0.0;

  // Event kinds: per-BE failure-phase advance, or per-BE repair.
  std::vector<double> rates;
  std::vector<std::pair<ElementId, bool>> events;  // (element, isRepair)
  while (true) {
    if (state.failed[dft.top()]) outcome.everFailed = true;

    rates.clear();
    events.clear();
    double total = 0.0;
    for (ElementId x = 0; x < dft.size(); ++x) {
      const Element& e = dft.element(x);
      if (!e.isBasicEvent()) continue;
      double rate = executor.failureRate(state, x);
      if (rate > 0.0) {
        rates.push_back(rate);
        events.emplace_back(x, false);
        total += rate;
      }
      if (e.be.repairRate && state.failed[x]) {
        rates.push_back(*e.be.repairRate);
        events.emplace_back(x, true);
        total += *e.be.repairRate;
      }
    }
    if (total == 0.0) break;  // frozen configuration

    // Exponential race: time to the next event, then pick the winner.
    double delta = -std::log1p(-uniform(rng)) / total;
    if (now + delta > missionTime) break;
    now += delta;
    double pick = uniform(rng) * total;
    std::size_t winner = 0;
    while (winner + 1 < rates.size() && pick > rates[winner]) {
      pick -= rates[winner];
      ++winner;
    }
    auto [element, isRepair] = events[winner];
    if (isRepair) {
      executor.repairAndPropagate(state, element);
    } else if (state.phase[element] + 1u < dft.element(element).be.phases) {
      ++state.phase[element];
    } else {
      executor.failAndPropagate(state, element);
    }
  }
  if (state.failed[dft.top()]) outcome.everFailed = true;
  outcome.downAtEnd = state.failed[dft.top()] != 0;
  return outcome;
}

Estimate toEstimate(std::uint64_t hits, std::uint64_t runs) {
  Estimate est;
  est.hits = hits;
  est.runs = runs;
  est.value = static_cast<double>(hits) / static_cast<double>(runs);
  wilsonInterval(hits, runs, 1.96, &est.low95, &est.high95);
  return est;
}

template <typename Pick>
Estimate simulate(const Dft& dft, double missionTime,
                  const SimulationOptions& opts, Pick pick) {
  require(opts.runs > 0, "simulate: need at least one run");
  require(missionTime >= 0.0, "simulate: negative mission time");
  Executor executor(dft);
  std::uint64_t hits = 0;
  for (std::uint64_t r = 0; r < opts.runs; ++r) {
    // Per-run stream: the trajectory of logical run index (firstRun + r)
    // depends only on (seed, index), so batches compose bitwise.
    std::mt19937_64 rng(splitmix64(opts.seed, opts.firstRun + r));
    if (pick(simulateOnce(executor, missionTime, rng))) ++hits;
  }
  return toEstimate(hits, opts.runs);
}

}  // namespace

void wilsonInterval(std::uint64_t hits, std::uint64_t runs, double z,
                    double* low, double* high) {
  require(runs > 0, "wilsonInterval: need at least one trial");
  const double n = static_cast<double>(runs);
  const double p = static_cast<double>(hits) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double hw =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  *low = std::max(0.0, center - hw);
  *high = std::min(1.0, center + hw);
}

Estimate simulateUnreliability(const Dft& dft, double missionTime,
                               const SimulationOptions& opts) {
  return simulate(dft, missionTime, opts,
                  [](const RunOutcome& o) { return o.everFailed; });
}

Estimate simulateUnavailability(const Dft& dft, double missionTime,
                                const SimulationOptions& opts) {
  return simulate(dft, missionTime, opts,
                  [](const RunOutcome& o) { return o.downAtEnd; });
}

}  // namespace imcdft::simulation
