#pragma once

#include <cstdint>

#include "dft/model.hpp"

/// \file simulator.hpp
/// Discrete-event Monte-Carlo simulation of the DFT execution semantics
/// (dft::Executor).  A third, statistical implementation of the same
/// semantics: the differential test suite checks that the simulator's
/// confidence intervals cover the exact answers of the compositional
/// I/O-IMC pipeline and the monolithic generator.
///
/// All distributions are exponential/Erlang, so the simulation is a simple
/// race: in every configuration each live basic event carries its current
/// rate (active, dormancy-scaled, or zero), the winner is sampled, the
/// instantaneous cascade runs, and time advances.  Repairs race with
/// failures the same way.

namespace imcdft::simulation {

struct SimulationOptions {
  std::uint64_t runs = 10'000;
  std::uint64_t seed = 42;  ///< deterministic by default
};

/// Point estimate with a normal-approximation confidence interval.
struct Estimate {
  double value = 0.0;
  double halfWidth95 = 0.0;  ///< 1.96 * standard error
  std::uint64_t runs = 0;

  double low() const { return value - halfWidth95; }
  double high() const { return value + halfWidth95; }
};

/// Estimates P(system failed by missionTime), i.e. P(the top element has
/// fired at some point up to t).  Supports everything the executor
/// supports, including repairable trees (where it estimates the
/// first-passage probability, matching analysis::unreliability).
Estimate simulateUnreliability(const dft::Dft& dft, double missionTime,
                               const SimulationOptions& opts = {});

/// Estimates P(system is down at missionTime) for repairable trees.
Estimate simulateUnavailability(const dft::Dft& dft, double missionTime,
                                const SimulationOptions& opts = {});

}  // namespace imcdft::simulation
