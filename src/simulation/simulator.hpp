#pragma once

#include <cstdint>

#include "dft/model.hpp"

/// \file simulator.hpp
/// Discrete-event Monte-Carlo simulation of the DFT execution semantics
/// (dft::Executor).  A third, statistical implementation of the same
/// semantics: the differential test suite and the dftfuzz oracle check
/// that the simulator's confidence intervals cover the exact answers of
/// the compositional I/O-IMC pipeline and the static-combine path.
///
/// All distributions are exponential/Erlang, so the simulation is a simple
/// race: in every configuration each live basic event carries its current
/// rate (active, dormancy-scaled, or zero), the winner is sampled, the
/// instantaneous cascade runs, and time advances.  Repairs race with
/// failures the same way.
///
/// Reproducibility: every run r draws from its own RNG stream derived as
/// splitmix64(seed, firstRun + r), so an estimate is a pure function of
/// (tree, missionTime, seed, run-index set) — independent of batching
/// order.  Splitting a simulation into batches via firstRun and summing
/// the hit counts is bitwise identical to one big simulation, which is
/// exactly the seam a future parallel simulator needs to keep results
/// unchanged (asserted in tests/test_simulation.cpp).

namespace imcdft::simulation {

struct SimulationOptions {
  std::uint64_t runs = 10'000;
  std::uint64_t seed = 42;  ///< deterministic by default
  /// Index of the first run: run r uses the stream splitmix64(seed,
  /// firstRun + r).  Lets callers split one logical simulation into
  /// batches whose combined hit counts are bitwise identical to a single
  /// sweep (default 0).
  std::uint64_t firstRun = 0;
};

/// Point estimate with a Wilson score 95% confidence interval.  The
/// Wilson interval stays informative at the boundaries: an empirical 0/n
/// or n/n still yields a nonempty interval of width ~z^2/n, so coverage
/// checks on rare-event trees are never vacuous (a normal-approximation
/// half-width would collapse to zero there).
struct Estimate {
  double value = 0.0;   ///< empirical probability hits/runs
  double low95 = 0.0;   ///< Wilson interval lower endpoint
  double high95 = 0.0;  ///< Wilson interval upper endpoint
  std::uint64_t hits = 0;
  std::uint64_t runs = 0;

  double low() const { return low95; }
  double high() const { return high95; }
  /// Half the interval width (the interval is not centered on value).
  double halfWidth95() const { return 0.5 * (high95 - low95); }
};

/// The Wilson score interval for \p hits successes in \p runs trials at
/// critical value \p z (1.96 = 95%).  Exposed for the fuzzing oracle,
/// which re-derives the interval at ~5 sigma from Estimate::hits.
void wilsonInterval(std::uint64_t hits, std::uint64_t runs, double z,
                    double* low, double* high);

/// Estimates P(system failed by missionTime), i.e. P(the top element has
/// fired at some point up to t).  Supports everything the executor
/// supports, including repairable trees (where it estimates the
/// first-passage probability, matching analysis::unreliability).
Estimate simulateUnreliability(const dft::Dft& dft, double missionTime,
                               const SimulationOptions& opts = {});

/// Estimates P(system is down at missionTime) for repairable trees.
Estimate simulateUnavailability(const dft::Dft& dft, double missionTime,
                                const SimulationOptions& opts = {});

}  // namespace imcdft::simulation
