#pragma once

#include <deque>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

/// \file lru_map.hpp
/// The synchronized LRU maps behind the Analyzer's session caches: bounded
/// maps from string cache keys to values that evict the least recently
/// used entries past their capacity instead of clearing whole (the crude
/// pre-LRU policy), plus a sharded wrapper for the caches hit from the
/// engine's worker threads.

namespace imcdft {

/// A mutex-guarded LRU map from string keys to copyable values.  get()
/// refreshes recency; put() evicts from the cold end while over capacity
/// and reports how many entries it dropped, so callers can keep eviction
/// counters.  A capacity of 0 means unbounded.
template <class V>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : cap_(capacity) {}

  std::optional<V> get(std::string_view key) {
    std::lock_guard<std::mutex> lock(m_);
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; returns the number of entries evicted.
  std::size_t put(std::string key, V value) {
    std::lock_guard<std::mutex> lock(m_);
    auto it = index_.find(std::string_view(key));
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return 0;
    }
    order_.emplace_front(std::move(key), std::move(value));
    index_.emplace(std::string_view(order_.front().first), order_.begin());
    std::size_t evicted = 0;
    while (cap_ != 0 && order_.size() > cap_) {
      index_.erase(std::string_view(order_.back().first));
      order_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(m_);
    return order_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(m_);
    index_.clear();
    order_.clear();
  }

 private:
  using Entry = std::pair<std::string, V>;

  mutable std::mutex m_;
  std::size_t cap_;
  std::list<Entry> order_;  ///< front = most recently used
  /// Views into the list nodes' key strings (stable across splices).
  std::unordered_map<std::string_view, typename std::list<Entry>::iterator>
      index_;
};

/// An LRU map split into independently locked shards by key hash, for the
/// caches the engine's parallel module aggregation stores into from worker
/// threads.  The capacity is divided evenly across shards, so the bound is
/// approximate per shard but exact in total order of magnitude; the shard
/// count never exceeds the capacity, so small caps still evict strictly.
template <class V>
class ShardedLruMap {
 public:
  explicit ShardedLruMap(std::size_t capacity, std::size_t shards = 8) {
    if (capacity != 0 && shards > capacity) shards = capacity;
    if (shards == 0) shards = 1;
    const std::size_t perShard =
        capacity == 0 ? 0 : (capacity + shards - 1) / shards;
    for (std::size_t i = 0; i < shards; ++i) shards_.emplace_back(perShard);
  }

  std::optional<V> get(std::string_view key) {
    return shards_[shardOf(key)].get(key);
  }

  std::size_t put(std::string key, V value) {
    LruMap<V>& shard = shards_[shardOf(key)];
    return shard.put(std::move(key), std::move(value));
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const LruMap<V>& shard : shards_) total += shard.size();
    return total;
  }

  void clear() {
    for (LruMap<V>& shard : shards_) shard.clear();
  }

 private:
  std::size_t shardOf(std::string_view key) const {
    return std::hash<std::string_view>{}(key) % shards_.size();
  }

  std::deque<LruMap<V>> shards_;  ///< deque: LruMap is not movable
};

}  // namespace imcdft
