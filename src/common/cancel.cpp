#include "common/cancel.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace imcdft {

void CancelToken::throwExceeded(const char* where, std::size_t liveStates,
                                const std::string& what) const {
  // Every budget trip funnels through here: one instant event on the trace
  // (joinable with the request's diagnostics via the trace context) and one
  // central counter, then the typed unwind.
  obs::traceInstant("budget-trip", where, {{"live_states", liveStates}});
  static obs::Counter& trips =
      obs::MetricsRegistry::global().counter("budget.trips");
  trips.add();
  throw BudgetExceeded(where, elapsedSeconds(), liveStates,
                       "budget exceeded at " + std::string(where) + ": " +
                           what);
}

void CancelToken::checkpoint(const char* where, std::size_t liveStates,
                             std::size_t liveTransitions) const {
  const std::uint64_t count =
      checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cancelled_.load(std::memory_order_acquire)) {
    std::string reason;
    {
      std::lock_guard<std::mutex> lock(reasonMutex_);
      reason = cancelReason_;
    }
    throwExceeded(where, liveStates, reason);
  }
  if (maxCheckpoints_ > 0 && count >= maxCheckpoints_)
    throwExceeded(where, liveStates,
                  "checkpoint budget of " + std::to_string(maxCheckpoints_) +
                      " exhausted");
  if (maxLiveStates_ > 0 && liveStates > maxLiveStates_)
    throwExceeded(where, liveStates,
                  std::to_string(liveStates) +
                      " live states exceed the cap of " +
                      std::to_string(maxLiveStates_));
  if (maxMemoryBytes_ > 0) {
    const std::size_t rough =
        liveStates * kStateBytes + liveTransitions * kTransitionBytes;
    if (rough > maxMemoryBytes_)
      throwExceeded(where, liveStates,
                    "~" + std::to_string(rough) +
                        " bytes of live model exceed the rough cap of " +
                        std::to_string(maxMemoryBytes_) + " bytes");
  }
  if (deadlineSeconds_ > 0.0) {
    const double elapsed = elapsedSeconds();
    if (elapsed > deadlineSeconds_)
      throwExceeded(where, liveStates,
                    "deadline of " + std::to_string(deadlineSeconds_) +
                        "s passed (" + std::to_string(elapsed) +
                        "s elapsed)");
  }
}

}  // namespace imcdft
