#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file text.hpp
/// Small string helpers shared by the parser and the report printers.

namespace imcdft {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits \p s on \p sep, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// True when \p s starts with \p prefix.
bool startsWith(std::string_view s, std::string_view prefix);

/// Formats \p value with \p digits significant digits (for report tables).
std::string formatSig(double value, int digits);

}  // namespace imcdft
