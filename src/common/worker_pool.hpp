#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file worker_pool.hpp
/// A small persistent fork-join pool for data-parallel passes *below* the
/// module boundary (per-iteration signature encoding, see
/// ioimc/bisimulation.cpp and ioimc/otf_partition.cpp).
///
/// The pool exists because those passes run many times per aggregation
/// (once per refinement iteration): spawning threads per pass would cost
/// more than the encode itself on mid-sized models.  Workers park on a
/// condition variable between run() calls; run() hands out tasks by atomic
/// claiming, so load balances dynamically — determinism is the *caller's*
/// property (every task writes only its own disjoint output slots, and the
/// order-sensitive merge happens sequentially afterwards), never the
/// pool's.
///
/// The calling thread participates as worker 0, so a pool constructed with
/// N threads spawns only N-1.  The first exception a task throws is
/// captured, remaining tasks are skipped, and run() rethrows it — a
/// BudgetExceeded from a cooperative-cancel checkpoint inside a task
/// unwinds through run() exactly like it does from a sequential loop.

namespace imcdft {

class WorkerPool {
 public:
  /// Spawns \p threads - 1 workers (the caller is the remaining one).
  /// \p threads == 0 or 1 creates no workers; run() then executes inline.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers including the caller (>= 1).
  unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(task, worker) for every task in [0, numTasks), concurrently.
  /// \p worker is a dense id in [0, threads()) — use it to index
  /// per-worker scratch.  Blocks until every task completed; rethrows the
  /// first exception any task threw (remaining tasks are skipped, not
  /// aborted mid-flight).
  void run(std::size_t numTasks,
           const std::function<void(std::size_t task, unsigned worker)>& fn);

 private:
  void workerLoop(unsigned worker);
  void workOn(unsigned worker);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;   ///< workers wait for a new generation
  std::condition_variable done_;   ///< run() waits for task completion
  std::uint64_t generation_ = 0;   ///< bumped per run(); guarded by mutex_
  bool stop_ = false;

  // Per-run job state (valid between the generation bump and completion).
  const std::function<void(std::size_t, unsigned)>* fn_ = nullptr;
  std::size_t numTasks_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};  ///< workers that left the claim loop
  std::atomic<bool> abort_{false};
  std::exception_ptr firstError_;
};

}  // namespace imcdft
