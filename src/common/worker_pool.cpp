#include "common/worker_pool.hpp"

namespace imcdft {

WorkerPool::WorkerPool(unsigned threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::run(
    std::size_t numTasks,
    const std::function<void(std::size_t, unsigned)>& fn) {
  if (numTasks == 0) return;
  if (workers_.empty()) {
    for (std::size_t t = 0; t < numTasks; ++t) fn(t, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    numTasks_ = numTasks;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    firstError_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  workOn(0);
  // Wait until every worker has *left* the claim loop for this generation
  // (not merely until all tasks completed): a worker that is about to poll
  // the shared task counter one last time must not observe the next run's
  // reset state.  Workers enter a generation at most once, so after this
  // wait no thread can touch the job fields again.
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] {
    return completed_.load(std::memory_order_acquire) ==
           static_cast<std::size_t>(workers_.size()) + 1;
  });
  fn_ = nullptr;
  if (firstError_) {
    std::exception_ptr e = firstError_;
    firstError_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void WorkerPool::workOn(unsigned worker) {
  while (true) {
    const std::size_t t = next_.fetch_add(1, std::memory_order_relaxed);
    if (t >= numTasks_) break;
    if (!abort_.load(std::memory_order_relaxed)) {
      try {
        (*fn_)(t, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_) firstError_ = std::current_exception();
        abort_.store(true, std::memory_order_relaxed);
      }
    }
  }
  if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      static_cast<std::size_t>(workers_.size()) + 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_.notify_all();
  }
}

void WorkerPool::workerLoop(unsigned worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    workOn(worker);
    lock.lock();
  }
}

}  // namespace imcdft
