#pragma once

#include <cstdint>

/// \file rng.hpp
/// Small deterministic PRNG building blocks shared by the random-DFT
/// generator (dft/generate.hpp) and the Monte-Carlo simulator
/// (simulation/simulator.hpp).
///
/// The generator needs results that are reproducible across standard
/// libraries and platforms (a CI seed range must mean the same trees
/// everywhere), so it cannot use std::uniform_int_distribution, whose
/// output is implementation-defined.  SplitMix64 is a tiny, well-mixed
/// generator with a closed-form jump: deriving an independent stream per
/// (seed, index) pair is one addition, which is also exactly what the
/// simulator's per-run streams need.

namespace imcdft {

/// The SplitMix64 finalizer: one full avalanche round over \p x.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// An independent, well-mixed stream seed for sub-stream \p index of
/// master seed \p seed (e.g. one Monte-Carlo run, one generator arm).
inline std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t index) {
  return splitmix64(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
}

/// A minimal SplitMix64 engine with platform-independent sampling
/// helpers.  Deliberately not a std::uniform_random_bit_generator client:
/// every method below has one fixed, documented mapping from bits to
/// values, so generated DFTs are identical across compilers.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound >= 1.  Fixed-point scaling of
  /// the top 64 bits (the bias is < 2^-64 * bound, irrelevant here and
  /// identical everywhere).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace imcdft
