#include "common/error.hpp"

namespace imcdft {

void require(bool condition, const std::string& message) {
  if (!condition) throw ModelError(message);
}

}  // namespace imcdft
