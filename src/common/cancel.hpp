#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/error.hpp"

/// \file cancel.hpp
/// Cooperative cancellation and resource budgets.
///
/// A CancelToken carries a request's resource budget — wall-clock
/// deadline, peak-live-state cap, rough memory cap, deterministic
/// checkpoint-count cap, and an externally raised cancel flag — through
/// the analysis pipeline into the hot loops: the compose product
/// expansion, the signature-refinement iterations, the on-the-fly
/// frontier loop and the uniformization sweeps each call checkpoint()
/// once per unit of work.  A checkpoint that finds any limit exhausted
/// throws BudgetExceeded, which unwinds the whole pipeline cleanly: no
/// cache or store write happens on partial results (modules are only
/// published after full aggregation, store publishes are atomic renames),
/// so a tripped request leaves every session cache consistent and a
/// re-run with a larger budget is bitwise identical to an unbudgeted run.
///
/// Checkpoints are cheap when the token is absent (callers guard with
/// `if (cancel)`) and cheap when present: an atomic counter bump, a few
/// integer compares, and a steady_clock read only when a deadline is set.
/// The checkpoint-count cap exists for deterministic testing — "trip at
/// exactly the Nth checkpoint" exercises every unwind path without
/// depending on wall-clock or model-size thresholds.

namespace imcdft {

/// Thrown by CancelToken::checkpoint() when a budget limit is exhausted.
/// Carries where in the pipeline the trip happened and what was spent.
class BudgetExceeded : public Error {
 public:
  BudgetExceeded(std::string checkpoint, double elapsedSeconds,
                 std::size_t liveStates, const std::string& what)
      : Error(what),
        checkpoint_(std::move(checkpoint)),
        elapsedSeconds_(elapsedSeconds),
        liveStates_(liveStates) {}

  /// Pipeline site that observed the exhausted budget ("compose",
  /// "weak-refinement", "otf-frontier", "transient", ...).
  const std::string& checkpoint() const { return checkpoint_; }
  /// Wall-clock seconds spent since the token started.
  double elapsedSeconds() const { return elapsedSeconds_; }
  /// Live states at the tripping site (0 when the site tracks none).
  std::size_t liveStates() const { return liveStates_; }

 private:
  std::string checkpoint_;
  double elapsedSeconds_;
  std::size_t liveStates_;
};

/// One request's resource budget plus an external cancellation flag.
/// Thread-safe: checkpoint() may be called concurrently from engine
/// worker threads, cancel() from any thread.  All limits default to 0 =
/// unlimited; a token with no limits and no cancel() call never throws.
class CancelToken {
 public:
  CancelToken() : start_(Clock::now()) {}

  /// Wall-clock deadline, measured from construction.  <= 0 = unlimited.
  void limitDeadline(double seconds) { deadlineSeconds_ = seconds; }
  /// Cap on the live states any single checkpoint site may report.
  void limitLiveStates(std::size_t states) { maxLiveStates_ = states; }
  /// Rough memory cap: live states and transitions are charged at nominal
  /// per-item sizes (kStateBytes/kTransitionBytes) — a coarse guard
  /// against runaway product expansion, not an allocator account.
  void limitMemoryBytes(std::size_t bytes) { maxMemoryBytes_ = bytes; }
  /// Deterministic cap: the Nth checkpoint() call trips.  Test hook.
  void limitCheckpoints(std::uint64_t count) { maxCheckpoints_ = count; }

  /// Raises the external cancellation flag; the next checkpoint throws.
  void cancel(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(reasonMutex_);
      if (cancelReason_.empty())
        cancelReason_ = reason.empty() ? "cancelled" : std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  bool limited() const {
    return deadlineSeconds_ > 0.0 || maxLiveStates_ > 0 ||
           maxMemoryBytes_ > 0 || maxCheckpoints_ > 0;
  }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Checkpoints() so far (exposed so tests can calibrate count budgets).
  std::uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  /// One unit of cooperative-cancellation work at site \p where.  Throws
  /// BudgetExceeded when any limit is exhausted; otherwise returns.
  /// \p liveStates / \p liveTransitions describe the site's current live
  /// region (0 when the site tracks none).
  void checkpoint(const char* where, std::size_t liveStates = 0,
                  std::size_t liveTransitions = 0) const;

  /// Nominal per-item sizes behind limitMemoryBytes().
  static constexpr std::size_t kStateBytes = 64;
  static constexpr std::size_t kTransitionBytes = 16;

 private:
  using Clock = std::chrono::steady_clock;

  [[noreturn]] void throwExceeded(const char* where, std::size_t liveStates,
                                  const std::string& what) const;

  Clock::time_point start_;
  double deadlineSeconds_ = 0.0;
  std::size_t maxLiveStates_ = 0;
  std::size_t maxMemoryBytes_ = 0;
  std::uint64_t maxCheckpoints_ = 0;
  mutable std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<bool> cancelled_{false};
  mutable std::mutex reasonMutex_;
  std::string cancelReason_;
};

}  // namespace imcdft
