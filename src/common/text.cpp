#include "common/text.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace imcdft {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string formatSig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

}  // namespace imcdft
