#include "common/symbol_table.hpp"

#include <mutex>

#include "common/error.hpp"

namespace imcdft {

SymbolId SymbolTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto it = ids_.find(name);  // re-check: another writer may have won
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

SymbolId SymbolTable::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = ids_.find(name);
  return it == ids_.end() ? npos : it->second;
}

const std::string& SymbolTable::name(SymbolId id) const {
  std::shared_lock lock(mutex_);
  if (id >= names_.size()) require(false, "SymbolTable: id out of range");
  return names_[id];
}

SymbolTablePtr makeSymbolTable() { return std::make_shared<SymbolTable>(); }

}  // namespace imcdft
