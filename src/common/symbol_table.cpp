#include "common/symbol_table.hpp"

#include "common/error.hpp"

namespace imcdft {

SymbolId SymbolTable::intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? npos : it->second;
}

const std::string& SymbolTable::name(SymbolId id) const {
  require(id < names_.size(), "SymbolTable: id out of range");
  return names_[id];
}

SymbolTablePtr makeSymbolTable() { return std::make_shared<SymbolTable>(); }

}  // namespace imcdft
