#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Library-wide error types.  All user-facing failures (malformed models,
/// unsupported constructs, numerical breakdowns) are reported as exceptions
/// derived from imcdft::Error so callers can distinguish library errors from
/// std failures.

namespace imcdft {

/// Base class of all imcdft exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model (DFT, I/O-IMC, CTMC, ...) violates a structural requirement.
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Input text (Galileo file, ...) could not be parsed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}
  /// 1-based line number of the offending input.
  int line() const { return line_; }

 private:
  int line_;
};

/// A requested analysis is not defined for the given model (for example
/// repairable PAND gates, which the paper does not define).
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or was given parameters outside
/// its domain.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Throws ModelError with the given message when \p condition is false.
void require(bool condition, const std::string& message);

}  // namespace imcdft
