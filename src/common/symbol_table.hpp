#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

/// \file symbol_table.hpp
/// String interning.  Action names (firing, activation, repair signals) are
/// interned once and referred to by dense 32-bit ids everywhere else, which
/// keeps composition and bisimulation free of string comparisons.

namespace imcdft {

/// Dense id of an interned string.  Ids are assigned consecutively from 0.
using SymbolId = std::uint32_t;

/// An append-only bidirectional map between strings and dense SymbolIds.
///
/// A SymbolTable is shared (via std::shared_ptr) by all I/O-IMC models that
/// may ever be composed with each other; composition asserts the tables
/// match so that equal ids always mean equal action names.
///
/// Internally synchronized: intern() takes a writer lock, find()/name()/
/// size() a reader lock, so the engine's parallel module aggregation can
/// build quotients (which intern action names) concurrently.  Interned
/// strings live in a deque, so the references name() returns stay valid
/// across later interning.
class SymbolTable {
 public:
  /// Returns the id of \p name, interning it if it is new.
  SymbolId intern(std::string_view name);

  /// Returns the id of \p name or npos when it was never interned.
  SymbolId find(std::string_view name) const;

  /// Returns the string for a previously interned id.  The reference stays
  /// valid for the table's lifetime.
  const std::string& name(SymbolId id) const;

  /// Number of interned symbols.
  std::size_t size() const {
    std::shared_lock lock(mutex_);
    return names_.size();
  }

  /// Sentinel returned by find() for unknown names.
  static constexpr SymbolId npos = static_cast<SymbolId>(-1);

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;  ///< deque: stable references on append
  std::unordered_map<std::string_view, SymbolId> ids_;  ///< views into names_
};

/// Shared handle used across a community of composable models.
using SymbolTablePtr = std::shared_ptr<SymbolTable>;

/// Convenience factory.
SymbolTablePtr makeSymbolTable();

}  // namespace imcdft
