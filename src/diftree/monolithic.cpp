#include "diftree/monolithic.hpp"

#include <deque>
#include <map>

#include "analysis/converter.hpp"
#include "common/error.hpp"
#include "ctmc/transient.hpp"
#include "dft/execution.hpp"

namespace imcdft::diftree {

using dft::Dft;
using dft::Element;
using dft::ElementId;
using dft::ExecutionState;
using dft::Executor;

MonolithicResult generateMonolithic(const Dft& dft,
                                    const MonolithicOptions& opts) {
  analysis::checkConvertible(dft);
  Executor executor(dft);

  std::map<std::vector<std::uint8_t>, ctmc::StateId> ids;
  std::vector<ExecutionState> states;
  std::deque<ctmc::StateId> frontier;
  auto stateOf = [&](ExecutionState g) {
    auto [it, inserted] = ids.try_emplace(g.pack(), 0);
    if (inserted) {
      it->second = static_cast<ctmc::StateId>(states.size());
      states.push_back(std::move(g));
      frontier.push_back(it->second);
    }
    return it->second;
  };

  MonolithicResult result;
  ctmc::Ctmc& chain = result.chain;
  chain.labelNames = {"down"};
  chain.initial = stateOf(executor.initialState());

  while (!frontier.empty()) {
    ctmc::StateId id = frontier.front();
    frontier.pop_front();
    ExecutionState g = states[id];  // copy: the states vector grows below
    const bool down = g.failed[dft.top()] != 0;
    if (chain.rates.size() <= id) {
      chain.rates.resize(id + 1);
      chain.labelMasks.resize(id + 1, 0);
    }
    if (down && opts.truncateAtSystemFailure) continue;

    for (ElementId x = 0; x < dft.size(); ++x) {
      const Element& e = dft.element(x);
      if (!e.isBasicEvent()) continue;
      double rate = executor.failureRate(g, x);
      if (rate > 0.0) {
        ExecutionState next = g;
        // Erlang events advance through their phases before failing.
        if (next.phase[x] + 1u < e.be.phases) {
          ++next.phase[x];
        } else {
          executor.failAndPropagate(next, x);
        }
        chain.rates[id].push_back({rate, stateOf(std::move(next))});
      }
      if (e.be.repairRate && g.failed[x]) {
        ExecutionState next = g;
        executor.repairAndPropagate(next, x);
        chain.rates[id].push_back({*e.be.repairRate, stateOf(std::move(next))});
      }
    }
  }
  chain.rates.resize(states.size());
  chain.labelMasks.resize(states.size(), 0);
  for (ctmc::StateId s = 0; s < states.size(); ++s)
    if (states[s].failed[dft.top()]) chain.labelMasks[s] |= 1u;
  chain.validate();
  result.numStates = chain.numStates();
  result.numTransitions = chain.numTransitions();
  return result;
}

double monolithicUnreliability(const Dft& dft, double missionTime) {
  MonolithicResult result = generateMonolithic(dft);
  return ctmc::probabilityOfLabelAt(result.chain, "down", missionTime);
}

}  // namespace imcdft::diftree
