#include "diftree/modular.hpp"

#include <algorithm>
#include <cmath>

#include "bdd/bdd.hpp"
#include "common/error.hpp"
#include "ctmc/transient.hpp"
#include "dft/modules.hpp"
#include "diftree/monolithic.hpp"

namespace imcdft::diftree {

using dft::Dft;
using dft::Element;
using dft::ElementId;
using dft::ElementType;

namespace {

/// Basic events of \p dft in id order (the shared BDD variable order).
std::vector<ElementId> staticBasicEvents(const Dft& dft) {
  std::vector<ElementId> bes;
  for (ElementId id = 0; id < dft.size(); ++id)
    if (dft.element(id).isBasicEvent()) bes.push_back(id);
  return bes;
}

}  // namespace

StaticStructure::StaticStructure(const Dft& dft)
    : varOf_(dft.size(), 0),
      beOfVar_(staticBasicEvents(dft)),
      manager_(static_cast<std::uint32_t>(beOfVar_.size())) {
  for (std::uint32_t var = 0; var < beOfVar_.size(); ++var)
    varOf_[beOfVar_[var]] = var;
  std::vector<bdd::NodeRef> node(dft.size(), bdd::kFalse);
  for (ElementId id : dft.topologicalOrder()) {
    const Element& e = dft.element(id);
    switch (e.type) {
      case ElementType::BasicEvent:
        node[id] = manager_.variable(varOf_[id]);
        break;
      case ElementType::And: {
        bdd::NodeRef acc = bdd::kTrue;
        for (ElementId in : e.inputs) acc = manager_.bddAnd(acc, node[in]);
        node[id] = acc;
        break;
      }
      case ElementType::Or: {
        bdd::NodeRef acc = bdd::kFalse;
        for (ElementId in : e.inputs) acc = manager_.bddOr(acc, node[in]);
        node[id] = acc;
        break;
      }
      case ElementType::Voting: {
        std::vector<bdd::NodeRef> ins;
        for (ElementId in : e.inputs) ins.push_back(node[in]);
        node[id] = manager_.atLeast(ins, e.votingThreshold);
        break;
      }
      default:
        throw UnsupportedError(
            "StaticStructure: element '" + e.name + "' is not static");
    }
  }
  root_ = node[dft.top()];
}

double StaticStructure::probability(
    const std::vector<double>& beProbability) const {
  require(beProbability.size() == varOf_.size(),
          "StaticStructure: probability vector size mismatch");
  std::vector<double> varProbs(beOfVar_.size(), 0.0);
  for (std::uint32_t var = 0; var < beOfVar_.size(); ++var)
    varProbs[var] = beProbability[beOfVar_[var]];
  return manager_.probability(root_, varProbs);
}

std::vector<double> StaticStructure::curve(
    const std::vector<std::vector<double>>& beProbabilityPerTime) const {
  std::vector<double> out;
  out.reserve(beProbabilityPerTime.size());
  for (const std::vector<double>& probs : beProbabilityPerTime)
    out.push_back(probability(probs));
  return out;
}

std::vector<std::vector<ElementId>> StaticStructure::minimalCutSets() const {
  std::vector<std::vector<ElementId>> out;
  for (const auto& cut : manager_.minimalCutSets(root_)) {
    std::vector<ElementId> ids;
    for (std::uint32_t var : cut) ids.push_back(beOfVar_[var]);
    out.push_back(std::move(ids));
  }
  return out;
}

double staticUnreliability(const Dft& dft,
                           const std::vector<double>& beProbability) {
  return StaticStructure(dft).probability(beProbability);
}

namespace {

/// Classic-DIFTree feature check: spare inputs must be basic events (the
/// lifting of this restriction is exactly the paper's contribution, which
/// the baseline does not have).
void checkClassic(const Dft& dft) {
  for (ElementId id = 0; id < dft.size(); ++id) {
    const Element& e = dft.element(id);
    if (e.type != ElementType::Spare && e.type != ElementType::Seq) continue;
    for (ElementId in : e.inputs)
      if (!dft.element(in).isBasicEvent())
        throw UnsupportedError(
            "modularAnalysis: spare gate '" + e.name +
            "' has a non-basic-event input; the DIFTree baseline only "
            "supports basic-event spares");
  }
  if (dft.isRepairable())
    throw UnsupportedError("modularAnalysis: repairable trees are not supported");
}

double solveModule(const Dft& tree, double t, ModularResult& out);

/// P(Erlang(k, lambda) <= t): the BE failure probability at mission time.
double erlangCdf(std::uint32_t k, double lambda, double t) {
  double term = 1.0, sum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    sum += term;
    term *= lambda * t / static_cast<double>(i + 1);
  }
  return 1.0 - std::exp(-lambda * t) * sum;
}

/// Combines the probabilities of independent children under a static top
/// gate by building a tiny BDD with one variable per child.
double combineStaticTop(const Dft& tree,
                        const std::vector<double>& childProb) {
  const Element& top = tree.element(tree.top());
  bdd::BddManager manager(static_cast<std::uint32_t>(top.inputs.size()));
  std::vector<bdd::NodeRef> vars;
  for (std::uint32_t i = 0; i < top.inputs.size(); ++i)
    vars.push_back(manager.variable(i));
  bdd::NodeRef f;
  switch (top.type) {
    case ElementType::And: {
      f = bdd::kTrue;
      for (bdd::NodeRef v : vars) f = manager.bddAnd(f, v);
      break;
    }
    case ElementType::Or: {
      f = bdd::kFalse;
      for (bdd::NodeRef v : vars) f = manager.bddOr(f, v);
      break;
    }
    case ElementType::Voting:
      f = manager.atLeast(vars, top.votingThreshold);
      break;
    default:
      throw UnsupportedError("combineStaticTop: top is not static");
  }
  return manager.probability(f, childProb);
}

double solveModule(const Dft& tree, double t, ModularResult& out) {
  const Element& top = tree.element(tree.top());
  ModularSolveInfo info;
  info.moduleName = top.name;

  if (!tree.isDynamic()) {
    // Pure static module: BDD over the basic events.
    std::vector<double> probs(tree.size(), 0.0);
    for (ElementId id = 0; id < tree.size(); ++id)
      if (tree.element(id).isBasicEvent())
        probs[id] = erlangCdf(tree.element(id).be.phases,
                              tree.element(id).be.lambda, t);
    info.dynamic = false;
    info.probability = staticUnreliability(tree, probs);
    out.modules.push_back(info);
    return info.probability;
  }

  // Dynamic somewhere below.  If the top is static and all children are
  // independent modules, solve them separately and combine — this is the
  // "replace a module by a BE with a constant failure probability under a
  // static parent" rule.
  if (top.type == ElementType::And || top.type == ElementType::Or ||
      top.type == ElementType::Voting) {
    std::vector<dft::ModuleInfo> modules = dft::independentModules(tree);
    auto isModuleRoot = [&](ElementId id) {
      return std::any_of(modules.begin(), modules.end(),
                         [&](const dft::ModuleInfo& m) { return m.root == id; });
    };
    if (std::all_of(top.inputs.begin(), top.inputs.end(), isModuleRoot)) {
      std::vector<double> childProb;
      for (ElementId child : top.inputs)
        childProb.push_back(
            solveModule(dft::extractModule(tree, child), t, out));
      info.dynamic = true;
      info.probability = combineStaticTop(tree, childProb);
      out.modules.push_back(info);
      return info.probability;
    }
  }

  // Dynamic module that cannot be decomposed further: whole-module Markov
  // chain, the DIFTree way.
  MonolithicResult mc = generateMonolithic(tree);
  info.dynamic = true;
  info.mcStates = mc.numStates;
  info.mcTransitions = mc.numTransitions;
  info.probability = ctmc::probabilityOfLabelAt(mc.chain, "down", t);
  out.largestMcStates = std::max(out.largestMcStates, mc.numStates);
  out.largestMcTransitions =
      std::max(out.largestMcTransitions, mc.numTransitions);
  out.modules.push_back(info);
  return info.probability;
}

}  // namespace

ModularResult modularAnalysis(const Dft& dft, double missionTime) {
  checkClassic(dft);
  ModularResult out;
  out.unreliability =
      solveModule(dft::extractModule(dft, dft.top()), missionTime, out);
  return out;
}

namespace {

std::vector<double> staticBeProbabilities(const Dft& dft, double t) {
  std::vector<double> probs(dft.size(), 0.0);
  for (ElementId id = 0; id < dft.size(); ++id)
    if (dft.element(id).isBasicEvent())
      probs[id] =
          erlangCdf(dft.element(id).be.phases, dft.element(id).be.lambda, t);
  return probs;
}

void requireStatic(const Dft& dft, const char* who) {
  if (dft.isDynamic())
    throw UnsupportedError(std::string(who) +
                           ": only static trees are supported");
}

}  // namespace

std::vector<ImportanceResult> birnbaumImportance(const Dft& dft,
                                                 double missionTime) {
  requireStatic(dft, "birnbaumImportance");
  std::vector<double> probs = staticBeProbabilities(dft, missionTime);
  // One BDD for the whole sweep: only the probability evaluation repeats
  // over the 2N+1 perturbed vectors.
  const StaticStructure structure(dft);
  const double top = structure.probability(probs);
  std::vector<ImportanceResult> out;
  for (ElementId id = 0; id < dft.size(); ++id) {
    const Element& e = dft.element(id);
    if (!e.isBasicEvent()) continue;
    ImportanceResult r;
    r.name = e.name;
    r.failureProbability = probs[id];
    std::vector<double> hi = probs, lo = probs;
    hi[id] = 1.0;
    lo[id] = 0.0;
    r.birnbaum = structure.probability(hi) - structure.probability(lo);
    r.criticality = top > 0.0 ? r.birnbaum * probs[id] / top : 0.0;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<std::vector<std::string>> minimalCutSets(const Dft& dft) {
  requireStatic(dft, "minimalCutSets");
  std::vector<std::vector<std::string>> out;
  for (const std::vector<ElementId>& cut :
       StaticStructure(dft).minimalCutSets()) {
    std::vector<std::string> names;
    for (ElementId id : cut) names.push_back(dft.element(id).name);
    out.push_back(std::move(names));
  }
  return out;
}

}  // namespace imcdft::diftree
