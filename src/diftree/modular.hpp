#pragma once

#include <string>
#include <vector>

#include "dft/model.hpp"

/// \file modular.hpp
/// The DIFTree modular analysis (Sections 2 and 5 of the paper):
/// the tree is split into independent modules; static modules are solved
/// with BDDs, dynamic modules by whole-module Markov chains, and each
/// solved module is replaced by a pseudo basic event with a constant
/// failure probability — which, as the paper stresses, is only sound when
/// the surrounding module is *static*.  A dynamic module is therefore
/// solved in one piece, which is precisely why DIFTree explodes on the
/// cascaded PAND system while the compositional approach does not.

namespace imcdft::diftree {

struct ModularSolveInfo {
  std::string moduleName;
  bool dynamic = false;
  /// Markov chain size for dynamic modules; 0 for BDD-solved static ones.
  std::size_t mcStates = 0;
  std::size_t mcTransitions = 0;
  double probability = 0.0;  ///< module failure probability at mission time
};

struct ModularResult {
  double unreliability = 0.0;
  std::vector<ModularSolveInfo> modules;
  /// The largest Markov chain any dynamic module needed.
  std::size_t largestMcStates = 0;
  std::size_t largestMcTransitions = 0;
};

/// Runs the DIFTree modular analysis at the given mission time.
/// Unrepairable trees only.
ModularResult modularAnalysis(const dft::Dft& dft, double missionTime);

/// Solves a purely static (sub)tree with the BDD engine; \p beProbability
/// gives each basic event's failure probability at the mission time.
double staticUnreliability(const dft::Dft& dft,
                           const std::vector<double>& beProbability);

/// Classic component-importance measures for static trees, computed on the
/// BDD (part of what DIFTree-era tooling reported for static modules).
struct ImportanceResult {
  std::string name;
  double failureProbability = 0.0;  ///< p_i at the mission time
  /// Birnbaum importance: dU/dp_i = U(p_i:=1) - U(p_i:=0).
  double birnbaum = 0.0;
  /// Criticality importance: birnbaum * p_i / U.
  double criticality = 0.0;
};

/// Importance of every basic event of a *static* tree at \p missionTime.
/// Throws UnsupportedError on dynamic trees.
std::vector<ImportanceResult> birnbaumImportance(const dft::Dft& dft,
                                                 double missionTime);

/// Minimal cut sets of a static tree, as sorted lists of element names.
std::vector<std::vector<std::string>> minimalCutSets(const dft::Dft& dft);

}  // namespace imcdft::diftree
