#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "dft/model.hpp"

/// \file modular.hpp
/// The DIFTree modular analysis (Sections 2 and 5 of the paper):
/// the tree is split into independent modules; static modules are solved
/// with BDDs, dynamic modules by whole-module Markov chains, and each
/// solved module is replaced by a pseudo basic event with a constant
/// failure probability — which, as the paper stresses, is only sound when
/// the surrounding module is *static*.  A dynamic module is therefore
/// solved in one piece, which is precisely why DIFTree explodes on the
/// cascaded PAND system while the compositional approach does not.

namespace imcdft::diftree {

struct ModularSolveInfo {
  std::string moduleName;
  bool dynamic = false;
  /// Markov chain size for dynamic modules; 0 for BDD-solved static ones.
  std::size_t mcStates = 0;
  std::size_t mcTransitions = 0;
  double probability = 0.0;  ///< module failure probability at mission time
};

struct ModularResult {
  double unreliability = 0.0;
  std::vector<ModularSolveInfo> modules;
  /// The largest Markov chain any dynamic module needed.
  std::size_t largestMcStates = 0;
  std::size_t largestMcTransitions = 0;
};

/// Runs the DIFTree modular analysis at the given mission time.
/// Unrepairable trees only.
ModularResult modularAnalysis(const dft::Dft& dft, double missionTime);

/// A static (sub)tree's structure function compiled to a BDD once and
/// evaluated any number of times — the DIFTree static solver with the BDD
/// construction hoisted out of the evaluation loop.  Callers that evaluate
/// the same tree under many probability vectors (mission-time grids,
/// importance measures, the engine's static-combination numeric path)
/// construct one StaticStructure and call probability() per vector;
/// staticUnreliability() below stays as the one-shot convenience.
class StaticStructure {
 public:
  /// Compiles \p dft's structure function: one BDD variable per basic
  /// event, ordered by element id.  Throws UnsupportedError when the tree
  /// contains anything but BEs and AND/OR/VOTING gates.
  explicit StaticStructure(const dft::Dft& dft);

  /// P(top fails) when basic event \p id fails independently with
  /// probability beProbability[id] (indexed by ElementId of the compiled
  /// tree; non-BE entries are ignored).
  double probability(const std::vector<double>& beProbability) const;

  /// probability() per row of \p beProbabilityPerTime (the per-time
  /// combination step of the numeric path).
  std::vector<double> curve(
      const std::vector<std::vector<double>>& beProbabilityPerTime) const;

  /// Basic events in variable order (ElementIds of the compiled tree).
  const std::vector<dft::ElementId>& basicEvents() const { return beOfVar_; }

  /// Minimal cut sets as sorted ElementId lists of the compiled tree.
  std::vector<std::vector<dft::ElementId>> minimalCutSets() const;

  std::size_t bddNodes() const { return manager_.size(root_); }

 private:
  std::vector<std::uint32_t> varOf_;     ///< ElementId -> BDD variable
  std::vector<dft::ElementId> beOfVar_;  ///< BDD variable -> ElementId
  bdd::BddManager manager_;
  bdd::NodeRef root_ = bdd::kFalse;
};

/// Solves a purely static (sub)tree with the BDD engine; \p beProbability
/// gives each basic event's failure probability at the mission time.
/// One-shot wrapper over StaticStructure — hoist the construction out
/// yourself when evaluating the same tree repeatedly.
double staticUnreliability(const dft::Dft& dft,
                           const std::vector<double>& beProbability);

/// Classic component-importance measures for static trees, computed on the
/// BDD (part of what DIFTree-era tooling reported for static modules).
struct ImportanceResult {
  std::string name;
  double failureProbability = 0.0;  ///< p_i at the mission time
  /// Birnbaum importance: dU/dp_i = U(p_i:=1) - U(p_i:=0).
  double birnbaum = 0.0;
  /// Criticality importance: birnbaum * p_i / U.
  double criticality = 0.0;
};

/// Importance of every basic event of a *static* tree at \p missionTime.
/// Throws UnsupportedError on dynamic trees.
std::vector<ImportanceResult> birnbaumImportance(const dft::Dft& dft,
                                                 double missionTime);

/// Minimal cut sets of a static tree, as sorted lists of element names.
std::vector<std::vector<std::string>> minimalCutSets(const dft::Dft& dft);

}  // namespace imcdft::diftree
