#pragma once

#include "ctmc/ctmc.hpp"
#include "dft/model.hpp"

/// \file monolithic.hpp
/// The DIFTree-style whole-tree Markov chain generation the paper uses as
/// its baseline (Section 4): starting from the all-operational state, fail
/// one basic event at a time, propagate the consequences instantaneously
/// (FDEP cascades, spare claims, gate firings), and create a CTMC state per
/// reachable configuration.  This is the approach whose state space
/// "grow[s] exponentially with the number of basic events".
///
/// Where the I/O-IMC semantics is nondeterministic (simultaneous FDEP
/// kills, spare claim races) this generator resolves deterministically in
/// declaration order, like the original tool.  The differential tests
/// compare it against the compositional pipeline on deterministic trees.

namespace imcdft::diftree {

struct MonolithicOptions {
  /// Stop expanding once the system has failed (the usual reliability
  /// truncation).  Disable to measure the full state space.
  bool truncateAtSystemFailure = true;
};

struct MonolithicResult {
  ctmc::Ctmc chain;  ///< labelled with "down" on system-failed states
  std::size_t numStates = 0;
  std::size_t numTransitions = 0;
};

/// Generates the whole-tree CTMC.  Supports the same feature set as the
/// compositional converter (checkConvertible).
MonolithicResult generateMonolithic(const dft::Dft& dft,
                                    const MonolithicOptions& opts = {});

/// Convenience: monolithic generation + uniformization.
double monolithicUnreliability(const dft::Dft& dft, double missionTime);

}  // namespace imcdft::diftree
