#pragma once

#include <cstddef>
#include <vector>

/// \file fox_glynn.hpp
/// Poisson probability weights for uniformization, in the spirit of
/// Fox & Glynn (1988).  Weights are computed in log space (numerically safe
/// for large q = Lambda*t) and truncated once the captured probability mass
/// reaches 1 - epsilon.

namespace imcdft::ctmc {

/// Truncated Poisson distribution with parameter \p q.
struct PoissonWeights {
  std::size_t left = 0;            ///< first index with non-negligible mass
  std::vector<double> weights;     ///< weights[k] = P(N = left + k)
  double totalMass = 0.0;          ///< sum of weights (>= 1 - epsilon)

  std::size_t right() const { return left + weights.size() - 1; }
};

/// Computes weights such that the truncated mass is at least 1 - epsilon.
/// \p q must be non-negative; q == 0 yields the point mass at 0.
PoissonWeights poissonWeights(double q, double epsilon);

}  // namespace imcdft::ctmc
