#pragma once

#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"

/// \file steady_state.hpp
/// Long-run distribution of a CTMC, used for the steady-state unavailability
/// of the repairable models of Section 7.2.

namespace imcdft::ctmc {

struct SteadyStateOptions {
  double tolerance = 1e-12;    ///< L-infinity convergence threshold
  std::size_t maxIterations = 2'000'000;
  double uniformizationSlack = 1.02;
};

/// Computes the limiting distribution by power iteration on the uniformized
/// DTMC (aperiodic thanks to the uniformization self-loops).  Requires the
/// chain to be a unichain (one closed recurrent class); this holds for all
/// repairable models the converter produces.  Throws NumericalError when the
/// iteration does not converge.
std::vector<double> steadyStateDistribution(const Ctmc& chain,
                                            const SteadyStateOptions& opts = {});

/// Long-run fraction of time spent in states carrying \p label.
double steadyStateLabelProbability(const Ctmc& chain, const std::string& label,
                                   const SteadyStateOptions& opts = {});

}  // namespace imcdft::ctmc
