#include "ctmc/lumping.hpp"

#include <algorithm>
#include <map>

namespace imcdft::ctmc {

namespace {

using RateVector = std::vector<std::pair<std::uint32_t, double>>;

RateVector rateSignature(const Ctmc& chain,
                         const std::vector<std::uint32_t>& classOf,
                         StateId s) {
  std::vector<std::pair<std::uint32_t, double>> raw;
  for (const auto& t : chain.rates[s]) raw.emplace_back(classOf[t.to], t.rate);
  std::sort(raw.begin(), raw.end());
  RateVector out;
  for (const auto& [cls, rate] : raw) {
    if (!out.empty() && out.back().first == cls)
      out.back().second += rate;
    else
      out.emplace_back(cls, rate);
  }
  return out;
}

}  // namespace

LumpResult lump(const Ctmc& chain) {
  chain.validate();
  const std::size_t n = chain.numStates();
  std::vector<std::uint32_t> classOf(n);
  std::uint32_t numClasses = 0;
  {
    std::map<std::uint32_t, std::uint32_t> byMask;
    for (StateId s = 0; s < n; ++s) {
      auto [it, inserted] = byMask.try_emplace(chain.labelMasks[s], numClasses);
      if (inserted) ++numClasses;
      classOf[s] = it->second;
    }
  }
  while (true) {
    std::map<std::pair<std::uint32_t, RateVector>, std::uint32_t> next;
    std::vector<std::uint32_t> newClassOf(n);
    for (StateId s = 0; s < n; ++s) {
      auto key = std::make_pair(classOf[s], rateSignature(chain, classOf, s));
      auto [it, inserted] =
          next.try_emplace(std::move(key), static_cast<std::uint32_t>(next.size()));
      (void)inserted;
      newClassOf[s] = it->second;
    }
    bool stable = next.size() == numClasses;
    numClasses = static_cast<std::uint32_t>(next.size());
    classOf = std::move(newClassOf);
    if (stable) break;
  }

  LumpResult result;
  result.classOf = classOf;
  Ctmc& q = result.quotient;
  q.rates.resize(numClasses);
  q.labelMasks.resize(numClasses, 0);
  q.labelNames = chain.labelNames;
  q.initial = classOf[chain.initial];
  std::vector<StateId> rep(numClasses, static_cast<StateId>(-1));
  for (StateId s = static_cast<StateId>(n); s-- > 0;) rep[classOf[s]] = s;
  for (std::uint32_t c = 0; c < numClasses; ++c) {
    q.labelMasks[c] = chain.labelMasks[rep[c]];
    for (const auto& [cls, rate] : rateSignature(chain, classOf, rep[c]))
      q.rates[c].push_back({rate, cls});
  }
  q.validate();
  return result;
}

}  // namespace imcdft::ctmc
