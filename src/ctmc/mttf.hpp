#pragma once

#include <string>

#include "ctmc/ctmc.hpp"

/// \file mttf.hpp
/// Mean time to failure: the expected time until the chain first enters a
/// state carrying a given label.  On the failure-absorbed chain the
/// analysis layer extracts, this is the system MTTF.
///
/// The expectation is finite only when the labelled states are reached with
/// probability one.  Trees whose top event may never fire (a PAND whose
/// inputs fail in the wrong order, an inhibited failure mode) have infinite
/// MTTF; the solver detects this by reachability instead of diverging.

namespace imcdft::ctmc {

struct MttfResult {
  /// Expected hitting time; +infinity when finite == false.
  double value = 0.0;
  /// False when the label is missed with positive probability (or is
  /// unreachable altogether).
  bool finite = true;
};

/// Expected time to first reach a state labelled \p label from the initial
/// state.  Solves the linear hitting-time system by dense Gaussian
/// elimination over the reachable unlabelled states, so it is intended for
/// the small aggregated chains the analysis layer produces.
MttfResult expectedTimeToLabel(const Ctmc& chain, const std::string& label);

}  // namespace imcdft::ctmc
