#include "ctmc/fox_glynn.hpp"

#include <cmath>

#include "common/error.hpp"

namespace imcdft::ctmc {

PoissonWeights poissonWeights(double q, double epsilon) {
  if (q < 0.0) throw NumericalError("poissonWeights: negative parameter");
  require(epsilon > 0.0 && epsilon < 1.0, "poissonWeights: bad epsilon");
  PoissonWeights out;
  if (q == 0.0) {
    out.left = 0;
    out.weights = {1.0};
    out.totalMass = 1.0;
    return out;
  }

  auto logPmf = [q](std::size_t k) {
    // lgamma_r, not std::lgamma: the latter writes the global signgam,
    // which races when concurrent sessions solve transients in parallel.
    int sign = 0;
    return -q + static_cast<double>(k) * std::log(q) -
           ::lgamma_r(static_cast<double>(k) + 1.0, &sign);
  };

  const std::size_t mode = static_cast<std::size_t>(q);
  // Walk left from the mode until the pmf is negligible relative to the
  // mode, then accumulate rightwards until 1 - epsilon mass is captured.
  const double logCut = logPmf(mode) + std::log(epsilon) - 40.0;
  std::size_t left = mode;
  while (left > 0 && logPmf(left - 1) > logCut) --left;

  std::vector<double> weights;
  double mass = 0.0;
  std::size_t k = left;
  while (true) {
    double w = std::exp(logPmf(k));
    weights.push_back(w);
    mass += w;
    if (k >= mode && mass >= 1.0 - epsilon) break;
    ++k;
    if (k > mode + 10 * (std::sqrt(q) + 50.0) + 1e6)
      throw NumericalError("poissonWeights: truncation failed to converge");
  }
  out.left = left;
  out.weights = std::move(weights);
  out.totalMass = mass;
  return out;
}

}  // namespace imcdft::ctmc
