#include "ctmc/mttf.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace imcdft::ctmc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// States reachable from \p from following transitions forward.
std::vector<bool> forwardReachable(const Ctmc& chain, StateId from) {
  std::vector<bool> seen(chain.numStates(), false);
  std::vector<StateId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (const Transition& t : chain.rates[s])
      if (!seen[t.to]) {
        seen[t.to] = true;
        stack.push_back(t.to);
      }
  }
  return seen;
}

/// States from which some labelled state is reachable (backward closure).
std::vector<bool> canReachLabel(const Ctmc& chain, int labelIdx) {
  const std::size_t n = chain.numStates();
  std::vector<std::vector<StateId>> pred(n);
  for (StateId s = 0; s < n; ++s)
    for (const Transition& t : chain.rates[s]) pred[t.to].push_back(s);
  std::vector<bool> can(n, false);
  std::vector<StateId> stack;
  for (StateId s = 0; s < n; ++s)
    if (chain.hasLabel(s, labelIdx)) {
      can[s] = true;
      stack.push_back(s);
    }
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (StateId p : pred[s])
      if (!can[p]) {
        can[p] = true;
        stack.push_back(p);
      }
  }
  return can;
}

}  // namespace

MttfResult expectedTimeToLabel(const Ctmc& chain, const std::string& label) {
  chain.validate();
  const int labelIdx = chain.labelIndex(label);
  if (labelIdx < 0) return {kInf, false};
  if (chain.hasLabel(chain.initial, labelIdx)) return {0.0, true};

  const std::vector<bool> reachable = forwardReachable(chain, chain.initial);
  const std::vector<bool> hits = canReachLabel(chain, labelIdx);

  // The hitting time is finite iff every reachable unlabelled state still
  // has a path to the label AND cannot linger forever: a reachable state
  // from which the label is unreachable is entered with positive
  // probability, and so is any absorbing unlabelled state.
  std::vector<StateId> transientStates;
  std::vector<int> indexOf(chain.numStates(), -1);
  for (StateId s = 0; s < chain.numStates(); ++s) {
    if (!reachable[s] || chain.hasLabel(s, labelIdx)) continue;
    if (!hits[s]) return {kInf, false};
    indexOf[s] = static_cast<int>(transientStates.size());
    transientStates.push_back(s);
  }

  // E[s] = 1/exit(s) + sum_{s'} (rate(s,s')/exit(s)) E[s'], E[label] = 0.
  // Assemble exit(s) E[s] - sum rate(s,s') E[s'] = 1 and eliminate.
  const std::size_t n = transientStates.size();
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    StateId s = transientStates[i];
    double exit = chain.exitRate(s);
    // hits[s] guarantees an outgoing transition exists, so exit > 0.
    a[i][i] += exit;
    a[i][n] = 1.0;
    for (const Transition& t : chain.rates[s]) {
      if (chain.hasLabel(t.to, labelIdx)) continue;
      a[i][indexOf[t.to]] -= t.rate;
    }
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    require(std::fabs(a[col][col]) > 1e-300,
            "expectedTimeToLabel: singular hitting-time system");
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || a[r][col] == 0.0) continue;
      double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
    }
  }

  const int initialIdx = indexOf[chain.initial];
  return {a[initialIdx][n] / a[initialIdx][initialIdx], true};
}

}  // namespace imcdft::ctmc
