#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"

/// \file lumping.hpp
/// Exact (ordinary) lumping of CTMCs: the special case of the paper's
/// aggregation when no interactive transitions are present.  Lumping
/// respects state labels and preserves all transient and steady-state
/// label probabilities.

namespace imcdft::ctmc {

struct LumpResult {
  Ctmc quotient;
  std::vector<std::uint32_t> classOf;  ///< original state -> quotient state
};

/// Computes the coarsest exact lumping that respects labels.
LumpResult lump(const Ctmc& chain);

}  // namespace imcdft::ctmc
