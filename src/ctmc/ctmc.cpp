#include "ctmc/ctmc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imcdft::ctmc {

std::size_t Ctmc::numTransitions() const {
  std::size_t n = 0;
  for (const auto& v : rates) n += v.size();
  return n;
}

double Ctmc::exitRate(StateId s) const {
  double sum = 0.0;
  for (const auto& t : rates[s]) sum += t.rate;
  return sum;
}

double Ctmc::maxExitRate() const {
  double m = 0.0;
  for (StateId s = 0; s < numStates(); ++s) m = std::max(m, exitRate(s));
  return m;
}

int Ctmc::labelIndex(const std::string& label) const {
  for (std::size_t i = 0; i < labelNames.size(); ++i)
    if (labelNames[i] == label) return static_cast<int>(i);
  return -1;
}

void Ctmc::validate() const {
  require(!rates.empty(), "Ctmc: no states");
  require(initial < rates.size(), "Ctmc: initial state out of range");
  require(labelMasks.size() == rates.size(), "Ctmc: label array size mismatch");
  require(labelNames.size() <= 32, "Ctmc: more than 32 labels");
  for (const auto& out : rates)
    for (const auto& t : out) {
      require(t.rate > 0.0, "Ctmc: non-positive rate");
      require(t.to < rates.size(), "Ctmc: transition target out of range");
    }
}

double probabilityOfLabel(const Ctmc& chain,
                          const std::vector<double>& distribution,
                          const std::string& label) {
  int idx = chain.labelIndex(label);
  require(idx >= 0, "Ctmc: unknown label '" + label + "'");
  require(distribution.size() == chain.numStates(),
          "Ctmc: distribution size mismatch");
  double p = 0.0;
  for (StateId s = 0; s < chain.numStates(); ++s)
    if (chain.hasLabel(s, idx)) p += distribution[s];
  return p;
}

}  // namespace imcdft::ctmc
