#include "ctmc/transient.hpp"

#include <algorithm>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "ctmc/fox_glynn.hpp"
#include "obs/trace.hpp"

namespace imcdft::ctmc {

namespace {

/// One vector-matrix product with the uniformized DTMC:
/// out = in * P where P(s,s') = rate(s,s')/Lambda and
/// P(s,s) additionally carries 1 - exit(s)/Lambda.
void stepUniformized(const Ctmc& chain, double lambda,
                     const std::vector<double>& in, std::vector<double>& out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (StateId s = 0; s < chain.numStates(); ++s) {
    double mass = in[s];
    if (mass == 0.0) continue;
    double exit = 0.0;
    for (const auto& t : chain.rates[s]) {
      out[t.to] += mass * (t.rate / lambda);
      exit += t.rate;
    }
    out[s] += mass * (1.0 - exit / lambda);
  }
}

}  // namespace

std::vector<double> transientDistribution(const Ctmc& chain,
                                          std::vector<double> initial,
                                          double t,
                                          const TransientOptions& opts) {
  chain.validate();
  require(t >= 0.0, "transientDistribution: negative time");
  require(initial.size() == chain.numStates(),
          "transientDistribution: initial distribution size mismatch");
  const double maxExit = chain.maxExitRate();
  if (t == 0.0 || maxExit == 0.0) return initial;

  const double lambda = opts.uniformizationSlack * maxExit;
  PoissonWeights pw = poissonWeights(lambda * t, opts.epsilon);

  obs::TraceSpan span("ctmc.solve");
  span.arg("states", chain.numStates());
  span.arg("iterations", pw.left + pw.weights.size());

  std::vector<double> current = std::move(initial);
  std::vector<double> next(chain.numStates());
  std::vector<double> result(chain.numStates(), 0.0);

  // Advance to the left truncation point, then accumulate weighted iterates.
  for (std::size_t k = 0; k < pw.left; ++k) {
    if (opts.cancel) opts.cancel->checkpoint("transient", chain.numStates());
    stepUniformized(chain, lambda, current, next);
    std::swap(current, next);
  }
  for (std::size_t i = 0; i < pw.weights.size(); ++i) {
    if (opts.cancel) opts.cancel->checkpoint("transient", chain.numStates());
    const double w = pw.weights[i] / pw.totalMass;  // renormalized truncation
    for (StateId s = 0; s < chain.numStates(); ++s)
      result[s] += w * current[s];
    if (i + 1 < pw.weights.size()) {
      stepUniformized(chain, lambda, current, next);
      std::swap(current, next);
    }
  }
  return result;
}

std::vector<double> transientDistribution(const Ctmc& chain, double t,
                                          const TransientOptions& opts) {
  std::vector<double> initial(chain.numStates(), 0.0);
  initial[chain.initial] = 1.0;
  return transientDistribution(chain, std::move(initial), t, opts);
}

std::vector<std::vector<double>> transientDistributions(
    const Ctmc& chain, std::vector<double> initial,
    const std::vector<double>& times, const TransientOptions& opts) {
  chain.validate();
  require(initial.size() == chain.numStates(),
          "transientDistributions: initial distribution size mismatch");
  for (double t : times)
    require(t >= 0.0, "transientDistributions: negative time");
  const double maxExit = chain.maxExitRate();

  std::vector<std::vector<double>> out(times.size());
  if (maxExit == 0.0) {
    for (std::vector<double>& o : out) o = initial;
    return out;
  }
  const double lambda = opts.uniformizationSlack * maxExit;

  // One truncated Poisson window per time point; the iterate sweep below
  // runs once, to the right edge of the widest window.
  std::vector<PoissonWeights> windows(times.size());
  std::size_t maxRight = 0;
  bool anyPositive = false;
  for (std::size_t j = 0; j < times.size(); ++j) {
    if (times[j] == 0.0) {
      out[j] = initial;
      continue;
    }
    windows[j] = poissonWeights(lambda * times[j], opts.epsilon);
    maxRight = std::max(maxRight, windows[j].right());
    anyPositive = true;
    out[j].assign(chain.numStates(), 0.0);
  }
  if (!anyPositive) return out;

  obs::TraceSpan span("ctmc.solve");
  span.arg("states", chain.numStates());
  span.arg("points", times.size());
  span.arg("iterations", maxRight + 1);

  std::vector<double> current = std::move(initial);
  std::vector<double> next(chain.numStates());
  for (std::size_t k = 0; true; ++k) {
    if (opts.cancel) opts.cancel->checkpoint("transient", chain.numStates());
    for (std::size_t j = 0; j < times.size(); ++j) {
      if (times[j] == 0.0) continue;
      const PoissonWeights& pw = windows[j];
      if (k < pw.left || k > pw.right()) continue;
      const double w = pw.weights[k - pw.left] / pw.totalMass;
      std::vector<double>& acc = out[j];
      for (StateId s = 0; s < chain.numStates(); ++s)
        acc[s] += w * current[s];
    }
    if (k == maxRight) break;
    stepUniformized(chain, lambda, current, next);
    std::swap(current, next);
  }
  return out;
}

double probabilityOfLabelAt(const Ctmc& chain, const std::string& label,
                            double t, const TransientOptions& opts) {
  return probabilityOfLabel(chain, transientDistribution(chain, t, opts),
                            label);
}

std::vector<double> labelCurve(const Ctmc& chain, const std::string& label,
                               const std::vector<double>& times,
                               const TransientOptions& opts) {
  std::vector<double> initial(chain.numStates(), 0.0);
  if (!initial.empty()) initial[chain.initial] = 1.0;
  std::vector<std::vector<double>> distributions =
      transientDistributions(chain, std::move(initial), times, opts);
  std::vector<double> out;
  out.reserve(times.size());
  for (const std::vector<double>& pi : distributions)
    out.push_back(probabilityOfLabel(chain, pi, label));
  return out;
}

}  // namespace imcdft::ctmc
