#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file ctmc.hpp
/// Explicit-state continuous-time Markov chains.  The analysis layer
/// extracts these from fully composed, fully hidden, deterministic I/O-IMC
/// (Section 5 of the paper: "The final I/O-IMC reduces in many cases to a
/// CTMC.  This CTMC can then be solved using standard methods").

namespace imcdft::ctmc {

using StateId = std::uint32_t;

/// One exponential transition.
struct Transition {
  double rate;
  StateId to;
};

/// A CTMC with labelled states.  Aggregate type; invariants are checked by
/// validate() which every solver calls.
struct Ctmc {
  StateId initial = 0;
  std::vector<std::vector<Transition>> rates;  ///< out-adjacency per state
  std::vector<std::uint32_t> labelMasks;       ///< bitset over labelNames
  std::vector<std::string> labelNames;

  std::size_t numStates() const { return rates.size(); }
  std::size_t numTransitions() const;

  /// Total outgoing rate of \p s (self-loops included).
  double exitRate(StateId s) const;

  /// Largest exit rate over all states (uniformization constant base).
  double maxExitRate() const;

  /// Index of \p label in labelNames or -1.
  int labelIndex(const std::string& label) const;
  bool hasLabel(StateId s, int labelIdx) const {
    return labelIdx >= 0 && (labelMasks[s] >> labelIdx) & 1u;
  }

  /// Throws ModelError on malformed chains (negative rates, bad targets,
  /// mismatched array sizes).
  void validate() const;
};

/// Sums \p distribution over the states carrying \p label.
double probabilityOfLabel(const Ctmc& chain,
                          const std::vector<double>& distribution,
                          const std::string& label);

}  // namespace imcdft::ctmc
