#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"

/// \file transient.hpp
/// Transient analysis by uniformization: pi(t) = sum_k Poisson(q; k) pi P^k
/// with P the uniformized DTMC.  This is the "standard method" [18] the
/// paper applies to the final aggregated CTMC to obtain, e.g., the system
/// unreliability at the mission time.

namespace imcdft {
class CancelToken;  // common/cancel.hpp
}

namespace imcdft::ctmc {

struct TransientOptions {
  double epsilon = 1e-10;       ///< truncation error bound
  double uniformizationSlack = 1.02;  ///< Lambda = slack * max exit rate
  /// Cooperative cancellation: when set, every uniformization step (one
  /// vector-matrix product) calls CancelToken::checkpoint(), so a sweep
  /// with a huge truncation window (stiff chain, large lambda*t) unwinds
  /// on an exhausted budget instead of running to the right edge.  Not
  /// owned; the caller keeps the token alive across the call.
  const CancelToken* cancel = nullptr;
};

/// Distribution over states at time \p t starting from chain.initial.
std::vector<double> transientDistribution(const Ctmc& chain, double t,
                                          const TransientOptions& opts = {});

/// Distribution at time \p t from an arbitrary initial distribution.
std::vector<double> transientDistribution(const Ctmc& chain,
                                          std::vector<double> initial,
                                          double t,
                                          const TransientOptions& opts = {});

/// Distributions at several time points from one initial distribution,
/// sharing the uniformized power vectors: the iterates pi P^k depend only
/// on the uniformization rate, so one sweep up to the largest truncation
/// point serves every time point.  The Fox-Glynn weights are computed once
/// per time point (cheap); the vector-matrix products (expensive) run once
/// in total instead of once per point.  Each returned distribution is
/// bitwise identical to the corresponding single-time call: per point, the
/// same weights multiply the same iterates and accumulate in the same
/// order.  Points need not be sorted; duplicates are fine.
std::vector<std::vector<double>> transientDistributions(
    const Ctmc& chain, std::vector<double> initial,
    const std::vector<double>& times, const TransientOptions& opts = {});

/// P(state carries \p label at time \p t).  With failure states made
/// absorbing this is exactly the paper's unreliability measure; without, it
/// is the instantaneous unavailability of Section 7.2.
double probabilityOfLabelAt(const Ctmc& chain, const std::string& label,
                            double t, const TransientOptions& opts = {});

/// Evaluates probabilityOfLabelAt over many time points through one shared
/// uniformization sweep (transientDistributions); this is the inner loop of
/// every time-grid measure, including the static-combination numeric path.
std::vector<double> labelCurve(const Ctmc& chain, const std::string& label,
                               const std::vector<double>& times,
                               const TransientOptions& opts = {});

}  // namespace imcdft::ctmc
