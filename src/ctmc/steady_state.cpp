#include "ctmc/steady_state.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace imcdft::ctmc {

std::vector<double> steadyStateDistribution(const Ctmc& chain,
                                            const SteadyStateOptions& opts) {
  chain.validate();
  const std::size_t n = chain.numStates();
  const double maxExit = chain.maxExitRate();
  if (maxExit == 0.0) {
    // Every state is absorbing: the chain never leaves its initial state.
    std::vector<double> pi(n, 0.0);
    pi[chain.initial] = 1.0;
    return pi;
  }
  const double lambda = opts.uniformizationSlack * maxExit;

  // Start from the initial state (correct limit for unichains; for chains
  // with several closed classes the limit depends on the start state, which
  // is exactly what the caller observes this way).
  std::vector<double> current(n, 0.0), next(n, 0.0);
  current[chain.initial] = 1.0;

  for (std::size_t iter = 0; iter < opts.maxIterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (StateId s = 0; s < n; ++s) {
      double mass = current[s];
      if (mass == 0.0) continue;
      double exit = 0.0;
      for (const auto& t : chain.rates[s]) {
        next[t.to] += mass * (t.rate / lambda);
        exit += t.rate;
      }
      next[s] += mass * (1.0 - exit / lambda);
    }
    double diff = 0.0;
    for (StateId s = 0; s < n; ++s)
      diff = std::max(diff, std::fabs(next[s] - current[s]));
    std::swap(current, next);
    if (diff < opts.tolerance) return current;
  }
  throw NumericalError("steadyStateDistribution: power iteration did not converge");
}

double steadyStateLabelProbability(const Ctmc& chain, const std::string& label,
                                   const SteadyStateOptions& opts) {
  return probabilityOfLabel(chain, steadyStateDistribution(chain, opts), label);
}

}  // namespace imcdft::ctmc
