#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ioimc/model.hpp"

namespace imcdft {
class CancelToken;  // common/cancel.hpp
class WorkerPool;   // common/worker_pool.hpp
}

/// \file otf_partition.hpp
/// Signature-based weak-bisimulation refinement over the *partially
/// explored* synchronized product — the minimization half of the fused
/// compose-and-minimize engine (otf_compose.hpp).
///
/// The refiner sees the product mid-exploration: some visited states are
/// *expanded* (all successors generated), the rest form the frontier.  It
/// computes the converged weak-bisimulation partition of the visited
/// region where every unexpanded state is pinned to its own singleton
/// class.  That pinning is what makes the result sound before exploration
/// finishes: two expanded states only land in one class when their encoded
/// signatures agree *including* the singleton classes of the frontier
/// states they can reach, so everything still unknown about the product
/// lies behind the exact same frontier states for both — their futures
/// beyond the explored region are literally shared.  The partition
/// (extended with singletons for the unvisited remainder) is therefore a
/// weak bisimulation of the full product, and collapsing a multi-member
/// class is final: later exploration can only confirm it.

namespace imcdft::ioimc::otf {

/// View of the partially explored product.  All vectors are indexed by
/// product-state id; \p rep must be a fully compressed union-find table
/// (targets in the adjacency rows are raw ids and resolve through it).
struct PartialGraph {
  const std::vector<std::vector<InteractiveTransition>>* inter = nullptr;
  const std::vector<std::vector<MarkovianTransition>>* markov = nullptr;
  const std::vector<std::uint32_t>* labelMask = nullptr;
  const std::vector<StateId>* rep = nullptr;
  const std::vector<std::uint8_t>* expanded = nullptr;
  /// Composite role table (post-hiding: to-be-hidden outputs are Internal).
  const std::vector<ActionRole>* roles = nullptr;
  bool outputsUrgent = true;
};

/// Partition of the live region; classOf is parallel to the live list
/// passed to refinePartial (dense indices, not product-state ids).
struct PartialPartition {
  std::vector<std::uint32_t> classOf;
  std::uint32_t numClasses = 0;
  /// Converged weak tau-target classes per class (sorted, CSR layout:
  /// row c is classTauTargets[classTauOffsets[c]..classTauOffsets[c+1])).
  /// A class invariant; the engine's collapse uses it to recognize input
  /// edges into the class's tau-closure (implicit-self-loop equivalents
  /// that must not survive into a merged row).
  std::vector<std::uint32_t> classTauOffsets;
  std::vector<std::uint32_t> classTauTargets;

  bool tauReaches(std::uint32_t cls, std::uint32_t target) const {
    auto begin = classTauTargets.begin() + classTauOffsets[cls];
    auto end = classTauTargets.begin() + classTauOffsets[cls + 1];
    return std::binary_search(begin, end, target);
  }
};

/// Computes the converged partition described above.  \p live must be
/// sorted ascending and contain exactly the representative ids of the
/// current live region (no merged, no pruned states); every edge of a live
/// expanded state must resolve — through \p g.rep — to a live state, or a
/// ModelError is thrown (the engine treats that as an invariant failure
/// and falls back to the classic path).
///
/// \p pool, when non-null, parallelizes the per-iteration signature
/// encoding over fixed state blocks; interning stays sequential in
/// ascending dense order, so the partition is bitwise identical for any
/// pool size (including none).  Small live regions ignore the pool.
/// \p cancel, when non-null, is checkpointed once per encoded block in the
/// parallel path (site "otf-refine"), so a budget can trip inside the
/// refinement loop itself; the sequential path relies on the engine's
/// frontier checkpoints, exactly as before.
PartialPartition refinePartial(const PartialGraph& g,
                               const std::vector<StateId>& live,
                               WorkerPool* pool = nullptr,
                               const CancelToken* cancel = nullptr);

}  // namespace imcdft::ioimc::otf
