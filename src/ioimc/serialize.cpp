#include "ioimc/serialize.hpp"

#include <bit>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

namespace imcdft::ioimc {

void ByteWriter::u32(std::uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out_.append(b, 4);
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void ByteWriter::raw(const void* data, std::size_t size) {
  out_.append(static_cast<const char*>(data), size);
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(data_[pos_ + i]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t lo = u32();
  std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

void serializeModel(const IOIMC& m, ByteWriter& out) {
  out.str(m.name());
  // The signature's three name lists double as the action table: a
  // transition's action is encoded as its index in inputs|outputs|internals
  // concatenation order, which is stable across symbol tables.
  const Signature& sig = m.signature();
  std::unordered_map<ActionId, std::uint32_t> actionIndex;
  std::uint32_t next = 0;
  auto writeActions = [&](const std::vector<ActionId>& actions) {
    out.u32(static_cast<std::uint32_t>(actions.size()));
    for (ActionId a : actions) {
      out.str(m.actionName(a));
      actionIndex.emplace(a, next++);
    }
  };
  writeActions(sig.inputs());
  writeActions(sig.outputs());
  writeActions(sig.internals());

  const std::uint32_t numStates = static_cast<std::uint32_t>(m.numStates());
  out.u32(numStates);
  out.u32(m.initial());

  // CSR rows in state order: per-state lengths, then the flat data arrays
  // in their stored order (prefix sums on load rebuild identical offsets).
  for (StateId s = 0; s < numStates; ++s)
    out.u32(static_cast<std::uint32_t>(m.interactive(s).size()));
  for (const InteractiveTransition& t : m.allInteractive()) {
    out.u32(actionIndex.at(t.action));
    out.u32(t.to);
  }
  for (StateId s = 0; s < numStates; ++s)
    out.u32(static_cast<std::uint32_t>(m.markovian(s).size()));
  for (const MarkovianTransition& t : m.allMarkovian()) {
    out.f64(t.rate);
    out.u32(t.to);
  }

  for (StateId s = 0; s < numStates; ++s) out.u32(m.labelMask(s));
  out.u32(static_cast<std::uint32_t>(m.labelNames().size()));
  for (const std::string& label : m.labelNames()) out.str(label);
}

std::optional<IOIMC> deserializeModel(ByteReader& in,
                                      const SymbolTablePtr& symbols) {
  std::string name = in.str();

  Signature sig;
  std::vector<ActionId> actionTable;
  auto readActions = [&](ActionKind kind) {
    std::uint32_t n = in.u32();
    // A name costs at least 4 bytes (its length field): reject counts the
    // remaining bytes cannot possibly hold before resizing anything.
    if (n > in.remaining() / 4 + 1) n = 0;
    for (std::uint32_t i = 0; i < n && in.ok(); ++i) {
      ActionId a = symbols->intern(in.str());
      actionTable.push_back(a);
      try {
        sig.add(a, kind);
      } catch (const Error&) {
        return false;  // duplicate action across roles: malformed
      }
    }
    return in.ok();
  };
  if (!readActions(ActionKind::Input) || !readActions(ActionKind::Output) ||
      !readActions(ActionKind::Internal))
    return std::nullopt;

  const std::uint32_t numStates = in.u32();
  const std::uint32_t initial = in.u32();
  if (numStates > in.remaining() / 4 + 1 || !in.ok()) return std::nullopt;

  auto readLengths = [&](std::vector<std::uint32_t>& lens) {
    lens.resize(numStates);
    for (std::uint32_t s = 0; s < numStates; ++s) lens[s] = in.u32();
    return in.ok();
  };

  CsrInteractive inter;
  {
    std::vector<std::uint32_t> lens;
    if (!readLengths(lens)) return std::nullopt;
    inter.offsets.reserve(numStates + 1);
    for (std::uint32_t s = 0; s < numStates; ++s) {
      inter.beginState();
      for (std::uint32_t i = 0; i < lens[s] && in.ok(); ++i) {
        std::uint32_t action = in.u32();
        std::uint32_t to = in.u32();
        if (action >= actionTable.size()) return std::nullopt;
        inter.data.push_back({actionTable[action], to});
      }
    }
    inter.finish();
  }

  CsrMarkovian markov;
  {
    std::vector<std::uint32_t> lens;
    if (!readLengths(lens)) return std::nullopt;
    markov.offsets.reserve(numStates + 1);
    for (std::uint32_t s = 0; s < numStates; ++s) {
      markov.beginState();
      for (std::uint32_t i = 0; i < lens[s] && in.ok(); ++i) {
        double rate = in.f64();
        std::uint32_t to = in.u32();
        markov.data.push_back({rate, to});
      }
    }
    markov.finish();
  }

  std::vector<std::uint32_t> labelMasks(numStates);
  for (std::uint32_t s = 0; s < numStates; ++s) labelMasks[s] = in.u32();

  std::vector<std::string> labelNames;
  std::uint32_t numLabels = in.u32();
  if (numLabels > 32 || !in.ok()) return std::nullopt;
  for (std::uint32_t i = 0; i < numLabels; ++i) labelNames.push_back(in.str());

  if (!in.ok()) return std::nullopt;
  try {
    return IOIMC(std::move(name), symbols, std::move(sig), initial,
                 std::move(inter), std::move(markov), std::move(labelMasks),
                 std::move(labelNames));
  } catch (const Error&) {
    // The model-level validation (target bounds, positive rates, signature
    // consistency) is the last line of defense against corrupted payloads
    // that happen to parse.
    return std::nullopt;
  }
}

}  // namespace imcdft::ioimc
