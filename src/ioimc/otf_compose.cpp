#include "ioimc/otf_compose.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "ioimc/compose_internal.hpp"
#include "ioimc/ops.hpp"
#include "ioimc/otf_partition.hpp"
#include "ioimc/signature_interner.hpp"
#include "obs/trace.hpp"

namespace imcdft::ioimc::otf {

namespace {

using detail::GroupedModel;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

enum class Status : std::uint8_t {
  Frontier,  ///< visited, successors not yet generated
  Expanded,  ///< all successors generated
  Merged,    ///< collapsed into a representative (permanent)
  Dead,      ///< unreachable after a collapse; revived if reached again
};

/// The growable, collapsible product graph.  Ids are assigned in discovery
/// order and never reused; merged ids resolve through the union-find.
struct ProductStore {
  std::vector<std::pair<StateId, StateId>> pairs;
  std::unordered_map<std::uint64_t, StateId> ids;
  std::vector<Status> status;
  std::vector<StateId> parent;  ///< union-find, representative = lowest id
  std::vector<std::vector<InteractiveTransition>> inter;
  std::vector<std::vector<MarkovianTransition>> markov;
  std::vector<std::uint32_t> labels;

  StateId find(StateId s) {
    while (parent[s] != s) {
      parent[s] = parent[parent[s]];
      s = parent[s];
    }
    return s;
  }

  std::size_t rowSize(StateId s) const {
    return inter[s].size() + markov[s].size();
  }
  void freeRow(StateId s) {
    std::vector<InteractiveTransition>().swap(inter[s]);
    std::vector<MarkovianTransition>().swap(markov[s]);
  }
};

/// Thrown for conditions that abort the fused engine but are served
/// correctly by the classic path (the caller falls back).
struct OtfAbort {
  std::string reason;
};

class OtfEngine {
 public:
  OtfEngine(const IOIMC& a, const IOIMC& b,
            const std::vector<ActionId>& hiddenOutputs, const OtfOptions& opts)
      : a_(a),
        b_(b),
        opts_(opts),
        roleA_(actionRoles(a)),
        roleB_(actionRoles(b)),
        groupedA_(detail::groupModel(a)),
        groupedB_(detail::groupModel(b)) {
    detail::checkCompatible(a, b);
    sig_ = detail::compositeSignature(a, b);
    for (ActionId h : hiddenOutputs) sig_.hideOutput(h);
    labelUnion_ = detail::mergeLabels(a, b);
    // Composite role table *after* hiding: the refinement must treat the
    // hidden synchronizations as tau from the very first frontier.
    croles_.assign(a.symbols()->size(), ActionRole::None);
    for (ActionId x : sig_.inputs()) croles_[x] = ActionRole::Input;
    for (ActionId x : sig_.outputs()) croles_[x] = ActionRole::Output;
    for (ActionId x : sig_.internals()) croles_[x] = ActionRole::Internal;
  }

  IOIMC run(OtfStats& stats) {
    stats_ = &stats;
    cadence_ = std::max(1.0, opts_.refineCadence);
    const auto loopStart = Clock::now();
    std::optional<obs::TraceSpan> span;
    span.emplace("otf.explore");
    stateOf(a_.initial(), b_.initial());
    // LIFO order: subtrees complete early, so dead regions become
    // sink-collapsible and interior states lose their frontier contact
    // (and become weak-mergeable) long before exploration ends — under
    // breadth-first order nearly every visited state sits close to the
    // frontier until the very end and the live region cannot shrink.
    while (!queue_.empty()) {
      const StateId id = queue_.back();
      queue_.pop_back();
      if (st_.status[id] != Status::Frontier) continue;  // stale entry
      // Budget checkpoint before the expansion work.  A BudgetExceeded
      // from here deliberately does NOT become an OtfAbort: falling back
      // to the classic chain would just re-explode the same product
      // without a live-region bound — otfComposeAggregate rethrows it.
      if (opts_.weak.cancel && (pops_++ & 255u) == 0u)
        opts_.weak.cancel->checkpoint("otf-frontier", liveStates_,
                                      liveTransitions_);
      expand(id);
      notePeak();
      if (opts_.maxLiveStates && liveStates_ > opts_.maxLiveStates)
        throw OtfAbort{"live region exceeded the configured cap of " +
                       std::to_string(opts_.maxLiveStates) + " states"};
      maybeRefine();
    }
    // Expansion time is the frontier loop minus the in-loop reductions the
    // sub-phase timers already claimed.
    stats_->expandSeconds =
        std::max(0.0, secondsSince(loopStart) - inLoopReduceSeconds_);
    span->arg("visited", stats_->statesVisited);
    span->arg("refine_rounds", stats_->refinementRounds);
    span.reset();
    span.emplace("otf.finish");
    return finish();
  }

  bool fixpointVerified() const { return fixpointVerified_; }

 private:
  static std::uint64_t key(StateId sa, StateId sb) {
    return (static_cast<std::uint64_t>(sa) << 32) | sb;
  }

  StateId stateOf(StateId sa, StateId sb) {
    auto [it, inserted] =
        st_.ids.try_emplace(key(sa, sb), static_cast<StateId>(st_.pairs.size()));
    const StateId id = it->second;
    if (inserted) {
      st_.pairs.emplace_back(sa, sb);
      st_.status.push_back(Status::Frontier);
      st_.parent.push_back(id);
      st_.inter.emplace_back();
      st_.markov.emplace_back();
      st_.labels.push_back(
          labelUnion_.compositeMask(a_.labelMask(sa), b_.labelMask(sb)));
      ++liveStates_;
      ++stats_->statesVisited;
      queue_.push_back(id);
    } else {
      // A previously pruned state (or the pruned representative of a
      // merged one) became reachable again: revive it as frontier
      // (expanded rows were freed on death, so it re-expands).
      const StateId r = st_.find(id);
      if (st_.status[r] == Status::Dead) {
        st_.status[r] = Status::Frontier;
        ++liveStates_;
        ++stats_->statesVisited;
        queue_.push_back(r);
      }
    }
    return id;
  }

  void expand(StateId id) {
    st_.status[id] = Status::Expanded;
    const auto [sa, sb] = st_.pairs[id];
    // stateOf may grow the adjacency arrays, so the row is re-indexed on
    // every push instead of held by reference across interning calls.
    detail::forEachProductTransition(
        a_, b_, roleA_, roleB_, groupedA_, groupedB_, sa, sb,
        [&](ActionId act, StateId ta, StateId tb) {
          const StateId to = stateOf(ta, tb);
          st_.inter[id].push_back({act, to});
        },
        [&](double rate, StateId ta, StateId tb) {
          const StateId to = stateOf(ta, tb);
          st_.markov[id].push_back({rate, to});
        });
    liveTransitions_ += st_.rowSize(id);
  }

  void notePeak() {
    stats_->peakLiveStates = std::max(stats_->peakLiveStates, liveStates_);
    stats_->peakLiveTransitions =
        std::max(stats_->peakLiveTransitions, liveTransitions_);
  }

  /// Adaptive cadence: a pass runs when the live region grew by the
  /// current cadence factor since the last pass.  After an unproductive
  /// pass (it removed less than 1/8 of the live states) the working
  /// cadence doubles, capped at 8x the configured base, so a product
  /// whose live region genuinely has to grow stops paying for refinements
  /// that cannot shrink it; the first productive pass resets the cadence.
  /// Decisions depend only on live-state counts — never on wall time — so
  /// runs are reproducible, and the knob cannot change result bytes (the
  /// quotient tail reaches the minimal canonical quotient no matter when
  /// intermediate passes ran).  A shadow counter tracks what the old
  /// fixed-doubling policy would have done, so refinePassesSkipped
  /// reports the passes this policy saved.
  void maybeRefine() {
    if (liveStates_ < opts_.refineThreshold) return;
    const bool fixedWouldRun = liveStates_ >= 2 * lastFixedLive_;
    if (static_cast<double>(liveStates_) <
        cadence_ * static_cast<double>(lastRefineLive_)) {
      if (fixedWouldRun) {
        ++stats_->refinePassesSkipped;
        lastFixedLive_ = std::max(liveStates_, opts_.refineThreshold / 2);
      }
      return;
    }
    const std::size_t before = liveStates_;
    refineAndPrune();
    const std::size_t removed = before - liveStates_;
    const double base = std::max(1.0, opts_.refineCadence);
    cadence_ = removed * 8 < before ? std::min(cadence_ * 2.0, base * 8.0)
                                    : base;
    lastRefineLive_ = std::max(liveStates_, opts_.refineThreshold / 2);
    lastFixedLive_ = lastRefineLive_;
  }

  void refineAndPrune() {
    ++stats_->refinementRounds;
    // The inline sink collapse implements the same abstraction as the
    // classic chain's collapseUnobservableSinks; when the caller disabled
    // that pass, the fused engine must preserve those states too.
    auto t0 = Clock::now();
    bool changed;
    {
      obs::TraceSpan span("otf.collapse");
      changed = opts_.collapseSinks && sinkCollapseInline();
    }
    double dt = secondsSince(t0);
    stats_->collapseSeconds += dt;
    inLoopReduceSeconds_ += dt;
    t0 = Clock::now();
    {
      obs::TraceSpan span("otf.refine");
      changed = weakCollapseInline() || changed;
      if (changed) pruneUnreachable();
    }
    dt = secondsSince(t0);
    stats_->refineSeconds += dt;
    inLoopReduceSeconds_ += dt;
  }

  /// Encoding pool for refinePartial: the caller's shared pool when
  /// provided (reused across composition steps), otherwise one created
  /// lazily — only once the live region is large enough that the parallel
  /// path can engage at all.
  WorkerPool* encodingPool() {
    if (!poolDecided_) {
      poolDecided_ = true;
      if (opts_.encodePool) {
        if (opts_.encodePool->threads() > 1)
          stats_->intraWorkers = opts_.encodePool->threads();
      } else {
        unsigned t = opts_.intraThreads;
        if (t == 0) t = std::thread::hardware_concurrency();
        if (t == 0) t = 1;
        if (t > 1) {
          pool_ = std::make_unique<WorkerPool>(t);
          stats_->intraWorkers = pool_->threads();
        }
      }
    }
    return opts_.encodePool ? opts_.encodePool : pool_.get();
  }

  void collectLive(std::vector<StateId>& rep, std::vector<StateId>& live) {
    const std::size_t total = st_.pairs.size();
    rep.resize(total);
    for (StateId i = 0; i < total; ++i) rep[i] = st_.find(i);
    live.clear();
    live.reserve(liveStates_);
    for (StateId i = 0; i < total; ++i)
      if (st_.status[i] == Status::Frontier || st_.status[i] == Status::Expanded)
        live.push_back(i);
  }

  /// The co-inductive sink collapse of collapseUnobservableSinks, run over
  /// the partially explored graph with every frontier state conservatively
  /// observable (its future is unknown).  States whose entire *explored*
  /// firable future is unobservable and same-mask are exactly the states
  /// the final collapse would absorb too — merging them into one absorbing
  /// node per mask right now is what keeps the dead regions of the product
  /// (spares failing on after their module died) out of the live peak.
  bool sinkCollapseInline() {
    std::vector<StateId> rep, live;
    collectLive(rep, live);
    const std::size_t count = live.size();
    std::vector<std::uint32_t> denseOf(st_.pairs.size(),
                                       static_cast<std::uint32_t>(-1));
    for (std::uint32_t d = 0; d < count; ++d) denseOf[live[d]] = d;

    std::vector<std::uint8_t> bad(count, 0);
    std::vector<std::vector<std::uint32_t>> preds(count);
    for (std::uint32_t d = 0; d < count; ++d) {
      const StateId s = live[d];
      if (st_.status[s] != Status::Expanded) {
        bad[d] = 1;  // frontier: unknown future is observable until proven
        continue;
      }
      bool hasTau = false;
      for (const InteractiveTransition& t : st_.inter[s])
        if (croles_[t.action] == ActionRole::Internal) hasTau = true;
      auto target = [&](StateId raw) {
        const std::uint32_t td = denseOf[rep[raw]];
        require(td != static_cast<std::uint32_t>(-1),
                "otf sink collapse: edge target is not live");
        return td;
      };
      for (const InteractiveTransition& t : st_.inter[s]) {
        const std::uint32_t td = target(t.to);
        preds[td].push_back(d);
        if (croles_[t.action] == ActionRole::Output) bad[d] = 1;
        if (st_.labels[live[td]] != st_.labels[s]) bad[d] = 1;
      }
      for (const MarkovianTransition& t : st_.markov[s]) {
        if (hasTau) continue;  // maximal progress: this rate can never fire
        const std::uint32_t td = target(t.to);
        preds[td].push_back(d);
        if (st_.labels[live[td]] != st_.labels[s]) bad[d] = 1;
      }
    }
    std::vector<std::uint32_t> stack;
    for (std::uint32_t d = 0; d < count; ++d)
      if (bad[d]) stack.push_back(d);
    while (!stack.empty()) {
      const std::uint32_t d = stack.back();
      stack.pop_back();
      for (std::uint32_t p : preds[d])
        if (!bad[p]) {
          bad[p] = 1;
          stack.push_back(p);
        }
    }

    // One absorbing node per label mask, lowest id first (an absorbing
    // node from an earlier round is sinkable again and keeps its role).
    std::unordered_map<std::uint32_t, StateId> sinkOf;
    sinkOf.reserve(32);
    absorbed_.resize(st_.pairs.size(), 0);
    bool collapsedAny = false;
    for (std::uint32_t d = 0; d < count; ++d) {
      if (bad[d]) continue;
      const StateId s = live[d];
      auto [it, inserted] = sinkOf.try_emplace(st_.labels[s], s);
      if (inserted) {
        // s becomes the absorbing sink for its mask: its whole (dead)
        // row disappears, exactly like the final collapse would do.
        liveTransitions_ -= st_.rowSize(s);
        st_.freeRow(s);
        absorbed_[s] = 1;
        collapsedAny = true;
        continue;
      }
      st_.parent[s] = it->second;
      st_.status[s] = Status::Merged;
      liveTransitions_ -= st_.rowSize(s);
      st_.freeRow(s);
      --liveStates_;
      ++stats_->statesSinkCollapsed;
      collapsedAny = true;
    }
    return collapsedAny;
  }

  bool weakCollapseInline() {
    std::vector<StateId> rep, live;
    collectLive(rep, live);
    const std::size_t total = st_.pairs.size();
    std::vector<std::uint8_t> expanded(total, 0);
    for (StateId i = 0; i < total; ++i)
      expanded[i] = st_.status[i] == Status::Expanded ? 1 : 0;

    PartialGraph g;
    g.inter = &st_.inter;
    g.markov = &st_.markov;
    g.labelMask = &st_.labels;
    g.rep = &rep;
    g.expanded = &expanded;
    g.roles = &croles_;
    g.outputsUrgent = opts_.weak.outputsUrgent;
    WorkerPool* pool = live.size() >= detail::kIntraParallelMinStates
                           ? encodingPool()
                           : nullptr;
    const PartialPartition part =
        refinePartial(g, live, pool, opts_.weak.cancel);

    // Group the members of every multi-member class (in ascending-id
    // order; frontier states are singletons by construction, so every
    // member is expanded).
    std::vector<std::vector<StateId>> members(part.numClasses);
    bool collapsible = false;
    for (std::size_t d = 0; d < live.size(); ++d) {
      members[part.classOf[d]].push_back(live[d]);
      if (members[part.classOf[d]].size() == 2) collapsible = true;
    }
    if (!collapsible) return false;

    // Dense class of a raw edge target under this round's partition.
    std::vector<std::uint32_t> denseOf(st_.pairs.size(),
                                       static_cast<std::uint32_t>(-1));
    for (std::uint32_t d = 0; d < live.size(); ++d) denseOf[live[d]] = d;
    auto classOfTarget = [&](StateId raw) {
      const std::uint32_t dense = denseOf[rep[raw]];
      require(dense != static_cast<std::uint32_t>(-1),
              "otf merge: edge target is not live");
      return part.classOf[dense];
    };

    bool collapsedAny = false;
    for (std::uint32_t c = 0; c < part.numClasses; ++c) {
      if (members[c].size() < 2) continue;
      // Collapse onto the lowest-id member.  The merged node must
      // *realize* the whole class's behavior through direct edges — the
      // representative's raw row alone may reach parts of the class's
      // future only through a victim — so its new row is the union of all
      // members' rows with the intra-class (inert) taus dropped:
      //  * visible edges of every member are kept (each is a true move of
      //    a bisimilar state; the union is exactly the class signature);
      //  * inert taus disappear (they would become self-loops and, worse,
      //    make a semantically stable class look unstable);
      //  * a class with a stable member has no cross-class tau (a stable
      //    state can only match a tau move by staying put), and all its
      //    stable members carry bit-equal rate sums — the first stable
      //    member's Markovian row speaks for the class.  Unstable
      //    members' rates are maximal-progress phantoms and must not
      //    surface on the now-stable merged node;
      //  * a class with no stable member keeps every member's (phantom)
      //    rates — like the unstable states of the classic product — and,
      //    when it also has no cross-class tau, one inert tau survives as
      //    a self-loop so the divergent class stays unstable.
      const StateId repState = members[c].front();
      std::vector<InteractiveTransition> newInter;
      std::vector<MarkovianTransition> newMarkov;
      bool crossTau = false;
      bool haveStable = false;
      std::optional<InteractiveTransition> firstInertTau;
      for (const StateId m : members[c]) {
        bool stable = true;
        for (const InteractiveTransition& t : st_.inter[m]) {
          const ActionRole role = croles_[t.action];
          if (role == ActionRole::Internal) {
            stable = false;
            if (classOfTarget(t.to) == c) {
              if (!firstInertTau) firstInertTau = t;
              continue;  // inert: disappears in the merged node
            }
            crossTau = true;
            newInter.push_back(t);
          } else {
            if (role == ActionRole::Output && opts_.weak.outputsUrgent)
              stable = false;
            // An input edge into the class's own tau-closure is the
            // implicit-self-loop equivalent the signature filters away;
            // materializing it on the merged node would make a
            // semantically unobservable state look observable to the
            // sink collapse (and differ from the classic product, where
            // the edge-free bisimilar member realizes the class).
            if (role == ActionRole::Input &&
                part.tauReaches(c, classOfTarget(t.to)))
              continue;
            newInter.push_back(t);
          }
        }
        if (stable && !haveStable) {
          haveStable = true;
          newMarkov.assign(st_.markov[m].begin(), st_.markov[m].end());
        } else if (!haveStable) {
          newMarkov.insert(newMarkov.end(), st_.markov[m].begin(),
                           st_.markov[m].end());
        }
      }
      if (haveStable && crossTau)
        throw OtfAbort{
            "merged class has both a stable member and a cross-class tau"};
      if (!haveStable && !crossTau && firstInertTau)
        newInter.push_back({firstInertTau->action, repState});

      liveTransitions_ += newInter.size() + newMarkov.size();
      liveTransitions_ -= st_.rowSize(repState);
      st_.inter[repState] = std::move(newInter);
      st_.markov[repState] = std::move(newMarkov);
      absorbed_.resize(st_.pairs.size(), 0);
      absorbed_[repState] = 1;
      for (std::size_t i = 1; i < members[c].size(); ++i) {
        const StateId victim = members[c][i];
        if (st_.status[victim] != Status::Expanded)
          throw OtfAbort{"refinement merged an unexpanded frontier state"};
        st_.parent[victim] = repState;
        st_.status[victim] = Status::Merged;
        liveTransitions_ -= st_.rowSize(victim);
        st_.freeRow(victim);
        --liveStates_;
        ++stats_->statesMerged;
      }
      collapsedAny = true;
    }
    return collapsedAny;
  }

  /// Prune: anything no longer reachable from the root through
  /// representative-resolved edges is dropped; unexpanded states among
  /// them leave the work queue for good (unless revived later).  Absorbed
  /// representatives seed the walk too: their union (or absorbing) rows
  /// must keep resolving to live states, and they themselves stay live —
  /// their victims' rows are gone, so pruning them would be irreversible.
  void pruneUnreachable() {
    std::vector<StateId> rep, live;
    collectLive(rep, live);
    const std::size_t total = st_.pairs.size();
    std::vector<std::uint8_t> reachable(total, 0);
    std::vector<StateId> stack{st_.find(0)};
    reachable[stack.back()] = 1;
    for (StateId i : live) {
      if (i < absorbed_.size() && absorbed_[i] && !reachable[i] &&
          st_.status[i] == Status::Expanded) {
        reachable[i] = 1;
        stack.push_back(i);
      }
    }
    while (!stack.empty()) {
      const StateId v = stack.back();
      stack.pop_back();
      auto visit = [&](StateId raw) {
        const StateId w = st_.find(raw);
        if (!reachable[w]) {
          reachable[w] = 1;
          stack.push_back(w);
        }
      };
      for (const auto& t : st_.inter[v]) visit(t.to);
      for (const auto& t : st_.markov[v]) visit(t.to);
    }
    for (StateId i : live) {
      if (st_.status[i] == Status::Merged || reachable[i]) continue;
      liveTransitions_ -= st_.rowSize(i);
      st_.freeRow(i);
      st_.status[i] = Status::Dead;
      --liveStates_;
      ++stats_->statesPruned;
    }
  }

  /// One aggregation pass with the completeness check the fused path
  /// depends on: an incomplete canonical renumbering would leave the state
  /// order (hence the bytes) a function of the discovery order, which
  /// differs between the fused and the classic exploration — abort to the
  /// classic path instead of handing out order-dependent bytes.
  IOIMC aggregateChecked(const IOIMC& m) {
    bool canonicalComplete = false;
    IOIMC out = canonicalRenumber(
        restrictToReachable(weakQuotient(m, opts_.weak)), &canonicalComplete);
    if (!canonicalComplete)
      throw OtfAbort{
          "canonical renumbering could not separate all quotient states"};
    return out;
  }

  IOIMC finish() {
    // BFS renumbering of the reduced graph (interactive row first, then
    // Markovian, matching restrictToReachable's traversal convention).
    auto t0 = Clock::now();
    const StateId root = st_.find(0);
    constexpr StateId kUnvisited = static_cast<StateId>(-1);
    std::vector<StateId> remap(st_.pairs.size(), kUnvisited);
    std::vector<StateId> order;
    std::deque<StateId> bfs;
    remap[root] = 0;
    order.push_back(root);
    bfs.push_back(root);
    while (!bfs.empty()) {
      const StateId s = bfs.front();
      bfs.pop_front();
      if (st_.status[s] != Status::Expanded)
        throw OtfAbort{"unexpanded state survived in the final live graph"};
      auto visit = [&](StateId raw) {
        const StateId t = st_.find(raw);
        if (remap[t] == kUnvisited) {
          remap[t] = static_cast<StateId>(order.size());
          order.push_back(t);
          bfs.push_back(t);
        }
      };
      for (const auto& t : st_.inter[s]) visit(t.to);
      for (const auto& t : st_.markov[s]) visit(t.to);
    }

    CsrInteractive inter;
    CsrMarkovian markov;
    std::vector<std::uint32_t> labels(order.size());
    inter.offsets.reserve(order.size() + 1);
    markov.offsets.reserve(order.size() + 1);
    for (StateId ns = 0; ns < order.size(); ++ns) {
      const StateId os = order[ns];
      inter.beginState();
      markov.beginState();
      labels[ns] = st_.labels[os];
      for (const auto& t : st_.inter[os])
        inter.data.push_back({t.action, remap[st_.find(t.to)]});
      for (const auto& t : st_.markov[os])
        markov.data.push_back({t.rate, remap[st_.find(t.to)]});
    }
    inter.finish();
    markov.finish();

    IOIMC reduced("(" + a_.name() + "||" + b_.name() + ")", a_.symbols(),
                  std::move(sig_), 0, std::move(inter), std::move(markov),
                  std::move(labels), std::move(labelUnion_.names));
    stats_->renumberSeconds += secondsSince(t0);
    t0 = Clock::now();
    if (opts_.collapseSinks) reduced = collapseUnobservableSinks(reduced);
    stats_->collapseSeconds += secondsSince(t0);

    // The classic tail: aggregate to the minimal quotient, exactly like
    // the classic chain's aggregateFixpoint — but with the canonical
    // completeness checked on every pass (see aggregateChecked) instead of
    // re-running a whole verification refinement + renumbering on the
    // converged result: the fixpoint test below already is that
    // verification, and canonicalRenumber is idempotent on its output.
    t0 = Clock::now();
    IOIMC result = aggregateChecked(reduced);
    if (opts_.deferFixpoint) {
      // Hand the optimistic first-pass result out now; the caller runs
      // verifyAggregateFixpoint (typically overlapped with its next
      // composition step).  On typical models the first pass already is
      // the fixpoint and the bytes stand unchanged.
      fixpointVerified_ = false;
      stats_->renumberSeconds += secondsSince(t0);
      return result;
    }
    while (true) {
      const Partition check = weakBisimulation(result, opts_.weak);
      if (check.numClasses == result.numStates()) break;
      result = aggregateChecked(result);
    }
    stats_->renumberSeconds += secondsSince(t0);
    return result;
  }

  const IOIMC& a_;
  const IOIMC& b_;
  const OtfOptions& opts_;
  Signature sig_;
  detail::MergedLabels labelUnion_;
  std::vector<ActionRole> roleA_, roleB_, croles_;
  detail::GroupedModel groupedA_, groupedB_;

  ProductStore st_;
  /// Representatives that absorbed victims (their rows are class unions).
  std::vector<std::uint8_t> absorbed_;
  std::vector<StateId> queue_;  ///< LIFO exploration stack
  std::uint32_t pops_ = 0;      ///< frontier pops (budget-checkpoint stride)
  std::size_t liveStates_ = 0;
  std::size_t liveTransitions_ = 0;
  std::size_t lastRefineLive_ = 0;
  std::size_t lastFixedLive_ = 0;  ///< shadow of the old fixed-doubling policy
  double cadence_ = 2.0;           ///< working cadence (adapts per pass)
  double inLoopReduceSeconds_ = 0.0;
  bool poolDecided_ = false;
  bool fixpointVerified_ = true;
  std::unique_ptr<WorkerPool> pool_;
  OtfStats* stats_ = nullptr;
};

}  // namespace

OtfResult otfComposeAggregate(const IOIMC& a, const IOIMC& b,
                              const std::vector<ActionId>& hiddenOutputs,
                              const OtfOptions& opts) {
  OtfResult result;
  try {
    OtfEngine engine(a, b, hiddenOutputs, opts);
    result.model.emplace(engine.run(result.stats));
    result.fixpointVerified = engine.fixpointVerified();
    result.ok = true;
  } catch (const OtfAbort& abort) {
    result.ok = false;
    result.failureReason = abort.reason;
    result.model.reset();
  } catch (const BudgetExceeded&) {
    // A tripped budget must unwind the whole request, not trigger the
    // classic fallback: the classic chain would materialize the very
    // product the budget just refused to pay for.
    throw;
  } catch (const Error& e) {
    // Compatibility and validation errors: the classic path will throw the
    // same error — report, let the caller re-raise it there.
    result.ok = false;
    result.failureReason = e.what();
    result.model.reset();
  }
  return result;
}

std::optional<IOIMC> verifyAggregateFixpoint(const IOIMC& m,
                                             const WeakOptions& weak) {
  bool changed = false;
  IOIMC current = m;
  while (true) {
    const Partition p = weakBisimulation(current, weak);
    if (p.numClasses == current.numStates())
      return changed ? std::optional<IOIMC>(std::move(current)) : std::nullopt;
    bool canonicalComplete = false;
    current = canonicalRenumber(
        restrictToReachable(weakQuotient(current, weak)), &canonicalComplete);
    require(canonicalComplete,
            "otf deferred fixpoint: canonical renumbering could not separate "
            "all quotient states");
    changed = true;
  }
}

}  // namespace imcdft::ioimc::otf
