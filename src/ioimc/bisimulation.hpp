#pragma once

#include <cstdint>
#include <vector>

#include "ioimc/model.hpp"

/// \file bisimulation.hpp
/// State-space aggregation (step 4 of the paper's algorithm).
///
/// Weak bisimulation for I/O-IMC follows Hermanns' IMC weak bisimulation
/// [12] extended with the I/O conventions of the paper:
///  * internal transitions are abstracted (tau-saturation);
///  * maximal progress: Markovian behavior is measured only in *stable*
///    states.  A state is stable when it enables no internal transition and
///    (since I/O-IMC outputs are locally controlled and immediate) no output
///    transition;
///  * implicit input self-loops are taken into account;
///  * atomic state labels (e.g. the monitor's "down") are respected.
///
/// The implementation is signature-based partition refinement (Blom/Orzan
/// style) over the tau-closure, which for our model sizes is simple and
/// fast, followed by quotient construction from the converged signatures.

namespace imcdft {
class CancelToken;  // common/cancel.hpp
}

namespace imcdft::ioimc {

/// A computed partition of a model's states.
struct Partition {
  std::vector<std::uint32_t> classOf;  ///< state -> class index
  std::uint32_t numClasses = 0;
};

/// Options for weak bisimulation.
struct WeakOptions {
  /// Treat states with enabled output transitions as unstable (I/O-IMC
  /// urgency).  Disable to get plain IMC weak bisimulation.
  bool outputsUrgent = true;
  /// Cooperative cancellation: when set, every refinement iteration calls
  /// CancelToken::checkpoint() once per state pass, so an over-budget
  /// request unwinds from inside the aggregation instead of running it to
  /// completion.  Never changes a result — only whether it is produced.
  /// Not owned; the caller keeps the token alive across the call.
  const CancelToken* cancel = nullptr;
  /// Worker threads for the per-iteration signature-encoding pass of the
  /// weak refinement (0 = hardware concurrency).  Encoding is split into
  /// fixed state blocks filled concurrently, then interned sequentially in
  /// ascending state order, so the partition — and every byte downstream —
  /// is identical for any value; only small models (where the pool costs
  /// more than it saves) skip the split.  Deliberately excluded from
  /// semantic cache keys for the same reason.
  unsigned intraThreads = 1;
};

/// Computes the weak bisimulation partition of \p m.
Partition weakBisimulation(const IOIMC& m, const WeakOptions& opts = {});

/// Computes the strong bisimulation partition (no tau abstraction, no
/// maximal progress — this is exact CTMC lumping when the model has no
/// interactive transitions).  \p cancel, when set, is checkpointed once
/// per refinement pass (see WeakOptions::cancel).
Partition strongBisimulation(const IOIMC& m,
                             const CancelToken* cancel = nullptr);

/// Builds the quotient model induced by a weak-bisimulation partition.
/// All internal actions of the quotient are collapsed to the canonical
/// action "__tau"; inert (intra-class) internal moves disappear.
IOIMC weakQuotient(const IOIMC& m, const WeakOptions& opts = {});

/// Builds the quotient induced by strongBisimulation().
IOIMC strongQuotient(const IOIMC& m);

/// Convenience: weakQuotient followed by reachability restriction and
/// canonical renumbering (ioimc::canonicalRenumber).
IOIMC aggregate(const IOIMC& m, const WeakOptions& opts = {});

/// aggregate() iterated until the result is a fixpoint of the refinement
/// (weakBisimulation finds no further merges).  One quotient pass is not
/// always a fixpoint — quotient construction saturates tau edges and can
/// expose second-order merges — and the fused on-the-fly engine and the
/// classic chain only meet in the *minimal* quotient, so the engine
/// aggregates every composition step to fixpoint.  Terminates because the
/// state count strictly decreases; on typical models it converges after
/// the first pass.
IOIMC aggregateFixpoint(const IOIMC& m, const WeakOptions& opts = {});

}  // namespace imcdft::ioimc
