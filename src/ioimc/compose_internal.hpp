#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ioimc/model.hpp"

/// \file compose_internal.hpp
/// Shared internals of the two parallel-composition engines: the classic
/// full-product compose() (compose.cpp) and the fused on-the-fly
/// compose-and-minimize engine (otf_compose.cpp).  Both must synchronize
/// transitions, merge label universes and derive composite signatures in
/// *exactly* the same way — any divergence here would break the fused
/// engine's bit-identity guarantee — so the logic lives in one place.
/// Not part of the public ioimc surface.

namespace imcdft::ioimc::detail {

/// One input model's interactive transitions re-packed as per-state spans
/// grouped by action (groups sorted by action id, targets in declaration
/// order).  Built once per compose() input instead of hashing every state's
/// transitions into a fresh unordered_map per visited composite state.
struct GroupedModel {
  struct Group {
    ActionId action;
    std::uint32_t begin, end;  ///< target range in targets
  };
  std::vector<std::uint32_t> stateOffsets;  ///< n+1, into groups
  std::vector<Group> groups;
  std::vector<StateId> targets;

  std::span<const Group> groupsOf(StateId s) const {
    return {groups.data() + stateOffsets[s],
            stateOffsets[s + 1] - stateOffsets[s]};
  }
  /// Binary search for the group of \p action in state \p s.
  const Group* find(StateId s, ActionId action) const {
    auto gs = groupsOf(s);
    auto it = std::lower_bound(
        gs.begin(), gs.end(), action,
        [](const Group& g, ActionId a) { return g.action < a; });
    return (it != gs.end() && it->action == action) ? &*it : nullptr;
  }
  std::span<const StateId> targetsOf(const Group& g) const {
    return {targets.data() + g.begin, static_cast<std::size_t>(g.end - g.begin)};
  }
};

GroupedModel groupModel(const IOIMC& m);

/// Throws ModelError when the models are incompatible (shared outputs,
/// different symbol tables, internal/visible collisions).
void checkCompatible(const IOIMC& a, const IOIMC& b);

/// The composite signature: outputs = out(A) u out(B), inputs =
/// (in(A) u in(B)) \ outputs, internal = int(A) u int(B).
Signature compositeSignature(const IOIMC& a, const IOIMC& b);

/// Merged label universes of a composition: A's labels first, then B's
/// labels not already present (in B's declaration order), plus the index
/// remap for B's masks.  Throws when the union exceeds 32 labels.
struct MergedLabels {
  std::vector<std::string> names;
  std::vector<int> bRemap;  ///< B label index -> merged index

  std::uint32_t compositeMask(std::uint32_t maskA, std::uint32_t maskB) const {
    std::uint32_t mask = maskA;
    for (std::size_t i = 0; i < bRemap.size(); ++i)
      if ((maskB >> i) & 1u) mask |= 1u << bRemap[i];
    return mask;
  }
};

MergedLabels mergeLabels(const IOIMC& a, const IOIMC& b);

/// Emits every product transition of composite state (sa, sb) through two
/// callbacks, in exactly the order compose() materializes them: A's
/// Markovian row, B's Markovian row, then the interactive transitions
/// rooted at A's side followed by those rooted at B's side.
/// \p emitInteractive receives (action, targetA, targetB); \p emitMarkovian
/// receives (rate, targetA, targetB).
template <class EmitInteractive, class EmitMarkovian>
void forEachProductTransition(const IOIMC& a, const IOIMC& b,
                              const std::vector<ActionRole>& roleA,
                              const std::vector<ActionRole>& roleB,
                              const GroupedModel& groupedA,
                              const GroupedModel& groupedB, StateId sa,
                              StateId sb, EmitInteractive&& emitInteractive,
                              EmitMarkovian&& emitMarkovian) {
  using Role = ActionRole;

  // Markovian interleaving.
  for (const auto& t : a.markovian(sa)) emitMarkovian(t.rate, t.to, sb);
  for (const auto& t : b.markovian(sb)) emitMarkovian(t.rate, sa, t.to);

  // Transitions rooted at A's side.
  for (const GroupedModel::Group& g : groupedA.groupsOf(sa)) {
    const ActionId act = g.action;
    const bool internalA = roleA[act] == Role::Internal;
    const bool sharedWithB = !internalA && roleB[act] != Role::None;
    if (!sharedWithB) {
      // Interleave: internal actions and actions B does not know about.
      for (StateId ta : groupedA.targetsOf(g)) emitInteractive(act, ta, sb);
      continue;
    }
    if (roleA[act] == Role::Input && roleB[act] == Role::Output) {
      // Occurrence is controlled by B; handled on B's side below.
      continue;
    }
    // act is an output of A (B listens), or an input of both.
    const GroupedModel::Group* gb = groupedB.find(sb, act);
    if (!gb) {
      for (StateId ta : groupedA.targetsOf(g))
        emitInteractive(act, ta, sb);  // B stays (implicit)
    } else {
      for (StateId ta : groupedA.targetsOf(g))
        for (StateId tb : groupedB.targetsOf(*gb)) emitInteractive(act, ta, tb);
    }
  }

  // Transitions rooted at B's side.
  for (const GroupedModel::Group& g : groupedB.groupsOf(sb)) {
    const ActionId act = g.action;
    const bool internalB = roleB[act] == Role::Internal;
    const bool sharedWithA = !internalB && roleA[act] != Role::None;
    if (!sharedWithA) {
      for (StateId tb : groupedB.targetsOf(g)) emitInteractive(act, sa, tb);
      continue;
    }
    if (roleB[act] == Role::Input && roleA[act] == Role::Output) {
      continue;  // controlled by A; handled above
    }
    // act is an output of B, or an input of both.
    const GroupedModel::Group* ga = groupedA.find(sa, act);
    if (!ga) {
      for (StateId tb : groupedB.targetsOf(g))
        emitInteractive(act, sa, tb);  // A stays (implicit)
    } else if (roleB[act] == Role::Output) {
      // B controls the occurrence; A reacts with its explicit inputs.
      // (A's side skipped this case above.)
      for (StateId ta : groupedA.targetsOf(*ga))
        for (StateId tb : groupedB.targetsOf(g)) emitInteractive(act, ta, tb);
    }
    // Input-of-both with both explicit: already emitted on A's side.
  }
}

}  // namespace imcdft::ioimc::detail
