#include "ioimc/bisimulation.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "ioimc/builder.hpp"
#include "ioimc/ops.hpp"
#include "ioimc/signature_interner.hpp"
#include "ioimc/tau_closure.hpp"

namespace imcdft::ioimc {

namespace {

/// Rate vector: cumulative rate into each partition class, sorted by class.
using RateVector = std::vector<std::pair<std::uint32_t, double>>;

/// Structured signature of one state under the current partition; used only
/// for quotient construction (once per class).  The refinement loop itself
/// works on the flat token encoding below.
struct WeakSig {
  std::vector<std::uint32_t> tauTargets;  ///< classes weakly reachable by tau
  std::vector<std::pair<ActionId, std::uint32_t>> visible;  ///< weak moves
  std::vector<RateVector> stableRates;  ///< rate vectors of stable derivatives
};

using Role = ActionRole;

/// Tau-reachability and stability, shared with the semantic sink collapse
/// (see tau_closure.hpp).
using TauInfo = detail::TauClosure;

/// Deterministically accumulates (class, rate) pairs into a rate vector.
RateVector accumulateRates(std::vector<std::pair<std::uint32_t, double>> raw) {
  std::sort(raw.begin(), raw.end());
  RateVector out;
  for (const auto& [cls, rate] : raw) {
    if (!out.empty() && out.back().first == cls)
      out.back().second += rate;
    else
      out.emplace_back(cls, rate);
  }
  return out;
}

Partition initialByLabel(const IOIMC& m) {
  Partition p;
  p.classOf.resize(m.numStates());
  // Class numbering is by first encounter, so the map's iteration order
  // never matters; reserve for the worst case (every state its own mask).
  std::unordered_map<std::uint32_t, std::uint32_t> byMask;
  byMask.reserve(m.numStates());
  for (StateId s = 0; s < m.numStates(); ++s) {
    auto [it, inserted] =
        byMask.try_emplace(m.labelMask(s), p.numClasses);
    if (inserted) ++p.numClasses;
    p.classOf[s] = it->second;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Hashed signature refinement (Blom/Orzan style, flat-buffer edition).
//
// Each iteration canonicalizes every state's signature under the current
// partition into a reusable scratch buffer of 64-bit tokens, hashes it, and
// interns it via the shared detail::SignatureInterner; the interned index
// is the state's class in the refined partition.  Classes are numbered in
// order of first appearance (scanning states 0..n-1).
// ---------------------------------------------------------------------------

using detail::SignatureInterner;

/// Reusable scratch buffers for one state's weak-signature encoding.
struct WeakScratch {
  std::vector<std::uint32_t> tauTargets;
  std::vector<std::uint64_t> visible;
  std::vector<std::pair<std::uint32_t, double>> raw;
  std::vector<std::uint64_t> rateTokens;  ///< class/rate-bits pairs, flat
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rateVecs;  ///< ranges
};

/// Appends the canonical token encoding of state \p s's weak signature
/// under partition \p p to \p out.  Token stream: |tauTargets|, targets...,
/// |visible|, (action<<32|class)..., |rateVecs|, then per vector its length
/// and (class, rate-bits) token pairs.  Every section is sorted, so equal
/// signatures produce equal streams.
void encodeWeakSignature(const IOIMC& m, const TauInfo& tau,
                         const std::vector<Role>& roles, const Partition& p,
                         StateId s, WeakScratch& ws,
                         std::vector<std::uint64_t>& out) {
  auto closure = tau.closure(s);

  ws.tauTargets.clear();
  for (StateId u : closure) ws.tauTargets.push_back(p.classOf[u]);
  std::sort(ws.tauTargets.begin(), ws.tauTargets.end());
  ws.tauTargets.erase(
      std::unique(ws.tauTargets.begin(), ws.tauTargets.end()),
      ws.tauTargets.end());

  ws.visible.clear();
  for (StateId u : closure) {
    for (const auto& t : m.interactive(u)) {
      const Role r = roles[t.action];
      if (r == Role::Internal) continue;
      const bool isInput = r == Role::Input;
      for (StateId v : tau.closure(t.to)) {
        std::uint32_t c = p.classOf[v];
        // Implicit input self-loops make every tau-target an input target
        // for free; recording those adds no discriminating power, so filter
        // them to obtain the coarsest (minimal) quotient.
        if (isInput && std::binary_search(ws.tauTargets.begin(),
                                          ws.tauTargets.end(), c))
          continue;
        ws.visible.push_back((static_cast<std::uint64_t>(t.action) << 32) | c);
      }
    }
  }
  std::sort(ws.visible.begin(), ws.visible.end());
  ws.visible.erase(std::unique(ws.visible.begin(), ws.visible.end()),
                   ws.visible.end());

  ws.rateTokens.clear();
  ws.rateVecs.clear();
  for (StateId u : closure) {
    if (!tau.stable[u]) continue;
    ws.raw.clear();
    for (const auto& t : m.markovian(u))
      ws.raw.emplace_back(p.classOf[t.to], t.rate);
    std::sort(ws.raw.begin(), ws.raw.end());
    const std::uint32_t begin = static_cast<std::uint32_t>(ws.rateTokens.size());
    for (std::size_t i = 0; i < ws.raw.size();) {
      const std::uint32_t cls = ws.raw[i].first;
      double sum = 0.0;
      while (i < ws.raw.size() && ws.raw[i].first == cls) sum += ws.raw[i++].second;
      ws.rateTokens.push_back(cls);
      ws.rateTokens.push_back(std::bit_cast<std::uint64_t>(sum));
    }
    ws.rateVecs.emplace_back(begin,
                             static_cast<std::uint32_t>(ws.rateTokens.size()));
  }
  // Canonicalize the *set* of rate vectors: order them lexicographically by
  // token stream and drop duplicates.  (Positive doubles order the same way
  // as their bit patterns, so this matches ordering by value.)
  auto vecLess = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                     const std::pair<std::uint32_t, std::uint32_t>& y) {
    return std::lexicographical_compare(
        ws.rateTokens.begin() + x.first, ws.rateTokens.begin() + x.second,
        ws.rateTokens.begin() + y.first, ws.rateTokens.begin() + y.second);
  };
  auto vecEqual = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                      const std::pair<std::uint32_t, std::uint32_t>& y) {
    return x.second - x.first == y.second - y.first &&
           std::equal(ws.rateTokens.begin() + x.first,
                      ws.rateTokens.begin() + x.second,
                      ws.rateTokens.begin() + y.first);
  };
  std::sort(ws.rateVecs.begin(), ws.rateVecs.end(), vecLess);
  ws.rateVecs.erase(
      std::unique(ws.rateVecs.begin(), ws.rateVecs.end(), vecEqual),
      ws.rateVecs.end());

  out.push_back(ws.tauTargets.size());
  out.insert(out.end(), ws.tauTargets.begin(), ws.tauTargets.end());
  out.push_back(ws.visible.size());
  out.insert(out.end(), ws.visible.begin(), ws.visible.end());
  out.push_back(ws.rateVecs.size());
  for (const auto& [begin, end] : ws.rateVecs) {
    out.push_back(end - begin);
    out.insert(out.end(), ws.rateTokens.begin() + begin,
               ws.rateTokens.begin() + end);
  }
}

/// Structured weak signature of one state (for quotient construction).
WeakSig weakSignature(const IOIMC& m, const TauInfo& tau, const Partition& p,
                      StateId s) {
  WeakSig sig;
  for (StateId u : tau.closure(s)) sig.tauTargets.push_back(p.classOf[u]);
  std::sort(sig.tauTargets.begin(), sig.tauTargets.end());
  sig.tauTargets.erase(
      std::unique(sig.tauTargets.begin(), sig.tauTargets.end()),
      sig.tauTargets.end());

  auto inTauTargets = [&](std::uint32_t c) {
    return std::binary_search(sig.tauTargets.begin(), sig.tauTargets.end(), c);
  };

  for (StateId u : tau.closure(s)) {
    for (const auto& t : m.interactive(u)) {
      if (m.signature().isInternal(t.action)) continue;
      const bool isInput = m.signature().isInput(t.action);
      for (StateId v : tau.closure(t.to)) {
        std::uint32_t c = p.classOf[v];
        if (isInput && inTauTargets(c)) continue;
        sig.visible.emplace_back(t.action, c);
      }
    }
    if (tau.stable[u]) {
      std::vector<std::pair<std::uint32_t, double>> raw;
      for (const auto& t : m.markovian(u))
        raw.emplace_back(p.classOf[t.to], t.rate);
      sig.stableRates.push_back(accumulateRates(std::move(raw)));
    }
  }
  std::sort(sig.visible.begin(), sig.visible.end());
  sig.visible.erase(std::unique(sig.visible.begin(), sig.visible.end()),
                    sig.visible.end());
  std::sort(sig.stableRates.begin(), sig.stableRates.end());
  sig.stableRates.erase(
      std::unique(sig.stableRates.begin(), sig.stableRates.end()),
      sig.stableRates.end());
  return sig;
}

/// Resolves a 0 = hardware thread request.
unsigned resolveIntraThreads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Partition weakBisimulationWithTau(const IOIMC& m, const TauInfo& tau,
                                  const WeakOptions& opts) {
  const std::size_t n = m.numStates();
  const CancelToken* cancel = opts.cancel;
  const std::vector<Role> roles = actionRoles(m);
  Partition p = initialByLabel(m);
  SignatureInterner interner;
  std::vector<std::uint32_t> newClassOf(n);

  // Parallel per-iteration encode: workers fill disjoint state blocks with
  // token streams + hashes, then one thread interns every stream in
  // ascending state order — class numbering (first appearance in state
  // order) is therefore identical to the sequential loop's for any worker
  // count, which is the bitwise 1-vs-N-thread contract.  The sequential
  // path below stays byte-for-byte the old loop (same checkpoint cadence).
  const unsigned requested = resolveIntraThreads(opts.intraThreads);
  const std::size_t numBlocks =
      (n + detail::kIntraBlockStates - 1) / detail::kIntraBlockStates;
  const bool parallel =
      requested > 1 && n >= detail::kIntraParallelMinStates;
  std::unique_ptr<WorkerPool> pool;
  std::vector<detail::EncodedBlock> blocks;
  std::vector<WeakScratch> scratches;
  if (parallel) {
    pool = std::make_unique<WorkerPool>(static_cast<unsigned>(
        std::min<std::size_t>(requested, numBlocks)));
    blocks.resize(numBlocks);
    scratches.resize(pool->threads());
  } else {
    scratches.resize(1);
  }

  while (true) {
    // One checkpoint per refinement pass, plus a strided one inside the
    // (possibly huge) per-state interning loop.
    if (cancel) cancel->checkpoint("weak-refinement", n);
    interner.beginIteration(n);
    if (parallel) {
      pool->run(numBlocks, [&](std::size_t blk, unsigned worker) {
        detail::EncodedBlock& eb = blocks[blk];
        eb.clear();
        WeakScratch& ws = scratches[worker];
        if (cancel) cancel->checkpoint("weak-refinement", n);
        const StateId begin =
            static_cast<StateId>(blk * detail::kIntraBlockStates);
        const StateId end = static_cast<StateId>(
            std::min<std::size_t>(n, begin + detail::kIntraBlockStates));
        for (StateId s = begin; s < end; ++s) {
          const std::size_t at = eb.tokens.size();
          eb.tokens.push_back(p.classOf[s]);
          encodeWeakSignature(m, tau, roles, p, s, ws, eb.tokens);
          eb.ends.push_back(eb.tokens.size());
          eb.hashes.push_back(SignatureInterner::hashTokens(
              eb.tokens.data() + at, eb.tokens.size() - at));
        }
      });
      StateId s = 0;
      for (const detail::EncodedBlock& eb : blocks) {
        std::size_t at = 0;
        for (std::size_t i = 0; i < eb.ends.size(); ++i, ++s) {
          newClassOf[s] = interner.internTokens(eb.tokens.data() + at,
                                                eb.ends[i] - at, eb.hashes[i]);
          at = eb.ends[i];
        }
      }
    } else {
      WeakScratch& ws = scratches.front();
      for (StateId s = 0; s < n; ++s) {
        if (cancel && (s & 1023u) == 1023u)
          cancel->checkpoint("weak-refinement", n);
        auto& out = interner.scratch();
        out.clear();
        out.push_back(p.classOf[s]);
        encodeWeakSignature(m, tau, roles, p, s, ws, out);
        newClassOf[s] = interner.internScratch();
      }
    }
    const std::uint32_t newCount = interner.numClasses();
    const bool stable = newCount == p.numClasses;
    std::swap(p.classOf, newClassOf);
    p.numClasses = newCount;
    if (stable) break;
  }
  return p;
}

}  // namespace

Partition weakBisimulation(const IOIMC& m, const WeakOptions& opts) {
  return weakBisimulationWithTau(
      m, detail::computeTauClosure(m, opts.outputsUrgent), opts);
}

IOIMC weakQuotient(const IOIMC& m, const WeakOptions& opts) {
  TauInfo tau = detail::computeTauClosure(m, opts.outputsUrgent);
  Partition p = weakBisimulationWithTau(m, tau, opts);

  // Representative (lowest state id) per class, and its converged signature.
  std::vector<StateId> rep(p.numClasses, static_cast<StateId>(-1));
  for (StateId s = m.numStates(); s-- > 0;) rep[p.classOf[s]] = s;

  IOIMCBuilder b(m.name() + "/weak", m.symbols());
  b.reserveStates(p.numClasses);
  b.setInitial(p.classOf[m.initial()]);
  // Preserve the full visible signature for later composition.
  for (ActionId a : m.signature().inputs()) b.input(m.actionName(a));
  for (ActionId a : m.signature().outputs()) b.output(m.actionName(a));
  for (const std::string& labelName : m.labelNames()) b.declareLabel(labelName);
  ActionId tauAction = b.internal(kTauName);

  for (std::uint32_t c = 0; c < p.numClasses; ++c) {
    StateId r = rep[c];
    WeakSig sig = weakSignature(m, tau, p, r);
    // Labels.
    std::uint32_t mask = m.labelMask(r);
    for (std::size_t i = 0; i < m.labelNames().size(); ++i)
      if ((mask >> i) & 1u) b.label(c, m.labelNames()[i]);
    // Cross-class tau moves.
    bool hasCrossTau = false;
    for (std::uint32_t c2 : sig.tauTargets) {
      if (c2 == c) continue;
      b.interactive(c, tauAction, c2);
      hasCrossTau = true;
    }
    // Visible moves (input self-targets were already filtered away; an
    // output to the own class is observable and kept).
    for (const auto& [act, c2] : sig.visible) b.interactive(c, act, c2);
    // Markovian behavior only for classes without cross-class tau moves.
    if (!hasCrossTau && !sig.stableRates.empty()) {
      require(sig.stableRates.size() == 1,
              "weakQuotient: ambiguous rate vector in a stable class");
      for (const auto& [c2, rate] : sig.stableRates.front())
        b.markovian(c, rate, c2);
    }
  }
  return std::move(b).build();
}

IOIMC aggregate(const IOIMC& m, const WeakOptions& opts) {
  // The canonical renumbering at the end makes the aggregated model's bytes
  // a function of its isomorphism class alone: the classic
  // compose/hide/aggregate chain and the fused on-the-fly engine reach the
  // same minimal quotient through different intermediate graphs (hence
  // different state discovery orders), and renumbering both canonically is
  // what makes every downstream measure bit-identical between the paths.
  return canonicalRenumber(restrictToReachable(weakQuotient(m, opts)));
}

IOIMC aggregateFixpoint(const IOIMC& m, const WeakOptions& opts) {
  IOIMC current = aggregate(m, opts);
  while (true) {
    const Partition p = weakBisimulation(current, opts);
    if (p.numClasses == current.numStates()) return current;
    current = aggregate(current, opts);
  }
}

namespace {

/// Strong signature: exact moves per action plus the full rate vector.
struct StrongSig {
  std::vector<std::pair<ActionId, std::uint32_t>> moves;
  RateVector rates;
};

StrongSig strongSignature(const IOIMC& m, const Partition& p, StateId s) {
  StrongSig sig;
  for (const auto& t : m.interactive(s)) {
    std::uint32_t c = p.classOf[t.to];
    // Implicit input self-loop equivalence: an explicit input move into the
    // own class is indistinguishable from having no explicit move.
    if (m.signature().isInput(t.action) && c == p.classOf[s]) continue;
    sig.moves.emplace_back(t.action, c);
  }
  std::sort(sig.moves.begin(), sig.moves.end());
  sig.moves.erase(std::unique(sig.moves.begin(), sig.moves.end()),
                  sig.moves.end());
  std::vector<std::pair<std::uint32_t, double>> raw;
  for (const auto& t : m.markovian(s)) raw.emplace_back(p.classOf[t.to], t.rate);
  sig.rates = accumulateRates(std::move(raw));
  return sig;
}

/// Reusable scratch for one state's strong-signature encoding.
struct StrongScratch {
  std::vector<std::uint64_t> moves;
  std::vector<std::pair<std::uint32_t, double>> raw;
};

void encodeStrongSignature(const IOIMC& m, const std::vector<Role>& roles,
                           const Partition& p, StateId s, StrongScratch& ss,
                           std::vector<std::uint64_t>& out) {
  ss.moves.clear();
  for (const auto& t : m.interactive(s)) {
    std::uint32_t c = p.classOf[t.to];
    if (roles[t.action] == Role::Input && c == p.classOf[s]) continue;
    ss.moves.push_back((static_cast<std::uint64_t>(t.action) << 32) | c);
  }
  std::sort(ss.moves.begin(), ss.moves.end());
  ss.moves.erase(std::unique(ss.moves.begin(), ss.moves.end()),
                 ss.moves.end());

  ss.raw.clear();
  for (const auto& t : m.markovian(s)) ss.raw.emplace_back(p.classOf[t.to], t.rate);
  std::sort(ss.raw.begin(), ss.raw.end());

  out.push_back(ss.moves.size());
  out.insert(out.end(), ss.moves.begin(), ss.moves.end());
  for (std::size_t i = 0; i < ss.raw.size();) {
    const std::uint32_t cls = ss.raw[i].first;
    double sum = 0.0;
    while (i < ss.raw.size() && ss.raw[i].first == cls) sum += ss.raw[i++].second;
    out.push_back(cls);
    out.push_back(std::bit_cast<std::uint64_t>(sum));
  }
}

}  // namespace

Partition strongBisimulation(const IOIMC& m, const CancelToken* cancel) {
  const std::size_t n = m.numStates();
  const std::vector<Role> roles = actionRoles(m);
  Partition p = initialByLabel(m);
  SignatureInterner interner;
  StrongScratch ss;
  std::vector<std::uint32_t> newClassOf(n);
  while (true) {
    if (cancel) cancel->checkpoint("strong-refinement", n);
    interner.beginIteration(n);
    for (StateId s = 0; s < n; ++s) {
      if (cancel && (s & 1023u) == 1023u)
        cancel->checkpoint("strong-refinement", n);
      auto& out = interner.scratch();
      out.clear();
      out.push_back(p.classOf[s]);
      encodeStrongSignature(m, roles, p, s, ss, out);
      newClassOf[s] = interner.internScratch();
    }
    const std::uint32_t newCount = interner.numClasses();
    const bool stable = newCount == p.numClasses;
    std::swap(p.classOf, newClassOf);
    p.numClasses = newCount;
    if (stable) break;
  }
  return p;
}

IOIMC strongQuotient(const IOIMC& m) {
  Partition p = strongBisimulation(m);
  std::vector<StateId> rep(p.numClasses, static_cast<StateId>(-1));
  for (StateId s = m.numStates(); s-- > 0;) rep[p.classOf[s]] = s;

  IOIMCBuilder b(m.name() + "/strong", m.symbols());
  b.reserveStates(p.numClasses);
  b.setInitial(p.classOf[m.initial()]);
  for (ActionId a : m.signature().inputs()) b.input(m.actionName(a));
  for (ActionId a : m.signature().outputs()) b.output(m.actionName(a));
  for (ActionId a : m.signature().internals()) b.internal(m.actionName(a));
  for (const std::string& labelName : m.labelNames()) b.declareLabel(labelName);

  for (std::uint32_t c = 0; c < p.numClasses; ++c) {
    StateId r = rep[c];
    StrongSig sig = strongSignature(m, p, r);
    std::uint32_t mask = m.labelMask(r);
    for (std::size_t i = 0; i < m.labelNames().size(); ++i)
      if ((mask >> i) & 1u) b.label(c, m.labelNames()[i]);
    for (const auto& [act, c2] : sig.moves) b.interactive(c, act, c2);
    for (const auto& [c2, rate] : sig.rates) b.markovian(c, rate, c2);
  }
  return restrictToReachable(std::move(b).build());
}

}  // namespace imcdft::ioimc
