#include "ioimc/bisimulation.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <span>

#include "common/error.hpp"
#include "ioimc/builder.hpp"
#include "ioimc/ops.hpp"

namespace imcdft::ioimc {

namespace {

/// Rate vector: cumulative rate into each partition class, sorted by class.
using RateVector = std::vector<std::pair<std::uint32_t, double>>;

/// Structured signature of one state under the current partition; used only
/// for quotient construction (once per class).  The refinement loop itself
/// works on the flat token encoding below.
struct WeakSig {
  std::vector<std::uint32_t> tauTargets;  ///< classes weakly reachable by tau
  std::vector<std::pair<ActionId, std::uint32_t>> visible;  ///< weak moves
  std::vector<RateVector> stableRates;  ///< rate vectors of stable derivatives
};

using Role = ActionRole;

/// Tau-reachability (reflexive-transitive closure over internal
/// transitions) plus per-state stability.  Closures are computed per SCC of
/// the tau graph, in the reverse-topological order Tarjan produces, and
/// shared: states of one SCC point into one CSR row instead of each
/// carrying a copy of the closure vector.
struct TauInfo {
  std::vector<std::uint32_t> compOf;       ///< state -> tau-SCC
  std::vector<std::uint32_t> compOffsets;  ///< SCC -> row in compClosure
  std::vector<StateId> compClosure;        ///< sorted members, includes self
  std::vector<bool> stable;

  std::span<const StateId> closure(StateId s) const {
    std::uint32_t c = compOf[s];
    return {compClosure.data() + compOffsets[c],
            compOffsets[c + 1] - compOffsets[c]};
  }
};

std::vector<StateId> sortedUnion(const std::vector<StateId>& a,
                                 const std::vector<StateId>& b) {
  std::vector<StateId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

TauInfo computeTauInfo(const IOIMC& m, bool outputsUrgent) {
  const std::size_t n = m.numStates();
  const std::vector<Role> roles = actionRoles(m);
  std::vector<std::vector<StateId>> tauSucc(n);
  TauInfo info;
  info.stable.assign(n, true);
  for (StateId s = 0; s < n; ++s) {
    for (const auto& t : m.interactive(s)) {
      if (roles[t.action] == Role::Internal) {
        tauSucc[s].push_back(t.to);
        info.stable[s] = false;
      } else if (outputsUrgent && roles[t.action] == Role::Output) {
        info.stable[s] = false;
      }
    }
    std::sort(tauSucc[s].begin(), tauSucc[s].end());
    tauSucc[s].erase(std::unique(tauSucc[s].begin(), tauSucc[s].end()),
                     tauSucc[s].end());
  }

  // Iterative Tarjan SCC over the tau graph.
  constexpr StateId kUndef = static_cast<StateId>(-1);
  std::vector<StateId> index(n, kUndef), low(n, 0);
  info.compOf.assign(n, kUndef);
  std::vector<bool> onStack(n, false);
  std::vector<StateId> stack;
  std::uint32_t nextIndex = 0, numComps = 0;
  struct Frame {
    StateId v;
    std::size_t child;
  };
  std::vector<Frame> callStack;
  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kUndef) continue;
    callStack.push_back({root, 0});
    while (!callStack.empty()) {
      Frame& f = callStack.back();
      StateId v = f.v;
      if (f.child == 0) {
        index[v] = low[v] = nextIndex++;
        stack.push_back(v);
        onStack[v] = true;
      }
      bool descended = false;
      while (f.child < tauSucc[v].size()) {
        StateId w = tauSucc[v][f.child++];
        if (index[w] == kUndef) {
          callStack.push_back({w, 0});
          descended = true;
          break;
        }
        if (onStack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          StateId w = stack.back();
          stack.pop_back();
          onStack[w] = false;
          info.compOf[w] = numComps;
          if (w == v) break;
        }
        ++numComps;
      }
      callStack.pop_back();
      if (!callStack.empty()) {
        StateId parent = callStack.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }

  // Components are numbered such that every tau successor's component id is
  // strictly smaller (Tarjan closes sinks first); compute closures bottom-up
  // and flatten them into one shared CSR array.
  std::vector<std::vector<StateId>> compMembers(numComps);
  for (StateId s = 0; s < n; ++s) compMembers[info.compOf[s]].push_back(s);
  std::vector<std::vector<StateId>> compClosure(numComps);
  std::size_t totalClosure = 0;
  for (std::uint32_t c = 0; c < numComps; ++c) {
    std::vector<StateId> acc = compMembers[c];
    std::sort(acc.begin(), acc.end());
    std::vector<std::uint32_t> succComps;
    for (StateId s : compMembers[c])
      for (StateId t : tauSucc[s])
        if (info.compOf[t] != c) succComps.push_back(info.compOf[t]);
    std::sort(succComps.begin(), succComps.end());
    succComps.erase(std::unique(succComps.begin(), succComps.end()),
                    succComps.end());
    for (std::uint32_t sc : succComps) acc = sortedUnion(acc, compClosure[sc]);
    totalClosure += acc.size();
    compClosure[c] = std::move(acc);
  }
  info.compOffsets.reserve(numComps + 1);
  info.compClosure.reserve(totalClosure);
  for (std::uint32_t c = 0; c < numComps; ++c) {
    info.compOffsets.push_back(
        static_cast<std::uint32_t>(info.compClosure.size()));
    info.compClosure.insert(info.compClosure.end(), compClosure[c].begin(),
                            compClosure[c].end());
  }
  info.compOffsets.push_back(
      static_cast<std::uint32_t>(info.compClosure.size()));
  return info;
}

/// Deterministically accumulates (class, rate) pairs into a rate vector.
RateVector accumulateRates(std::vector<std::pair<std::uint32_t, double>> raw) {
  std::sort(raw.begin(), raw.end());
  RateVector out;
  for (const auto& [cls, rate] : raw) {
    if (!out.empty() && out.back().first == cls)
      out.back().second += rate;
    else
      out.emplace_back(cls, rate);
  }
  return out;
}

Partition initialByLabel(const IOIMC& m) {
  Partition p;
  p.classOf.resize(m.numStates());
  std::map<std::uint32_t, std::uint32_t> byMask;
  for (StateId s = 0; s < m.numStates(); ++s) {
    auto [it, inserted] =
        byMask.try_emplace(m.labelMask(s), p.numClasses);
    if (inserted) ++p.numClasses;
    p.classOf[s] = it->second;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Hashed signature refinement (Blom/Orzan style, flat-buffer edition).
//
// Each iteration canonicalizes every state's signature under the current
// partition into a reusable scratch buffer of 64-bit tokens, hashes it, and
// interns it in an open-addressing table; the interned index is the state's
// class in the refined partition.  Classes are numbered in order of first
// appearance (scanning states 0..n-1), which keeps the numbering identical
// to the ordered-map implementation this replaces.  All buffers are reused
// across iterations, so a refinement pass allocates only on growth.
// ---------------------------------------------------------------------------

class SignatureInterner {
 public:
  /// Prepares the table for up to \p expectedKeys distinct signatures.
  void beginIteration(std::size_t expectedKeys) {
    arena_.clear();
    sigOffsets_.clear();
    sigOffsets_.push_back(0);
    hashes_.clear();
    numClasses_ = 0;
    std::size_t cap = 64;
    while (cap < 2 * expectedKeys) cap <<= 1;
    table_.assign(cap, kEmpty);
  }

  /// The caller-filled token buffer for the signature being interned.
  std::vector<std::uint64_t>& scratch() { return scratch_; }

  /// Interns scratch() and returns its dense class id.
  std::uint32_t internScratch() {
    const std::uint64_t h = hashTokens(scratch_);
    const std::size_t mask = table_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(h) & mask;
    while (table_[idx] != kEmpty) {
      const std::uint32_t cls = table_[idx];
      if (hashes_[cls] == h && equalsClass(cls)) return cls;
      idx = (idx + 1) & mask;
    }
    const std::uint32_t cls = numClasses_++;
    table_[idx] = cls;
    hashes_.push_back(h);
    arena_.insert(arena_.end(), scratch_.begin(), scratch_.end());
    sigOffsets_.push_back(arena_.size());
    return cls;
  }

  std::uint32_t numClasses() const { return numClasses_; }

 private:
  static constexpr std::uint32_t kEmpty = static_cast<std::uint32_t>(-1);

  static std::uint64_t hashTokens(const std::vector<std::uint64_t>& tokens) {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ tokens.size();
    for (std::uint64_t t : tokens) {
      h ^= t;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
    }
    return h;
  }

  bool equalsClass(std::uint32_t cls) const {
    const std::uint64_t begin = sigOffsets_[cls], end = sigOffsets_[cls + 1];
    if (end - begin != scratch_.size()) return false;
    return std::equal(scratch_.begin(), scratch_.end(),
                      arena_.begin() + static_cast<std::ptrdiff_t>(begin));
  }

  std::vector<std::uint64_t> arena_;      ///< tokens of interned signatures
  std::vector<std::uint64_t> sigOffsets_; ///< per-class token range in arena_
  std::vector<std::uint64_t> hashes_;     ///< per-class hash
  std::vector<std::uint32_t> table_;      ///< open-addressing slots
  std::vector<std::uint64_t> scratch_;
  std::uint32_t numClasses_ = 0;
};

/// Reusable scratch buffers for one state's weak-signature encoding.
struct WeakScratch {
  std::vector<std::uint32_t> tauTargets;
  std::vector<std::uint64_t> visible;
  std::vector<std::pair<std::uint32_t, double>> raw;
  std::vector<std::uint64_t> rateTokens;  ///< class/rate-bits pairs, flat
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rateVecs;  ///< ranges
};

/// Appends the canonical token encoding of state \p s's weak signature
/// under partition \p p to \p out.  Token stream: |tauTargets|, targets...,
/// |visible|, (action<<32|class)..., |rateVecs|, then per vector its length
/// and (class, rate-bits) token pairs.  Every section is sorted, so equal
/// signatures produce equal streams.
void encodeWeakSignature(const IOIMC& m, const TauInfo& tau,
                         const std::vector<Role>& roles, const Partition& p,
                         StateId s, WeakScratch& ws,
                         std::vector<std::uint64_t>& out) {
  auto closure = tau.closure(s);

  ws.tauTargets.clear();
  for (StateId u : closure) ws.tauTargets.push_back(p.classOf[u]);
  std::sort(ws.tauTargets.begin(), ws.tauTargets.end());
  ws.tauTargets.erase(
      std::unique(ws.tauTargets.begin(), ws.tauTargets.end()),
      ws.tauTargets.end());

  ws.visible.clear();
  for (StateId u : closure) {
    for (const auto& t : m.interactive(u)) {
      const Role r = roles[t.action];
      if (r == Role::Internal) continue;
      const bool isInput = r == Role::Input;
      for (StateId v : tau.closure(t.to)) {
        std::uint32_t c = p.classOf[v];
        // Implicit input self-loops make every tau-target an input target
        // for free; recording those adds no discriminating power, so filter
        // them to obtain the coarsest (minimal) quotient.
        if (isInput && std::binary_search(ws.tauTargets.begin(),
                                          ws.tauTargets.end(), c))
          continue;
        ws.visible.push_back((static_cast<std::uint64_t>(t.action) << 32) | c);
      }
    }
  }
  std::sort(ws.visible.begin(), ws.visible.end());
  ws.visible.erase(std::unique(ws.visible.begin(), ws.visible.end()),
                   ws.visible.end());

  ws.rateTokens.clear();
  ws.rateVecs.clear();
  for (StateId u : closure) {
    if (!tau.stable[u]) continue;
    ws.raw.clear();
    for (const auto& t : m.markovian(u))
      ws.raw.emplace_back(p.classOf[t.to], t.rate);
    std::sort(ws.raw.begin(), ws.raw.end());
    const std::uint32_t begin = static_cast<std::uint32_t>(ws.rateTokens.size());
    for (std::size_t i = 0; i < ws.raw.size();) {
      const std::uint32_t cls = ws.raw[i].first;
      double sum = 0.0;
      while (i < ws.raw.size() && ws.raw[i].first == cls) sum += ws.raw[i++].second;
      ws.rateTokens.push_back(cls);
      ws.rateTokens.push_back(std::bit_cast<std::uint64_t>(sum));
    }
    ws.rateVecs.emplace_back(begin,
                             static_cast<std::uint32_t>(ws.rateTokens.size()));
  }
  // Canonicalize the *set* of rate vectors: order them lexicographically by
  // token stream and drop duplicates.  (Positive doubles order the same way
  // as their bit patterns, so this matches ordering by value.)
  auto vecLess = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                     const std::pair<std::uint32_t, std::uint32_t>& y) {
    return std::lexicographical_compare(
        ws.rateTokens.begin() + x.first, ws.rateTokens.begin() + x.second,
        ws.rateTokens.begin() + y.first, ws.rateTokens.begin() + y.second);
  };
  auto vecEqual = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                      const std::pair<std::uint32_t, std::uint32_t>& y) {
    return x.second - x.first == y.second - y.first &&
           std::equal(ws.rateTokens.begin() + x.first,
                      ws.rateTokens.begin() + x.second,
                      ws.rateTokens.begin() + y.first);
  };
  std::sort(ws.rateVecs.begin(), ws.rateVecs.end(), vecLess);
  ws.rateVecs.erase(
      std::unique(ws.rateVecs.begin(), ws.rateVecs.end(), vecEqual),
      ws.rateVecs.end());

  out.push_back(ws.tauTargets.size());
  out.insert(out.end(), ws.tauTargets.begin(), ws.tauTargets.end());
  out.push_back(ws.visible.size());
  out.insert(out.end(), ws.visible.begin(), ws.visible.end());
  out.push_back(ws.rateVecs.size());
  for (const auto& [begin, end] : ws.rateVecs) {
    out.push_back(end - begin);
    out.insert(out.end(), ws.rateTokens.begin() + begin,
               ws.rateTokens.begin() + end);
  }
}

/// Structured weak signature of one state (for quotient construction).
WeakSig weakSignature(const IOIMC& m, const TauInfo& tau, const Partition& p,
                      StateId s) {
  WeakSig sig;
  for (StateId u : tau.closure(s)) sig.tauTargets.push_back(p.classOf[u]);
  std::sort(sig.tauTargets.begin(), sig.tauTargets.end());
  sig.tauTargets.erase(
      std::unique(sig.tauTargets.begin(), sig.tauTargets.end()),
      sig.tauTargets.end());

  auto inTauTargets = [&](std::uint32_t c) {
    return std::binary_search(sig.tauTargets.begin(), sig.tauTargets.end(), c);
  };

  for (StateId u : tau.closure(s)) {
    for (const auto& t : m.interactive(u)) {
      if (m.signature().isInternal(t.action)) continue;
      const bool isInput = m.signature().isInput(t.action);
      for (StateId v : tau.closure(t.to)) {
        std::uint32_t c = p.classOf[v];
        if (isInput && inTauTargets(c)) continue;
        sig.visible.emplace_back(t.action, c);
      }
    }
    if (tau.stable[u]) {
      std::vector<std::pair<std::uint32_t, double>> raw;
      for (const auto& t : m.markovian(u))
        raw.emplace_back(p.classOf[t.to], t.rate);
      sig.stableRates.push_back(accumulateRates(std::move(raw)));
    }
  }
  std::sort(sig.visible.begin(), sig.visible.end());
  sig.visible.erase(std::unique(sig.visible.begin(), sig.visible.end()),
                    sig.visible.end());
  std::sort(sig.stableRates.begin(), sig.stableRates.end());
  sig.stableRates.erase(
      std::unique(sig.stableRates.begin(), sig.stableRates.end()),
      sig.stableRates.end());
  return sig;
}

Partition weakBisimulationWithTau(const IOIMC& m, const TauInfo& tau) {
  const std::size_t n = m.numStates();
  const std::vector<Role> roles = actionRoles(m);
  Partition p = initialByLabel(m);
  SignatureInterner interner;
  WeakScratch ws;
  std::vector<std::uint32_t> newClassOf(n);
  while (true) {
    interner.beginIteration(n);
    for (StateId s = 0; s < n; ++s) {
      auto& out = interner.scratch();
      out.clear();
      out.push_back(p.classOf[s]);
      encodeWeakSignature(m, tau, roles, p, s, ws, out);
      newClassOf[s] = interner.internScratch();
    }
    const std::uint32_t newCount = interner.numClasses();
    const bool stable = newCount == p.numClasses;
    std::swap(p.classOf, newClassOf);
    p.numClasses = newCount;
    if (stable) break;
  }
  return p;
}

}  // namespace

Partition weakBisimulation(const IOIMC& m, const WeakOptions& opts) {
  return weakBisimulationWithTau(m, computeTauInfo(m, opts.outputsUrgent));
}

IOIMC weakQuotient(const IOIMC& m, const WeakOptions& opts) {
  TauInfo tau = computeTauInfo(m, opts.outputsUrgent);
  Partition p = weakBisimulationWithTau(m, tau);

  // Representative (lowest state id) per class, and its converged signature.
  std::vector<StateId> rep(p.numClasses, static_cast<StateId>(-1));
  for (StateId s = m.numStates(); s-- > 0;) rep[p.classOf[s]] = s;

  IOIMCBuilder b(m.name() + "/weak", m.symbols());
  b.reserveStates(p.numClasses);
  b.setInitial(p.classOf[m.initial()]);
  // Preserve the full visible signature for later composition.
  for (ActionId a : m.signature().inputs()) b.input(m.actionName(a));
  for (ActionId a : m.signature().outputs()) b.output(m.actionName(a));
  for (const std::string& labelName : m.labelNames()) b.declareLabel(labelName);
  ActionId tauAction = b.internal(kTauName);

  for (std::uint32_t c = 0; c < p.numClasses; ++c) {
    StateId r = rep[c];
    WeakSig sig = weakSignature(m, tau, p, r);
    // Labels.
    std::uint32_t mask = m.labelMask(r);
    for (std::size_t i = 0; i < m.labelNames().size(); ++i)
      if ((mask >> i) & 1u) b.label(c, m.labelNames()[i]);
    // Cross-class tau moves.
    bool hasCrossTau = false;
    for (std::uint32_t c2 : sig.tauTargets) {
      if (c2 == c) continue;
      b.interactive(c, tauAction, c2);
      hasCrossTau = true;
    }
    // Visible moves (input self-targets were already filtered away; an
    // output to the own class is observable and kept).
    for (const auto& [act, c2] : sig.visible) b.interactive(c, act, c2);
    // Markovian behavior only for classes without cross-class tau moves.
    if (!hasCrossTau && !sig.stableRates.empty()) {
      require(sig.stableRates.size() == 1,
              "weakQuotient: ambiguous rate vector in a stable class");
      for (const auto& [c2, rate] : sig.stableRates.front())
        b.markovian(c, rate, c2);
    }
  }
  return std::move(b).build();
}

IOIMC aggregate(const IOIMC& m, const WeakOptions& opts) {
  return restrictToReachable(weakQuotient(m, opts));
}

namespace {

/// Strong signature: exact moves per action plus the full rate vector.
struct StrongSig {
  std::vector<std::pair<ActionId, std::uint32_t>> moves;
  RateVector rates;
};

StrongSig strongSignature(const IOIMC& m, const Partition& p, StateId s) {
  StrongSig sig;
  for (const auto& t : m.interactive(s)) {
    std::uint32_t c = p.classOf[t.to];
    // Implicit input self-loop equivalence: an explicit input move into the
    // own class is indistinguishable from having no explicit move.
    if (m.signature().isInput(t.action) && c == p.classOf[s]) continue;
    sig.moves.emplace_back(t.action, c);
  }
  std::sort(sig.moves.begin(), sig.moves.end());
  sig.moves.erase(std::unique(sig.moves.begin(), sig.moves.end()),
                  sig.moves.end());
  std::vector<std::pair<std::uint32_t, double>> raw;
  for (const auto& t : m.markovian(s)) raw.emplace_back(p.classOf[t.to], t.rate);
  sig.rates = accumulateRates(std::move(raw));
  return sig;
}

/// Reusable scratch for one state's strong-signature encoding.
struct StrongScratch {
  std::vector<std::uint64_t> moves;
  std::vector<std::pair<std::uint32_t, double>> raw;
};

void encodeStrongSignature(const IOIMC& m, const std::vector<Role>& roles,
                           const Partition& p, StateId s, StrongScratch& ss,
                           std::vector<std::uint64_t>& out) {
  ss.moves.clear();
  for (const auto& t : m.interactive(s)) {
    std::uint32_t c = p.classOf[t.to];
    if (roles[t.action] == Role::Input && c == p.classOf[s]) continue;
    ss.moves.push_back((static_cast<std::uint64_t>(t.action) << 32) | c);
  }
  std::sort(ss.moves.begin(), ss.moves.end());
  ss.moves.erase(std::unique(ss.moves.begin(), ss.moves.end()),
                 ss.moves.end());

  ss.raw.clear();
  for (const auto& t : m.markovian(s)) ss.raw.emplace_back(p.classOf[t.to], t.rate);
  std::sort(ss.raw.begin(), ss.raw.end());

  out.push_back(ss.moves.size());
  out.insert(out.end(), ss.moves.begin(), ss.moves.end());
  for (std::size_t i = 0; i < ss.raw.size();) {
    const std::uint32_t cls = ss.raw[i].first;
    double sum = 0.0;
    while (i < ss.raw.size() && ss.raw[i].first == cls) sum += ss.raw[i++].second;
    out.push_back(cls);
    out.push_back(std::bit_cast<std::uint64_t>(sum));
  }
}

}  // namespace

Partition strongBisimulation(const IOIMC& m) {
  const std::size_t n = m.numStates();
  const std::vector<Role> roles = actionRoles(m);
  Partition p = initialByLabel(m);
  SignatureInterner interner;
  StrongScratch ss;
  std::vector<std::uint32_t> newClassOf(n);
  while (true) {
    interner.beginIteration(n);
    for (StateId s = 0; s < n; ++s) {
      auto& out = interner.scratch();
      out.clear();
      out.push_back(p.classOf[s]);
      encodeStrongSignature(m, roles, p, s, ss, out);
      newClassOf[s] = interner.internScratch();
    }
    const std::uint32_t newCount = interner.numClasses();
    const bool stable = newCount == p.numClasses;
    std::swap(p.classOf, newClassOf);
    p.numClasses = newCount;
    if (stable) break;
  }
  return p;
}

IOIMC strongQuotient(const IOIMC& m) {
  Partition p = strongBisimulation(m);
  std::vector<StateId> rep(p.numClasses, static_cast<StateId>(-1));
  for (StateId s = m.numStates(); s-- > 0;) rep[p.classOf[s]] = s;

  IOIMCBuilder b(m.name() + "/strong", m.symbols());
  b.reserveStates(p.numClasses);
  b.setInitial(p.classOf[m.initial()]);
  for (ActionId a : m.signature().inputs()) b.input(m.actionName(a));
  for (ActionId a : m.signature().outputs()) b.output(m.actionName(a));
  for (ActionId a : m.signature().internals()) b.internal(m.actionName(a));
  for (const std::string& labelName : m.labelNames()) b.declareLabel(labelName);

  for (std::uint32_t c = 0; c < p.numClasses; ++c) {
    StateId r = rep[c];
    StrongSig sig = strongSignature(m, p, r);
    std::uint32_t mask = m.labelMask(r);
    for (std::size_t i = 0; i < m.labelNames().size(); ++i)
      if ((mask >> i) & 1u) b.label(c, m.labelNames()[i]);
    for (const auto& [act, c2] : sig.moves) b.interactive(c, act, c2);
    for (const auto& [c2, rate] : sig.rates) b.markovian(c, rate, c2);
  }
  return restrictToReachable(std::move(b).build());
}

}  // namespace imcdft::ioimc
