#include "ioimc/bisimulation.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "ioimc/builder.hpp"
#include "ioimc/ops.hpp"

namespace imcdft::ioimc {

namespace {

/// Rate vector: cumulative rate into each partition class, sorted by class.
using RateVector = std::vector<std::pair<std::uint32_t, double>>;

/// Signature of one state under the current partition.
struct WeakSig {
  std::vector<std::uint32_t> tauTargets;  ///< classes weakly reachable by tau
  std::vector<std::pair<ActionId, std::uint32_t>> visible;  ///< weak moves
  std::vector<RateVector> stableRates;  ///< rate vectors of stable derivatives
};

bool operator<(const WeakSig& a, const WeakSig& b) {
  return std::tie(a.tauTargets, a.visible, a.stableRates) <
         std::tie(b.tauTargets, b.visible, b.stableRates);
}

/// Tau-reachability (reflexive-transitive closure over internal
/// transitions) plus per-state stability.  Closures are computed per SCC of
/// the tau graph, in the reverse-topological order Tarjan produces.
struct TauInfo {
  std::vector<std::vector<StateId>> closure;  ///< sorted, includes self
  std::vector<bool> stable;
};

std::vector<StateId> sortedUnion(const std::vector<StateId>& a,
                                 const std::vector<StateId>& b) {
  std::vector<StateId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

TauInfo computeTauInfo(const IOIMC& m, bool outputsUrgent) {
  const std::size_t n = m.numStates();
  std::vector<std::vector<StateId>> tauSucc(n);
  TauInfo info;
  info.stable.assign(n, true);
  for (StateId s = 0; s < n; ++s) {
    for (const auto& t : m.interactive(s)) {
      if (m.signature().isInternal(t.action)) {
        tauSucc[s].push_back(t.to);
        info.stable[s] = false;
      } else if (outputsUrgent && m.signature().isOutput(t.action)) {
        info.stable[s] = false;
      }
    }
    std::sort(tauSucc[s].begin(), tauSucc[s].end());
    tauSucc[s].erase(std::unique(tauSucc[s].begin(), tauSucc[s].end()),
                     tauSucc[s].end());
  }

  // Iterative Tarjan SCC over the tau graph.
  constexpr StateId kUndef = static_cast<StateId>(-1);
  std::vector<StateId> index(n, kUndef), low(n, 0), comp(n, kUndef);
  std::vector<bool> onStack(n, false);
  std::vector<StateId> stack;
  std::uint32_t nextIndex = 0, numComps = 0;
  struct Frame {
    StateId v;
    std::size_t child;
  };
  std::vector<Frame> callStack;
  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kUndef) continue;
    callStack.push_back({root, 0});
    while (!callStack.empty()) {
      Frame& f = callStack.back();
      StateId v = f.v;
      if (f.child == 0) {
        index[v] = low[v] = nextIndex++;
        stack.push_back(v);
        onStack[v] = true;
      }
      bool descended = false;
      while (f.child < tauSucc[v].size()) {
        StateId w = tauSucc[v][f.child++];
        if (index[w] == kUndef) {
          callStack.push_back({w, 0});
          descended = true;
          break;
        }
        if (onStack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          StateId w = stack.back();
          stack.pop_back();
          onStack[w] = false;
          comp[w] = numComps;
          if (w == v) break;
        }
        ++numComps;
      }
      callStack.pop_back();
      if (!callStack.empty()) {
        StateId parent = callStack.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }

  // Components are numbered such that every tau successor's component id is
  // strictly smaller (Tarjan closes sinks first); compute closures bottom-up.
  std::vector<std::vector<StateId>> compMembers(numComps);
  for (StateId s = 0; s < n; ++s) compMembers[comp[s]].push_back(s);
  std::vector<std::vector<StateId>> compClosure(numComps);
  for (std::uint32_t c = 0; c < numComps; ++c) {
    std::vector<StateId> acc = compMembers[c];
    std::sort(acc.begin(), acc.end());
    std::vector<std::uint32_t> succComps;
    for (StateId s : compMembers[c])
      for (StateId t : tauSucc[s])
        if (comp[t] != c) succComps.push_back(comp[t]);
    std::sort(succComps.begin(), succComps.end());
    succComps.erase(std::unique(succComps.begin(), succComps.end()),
                    succComps.end());
    for (std::uint32_t sc : succComps) acc = sortedUnion(acc, compClosure[sc]);
    compClosure[c] = std::move(acc);
  }
  info.closure.resize(n);
  for (StateId s = 0; s < n; ++s) info.closure[s] = compClosure[comp[s]];
  return info;
}

/// Deterministically accumulates (class, rate) pairs into a rate vector.
RateVector accumulateRates(std::vector<std::pair<std::uint32_t, double>> raw) {
  std::sort(raw.begin(), raw.end());
  RateVector out;
  for (const auto& [cls, rate] : raw) {
    if (!out.empty() && out.back().first == cls)
      out.back().second += rate;
    else
      out.emplace_back(cls, rate);
  }
  return out;
}

Partition initialByLabel(const IOIMC& m) {
  Partition p;
  p.classOf.resize(m.numStates());
  std::map<std::uint32_t, std::uint32_t> byMask;
  for (StateId s = 0; s < m.numStates(); ++s) {
    auto [it, inserted] =
        byMask.try_emplace(m.labelMask(s), p.numClasses);
    if (inserted) ++p.numClasses;
    p.classOf[s] = it->second;
  }
  return p;
}

WeakSig weakSignature(const IOIMC& m, const TauInfo& tau, const Partition& p,
                      StateId s) {
  WeakSig sig;
  for (StateId u : tau.closure[s]) sig.tauTargets.push_back(p.classOf[u]);
  std::sort(sig.tauTargets.begin(), sig.tauTargets.end());
  sig.tauTargets.erase(
      std::unique(sig.tauTargets.begin(), sig.tauTargets.end()),
      sig.tauTargets.end());

  auto inTauTargets = [&](std::uint32_t c) {
    return std::binary_search(sig.tauTargets.begin(), sig.tauTargets.end(), c);
  };

  for (StateId u : tau.closure[s]) {
    for (const auto& t : m.interactive(u)) {
      if (m.signature().isInternal(t.action)) continue;
      const bool isInput = m.signature().isInput(t.action);
      for (StateId v : tau.closure[t.to]) {
        std::uint32_t c = p.classOf[v];
        // Implicit input self-loops make every tau-target an input target
        // for free; recording those adds no discriminating power, so filter
        // them to obtain the coarsest (minimal) quotient.
        if (isInput && inTauTargets(c)) continue;
        sig.visible.emplace_back(t.action, c);
      }
    }
    if (tau.stable[u]) {
      std::vector<std::pair<std::uint32_t, double>> raw;
      for (const auto& t : m.markovian(u))
        raw.emplace_back(p.classOf[t.to], t.rate);
      sig.stableRates.push_back(accumulateRates(std::move(raw)));
    }
  }
  std::sort(sig.visible.begin(), sig.visible.end());
  sig.visible.erase(std::unique(sig.visible.begin(), sig.visible.end()),
                    sig.visible.end());
  std::sort(sig.stableRates.begin(), sig.stableRates.end());
  sig.stableRates.erase(
      std::unique(sig.stableRates.begin(), sig.stableRates.end()),
      sig.stableRates.end());
  return sig;
}

}  // namespace

Partition weakBisimulation(const IOIMC& m, const WeakOptions& opts) {
  TauInfo tau = computeTauInfo(m, opts.outputsUrgent);
  Partition p = initialByLabel(m);
  while (true) {
    std::map<std::pair<std::uint32_t, WeakSig>, std::uint32_t> next;
    std::vector<std::uint32_t> newClassOf(m.numStates());
    for (StateId s = 0; s < m.numStates(); ++s) {
      auto key = std::make_pair(p.classOf[s], weakSignature(m, tau, p, s));
      auto [it, inserted] =
          next.try_emplace(std::move(key),
                           static_cast<std::uint32_t>(next.size()));
      (void)inserted;
      newClassOf[s] = it->second;
    }
    std::uint32_t newCount = static_cast<std::uint32_t>(next.size());
    bool stable = newCount == p.numClasses;
    p.classOf = std::move(newClassOf);
    p.numClasses = newCount;
    if (stable) break;
  }
  return p;
}

IOIMC weakQuotient(const IOIMC& m, const WeakOptions& opts) {
  TauInfo tau = computeTauInfo(m, opts.outputsUrgent);
  Partition p = weakBisimulation(m, opts);

  // Representative (lowest state id) per class, and its converged signature.
  std::vector<StateId> rep(p.numClasses, static_cast<StateId>(-1));
  for (StateId s = m.numStates(); s-- > 0;) rep[p.classOf[s]] = s;

  IOIMCBuilder b(m.name() + "/weak", m.symbols());
  b.reserveStates(p.numClasses);
  b.setInitial(p.classOf[m.initial()]);
  // Preserve the full visible signature for later composition.
  for (ActionId a : m.signature().inputs()) b.input(m.actionName(a));
  for (ActionId a : m.signature().outputs()) b.output(m.actionName(a));
  for (const std::string& labelName : m.labelNames()) b.declareLabel(labelName);
  ActionId tauAction = b.internal(kTauName);

  for (std::uint32_t c = 0; c < p.numClasses; ++c) {
    StateId r = rep[c];
    WeakSig sig = weakSignature(m, tau, p, r);
    // Labels.
    std::uint32_t mask = m.labelMask(r);
    for (std::size_t i = 0; i < m.labelNames().size(); ++i)
      if ((mask >> i) & 1u) b.label(c, m.labelNames()[i]);
    // Cross-class tau moves.
    bool hasCrossTau = false;
    for (std::uint32_t c2 : sig.tauTargets) {
      if (c2 == c) continue;
      b.interactive(c, tauAction, c2);
      hasCrossTau = true;
    }
    // Visible moves (input self-targets were already filtered away; an
    // output to the own class is observable and kept).
    for (const auto& [act, c2] : sig.visible) b.interactive(c, act, c2);
    // Markovian behavior only for classes without cross-class tau moves.
    if (!hasCrossTau && !sig.stableRates.empty()) {
      require(sig.stableRates.size() == 1,
              "weakQuotient: ambiguous rate vector in a stable class");
      for (const auto& [c2, rate] : sig.stableRates.front())
        b.markovian(c, rate, c2);
    }
  }
  return std::move(b).build();
}

IOIMC aggregate(const IOIMC& m, const WeakOptions& opts) {
  return restrictToReachable(weakQuotient(m, opts));
}

namespace {

/// Strong signature: exact moves per action plus the full rate vector.
struct StrongSig {
  std::vector<std::pair<ActionId, std::uint32_t>> moves;
  RateVector rates;
};

bool operator<(const StrongSig& a, const StrongSig& b) {
  return std::tie(a.moves, a.rates) < std::tie(b.moves, b.rates);
}

StrongSig strongSignature(const IOIMC& m, const Partition& p, StateId s) {
  StrongSig sig;
  for (const auto& t : m.interactive(s)) {
    std::uint32_t c = p.classOf[t.to];
    // Implicit input self-loop equivalence: an explicit input move into the
    // own class is indistinguishable from having no explicit move.
    if (m.signature().isInput(t.action) && c == p.classOf[s]) continue;
    sig.moves.emplace_back(t.action, c);
  }
  std::sort(sig.moves.begin(), sig.moves.end());
  sig.moves.erase(std::unique(sig.moves.begin(), sig.moves.end()),
                  sig.moves.end());
  std::vector<std::pair<std::uint32_t, double>> raw;
  for (const auto& t : m.markovian(s)) raw.emplace_back(p.classOf[t.to], t.rate);
  sig.rates = accumulateRates(std::move(raw));
  return sig;
}

}  // namespace

Partition strongBisimulation(const IOIMC& m) {
  Partition p = initialByLabel(m);
  while (true) {
    std::map<std::pair<std::uint32_t, StrongSig>, std::uint32_t> next;
    std::vector<std::uint32_t> newClassOf(m.numStates());
    for (StateId s = 0; s < m.numStates(); ++s) {
      auto key = std::make_pair(p.classOf[s], strongSignature(m, p, s));
      auto [it, inserted] =
          next.try_emplace(std::move(key),
                           static_cast<std::uint32_t>(next.size()));
      (void)inserted;
      newClassOf[s] = it->second;
    }
    std::uint32_t newCount = static_cast<std::uint32_t>(next.size());
    bool stable = newCount == p.numClasses;
    p.classOf = std::move(newClassOf);
    p.numClasses = newCount;
    if (stable) break;
  }
  return p;
}

IOIMC strongQuotient(const IOIMC& m) {
  Partition p = strongBisimulation(m);
  std::vector<StateId> rep(p.numClasses, static_cast<StateId>(-1));
  for (StateId s = m.numStates(); s-- > 0;) rep[p.classOf[s]] = s;

  IOIMCBuilder b(m.name() + "/strong", m.symbols());
  b.reserveStates(p.numClasses);
  b.setInitial(p.classOf[m.initial()]);
  for (ActionId a : m.signature().inputs()) b.input(m.actionName(a));
  for (ActionId a : m.signature().outputs()) b.output(m.actionName(a));
  for (ActionId a : m.signature().internals()) b.internal(m.actionName(a));
  for (const std::string& labelName : m.labelNames()) b.declareLabel(labelName);

  for (std::uint32_t c = 0; c < p.numClasses; ++c) {
    StateId r = rep[c];
    StrongSig sig = strongSignature(m, p, r);
    std::uint32_t mask = m.labelMask(r);
    for (std::size_t i = 0; i < m.labelNames().size(); ++i)
      if ((mask >> i) & 1u) b.label(c, m.labelNames()[i]);
    for (const auto& [act, c2] : sig.moves) b.interactive(c, act, c2);
    for (const auto& [c2, rate] : sig.rates) b.markovian(c, rate, c2);
  }
  return restrictToReachable(std::move(b).build());
}

}  // namespace imcdft::ioimc
