#pragma once

#include <string>

#include "ioimc/model.hpp"

/// \file export.hpp
/// Textual exporters so intermediate models stay inspectable, mirroring the
/// TIPP-tool workflow the paper used.

namespace imcdft::ioimc {

/// Graphviz DOT rendering.  Markovian transitions are dashed and annotated
/// with their rate; interactive transitions carry the action name decorated
/// with ? (input), ! (output) or ; (internal), matching the paper's figures.
std::string toDot(const IOIMC& m);

/// Aldebaran (.aut) rendering: interactive transitions keep their decorated
/// action names, Markovian transitions are written as "rate <r>".
std::string toAut(const IOIMC& m);

}  // namespace imcdft::ioimc
