#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

/// \file signature_interner.hpp
/// The hashed flat-token signature interner shared by the whole-model
/// partition refiners (bisimulation.cpp) and the on-the-fly partial refiner
/// (otf_partition.cpp).  Not part of the public ioimc surface.

namespace imcdft::ioimc::detail {

/// Interns canonical 64-bit token streams in an open-addressing table;
/// the interned index is the stream's dense class id.  Classes are numbered
/// in order of first appearance, which keeps the numbering identical to an
/// ordered-map implementation.  All buffers are reused across iterations,
/// so a refinement pass allocates only on growth.
class SignatureInterner {
 public:
  /// Prepares the table for up to \p expectedKeys distinct signatures.
  void beginIteration(std::size_t expectedKeys) {
    arena_.clear();
    sigOffsets_.clear();
    sigOffsets_.push_back(0);
    hashes_.clear();
    numClasses_ = 0;
    std::size_t cap = 64;
    while (cap < 2 * expectedKeys) cap <<= 1;
    table_.assign(cap, kEmpty);
  }

  /// The caller-filled token buffer for the signature being interned.
  std::vector<std::uint64_t>& scratch() { return scratch_; }

  /// Interns scratch() and returns its dense class id.
  std::uint32_t internScratch() {
    return internTokens(scratch_.data(), scratch_.size(),
                        hashTokens(scratch_.data(), scratch_.size()));
  }

  /// Interns an externally encoded token stream whose hash (hashTokens over
  /// the same tokens) was precomputed — the merge half of the parallel
  /// encode-then-intern split: workers encode and hash blocks of states
  /// concurrently, then one thread interns every stream in ascending state
  /// order, so class numbering (first appearance in state order) is
  /// independent of the number of encoding workers.
  std::uint32_t internTokens(const std::uint64_t* tokens, std::size_t count,
                             std::uint64_t hash) {
    const std::size_t mask = table_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(hash) & mask;
    while (table_[idx] != kEmpty) {
      const std::uint32_t cls = table_[idx];
      if (hashes_[cls] == hash && equalsClass(cls, tokens, count)) return cls;
      idx = (idx + 1) & mask;
    }
    const std::uint32_t cls = numClasses_++;
    table_[idx] = cls;
    hashes_.push_back(hash);
    arena_.insert(arena_.end(), tokens, tokens + count);
    sigOffsets_.push_back(arena_.size());
    return cls;
  }

  /// The hash internTokens expects; safe to call from encoding workers.
  static std::uint64_t hashTokens(const std::uint64_t* tokens,
                                  std::size_t count) {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ count;
    for (std::size_t i = 0; i < count; ++i) {
      h ^= tokens[i];
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
    }
    return h;
  }

  std::uint32_t numClasses() const { return numClasses_; }

 private:
  static constexpr std::uint32_t kEmpty = static_cast<std::uint32_t>(-1);

  bool equalsClass(std::uint32_t cls, const std::uint64_t* tokens,
                   std::size_t count) const {
    const std::uint64_t begin = sigOffsets_[cls], end = sigOffsets_[cls + 1];
    if (end - begin != count) return false;
    return std::equal(tokens, tokens + count,
                      arena_.begin() + static_cast<std::ptrdiff_t>(begin));
  }

  std::vector<std::uint64_t> arena_;      ///< tokens of interned signatures
  std::vector<std::uint64_t> sigOffsets_; ///< per-class token range in arena_
  std::vector<std::uint64_t> hashes_;     ///< per-class hash
  std::vector<std::uint32_t> table_;      ///< open-addressing slots
  std::vector<std::uint64_t> scratch_;
  std::uint32_t numClasses_ = 0;
};

/// Shared gate constants of the parallel encode-then-intern split
/// (bisimulation.cpp and otf_partition.cpp): states are encoded in fixed
/// blocks of kIntraBlockStates, and a pass only goes parallel at all when
/// the state count reaches kIntraParallelMinStates — below that the pool
/// dispatch costs more than the encode.
inline constexpr std::size_t kIntraBlockStates = 128;
inline constexpr std::size_t kIntraParallelMinStates = 512;

/// Per-block output of one parallel encoding pass: the block's token
/// streams concatenated, each stream's end offset, and each stream's
/// hashTokens value.  One worker fills one block; the sequential merge
/// walks blocks in order and interns stream by stream.
struct EncodedBlock {
  std::vector<std::uint64_t> tokens;
  std::vector<std::size_t> ends;
  std::vector<std::uint64_t> hashes;

  void clear() {
    tokens.clear();
    ends.clear();
    hashes.clear();
  }
};

}  // namespace imcdft::ioimc::detail
