#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

/// \file signature_interner.hpp
/// The hashed flat-token signature interner shared by the whole-model
/// partition refiners (bisimulation.cpp) and the on-the-fly partial refiner
/// (otf_partition.cpp).  Not part of the public ioimc surface.

namespace imcdft::ioimc::detail {

/// Interns canonical 64-bit token streams in an open-addressing table;
/// the interned index is the stream's dense class id.  Classes are numbered
/// in order of first appearance, which keeps the numbering identical to an
/// ordered-map implementation.  All buffers are reused across iterations,
/// so a refinement pass allocates only on growth.
class SignatureInterner {
 public:
  /// Prepares the table for up to \p expectedKeys distinct signatures.
  void beginIteration(std::size_t expectedKeys) {
    arena_.clear();
    sigOffsets_.clear();
    sigOffsets_.push_back(0);
    hashes_.clear();
    numClasses_ = 0;
    std::size_t cap = 64;
    while (cap < 2 * expectedKeys) cap <<= 1;
    table_.assign(cap, kEmpty);
  }

  /// The caller-filled token buffer for the signature being interned.
  std::vector<std::uint64_t>& scratch() { return scratch_; }

  /// Interns scratch() and returns its dense class id.
  std::uint32_t internScratch() {
    const std::uint64_t h = hashTokens(scratch_);
    const std::size_t mask = table_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(h) & mask;
    while (table_[idx] != kEmpty) {
      const std::uint32_t cls = table_[idx];
      if (hashes_[cls] == h && equalsClass(cls)) return cls;
      idx = (idx + 1) & mask;
    }
    const std::uint32_t cls = numClasses_++;
    table_[idx] = cls;
    hashes_.push_back(h);
    arena_.insert(arena_.end(), scratch_.begin(), scratch_.end());
    sigOffsets_.push_back(arena_.size());
    return cls;
  }

  std::uint32_t numClasses() const { return numClasses_; }

 private:
  static constexpr std::uint32_t kEmpty = static_cast<std::uint32_t>(-1);

  static std::uint64_t hashTokens(const std::vector<std::uint64_t>& tokens) {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ tokens.size();
    for (std::uint64_t t : tokens) {
      h ^= t;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
    }
    return h;
  }

  bool equalsClass(std::uint32_t cls) const {
    const std::uint64_t begin = sigOffsets_[cls], end = sigOffsets_[cls + 1];
    if (end - begin != scratch_.size()) return false;
    return std::equal(scratch_.begin(), scratch_.end(),
                      arena_.begin() + static_cast<std::ptrdiff_t>(begin));
  }

  std::vector<std::uint64_t> arena_;      ///< tokens of interned signatures
  std::vector<std::uint64_t> sigOffsets_; ///< per-class token range in arena_
  std::vector<std::uint64_t> hashes_;     ///< per-class hash
  std::vector<std::uint32_t> table_;      ///< open-addressing slots
  std::vector<std::uint64_t> scratch_;
  std::uint32_t numClasses_ = 0;
};

}  // namespace imcdft::ioimc::detail
