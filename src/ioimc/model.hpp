#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/symbol_table.hpp"

/// \file model.hpp
/// The Input/Output Interactive Markov Chain (I/O-IMC) model of Boudali,
/// Crouzen & Stoelinga (DSN 2007): a CTMC extended with input, output and
/// internal actions.
///
/// Conventions carried through the whole library:
///  * Input-enabledness is implicit.  A state stores only the *state
///    changing* input transitions; a missing input transition means "stay in
///    place" (the self-loops the paper omits "for clarity").  Composition and
///    bisimulation implement exactly this convention.
///  * Output and internal actions are immediate (maximal progress); input
///    actions are delayable.  The analysis layer enforces urgency when it
///    extracts a CTMC/CTMDP from a fully composed, fully hidden model.
///
/// Transitions are stored in CSR (compressed sparse row) form: one
/// contiguous array of transitions per kind plus a per-state offset table.
/// Iterating a state's transitions touches one cache line instead of
/// chasing a vector-of-vectors indirection, and whole-model sweeps
/// (composition, refinement, extraction) stream linearly through memory.

namespace imcdft::ioimc {

/// Re-exported so users can write ioimc::SymbolTable(Ptr) next to the
/// other model types.
using imcdft::SymbolTable;
using imcdft::SymbolTablePtr;
using imcdft::makeSymbolTable;

/// Dense state index inside one model.
using StateId = std::uint32_t;

/// Action identifier; interned in the community's shared SymbolTable.
using ActionId = SymbolId;

/// Role of an action within a model's action signature.
enum class ActionKind : std::uint8_t { Input, Output, Internal };

/// The canonical internal action name used by quotients and hiding.
inline constexpr const char* kTauName = "__tau";

/// An interactive (input/output/internal) transition out of some state.
struct InteractiveTransition {
  ActionId action;
  StateId to;
  friend bool operator==(const InteractiveTransition&,
                         const InteractiveTransition&) = default;
};

/// A Markovian (exponentially delayed) transition out of some state.
struct MarkovianTransition {
  double rate;  ///< Strictly positive exponential rate.
  StateId to;
  friend bool operator==(const MarkovianTransition&,
                         const MarkovianTransition&) = default;
};

/// An action signature: the sets of input, output and internal actions a
/// model may engage in.  Inputs, outputs and internals are mutually
/// disjoint.  Stored sorted for fast membership tests and merging.
class Signature {
 public:
  /// Adds \p action with role \p kind.  Throws ModelError when the action
  /// already has a different role.
  void add(ActionId action, ActionKind kind);

  /// Returns the role of \p action, or npos-like absence via hasAction().
  ActionKind kindOf(ActionId action) const;

  /// True when the action appears in any of the three sets.
  bool hasAction(ActionId action) const;
  bool isInput(ActionId action) const { return contains(inputs_, action); }
  bool isOutput(ActionId action) const { return contains(outputs_, action); }
  bool isInternal(ActionId action) const {
    return contains(internals_, action);
  }

  const std::vector<ActionId>& inputs() const { return inputs_; }
  const std::vector<ActionId>& outputs() const { return outputs_; }
  const std::vector<ActionId>& internals() const { return internals_; }

  /// Moves \p action from the output set to the internal set (hiding).
  void hideOutput(ActionId action);

  friend bool operator==(const Signature&, const Signature&) = default;

 private:
  static bool contains(const std::vector<ActionId>& v, ActionId a);
  static void insertSorted(std::vector<ActionId>& v, ActionId a);
  static void eraseSorted(std::vector<ActionId>& v, ActionId a);

  std::vector<ActionId> inputs_;
  std::vector<ActionId> outputs_;
  std::vector<ActionId> internals_;
};

/// Role of an action id with respect to one model's signature, as stored in
/// the dense tables actionRoles() builds for the hot loops (composition,
/// refinement) in place of repeated binary searches over the signature.
enum class ActionRole : std::uint8_t { None, Input, Output, Internal };

/// Flat CSR transition storage handed to the flat IOIMC constructor by the
/// hot producers (compose, quotient construction, reachability
/// restriction).  offsets has numStates()+1 entries; state s owns
/// data[offsets[s]..offsets[s+1]).
template <class Transition>
struct CsrTransitions {
  std::vector<std::uint32_t> offsets;
  std::vector<Transition> data;

  /// Appends one state's row; rows must be appended in state order.
  void beginState() { offsets.push_back(static_cast<std::uint32_t>(data.size())); }
  void finish() { offsets.push_back(static_cast<std::uint32_t>(data.size())); }
};

using CsrInteractive = CsrTransitions<InteractiveTransition>;
using CsrMarkovian = CsrTransitions<MarkovianTransition>;

/// An explicit-state I/O-IMC.
///
/// Instances are immutable after construction (use IOIMCBuilder, or the
/// operations in ops.hpp / compose.hpp / bisimulation.hpp which all return
/// new models).  States carry an optional set of atomic labels (at most 32
/// per model) used to mark, e.g., system-failure states so that aggregation
/// and analysis can observe them.
class IOIMC {
 public:
  /// Convenience constructor from per-state transition vectors (the builder
  /// path); flattens into CSR storage.
  IOIMC(std::string name, SymbolTablePtr symbols, Signature signature,
        StateId initial, std::vector<std::vector<InteractiveTransition>> inter,
        std::vector<std::vector<MarkovianTransition>> markov,
        std::vector<std::uint32_t> labelMasks,
        std::vector<std::string> labelNames);

  /// CSR-native constructor (the hot path: composition and quotients build
  /// their rows in state order and move them in without re-packing).
  IOIMC(std::string name, SymbolTablePtr symbols, Signature signature,
        StateId initial, CsrInteractive inter, CsrMarkovian markov,
        std::vector<std::uint32_t> labelMasks,
        std::vector<std::string> labelNames);

  const std::string& name() const { return name_; }
  const SymbolTablePtr& symbols() const { return symbols_; }
  const Signature& signature() const { return signature_; }
  StateId initial() const { return initial_; }
  std::size_t numStates() const { return labelMasks_.size(); }

  /// Total number of interactive plus Markovian transitions.
  std::size_t numTransitions() const {
    return inter_.data.size() + markov_.data.size();
  }
  std::size_t numInteractiveTransitions() const { return inter_.data.size(); }
  std::size_t numMarkovianTransitions() const { return markov_.data.size(); }

  std::span<const InteractiveTransition> interactive(StateId s) const {
    return {inter_.data.data() + inter_.offsets[s],
            inter_.offsets[s + 1] - inter_.offsets[s]};
  }
  std::span<const MarkovianTransition> markovian(StateId s) const {
    return {markov_.data.data() + markov_.offsets[s],
            markov_.offsets[s + 1] - markov_.offsets[s]};
  }

  /// The whole flat transition arrays (for linear whole-model sweeps).
  std::span<const InteractiveTransition> allInteractive() const {
    return {inter_.data.data(), inter_.data.size()};
  }
  std::span<const MarkovianTransition> allMarkovian() const {
    return {markov_.data.data(), markov_.data.size()};
  }

  /// True when state \p s has no outgoing internal transition.  Maximal
  /// progress means time can only pass in stable states.
  bool isStable(StateId s) const;

  /// True when the model has no input and no output actions.
  bool isClosed() const;

  /// True when the model has no interactive transitions at all, i.e. it can
  /// be read directly as a CTMC.
  bool isMarkovChain() const { return inter_.data.empty(); }

  /// Label interface.  Labels are model-local; masks are bitsets over
  /// labelNames().
  const std::vector<std::string>& labelNames() const { return labelNames_; }
  std::uint32_t labelMask(StateId s) const { return labelMasks_[s]; }
  /// Index of \p label in labelNames() or -1 when absent.
  int labelIndex(const std::string& label) const;
  bool hasLabel(StateId s, int labelIdx) const {
    return labelIdx >= 0 && (labelMasks_[s] >> labelIdx) & 1u;
  }

  /// Human-readable action name (for reports and exporters).
  const std::string& actionName(ActionId a) const { return symbols_->name(a); }

 private:
  void validate() const;

  std::string name_;
  SymbolTablePtr symbols_;
  Signature signature_;
  StateId initial_;
  CsrInteractive inter_;
  CsrMarkovian markov_;
  std::vector<std::uint32_t> labelMasks_;
  std::vector<std::string> labelNames_;
};

/// Dense per-action role table of \p m's signature, indexed by ActionId
/// (sized to the shared symbol table, so ids of other models resolve too).
std::vector<ActionRole> actionRoles(const IOIMC& m);

}  // namespace imcdft::ioimc
