#include "ioimc/model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imcdft::ioimc {

bool Signature::contains(const std::vector<ActionId>& v, ActionId a) {
  return std::binary_search(v.begin(), v.end(), a);
}

void Signature::insertSorted(std::vector<ActionId>& v, ActionId a) {
  auto it = std::lower_bound(v.begin(), v.end(), a);
  if (it == v.end() || *it != a) v.insert(it, a);
}

void Signature::eraseSorted(std::vector<ActionId>& v, ActionId a) {
  auto it = std::lower_bound(v.begin(), v.end(), a);
  if (it != v.end() && *it == a) v.erase(it);
}

void Signature::add(ActionId action, ActionKind kind) {
  if (hasAction(action)) {
    require(kindOf(action) == kind,
            "Signature: action already present with a different role");
    return;
  }
  switch (kind) {
    case ActionKind::Input:
      insertSorted(inputs_, action);
      break;
    case ActionKind::Output:
      insertSorted(outputs_, action);
      break;
    case ActionKind::Internal:
      insertSorted(internals_, action);
      break;
  }
}

ActionKind Signature::kindOf(ActionId action) const {
  if (isInput(action)) return ActionKind::Input;
  if (isOutput(action)) return ActionKind::Output;
  require(isInternal(action), "Signature: action not in signature");
  return ActionKind::Internal;
}

bool Signature::hasAction(ActionId action) const {
  return isInput(action) || isOutput(action) || isInternal(action);
}

void Signature::hideOutput(ActionId action) {
  require(isOutput(action), "Signature: can only hide output actions");
  eraseSorted(outputs_, action);
  insertSorted(internals_, action);
}

namespace {

template <class Transition>
CsrTransitions<Transition> flatten(
    std::vector<std::vector<Transition>> rows) {
  CsrTransitions<Transition> csr;
  std::size_t total = 0;
  for (const auto& row : rows) total += row.size();
  csr.offsets.reserve(rows.size() + 1);
  csr.data.reserve(total);
  for (const auto& row : rows) {
    csr.beginState();
    csr.data.insert(csr.data.end(), row.begin(), row.end());
  }
  csr.finish();
  return csr;
}

}  // namespace

IOIMC::IOIMC(std::string name, SymbolTablePtr symbols, Signature signature,
             StateId initial,
             std::vector<std::vector<InteractiveTransition>> inter,
             std::vector<std::vector<MarkovianTransition>> markov,
             std::vector<std::uint32_t> labelMasks,
             std::vector<std::string> labelNames)
    : IOIMC(std::move(name), std::move(symbols), std::move(signature), initial,
            flatten(std::move(inter)), flatten(std::move(markov)),
            std::move(labelMasks), std::move(labelNames)) {}

IOIMC::IOIMC(std::string name, SymbolTablePtr symbols, Signature signature,
             StateId initial, CsrInteractive inter, CsrMarkovian markov,
             std::vector<std::uint32_t> labelMasks,
             std::vector<std::string> labelNames)
    : name_(std::move(name)),
      symbols_(std::move(symbols)),
      signature_(std::move(signature)),
      initial_(initial),
      inter_(std::move(inter)),
      markov_(std::move(markov)),
      labelMasks_(std::move(labelMasks)),
      labelNames_(std::move(labelNames)) {
  validate();
}

void IOIMC::validate() const {
  // Error messages are built only on the failing path: this runs once per
  // constructed model over every transition, and eagerly concatenating the
  // model name per check dominated the whole analysis pipeline.
  auto fail = [this](const char* what) {
    require(false, "IOIMC '" + name_ + "': " + what);
  };
  require(symbols_ != nullptr, "IOIMC: missing symbol table");
  const std::size_t n = labelMasks_.size();
  if (inter_.offsets.size() != n + 1 || markov_.offsets.size() != n + 1)
    fail("inconsistent state arrays");
  if (n == 0) fail("no states");
  if (initial_ >= n) fail("initial state out of range");
  if (labelNames_.size() > 32) fail("more than 32 labels");
  if (inter_.offsets.front() != 0 ||
      inter_.offsets.back() != inter_.data.size() ||
      !std::is_sorted(inter_.offsets.begin(), inter_.offsets.end()) ||
      markov_.offsets.front() != 0 ||
      markov_.offsets.back() != markov_.data.size() ||
      !std::is_sorted(markov_.offsets.begin(), markov_.offsets.end()))
    fail("malformed CSR offsets");
  for (const auto& t : inter_.data) {
    if (t.to >= n) fail("transition target out of range");
    if (!signature_.hasAction(t.action))
      require(false, "IOIMC '" + name_ + "': transition uses action '" +
                         symbols_->name(t.action) + "' missing from signature");
  }
  for (const auto& t : markov_.data) {
    if (t.to >= n) fail("transition target out of range");
    if (!(t.rate > 0.0)) fail("non-positive rate");
  }
}

bool IOIMC::isStable(StateId s) const {
  for (const auto& t : interactive(s))
    if (signature_.isInternal(t.action)) return false;
  return true;
}

bool IOIMC::isClosed() const {
  return signature_.inputs().empty() && signature_.outputs().empty();
}

int IOIMC::labelIndex(const std::string& label) const {
  for (std::size_t i = 0; i < labelNames_.size(); ++i)
    if (labelNames_[i] == label) return static_cast<int>(i);
  return -1;
}

std::vector<ActionRole> actionRoles(const IOIMC& m) {
  std::vector<ActionRole> roles(m.symbols()->size(), ActionRole::None);
  for (ActionId a : m.signature().inputs()) roles[a] = ActionRole::Input;
  for (ActionId a : m.signature().outputs()) roles[a] = ActionRole::Output;
  for (ActionId a : m.signature().internals())
    roles[a] = ActionRole::Internal;
  return roles;
}

}  // namespace imcdft::ioimc
