#include "ioimc/model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imcdft::ioimc {

bool Signature::contains(const std::vector<ActionId>& v, ActionId a) {
  return std::binary_search(v.begin(), v.end(), a);
}

void Signature::insertSorted(std::vector<ActionId>& v, ActionId a) {
  auto it = std::lower_bound(v.begin(), v.end(), a);
  if (it == v.end() || *it != a) v.insert(it, a);
}

void Signature::eraseSorted(std::vector<ActionId>& v, ActionId a) {
  auto it = std::lower_bound(v.begin(), v.end(), a);
  if (it != v.end() && *it == a) v.erase(it);
}

void Signature::add(ActionId action, ActionKind kind) {
  if (hasAction(action)) {
    require(kindOf(action) == kind,
            "Signature: action already present with a different role");
    return;
  }
  switch (kind) {
    case ActionKind::Input:
      insertSorted(inputs_, action);
      break;
    case ActionKind::Output:
      insertSorted(outputs_, action);
      break;
    case ActionKind::Internal:
      insertSorted(internals_, action);
      break;
  }
}

ActionKind Signature::kindOf(ActionId action) const {
  if (isInput(action)) return ActionKind::Input;
  if (isOutput(action)) return ActionKind::Output;
  require(isInternal(action), "Signature: action not in signature");
  return ActionKind::Internal;
}

bool Signature::hasAction(ActionId action) const {
  return isInput(action) || isOutput(action) || isInternal(action);
}

void Signature::hideOutput(ActionId action) {
  require(isOutput(action), "Signature: can only hide output actions");
  eraseSorted(outputs_, action);
  insertSorted(internals_, action);
}

IOIMC::IOIMC(std::string name, SymbolTablePtr symbols, Signature signature,
             StateId initial,
             std::vector<std::vector<InteractiveTransition>> inter,
             std::vector<std::vector<MarkovianTransition>> markov,
             std::vector<std::uint32_t> labelMasks,
             std::vector<std::string> labelNames)
    : name_(std::move(name)),
      symbols_(std::move(symbols)),
      signature_(std::move(signature)),
      initial_(initial),
      inter_(std::move(inter)),
      markov_(std::move(markov)),
      labelMasks_(std::move(labelMasks)),
      labelNames_(std::move(labelNames)) {
  validate();
}

void IOIMC::validate() const {
  require(symbols_ != nullptr, "IOIMC: missing symbol table");
  const std::size_t n = inter_.size();
  require(markov_.size() == n && labelMasks_.size() == n,
          "IOIMC '" + name_ + "': inconsistent state arrays");
  require(n > 0, "IOIMC '" + name_ + "': no states");
  require(initial_ < n, "IOIMC '" + name_ + "': initial state out of range");
  require(labelNames_.size() <= 32,
          "IOIMC '" + name_ + "': more than 32 labels");
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& t : inter_[s]) {
      require(t.to < n, "IOIMC '" + name_ + "': transition target out of range");
      require(signature_.hasAction(t.action),
              "IOIMC '" + name_ + "': transition uses action '" +
                  symbols_->name(t.action) + "' missing from signature");
    }
    for (const auto& t : markov_[s]) {
      require(t.to < n, "IOIMC '" + name_ + "': transition target out of range");
      require(t.rate > 0.0, "IOIMC '" + name_ + "': non-positive rate");
    }
  }
}

std::size_t IOIMC::numTransitions() const {
  std::size_t total = 0;
  for (const auto& v : inter_) total += v.size();
  for (const auto& v : markov_) total += v.size();
  return total;
}

bool IOIMC::isStable(StateId s) const {
  for (const auto& t : inter_[s])
    if (signature_.isInternal(t.action)) return false;
  return true;
}

bool IOIMC::isClosed() const {
  return signature_.inputs().empty() && signature_.outputs().empty();
}

bool IOIMC::isMarkovChain() const {
  for (const auto& v : inter_)
    if (!v.empty()) return false;
  return true;
}

int IOIMC::labelIndex(const std::string& label) const {
  for (std::size_t i = 0; i < labelNames_.size(); ++i)
    if (labelNames_[i] == label) return static_cast<int>(i);
  return -1;
}

}  // namespace imcdft::ioimc
