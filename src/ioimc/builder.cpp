#include "ioimc/builder.hpp"

#include "common/error.hpp"

namespace imcdft::ioimc {

IOIMCBuilder::IOIMCBuilder(std::string name, SymbolTablePtr symbols)
    : name_(std::move(name)), symbols_(std::move(symbols)) {
  require(symbols_ != nullptr, "IOIMCBuilder: null symbol table");
}

StateId IOIMCBuilder::addState() {
  inter_.emplace_back();
  markov_.emplace_back();
  labelMasks_.push_back(0);
  return static_cast<StateId>(inter_.size() - 1);
}

void IOIMCBuilder::reserveStates(std::size_t n) {
  while (inter_.size() < n) addState();
}

void IOIMCBuilder::setInitial(StateId s) {
  require(s < inter_.size(), "IOIMCBuilder: initial state out of range");
  initial_ = s;
  initialSet_ = true;
}

ActionId IOIMCBuilder::input(std::string_view action) {
  ActionId id = symbols_->intern(action);
  signature_.add(id, ActionKind::Input);
  return id;
}

ActionId IOIMCBuilder::output(std::string_view action) {
  ActionId id = symbols_->intern(action);
  signature_.add(id, ActionKind::Output);
  return id;
}

ActionId IOIMCBuilder::internal(std::string_view action) {
  ActionId id = symbols_->intern(action);
  signature_.add(id, ActionKind::Internal);
  return id;
}

void IOIMCBuilder::interactive(StateId from, std::string_view action,
                               StateId to) {
  SymbolId id = symbols_->find(action);
  require(id != SymbolTable::npos && signature_.hasAction(id),
          "IOIMCBuilder '" + name_ + "': undeclared action '" +
              std::string(action) + "'");
  interactive(from, id, to);
}

void IOIMCBuilder::interactive(StateId from, ActionId action, StateId to) {
  if (from >= inter_.size() || to >= inter_.size())
    require(false,
            "IOIMCBuilder '" + name_ + "': transition state out of range");
  inter_[from].push_back({action, to});
}

void IOIMCBuilder::markovian(StateId from, double rate, StateId to) {
  if (from >= inter_.size() || to >= inter_.size())
    require(false,
            "IOIMCBuilder '" + name_ + "': transition state out of range");
  if (!(rate > 0.0))
    require(false, "IOIMCBuilder '" + name_ + "': rate must be positive");
  markov_[from].push_back({rate, to});
}

void IOIMCBuilder::declareLabel(const std::string& labelName) {
  for (const std::string& existing : labelNames_)
    if (existing == labelName) return;
  require(labelNames_.size() < 32, "IOIMCBuilder: more than 32 labels");
  labelNames_.push_back(labelName);
}

void IOIMCBuilder::label(StateId s, const std::string& labelName) {
  require(s < inter_.size(), "IOIMCBuilder: label state out of range");
  declareLabel(labelName);
  int idx = -1;
  for (std::size_t i = 0; i < labelNames_.size(); ++i)
    if (labelNames_[i] == labelName) idx = static_cast<int>(i);
  labelMasks_[s] |= 1u << idx;
}

IOIMC IOIMCBuilder::build() && {
  require(initialSet_, "IOIMCBuilder '" + name_ + "': initial state not set");
  return IOIMC(std::move(name_), std::move(symbols_), std::move(signature_),
               initial_, std::move(inter_), std::move(markov_),
               std::move(labelMasks_), std::move(labelNames_));
}

}  // namespace imcdft::ioimc
