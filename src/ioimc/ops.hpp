#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ioimc/model.hpp"

/// \file ops.hpp
/// Basic model transformations: hiding, renaming, reachability restriction
/// and goal-absorption.  All operations are pure and return new models.

namespace imcdft::ioimc {

/// Hides the given output actions: they become internal actions (step 3 of
/// the paper's conversion/analysis algorithm).  Hidden actions no longer
/// synchronize in later compositions and are abstracted by weak
/// bisimulation.  Throws ModelError when an action is not an output.
IOIMC hide(const IOIMC& m, const std::vector<ActionId>& actions);

/// Hides every output action of \p m (used once the community has been
/// reduced to a single model).
IOIMC hideAllOutputs(const IOIMC& m);

/// Renames actions according to \p renaming (old action id -> new name);
/// actions absent from the map keep their names.  This implements the
/// reuse-by-renaming of Section 5.2 of the paper: an aggregated module
/// I/O-IMC is instantiated for a sibling module by renaming its firing,
/// activation and claim signals (the engine's symmetry reduction and the
/// Analyzer's shape-keyed module cache both build on it, see
/// analysis/symmetry.hpp).  Action kinds, state order and transition
/// order are preserved, so an *order-preserving* renaming commutes
/// bitwise with compose/hide/aggregate.  Throws ModelError when the
/// resolved map is not injective on the model's signature, i.e. two
/// distinct actions would collapse into one name (identity entries are
/// allowed).  New target names are interned in the model's symbol table.
IOIMC renameActions(const IOIMC& m,
                    const std::unordered_map<ActionId, std::string>& renaming);

/// Removes states unreachable from the initial state.
IOIMC restrictToReachable(const IOIMC& m);

/// Deterministically renumbers \p m into a canonical form: states are
/// ranked by iterated strong-signature refinement seeded with
/// (is-initial, label mask) — an order-independent coloring — and rows are
/// re-sorted by (action, target) / (target, rate bits).  Two models that
/// are isomorphic (equal up to state numbering and within-row transition
/// order, with bit-equal rates) produce *byte-identical* canonical forms,
/// provided the ranking separates every state.  On minimal weak quotients
/// it always does (distinct states are not even weakly bisimilar, and the
/// ranking is at least as fine as strong bisimulation); when it does not —
/// the model has non-trivial strong-bisimulation classes — the input is
/// returned unchanged and \p complete (when non-null) is set to false.
/// This is the normalization that lets the on-the-fly compose-and-minimize
/// engine guarantee bit-identical measures against the classic
/// compose+quotient pipeline (see otf_compose.hpp); aggregate() applies it
/// to every quotient.
IOIMC canonicalRenumber(const IOIMC& m, bool* complete = nullptr);

/// Deletes all outgoing transitions of states carrying \p label, making them
/// absorbing.  Sound for time-bounded reachability of \p label (the measure
/// the paper computes: system unreliability).
IOIMC makeLabelAbsorbing(const IOIMC& m, const std::string& label);

/// Returns the ids of all actions that appear as an input anywhere in
/// \p others (used to decide which outputs can be hidden after a
/// composition step).
std::vector<ActionId> usedInputs(const std::vector<const IOIMC*>& others);

/// Collapses *unobservable sinks*: maximal sets of states from which no
/// visible (input or output) transition is reachable and whose reachable
/// label masks are all identical.  Each such set merges into one absorbing
/// state carrying that mask.
///
/// This removes the semantically dead evolution that keeps running after a
/// module has fired (spare parts of a failed module failing one by one):
/// no measure defined on visible actions and state labels can tell the
/// difference, but ordinary weak bisimulation cannot merge those states
/// because their Markovian structure differs.  Applying this pass after
/// hiding is what keeps the aggregated module I/O-IMC as small as the
/// paper reports (Section 5.1: six states per CAS module).
IOIMC collapseUnobservableSinks(const IOIMC& m);

}  // namespace imcdft::ioimc
