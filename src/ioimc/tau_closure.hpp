#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "ioimc/model.hpp"

/// \file tau_closure.hpp
/// Shared tau-reachability machinery: the reflexive-transitive closure over
/// internal transitions plus per-state stability, computed per SCC of the
/// tau graph and shared (states of one SCC point into one CSR row instead
/// of each carrying a copy of the closure vector).  Used by the weak
/// refinement (bisimulation.cpp) and by the semantic sink collapse
/// (ops.cpp).  Not part of the public ioimc surface.

namespace imcdft::ioimc::detail {

struct TauClosure {
  std::vector<std::uint32_t> compOf;       ///< state -> tau-SCC
  std::vector<std::uint32_t> compOffsets;  ///< SCC -> row in compClosure
  std::vector<StateId> compClosure;        ///< sorted members, includes self
  std::vector<bool> stable;

  std::span<const StateId> closure(StateId s) const {
    std::uint32_t c = compOf[s];
    return {compClosure.data() + compOffsets[c],
            compOffsets[c + 1] - compOffsets[c]};
  }
  /// True when \p t is tau-reachable from \p s (reflexively).
  bool reaches(StateId s, StateId t) const {
    auto row = closure(s);
    return std::binary_search(row.begin(), row.end(), t);
  }
};

/// Computes tau closures and stability.  A state is stable when it enables
/// no internal transition and — when \p outputsUrgent — no output
/// transition (I/O-IMC maximal progress).
TauClosure computeTauClosure(const IOIMC& m, bool outputsUrgent);

/// The graph-agnostic core shared by computeTauClosure and the partial
/// refiner (otf_partition.cpp): SCC decomposition of the given adjacency
/// (Tarjan, iterative) plus per-SCC reflexive-transitive closures
/// flattened into one shared CSR array.  \p tauSucc rows must be sorted
/// and deduplicated; the result's compOf/compOffsets/compClosure are
/// filled, stability is left to the caller.
void computeSccClosures(const std::vector<std::vector<std::uint32_t>>& tauSucc,
                        TauClosure& info);

}  // namespace imcdft::ioimc::detail
