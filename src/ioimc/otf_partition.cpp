#include "ioimc/otf_partition.hpp"

#include <algorithm>
#include <bit>
#include <span>

#include "common/error.hpp"
#include "ioimc/signature_interner.hpp"
#include "ioimc/tau_closure.hpp"

namespace imcdft::ioimc::otf {

namespace {

using Role = ActionRole;

constexpr std::uint32_t kNoDense = static_cast<std::uint32_t>(-1);

/// detail::TauClosure over the dense live region, indexed by dense ids.
/// Unexpanded states have no outgoing edges here, so they are closure
/// leaves; their stability is unknown and never consulted (they are
/// singleton classes and contribute to other states' signatures only
/// through their class id).
using PartialTauInfo = detail::TauClosure;

PartialTauInfo computePartialTauInfo(
    const PartialGraph& g, const std::vector<StateId>& live,
    const std::vector<std::uint32_t>& denseOf) {
  const std::size_t n = live.size();
  const std::vector<Role>& roles = *g.roles;
  PartialTauInfo info;
  info.stable.assign(n, true);
  std::vector<std::vector<std::uint32_t>> tauSucc(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    const StateId s = live[d];
    if (!(*g.expanded)[s]) continue;
    for (const auto& t : (*g.inter)[s]) {
      const StateId to = (*g.rep)[t.to];
      require(to < denseOf.size() && denseOf[to] != kNoDense,
              "otf refine: live state has an edge to a non-live state");
      if (roles[t.action] == Role::Internal) {
        tauSucc[d].push_back(denseOf[to]);
        info.stable[d] = false;
      } else if (g.outputsUrgent && roles[t.action] == Role::Output) {
        info.stable[d] = false;
      }
    }
    std::sort(tauSucc[d].begin(), tauSucc[d].end());
    tauSucc[d].erase(std::unique(tauSucc[d].begin(), tauSucc[d].end()),
                     tauSucc[d].end());
  }
  detail::computeSccClosures(tauSucc, info);
  return info;
}

/// Reusable scratch buffers for one state's weak-signature encoding
/// (mirrors WeakScratch in bisimulation.cpp).
struct Scratch {
  std::vector<std::uint32_t> tauTargets;
  std::vector<std::uint64_t> visible;
  std::vector<std::pair<std::uint32_t, double>> raw;
  std::vector<std::uint64_t> rateTokens;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rateVecs;
};

/// Appends the canonical token encoding of expanded dense state \p d's
/// weak signature under partition \p classOf — the exact encoding of
/// bisimulation.cpp's encodeWeakSignature, evaluated over the partial
/// graph.  Frontier states appear through their singleton classes only.
void encodePartialWeakSignature(const PartialGraph& g,
                                const std::vector<StateId>& live,
                                const std::vector<std::uint32_t>& denseOf,
                                const PartialTauInfo& tau,
                                const std::vector<std::uint32_t>& classOf,
                                std::uint32_t d, Scratch& ws,
                                std::vector<std::uint64_t>& out) {
  const std::vector<Role>& roles = *g.roles;
  auto closure = tau.closure(d);

  ws.tauTargets.clear();
  for (std::uint32_t u : closure) ws.tauTargets.push_back(classOf[u]);
  std::sort(ws.tauTargets.begin(), ws.tauTargets.end());
  ws.tauTargets.erase(
      std::unique(ws.tauTargets.begin(), ws.tauTargets.end()),
      ws.tauTargets.end());

  ws.visible.clear();
  for (std::uint32_t u : closure) {
    const StateId su = live[u];
    if (!(*g.expanded)[su]) continue;  // frontier member: moves unknown
    for (const auto& t : (*g.inter)[su]) {
      const Role r = roles[t.action];
      if (r == Role::Internal) continue;
      const bool isInput = r == Role::Input;
      const std::uint32_t target = denseOf[(*g.rep)[t.to]];
      for (std::uint32_t v : tau.closure(target)) {
        std::uint32_t c = classOf[v];
        if (isInput && std::binary_search(ws.tauTargets.begin(),
                                          ws.tauTargets.end(), c))
          continue;
        ws.visible.push_back((static_cast<std::uint64_t>(t.action) << 32) | c);
      }
    }
  }
  std::sort(ws.visible.begin(), ws.visible.end());
  ws.visible.erase(std::unique(ws.visible.begin(), ws.visible.end()),
                   ws.visible.end());

  ws.rateTokens.clear();
  ws.rateVecs.clear();
  for (std::uint32_t u : closure) {
    const StateId su = live[u];
    if (!(*g.expanded)[su]) continue;  // stability unknown: no rate vector
    if (!tau.stable[u]) continue;
    ws.raw.clear();
    for (const auto& t : (*g.markov)[su])
      ws.raw.emplace_back(classOf[denseOf[(*g.rep)[t.to]]], t.rate);
    std::sort(ws.raw.begin(), ws.raw.end());
    const std::uint32_t begin = static_cast<std::uint32_t>(ws.rateTokens.size());
    for (std::size_t i = 0; i < ws.raw.size();) {
      const std::uint32_t cls = ws.raw[i].first;
      double sum = 0.0;
      while (i < ws.raw.size() && ws.raw[i].first == cls) sum += ws.raw[i++].second;
      ws.rateTokens.push_back(cls);
      ws.rateTokens.push_back(std::bit_cast<std::uint64_t>(sum));
    }
    ws.rateVecs.emplace_back(begin,
                             static_cast<std::uint32_t>(ws.rateTokens.size()));
  }
  auto vecLess = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                     const std::pair<std::uint32_t, std::uint32_t>& y) {
    return std::lexicographical_compare(
        ws.rateTokens.begin() + x.first, ws.rateTokens.begin() + x.second,
        ws.rateTokens.begin() + y.first, ws.rateTokens.begin() + y.second);
  };
  auto vecEqual = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                      const std::pair<std::uint32_t, std::uint32_t>& y) {
    return x.second - x.first == y.second - y.first &&
           std::equal(ws.rateTokens.begin() + x.first,
                      ws.rateTokens.begin() + x.second,
                      ws.rateTokens.begin() + y.first);
  };
  std::sort(ws.rateVecs.begin(), ws.rateVecs.end(), vecLess);
  ws.rateVecs.erase(
      std::unique(ws.rateVecs.begin(), ws.rateVecs.end(), vecEqual),
      ws.rateVecs.end());

  out.push_back(ws.tauTargets.size());
  out.insert(out.end(), ws.tauTargets.begin(), ws.tauTargets.end());
  out.push_back(ws.visible.size());
  out.insert(out.end(), ws.visible.begin(), ws.visible.end());
  out.push_back(ws.rateVecs.size());
  for (const auto& [begin, end] : ws.rateVecs) {
    out.push_back(end - begin);
    out.insert(out.end(), ws.rateTokens.begin() + begin,
               ws.rateTokens.begin() + end);
  }
}

/// Frontier-singleton marker (no expanded-state stream starts with it:
/// their streams start with a class id, always < 2^32).
constexpr std::uint64_t kFrontierMarker = ~0ull;

}  // namespace

PartialPartition refinePartial(const PartialGraph& g,
                               const std::vector<StateId>& live) {
  const std::size_t n = live.size();
  std::size_t maxId = 0;
  for (StateId s : live) maxId = std::max<std::size_t>(maxId, s);
  std::vector<std::uint32_t> denseOf(maxId + 1, kNoDense);
  for (std::uint32_t d = 0; d < n; ++d) denseOf[live[d]] = d;

  const PartialTauInfo tau = computePartialTauInfo(g, live, denseOf);

  detail::SignatureInterner interner;
  PartialPartition p;
  p.classOf.resize(n);

  // Round 0: expanded states by label mask, frontier states singleton.
  interner.beginIteration(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    auto& out = interner.scratch();
    out.clear();
    if ((*g.expanded)[live[d]]) {
      out.push_back((*g.labelMask)[live[d]]);
    } else {
      out.push_back(kFrontierMarker);
      out.push_back(d);
    }
    p.classOf[d] = interner.internScratch();
  }
  p.numClasses = interner.numClasses();

  Scratch ws;
  std::vector<std::uint32_t> newClassOf(n);
  while (true) {
    interner.beginIteration(n);
    for (std::uint32_t d = 0; d < n; ++d) {
      auto& out = interner.scratch();
      out.clear();
      out.push_back(p.classOf[d]);
      if ((*g.expanded)[live[d]]) {
        encodePartialWeakSignature(g, live, denseOf, tau, p.classOf, d, ws,
                                   out);
      } else {
        out.push_back(kFrontierMarker);
        out.push_back(d);
      }
      newClassOf[d] = interner.internScratch();
    }
    const std::uint32_t newCount = interner.numClasses();
    const bool stable = newCount == p.numClasses;
    std::swap(p.classOf, newClassOf);
    p.numClasses = newCount;
    if (stable) break;
  }

  // Per-class converged tau-target sets (first member encountered speaks
  // for the class; tauTargets is a class invariant at convergence).
  std::vector<std::vector<std::uint32_t>> classTau(p.numClasses);
  std::vector<std::uint8_t> done(p.numClasses, 0);
  for (std::uint32_t d = 0; d < n; ++d) {
    const std::uint32_t c = p.classOf[d];
    if (done[c]) continue;
    done[c] = 1;
    std::vector<std::uint32_t>& targets = classTau[c];
    for (std::uint32_t u : tau.closure(d)) targets.push_back(p.classOf[u]);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  }
  p.classTauOffsets.reserve(p.numClasses + 1);
  for (const std::vector<std::uint32_t>& targets : classTau) {
    p.classTauOffsets.push_back(
        static_cast<std::uint32_t>(p.classTauTargets.size()));
    p.classTauTargets.insert(p.classTauTargets.end(), targets.begin(),
                             targets.end());
  }
  p.classTauOffsets.push_back(
      static_cast<std::uint32_t>(p.classTauTargets.size()));
  return p;
}

}  // namespace imcdft::ioimc::otf
