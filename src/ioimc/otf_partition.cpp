#include "ioimc/otf_partition.hpp"

#include <algorithm>
#include <bit>
#include <span>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "ioimc/signature_interner.hpp"
#include "ioimc/tau_closure.hpp"

namespace imcdft::ioimc::otf {

namespace {

using Role = ActionRole;

constexpr std::uint32_t kNoDense = static_cast<std::uint32_t>(-1);

/// detail::TauClosure over the dense live region, indexed by dense ids.
/// Unexpanded states have no outgoing edges here, so they are closure
/// leaves; their stability is unknown and never consulted (they are
/// singleton classes and contribute to other states' signatures only
/// through their class id).
using PartialTauInfo = detail::TauClosure;

PartialTauInfo computePartialTauInfo(
    const PartialGraph& g, const std::vector<StateId>& live,
    const std::vector<std::uint32_t>& denseOf) {
  const std::size_t n = live.size();
  const std::vector<Role>& roles = *g.roles;
  PartialTauInfo info;
  info.stable.assign(n, true);
  std::vector<std::vector<std::uint32_t>> tauSucc(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    const StateId s = live[d];
    if (!(*g.expanded)[s]) continue;
    for (const auto& t : (*g.inter)[s]) {
      const StateId to = (*g.rep)[t.to];
      require(to < denseOf.size() && denseOf[to] != kNoDense,
              "otf refine: live state has an edge to a non-live state");
      if (roles[t.action] == Role::Internal) {
        tauSucc[d].push_back(denseOf[to]);
        info.stable[d] = false;
      } else if (g.outputsUrgent && roles[t.action] == Role::Output) {
        info.stable[d] = false;
      }
    }
    std::sort(tauSucc[d].begin(), tauSucc[d].end());
    tauSucc[d].erase(std::unique(tauSucc[d].begin(), tauSucc[d].end()),
                     tauSucc[d].end());
  }
  detail::computeSccClosures(tauSucc, info);
  return info;
}

/// Reusable scratch buffers for one state's weak-signature encoding
/// (mirrors WeakScratch in bisimulation.cpp).
struct Scratch {
  std::vector<std::uint32_t> tauTargets;
  std::vector<std::uint64_t> visible;
  std::vector<std::pair<std::uint32_t, double>> raw;
  std::vector<std::uint64_t> rateTokens;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rateVecs;
};

/// Per-pass saturated view of the partial graph: the parts of each
/// state's weak signature that do not depend on the current partition.
/// Refinement iterations only remap dense targets through classOf, so
/// the tau-closure walks run once per pass instead of once per
/// iteration.  All vectors are read-only during refinement and safe to
/// share across encode workers.
struct Saturation {
  /// Dedup'd weak interactive edges per dense state, packed as
  /// (action << 32 | targetDense), CSR via visOff.
  std::vector<std::uint64_t> vis;
  std::vector<std::uint32_t> visOff;
  /// Stable expanded tau-closure members per dense state, CSR via
  /// memberOff (closure order, which fixes rate-vector emission order).
  std::vector<std::uint32_t> stableMembers;
  std::vector<std::uint32_t> memberOff;
  /// Markovian edges (targetDense, rate) per dense state in transition
  /// order, CSR via markovOff; only filled for stable expanded states.
  std::vector<std::pair<std::uint32_t, double>> markov;
  std::vector<std::uint32_t> markovOff;
};

Saturation buildSaturation(const PartialGraph& g,
                           const std::vector<StateId>& live,
                           const std::vector<std::uint32_t>& denseOf,
                           const PartialTauInfo& tau) {
  const std::size_t n = live.size();
  const std::vector<Role>& roles = *g.roles;
  Saturation sat;
  sat.markovOff.reserve(n + 1);
  for (std::uint32_t d = 0; d < n; ++d) {
    sat.markovOff.push_back(static_cast<std::uint32_t>(sat.markov.size()));
    const StateId s = live[d];
    if (!(*g.expanded)[s] || !tau.stable[d]) continue;
    for (const auto& t : (*g.markov)[s])
      sat.markov.emplace_back(denseOf[(*g.rep)[t.to]], t.rate);
  }
  sat.markovOff.push_back(static_cast<std::uint32_t>(sat.markov.size()));

  sat.visOff.reserve(n + 1);
  sat.memberOff.reserve(n + 1);
  std::vector<std::uint64_t> buf;
  for (std::uint32_t d = 0; d < n; ++d) {
    sat.visOff.push_back(static_cast<std::uint32_t>(sat.vis.size()));
    sat.memberOff.push_back(
        static_cast<std::uint32_t>(sat.stableMembers.size()));
    buf.clear();
    for (std::uint32_t u : tau.closure(d)) {
      const StateId su = live[u];
      if (!(*g.expanded)[su]) continue;  // frontier member: moves unknown
      if (tau.stable[u]) sat.stableMembers.push_back(u);
      for (const auto& t : (*g.inter)[su]) {
        if (roles[t.action] == Role::Internal) continue;
        const std::uint32_t target = denseOf[(*g.rep)[t.to]];
        for (std::uint32_t v : tau.closure(target))
          buf.push_back((static_cast<std::uint64_t>(t.action) << 32) | v);
      }
    }
    std::sort(buf.begin(), buf.end());
    buf.erase(std::unique(buf.begin(), buf.end()), buf.end());
    sat.vis.insert(sat.vis.end(), buf.begin(), buf.end());
  }
  sat.visOff.push_back(static_cast<std::uint32_t>(sat.vis.size()));
  sat.memberOff.push_back(
      static_cast<std::uint32_t>(sat.stableMembers.size()));
  return sat;
}

/// Appends the canonical token encoding of expanded dense state \p d's
/// weak signature under partition \p classOf — the exact encoding of
/// bisimulation.cpp's encodeWeakSignature, evaluated over the partial
/// graph via the per-pass saturation.  Mapping dense targets through
/// classOf then sorting/dedup'ing yields the same token streams as
/// walking the closures under the partition directly, so partitions
/// (and the quotient) are bitwise identical to the unhoisted encoding.
/// Frontier states appear through their singleton classes only.
void encodePartialWeakSignature(const std::vector<Role>& roles,
                                const PartialTauInfo& tau,
                                const Saturation& sat,
                                const std::vector<std::uint32_t>& classOf,
                                std::uint32_t d, Scratch& ws,
                                std::vector<std::uint64_t>& out) {
  ws.tauTargets.clear();
  for (std::uint32_t u : tau.closure(d)) ws.tauTargets.push_back(classOf[u]);
  std::sort(ws.tauTargets.begin(), ws.tauTargets.end());
  ws.tauTargets.erase(
      std::unique(ws.tauTargets.begin(), ws.tauTargets.end()),
      ws.tauTargets.end());

  ws.visible.clear();
  for (std::uint32_t i = sat.visOff[d]; i < sat.visOff[d + 1]; ++i) {
    const std::uint64_t e = sat.vis[i];
    const std::uint32_t action = static_cast<std::uint32_t>(e >> 32);
    const std::uint32_t c = classOf[static_cast<std::uint32_t>(e)];
    if (roles[action] == Role::Input &&
        std::binary_search(ws.tauTargets.begin(), ws.tauTargets.end(), c))
      continue;
    ws.visible.push_back((static_cast<std::uint64_t>(action) << 32) | c);
  }
  std::sort(ws.visible.begin(), ws.visible.end());
  ws.visible.erase(std::unique(ws.visible.begin(), ws.visible.end()),
                   ws.visible.end());

  ws.rateTokens.clear();
  ws.rateVecs.clear();
  for (std::uint32_t m = sat.memberOff[d]; m < sat.memberOff[d + 1]; ++m) {
    const std::uint32_t u = sat.stableMembers[m];
    ws.raw.clear();
    for (std::uint32_t i = sat.markovOff[u]; i < sat.markovOff[u + 1]; ++i)
      ws.raw.emplace_back(classOf[sat.markov[i].first], sat.markov[i].second);
    std::sort(ws.raw.begin(), ws.raw.end());
    const std::uint32_t begin = static_cast<std::uint32_t>(ws.rateTokens.size());
    for (std::size_t i = 0; i < ws.raw.size();) {
      const std::uint32_t cls = ws.raw[i].first;
      double sum = 0.0;
      while (i < ws.raw.size() && ws.raw[i].first == cls) sum += ws.raw[i++].second;
      ws.rateTokens.push_back(cls);
      ws.rateTokens.push_back(std::bit_cast<std::uint64_t>(sum));
    }
    ws.rateVecs.emplace_back(begin,
                             static_cast<std::uint32_t>(ws.rateTokens.size()));
  }
  auto vecLess = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                     const std::pair<std::uint32_t, std::uint32_t>& y) {
    return std::lexicographical_compare(
        ws.rateTokens.begin() + x.first, ws.rateTokens.begin() + x.second,
        ws.rateTokens.begin() + y.first, ws.rateTokens.begin() + y.second);
  };
  auto vecEqual = [&](const std::pair<std::uint32_t, std::uint32_t>& x,
                      const std::pair<std::uint32_t, std::uint32_t>& y) {
    return x.second - x.first == y.second - y.first &&
           std::equal(ws.rateTokens.begin() + x.first,
                      ws.rateTokens.begin() + x.second,
                      ws.rateTokens.begin() + y.first);
  };
  std::sort(ws.rateVecs.begin(), ws.rateVecs.end(), vecLess);
  ws.rateVecs.erase(
      std::unique(ws.rateVecs.begin(), ws.rateVecs.end(), vecEqual),
      ws.rateVecs.end());

  out.push_back(ws.tauTargets.size());
  out.insert(out.end(), ws.tauTargets.begin(), ws.tauTargets.end());
  out.push_back(ws.visible.size());
  out.insert(out.end(), ws.visible.begin(), ws.visible.end());
  out.push_back(ws.rateVecs.size());
  for (const auto& [begin, end] : ws.rateVecs) {
    out.push_back(end - begin);
    out.insert(out.end(), ws.rateTokens.begin() + begin,
               ws.rateTokens.begin() + end);
  }
}

/// Frontier-singleton marker (no expanded-state stream starts with it:
/// their streams start with a class id, always < 2^32).
constexpr std::uint64_t kFrontierMarker = ~0ull;

}  // namespace


PartialPartition refinePartial(const PartialGraph& g,
                               const std::vector<StateId>& live,
                               WorkerPool* pool, const CancelToken* cancel) {
  const std::size_t n = live.size();
  std::size_t maxId = 0;
  for (StateId s : live) maxId = std::max<std::size_t>(maxId, s);
  std::vector<std::uint32_t> denseOf(maxId + 1, kNoDense);
  for (std::uint32_t d = 0; d < n; ++d) denseOf[live[d]] = d;

  const PartialTauInfo tau = computePartialTauInfo(g, live, denseOf);
  const Saturation sat = buildSaturation(g, live, denseOf, tau);
  const std::vector<Role>& roles = *g.roles;

  // Reverse dependency CSR: edge u -> d when state d's signature stream
  // reads classOf[u] (closure members, weak interactive targets, Markovian
  // targets of stable members).  Frontier states' streams are the constant
  // (marker, d) and read no classes.  Duplicate edges are harmless — dirty
  // marking is idempotent.
  auto forEachDep = [&](std::uint32_t d, auto&& f) {
    if (!(*g.expanded)[live[d]]) return;
    for (std::uint32_t u : tau.closure(d)) f(u);
    for (std::uint32_t i = sat.visOff[d]; i < sat.visOff[d + 1]; ++i)
      f(static_cast<std::uint32_t>(sat.vis[i]));
    for (std::uint32_t m = sat.memberOff[d]; m < sat.memberOff[d + 1]; ++m) {
      const std::uint32_t u = sat.stableMembers[m];
      for (std::uint32_t i = sat.markovOff[u]; i < sat.markovOff[u + 1]; ++i)
        f(sat.markov[i].first);
    }
  };
  std::vector<std::uint32_t> revOff(n + 1, 0);
  for (std::uint32_t d = 0; d < n; ++d)
    forEachDep(d, [&](std::uint32_t u) { ++revOff[u + 1]; });
  for (std::uint32_t u = 0; u < n; ++u) revOff[u + 1] += revOff[u];
  std::vector<std::uint32_t> revDep(revOff[n]);
  {
    std::vector<std::uint32_t> at(revOff.begin(), revOff.end() - 1);
    for (std::uint32_t d = 0; d < n; ++d)
      forEachDep(d, [&](std::uint32_t u) { revDep[at[u]++] = d; });
  }

  detail::SignatureInterner interner;
  PartialPartition p;
  p.classOf.resize(n);

  // Round 0: expanded states by label mask, frontier states singleton.
  interner.beginIteration(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    auto& out = interner.scratch();
    out.clear();
    if ((*g.expanded)[live[d]]) {
      out.push_back((*g.labelMask)[live[d]]);
    } else {
      out.push_back(kFrontierMarker);
      out.push_back(d);
    }
    p.classOf[d] = interner.internScratch();
  }
  std::uint32_t numPersistent = interner.numClasses();

  // Incremental signature refinement with persistent class ids.  Classes
  // only ever split, so a state's token stream — which reads classOf of
  // its dependencies — stays valid verbatim until some dependency changes
  // id.  Each round therefore re-encodes only dirty states (a dependency
  // changed last round) and re-groups only classes holding a dirty member;
  // untouched classes are signature-pure by induction and cannot split.
  // The partition sequence is exactly the one full re-encoding computes,
  // and the final first-appearance renumbering below reproduces the
  // interner's numbering of the last full iteration, so the result is
  // bitwise identical to the non-incremental loop.
  //
  // Parallel per-round encode (same split as bisimulation.cpp's weak
  // refinement): workers encode and hash disjoint blocks of the recompute
  // list, then one thread interns every stream in ascending dense order —
  // grouping is by stream equality either way, so the partition is
  // bitwise identical with and without the pool.
  const bool parallel = pool && pool->threads() > 1 &&
                        n >= detail::kIntraParallelMinStates;
  std::vector<detail::EncodedBlock> blocks;
  std::vector<Scratch> scratches;
  scratches.resize(parallel ? pool->threads() : 1);

  std::vector<std::vector<std::uint64_t>> cache(n);
  std::vector<std::uint8_t> stateDirty(n, 1);
  std::vector<std::uint8_t> classDirty;
  std::vector<std::uint8_t> keptGroup;
  std::vector<std::uint32_t> changed;    // ids changed in the last round
  std::vector<std::uint32_t> recompute;  // ascending; members of dirty classes
  std::vector<std::uint32_t> tmpId;
  std::vector<std::uint32_t> assign;
  std::vector<std::uint32_t> repOf;   // per class: chosen clean member
  std::vector<std::uint32_t> repTmp;  // per class: its stream's tmp id
  bool firstRound = true;
  while (true) {
    // All members of a class hold pairwise-equal streams (purity is
    // restored every time a class is touched), so a dirty class needs
    // only its dirty members plus one clean representative re-interned:
    // untouched clean members share the representative's stream and
    // silently keep the class id.
    recompute.clear();
    if (firstRound) {
      for (std::uint32_t d = 0; d < n; ++d) recompute.push_back(d);
      repOf.assign(numPersistent, kNoDense);
    } else {
      std::fill(stateDirty.begin(), stateDirty.end(), 0);
      for (std::uint32_t u : changed)
        for (std::uint32_t i = revOff[u]; i < revOff[u + 1]; ++i)
          stateDirty[revDep[i]] = 1;
      classDirty.assign(numPersistent, 0);
      for (std::uint32_t d = 0; d < n; ++d)
        if (stateDirty[d]) classDirty[p.classOf[d]] = 1;
      repOf.assign(numPersistent, kNoDense);
      for (std::uint32_t d = 0; d < n; ++d) {
        const std::uint32_t c = p.classOf[d];
        if (!classDirty[c]) continue;
        if (stateDirty[d]) {
          recompute.push_back(d);
        } else if (repOf[c] == kNoDense) {
          repOf[c] = d;
          recompute.push_back(d);
        }
      }
    }
    if (recompute.empty()) break;

    const std::size_t m = recompute.size();
    interner.beginIteration(m);
    tmpId.resize(m);
    if (parallel) {
      const std::size_t numBlocks =
          (m + detail::kIntraBlockStates - 1) / detail::kIntraBlockStates;
      blocks.resize(numBlocks);
      pool->run(numBlocks, [&](std::size_t blk, unsigned worker) {
        detail::EncodedBlock& eb = blocks[blk];
        eb.clear();
        Scratch& ws = scratches[worker];
        if (cancel) cancel->checkpoint("otf-refine", n);
        const std::size_t begin = blk * detail::kIntraBlockStates;
        const std::size_t end =
            std::min<std::size_t>(m, begin + detail::kIntraBlockStates);
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint32_t d = recompute[i];
          std::vector<std::uint64_t>& cs = cache[d];
          if (stateDirty[d]) {
            cs.clear();
            if ((*g.expanded)[live[d]]) {
              encodePartialWeakSignature(roles, tau, sat, p.classOf, d, ws,
                                         cs);
            } else {
              cs.push_back(kFrontierMarker);
              cs.push_back(d);
            }
          }
          const std::size_t at = eb.tokens.size();
          eb.tokens.push_back(p.classOf[d]);
          eb.tokens.insert(eb.tokens.end(), cs.begin(), cs.end());
          eb.ends.push_back(eb.tokens.size());
          eb.hashes.push_back(detail::SignatureInterner::hashTokens(
              eb.tokens.data() + at, eb.tokens.size() - at));
        }
      });
      std::size_t idx = 0;
      for (const detail::EncodedBlock& eb : blocks) {
        std::size_t at = 0;
        for (std::size_t i = 0; i < eb.ends.size(); ++i, ++idx) {
          tmpId[idx] = interner.internTokens(eb.tokens.data() + at,
                                             eb.ends[i] - at, eb.hashes[i]);
          at = eb.ends[i];
        }
      }
    } else {
      Scratch& ws = scratches.front();
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint32_t d = recompute[i];
        std::vector<std::uint64_t>& cs = cache[d];
        if (stateDirty[d]) {
          cs.clear();
          if ((*g.expanded)[live[d]]) {
            encodePartialWeakSignature(roles, tau, sat, p.classOf, d, ws, cs);
          } else {
            cs.push_back(kFrontierMarker);
            cs.push_back(d);
          }
        }
        auto& out = interner.scratch();
        out.clear();
        out.push_back(p.classOf[d]);
        out.insert(out.end(), cs.begin(), cs.end());
        tmpId[i] = interner.internScratch();
      }
    }

    // Split each recomputed class by stream equality.  When a clean
    // representative exists its group keeps the class id (so the clean
    // members never change id); otherwise the group of the lowest member
    // keeps it.  Every other group gets a fresh id and its members are
    // reported as changed (they are their own dependents through the
    // reflexive tau closure, so their new classes re-group next round).
    // Temporary intern ids never span classes — every stream is prefixed
    // with the persistent class id.  Which group keeps the id is an
    // internal labeling choice: grouping is by stream equality and the
    // final renumbering below canonicalizes ids, so the partition is
    // unaffected.
    repTmp.assign(numPersistent, kNoDense);
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t d = recompute[i];
      const std::uint32_t c = p.classOf[d];
      if (repOf[c] == d) repTmp[c] = tmpId[i];
    }
    assign.assign(interner.numClasses(), kNoDense);
    keptGroup.assign(numPersistent, 0);
    changed.clear();
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t d = recompute[i];
      const std::uint32_t c = p.classOf[d];
      const std::uint32_t t = tmpId[i];
      if (assign[t] == kNoDense) {
        if (repTmp[c] != kNoDense) {
          assign[t] = t == repTmp[c] ? c : numPersistent++;
        } else if (keptGroup[c]) {
          assign[t] = numPersistent++;
        } else {
          keptGroup[c] = 1;
          assign[t] = c;
        }
      }
      if (assign[t] != c) {
        p.classOf[d] = assign[t];
        changed.push_back(d);
      }
    }
    firstRound = false;
    if (changed.empty()) break;
  }

  // Canonical numbering by first appearance in state order — identical to
  // the numbering a full re-interning of the converged partition yields.
  {
    std::vector<std::uint32_t> remap(numPersistent, kNoDense);
    std::uint32_t next = 0;
    for (std::uint32_t d = 0; d < n; ++d) {
      std::uint32_t& r = remap[p.classOf[d]];
      if (r == kNoDense) r = next++;
      p.classOf[d] = r;
    }
    p.numClasses = next;
  }

  // Per-class converged tau-target sets (first member encountered speaks
  // for the class; tauTargets is a class invariant at convergence).
  std::vector<std::vector<std::uint32_t>> classTau(p.numClasses);
  std::vector<std::uint8_t> done(p.numClasses, 0);
  for (std::uint32_t d = 0; d < n; ++d) {
    const std::uint32_t c = p.classOf[d];
    if (done[c]) continue;
    done[c] = 1;
    std::vector<std::uint32_t>& targets = classTau[c];
    for (std::uint32_t u : tau.closure(d)) targets.push_back(p.classOf[u]);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  }
  p.classTauOffsets.reserve(p.numClasses + 1);
  for (const std::vector<std::uint32_t>& targets : classTau) {
    p.classTauOffsets.push_back(
        static_cast<std::uint32_t>(p.classTauTargets.size()));
    p.classTauTargets.insert(p.classTauTargets.end(), targets.begin(),
                             targets.end());
  }
  p.classTauOffsets.push_back(
      static_cast<std::uint32_t>(p.classTauTargets.size()));
  return p;
}

}  // namespace imcdft::ioimc::otf
