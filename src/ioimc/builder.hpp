#pragma once

#include <string>
#include <string_view>

#include "ioimc/model.hpp"

/// \file builder.hpp
/// Mutable construction interface for I/O-IMC models.

namespace imcdft::ioimc {

/// Incrementally builds an IOIMC, then validates it on build().
///
/// Typical use:
/// \code
///   IOIMCBuilder b("BE_A", symbols);
///   auto s0 = b.addState();
///   auto s1 = b.addState();
///   b.setInitial(s0);
///   b.input("aA");
///   b.output("fA");
///   b.interactive(s0, "aA", s1);
///   b.markovian(s1, 0.5, s2);
///   IOIMC m = std::move(b).build();
/// \endcode
class IOIMCBuilder {
 public:
  IOIMCBuilder(std::string name, SymbolTablePtr symbols);

  /// Adds a fresh state and returns its id.
  StateId addState();
  /// Ensures at least \p n states exist.
  void reserveStates(std::size_t n);
  void setInitial(StateId s);

  /// Declares actions in the signature (idempotent).
  ActionId input(std::string_view action);
  ActionId output(std::string_view action);
  ActionId internal(std::string_view action);

  /// Adds an interactive transition; the action must have been declared.
  void interactive(StateId from, std::string_view action, StateId to);
  void interactive(StateId from, ActionId action, StateId to);

  /// Adds a Markovian transition with strictly positive \p rate.
  void markovian(StateId from, double rate, StateId to);

  /// Attaches an atomic label to a state (registers the label on first use).
  void label(StateId s, const std::string& labelName);

  /// Registers a label name without attaching it to any state (so quotients
  /// keep the label universe of their source model even when no state
  /// carries a given label any more).
  void declareLabel(const std::string& labelName);

  std::size_t numStates() const { return inter_.size(); }
  const SymbolTablePtr& symbols() const { return symbols_; }

  /// Validates and produces the immutable model.
  IOIMC build() &&;

 private:
  std::string name_;
  SymbolTablePtr symbols_;
  Signature signature_;
  StateId initial_ = 0;
  bool initialSet_ = false;
  std::vector<std::vector<InteractiveTransition>> inter_;
  std::vector<std::vector<MarkovianTransition>> markov_;
  std::vector<std::uint32_t> labelMasks_;
  std::vector<std::string> labelNames_;
};

}  // namespace imcdft::ioimc
