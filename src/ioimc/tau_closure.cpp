#include "ioimc/tau_closure.hpp"

#include <algorithm>

namespace imcdft::ioimc::detail {

namespace {

std::vector<StateId> sortedUnion(const std::vector<StateId>& a,
                                 const std::vector<StateId>& b) {
  std::vector<StateId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

TauClosure computeTauClosure(const IOIMC& m, bool outputsUrgent) {
  const std::size_t n = m.numStates();
  const std::vector<ActionRole> roles = actionRoles(m);
  std::vector<std::vector<StateId>> tauSucc(n);
  TauClosure info;
  info.stable.assign(n, true);
  for (StateId s = 0; s < n; ++s) {
    for (const auto& t : m.interactive(s)) {
      if (roles[t.action] == ActionRole::Internal) {
        tauSucc[s].push_back(t.to);
        info.stable[s] = false;
      } else if (outputsUrgent && roles[t.action] == ActionRole::Output) {
        info.stable[s] = false;
      }
    }
    std::sort(tauSucc[s].begin(), tauSucc[s].end());
    tauSucc[s].erase(std::unique(tauSucc[s].begin(), tauSucc[s].end()),
                     tauSucc[s].end());
  }
  computeSccClosures(tauSucc, info);
  return info;
}

void computeSccClosures(const std::vector<std::vector<std::uint32_t>>& tauSucc,
                        TauClosure& info) {
  const std::size_t n = tauSucc.size();

  // Iterative Tarjan SCC over the tau graph.
  constexpr StateId kUndef = static_cast<StateId>(-1);
  std::vector<StateId> index(n, kUndef), low(n, 0);
  info.compOf.assign(n, kUndef);
  std::vector<bool> onStack(n, false);
  std::vector<StateId> stack;
  std::uint32_t nextIndex = 0, numComps = 0;
  struct Frame {
    StateId v;
    std::size_t child;
  };
  std::vector<Frame> callStack;
  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kUndef) continue;
    callStack.push_back({root, 0});
    while (!callStack.empty()) {
      Frame& f = callStack.back();
      StateId v = f.v;
      if (f.child == 0) {
        index[v] = low[v] = nextIndex++;
        stack.push_back(v);
        onStack[v] = true;
      }
      bool descended = false;
      while (f.child < tauSucc[v].size()) {
        StateId w = tauSucc[v][f.child++];
        if (index[w] == kUndef) {
          callStack.push_back({w, 0});
          descended = true;
          break;
        }
        if (onStack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          StateId w = stack.back();
          stack.pop_back();
          onStack[w] = false;
          info.compOf[w] = numComps;
          if (w == v) break;
        }
        ++numComps;
      }
      callStack.pop_back();
      if (!callStack.empty()) {
        StateId parent = callStack.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }

  // Components are numbered such that every tau successor's component id is
  // strictly smaller (Tarjan closes sinks first); compute closures bottom-up
  // and flatten them into one shared CSR array.
  std::vector<std::vector<StateId>> compMembers(numComps);
  for (StateId s = 0; s < n; ++s) compMembers[info.compOf[s]].push_back(s);
  std::vector<std::vector<StateId>> compClosure(numComps);
  std::size_t totalClosure = 0;
  for (std::uint32_t c = 0; c < numComps; ++c) {
    std::vector<StateId> acc = compMembers[c];
    std::sort(acc.begin(), acc.end());
    std::vector<std::uint32_t> succComps;
    for (StateId s : compMembers[c])
      for (StateId t : tauSucc[s])
        if (info.compOf[t] != c) succComps.push_back(info.compOf[t]);
    std::sort(succComps.begin(), succComps.end());
    succComps.erase(std::unique(succComps.begin(), succComps.end()),
                    succComps.end());
    for (std::uint32_t sc : succComps) acc = sortedUnion(acc, compClosure[sc]);
    totalClosure += acc.size();
    compClosure[c] = std::move(acc);
  }
  info.compOffsets.reserve(numComps + 1);
  info.compClosure.reserve(totalClosure);
  for (std::uint32_t c = 0; c < numComps; ++c) {
    info.compOffsets.push_back(
        static_cast<std::uint32_t>(info.compClosure.size()));
    info.compClosure.insert(info.compClosure.end(), compClosure[c].begin(),
                            compClosure[c].end());
  }
  info.compOffsets.push_back(
      static_cast<std::uint32_t>(info.compClosure.size()));
}

}  // namespace imcdft::ioimc::detail
