#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ioimc/bisimulation.hpp"
#include "ioimc/model.hpp"

namespace imcdft {
class WorkerPool;  // common/worker_pool.hpp
}

/// \file otf_compose.hpp
/// The fused compose-and-minimize engine: parallel composition that never
/// materializes the full reachable product.
///
/// otfComposeAggregate(a, b, hidden, opts) computes — in one pass — what
/// the classic per-step chain
///
///     aggregate(collapseUnobservableSinks(hide(compose(a, b), hidden)))
///
/// computes in four, while keeping only a shrinking *live region* of the
/// product in memory:
///
///  1. the synchronized product is explored breadth-first, with the
///     to-be-hidden outputs already internal (so the weak bisimulation has
///     its tau structure from the start);
///  2. every time the live region doubles, a signature-based refinement
///     runs over the visited states with all unexpanded frontier states
///     pinned to singleton classes (otf_partition.hpp).  Multi-member
///     classes — necessarily all expanded, with identical futures even
///     beyond the frontier — collapse onto their lowest-id member;
///  3. edges into collapsed states are redirected to the representative,
///     the collapsed states' subtrees are dropped, and frontier states
///     that became unreachable are pruned from the work queue: only class
///     representatives are ever expanded further;
///  4. the final live graph goes through the *existing* sink-collapse and
///     weak-quotient machinery, is canonically renumbered, and re-verified
///     as a fixpoint of the existing refinement.
///
/// Because each collapse merges genuinely weakly-bisimilar product states
/// (see otf_partition.hpp) and the final model is the canonical form of
/// the minimal quotient, the result is byte-identical to the classic
/// chain's — every downstream measure is bit-identical — while the peak
/// number of live states/transitions stays at the scale of the running
/// quotient instead of the full product.  Any invariant failure is
/// reported (never silently absorbed) so the caller can fall back to the
/// classic path; the engine wires this as EngineOptions::onTheFly.

namespace imcdft::ioimc::otf {

struct OtfOptions {
  WeakOptions weak;
  /// Apply collapseUnobservableSinks to the reduced graph (must mirror
  /// EngineOptions::collapseSinks of the classic path being replaced).
  bool collapseSinks = true;
  /// Run the first refinement when this many states are live.  Products
  /// smaller than this are simply explored whole (the classic quotient
  /// then still shrinks them at the end).
  std::size_t refineThreshold = 256;
  /// Adaptive refinement cadence: after a pass leaves L states live, the
  /// next pass runs when the live region reaches cadence * L.  An
  /// unproductive pass (it removed almost nothing) backs the working
  /// cadence off (doubling, capped at 8x this base); a productive pass
  /// resets it.  2.0 with no backoff is the old fixed-doubling policy.
  /// The cadence decides only *when* passes run, never what they compute:
  /// the final quotient + canonical renumbering is the same for every
  /// value (the engine's tail reaches the minimal quotient regardless), so
  /// this knob trades peak live states against wall time bit-neutrally.
  double refineCadence = 2.0;
  /// Worker threads for the per-iteration signature encoding inside the
  /// partial refinement (0 = hardware concurrency).  Bitwise identical
  /// for any value — see otf_partition.hpp / WeakOptions::intraThreads;
  /// also forwarded to nothing else (the quotient tail takes its own
  /// thread count from weak.intraThreads).
  unsigned intraThreads = 1;
  /// Caller-owned encoding pool, reused across composition steps so a
  /// chain of fused steps does not respawn worker threads per step.  When
  /// set it overrides intraThreads; must outlive the call.  Not owned.
  WorkerPool* encodePool = nullptr;
  /// Hand out the aggregated result after the *first* quotient pass and
  /// let the caller run the fixpoint verification later (see
  /// verifyAggregateFixpoint) — the engine-level pipelining hook: the
  /// verification of step k then overlaps step k+1's frontier expansion.
  /// OtfResult::fixpointVerified reports false when the check was skipped;
  /// callers MUST then verify before trusting the bytes.
  bool deferFixpoint = false;
  /// Safety valve: fail (so the caller falls back) when the live region
  /// exceeds this many states.  0 = unlimited.
  std::size_t maxLiveStates = 0;
};

struct OtfStats {
  /// Peak size of the live region — the fused step's peak-memory proxy,
  /// comparable against the classic path's full product size.
  std::size_t peakLiveStates = 0;
  std::size_t peakLiveTransitions = 0;
  /// Distinct product states ever visited (including re-expansions of
  /// revived states).
  std::size_t statesVisited = 0;
  std::size_t refinementRounds = 0;     ///< refinement passes actually run
  /// Passes the old fixed-doubling policy would have run but the adaptive
  /// cadence deferred (the knob's effect, measurable per step).
  std::size_t refinePassesSkipped = 0;
  /// Workers of the intra-step encoding pool (0 = never went parallel).
  unsigned intraWorkers = 0;
  std::size_t statesMerged = 0;         ///< collapsed into a representative
  std::size_t statesSinkCollapsed = 0;  ///< absorbed by the inline sink collapse
  std::size_t statesPruned = 0;         ///< became unreachable, dropped
  /// Wall-time breakdown of the fused step.  expand covers the frontier
  /// loop minus in-loop reductions; refine covers the partial weak
  /// refinement + reachability pruning; collapse covers the inline and
  /// final sink collapses; renumber covers the final renumbering plus the
  /// quotient tail (aggregation and its verification when not deferred).
  double expandSeconds = 0.0;
  double refineSeconds = 0.0;
  double collapseSeconds = 0.0;
  double renumberSeconds = 0.0;
};

struct OtfResult {
  bool ok = false;
  /// Set when !ok: why the fused engine gave up (the caller's Diagnostic).
  std::string failureReason;
  /// The aggregated composite (byte-identical to the classic chain).
  std::optional<IOIMC> model;
  /// False iff OtfOptions::deferFixpoint skipped the fixpoint
  /// verification; the caller owns running verifyAggregateFixpoint then.
  bool fixpointVerified = true;
  OtfStats stats;
};

/// Runs the fused engine.  \p hiddenOutputs are the composite outputs the
/// classic path would hide right after this composition (they must all be
/// outputs of the composite signature).  Incompatible operands surface as
/// !ok with the compose() error text — the classic fallback then throws
/// the identical error.
OtfResult otfComposeAggregate(const IOIMC& a, const IOIMC& b,
                              const std::vector<ActionId>& hiddenOutputs,
                              const OtfOptions& opts = {});

/// Completes a deferred fixpoint check (OtfOptions::deferFixpoint): runs
/// the weak refinement on \p m and, while it still finds merges, re-aggregates
/// with completeness-checked canonical renumbering.  Returns std::nullopt
/// when \p m already was the fixpoint (the common case — the handed-out
/// bytes stand as-is), or the corrected model otherwise.  Throws ModelError
/// when a renumbering cannot separate all quotient states (caller should
/// redo the step classically) and lets BudgetExceeded pass through.  Safe
/// to run concurrently with other work: it only reads \p m and the
/// internally synchronized symbol table.
std::optional<IOIMC> verifyAggregateFixpoint(const IOIMC& m,
                                             const WeakOptions& weak);

}  // namespace imcdft::ioimc::otf
