#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ioimc/model.hpp"

/// \file serialize.hpp
/// Exact binary (de)serialization of I/O-IMC models, the payload codec of
/// the persistent quotient store (store/quotient_store.hpp).
///
/// The encoding is *exact* and *session-independent*:
///
///  * Markovian rates are emitted as raw IEEE-754 bit patterns, so a
///    round trip is bitwise lossless;
///  * transitions keep their CSR order, so the reconstructed model's flat
///    arrays are identical to the source's;
///  * actions are referred to by their *names* (via an index into the
///    serialized signature), never by SymbolId — the bytes written by one
///    process deserialize correctly into any other symbol table.
///
/// Together these give the store its determinism guarantee: a model loaded
/// into a session whose symbol table already interned the model's action
/// names (which holds for module quotients, because conversion interns
/// every signal of the tree before the engine probes any cache) is
/// *byte-identical* — same CSR arrays, same ids — to what aggregating the
/// module in that session would have produced.

namespace imcdft::ioimc {

/// Append-only little-endian byte sink used by the store's record codecs.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw IEEE-754 bit pattern; the round trip is bitwise exact.
  void f64(double v);
  /// u32 length followed by the bytes.
  void str(std::string_view s);
  void raw(const void* data, std::size_t size);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader over a byte span.  Any overrun
/// poisons the reader (ok() turns false) and every later read returns a
/// zero value, so decoders can parse first and check once at the end —
/// truncated or corrupted input can never read out of bounds.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool take(std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Appends the exact encoding of \p m to \p out (see the file comment for
/// the guarantees).
void serializeModel(const IOIMC& m, ByteWriter& out);

/// Reconstructs a model written by serializeModel(), interning every action
/// and symbol name into \p symbols.  Returns nullopt — never throws, never
/// reads out of bounds — when the bytes are malformed (truncation,
/// inconsistent counts, or anything the IOIMC constructor's validation
/// rejects).
std::optional<IOIMC> deserializeModel(ByteReader& in,
                                      const SymbolTablePtr& symbols);

}  // namespace imcdft::ioimc
