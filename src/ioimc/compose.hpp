#pragma once

#include "ioimc/model.hpp"

/// \file compose.hpp
/// Parallel composition of I/O-IMC (Section 3 of the paper).
///
/// Two models synchronize on the actions shared by their signatures:
///  * an output of one matched with an input of the other occurs when the
///    *owner* outputs; the receiving side takes its explicit input
///    transition, or stays put (implicit input self-loop) when it has none;
///  * an action that is an input of both stays an input of the composite
///    and moves every component that has an explicit transition;
///  * two models may not share an output action (I/O automata
///    compatibility);
///  * Markovian transitions, internal actions and non-shared actions
///    interleave.
///
/// The composite signature is: outputs = out(A) u out(B),
/// inputs = (in(A) u in(B)) \ outputs, internal = int(A) u int(B).

namespace imcdft {
class CancelToken;  // common/cancel.hpp
}

namespace imcdft::ioimc {

/// Composes two compatible I/O-IMC, exploring only reachable pairs.
/// Throws ModelError when the models are incompatible (shared outputs,
/// different symbol tables, or an internal action of one colliding with a
/// visible action of the other).  \p cancel, when set, is checkpointed as
/// the reachable product expands, so an over-budget composition throws
/// BudgetExceeded instead of materializing the full product.
IOIMC compose(const IOIMC& a, const IOIMC& b,
              const CancelToken* cancel = nullptr);

}  // namespace imcdft::ioimc
