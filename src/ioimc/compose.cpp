#include "ioimc/compose.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "ioimc/compose_internal.hpp"

namespace imcdft::ioimc {

namespace detail {

GroupedModel groupModel(const IOIMC& m) {
  GroupedModel out;
  const std::size_t n = m.numStates();
  out.stateOffsets.reserve(n + 1);
  out.targets.reserve(m.numInteractiveTransitions());
  out.groups.reserve(m.numInteractiveTransitions());
  std::vector<InteractiveTransition> scratch;
  for (StateId s = 0; s < n; ++s) {
    out.stateOffsets.push_back(static_cast<std::uint32_t>(out.groups.size()));
    auto ts = m.interactive(s);
    scratch.assign(ts.begin(), ts.end());
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const InteractiveTransition& x,
                        const InteractiveTransition& y) {
                       return x.action < y.action;
                     });
    for (std::size_t i = 0; i < scratch.size();) {
      std::size_t j = i;
      std::uint32_t begin = static_cast<std::uint32_t>(out.targets.size());
      while (j < scratch.size() && scratch[j].action == scratch[i].action)
        out.targets.push_back(scratch[j++].to);
      out.groups.push_back({scratch[i].action, begin,
                            static_cast<std::uint32_t>(out.targets.size())});
      i = j;
    }
  }
  out.stateOffsets.push_back(static_cast<std::uint32_t>(out.groups.size()));
  return out;
}

void checkCompatible(const IOIMC& a, const IOIMC& b) {
  require(a.symbols() == b.symbols(),
          "compose: models must share one symbol table");
  for (ActionId o : a.signature().outputs())
    require(!b.signature().isOutput(o),
            "compose: models '" + a.name() + "' and '" + b.name() +
                "' share output action '" + a.actionName(o) + "'");
  auto checkInternal = [](const IOIMC& x, const IOIMC& y) {
    for (ActionId i : x.signature().internals())
      require(!y.signature().isInput(i) && !y.signature().isOutput(i),
              "compose: internal action '" + x.actionName(i) + "' of '" +
                  x.name() + "' collides with a visible action of '" +
                  y.name() + "'");
  };
  checkInternal(a, b);
  checkInternal(b, a);
}

Signature compositeSignature(const IOIMC& a, const IOIMC& b) {
  Signature sig;
  for (ActionId o : a.signature().outputs()) sig.add(o, ActionKind::Output);
  for (ActionId o : b.signature().outputs()) sig.add(o, ActionKind::Output);
  for (ActionId i : a.signature().inputs())
    if (!sig.isOutput(i)) sig.add(i, ActionKind::Input);
  for (ActionId i : b.signature().inputs())
    if (!sig.isOutput(i)) sig.add(i, ActionKind::Input);
  for (ActionId h : a.signature().internals()) sig.add(h, ActionKind::Internal);
  for (ActionId h : b.signature().internals()) sig.add(h, ActionKind::Internal);
  return sig;
}

MergedLabels mergeLabels(const IOIMC& a, const IOIMC& b) {
  // The name -> index map is built once instead of linearly scanning
  // labelNames per label per compose.
  MergedLabels out;
  out.names = a.labelNames();
  out.bRemap.resize(b.labelNames().size());
  std::unordered_map<std::string, int> labelIndex;
  labelIndex.reserve(out.names.size() + b.labelNames().size());
  for (std::size_t i = 0; i < out.names.size(); ++i)
    labelIndex.emplace(out.names[i], static_cast<int>(i));
  for (std::size_t i = 0; i < b.labelNames().size(); ++i) {
    const std::string& ln = b.labelNames()[i];
    auto [it, inserted] =
        labelIndex.try_emplace(ln, static_cast<int>(out.names.size()));
    if (inserted) {
      require(out.names.size() < 32, "compose: more than 32 labels");
      out.names.push_back(ln);
    }
    out.bRemap[i] = it->second;
  }
  return out;
}

}  // namespace detail

IOIMC compose(const IOIMC& a, const IOIMC& b, const CancelToken* cancel) {
  detail::checkCompatible(a, b);
  Signature sig = detail::compositeSignature(a, b);
  detail::MergedLabels labelUnion = detail::mergeLabels(a, b);

  // Per-input precomputation: dense role tables and action-grouped spans.
  const std::vector<ActionRole> roleA = actionRoles(a);
  const std::vector<ActionRole> roleB = actionRoles(b);
  const detail::GroupedModel groupedA = detail::groupModel(a);
  const detail::GroupedModel groupedB = detail::groupModel(b);

  // BFS over reachable state pairs.  Ids are assigned in discovery order
  // and the FIFO frontier pops them in exactly that order, so the output
  // rows can be appended straight into CSR storage.
  auto key = [](StateId sa, StateId sb) {
    return (static_cast<std::uint64_t>(sa) << 32) | sb;
  };
  const std::size_t sizeEstimate = a.numStates() + b.numStates();
  std::unordered_map<std::uint64_t, StateId> ids;
  ids.reserve(2 * sizeEstimate);
  std::vector<std::pair<StateId, StateId>> pairs;
  pairs.reserve(sizeEstimate);
  std::queue<StateId> frontier;
  auto stateOf = [&](StateId sa, StateId sb) {
    auto [it, inserted] = ids.try_emplace(key(sa, sb),
                                          static_cast<StateId>(pairs.size()));
    if (inserted) {
      pairs.emplace_back(sa, sb);
      frontier.push(it->second);
    }
    return it->second;
  };

  const std::size_t degreeEstimate =
      a.numTransitions() + b.numTransitions();
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels;
  inter.offsets.reserve(sizeEstimate + 1);
  markov.offsets.reserve(sizeEstimate + 1);
  inter.data.reserve(2 * degreeEstimate);
  markov.data.reserve(degreeEstimate);
  labels.reserve(sizeEstimate);

  stateOf(a.initial(), b.initial());
  while (!frontier.empty()) {
    StateId id = frontier.front();
    frontier.pop();
    // Cooperative cancellation: the discovered pair set is this loop's
    // live region — exactly what explodes on pathological products.
    if (cancel && (id & 255u) == 0u)
      cancel->checkpoint("compose", pairs.size(), inter.data.size());
    auto [sa, sb] = pairs[id];
    inter.beginState();
    markov.beginState();
    labels.push_back(labelUnion.compositeMask(a.labelMask(sa), b.labelMask(sb)));
    detail::forEachProductTransition(
        a, b, roleA, roleB, groupedA, groupedB, sa, sb,
        [&](ActionId act, StateId ta, StateId tb) {
          inter.data.push_back({act, stateOf(ta, tb)});
        },
        [&](double rate, StateId ta, StateId tb) {
          markov.data.push_back({rate, stateOf(ta, tb)});
        });
  }
  inter.finish();
  markov.finish();

  return IOIMC("(" + a.name() + "||" + b.name() + ")", a.symbols(),
               std::move(sig), 0, std::move(inter), std::move(markov),
               std::move(labels), std::move(labelUnion.names));
}

}  // namespace imcdft::ioimc
