#include "ioimc/compose.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"

namespace imcdft::ioimc {

namespace {

using Role = ActionRole;

/// One input model's interactive transitions re-packed as per-state spans
/// grouped by action (groups sorted by action id, targets in declaration
/// order).  Built once per compose() input instead of hashing every state's
/// transitions into a fresh unordered_map per visited composite state.
struct GroupedModel {
  struct Group {
    ActionId action;
    std::uint32_t begin, end;  ///< target range in targets
  };
  std::vector<std::uint32_t> stateOffsets;  ///< n+1, into groups
  std::vector<Group> groups;
  std::vector<StateId> targets;

  std::span<const Group> groupsOf(StateId s) const {
    return {groups.data() + stateOffsets[s],
            stateOffsets[s + 1] - stateOffsets[s]};
  }
  /// Binary search for the group of \p action in state \p s.
  const Group* find(StateId s, ActionId action) const {
    auto gs = groupsOf(s);
    auto it = std::lower_bound(
        gs.begin(), gs.end(), action,
        [](const Group& g, ActionId a) { return g.action < a; });
    return (it != gs.end() && it->action == action) ? &*it : nullptr;
  }
  std::span<const StateId> targetsOf(const Group& g) const {
    return {targets.data() + g.begin, static_cast<std::size_t>(g.end - g.begin)};
  }
};

GroupedModel groupModel(const IOIMC& m) {
  GroupedModel out;
  const std::size_t n = m.numStates();
  out.stateOffsets.reserve(n + 1);
  out.targets.reserve(m.numInteractiveTransitions());
  out.groups.reserve(m.numInteractiveTransitions());
  std::vector<InteractiveTransition> scratch;
  for (StateId s = 0; s < n; ++s) {
    out.stateOffsets.push_back(static_cast<std::uint32_t>(out.groups.size()));
    auto ts = m.interactive(s);
    scratch.assign(ts.begin(), ts.end());
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const InteractiveTransition& x,
                        const InteractiveTransition& y) {
                       return x.action < y.action;
                     });
    for (std::size_t i = 0; i < scratch.size();) {
      std::size_t j = i;
      std::uint32_t begin = static_cast<std::uint32_t>(out.targets.size());
      while (j < scratch.size() && scratch[j].action == scratch[i].action)
        out.targets.push_back(scratch[j++].to);
      out.groups.push_back({scratch[i].action, begin,
                            static_cast<std::uint32_t>(out.targets.size())});
      i = j;
    }
  }
  out.stateOffsets.push_back(static_cast<std::uint32_t>(out.groups.size()));
  return out;
}

void checkCompatible(const IOIMC& a, const IOIMC& b) {
  require(a.symbols() == b.symbols(),
          "compose: models must share one symbol table");
  for (ActionId o : a.signature().outputs())
    require(!b.signature().isOutput(o),
            "compose: models '" + a.name() + "' and '" + b.name() +
                "' share output action '" + a.actionName(o) + "'");
  auto checkInternal = [](const IOIMC& x, const IOIMC& y) {
    for (ActionId i : x.signature().internals())
      require(!y.signature().isInput(i) && !y.signature().isOutput(i),
              "compose: internal action '" + x.actionName(i) + "' of '" +
                  x.name() + "' collides with a visible action of '" +
                  y.name() + "'");
  };
  checkInternal(a, b);
  checkInternal(b, a);
}

Signature compositeSignature(const IOIMC& a, const IOIMC& b) {
  Signature sig;
  for (ActionId o : a.signature().outputs()) sig.add(o, ActionKind::Output);
  for (ActionId o : b.signature().outputs()) sig.add(o, ActionKind::Output);
  for (ActionId i : a.signature().inputs())
    if (!sig.isOutput(i)) sig.add(i, ActionKind::Input);
  for (ActionId i : b.signature().inputs())
    if (!sig.isOutput(i)) sig.add(i, ActionKind::Input);
  for (ActionId h : a.signature().internals()) sig.add(h, ActionKind::Internal);
  for (ActionId h : b.signature().internals()) sig.add(h, ActionKind::Internal);
  return sig;
}

}  // namespace

IOIMC compose(const IOIMC& a, const IOIMC& b) {
  checkCompatible(a, b);
  Signature sig = compositeSignature(a, b);

  // Merge the two label universes; the name -> index map is built once
  // instead of linearly scanning labelNames per label per compose.
  std::vector<std::string> labelNames = a.labelNames();
  std::vector<int> bLabelRemap(b.labelNames().size());
  {
    std::unordered_map<std::string, int> labelIndex;
    labelIndex.reserve(labelNames.size() + b.labelNames().size());
    for (std::size_t i = 0; i < labelNames.size(); ++i)
      labelIndex.emplace(labelNames[i], static_cast<int>(i));
    for (std::size_t i = 0; i < b.labelNames().size(); ++i) {
      const std::string& ln = b.labelNames()[i];
      auto [it, inserted] =
          labelIndex.try_emplace(ln, static_cast<int>(labelNames.size()));
      if (inserted) {
        require(labelNames.size() < 32, "compose: more than 32 labels");
        labelNames.push_back(ln);
      }
      bLabelRemap[i] = it->second;
    }
  }
  auto compositeMask = [&](StateId sa, StateId sb) {
    std::uint32_t mask = a.labelMask(sa);
    std::uint32_t mb = b.labelMask(sb);
    for (std::size_t i = 0; i < bLabelRemap.size(); ++i)
      if ((mb >> i) & 1u) mask |= 1u << bLabelRemap[i];
    return mask;
  };

  // Per-input precomputation: dense role tables and action-grouped spans.
  const std::vector<Role> roleA = actionRoles(a);
  const std::vector<Role> roleB = actionRoles(b);
  const GroupedModel groupedA = groupModel(a);
  const GroupedModel groupedB = groupModel(b);

  // BFS over reachable state pairs.  Ids are assigned in discovery order
  // and the FIFO frontier pops them in exactly that order, so the output
  // rows can be appended straight into CSR storage.
  auto key = [](StateId sa, StateId sb) {
    return (static_cast<std::uint64_t>(sa) << 32) | sb;
  };
  const std::size_t sizeEstimate = a.numStates() + b.numStates();
  std::unordered_map<std::uint64_t, StateId> ids;
  ids.reserve(2 * sizeEstimate);
  std::vector<std::pair<StateId, StateId>> pairs;
  pairs.reserve(sizeEstimate);
  std::queue<StateId> frontier;
  auto stateOf = [&](StateId sa, StateId sb) {
    auto [it, inserted] = ids.try_emplace(key(sa, sb),
                                          static_cast<StateId>(pairs.size()));
    if (inserted) {
      pairs.emplace_back(sa, sb);
      frontier.push(it->second);
    }
    return it->second;
  };

  const std::size_t degreeEstimate =
      a.numTransitions() + b.numTransitions();
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels;
  inter.offsets.reserve(sizeEstimate + 1);
  markov.offsets.reserve(sizeEstimate + 1);
  inter.data.reserve(2 * degreeEstimate);
  markov.data.reserve(degreeEstimate);
  labels.reserve(sizeEstimate);

  stateOf(a.initial(), b.initial());
  while (!frontier.empty()) {
    StateId id = frontier.front();
    frontier.pop();
    auto [sa, sb] = pairs[id];
    inter.beginState();
    markov.beginState();
    labels.push_back(compositeMask(sa, sb));

    // Markovian interleaving.
    for (const auto& t : a.markovian(sa))
      markov.data.push_back({t.rate, stateOf(t.to, sb)});
    for (const auto& t : b.markovian(sb))
      markov.data.push_back({t.rate, stateOf(sa, t.to)});

    auto emit = [&](ActionId act, StateId ta, StateId tb) {
      inter.data.push_back({act, stateOf(ta, tb)});
    };

    // Transitions rooted at A's side.
    for (const GroupedModel::Group& g : groupedA.groupsOf(sa)) {
      const ActionId act = g.action;
      const bool internalA = roleA[act] == Role::Internal;
      const bool sharedWithB = !internalA && roleB[act] != Role::None;
      if (!sharedWithB) {
        // Interleave: internal actions and actions B does not know about.
        for (StateId ta : groupedA.targetsOf(g)) emit(act, ta, sb);
        continue;
      }
      if (roleA[act] == Role::Input && roleB[act] == Role::Output) {
        // Occurrence is controlled by B; handled on B's side below.
        continue;
      }
      // act is an output of A (B listens), or an input of both.
      const GroupedModel::Group* gb = groupedB.find(sb, act);
      if (!gb) {
        for (StateId ta : groupedA.targetsOf(g))
          emit(act, ta, sb);  // B stays (implicit)
      } else {
        for (StateId ta : groupedA.targetsOf(g))
          for (StateId tb : groupedB.targetsOf(*gb)) emit(act, ta, tb);
      }
    }

    // Transitions rooted at B's side.
    for (const GroupedModel::Group& g : groupedB.groupsOf(sb)) {
      const ActionId act = g.action;
      const bool internalB = roleB[act] == Role::Internal;
      const bool sharedWithA = !internalB && roleA[act] != Role::None;
      if (!sharedWithA) {
        for (StateId tb : groupedB.targetsOf(g)) emit(act, sa, tb);
        continue;
      }
      if (roleB[act] == Role::Input && roleA[act] == Role::Output) {
        continue;  // controlled by A; handled above
      }
      // act is an output of B, or an input of both.
      const GroupedModel::Group* ga = groupedA.find(sa, act);
      if (!ga) {
        for (StateId tb : groupedB.targetsOf(g))
          emit(act, sa, tb);  // A stays (implicit)
      } else if (roleB[act] == Role::Output) {
        // B controls the occurrence; A reacts with its explicit inputs.
        // (A's side skipped this case above.)
        for (StateId ta : groupedA.targetsOf(*ga))
          for (StateId tb : groupedB.targetsOf(g)) emit(act, ta, tb);
      }
      // Input-of-both with both explicit: already emitted on A's side.
    }
  }
  inter.finish();
  markov.finish();

  return IOIMC("(" + a.name() + "||" + b.name() + ")", a.symbols(),
               std::move(sig), 0, std::move(inter), std::move(markov),
               std::move(labels), std::move(labelNames));
}

}  // namespace imcdft::ioimc
