#include "ioimc/compose.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"

namespace imcdft::ioimc {

namespace {

/// Interactive transitions of one state, grouped by action.
using ByAction = std::unordered_map<ActionId, std::vector<StateId>>;

ByAction groupByAction(const IOIMC& m, StateId s) {
  ByAction out;
  for (const auto& t : m.interactive(s)) out[t.action].push_back(t.to);
  return out;
}

void checkCompatible(const IOIMC& a, const IOIMC& b) {
  require(a.symbols() == b.symbols(),
          "compose: models must share one symbol table");
  for (ActionId o : a.signature().outputs())
    require(!b.signature().isOutput(o),
            "compose: models '" + a.name() + "' and '" + b.name() +
                "' share output action '" + a.actionName(o) + "'");
  auto checkInternal = [](const IOIMC& x, const IOIMC& y) {
    for (ActionId i : x.signature().internals())
      require(!y.signature().isInput(i) && !y.signature().isOutput(i),
              "compose: internal action '" + x.actionName(i) + "' of '" +
                  x.name() + "' collides with a visible action of '" +
                  y.name() + "'");
  };
  checkInternal(a, b);
  checkInternal(b, a);
}

Signature compositeSignature(const IOIMC& a, const IOIMC& b) {
  Signature sig;
  for (ActionId o : a.signature().outputs()) sig.add(o, ActionKind::Output);
  for (ActionId o : b.signature().outputs()) sig.add(o, ActionKind::Output);
  for (ActionId i : a.signature().inputs())
    if (!sig.isOutput(i)) sig.add(i, ActionKind::Input);
  for (ActionId i : b.signature().inputs())
    if (!sig.isOutput(i)) sig.add(i, ActionKind::Input);
  for (ActionId h : a.signature().internals()) sig.add(h, ActionKind::Internal);
  for (ActionId h : b.signature().internals()) sig.add(h, ActionKind::Internal);
  return sig;
}

}  // namespace

IOIMC compose(const IOIMC& a, const IOIMC& b) {
  checkCompatible(a, b);
  Signature sig = compositeSignature(a, b);

  // Merge the two label universes.
  std::vector<std::string> labelNames = a.labelNames();
  std::vector<int> bLabelRemap(b.labelNames().size());
  for (std::size_t i = 0; i < b.labelNames().size(); ++i) {
    const std::string& ln = b.labelNames()[i];
    auto it = std::find(labelNames.begin(), labelNames.end(), ln);
    if (it == labelNames.end()) {
      require(labelNames.size() < 32, "compose: more than 32 labels");
      labelNames.push_back(ln);
      bLabelRemap[i] = static_cast<int>(labelNames.size() - 1);
    } else {
      bLabelRemap[i] = static_cast<int>(it - labelNames.begin());
    }
  }
  auto compositeMask = [&](StateId sa, StateId sb) {
    std::uint32_t mask = a.labelMask(sa);
    std::uint32_t mb = b.labelMask(sb);
    for (std::size_t i = 0; i < bLabelRemap.size(); ++i)
      if ((mb >> i) & 1u) mask |= 1u << bLabelRemap[i];
    return mask;
  };

  // BFS over reachable state pairs.
  auto key = [](StateId sa, StateId sb) {
    return (static_cast<std::uint64_t>(sa) << 32) | sb;
  };
  std::unordered_map<std::uint64_t, StateId> ids;
  std::vector<std::pair<StateId, StateId>> pairs;
  std::queue<StateId> frontier;
  auto stateOf = [&](StateId sa, StateId sb) {
    auto [it, inserted] = ids.try_emplace(key(sa, sb),
                                          static_cast<StateId>(pairs.size()));
    if (inserted) {
      pairs.emplace_back(sa, sb);
      frontier.push(it->second);
    }
    return it->second;
  };

  std::vector<std::vector<InteractiveTransition>> inter;
  std::vector<std::vector<MarkovianTransition>> markov;
  std::vector<std::uint32_t> labels;

  stateOf(a.initial(), b.initial());
  while (!frontier.empty()) {
    StateId id = frontier.front();
    frontier.pop();
    auto [sa, sb] = pairs[id];
    if (inter.size() <= id) {
      inter.resize(id + 1);
      markov.resize(id + 1);
      labels.resize(id + 1);
    }
    labels[id] = compositeMask(sa, sb);

    // Markovian interleaving.
    for (const auto& t : a.markovian(sa))
      markov[id].push_back({t.rate, stateOf(t.to, sb)});
    for (const auto& t : b.markovian(sb))
      markov[id].push_back({t.rate, stateOf(sa, t.to)});

    ByAction fromA = groupByAction(a, sa);
    ByAction fromB = groupByAction(b, sb);

    auto emit = [&](ActionId act, StateId ta, StateId tb) {
      inter[id].push_back({act, stateOf(ta, tb)});
    };

    // Transitions rooted at A's side.
    for (const auto& [act, targetsA] : fromA) {
      const bool internalA = a.signature().isInternal(act);
      const bool sharedWithB = !internalA && b.signature().hasAction(act);
      if (!sharedWithB) {
        // Interleave: internal actions and actions B does not know about.
        for (StateId ta : targetsA) emit(act, ta, sb);
        continue;
      }
      if (a.signature().isInput(act) && b.signature().isOutput(act)) {
        // Occurrence is controlled by B; handled on B's side below.
        continue;
      }
      // act is an output of A (B listens), or an input of both.
      auto itB = fromB.find(act);
      if (itB == fromB.end()) {
        for (StateId ta : targetsA) emit(act, ta, sb);  // B stays (implicit)
      } else {
        for (StateId ta : targetsA)
          for (StateId tb : itB->second) emit(act, ta, tb);
      }
    }

    // Transitions rooted at B's side.
    for (const auto& [act, targetsB] : fromB) {
      const bool internalB = b.signature().isInternal(act);
      const bool sharedWithA = !internalB && a.signature().hasAction(act);
      if (!sharedWithA) {
        for (StateId tb : targetsB) emit(act, sa, tb);
        continue;
      }
      if (b.signature().isInput(act) && a.signature().isOutput(act)) {
        continue;  // controlled by A; handled above
      }
      // act is an output of B, or an input of both.
      auto itA = fromA.find(act);
      if (itA == fromA.end()) {
        for (StateId tb : targetsB) emit(act, sa, tb);  // A stays (implicit)
      } else if (b.signature().isOutput(act)) {
        // B controls the occurrence; A reacts with its explicit inputs.
        // (A's side skipped this case above.)
        for (StateId ta : itA->second)
          for (StateId tb : targetsB) emit(act, ta, tb);
      }
      // Input-of-both with both explicit: already emitted on A's side.
    }
  }

  return IOIMC("(" + a.name() + "||" + b.name() + ")", a.symbols(),
               std::move(sig), 0, std::move(inter), std::move(markov),
               std::move(labels), std::move(labelNames));
}

}  // namespace imcdft::ioimc
