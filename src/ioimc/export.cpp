#include "ioimc/export.hpp"

#include <sstream>

namespace imcdft::ioimc {

namespace {

std::string decoratedAction(const IOIMC& m, ActionId a) {
  std::string name = m.actionName(a);
  switch (m.signature().kindOf(a)) {
    case ActionKind::Input:
      return name + "?";
    case ActionKind::Output:
      return name + "!";
    case ActionKind::Internal:
      return name + ";";
  }
  return name;
}

}  // namespace

std::string toDot(const IOIMC& m) {
  std::ostringstream os;
  os << "digraph \"" << m.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (StateId s = 0; s < m.numStates(); ++s) {
    os << "  s" << s << " [label=\"" << s;
    std::uint32_t mask = m.labelMask(s);
    for (std::size_t i = 0; i < m.labelNames().size(); ++i)
      if ((mask >> i) & 1u) os << "\\n" << m.labelNames()[i];
    os << "\"";
    if (s == m.initial()) os << ", style=bold";
    os << "];\n";
  }
  for (StateId s = 0; s < m.numStates(); ++s) {
    for (const auto& t : m.interactive(s))
      os << "  s" << s << " -> s" << t.to << " [label=\""
         << decoratedAction(m, t.action) << "\"];\n";
    for (const auto& t : m.markovian(s))
      os << "  s" << s << " -> s" << t.to << " [label=\"" << t.rate
         << "\", style=dashed];\n";
  }
  os << "}\n";
  return os.str();
}

std::string toAut(const IOIMC& m) {
  std::ostringstream os;
  os << "des (" << m.initial() << ", " << m.numTransitions() << ", "
     << m.numStates() << ")\n";
  for (StateId s = 0; s < m.numStates(); ++s) {
    for (const auto& t : m.interactive(s))
      os << "(" << s << ", \"" << decoratedAction(m, t.action) << "\", "
         << t.to << ")\n";
    for (const auto& t : m.markovian(s))
      os << "(" << s << ", \"rate " << t.rate << "\", " << t.to << ")\n";
  }
  return os.str();
}

}  // namespace imcdft::ioimc
