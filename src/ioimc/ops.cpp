#include "ioimc/ops.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"

namespace imcdft::ioimc {

IOIMC hide(const IOIMC& m, const std::vector<ActionId>& actions) {
  Signature sig = m.signature();
  for (ActionId a : actions) sig.hideOutput(a);
  // Transitions are untouched by hiding; copy the flat storage wholesale.
  const std::size_t n = m.numStates();
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(n);
  inter.data.assign(m.allInteractive().begin(), m.allInteractive().end());
  markov.data.assign(m.allMarkovian().begin(), m.allMarkovian().end());
  inter.offsets.resize(n + 1, 0);
  markov.offsets.resize(n + 1, 0);
  for (StateId s = 0; s < n; ++s) {
    inter.offsets[s + 1] =
        inter.offsets[s] + static_cast<std::uint32_t>(m.interactive(s).size());
    markov.offsets[s + 1] =
        markov.offsets[s] + static_cast<std::uint32_t>(m.markovian(s).size());
    labels[s] = m.labelMask(s);
  }
  return IOIMC(m.name(), m.symbols(), std::move(sig), m.initial(),
               std::move(inter), std::move(markov), std::move(labels),
               m.labelNames());
}

IOIMC hideAllOutputs(const IOIMC& m) { return hide(m, m.signature().outputs()); }

IOIMC renameActions(
    const IOIMC& m,
    const std::unordered_map<ActionId, std::string>& renaming) {
  // Resolve the whole signature once (one intern per renamed action, not
  // one per transition) and reject non-injective maps: two distinct
  // actions renamed to one name would silently merge behaviors (and
  // corrupt the signature's disjointness invariant).
  std::unordered_map<ActionId, ActionId> resolved;
  std::vector<ActionId> targets;
  const std::size_t numActions = m.signature().inputs().size() +
                                 m.signature().outputs().size() +
                                 m.signature().internals().size();
  resolved.reserve(numActions);
  targets.reserve(numActions);
  auto resolve = [&](const std::vector<ActionId>& actions) {
    for (ActionId a : actions) {
      auto it = renaming.find(a);
      ActionId to = it == renaming.end() ? a : m.symbols()->intern(it->second);
      resolved.emplace(a, to);
      targets.push_back(to);
    }
  };
  resolve(m.signature().inputs());
  resolve(m.signature().outputs());
  resolve(m.signature().internals());
  std::sort(targets.begin(), targets.end());
  auto dup = std::adjacent_find(targets.begin(), targets.end());
  if (dup != targets.end())
    throw ModelError("renameActions: renaming maps two distinct actions of '" +
                     m.name() + "' to '" + m.symbols()->name(*dup) + "'");
  auto mapAction = [&](ActionId a) -> ActionId {
    auto it = resolved.find(a);
    return it == resolved.end() ? a : it->second;
  };
  Signature sig;
  for (ActionId a : m.signature().inputs())
    sig.add(mapAction(a), ActionKind::Input);
  for (ActionId a : m.signature().outputs())
    sig.add(mapAction(a), ActionKind::Output);
  for (ActionId a : m.signature().internals())
    sig.add(mapAction(a), ActionKind::Internal);
  const std::size_t n = m.numStates();
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(n);
  inter.data.reserve(m.numInteractiveTransitions());
  markov.data.assign(m.allMarkovian().begin(), m.allMarkovian().end());
  inter.offsets.reserve(n + 1);
  markov.offsets.resize(n + 1, 0);
  for (StateId s = 0; s < n; ++s) {
    inter.beginState();
    markov.offsets[s + 1] =
        markov.offsets[s] + static_cast<std::uint32_t>(m.markovian(s).size());
    for (const auto& t : m.interactive(s))
      inter.data.push_back({mapAction(t.action), t.to});
    labels[s] = m.labelMask(s);
  }
  inter.finish();
  return IOIMC(m.name(), m.symbols(), std::move(sig), m.initial(),
               std::move(inter), std::move(markov), std::move(labels),
               m.labelNames());
}

IOIMC restrictToReachable(const IOIMC& m) {
  const StateId kUnvisited = static_cast<StateId>(-1);
  std::vector<StateId> remap(m.numStates(), kUnvisited);
  std::vector<StateId> order;
  std::queue<StateId> frontier;
  remap[m.initial()] = 0;
  order.push_back(m.initial());
  frontier.push(m.initial());
  while (!frontier.empty()) {
    StateId s = frontier.front();
    frontier.pop();
    auto visit = [&](StateId t) {
      if (remap[t] == kUnvisited) {
        remap[t] = static_cast<StateId>(order.size());
        order.push_back(t);
        frontier.push(t);
      }
    };
    for (const auto& t : m.interactive(s)) visit(t.to);
    for (const auto& t : m.markovian(s)) visit(t.to);
  }
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(order.size());
  inter.offsets.reserve(order.size() + 1);
  markov.offsets.reserve(order.size() + 1);
  for (StateId ns = 0; ns < order.size(); ++ns) {
    StateId os = order[ns];
    inter.beginState();
    markov.beginState();
    for (const auto& t : m.interactive(os))
      inter.data.push_back({t.action, remap[t.to]});
    for (const auto& t : m.markovian(os))
      markov.data.push_back({t.rate, remap[t.to]});
    labels[ns] = m.labelMask(os);
  }
  inter.finish();
  markov.finish();
  return IOIMC(m.name(), m.symbols(), m.signature(), 0, std::move(inter),
               std::move(markov), std::move(labels), m.labelNames());
}

IOIMC makeLabelAbsorbing(const IOIMC& m, const std::string& label) {
  int idx = m.labelIndex(label);
  require(idx >= 0, "makeLabelAbsorbing: model has no label '" + label + "'");
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(m.numStates());
  inter.offsets.reserve(m.numStates() + 1);
  markov.offsets.reserve(m.numStates() + 1);
  for (StateId s = 0; s < m.numStates(); ++s) {
    inter.beginState();
    markov.beginState();
    labels[s] = m.labelMask(s);
    if (m.hasLabel(s, idx)) continue;  // drop all outgoing transitions
    auto it = m.interactive(s);
    inter.data.insert(inter.data.end(), it.begin(), it.end());
    auto mt = m.markovian(s);
    markov.data.insert(markov.data.end(), mt.begin(), mt.end());
  }
  inter.finish();
  markov.finish();
  IOIMC out(m.name(), m.symbols(), m.signature(), m.initial(),
            std::move(inter), std::move(markov), std::move(labels),
            m.labelNames());
  return restrictToReachable(out);
}

IOIMC collapseUnobservableSinks(const IOIMC& m) {
  const std::size_t n = m.numStates();
  // A state is a "boundary" when it can itself produce visible behavior or
  // directly change the observable label mask.
  std::vector<std::uint8_t> bad(n, 0);
  std::vector<std::vector<StateId>> predecessors(n);
  for (StateId s = 0; s < n; ++s) {
    for (const auto& t : m.interactive(s)) {
      predecessors[t.to].push_back(s);
      if (!m.signature().isInternal(t.action)) bad[s] = 1;
      if (m.labelMask(t.to) != m.labelMask(s)) bad[s] = 1;
    }
    for (const auto& t : m.markovian(s)) {
      predecessors[t.to].push_back(s);
      if (m.labelMask(t.to) != m.labelMask(s)) bad[s] = 1;
    }
  }
  // Backward closure: anything that can reach a boundary state stays.
  std::vector<StateId> frontier;
  for (StateId s = 0; s < n; ++s)
    if (bad[s]) frontier.push_back(s);
  while (!frontier.empty()) {
    StateId s = frontier.back();
    frontier.pop_back();
    for (StateId p : predecessors[s])
      if (!bad[p]) {
        bad[p] = 1;
        frontier.push_back(p);
      }
  }

  // One absorbing sink per label mask found among sinkable states.
  std::unordered_map<std::uint32_t, StateId> sinkOf;
  std::vector<StateId> remap(n);
  StateId next = 0;
  for (StateId s = 0; s < n; ++s)
    if (bad[s]) remap[s] = next++;
  for (StateId s = 0; s < n; ++s) {
    if (bad[s]) continue;
    auto [it, inserted] = sinkOf.try_emplace(m.labelMask(s), next);
    if (inserted) ++next;
    remap[s] = it->second;
  }

  std::vector<std::vector<InteractiveTransition>> inter(next);
  std::vector<std::vector<MarkovianTransition>> markov(next);
  std::vector<std::uint32_t> labels(next, 0);
  for (StateId s = 0; s < n; ++s) {
    labels[remap[s]] = m.labelMask(s);
    if (!bad[s]) continue;  // sinks are absorbing
    for (const auto& t : m.interactive(s))
      inter[remap[s]].push_back({t.action, remap[t.to]});
    for (const auto& t : m.markovian(s))
      markov[remap[s]].push_back({t.rate, remap[t.to]});
  }
  IOIMC out(m.name(), m.symbols(), m.signature(), remap[m.initial()],
            std::move(inter), std::move(markov), std::move(labels),
            m.labelNames());
  return restrictToReachable(out);
}

std::vector<ActionId> usedInputs(const std::vector<const IOIMC*>& others) {
  std::vector<ActionId> used;
  for (const IOIMC* m : others)
    used.insert(used.end(), m->signature().inputs().begin(),
                m->signature().inputs().end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace imcdft::ioimc
