#include "ioimc/ops.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"

namespace imcdft::ioimc {

IOIMC hide(const IOIMC& m, const std::vector<ActionId>& actions) {
  Signature sig = m.signature();
  for (ActionId a : actions) sig.hideOutput(a);
  // Transitions are untouched by hiding; copy the flat storage wholesale.
  const std::size_t n = m.numStates();
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(n);
  inter.data.assign(m.allInteractive().begin(), m.allInteractive().end());
  markov.data.assign(m.allMarkovian().begin(), m.allMarkovian().end());
  inter.offsets.resize(n + 1, 0);
  markov.offsets.resize(n + 1, 0);
  for (StateId s = 0; s < n; ++s) {
    inter.offsets[s + 1] =
        inter.offsets[s] + static_cast<std::uint32_t>(m.interactive(s).size());
    markov.offsets[s + 1] =
        markov.offsets[s] + static_cast<std::uint32_t>(m.markovian(s).size());
    labels[s] = m.labelMask(s);
  }
  return IOIMC(m.name(), m.symbols(), std::move(sig), m.initial(),
               std::move(inter), std::move(markov), std::move(labels),
               m.labelNames());
}

IOIMC hideAllOutputs(const IOIMC& m) { return hide(m, m.signature().outputs()); }

IOIMC renameActions(
    const IOIMC& m,
    const std::unordered_map<ActionId, std::string>& renaming) {
  // Resolve the whole signature once (one intern per renamed action, not
  // one per transition) and reject non-injective maps: two distinct
  // actions renamed to one name would silently merge behaviors (and
  // corrupt the signature's disjointness invariant).
  std::unordered_map<ActionId, ActionId> resolved;
  std::vector<ActionId> targets;
  const std::size_t numActions = m.signature().inputs().size() +
                                 m.signature().outputs().size() +
                                 m.signature().internals().size();
  resolved.reserve(numActions);
  targets.reserve(numActions);
  auto resolve = [&](const std::vector<ActionId>& actions) {
    for (ActionId a : actions) {
      auto it = renaming.find(a);
      ActionId to = it == renaming.end() ? a : m.symbols()->intern(it->second);
      resolved.emplace(a, to);
      targets.push_back(to);
    }
  };
  resolve(m.signature().inputs());
  resolve(m.signature().outputs());
  resolve(m.signature().internals());
  std::sort(targets.begin(), targets.end());
  auto dup = std::adjacent_find(targets.begin(), targets.end());
  if (dup != targets.end())
    throw ModelError("renameActions: renaming maps two distinct actions of '" +
                     m.name() + "' to '" + m.symbols()->name(*dup) + "'");
  auto mapAction = [&](ActionId a) -> ActionId {
    auto it = resolved.find(a);
    return it == resolved.end() ? a : it->second;
  };
  Signature sig;
  for (ActionId a : m.signature().inputs())
    sig.add(mapAction(a), ActionKind::Input);
  for (ActionId a : m.signature().outputs())
    sig.add(mapAction(a), ActionKind::Output);
  for (ActionId a : m.signature().internals())
    sig.add(mapAction(a), ActionKind::Internal);
  const std::size_t n = m.numStates();
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(n);
  inter.data.reserve(m.numInteractiveTransitions());
  markov.data.assign(m.allMarkovian().begin(), m.allMarkovian().end());
  inter.offsets.reserve(n + 1);
  markov.offsets.resize(n + 1, 0);
  for (StateId s = 0; s < n; ++s) {
    inter.beginState();
    markov.offsets[s + 1] =
        markov.offsets[s] + static_cast<std::uint32_t>(m.markovian(s).size());
    for (const auto& t : m.interactive(s))
      inter.data.push_back({mapAction(t.action), t.to});
    labels[s] = m.labelMask(s);
  }
  inter.finish();
  return IOIMC(m.name(), m.symbols(), std::move(sig), m.initial(),
               std::move(inter), std::move(markov), std::move(labels),
               m.labelNames());
}

IOIMC restrictToReachable(const IOIMC& m) {
  const StateId kUnvisited = static_cast<StateId>(-1);
  std::vector<StateId> remap(m.numStates(), kUnvisited);
  std::vector<StateId> order;
  std::queue<StateId> frontier;
  remap[m.initial()] = 0;
  order.push_back(m.initial());
  frontier.push(m.initial());
  while (!frontier.empty()) {
    StateId s = frontier.front();
    frontier.pop();
    auto visit = [&](StateId t) {
      if (remap[t] == kUnvisited) {
        remap[t] = static_cast<StateId>(order.size());
        order.push_back(t);
        frontier.push(t);
      }
    };
    for (const auto& t : m.interactive(s)) visit(t.to);
    for (const auto& t : m.markovian(s)) visit(t.to);
  }
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(order.size());
  inter.offsets.reserve(order.size() + 1);
  markov.offsets.reserve(order.size() + 1);
  for (StateId ns = 0; ns < order.size(); ++ns) {
    StateId os = order[ns];
    inter.beginState();
    markov.beginState();
    for (const auto& t : m.interactive(os))
      inter.data.push_back({t.action, remap[t.to]});
    for (const auto& t : m.markovian(os))
      markov.data.push_back({t.rate, remap[t.to]});
    labels[ns] = m.labelMask(os);
  }
  inter.finish();
  markov.finish();
  return IOIMC(m.name(), m.symbols(), m.signature(), 0, std::move(inter),
               std::move(markov), std::move(labels), m.labelNames());
}

IOIMC canonicalRenumber(const IOIMC& m, bool* complete) {
  const std::size_t n = m.numStates();

  // Round 0: rank by (is-initial, label mask).  Both properties are
  // invariant under isomorphism, so corresponding states of two isomorphic
  // models start with equal ranks.
  std::vector<std::uint32_t> rank(n);
  std::uint32_t numRanks = 0;
  {
    std::vector<std::uint64_t> key(n);
    for (StateId s = 0; s < n; ++s)
      key[s] = (static_cast<std::uint64_t>(s == m.initial() ? 0 : 1) << 32) |
               m.labelMask(s);
    std::vector<std::uint64_t> sorted = key;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    numRanks = static_cast<std::uint32_t>(sorted.size());
    for (StateId s = 0; s < n; ++s)
      rank[s] = static_cast<std::uint32_t>(
          std::lower_bound(sorted.begin(), sorted.end(), key[s]) -
          sorted.begin());
  }

  // Iterate: each round encodes every state's strong one-step signature
  // under the current ranks as a token stream, orders the streams
  // lexicographically and re-ranks by position among the distinct streams.
  // Streams start with the state's current rank, so the partition only
  // refines; the rank *values* are derived from the sorted stream order,
  // never from state ids, which keeps them isomorphism-invariant.
  std::vector<std::uint64_t> arena;
  std::vector<std::size_t> offsets;
  std::vector<std::uint64_t> interTokens;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> markovTokens;
  std::vector<std::uint32_t> order(n), next(n);
  while (numRanks < n) {
    arena.clear();
    offsets.assign(1, 0);
    for (StateId s = 0; s < n; ++s) {
      arena.push_back(rank[s]);
      interTokens.clear();
      for (const auto& t : m.interactive(s))
        interTokens.push_back((static_cast<std::uint64_t>(t.action) << 32) |
                              rank[t.to]);
      std::sort(interTokens.begin(), interTokens.end());
      arena.push_back(interTokens.size());
      arena.insert(arena.end(), interTokens.begin(), interTokens.end());
      markovTokens.clear();
      for (const auto& t : m.markovian(s))
        markovTokens.emplace_back(rank[t.to],
                                  std::bit_cast<std::uint64_t>(t.rate));
      std::sort(markovTokens.begin(), markovTokens.end());
      arena.push_back(markovTokens.size());
      for (const auto& [to, rate] : markovTokens) {
        arena.push_back(to);
        arena.push_back(rate);
      }
      offsets.push_back(arena.size());
    }
    auto stream = [&](StateId s) {
      return std::span<const std::uint64_t>(arena.data() + offsets[s],
                                            offsets[s + 1] - offsets[s]);
    };
    auto less = [&](StateId x, StateId y) {
      auto sx = stream(x), sy = stream(y);
      return std::lexicographical_compare(sx.begin(), sx.end(), sy.begin(),
                                          sy.end());
    };
    auto equal = [&](StateId x, StateId y) {
      auto sx = stream(x), sy = stream(y);
      return sx.size() == sy.size() &&
             std::equal(sx.begin(), sx.end(), sy.begin());
    };
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), less);
    std::uint32_t newRanks = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && !equal(order[i - 1], order[i])) ++newRanks;
      next[order[i]] = newRanks;
    }
    ++newRanks;
    if (newRanks == numRanks) break;  // converged short of singletons
    rank.swap(next);
    numRanks = newRanks;
  }

  if (complete) *complete = numRanks == n;
  if (numRanks != n) return m;  // ambiguous: keep the input numbering

  // Every rank is unique: renumber state s to rank[s] and emit each row in
  // canonical inner order.
  std::vector<StateId> stateOfRank(n);
  for (StateId s = 0; s < n; ++s) stateOfRank[rank[s]] = s;
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(n);
  inter.offsets.reserve(n + 1);
  markov.offsets.reserve(n + 1);
  inter.data.reserve(m.numInteractiveTransitions());
  markov.data.reserve(m.numMarkovianTransitions());
  for (std::uint32_t r = 0; r < n; ++r) {
    const StateId s = stateOfRank[r];
    inter.beginState();
    markov.beginState();
    labels[r] = m.labelMask(s);
    const std::size_t interBegin = inter.data.size();
    for (const auto& t : m.interactive(s))
      inter.data.push_back({t.action, rank[t.to]});
    std::sort(inter.data.begin() + static_cast<std::ptrdiff_t>(interBegin),
              inter.data.end(),
              [](const InteractiveTransition& x, const InteractiveTransition& y) {
                return x.action != y.action ? x.action < y.action : x.to < y.to;
              });
    const std::size_t markovBegin = markov.data.size();
    for (const auto& t : m.markovian(s))
      markov.data.push_back({t.rate, rank[t.to]});
    std::sort(markov.data.begin() + static_cast<std::ptrdiff_t>(markovBegin),
              markov.data.end(),
              [](const MarkovianTransition& x, const MarkovianTransition& y) {
                return x.to != y.to
                           ? x.to < y.to
                           : std::bit_cast<std::uint64_t>(x.rate) <
                                 std::bit_cast<std::uint64_t>(y.rate);
              });
  }
  inter.finish();
  markov.finish();
  return IOIMC(m.name(), m.symbols(), m.signature(), rank[m.initial()],
               std::move(inter), std::move(markov), std::move(labels),
               m.labelNames());
}

IOIMC makeLabelAbsorbing(const IOIMC& m, const std::string& label) {
  int idx = m.labelIndex(label);
  require(idx >= 0, "makeLabelAbsorbing: model has no label '" + label + "'");
  CsrInteractive inter;
  CsrMarkovian markov;
  std::vector<std::uint32_t> labels(m.numStates());
  inter.offsets.reserve(m.numStates() + 1);
  markov.offsets.reserve(m.numStates() + 1);
  for (StateId s = 0; s < m.numStates(); ++s) {
    inter.beginState();
    markov.beginState();
    labels[s] = m.labelMask(s);
    if (m.hasLabel(s, idx)) continue;  // drop all outgoing transitions
    auto it = m.interactive(s);
    inter.data.insert(inter.data.end(), it.begin(), it.end());
    auto mt = m.markovian(s);
    markov.data.insert(markov.data.end(), mt.begin(), mt.end());
  }
  inter.finish();
  markov.finish();
  IOIMC out(m.name(), m.symbols(), m.signature(), m.initial(),
            std::move(inter), std::move(markov), std::move(labels),
            m.labelNames());
  return restrictToReachable(out);
}

IOIMC collapseUnobservableSinks(const IOIMC& m) {
  const std::size_t n = m.numStates();
  const std::vector<ActionRole> roles = actionRoles(m);
  // A state is a "boundary" when its future can actually be observed.  The
  // criterion is *semantic*, not syntactic, so that every graph realization
  // of the same behavior collapses identically (the on-the-fly engine's
  // reduced graphs must collapse exactly like the classic full product):
  //  * an output transition is observable (urgent, locally controlled);
  //  * any transition that changes the label mask is observable — except a
  //    Markovian transition of a state with enabled internal transitions,
  //    which maximal progress keeps from ever firing;
  //  * an *input* transition is observable only when its target is — an
  //    environment that triggers it and then sees an unobservable same-mask
  //    future has learned nothing (co-inductive: badness of the target
  //    propagates to the edge owner through the backward closure below).
  std::vector<std::uint8_t> bad(n, 0);
  std::vector<std::vector<StateId>> predecessors(n);
  for (StateId s = 0; s < n; ++s) {
    bool hasTau = false;
    for (const auto& t : m.interactive(s))
      if (roles[t.action] == ActionRole::Internal) hasTau = true;
    for (const auto& t : m.interactive(s)) {
      predecessors[t.to].push_back(s);
      if (roles[t.action] == ActionRole::Output) bad[s] = 1;
      if (m.labelMask(t.to) != m.labelMask(s)) bad[s] = 1;
    }
    for (const auto& t : m.markovian(s)) {
      if (hasTau) continue;  // maximal progress: this rate can never fire,
                             // so it neither observes nor reaches anything
      predecessors[t.to].push_back(s);
      if (m.labelMask(t.to) != m.labelMask(s)) bad[s] = 1;
    }
  }
  // Backward closure: anything that can reach a boundary state stays.
  std::vector<StateId> frontier;
  for (StateId s = 0; s < n; ++s)
    if (bad[s]) frontier.push_back(s);
  while (!frontier.empty()) {
    StateId s = frontier.back();
    frontier.pop_back();
    for (StateId p : predecessors[s])
      if (!bad[p]) {
        bad[p] = 1;
        frontier.push_back(p);
      }
  }

  // One absorbing sink per label mask found among sinkable states.
  std::unordered_map<std::uint32_t, StateId> sinkOf;
  sinkOf.reserve(32);  // at most one sink per label-mask bit combination seen
  std::vector<StateId> remap(n);
  StateId next = 0;
  for (StateId s = 0; s < n; ++s)
    if (bad[s]) remap[s] = next++;
  for (StateId s = 0; s < n; ++s) {
    if (bad[s]) continue;
    auto [it, inserted] = sinkOf.try_emplace(m.labelMask(s), next);
    if (inserted) ++next;
    remap[s] = it->second;
  }

  std::vector<std::vector<InteractiveTransition>> inter(next);
  std::vector<std::vector<MarkovianTransition>> markov(next);
  std::vector<std::uint32_t> labels(next, 0);
  for (StateId s = 0; s < n; ++s) {
    labels[remap[s]] = m.labelMask(s);
    if (!bad[s]) continue;  // sinks are absorbing
    for (const auto& t : m.interactive(s))
      inter[remap[s]].push_back({t.action, remap[t.to]});
    for (const auto& t : m.markovian(s))
      markov[remap[s]].push_back({t.rate, remap[t.to]});
  }
  IOIMC out(m.name(), m.symbols(), m.signature(), remap[m.initial()],
            std::move(inter), std::move(markov), std::move(labels),
            m.labelNames());
  return restrictToReachable(out);
}

std::vector<ActionId> usedInputs(const std::vector<const IOIMC*>& others) {
  std::vector<ActionId> used;
  for (const IOIMC* m : others)
    used.insert(used.end(), m->signature().inputs().begin(),
                m->signature().inputs().end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace imcdft::ioimc
