#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ioimc/model.hpp"

/// \file format.hpp
/// The on-disk record format of the persistent quotient store: one
/// versioned, checksummed, self-describing record per file.
///
/// Layout (all integers little-endian):
///
///     offset  size  field
///     0       8     magic "IMCQSTR\x01"
///     8       4     format version (kFormatVersion)
///     12      4     record kind (RecordKind)
///     16      8     payload size in bytes
///     24      8     FNV-1a 64 checksum of the payload
///     32      -     payload
///
/// Every payload starts with the full cache key the record was stored
/// under.  File names are derived from a 64-bit hash of that key, so the
/// embedded key is what makes the store content-addressed rather than
/// merely hash-addressed: a loader verifies it and treats a mismatch (a
/// hash collision) as a miss, never as an answer.
///
/// Payloads:
///  * ModuleQuotient — key, steps saved, the concrete-name basis of the
///    shape (empty under exact keying), and the aggregated module I/O-IMC
///    (ioimc/serialize.hpp).
///  * Curve — key and the raw IEEE-754 solved values.
///  * TreeQuotient — key, the repairable flag, and the whole-tree closed
///    model; the loader re-derives the absorbed extraction (cheap: the
///    model is already aggregated).
///
/// Decoders never throw and never read out of bounds; any malformation
/// (bad magic, version mismatch, truncation, checksum mismatch, malformed
/// payload) yields nullopt plus a diagnostic message, which the Analyzer
/// surfaces as a soft Warning and answers by cold aggregation instead.

namespace imcdft::store {

inline constexpr char kMagic[8] = {'I', 'M', 'C', 'Q', 'S', 'T', 'R', '\x01'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 32;

enum class RecordKind : std::uint32_t {
  ModuleQuotient = 1,
  Curve = 2,
  TreeQuotient = 3,
};

/// FNV-1a 64 over a raw byte range (the payload checksum).
std::uint64_t fnv1aBytes(const char* data, std::size_t size);

struct ModuleRecord {
  std::string key;
  std::uint64_t steps = 0;
  std::vector<std::string> names;
  ioimc::IOIMC model;
};

struct CurveRecord {
  std::string key;
  std::vector<double> values;
};

struct TreeRecord {
  std::string key;
  bool repairable = false;
  ioimc::IOIMC model;
};

std::string encodeModuleRecord(const std::string& key,
                               const ioimc::IOIMC& model, std::uint64_t steps,
                               const std::vector<std::string>& names);
std::string encodeCurveRecord(const std::string& key,
                              const std::vector<double>& values);
std::string encodeTreeRecord(const std::string& key,
                             const ioimc::IOIMC& model, bool repairable);

/// Decode a whole record file.  \p error receives a human-readable reason
/// on failure; a key that parses fine but differs from \p key sets \p
/// error empty and returns nullopt (a silent collision miss).
std::optional<ModuleRecord> decodeModuleRecord(
    const char* data, std::size_t size, const std::string& key,
    const ioimc::SymbolTablePtr& symbols, std::string& error);
std::optional<CurveRecord> decodeCurveRecord(const char* data,
                                             std::size_t size,
                                             const std::string& key,
                                             std::string& error);
std::optional<TreeRecord> decodeTreeRecord(
    const char* data, std::size_t size, const std::string& key,
    const ioimc::SymbolTablePtr& symbols, std::string& error);

}  // namespace imcdft::store
