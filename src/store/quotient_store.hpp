#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ioimc/model.hpp"
#include "store/format.hpp"

/// \file quotient_store.hpp
/// The persistent, content-addressed quotient store: a directory of
/// checksummed record files (store/format.hpp) holding aggregated module
/// quotients, whole-tree quotients and solved curves, keyed by the same
/// canonical fingerprints the Analyzer's in-memory caches use
/// (dft::canonicalKey / dft::moduleKey / dft::moduleShape plus the engine
/// options).  A fleet of worker processes pointed at one directory shares
/// a single warm cache across restarts:
///
///  * loads go through mmap(2), so identical records read by many workers
///    occupy one set of page-cache pages;
///  * writes build the record in a temporary file and publish it with
///    rename(2), so readers only ever observe complete records and
///    concurrent writers of the same key are safe (last rename wins, and
///    both bodies are identical anyway — records are pure functions of
///    their key);
///  * a record that exists is never rewritten (content-addressing: same
///    key means same bytes), so steady-state serving does no write I/O.
///
/// Every failure mode is *soft*: a missing, truncated, corrupted,
/// version-mismatched or colliding record behaves as a cache miss.  Load
/// failures additionally queue a human-readable warning (drainWarnings())
/// which the Analyzer turns into a Warning diagnostic — never a wrong
/// answer, never an exception past open().
///
/// Instances are internally synchronized; one store may serve any number
/// of concurrent Analyzer sessions.

namespace imcdft::store {

class QuotientStore {
 public:
  /// Opens \p dir, creating it (and parents) when absent.  Throws Error
  /// only when the directory cannot be created or is not writable — after
  /// open() succeeds, no store condition throws.
  static std::shared_ptr<QuotientStore> open(const std::string& dir);

  struct LoadedModule {
    ioimc::IOIMC model;
    std::uint64_t steps = 0;
    std::vector<std::string> names;
  };
  struct LoadedTree {
    ioimc::IOIMC model;
    bool repairable = false;
  };

  std::optional<LoadedModule> loadModule(const std::string& key,
                                         const ioimc::SymbolTablePtr& symbols);
  std::optional<std::vector<double>> loadCurve(const std::string& key);
  std::optional<LoadedTree> loadTree(const std::string& key,
                                     const ioimc::SymbolTablePtr& symbols);

  /// Store a record; returns true when a new file was published, false
  /// when the record already existed (the common steady-state case) or the
  /// write failed (which queues a warning).
  bool storeModule(const std::string& key, const ioimc::IOIMC& model,
                   std::uint64_t steps, const std::vector<std::string>& names);
  bool storeCurve(const std::string& key, const std::vector<double>& values);
  bool storeTree(const std::string& key, const ioimc::IOIMC& model,
                 bool repairable);

  /// The file the record for \p key lives at (exposed for tests/tooling).
  std::string entryPath(const std::string& key, RecordKind kind) const;

  /// Load failures (not misses) observed so far.
  std::uint64_t loadErrors() const { return loadErrors_.load(); }

  /// Returns and clears the queued soft diagnostics.
  std::vector<std::string> drainWarnings();

  const std::string& directory() const { return dir_; }

  /// Deterministic I/O fault injection (tests and the serve-stress
  /// harness).  Each injected fault makes exactly one matching store
  /// operation misbehave — write faults hit the next publish, read faults
  /// the next record load — and is then consumed.  The store must treat
  /// every injected failure exactly like the real thing: a soft miss plus
  /// a queued warning, never an exception or a wrong answer.
  struct IoFault {
    enum class Kind {
      ShortWrite,   ///< publish writes only half the record, then "fails"
      WriteFails,   ///< the record write fails outright (as if ENOSPC)
      SyncFails,    ///< the pre-publish fsync reports an I/O error
      ShortRead,    ///< a load observes only the first half of the file
      CorruptRead,  ///< a load observes one flipped record byte
    };
    Kind kind = Kind::ShortWrite;
    /// Matching operations to let through unharmed before firing.
    int afterOps = 0;
  };
  void injectFault(IoFault fault);
  void clearFaults();

 private:
  explicit QuotientStore(std::string dir) : dir_(std::move(dir)) {}

  /// Maps the record file for (key, kind) and decodes it via \p decode;
  /// shared miss/error bookkeeping for the three load fronts.
  template <class Record, class Decode>
  std::optional<Record> loadRecord(const std::string& key, RecordKind kind,
                                   Decode&& decode);
  bool publish(const std::string& path, const std::string& bytes);
  void warn(std::string message);
  /// Consumes (and returns) the next armed fault matching a write (\p
  /// write true) or read operation, counting down afterOps first.
  std::optional<IoFault::Kind> takeFault(bool write);

  std::string dir_;
  std::mutex warningsMutex_;
  std::vector<std::string> warnings_;
  std::atomic<std::uint64_t> loadErrors_{0};
  std::mutex faultsMutex_;
  std::vector<IoFault> faults_;
};

}  // namespace imcdft::store
