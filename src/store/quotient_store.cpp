#include "store/quotient_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace imcdft::store {

namespace {

/// RAII read-only mapping of one record file.  A fleet of workers loading
/// the same record shares the page-cache pages behind these mappings.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) return;
    struct ::stat st{};
    if (::fstat(fd_, &st) != 0 || st.st_size < 0) return;
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
      empty_ = true;
      return;
    }
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd_, 0);
    if (p != MAP_FAILED) data_ = static_cast<const char*>(p);
  }
  ~MappedFile() {
    if (data_) ::munmap(const_cast<char*>(data_), size_);
    if (fd_ >= 0) ::close(fd_);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The file does not exist (a plain miss, not an error).
  bool absent() const { return fd_ < 0; }
  /// The file exists but could not be mapped or is empty (an error).
  bool unreadable() const { return fd_ >= 0 && !data_; }
  bool emptyFile() const { return empty_; }
  const char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  int fd_ = -1;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool empty_ = false;
};

char kindTag(RecordKind kind) {
  switch (kind) {
    case RecordKind::ModuleQuotient: return 'q';
    case RecordKind::Curve: return 'c';
    case RecordKind::TreeQuotient: return 't';
  }
  return 'x';
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Process-wide temp-file sequence.  Deliberately not per-instance: two
/// open handles on the same directory (one per Analyzer store entry, or a
/// test holding two) would otherwise both count 0, 1, 2, ... and clobber
/// each other's in-flight `.tmp-<pid>-<seq>` files — publishing one
/// writer's bytes under the other's key.
std::atomic<std::uint64_t> gTmpSeq{0};

}  // namespace

std::shared_ptr<QuotientStore> QuotientStore::open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw Error("quotient store: cannot create '" + dir +
                "': " + ec.message());
  if (!std::filesystem::is_directory(dir))
    throw Error("quotient store: '" + dir + "' is not a directory");
  // Probe writability up front so a read-only mount surfaces as one clear
  // error instead of a warning per record.
  const std::string probe =
      dir + "/.probe-" + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (!f)
    throw Error("quotient store: '" + dir + "' is not writable: " +
                std::strerror(errno));
  std::fclose(f);
  ::unlink(probe.c_str());
  return std::shared_ptr<QuotientStore>(new QuotientStore(dir));
}

std::string QuotientStore::entryPath(const std::string& key,
                                     RecordKind kind) const {
  return dir_ + "/" + kindTag(kind) +
         hex64(fnv1aBytes(key.data(), key.size())) + ".imcq";
}

template <class Record, class Decode>
std::optional<Record> QuotientStore::loadRecord(const std::string& key,
                                                RecordKind kind,
                                                Decode&& decode) {
  const std::string path = entryPath(key, kind);
  const char tag = kindTag(kind);
  obs::TraceSpan span("store.load", std::string_view(&tag, 1));
  MappedFile file(path);
  span.arg("bytes", file.size());
  if (file.absent()) {
    span.arg("hit", 0);
    return std::nullopt;
  }
  std::string error;
  std::optional<Record> record;
  if (file.emptyFile() || file.unreadable()) {
    error = file.emptyFile() ? "empty record file" : "cannot map record file";
  } else {
    const char* data = file.data();
    std::size_t size = file.size();
    std::string mutated;  // lifetime spans the decode below
    if (const std::optional<IoFault::Kind> fault = takeFault(/*write=*/false)) {
      if (*fault == IoFault::Kind::ShortRead) {
        size /= 2;
      } else {  // CorruptRead: one flipped bit mid-record
        mutated.assign(data, size);
        mutated[size / 2] = static_cast<char>(mutated[size / 2] ^ 0x40);
        data = mutated.data();
      }
    }
    record = decode(data, size, error);
  }
  if (!record && !error.empty()) {
    loadErrors_.fetch_add(1, std::memory_order_relaxed);
    warn("'" + path + "': " + error + " — recomputing");
  }
  span.arg("hit", record ? 1 : 0);
  return record;
}

std::optional<QuotientStore::LoadedModule> QuotientStore::loadModule(
    const std::string& key, const ioimc::SymbolTablePtr& symbols) {
  auto record = loadRecord<ModuleRecord>(
      key, RecordKind::ModuleQuotient,
      [&](const char* data, std::size_t size, std::string& error) {
        return decodeModuleRecord(data, size, key, symbols, error);
      });
  if (!record) return std::nullopt;
  return LoadedModule{std::move(record->model), record->steps,
                      std::move(record->names)};
}

std::optional<std::vector<double>> QuotientStore::loadCurve(
    const std::string& key) {
  auto record = loadRecord<CurveRecord>(
      key, RecordKind::Curve,
      [&](const char* data, std::size_t size, std::string& error) {
        return decodeCurveRecord(data, size, key, error);
      });
  if (!record) return std::nullopt;
  return std::move(record->values);
}

std::optional<QuotientStore::LoadedTree> QuotientStore::loadTree(
    const std::string& key, const ioimc::SymbolTablePtr& symbols) {
  auto record = loadRecord<TreeRecord>(
      key, RecordKind::TreeQuotient,
      [&](const char* data, std::size_t size, std::string& error) {
        return decodeTreeRecord(data, size, key, symbols, error);
      });
  if (!record) return std::nullopt;
  return LoadedTree{std::move(record->model), record->repairable};
}

bool QuotientStore::publish(const std::string& path,
                            const std::string& bytes) {
  obs::TraceSpan span("store.publish");
  span.arg("bytes", bytes.size());
  // Content-addressing makes rewrites pointless: an existing record for
  // this path already holds these bytes (or a colliding key's — which a
  // rewrite would clobber for no gain either way).
  if (std::filesystem::exists(path)) return false;
  const std::string tmp = dir_ + "/.tmp-" +
                          std::to_string(static_cast<long>(::getpid())) + "-" +
                          std::to_string(gTmpSeq.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    warn("cannot create '" + tmp + "': " + std::strerror(errno));
    return false;
  }
  const std::optional<IoFault::Kind> fault = takeFault(/*write=*/true);
  bool wrote;
  if (fault == IoFault::Kind::WriteFails) {
    errno = ENOSPC;
    wrote = false;
  } else if (fault == IoFault::Kind::ShortWrite) {
    // Leave exactly what a writer killed mid-record would: half the bytes
    // in the (never published) temp file.
    std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
    wrote = false;
  } else {
    wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  }
  // Durability before visibility: the record's bytes must be on stable
  // storage before rename() makes the path observable, or a crash could
  // publish a torn record — the one corruption the checksum-on-load story
  // is not meant to need.  An fsync failure poisons the attempt exactly
  // like a short write (the kernel may have dropped the dirty pages).
  bool synced = false;
  if (wrote) {
    synced = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    if (fault == IoFault::Kind::SyncFails) {
      errno = EIO;
      synced = false;
    }
  }
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed) {
    if (fault == IoFault::Kind::WriteFails)
      warn("cannot write '" + tmp + "': " + std::strerror(ENOSPC));
    else if (wrote && !synced)
      warn("cannot sync '" + tmp + "': " + std::strerror(errno));
    else
      warn("short write to '" + tmp + "'");
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    warn("cannot publish '" + path + "': " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable: fsync the containing directory so the
  // new directory entry survives a crash.  Soft — the record is already
  // readable either way; a failure here only weakens crash durability.
  const int dirFd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirFd >= 0) {
    ::fsync(dirFd);
    ::close(dirFd);
  }
  return true;
}

void QuotientStore::injectFault(IoFault fault) {
  std::lock_guard<std::mutex> lock(faultsMutex_);
  faults_.push_back(fault);
}

void QuotientStore::clearFaults() {
  std::lock_guard<std::mutex> lock(faultsMutex_);
  faults_.clear();
}

std::optional<QuotientStore::IoFault::Kind> QuotientStore::takeFault(
    bool write) {
  std::lock_guard<std::mutex> lock(faultsMutex_);
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    const bool matches = write == (it->kind == IoFault::Kind::ShortWrite ||
                                   it->kind == IoFault::Kind::WriteFails ||
                                   it->kind == IoFault::Kind::SyncFails);
    if (!matches) continue;
    if (it->afterOps > 0) {
      --it->afterOps;
      return std::nullopt;
    }
    const IoFault::Kind kind = it->kind;
    faults_.erase(it);
    return kind;
  }
  return std::nullopt;
}

bool QuotientStore::storeModule(const std::string& key,
                                const ioimc::IOIMC& model,
                                std::uint64_t steps,
                                const std::vector<std::string>& names) {
  const std::string path = entryPath(key, RecordKind::ModuleQuotient);
  if (std::filesystem::exists(path)) return false;
  return publish(path, encodeModuleRecord(key, model, steps, names));
}

bool QuotientStore::storeCurve(const std::string& key,
                               const std::vector<double>& values) {
  const std::string path = entryPath(key, RecordKind::Curve);
  if (std::filesystem::exists(path)) return false;
  return publish(path, encodeCurveRecord(key, values));
}

bool QuotientStore::storeTree(const std::string& key,
                              const ioimc::IOIMC& model, bool repairable) {
  const std::string path = entryPath(key, RecordKind::TreeQuotient);
  if (std::filesystem::exists(path)) return false;
  return publish(path, encodeTreeRecord(key, model, repairable));
}

std::vector<std::string> QuotientStore::drainWarnings() {
  std::lock_guard<std::mutex> lock(warningsMutex_);
  return std::exchange(warnings_, {});
}

void QuotientStore::warn(std::string message) {
  std::lock_guard<std::mutex> lock(warningsMutex_);
  // Bounded: a store full of corrupt files must not grow an unbounded
  // diagnostic queue inside a long-lived service.
  if (warnings_.size() < 64) warnings_.push_back(std::move(message));
}

}  // namespace imcdft::store
