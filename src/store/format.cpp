#include "store/format.hpp"

#include <cstring>

#include "ioimc/serialize.hpp"

namespace imcdft::store {

namespace {

using ioimc::ByteReader;
using ioimc::ByteWriter;

std::string finishRecord(RecordKind kind, std::string payload) {
  ByteWriter header;
  header.raw(kMagic, sizeof kMagic);
  header.u32(kFormatVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u64(payload.size());
  header.u64(fnv1aBytes(payload.data(), payload.size()));
  std::string record = header.take();
  record += payload;
  return record;
}

/// Validates the fixed header and hands back a reader positioned at the
/// payload.  Returns false with \p error set on any malformation.
bool openRecord(const char* data, std::size_t size, RecordKind expectedKind,
                std::optional<ByteReader>& payload, std::string& error) {
  if (size < kHeaderSize) {
    error = "truncated record (shorter than the fixed header)";
    return false;
  }
  if (std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    error = "not a quotient-store record (magic mismatch)";
    return false;
  }
  ByteReader header(data + sizeof kMagic, kHeaderSize - sizeof kMagic);
  const std::uint32_t version = header.u32();
  const std::uint32_t kind = header.u32();
  const std::uint64_t payloadSize = header.u64();
  const std::uint64_t checksum = header.u64();
  if (version != kFormatVersion) {
    error = "format version mismatch (file v" + std::to_string(version) +
            ", reader v" + std::to_string(kFormatVersion) + ")";
    return false;
  }
  if (kind != static_cast<std::uint32_t>(expectedKind)) {
    error = "record kind mismatch";
    return false;
  }
  if (payloadSize != size - kHeaderSize) {
    error = "truncated record (payload size disagrees with the file size)";
    return false;
  }
  if (checksum != fnv1aBytes(data + kHeaderSize, payloadSize)) {
    error = "checksum mismatch (corrupted payload)";
    return false;
  }
  payload.emplace(data + kHeaderSize, payloadSize);
  return true;
}

}  // namespace

std::uint64_t fnv1aBytes(const char* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::string encodeModuleRecord(const std::string& key,
                               const ioimc::IOIMC& model, std::uint64_t steps,
                               const std::vector<std::string>& names) {
  ByteWriter payload;
  payload.str(key);
  payload.u64(steps);
  payload.u32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) payload.str(name);
  ioimc::serializeModel(model, payload);
  return finishRecord(RecordKind::ModuleQuotient, payload.take());
}

std::string encodeCurveRecord(const std::string& key,
                              const std::vector<double>& values) {
  ByteWriter payload;
  payload.str(key);
  payload.u64(values.size());
  for (double v : values) payload.f64(v);
  return finishRecord(RecordKind::Curve, payload.take());
}

std::string encodeTreeRecord(const std::string& key, const ioimc::IOIMC& model,
                             bool repairable) {
  ByteWriter payload;
  payload.str(key);
  payload.u8(repairable ? 1 : 0);
  ioimc::serializeModel(model, payload);
  return finishRecord(RecordKind::TreeQuotient, payload.take());
}

std::optional<ModuleRecord> decodeModuleRecord(
    const char* data, std::size_t size, const std::string& key,
    const ioimc::SymbolTablePtr& symbols, std::string& error) {
  std::optional<ByteReader> in;
  if (!openRecord(data, size, RecordKind::ModuleQuotient, in, error))
    return std::nullopt;
  if (in->str() != key) {
    error.clear();  // hash collision: a miss, not a malformation
    return std::nullopt;
  }
  std::uint64_t steps = in->u64();
  std::uint32_t numNames = in->u32();
  if (numNames > in->remaining() / 4 + 1 || !in->ok()) {
    error = "malformed module record";
    return std::nullopt;
  }
  std::vector<std::string> names;
  names.reserve(numNames);
  for (std::uint32_t i = 0; i < numNames; ++i) names.push_back(in->str());
  std::optional<ioimc::IOIMC> model = ioimc::deserializeModel(*in, symbols);
  if (!model || in->remaining() != 0) {
    error = "malformed module record";
    return std::nullopt;
  }
  return ModuleRecord{key, steps, std::move(names), std::move(*model)};
}

std::optional<CurveRecord> decodeCurveRecord(const char* data,
                                             std::size_t size,
                                             const std::string& key,
                                             std::string& error) {
  std::optional<ByteReader> in;
  if (!openRecord(data, size, RecordKind::Curve, in, error))
    return std::nullopt;
  if (in->str() != key) {
    error.clear();
    return std::nullopt;
  }
  std::uint64_t n = in->u64();
  if (n > in->remaining() / 8 || !in->ok()) {
    error = "malformed curve record";
    return std::nullopt;
  }
  std::vector<double> values;
  values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) values.push_back(in->f64());
  if (!in->ok() || in->remaining() != 0) {
    error = "malformed curve record";
    return std::nullopt;
  }
  return CurveRecord{key, std::move(values)};
}

std::optional<TreeRecord> decodeTreeRecord(
    const char* data, std::size_t size, const std::string& key,
    const ioimc::SymbolTablePtr& symbols, std::string& error) {
  std::optional<ByteReader> in;
  if (!openRecord(data, size, RecordKind::TreeQuotient, in, error))
    return std::nullopt;
  if (in->str() != key) {
    error.clear();
    return std::nullopt;
  }
  const bool repairable = in->u8() != 0;
  std::optional<ioimc::IOIMC> model = ioimc::deserializeModel(*in, symbols);
  if (!model || in->remaining() != 0) {
    error = "malformed tree record";
    return std::nullopt;
  }
  return TreeRecord{key, repairable, std::move(*model)};
}

}  // namespace imcdft::store
