#include "ctmdp/ctmdp.hpp"

#include "common/error.hpp"

namespace imcdft::ctmdp {

void Ctmdp::validate() const {
  const std::size_t n = rates.size();
  require(n > 0, "Ctmdp: no states");
  require(choices.size() == n && goal.size() == n,
          "Ctmdp: inconsistent state arrays");
  require(initial < n, "Ctmdp: initial state out of range");
  for (StateId s = 0; s < n; ++s) {
    require(rates[s].empty() || choices[s].empty(),
            "Ctmdp: state has both Markovian and immediate behavior");
    for (const auto& t : rates[s]) {
      require(t.rate > 0.0, "Ctmdp: non-positive rate");
      require(t.to < n, "Ctmdp: transition target out of range");
    }
    for (StateId c : choices[s])
      require(c < n, "Ctmdp: choice target out of range");
    if (goal[s])
      require(rates[s].empty() && choices[s].empty(),
              "Ctmdp: goal states must be absorbing");
  }
  // Acyclicity of the vanishing graph via iterative DFS coloring.
  std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  for (StateId root = 0; root < n; ++root) {
    if (!isVanishing(root) || color[root] != 0) continue;
    std::vector<std::pair<StateId, std::size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      if (idx < choices[v].size()) {
        StateId w = choices[v][idx++];
        if (!isVanishing(w)) continue;
        require(color[w] != 1, "Ctmdp: cycle among vanishing states");
        if (color[w] == 0) {
          color[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
}

}  // namespace imcdft::ctmdp
