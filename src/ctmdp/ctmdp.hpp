#pragma once

#include <cstdint>
#include <vector>

/// \file ctmdp.hpp
/// Continuous-time Markov decision processes with *immediate* choice states.
///
/// When FDEP-induced simultaneity leaves inherent nondeterminism in a DFT
/// (Section 4.4 of the paper), the fully composed and aggregated I/O-IMC is
/// not a CTMC but a CTMDP.  In the models our pipeline produces, all
/// nondeterminism lives in *vanishing* states: states whose outgoing
/// transitions are internal and therefore take no time.  Tangible states
/// have purely Markovian behavior.  This matches the structure assumed
/// here: a state either has exponential `rates` or immediate `choices`.

namespace imcdft::ctmdp {

using StateId = std::uint32_t;

struct Transition {
  double rate;
  StateId to;
};

/// A CTMDP where nondeterminism is confined to vanishing states.
struct Ctmdp {
  StateId initial = 0;
  /// Exponential transitions of tangible states (empty for vanishing ones).
  std::vector<std::vector<Transition>> rates;
  /// Immediate successor choices of vanishing states (empty for tangible
  /// ones).  A state must not have both rates and choices.
  std::vector<std::vector<StateId>> choices;
  /// Goal indicator (e.g. "system down").  Goal states must be tangible and
  /// absorbing; use the analysis layer's goal-absorption first.
  std::vector<bool> goal;

  std::size_t numStates() const { return rates.size(); }
  bool isVanishing(StateId s) const { return !choices[s].empty(); }

  /// Structural checks; also verifies that the vanishing-choice graph is
  /// acyclic (our weak-bisimulation quotients guarantee this; a cycle would
  /// mean time-locked divergence).
  void validate() const;
};

}  // namespace imcdft::ctmdp
