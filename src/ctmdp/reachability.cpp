#include "ctmdp/reachability.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ctmc/fox_glynn.hpp"

namespace imcdft::ctmdp {

namespace {

/// Reverse-topological order of the vanishing states (successors first), so
/// one sweep resolves all immediate choices.
std::vector<StateId> vanishingOrder(const Ctmdp& mdp) {
  std::vector<StateId> order;
  std::vector<std::uint8_t> done(mdp.numStates(), 0);
  for (StateId root = 0; root < mdp.numStates(); ++root) {
    if (!mdp.isVanishing(root) || done[root]) continue;
    std::vector<std::pair<StateId, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      if (idx < mdp.choices[v].size()) {
        StateId w = mdp.choices[v][idx++];
        if (mdp.isVanishing(w) && !done[w]) {
          done[w] = 1;  // gray/black merged: graph is acyclic (validated)
          stack.emplace_back(w, 0);
        }
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
    done[root] = 1;
  }
  return order;
}

}  // namespace

double timeBoundedReachability(const Ctmdp& mdp, double t, bool maximize,
                               const ReachabilityOptions& opts) {
  mdp.validate();
  require(t >= 0.0, "timeBoundedReachability: negative time");
  const std::size_t n = mdp.numStates();
  const std::vector<StateId> vanishing = vanishingOrder(mdp);

  // Resolved value of a state: for vanishing states, the optimum over their
  // immediate choices of the current tangible values.
  std::vector<double> value(n, 0.0);
  auto resolveVanishing = [&]() {
    for (StateId v : vanishing) {
      double best = maximize ? 0.0 : 1.0;
      for (StateId c : mdp.choices[v])
        best = maximize ? std::max(best, value[c]) : std::min(best, value[c]);
      value[v] = best;
    }
  };

  for (StateId s = 0; s < n; ++s) value[s] = mdp.goal[s] ? 1.0 : 0.0;
  resolveVanishing();
  if (t == 0.0) return value[mdp.initial];

  double maxExit = 0.0;
  for (StateId s = 0; s < n; ++s) {
    double exit = 0.0;
    for (const auto& tr : mdp.rates[s]) exit += tr.rate;
    maxExit = std::max(maxExit, exit);
  }
  if (maxExit == 0.0) return value[mdp.initial];
  const double lambda = opts.uniformizationSlack * maxExit;
  ctmc::PoissonWeights pw = ctmc::poissonWeights(lambda * t, opts.epsilon);

  // Backward value iteration: q_k(s) = w_k * goal(s) + sum P(s,.) q~_{k+1}
  // where q~ resolves vanishing states.  Initialise with q_{N+1} = 0.
  std::vector<double> q(n, 0.0);
  for (StateId s = 0; s < n; ++s) value[s] = 0.0;
  for (std::size_t step = pw.left + pw.weights.size(); step-- > 0;) {
    const double w = step >= pw.left
                         ? pw.weights[step - pw.left] / pw.totalMass
                         : 0.0;
    resolveVanishing();
    for (StateId s = 0; s < n; ++s) {
      if (mdp.isVanishing(s)) continue;
      double acc = mdp.goal[s] ? w : 0.0;
      double exit = 0.0;
      for (const auto& tr : mdp.rates[s]) {
        acc += (tr.rate / lambda) * value[tr.to];
        exit += tr.rate;
      }
      // Goal states are absorbing: they accumulate the remaining Poisson
      // tail exactly through the uniformization self-loop term.
      acc += (1.0 - exit / lambda) * value[s];
      q[s] = acc;
    }
    for (StateId s = 0; s < n; ++s)
      if (!mdp.isVanishing(s)) value[s] = q[s];
  }
  resolveVanishing();
  return value[mdp.initial];
}

ReachabilityBounds reachabilityBounds(const Ctmdp& mdp, double t,
                                      const ReachabilityOptions& opts) {
  return {timeBoundedReachability(mdp, t, false, opts),
          timeBoundedReachability(mdp, t, true, opts)};
}

}  // namespace imcdft::ctmdp
