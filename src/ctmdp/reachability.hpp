#pragma once

#include "ctmdp/ctmdp.hpp"

/// \file reachability.hpp
/// Time-bounded reachability for uniformizable CTMDPs, in the style of
/// Baier, Hermanns, Katoen & Haverkort (Theor. Comput. Sci. 345(1), 2005),
/// which is the algorithm the paper points to for analysing the CTMDPs that
/// arise from nondeterministic DFTs.
///
/// The implementation uniformizes the tangible states and runs a backward
/// value iteration over the truncated Poisson terms; at every step the
/// vanishing states resolve their immediate choices by max (upper bound /
/// best-case adversary) or min (lower bound), in reverse topological order
/// of the (acyclic) vanishing graph.

namespace imcdft::ctmdp {

struct ReachabilityOptions {
  double epsilon = 1e-10;
  double uniformizationSlack = 1.02;
};

/// P(reach a goal state within time \p t), optimized over schedulers.
/// \p maximize selects the supremum (true) or infimum (false).
double timeBoundedReachability(const Ctmdp& mdp, double t, bool maximize,
                               const ReachabilityOptions& opts = {});

/// Both bounds at once: [min, max].
struct ReachabilityBounds {
  double lower = 0.0;
  double upper = 0.0;
};
ReachabilityBounds reachabilityBounds(const Ctmdp& mdp, double t,
                                      const ReachabilityOptions& opts = {});

}  // namespace imcdft::ctmdp
