#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/fox_glynn.hpp"
#include "ctmc/lumping.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"

namespace imcdft::ctmc {
namespace {

/// up --lambda--> down (absorbing, labelled).
Ctmc twoState(double lambda) {
  Ctmc c;
  c.initial = 0;
  c.rates = {{{lambda, 1}}, {}};
  c.labelMasks = {0, 1};
  c.labelNames = {"down"};
  return c;
}

TEST(FoxGlynn, PointMassAtZero) {
  PoissonWeights w = poissonWeights(0.0, 1e-10);
  EXPECT_EQ(w.left, 0u);
  ASSERT_EQ(w.weights.size(), 1u);
  EXPECT_DOUBLE_EQ(w.weights[0], 1.0);
}

TEST(FoxGlynn, MassSumsToOne) {
  for (double q : {0.1, 1.0, 7.3, 50.0, 400.0, 5000.0}) {
    PoissonWeights w = poissonWeights(q, 1e-12);
    EXPECT_NEAR(w.totalMass, 1.0, 1e-9) << "q=" << q;
    // Mode is covered.
    EXPECT_LE(w.left, static_cast<std::size_t>(q));
    EXPECT_GE(w.right(), static_cast<std::size_t>(q));
  }
}

TEST(FoxGlynn, MatchesDirectPmfForSmallQ) {
  const double q = 2.5;
  PoissonWeights w = poissonWeights(q, 1e-13);
  // P(N=2) = e^-q q^2/2.
  double expected = std::exp(-q) * q * q / 2.0;
  ASSERT_GE(w.right(), 2u);
  EXPECT_NEAR(w.weights[2 - w.left], expected, 1e-12);
}

TEST(FoxGlynn, RejectsBadArguments) {
  EXPECT_THROW(poissonWeights(-1.0, 1e-10), NumericalError);
  EXPECT_THROW(poissonWeights(1.0, 0.0), ModelError);
  EXPECT_THROW(poissonWeights(1.0, 2.0), ModelError);
}

TEST(Transient, TwoStateClosedForm) {
  const double lambda = 0.7;
  Ctmc c = twoState(lambda);
  for (double t : {0.0, 0.1, 1.0, 3.0}) {
    double p = probabilityOfLabelAt(c, "down", t);
    EXPECT_NEAR(p, 1.0 - std::exp(-lambda * t), 1e-9) << "t=" << t;
  }
}

TEST(Transient, ErlangClosedForm) {
  // Three sequential phases of rate 2: P(absorbed by t) = Erlang CDF.
  const double r = 2.0, t = 1.3;
  Ctmc c;
  c.initial = 0;
  c.rates = {{{r, 1}}, {{r, 2}}, {{r, 3}}, {}};
  c.labelMasks = {0, 0, 0, 1};
  c.labelNames = {"down"};
  double x = r * t;
  double expected = 1.0 - std::exp(-x) * (1.0 + x + x * x / 2.0);
  EXPECT_NEAR(probabilityOfLabelAt(c, "down", t), expected, 1e-9);
}

TEST(Transient, IndependentParallelFailures) {
  // Two independent exponential components, both must fail (AND):
  // P = (1-e^-at)(1-e^-bt).  4-state product chain.
  const double a = 1.0, b = 3.0, t = 0.8;
  Ctmc c;
  c.initial = 0;
  c.rates = {{{a, 1}, {b, 2}}, {{b, 3}}, {{a, 3}}, {}};
  c.labelMasks = {0, 0, 0, 1};
  c.labelNames = {"down"};
  double expected = (1 - std::exp(-a * t)) * (1 - std::exp(-b * t));
  EXPECT_NEAR(probabilityOfLabelAt(c, "down", t), expected, 1e-9);
}

TEST(Transient, SelfLoopsAreHarmless) {
  const double lambda = 0.7, t = 1.1;
  Ctmc c = twoState(lambda);
  c.rates[0].push_back({5.0, 0});  // exponential self-loop: no effect
  EXPECT_NEAR(probabilityOfLabelAt(c, "down", t),
              1.0 - std::exp(-lambda * t), 1e-9);
}

TEST(Transient, DistributionSumsToOne) {
  Ctmc c;
  c.initial = 0;
  c.rates = {{{1.0, 1}, {2.0, 2}}, {{0.5, 2}}, {{4.0, 0}}};
  c.labelMasks = {0, 0, 0};
  c.labelNames = {};
  auto pi = transientDistribution(c, 2.7);
  double sum = 0.0;
  for (double p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Transient, CurveIsMonotoneForAbsorbingTarget) {
  Ctmc c = twoState(1.0);
  auto curve = labelCurve(c, "down", {0.1, 0.5, 1.0, 2.0, 4.0});
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i], curve[i - 1]);
}

TEST(Transient, SharedSweepIsBitwiseIdenticalToPerPointRuns) {
  // The multi-time overload shares one uniformized power-vector sweep
  // across all points; per point it must reproduce the single-time call
  // bit for bit (same weights, same iterates, same accumulation order).
  Ctmc c;
  c.initial = 0;
  c.rates = {{{1.0, 1}, {2.0, 2}}, {{0.5, 2}, {0.25, 0}}, {{4.0, 0}}};
  c.labelMasks = {0, 1, 0};
  c.labelNames = {"down"};
  const std::vector<double> times{0.0, 3.7, 0.3, 1.0, 1.0, 0.05};
  std::vector<double> initial{1.0, 0.0, 0.0};
  auto shared = transientDistributions(c, initial, times);
  ASSERT_EQ(shared.size(), times.size());
  for (std::size_t j = 0; j < times.size(); ++j)
    EXPECT_EQ(shared[j], transientDistribution(c, initial, times[j]))
        << "t=" << times[j];
  auto curve = labelCurve(c, "down", times);
  for (std::size_t j = 0; j < times.size(); ++j)
    EXPECT_EQ(curve[j], probabilityOfLabelAt(c, "down", times[j]));
}

TEST(Transient, SharedSweepOnRatelessChain) {
  Ctmc c;
  c.initial = 0;
  c.rates = {{}, {}};
  c.labelMasks = {0, 1};
  c.labelNames = {"down"};
  auto curve = labelCurve(c, "down", {0.0, 1.0, 5.0});
  EXPECT_EQ(curve, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(Transient, LargeUniformizationParameter) {
  // Fast rates with long horizon exercise the log-space Poisson weights.
  Ctmc c = twoState(200.0);
  EXPECT_NEAR(probabilityOfLabelAt(c, "down", 5.0), 1.0, 1e-9);
}

TEST(SteadyState, BirthDeathClosedForm) {
  // up <-> down with rates lambda, mu: pi(down) = lambda/(lambda+mu).
  const double lambda = 0.4, mu = 1.6;
  Ctmc c;
  c.initial = 0;
  c.rates = {{{lambda, 1}}, {{mu, 0}}};
  c.labelMasks = {0, 1};
  c.labelNames = {"down"};
  EXPECT_NEAR(steadyStateLabelProbability(c, "down"),
              lambda / (lambda + mu), 1e-8);
}

TEST(SteadyState, AbsorbingChainEndsAbsorbed) {
  Ctmc c = twoState(3.0);
  EXPECT_NEAR(steadyStateLabelProbability(c, "down"), 1.0, 1e-8);
}

TEST(Lumping, MergesSymmetricBranches) {
  // Two interchangeable middle states.
  Ctmc c;
  c.initial = 0;
  c.rates = {{{1.0, 1}, {1.0, 2}}, {{2.0, 3}}, {{2.0, 3}}, {}};
  c.labelMasks = {0, 0, 0, 1};
  c.labelNames = {"down"};
  LumpResult r = lump(c);
  EXPECT_EQ(r.quotient.numStates(), 3u);
  EXPECT_EQ(r.classOf[1], r.classOf[2]);
}

TEST(Lumping, PreservesTransientProbability) {
  Ctmc c;
  c.initial = 0;
  c.rates = {{{1.0, 1}, {1.0, 2}}, {{2.0, 3}}, {{2.0, 3}}, {}};
  c.labelMasks = {0, 0, 0, 1};
  c.labelNames = {"down"};
  LumpResult r = lump(c);
  for (double t : {0.3, 1.0, 2.5})
    EXPECT_NEAR(probabilityOfLabelAt(c, "down", t),
                probabilityOfLabelAt(r.quotient, "down", t), 1e-10);
}

TEST(Lumping, RespectsLabels) {
  Ctmc c;
  c.initial = 0;
  c.rates = {{{1.0, 1}, {1.0, 2}}, {}, {}};
  c.labelMasks = {0, 1, 0};
  c.labelNames = {"down"};
  LumpResult r = lump(c);
  EXPECT_EQ(r.quotient.numStates(), 3u);  // absorbing states differ by label
}

TEST(Validation, CatchesBrokenChains) {
  Ctmc c;
  c.initial = 5;
  c.rates = {{}};
  c.labelMasks = {0};
  EXPECT_THROW(c.validate(), ModelError);
  c.initial = 0;
  c.rates = {{{-1.0, 0}}};
  EXPECT_THROW(c.validate(), ModelError);
  c.rates = {{{1.0, 7}}};
  EXPECT_THROW(c.validate(), ModelError);
}

}  // namespace
}  // namespace imcdft::ctmc
