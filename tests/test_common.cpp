#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/symbol_table.hpp"
#include "common/text.hpp"

namespace imcdft {
namespace {

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.intern("f_A");
  SymbolId b = table.intern("f_B");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, table.intern("f_A"));
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTable, NameRoundTrips) {
  SymbolTable table;
  SymbolId a = table.intern("hello");
  EXPECT_EQ(table.name(a), "hello");
}

TEST(SymbolTable, FindUnknownReturnsNpos) {
  SymbolTable table;
  EXPECT_EQ(table.find("nope"), SymbolTable::npos);
  table.intern("yes");
  EXPECT_NE(table.find("yes"), SymbolTable::npos);
}

TEST(SymbolTable, NameOutOfRangeThrows) {
  SymbolTable table;
  EXPECT_THROW(table.name(0), ModelError);
}

TEST(Require, ThrowsOnFalse) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), ModelError);
}

TEST(ParseErrorTest, CarriesLine) {
  ParseError e("bad", 42);
  EXPECT_EQ(e.line(), 42);
  EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Text, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
}

TEST(Text, FormatSig) {
  EXPECT_EQ(formatSig(0.65791234, 4), "0.6579");
}

}  // namespace
}  // namespace imcdft
