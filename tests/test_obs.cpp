#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/cancel.hpp"
#include "dft/corpus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// \file test_obs.cpp
/// The observability layer's contract: metrics registry semantics
/// (ObsMetrics) and trace well-formedness under real concurrency
/// (ConcurrentTraceObs — the suite name puts it in the TSan CI filter).
/// The well-formedness invariants are the ones scripts/check_trace.py
/// enforces on exported files: balanced begin/end per thread, monotonic
/// per-thread timestamps, laminar (properly nested) span families — plus
/// the bitwise on-vs-off measure identity the dead-branch design promises.

namespace imcdft {
namespace {

using analysis::AnalysisReport;
using analysis::AnalysisRequest;
using analysis::Analyzer;
using analysis::MeasureSpec;

/// Every trace test leaves the process with tracing off and the rings
/// drained, so suites can run in any order.
struct TraceGuard {
  TraceGuard() {
    obs::clearTrace();
    obs::setTraceEnabled(true);
  }
  ~TraceGuard() {
    obs::setTraceEnabled(false);
    obs::clearTrace();
  }
};

std::vector<double> unreliabilityValues(const AnalysisReport& report) {
  std::vector<double> out;
  for (const analysis::MeasureResult& m : report.measures) {
    EXPECT_TRUE(m.ok) << m.error;
    out.insert(out.end(), m.values.begin(), m.values.end());
  }
  return out;
}

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& c = reg.counter("test.obs.counter");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name, same object: hot paths may cache the reference.
  EXPECT_EQ(&c, &reg.counter("test.obs.counter"));

  obs::Gauge& g = reg.gauge("test.obs.gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 7u);
  g.atLeast(3);  // lower than current: no change
  EXPECT_EQ(g.value(), 7u);
  g.atLeast(19);
  EXPECT_EQ(g.value(), 19u);
}

TEST(ObsMetrics, HistogramExactBelowSixteen) {
  obs::Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.minValue(), 0u);
  EXPECT_EQ(h.maxValue(), 15u);
  // Small values land in exact unit buckets, so quantiles are exact.
  EXPECT_EQ(h.quantile(0.5), 7.0);
  EXPECT_EQ(h.quantile(1.0), 15.0);
}

TEST(ObsMetrics, HistogramQuantilesWithinBucketError) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 100'000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100'000u);
  // Log-linear buckets with 16 sub-buckets per octave: any quantile is
  // within one sub-bucket width, i.e. ~1/16 relative error.
  EXPECT_NEAR(h.quantile(0.5), 50'000.0, 50'000.0 / 8.0);
  EXPECT_NEAR(h.quantile(0.95), 95'000.0, 95'000.0 / 8.0);
  // Quantiles never leave the observed range.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100'000.0);
  EXPECT_NEAR(h.mean(), 50'000.5, 1.0);
}

TEST(ObsMetrics, WriteJsonIsFiniteAndContainsRegisteredNames) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("test.obs.json_counter").add(3);
  reg.gauge("test.obs.json_gauge").set(11);
  obs::Histogram& h = reg.histogram("test.obs.json_histogram");
  h.record(1);
  h.record(1'000'000);

  std::ostringstream out;
  reg.writeJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], '}');
  EXPECT_NE(json.find("\"test.obs.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_histogram\""), std::string::npos);
  // Every emitted number must be finite JSON: no NaN/Inf spellings.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

/// Replays the export expansion at the record level and asserts the three
/// invariants: begin/end balance (implied by complete records), monotonic
/// per-thread timestamps in sequence order, and laminarity (two spans on
/// one thread either nest or are disjoint — never partially overlap).
void expectWellFormed(const obs::TraceSnapshot& snap) {
  std::map<std::uint32_t, std::vector<const obs::TraceRecord*>> byTid;
  for (const obs::TraceRecord& rec : snap.records) {
    EXPECT_LE(rec.beginSeq, rec.endSeq);
    if (rec.instant) EXPECT_EQ(rec.beginSeq, rec.endSeq);
    EXPECT_LE(rec.args.size(), obs::kMaxTraceArgs);
    byTid[rec.tid].push_back(&rec);
  }
  for (const auto& [tid, recs] : byTid) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> events;
    for (const obs::TraceRecord* r : recs) {
      events.emplace_back(r->beginSeq, r->beginNanos);
      if (!r->instant)
        events.emplace_back(r->endSeq, r->beginNanos + r->durNanos);
    }
    std::sort(events.begin(), events.end());
    for (std::size_t i = 0; i + 1 < events.size(); ++i) {
      EXPECT_LT(events[i].first, events[i + 1].first)
          << "duplicate sequence number on tid " << tid;
      EXPECT_LE(events[i].second, events[i + 1].second)
          << "non-monotonic timestamps on tid " << tid;
    }
    for (std::size_t i = 0; i < recs.size(); ++i)
      for (std::size_t j = i + 1; j < recs.size(); ++j) {
        const auto& a = *recs[i];
        const auto& b = *recs[j];
        const bool disjoint =
            a.endSeq < b.beginSeq || b.endSeq < a.beginSeq;
        const bool aInB = b.beginSeq < a.beginSeq && a.endSeq < b.endSeq;
        const bool bInA = a.beginSeq < b.beginSeq && b.endSeq < a.endSeq;
        EXPECT_TRUE(disjoint || aInB || bInA)
            << "partially overlapping spans '" << a.name << "' and '"
            << b.name << "' on tid " << tid;
      }
  }
}

TEST(ConcurrentTraceObs, WellFormedAfterConcurrentBatch) {
  TraceGuard guard;
  Analyzer session;
  const std::vector<std::string> models = {
      dft::corpus::galileoCas(), dft::corpus::galileoCps(),
      dft::corpus::galileoHecs(), dft::corpus::galileoCas()};

  std::vector<std::thread> pool;
  for (std::size_t i = 0; i < models.size(); ++i)
    pool.emplace_back([&session, &models, i] {
      AnalysisRequest request =
          AnalysisRequest::forGalileo(models[i],
                                      "m" + std::to_string(i))
              .withRequestId(i + 1)
              .measure(MeasureSpec::unreliability({1.0}));
      const AnalysisReport report = session.analyze(request);
      EXPECT_EQ(report.requestId, i + 1);
    });
  for (std::thread& t : pool) t.join();

  const obs::TraceSnapshot snap = obs::snapshotTrace();
  EXPECT_FALSE(snap.records.empty());
  expectWellFormed(snap);

  // Every span lands in one of the four request groups (context 0 would
  // mean a worker lost its submitting request's context).
  std::size_t requestSpans = 0;
  for (const obs::TraceRecord& rec : snap.records) {
    EXPECT_GE(rec.ctx, 1u);
    EXPECT_LE(rec.ctx, models.size());
    if (std::strcmp(rec.name, "request") == 0) ++requestSpans;
  }
  EXPECT_EQ(requestSpans, models.size());

  // The exported JSON balances its begin/end events.
  std::ostringstream out;
  const obs::TraceWriteStats stats = obs::writeChromeTrace(out);
  EXPECT_GT(stats.spans, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  const std::string json = out.str();
  auto countOf = [&json](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(countOf("\"ph\":\"B\""), countOf("\"ph\":\"E\""));
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(ConcurrentTraceObs, RingOverflowStaysWellFormed) {
  obs::clearTrace();
  obs::setTraceCapacity(8);
  obs::setTraceEnabled(true);
  // A fresh thread gets the tiny ring; nested spans overflow it hard.
  std::thread t([] {
    for (int i = 0; i < 50; ++i) {
      obs::TraceSpan outer("outer");
      obs::TraceSpan inner("inner");
      obs::traceInstant("tick");
    }
  });
  t.join();
  obs::setTraceEnabled(false);
  const obs::TraceSnapshot snap = obs::snapshotTrace();
  obs::setTraceCapacity(8192);
  obs::clearTrace();
  EXPECT_GT(snap.dropped, 0u);
  EXPECT_FALSE(snap.records.empty());
  expectWellFormed(snap);
}

TEST(ConcurrentTraceObs, MeasuresBitwiseIdenticalOnVsOff) {
  const std::vector<std::string> models = {dft::corpus::galileoCas(),
                                           dft::corpus::galileoCps(),
                                           dft::corpus::galileoHecs()};
  const std::vector<double> times = {0.5, 1.0, 2.0};
  for (const std::string& text : models) {
    obs::setTraceEnabled(false);
    Analyzer coldSession;
    AnalysisRequest request = AnalysisRequest::forGalileo(text).measure(
        MeasureSpec::unreliability(times));
    const std::vector<double> off =
        unreliabilityValues(coldSession.analyze(request));

    std::vector<double> on;
    {
      TraceGuard guard;
      Analyzer tracedSession;
      on = unreliabilityValues(tracedSession.analyze(request));
    }
    ASSERT_EQ(off.size(), on.size());
    // Bitwise, not approximate: tracing must be a pure observer.
    EXPECT_EQ(std::memcmp(off.data(), on.data(),
                          off.size() * sizeof(double)),
              0);
  }
}

TEST(ConcurrentTraceObs, BudgetTripEmitsInstantEvent) {
  TraceGuard guard;
  Analyzer session;
  AnalysisRequest request =
      AnalysisRequest::forGalileo(dft::corpus::galileoCps(), "tiny-budget")
          .withRequestId(77)
          .measure(MeasureSpec::unreliability({1.0}));
  request.budget.maxLiveStates = 2;
  EXPECT_THROW(session.analyze(request), BudgetExceeded);

  const obs::TraceSnapshot snap = obs::snapshotTrace();
  bool sawTrip = false;
  for (const obs::TraceRecord& rec : snap.records)
    if (std::strcmp(rec.name, "budget-trip") == 0) {
      sawTrip = true;
      EXPECT_TRUE(rec.instant);
      EXPECT_EQ(rec.ctx, 77u);
      bool sawLiveStates = false;
      for (const obs::TraceArg& a : rec.args)
        if (std::strcmp(a.key, "live_states") == 0) sawLiveStates = true;
      EXPECT_TRUE(sawLiveStates);
    }
  EXPECT_TRUE(sawTrip);
  expectWellFormed(snap);
}

}  // namespace
}  // namespace imcdft
