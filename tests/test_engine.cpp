#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/converter.hpp"
#include "analysis/engine.hpp"
#include "common/error.hpp"
#include "dft/builder.hpp"
#include "dft/corpus.hpp"

namespace imcdft::analysis {
namespace {

EngineResult run(const dft::Dft& d, EngineOptions opts = {}) {
  return composeCommunity(convertDft(d), d, opts);
}

TEST(Engine, ResultIsClosedAndFullyHidden) {
  EngineResult r = run(dft::corpus::cps());
  EXPECT_TRUE(r.model.isClosed());
  for (ioimc::StateId s = 0; s < r.model.numStates(); ++s)
    for (const auto& t : r.model.interactive(s))
      EXPECT_TRUE(r.model.signature().isInternal(t.action));
}

TEST(Engine, OneStepPerCompositionPair) {
  dft::Dft d = dft::corpus::cps();
  // Without symmetry reuse, N community members fold in exactly N-1
  // pairwise compositions; the symmetry reduction skips the compositions
  // of reused sibling modules (see test_symmetry.cpp for its invariants).
  EngineOptions plain;
  plain.symmetry = false;
  EngineResult r = run(d, plain);
  Community c = convertDft(d);
  EXPECT_EQ(r.stats.steps.size(), c.models.size() - 1);
  EngineResult reduced = run(d);
  EXPECT_LT(reduced.stats.steps.size(), r.stats.steps.size());
}

TEST(Engine, ModularStrategyRecordsPaperModules) {
  EngineResult r = run(dft::corpus::cps());
  auto hasModule = [&](const std::string& name) {
    return std::any_of(r.stats.modules.begin(), r.stats.modules.end(),
                       [&](const ModuleResult& m) { return m.name == name; });
  };
  EXPECT_TRUE(hasModule("A"));
  EXPECT_TRUE(hasModule("B"));
  EXPECT_TRUE(hasModule("C"));
  EXPECT_TRUE(hasModule("D"));
  EXPECT_TRUE(hasModule("System"));
}

TEST(Engine, CpsModulesAggregateToTheFigure9Chain) {
  EngineResult r = run(dft::corpus::cps());
  for (const ModuleResult& m : r.stats.modules) {
    if (m.name == "A" || m.name == "C" || m.name == "D") {
      // 4 counting states + firing + fired = 6 (Fig. 9).
      EXPECT_EQ(m.states, 6u) << m.name;
      EXPECT_EQ(m.transitions, 5u) << m.name;
    }
  }
}

TEST(Engine, GreedyAndDeclarationSkipModuleBookkeeping) {
  EngineOptions greedy;
  greedy.strategy = CompositionStrategy::Greedy;
  EngineResult r = run(dft::corpus::cps(), greedy);
  EXPECT_TRUE(r.stats.modules.empty());
  EXPECT_GT(r.stats.steps.size(), 0u);
}

TEST(Engine, PeaksAreConsistent) {
  EngineResult r = run(dft::corpus::cas());
  std::size_t maxComposed = 0, maxAggregated = 0;
  for (const CompositionStep& s : r.stats.steps) {
    maxComposed = std::max(maxComposed, s.composedStates);
    maxAggregated = std::max(maxAggregated, s.aggregatedStates);
  }
  EXPECT_EQ(r.stats.peakComposedStates, maxComposed);
  EXPECT_EQ(r.stats.peakAggregatedStates, maxAggregated);
  EXPECT_LE(maxAggregated, maxComposed);
}

TEST(Engine, DisablingSinkCollapseGrowsModules) {
  EngineOptions withCollapse;
  EngineOptions withoutCollapse;
  withoutCollapse.collapseSinks = false;
  EngineResult small = run(dft::corpus::cas(), withCollapse);
  EngineResult big = run(dft::corpus::cas(), withoutCollapse);
  EXPECT_LT(small.model.numStates(), big.model.numStates());
}

TEST(Engine, AggregationOffBlowsUpIntermediateSizes) {
  EngineOptions raw;
  raw.aggregateEachStep = false;
  raw.collapseSinks = false;
  dft::Dft d = dft::corpus::cascadedPands(2, 3);
  EngineResult aggregated = run(d);
  EngineResult unaggregated = run(d, raw);
  EXPECT_LT(aggregated.stats.peakComposedStates,
            unaggregated.stats.peakComposedStates);
}

TEST(Engine, DeclarationOrderFoldsLeftToRight) {
  EngineOptions decl;
  decl.strategy = CompositionStrategy::Declaration;
  dft::Dft d = dft::DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .andGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  EngineResult r = run(d, decl);
  ASSERT_EQ(r.stats.steps.size(), 3u);  // 4 models: BEs, gate, monitor
  EXPECT_NE(r.stats.steps[0].name.find("BE_A"), std::string::npos);
}

TEST(Engine, CpsPeakIsInThePaperBallpark) {
  // Paper: biggest generated I/O-IMC 156 states / 490 transitions.  With
  // the sink collapse ours is slightly smaller; it must stay well under
  // the monolithic 4113 while being clearly nontrivial.
  EngineResult r = run(dft::corpus::cps());
  EXPECT_GT(r.stats.peakComposedStates, 30u);
  EXPECT_LT(r.stats.peakComposedStates, 400u);
}

TEST(Engine, EmptyCommunityIsRejected) {
  dft::Dft d = dft::corpus::cps();
  Community c = convertDft(d);
  c.models.clear();
  EXPECT_THROW(composeCommunity(std::move(c), d, {}), ModelError);
}

}  // namespace
}  // namespace imcdft::analysis
