#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/measures.hpp"
#include "dft/builder.hpp"
#include "dft/corpus.hpp"
#include "dft/galileo.hpp"

namespace imcdft::analysis {
namespace {

using dft::DftBuilder;

/// CAS variant with the cross-switch failure rate perturbed: only the CPU
/// unit changes, the motor and pump units stay byte-identical.
std::string perturbedCas(double csLambda) {
  std::string text = dft::corpus::galileoCas();
  const std::string needle = "\"CS\" lambda=0.2;";
  auto pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(),
               "\"CS\" lambda=" + std::to_string(csLambda) + ";");
  return text;
}

TEST(Analyzer, RepeatedRequestIsAPureLookup) {
  Analyzer session;
  AnalysisRequest req = AnalysisRequest::forDft(dft::corpus::cas(), "cas")
                            .measure(MeasureSpec::unreliability({1.0}));
  AnalysisReport first = session.analyze(req);
  AnalysisReport second = session.analyze(req);

  EXPECT_FALSE(first.fromCache);
  EXPECT_EQ(first.cache.treeMisses, 1u);
  EXPECT_TRUE(second.fromCache);
  EXPECT_EQ(second.cache.treeHits, 1u);
  EXPECT_EQ(second.cache.stepsRun, 0u);
  // The underlying pipeline result is literally shared.
  EXPECT_EQ(first.analysis.get(), second.analysis.get());
  ASSERT_EQ(second.measures.size(), 1u);
  EXPECT_TRUE(second.measures[0].ok);
  EXPECT_NEAR(second.measures[0].values.at(0), first.measures[0].values.at(0),
              0.0);
  EXPECT_NEAR(first.measures[0].values.at(0), 0.6579, 1e-3);
}

TEST(Analyzer, VariantsShareModulesAcrossTheSession) {
  Analyzer session;
  // Composition path pinned: this test guards the aggregated-module
  // I/O-IMC splice cache (the numeric path has its own chain/curve caches,
  // covered in test_static_combine.cpp).
  AnalysisOptions viaComposition;
  viaComposition.engine.staticCombine = false;
  AnalysisReport base = session.analyze(
      AnalysisRequest::forGalileo(dft::corpus::galileoCas(), "base")
          .withOptions(viaComposition)
          .measure(MeasureSpec::unreliability({1.0})));
  AnalysisReport variant = session.analyze(
      AnalysisRequest::forGalileo(perturbedCas(0.4), "cs=0.4")
          .withOptions(viaComposition)
          .measure(MeasureSpec::unreliability({1.0})));

  EXPECT_NE(base.treeHash, variant.treeHash);
  EXPECT_FALSE(variant.fromCache);
  // The motor and pump units are unchanged, so the variant splices them
  // from the session cache and composes strictly less than a cold run.
  EXPECT_GE(variant.cache.moduleHits, 2u);
  EXPECT_GT(variant.cache.stepsSaved, 0u);
  EXPECT_LT(variant.cache.stepsRun, base.cache.stepsRun);
  EXPECT_EQ(variant.stats().cachedModules, variant.cache.moduleHits);

  // And the numbers are identical to a cold, uncached analysis.
  DftAnalysis cold = analyzeDft(dft::parseGalileo(perturbedCas(0.4)));
  EXPECT_NEAR(variant.measures[0].values.at(0), unreliability(cold, 1.0),
              1e-12);
}

TEST(Analyzer, BatchMatchesSequentialColdRuns) {
  const std::vector<double> grid{0.5, 1.0, 2.0};
  // Composition path pinned, as in VariantsShareModulesAcrossTheSession:
  // the cold analyzeDft reference below runs the composition pipeline, and
  // the numeric path only agrees with it up to transient tolerances.
  AnalysisOptions viaComposition;
  viaComposition.engine.staticCombine = false;
  std::vector<AnalysisRequest> requests;
  std::vector<double> lambdas{0.2, 0.3, 0.45, 0.7};
  for (double l : lambdas)
    requests.push_back(
        AnalysisRequest::forGalileo(perturbedCas(l), "cs=" + std::to_string(l))
            .withOptions(viaComposition)
            .measure(MeasureSpec::unreliability(grid)));

  Analyzer session;
  std::vector<AnalysisReport> batch = session.analyzeBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());

  std::size_t batchSteps = 0, coldSteps = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch[i].label, requests[i].label);
    batchSteps += batch[i].cache.stepsRun;
    DftAnalysis cold = analyzeDft(dft::parseGalileo(perturbedCas(lambdas[i])));
    coldSteps += cold.stats.steps.size();
    ASSERT_EQ(batch[i].measures.size(), 1u);
    for (std::size_t k = 0; k < grid.size(); ++k)
      EXPECT_NEAR(batch[i].measures[0].values.at(k),
                  unreliability(cold, grid[k]), 1e-12)
          << requests[i].label;
  }
  EXPECT_LT(batchSteps, coldSteps);
  EXPECT_EQ(session.cacheStats().stepsRun, batchSteps);
  EXPECT_GT(session.cacheStats().moduleHits, 0u);
}

TEST(Analyzer, NondeterministicModelYieldsBoundsAndWarning) {
  Analyzer session;
  AnalysisReport report = session.analyze(
      AnalysisRequest::forDft(dft::corpus::figure6a(), "fig6a")
          .measure(MeasureSpec::unreliability({1.0})));

  EXPECT_TRUE(report.nondeterministic());
  ASSERT_EQ(report.measures.size(), 1u);
  const MeasureResult& m = report.measures[0];
  EXPECT_TRUE(m.ok);
  EXPECT_TRUE(m.boundsSubstituted);
  ASSERT_EQ(m.bounds.size(), 1u);
  EXPECT_LE(m.bounds[0].lower, m.bounds[0].upper);
  bool warned = false;
  for (const Diagnostic& d : report.diagnostics)
    if (d.severity == Severity::Warning &&
        d.message.find("nondeterministic") != std::string::npos)
      warned = true;
  EXPECT_TRUE(warned);

  // The substituted bounds agree with the explicit bounds measure.
  AnalysisReport explicitBounds = session.analyze(
      AnalysisRequest::forDft(dft::corpus::figure6a())
          .measure(MeasureSpec::unreliabilityBounds({1.0})));
  EXPECT_TRUE(explicitBounds.fromCache);
  EXPECT_NEAR(m.bounds[0].lower,
              explicitBounds.measures[0].bounds.at(0).lower, 1e-12);
  EXPECT_NEAR(m.bounds[0].upper,
              explicitBounds.measures[0].bounds.at(0).upper, 1e-12);
}

TEST(Analyzer, CurveEqualsPerPointUnreliability) {
  const std::vector<double> grid{0.25, 0.5, 1.0, 2.0, 4.0};
  Analyzer session;
  AnalysisReport report =
      session.analyze(AnalysisRequest::forDft(dft::corpus::cps())
                          .measure(MeasureSpec::unreliability(grid)));
  ASSERT_EQ(report.measures[0].values.size(), grid.size());

  DftAnalysis old = analyzeDft(dft::corpus::cps());
  std::vector<double> curve = unreliabilityCurve(old, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(curve[i], unreliability(old, grid[i]), 1e-15);
    EXPECT_NEAR(report.measures[0].values[i], curve[i], 1e-12);
  }
}

TEST(Analyzer, MttfMatchesClosedForms) {
  Analyzer session;
  // Single exponential: MTTF = 1/lambda.
  dft::Dft be = DftBuilder()
                    .basicEvent("A", 0.7)
                    .orGate("Top", {"A"})
                    .top("Top")
                    .build();
  AnalysisReport r1 = session.analyze(
      AnalysisRequest::forDft(be).measure(MeasureSpec::mttf()));
  ASSERT_TRUE(r1.measures[0].ok);
  EXPECT_NEAR(r1.measures[0].values.at(0), 1.0 / 0.7, 1e-9);

  // AND of Exp(1), Exp(3): E[max] = 1 + 1/3 - 1/4.
  dft::Dft both = DftBuilder()
                      .basicEvent("A", 1.0)
                      .basicEvent("B", 3.0)
                      .andGate("Top", {"A", "B"})
                      .top("Top")
                      .build();
  AnalysisReport r2 = session.analyze(
      AnalysisRequest::forDft(both).measure(MeasureSpec::mttf()));
  EXPECT_NEAR(r2.measures[0].values.at(0), 1.0 + 1.0 / 3.0 - 0.25, 1e-9);

  // PAND misses the top event when B fails first: infinite MTTF.
  dft::Dft pand = DftBuilder()
                      .basicEvent("A", 1.0)
                      .basicEvent("B", 1.0)
                      .pandGate("Top", {"A", "B"})
                      .top("Top")
                      .build();
  AnalysisReport r3 = session.analyze(
      AnalysisRequest::forDft(pand).measure(MeasureSpec::mttf()));
  ASSERT_TRUE(r3.measures[0].ok);
  EXPECT_TRUE(std::isinf(r3.measures[0].values.at(0)));
  bool warned = false;
  for (const Diagnostic& d : r3.diagnostics)
    if (d.severity == Severity::Warning &&
        d.message.find("infinite") != std::string::npos)
      warned = true;
  EXPECT_TRUE(warned);
}

TEST(Analyzer, RepairableMeasuresMatchOldFacade) {
  dft::Dft tree = dft::corpus::repairableAnd(1.0, 2.0);
  Analyzer session;
  AnalysisReport report = session.analyze(
      AnalysisRequest::forDft(tree)
          .measure(MeasureSpec::unavailability({0.5, 1.0, 2.0}))
          .measure(MeasureSpec::steadyStateUnavailability()));

  DftAnalysis old = analyzeDft(tree);
  ASSERT_EQ(report.measures.size(), 2u);
  ASSERT_TRUE(report.measures[0].ok);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(report.measures[0].values.at(i),
                unavailability(old, std::vector<double>{0.5, 1.0, 2.0}[i]),
                1e-12);
  ASSERT_TRUE(report.measures[1].ok);
  EXPECT_NEAR(report.measures[1].values.at(0), steadyStateUnavailability(old),
              1e-12);
}

TEST(Analyzer, InapplicableMeasuresFailSoftly) {
  Analyzer session;
  // Steady-state unavailability of an irreparable tree: per-measure error,
  // no exception, other measures still served.
  AnalysisReport report = session.analyze(
      AnalysisRequest::forDft(dft::corpus::cps())
          .measure(MeasureSpec::unreliability({1.0}))
          .measure(MeasureSpec::steadyStateUnavailability()));
  ASSERT_EQ(report.measures.size(), 2u);
  EXPECT_TRUE(report.measures[0].ok);
  EXPECT_FALSE(report.measures[1].ok);
  EXPECT_FALSE(report.measures[1].error.empty());
  EXPECT_FALSE(report.allMeasuresOk());

  // An empty time grid is rejected per measure as well.
  AnalysisReport empty = session.analyze(
      AnalysisRequest::forDft(dft::corpus::cps())
          .measure(MeasureSpec::unreliability({})));
  EXPECT_FALSE(empty.measures[0].ok);
}

TEST(Analyzer, GalileoTextAndInMemorySourcesAgree) {
  Analyzer session;
  AnalysisReport viaText = session.analyze(
      AnalysisRequest::forGalileo(dft::corpus::galileoCas())
          .measure(MeasureSpec::unreliability({1.0})));
  AnalysisReport viaTree = session.analyze(
      AnalysisRequest::forDft(dft::corpus::cas())
          .measure(MeasureSpec::unreliability({1.0})));

  // Same canonical tree: the second request is served from the cache even
  // though the source representation differs.
  EXPECT_EQ(viaText.treeHash, viaTree.treeHash);
  EXPECT_TRUE(viaTree.fromCache);
  EXPECT_NEAR(viaText.measures[0].values.at(0),
              viaTree.measures[0].values.at(0), 0.0);
}

TEST(Analyzer, CacheCanBeDisabled) {
  AnalyzerOptions opts;
  opts.cacheTrees = false;
  opts.cacheModules = false;
  Analyzer session(opts);
  AnalysisRequest req = AnalysisRequest::forDft(dft::corpus::cas())
                            .measure(MeasureSpec::unreliability({1.0}));
  AnalysisReport first = session.analyze(req);
  AnalysisReport second = session.analyze(req);
  EXPECT_FALSE(second.fromCache);
  EXPECT_EQ(second.cache.moduleHits, 0u);
  EXPECT_EQ(first.cache.stepsRun, second.cache.stepsRun);
  EXPECT_EQ(session.cachedTreeCount(), 0u);
  EXPECT_EQ(session.cachedModuleCount(), 0u);
}

TEST(Analyzer, CustomSymbolTableBypassesTheCaches) {
  // A request bringing its own symbol table cannot exchange models with
  // the session caches (they intern in the session table); it must be
  // served one-shot — correctly, not via a crash or a wrong-table model.
  Analyzer session;
  AnalysisRequest warm = AnalysisRequest::forDft(dft::corpus::cas())
                             .measure(MeasureSpec::unreliability({1.0}));
  AnalysisReport first = session.analyze(warm);

  AnalysisRequest custom = AnalysisRequest::forDft(dft::corpus::cas())
                               .measure(MeasureSpec::unreliability({1.0}));
  custom.options.conversion.symbols = ioimc::makeSymbolTable();
  AnalysisReport report = session.analyze(custom);
  EXPECT_FALSE(report.fromCache);
  EXPECT_EQ(report.cache.moduleHits, 0u);
  EXPECT_EQ(report.analysis->closedModel.symbols(),
            custom.options.conversion.symbols);
  // 1e-9: the warm default request was served by the numeric path, the
  // custom-table one by full composition; they agree up to transient
  // truncation tolerances, not bitwise.
  EXPECT_NEAR(report.measures[0].values.at(0), first.measures[0].values.at(0),
              1e-9);

  // And the session still serves later default requests from cache.
  AnalysisReport third = session.analyze(warm);
  EXPECT_TRUE(third.fromCache);
}

TEST(Analyzer, TimingsAreRecorded) {
  Analyzer session;
  AnalysisReport report = session.analyze(
      AnalysisRequest::forGalileo(dft::corpus::galileoCas())
          .measure(MeasureSpec::unreliability({1.0})));
  EXPECT_GT(report.timings.compose, 0.0);
  EXPECT_GT(report.timings.total(), 0.0);
  // A cache hit skips convert/compose/extract entirely.
  AnalysisReport hit = session.analyze(
      AnalysisRequest::forGalileo(dft::corpus::galileoCas())
          .measure(MeasureSpec::unreliability({1.0})));
  EXPECT_EQ(hit.timings.compose, 0.0);
  EXPECT_EQ(hit.timings.convert, 0.0);
}

}  // namespace
}  // namespace imcdft::analysis
