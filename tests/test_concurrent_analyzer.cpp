#include <gtest/gtest.h>

#include <barrier>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/measures.hpp"
#include "dft/corpus.hpp"

/// \file test_concurrent_analyzer.cpp
/// The Analyzer's concurrency contract: genuinely concurrent sessions over
/// one Analyzer, in-flight dedup of identical requests (N concurrent
/// identical requests perform exactly one aggregation), the lazily
/// installed unavailability extraction under contention, a fleet of
/// sessions sharing one persistent store, and LRU eviction of every
/// session cache.  The whole file runs under TSan in CI (the suite names
/// contain "Concurrent"/run via ctest -R 'Concurrent' — see also
/// StoreRobustness.ConcurrentWriters in test_store.cpp).

namespace imcdft {
namespace {

namespace fs = std::filesystem;
using analysis::AnalysisOptions;
using analysis::AnalysisReport;
using analysis::AnalysisRequest;
using analysis::Analyzer;
using analysis::AnalyzerOptions;
using analysis::MeasureSpec;

/// CAS variant with the cross-switch failure rate perturbed: every variant
/// interns the same action-name universe, so cross-session comparisons are
/// exact (see the determinism note in analyzer.hpp).
std::string perturbedCas(double csLambda) {
  std::string text = dft::corpus::galileoCas();
  const std::string needle = "\"CS\" lambda=0.2;";
  auto pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(),
               "\"CS\" lambda=" + std::to_string(csLambda) + ";");
  return text;
}

AnalysisOptions viaComposition() {
  AnalysisOptions opts;
  opts.engine.staticCombine = false;
  return opts;
}

TEST(ConcurrentAnalyzer, InFlightDedupAggregatesExactlyOnce) {
  constexpr unsigned kThreads = 8;
  Analyzer session;
  const AnalysisRequest request =
      AnalysisRequest::forGalileo(dft::corpus::galileoCas(), "cas")
          .withOptions(viaComposition())
          .measure(MeasureSpec::unreliability({0.5, 1.0, 2.0}));

  std::barrier start(kThreads);
  std::vector<AnalysisReport> reports(kThreads);
  std::vector<std::thread> pool;
  for (unsigned i = 0; i < kThreads; ++i)
    pool.emplace_back([&, i] {
      start.arrive_and_wait();  // maximize the in-flight overlap
      reports[i] = session.analyze(request);
    });
  for (std::thread& t : pool) t.join();

  std::size_t misses = 0, hits = 0, joins = 0;
  for (const AnalysisReport& r : reports) {
    misses += r.cache.treeMisses;
    hits += r.cache.treeHits;
    joins += r.cache.inflightJoins;
    ASSERT_EQ(r.measures.size(), 1u);
    EXPECT_TRUE(r.measures[0].ok);
    // Everyone shares the leader's analysis object — no duplicates.
    EXPECT_EQ(r.analysis.get(), reports[0].analysis.get());
    for (std::size_t p = 0; p < r.measures[0].values.size(); ++p)
      EXPECT_EQ(r.measures[0].values[p], reports[0].measures[0].values[p]);
  }
  // Exactly one aggregation ran; every other request either joined it in
  // flight or hit the tree cache after the leader published.
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits + joins, kThreads - 1);
  EXPECT_EQ(session.cacheStats().treeMisses, 1u);
}

TEST(ConcurrentAnalyzer, BatchMatchesSequentialBitForBit) {
  std::vector<AnalysisRequest> requests;
  for (double l : {0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55})
    requests.push_back(
        AnalysisRequest::forGalileo(perturbedCas(l), "cas-" + std::to_string(l))
            .withOptions(viaComposition())
            .measure(MeasureSpec::unreliability({0.5, 1.0, 2.0})));

  Analyzer sequential;
  std::vector<AnalysisReport> ref = sequential.analyzeBatch(requests);

  Analyzer concurrent;
  std::vector<AnalysisReport> got = concurrent.analyzeBatch(requests, 4);

  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].label, ref[i].label);  // reports in request order
    ASSERT_EQ(got[i].measures.size(), 1u);
    EXPECT_TRUE(got[i].measures[0].ok);
    ASSERT_EQ(got[i].measures[0].values.size(),
              ref[i].measures[0].values.size());
    for (std::size_t p = 0; p < ref[i].measures[0].values.size(); ++p)
      EXPECT_EQ(got[i].measures[0].values[p], ref[i].measures[0].values[p])
          << got[i].label << " point " << p;
  }
}

TEST(ConcurrentAnalyzer, MixedMeasuresShareOneAnalysis) {
  // Concurrent unavailability requests race to install the lazily computed
  // full extraction (DftAnalysis::fullMemo, a first-write-wins CAS).
  constexpr unsigned kThreads = 8;
  Analyzer session;
  const AnalysisRequest request =
      AnalysisRequest::forDft(dft::corpus::repairableAnd(), "rep")
          .measure(MeasureSpec::unavailability({0.5, 1.0}))
          .measure(MeasureSpec::steadyStateUnavailability());

  std::barrier start(kThreads);
  std::vector<AnalysisReport> reports(kThreads);
  std::vector<std::thread> pool;
  for (unsigned i = 0; i < kThreads; ++i)
    pool.emplace_back([&, i] {
      start.arrive_and_wait();
      reports[i] = session.analyze(request);
    });
  for (std::thread& t : pool) t.join();

  for (const AnalysisReport& r : reports) {
    EXPECT_TRUE(r.allMeasuresOk());
    EXPECT_EQ(r.analysis.get(), reports[0].analysis.get());
    for (std::size_t m = 0; m < r.measures.size(); ++m)
      for (std::size_t p = 0; p < r.measures[m].values.size(); ++p)
        EXPECT_EQ(r.measures[m].values[p],
                  reports[0].measures[m].values[p]);
  }
  EXPECT_EQ(session.cacheStats().treeMisses, 1u);
}

TEST(ConcurrentAnalyzer, FleetSharesOnePersistentStore) {
  const std::string dir = ::testing::TempDir() + "imcq_fleet";
  fs::remove_all(dir);

  auto makeRequests = [&](const std::string& storeDir) {
    std::vector<AnalysisRequest> requests;
    for (double l : {0.2, 0.3, 0.4, 0.5}) {
      AnalysisRequest req =
          AnalysisRequest::forGalileo(perturbedCas(l),
                                      "cas-" + std::to_string(l))
              .withOptions(viaComposition())
              .measure(MeasureSpec::unreliability({1.0, 2.0}));
      req.options.engine.storeDir = storeDir;
      requests.push_back(std::move(req));
    }
    return requests;
  };

  // Reference values from a session with no store at all.
  Analyzer plain;
  std::vector<AnalysisReport> ref = plain.analyzeBatch(makeRequests(""));

  // Worker 1 of the fleet warms the shared directory.
  Analyzer first;
  first.analyzeBatch(makeRequests(dir));
  EXPECT_GT(first.cacheStats().storeWrites, 0u);

  // Worker 2 starts cold (fresh symbol table, empty session caches) and
  // serves the same sweep concurrently from the shared store.
  Analyzer second;
  std::vector<AnalysisReport> got = second.analyzeBatch(makeRequests(dir), 4);
  EXPECT_GT(second.cacheStats().storeHits, 0u);

  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(got[i].allMeasuresOk());
    ASSERT_EQ(got[i].measures[0].values.size(),
              ref[i].measures[0].values.size());
    for (std::size_t p = 0; p < ref[i].measures[0].values.size(); ++p)
      EXPECT_EQ(got[i].measures[0].values[p], ref[i].measures[0].values[p])
          << got[i].label << " point " << p;
  }
}

TEST(ConcurrentAnalyzer, ManyDistinctRequestsStressSharedCaches) {
  // Distinct variants on many threads: no dedup to hide behind, every
  // cache front takes concurrent insert traffic.  Run twice so the second
  // round takes the hit paths concurrently too.
  std::vector<AnalysisRequest> requests;
  for (double l : {0.2, 0.26, 0.32, 0.38, 0.44, 0.5})
    requests.push_back(
        AnalysisRequest::forGalileo(perturbedCas(l), "cas-" + std::to_string(l))
            .withOptions(viaComposition())
            .measure(MeasureSpec::unreliability({1.0})));

  Analyzer session;
  std::vector<AnalysisReport> cold = session.analyzeBatch(requests, 4);
  std::vector<AnalysisReport> warm = session.analyzeBatch(requests, 4);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_TRUE(cold[i].allMeasuresOk());
    EXPECT_TRUE(warm[i].fromCache);
    EXPECT_EQ(warm[i].measures[0].values.at(0),
              cold[i].measures[0].values.at(0));
  }
  EXPECT_EQ(session.cacheStats().treeMisses, requests.size());
}

// ---------------------------------------------------------------------------
// LRU eviction.
// ---------------------------------------------------------------------------

TEST(LruEviction, TreeCacheEvictsLeastRecentlyUsed) {
  AnalyzerOptions opts;
  opts.maxCachedTrees = 2;
  Analyzer session(opts);
  auto request = [&](double l, const std::string& label) {
    return AnalysisRequest::forGalileo(perturbedCas(l), label)
        .withOptions(viaComposition())
        .measure(MeasureSpec::unreliability({1.0}));
  };

  session.analyze(request(0.2, "a"));
  session.analyze(request(0.3, "b"));
  session.analyze(request(0.4, "c"));  // capacity 2: evicts a
  EXPECT_EQ(session.cachedTreeCount(), 2u);
  EXPECT_EQ(session.cacheStats().treeEvictions, 1u);

  EXPECT_TRUE(session.analyze(request(0.3, "b-again")).fromCache);
  EXPECT_FALSE(session.analyze(request(0.2, "a-again")).fromCache);
}

TEST(LruEviction, TreeCacheHitRefreshesRecency) {
  AnalyzerOptions opts;
  opts.maxCachedTrees = 2;
  Analyzer session(opts);
  auto request = [&](double l, const std::string& label) {
    return AnalysisRequest::forGalileo(perturbedCas(l), label)
        .withOptions(viaComposition())
        .measure(MeasureSpec::unreliability({1.0}));
  };

  session.analyze(request(0.2, "a"));
  session.analyze(request(0.3, "b"));
  EXPECT_TRUE(session.analyze(request(0.2, "a-touch")).fromCache);
  session.analyze(request(0.4, "c"));  // b is now the LRU entry
  EXPECT_TRUE(session.analyze(request(0.2, "a-hit")).fromCache);
  EXPECT_FALSE(session.analyze(request(0.3, "b-miss")).fromCache);
}

TEST(LruEviction, ModuleCacheHonorsCapacityBound) {
  AnalyzerOptions opts;
  opts.cacheTrees = false;     // force the pipeline every time
  opts.maxCachedModules = 1;   // clamps to one shard: strict bound
  Analyzer session(opts);
  AnalysisRequest request =
      AnalysisRequest::forGalileo(dft::corpus::galileoCas(), "cas")
          .withOptions(viaComposition())
          .measure(MeasureSpec::unreliability({1.0}));
  AnalysisReport report = session.analyze(request);
  EXPECT_TRUE(report.allMeasuresOk());
  // The CAS has several independent modules; all but one were evicted.
  EXPECT_LE(session.cachedModuleCount(), 1u);
  EXPECT_GT(session.cacheStats().moduleEvictions, 0u);
}

TEST(LruEviction, CurveCacheHonorsCapacityBound) {
  AnalyzerOptions opts;
  opts.maxCachedCurves = 1;
  Analyzer session(opts);
  // The numeric path solves one curve per module chain x time grid; two
  // grids over the same tree overflow a one-entry cache.
  auto request = [&](std::vector<double> grid, const std::string& label) {
    return AnalysisRequest::forDft(dft::corpus::voterFarm(3, 2), label)
        .measure(MeasureSpec::unreliability(std::move(grid)));
  };
  EXPECT_TRUE(session.analyze(request({0.5, 1.0}, "g1")).allMeasuresOk());
  EXPECT_TRUE(session.analyze(request({2.0, 3.0}, "g2")).allMeasuresOk());
  EXPECT_LE(session.cachedCurveCount(), 1u);
  EXPECT_GT(session.cacheStats().curveEvictions, 0u);
}

TEST(LruEviction, UnboundedCachesNeverEvict) {
  AnalyzerOptions opts;
  opts.maxCachedTrees = 0;  // 0 = unbounded
  opts.maxCachedModules = 0;
  opts.maxCachedCurves = 0;
  Analyzer session(opts);
  for (double l : {0.2, 0.3, 0.4, 0.5})
    session.analyze(
        AnalysisRequest::forGalileo(perturbedCas(l), "cas")
            .withOptions(viaComposition())
            .measure(MeasureSpec::unreliability({1.0})));
  const analysis::CacheStats stats = session.cacheStats();
  EXPECT_EQ(stats.treeEvictions, 0u);
  EXPECT_EQ(stats.moduleEvictions, 0u);
  EXPECT_EQ(stats.curveEvictions, 0u);
  EXPECT_EQ(session.cachedTreeCount(), 4u);
}

}  // namespace
}  // namespace imcdft
