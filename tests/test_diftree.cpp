#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measures.hpp"
#include "common/error.hpp"
#include "ctmc/transient.hpp"
#include "dft/builder.hpp"
#include "dft/corpus.hpp"
#include "diftree/modular.hpp"
#include "diftree/monolithic.hpp"

namespace imcdft::diftree {
namespace {

using dft::DftBuilder;

TEST(Monolithic, SingleBasicEvent) {
  dft::Dft d =
      DftBuilder().basicEvent("A", 0.7).orGate("Top", {"A"}).top("Top").build();
  MonolithicResult r = generateMonolithic(d);
  EXPECT_EQ(r.numStates, 2u);
  EXPECT_NEAR(ctmc::probabilityOfLabelAt(r.chain, "down", 1.0),
              1 - std::exp(-0.7), 1e-9);
}

TEST(Monolithic, AndOfTwoTruncated) {
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .andGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  MonolithicResult r = generateMonolithic(d);
  // all-up, A-failed, B-failed, down: 4 states.
  EXPECT_EQ(r.numStates, 4u);
}

TEST(Monolithic, TruncationOptionChangesStateCount) {
  // On the CPS truncation changes nothing (the system fails only in the
  // very last configuration), so use an OR-of-ANDs where failure happens
  // early and truncation prunes the continued expansion.
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .basicEvent("C", 1.0)
                   .basicEvent("D", 1.0)
                   .andGate("L", {"A", "B"})
                   .andGate("R", {"C", "D"})
                   .orGate("Top", {"L", "R"})
                   .top("Top")
                   .build();
  MonolithicResult truncated = generateMonolithic(d, {true});
  MonolithicResult full = generateMonolithic(d, {false});
  EXPECT_LT(truncated.numStates, full.numStates);
  EXPECT_EQ(full.numStates, 16u);
}

TEST(Monolithic, CpsReproducesPaperStateCount) {
  // The paper quotes 4113 states / 24608 transitions for DIFTree on the
  // CPS; our reimplementation reproduces the state count exactly.
  MonolithicResult full = generateMonolithic(dft::corpus::cps(), {false});
  EXPECT_EQ(full.numStates, 4113u);
}

TEST(Monolithic, CpsMatchesClosedForm) {
  MonolithicResult r = generateMonolithic(dft::corpus::cps());
  double expected = std::pow(1 - std::exp(-1.0), 12.0) / 3.0;
  EXPECT_NEAR(ctmc::probabilityOfLabelAt(r.chain, "down", 1.0), expected,
              1e-8);
}

TEST(Monolithic, CpsStateSpaceIsLarge) {
  // The paper quotes 4113 states / 24608 transitions for DIFTree on the
  // CPS; the exact bookkeeping differs between implementations, but the
  // explosion (thousands of states where the compositional approach needs
  // ~150) is the point being reproduced.
  MonolithicResult full = generateMonolithic(dft::corpus::cps(), {false});
  EXPECT_GT(full.numStates, 3000u);
  EXPECT_GT(full.numTransitions, 15000u);
}

TEST(Monolithic, AgreesWithCompositionalOnCas) {
  dft::Dft d = dft::corpus::cas();
  analysis::DftAnalysis a = analysis::analyzeDft(d);
  MonolithicResult r = generateMonolithic(d);
  for (double t : {0.5, 1.0, 2.0})
    EXPECT_NEAR(analysis::unreliability(a, t),
                ctmc::probabilityOfLabelAt(r.chain, "down", t), 1e-7)
        << "t=" << t;
}

TEST(Monolithic, AgreesWithCompositionalOnSpares) {
  dft::Dft d = DftBuilder()
                   .basicEvent("P1", 1.0)
                   .basicEvent("P2", 2.0)
                   .basicEvent("S", 1.5, 0.3)
                   .spareGate("G1", dft::SpareKind::Warm, {"P1", "S"})
                   .spareGate("G2", dft::SpareKind::Warm, {"P2", "S"})
                   .andGate("Top", {"G1", "G2"})
                   .top("Top")
                   .build();
  analysis::DftAnalysis a = analysis::analyzeDft(d);
  MonolithicResult r = generateMonolithic(d);
  for (double t : {0.4, 1.0, 3.0})
    EXPECT_NEAR(analysis::unreliability(a, t),
                ctmc::probabilityOfLabelAt(r.chain, "down", t), 1e-7);
}

TEST(Monolithic, ComplexSparesSupported) {
  dft::Dft d = dft::corpus::figure10a();
  analysis::DftAnalysis a = analysis::analyzeDft(d);
  MonolithicResult r = generateMonolithic(d);
  for (double t : {0.5, 1.0})
    EXPECT_NEAR(analysis::unreliability(a, t),
                ctmc::probabilityOfLabelAt(r.chain, "down", t), 1e-7);
}

TEST(Monolithic, RepairableStaticTree) {
  dft::Dft d = dft::corpus::repairableAnd(1.0, 2.0);
  MonolithicResult r = generateMonolithic(d, {false});
  // Steady-state unavailability of AND of two independent repairable
  // components: (l/(l+m))^2.
  double u = 1.0 / 3.0;
  EXPECT_NEAR(ctmc::probabilityOfLabelAt(r.chain, "down", 200.0), u * u,
              1e-6);
}

TEST(StaticSolver, MatchesClosedForms) {
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .basicEvent("C", 1.0)
                   .votingGate("Top", 2, {"A", "B", "C"})
                   .top("Top")
                   .build();
  std::vector<double> p(d.size(), 0.0);
  for (dft::ElementId id = 0; id < d.size(); ++id)
    if (d.element(id).isBasicEvent()) p[id] = 0.3;
  double expected = 3 * 0.09 * 0.7 + 0.027;
  EXPECT_NEAR(staticUnreliability(d, p), expected, 1e-12);
}

TEST(StaticSolver, SharedEventsHandledExactly) {
  // Top = AND(OR(A,B), OR(A,C)): sharing A must not be double counted.
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .basicEvent("C", 1.0)
                   .orGate("L", {"A", "B"})
                   .orGate("R", {"A", "C"})
                   .andGate("Top", {"L", "R"})
                   .top("Top")
                   .build();
  std::vector<double> p(d.size(), 0.0);
  double pa = 0.2, pb = 0.4, pc = 0.6;
  p[d.byName("A")] = pa;
  p[d.byName("B")] = pb;
  p[d.byName("C")] = pc;
  // P(top) = pa + (1-pa) pb pc.
  EXPECT_NEAR(staticUnreliability(d, p), pa + (1 - pa) * pb * pc, 1e-12);
}

TEST(StaticSolver, HoistedStructureMatchesOneShotSolves) {
  // One StaticStructure, many probability vectors: each evaluation must
  // equal the from-scratch staticUnreliability call bit for bit (it is the
  // same BDD and the same Shannon expansion).
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .basicEvent("C", 1.0)
                   .orGate("L", {"A", "B"})
                   .votingGate("Top", 2, {"L", "B", "C"})
                   .top("Top")
                   .build();
  const StaticStructure structure(d);
  std::vector<std::vector<double>> grids;
  for (double base : {0.1, 0.35, 0.8}) {
    std::vector<double> p(d.size(), 0.0);
    p[d.byName("A")] = base;
    p[d.byName("B")] = 1.0 - base;
    p[d.byName("C")] = base / 2.0;
    EXPECT_EQ(structure.probability(p), staticUnreliability(d, p));
    grids.push_back(std::move(p));
  }
  std::vector<double> curve = structure.curve(grids);
  ASSERT_EQ(curve.size(), grids.size());
  for (std::size_t i = 0; i < grids.size(); ++i)
    EXPECT_EQ(curve[i], structure.probability(grids[i]));
  EXPECT_EQ(structure.basicEvents().size(), 3u);
  EXPECT_THROW(StaticStructure(dft::corpus::cps()), UnsupportedError);
}

TEST(Modular, StaticTreeSolvedByBdd) {
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 2.0)
                   .andGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  ModularResult r = modularAnalysis(d, 1.0);
  EXPECT_EQ(r.largestMcStates, 0u);  // no Markov chain needed
  EXPECT_NEAR(r.unreliability, (1 - std::exp(-1.0)) * (1 - std::exp(-2.0)),
              1e-9);
}

TEST(Modular, CasDecomposesIntoThreeUnits) {
  ModularResult r = modularAnalysis(dft::corpus::cas(), 1.0);
  EXPECT_NEAR(r.unreliability, 0.6579, 1e-3);
  // Each unit is solved as its own Markov chain; the paper reports the
  // pump unit as Galileo's biggest generated CTMC (8 states).
  bool sawPump = false;
  for (const ModularSolveInfo& m : r.modules) {
    if (m.moduleName == "Pump_unit") {
      sawPump = true;
      EXPECT_TRUE(m.dynamic);
      EXPECT_LE(m.mcStates, 12u);
      EXPECT_GE(m.mcStates, 4u);
    }
  }
  EXPECT_TRUE(sawPump);
  EXPECT_LT(r.largestMcStates, 30u);
}

TEST(Modular, CpsCannotDecomposeUnderDynamicTop) {
  // The top PAND forces DIFTree to solve the whole tree monolithically —
  // the paper's Section 5.2 argument.
  ModularResult r = modularAnalysis(dft::corpus::cps(), 1.0);
  EXPECT_GT(r.largestMcStates, 1000u);
  double expected = std::pow(1 - std::exp(-1.0), 12.0) / 3.0;
  EXPECT_NEAR(r.unreliability, expected, 1e-8);
}

TEST(Modular, AgreesWithCompositionalOnCorpus) {
  for (dft::Dft d : {dft::corpus::cas(), dft::corpus::cps()}) {
    analysis::DftAnalysis a = analysis::analyzeDft(d);
    ModularResult r = modularAnalysis(d, 1.0);
    EXPECT_NEAR(r.unreliability, analysis::unreliability(a, 1.0), 1e-7);
  }
}

TEST(Modular, RejectsComplexSpares) {
  EXPECT_THROW(modularAnalysis(dft::corpus::figure10a(), 1.0),
               UnsupportedError);
}

TEST(Importance, SeriesSystemRanksByProbability) {
  // In an OR (series) system Birnbaum importance of component i is the
  // probability that all *other* components survive, so the least
  // reliable component has the highest criticality.
  dft::Dft d = DftBuilder()
                   .basicEvent("weak", 2.0)
                   .basicEvent("strong", 0.2)
                   .orGate("Top", {"weak", "strong"})
                   .top("Top")
                   .build();
  auto imp = birnbaumImportance(d, 1.0);
  ASSERT_EQ(imp.size(), 2u);
  const auto& weak = imp[0].name == "weak" ? imp[0] : imp[1];
  const auto& strong = imp[0].name == "weak" ? imp[1] : imp[0];
  EXPECT_GT(weak.criticality, strong.criticality);
  // Birnbaum closed form: dU/dp_weak = 1 - p_strong.
  EXPECT_NEAR(weak.birnbaum, std::exp(-0.2), 1e-9);
  EXPECT_NEAR(strong.birnbaum, std::exp(-2.0), 1e-9);
}

TEST(Importance, ParallelSystemClosedForm) {
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 0.5)
                   .andGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  auto imp = birnbaumImportance(d, 1.0);
  double pA = 1 - std::exp(-1.0), pB = 1 - std::exp(-0.5);
  for (const auto& r : imp) {
    if (r.name == "A") EXPECT_NEAR(r.birnbaum, pB, 1e-9);
    if (r.name == "B") EXPECT_NEAR(r.birnbaum, pA, 1e-9);
    // For an AND top, criticality of every component is 1: the system
    // fails exactly when its last component fails.
    EXPECT_NEAR(r.criticality, 1.0, 1e-9);
  }
}

TEST(Importance, RejectsDynamicTrees) {
  EXPECT_THROW(birnbaumImportance(dft::corpus::cas(), 1.0), UnsupportedError);
}

TEST(CutSets, SimpleStructure) {
  dft::Dft d = DftBuilder()
                   .basicEvent("a", 1.0)
                   .basicEvent("b", 1.0)
                   .basicEvent("c", 1.0)
                   .andGate("bc", {"b", "c"})
                   .orGate("Top", {"a", "bc"})
                   .top("Top")
                   .build();
  auto cuts = minimalCutSets(d);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ(cuts[1], (std::vector<std::string>{"b", "c"}));
}

TEST(CutSets, VotingGate) {
  dft::Dft d = DftBuilder()
                   .basicEvent("x", 1.0)
                   .basicEvent("y", 1.0)
                   .basicEvent("z", 1.0)
                   .votingGate("Top", 2, {"x", "y", "z"})
                   .top("Top")
                   .build();
  EXPECT_EQ(minimalCutSets(d).size(), 3u);
}

}  // namespace
}  // namespace imcdft::diftree
