#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "dft/builder.hpp"
#include "dft/corpus.hpp"
#include "dft/execution.hpp"
#include "dft/galileo.hpp"
#include "dft/generate.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"

/// The differential oracle and the shrinker, including the standing
/// end-to-end drill: an intentionally injected semantics mutation (PAND
/// evaluated as AND in the executor) must be caught by the statistical
/// arm and shrunk to a minimal PAND repro.

namespace imcdft::fuzz {
namespace {

using dft::DftBuilder;

/// Fast oracle settings for unit tests: fewer simulator runs, and a
/// live-state budget so an accidentally heavy tree skips instead of
/// stalling the suite.
OracleOptions fastOracle() {
  OracleOptions opts;
  opts.simRuns = 1500;
  opts.deadlineSeconds = 60.0;
  opts.maxLiveStates = 50'000;
  return opts;
}

/// Scoped enabling of the executor's fault-injection hook.
struct InjectPandBug {
  InjectPandBug() { dft::setPandOrderMutationForTesting(true); }
  ~InjectPandBug() { dft::setPandOrderMutationForTesting(false); }
};

TEST(Oracle, AgreesOnCorpusModels) {
  for (auto make : {dft::corpus::cas, dft::corpus::cps,
                    dft::corpus::figure10c, dft::corpus::mutexSwitch}) {
    const OracleVerdict verdict = crossCheck(make(), fastOracle());
    EXPECT_TRUE(verdict.agreed()) << verdict.detail;
    // classic, otf, otf-par, parallel, static — the full exact matrix.
    EXPECT_EQ(verdict.configsCompared, 5u);
  }
}

TEST(Oracle, AgreesOnRepairableTree) {
  const OracleVerdict verdict =
      crossCheck(dft::corpus::repairableAnd(), fastOracle());
  EXPECT_TRUE(verdict.agreed()) << verdict.detail;
  EXPECT_TRUE(verdict.repairable);
}

TEST(Oracle, StaticTreeExercisesNumericPath) {
  const OracleVerdict verdict =
      crossCheck(dft::corpus::voterFarm(3, 2), fastOracle());
  EXPECT_TRUE(verdict.agreed()) << verdict.detail;
  EXPECT_TRUE(verdict.staticEligible);
}

TEST(Oracle, NondeterministicModelComparedViaBounds) {
  // A trigger killing two siblings simultaneously is the paper's
  // Section 4.4 nondeterminism; the oracle must compare scheduler bounds
  // bitwise and accept the simulator (one scheduler) inside them.  The
  // PAND must be the top: if the trigger also fails the top directly the
  // ordering is spurious and minimization resolves it away.
  dft::Dft tree = DftBuilder()
                      .basicEvent("T", 1.0)
                      .basicEvent("A", 1.0)
                      .basicEvent("B", 1.0)
                      .pandGate("Top", {"A", "B"})
                      .fdep("F", "T", {"A", "B"})
                      .top("Top")
                      .build();
  const OracleVerdict verdict = crossCheck(tree, fastOracle());
  EXPECT_TRUE(verdict.agreed()) << verdict.detail;
  EXPECT_TRUE(verdict.nondeterministic);
}

TEST(Oracle, AgreesOnGeneratedSeedBlock) {
  // A slice of the real fuzzing loop inside tier 1; budget-capped so a
  // heavy seed skips rather than slowing the suite.
  OracleOptions opts = fastOracle();
  opts.simRuns = 500;
  opts.maxLiveStates = 20'000;
  dft::GeneratorOptions gen;
  gen.maxElements = 13;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const OracleVerdict verdict = crossCheck(dft::generateDft(seed, gen), opts);
    EXPECT_FALSE(verdict.disagreed()) << "seed " << seed << ": "
                                      << verdict.detail;
  }
}

TEST(Oracle, ReplayCommandNamesBothTools) {
  OracleOptions opts;
  const std::string cmd = replayCommand("out/repro-seed7.dft", opts);
  EXPECT_NE(cmd.find("dftimc"), std::string::npos);
  EXPECT_NE(cmd.find("dftfuzz --check out/repro-seed7.dft"),
            std::string::npos);
  EXPECT_NE(cmd.find("--seed"), std::string::npos);
}

TEST(Oracle, FuzzCorpusRegressions) {
  // Every shrunken repro checked into corpus/fuzz/ must agree today: each
  // one captured a bug (engine or oracle) that has since been fixed, and
  // a regression re-fires exactly here.  See the file headers for the
  // history of each tree.
  std::size_t checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(IMCDFT_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() != ".dft") continue;
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    const OracleVerdict verdict =
        crossCheck(dft::parseGalileo(text.str()), fastOracle());
    EXPECT_TRUE(verdict.agreed())
        << entry.path().filename() << ": " << verdict.detail;
    ++checked;
  }
  EXPECT_GE(checked, 2u);
}

// --- Shrinker -----------------------------------------------------------

TEST(Shrinker, ReducesToPredicateCore) {
  // Predicate: "contains a PAND".  The shrinker should strip everything
  // else and land on a minimal PAND over two events.
  dft::Dft start = dft::corpus::cascadedPands(3, 2);
  auto hasPand = [](const dft::Dft& t) {
    for (dft::ElementId id = 0; id < t.size(); ++id)
      if (t.element(id).type == dft::ElementType::Pand) return true;
    return false;
  };
  ShrinkResult result = shrink(start, hasPand);
  EXPECT_TRUE(hasPand(result.tree));
  EXPECT_LE(result.tree.size(), 3u);  // pand + two basic events
  EXPECT_GT(result.accepted, 0u);
}

TEST(Shrinker, KeepsInputWhenNothingShrinks) {
  dft::Dft minimal = DftBuilder()
                         .basicEvent("A", 1.0)
                         .basicEvent("B", 1.0)
                         .pandGate("Top", {"A", "B"})
                         .top("Top")
                         .build();
  auto hasPand = [](const dft::Dft& t) {
    for (dft::ElementId id = 0; id < t.size(); ++id)
      if (t.element(id).type == dft::ElementType::Pand) return true;
    return false;
  };
  ShrinkResult result = shrink(minimal, hasPand);
  EXPECT_EQ(result.tree.size(), 3u);
}

TEST(Shrinker, SharedEventsDoNotBlockShrinking) {
  dft::Dft shared = DftBuilder()
                        .basicEvent("A", 1.0)
                        .basicEvent("B", 1.0)
                        .basicEvent("C", 1.0)
                        .andGate("G1", {"A", "B"})
                        .andGate("G2", {"A", "C"})
                        .orGate("Top", {"G1", "G2"})
                        .top("Top")
                        .build();
  auto nontrivial = [](const dft::Dft& t) { return t.size() >= 3; };
  ShrinkResult result = shrink(shared, nontrivial);
  EXPECT_TRUE(nontrivial(result.tree));
  EXPECT_LE(result.tree.size(), 3u);
}

// --- The end-to-end injected-bug drill ----------------------------------

TEST(InjectedBugDrill, PandMutationIsCaughtAndShrunk) {
  InjectPandBug guard;
  // Under the mutation the simulator treats PAND as AND:
  // P(AND) - P(PAND) is several percentage points here, which is many
  // sigma at 1500 runs — the statistical arm must fire.
  dft::Dft tree = DftBuilder()
                      .basicEvent("A", 1.0)
                      .basicEvent("B", 1.2)
                      .basicEvent("C", 0.8)
                      .pandGate("P", {"A", "B"})
                      .orGate("Top", {"P", "C"})
                      .top("Top")
                      .build();
  OracleOptions opts = fastOracle();
  const OracleVerdict verdict = crossCheck(tree, opts);
  ASSERT_TRUE(verdict.disagreed()) << verdict.detail;
  EXPECT_NE(verdict.detail.find("simulator"), std::string::npos)
      << verdict.detail;

  ShrinkResult shrunk = shrink(
      tree, [&](const dft::Dft& t) { return crossCheck(t, opts).disagreed(); });
  // Acceptance bar from the harness design: the drill must shrink to a
  // repro of at most 6 elements, and the repro must still disagree.
  EXPECT_LE(shrunk.tree.size(), 6u);
  EXPECT_TRUE(crossCheck(shrunk.tree, opts).disagreed());
  bool hasPand = false;
  for (dft::ElementId id = 0; id < shrunk.tree.size(); ++id)
    hasPand = hasPand || shrunk.tree.element(id).type == dft::ElementType::Pand;
  EXPECT_TRUE(hasPand);
  // The repro must survive a print/parse cycle (it ships as Galileo).
  dft::Dft reparsed = dft::parseGalileo(dft::printGalileo(shrunk.tree));
  EXPECT_TRUE(crossCheck(reparsed, opts).disagreed());
}

TEST(InjectedBugDrill, HookOffMeansAgreement) {
  // The same tree agrees once the hook is off — the drill tests the
  // harness, not a real bug.
  dft::Dft tree = DftBuilder()
                      .basicEvent("A", 1.0)
                      .basicEvent("B", 1.2)
                      .pandGate("Top", {"A", "B"})
                      .top("Top")
                      .build();
  const OracleVerdict verdict = crossCheck(tree, fastOracle());
  EXPECT_TRUE(verdict.agreed()) << verdict.detail;
}

}  // namespace
}  // namespace imcdft::fuzz
