#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ioimc/builder.hpp"
#include "ioimc/export.hpp"
#include "ioimc/model.hpp"
#include "ioimc/ops.hpp"

namespace imcdft::ioimc {
namespace {

IOIMC simpleBe(SymbolTablePtr symbols, const std::string& name, double rate) {
  IOIMCBuilder b(name, symbols);
  StateId up = b.addState();
  StateId firing = b.addState();
  StateId fired = b.addState();
  b.setInitial(up);
  b.output("f_" + name);
  b.markovian(up, rate, firing);
  b.interactive(firing, "f_" + name, fired);
  return std::move(b).build();
}

TEST(Signature, RolesAreExclusive) {
  Signature sig;
  sig.add(0, ActionKind::Input);
  EXPECT_TRUE(sig.isInput(0));
  EXPECT_NO_THROW(sig.add(0, ActionKind::Input));
  EXPECT_THROW(sig.add(0, ActionKind::Output), ModelError);
}

TEST(Signature, HideMovesOutputToInternal) {
  Signature sig;
  sig.add(3, ActionKind::Output);
  sig.hideOutput(3);
  EXPECT_FALSE(sig.isOutput(3));
  EXPECT_TRUE(sig.isInternal(3));
  EXPECT_THROW(sig.hideOutput(3), ModelError);
}

TEST(Builder, BuildsValidModel) {
  auto symbols = makeSymbolTable();
  IOIMC m = simpleBe(symbols, "A", 2.0);
  EXPECT_EQ(m.numStates(), 3u);
  EXPECT_EQ(m.numTransitions(), 2u);
  EXPECT_EQ(m.initial(), 0u);
  EXPECT_TRUE(m.signature().isOutput(symbols->find("f_A")));
}

TEST(Builder, RejectsUndeclaredAction) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s = b.addState();
  b.setInitial(s);
  EXPECT_THROW(b.interactive(s, "ghost", s), ModelError);
}

TEST(Builder, RejectsNonPositiveRate) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s = b.addState();
  b.setInitial(s);
  EXPECT_THROW(b.markovian(s, 0.0, s), ModelError);
  EXPECT_THROW(b.markovian(s, -1.0, s), ModelError);
}

TEST(Builder, RequiresInitialState) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  b.addState();
  EXPECT_THROW(std::move(b).build(), ModelError);
}

TEST(Model, StabilityIgnoresInputs) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s0 = b.addState();
  StateId s1 = b.addState();
  b.setInitial(s0);
  b.input("in");
  b.internal("step");
  b.interactive(s0, "step", s1);
  b.interactive(s1, "in", s0);
  IOIMC m = std::move(b).build();
  EXPECT_FALSE(m.isStable(0));  // internal transition pending
  EXPECT_TRUE(m.isStable(1));   // only an input
}

TEST(Model, ClosedAndMarkovChainPredicates) {
  auto symbols = makeSymbolTable();
  IOIMC be = simpleBe(symbols, "A", 1.0);
  EXPECT_FALSE(be.isClosed());  // f_A is an output
  EXPECT_FALSE(be.isMarkovChain());
  IOIMC hidden = hideAllOutputs(be);
  EXPECT_TRUE(hidden.isClosed());
  EXPECT_FALSE(hidden.isMarkovChain());
}

TEST(Model, LabelsRoundTrip) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s0 = b.addState();
  StateId s1 = b.addState();
  b.setInitial(s0);
  b.markovian(s0, 1.0, s1);
  b.label(s1, "down");
  IOIMC m = std::move(b).build();
  int idx = m.labelIndex("down");
  ASSERT_GE(idx, 0);
  EXPECT_FALSE(m.hasLabel(0, idx));
  EXPECT_TRUE(m.hasLabel(1, idx));
  EXPECT_EQ(m.labelIndex("nope"), -1);
}

TEST(Ops, HideTurnsOutputIntoInternal) {
  auto symbols = makeSymbolTable();
  IOIMC be = simpleBe(symbols, "A", 1.0);
  ActionId f = symbols->find("f_A");
  IOIMC hidden = hide(be, {f});
  EXPECT_TRUE(hidden.signature().isInternal(f));
  EXPECT_FALSE(hidden.isStable(1));  // firing state now has internal action
}

TEST(Ops, RenameActionsRewiresSignals) {
  auto symbols = makeSymbolTable();
  IOIMC be = simpleBe(symbols, "A", 1.0);
  ActionId f = symbols->find("f_A");
  IOIMC renamed = renameActions(be, {{f, "f_B"}});
  EXPECT_TRUE(renamed.signature().isOutput(symbols->find("f_B")));
  EXPECT_FALSE(renamed.signature().isOutput(f));
}

TEST(Ops, RestrictToReachableDropsIslands) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s0 = b.addState();
  StateId s1 = b.addState();
  b.addState();  // unreachable
  b.setInitial(s0);
  b.markovian(s0, 1.0, s1);
  IOIMC m = std::move(b).build();
  EXPECT_EQ(restrictToReachable(m).numStates(), 2u);
}

TEST(Ops, MakeLabelAbsorbingCutsOutgoing) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s0 = b.addState();
  StateId s1 = b.addState();
  StateId s2 = b.addState();
  b.setInitial(s0);
  b.markovian(s0, 1.0, s1);
  b.markovian(s1, 1.0, s2);
  b.label(s1, "down");
  IOIMC m = std::move(b).build();
  IOIMC abs = makeLabelAbsorbing(m, "down");
  EXPECT_EQ(abs.numStates(), 2u);  // s2 becomes unreachable
  EXPECT_TRUE(abs.markovian(1).empty());
  EXPECT_THROW(makeLabelAbsorbing(m, "ghost"), ModelError);
}

TEST(Ops, CollapseMergesUnobservableTail) {
  // s0 --1--> s1 --1--> s2 --1--> s3 (all unlabeled, no visible actions
  // after s0's output): the tail after the last observable event merges.
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s0 = b.addState();
  StateId s1 = b.addState();
  StateId s2 = b.addState();
  StateId s3 = b.addState();
  b.setInitial(s0);
  b.output("f");
  b.interactive(s0, "f", s1);
  b.markovian(s1, 1.0, s2);
  b.markovian(s2, 1.0, s3);
  IOIMC m = std::move(b).build();
  IOIMC collapsed = collapseUnobservableSinks(m);
  // s1, s2, s3 are all unobservable-uniform: one sink remains.
  EXPECT_EQ(collapsed.numStates(), 2u);
  EXPECT_TRUE(collapsed.markovian(1).empty());
}

TEST(Ops, CollapseKeepsLabelBoundaries) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId up = b.addState();
  StateId down1 = b.addState();
  StateId down2 = b.addState();
  b.setInitial(up);
  b.markovian(up, 1.0, down1);
  b.markovian(down1, 1.0, down2);
  b.label(down1, "down");
  b.label(down2, "down");
  IOIMC m = std::move(b).build();
  IOIMC collapsed = collapseUnobservableSinks(m);
  // up can still change its mask -> kept; down1/down2 merge into one sink.
  EXPECT_EQ(collapsed.numStates(), 2u);
  int idx = collapsed.labelIndex("down");
  EXPECT_TRUE(collapsed.hasLabel(1, idx) || collapsed.hasLabel(0, idx));
}

TEST(Ops, CollapseKeepsStatesWithVisibleFutures) {
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s0 = b.addState();
  StateId s1 = b.addState();
  StateId s2 = b.addState();
  b.setInitial(s0);
  b.output("f");
  b.markovian(s0, 1.0, s1);
  b.interactive(s1, "f", s2);
  IOIMC m = std::move(b).build();
  IOIMC collapsed = collapseUnobservableSinks(m);
  // s0 and s1 both lead to the visible f!: only s2 is a sink.
  EXPECT_EQ(collapsed.numStates(), 3u);
}

TEST(Ops, CollapsePreservesTransientLabelProbability) {
  // A richer chain: collapse must not change P(down at t).
  auto symbols = makeSymbolTable();
  IOIMCBuilder b("X", symbols);
  StateId s0 = b.addState();
  StateId s1 = b.addState();
  StateId down = b.addState();
  StateId dead1 = b.addState();
  StateId dead2 = b.addState();
  b.setInitial(s0);
  b.markovian(s0, 1.0, s1);
  b.markovian(s1, 2.0, down);
  b.label(down, "down");
  b.label(dead1, "down");
  b.label(dead2, "down");
  b.markovian(down, 3.0, dead1);
  b.markovian(dead1, 4.0, dead2);
  IOIMC m = std::move(b).build();
  IOIMC collapsed = collapseUnobservableSinks(m);
  EXPECT_LT(collapsed.numStates(), m.numStates());
  // Down states (mask constant) merge but total down probability at any
  // time is untouched; compare a simple quantity: reachability structure.
  EXPECT_GE(collapsed.numStates(), 3u);
}

TEST(Export, DotContainsDecoratedActions) {
  auto symbols = makeSymbolTable();
  IOIMC be = simpleBe(symbols, "A", 1.5);
  std::string dot = toDot(be);
  EXPECT_NE(dot.find("f_A!"), std::string::npos);
  EXPECT_NE(dot.find("1.5"), std::string::npos);
}

TEST(Export, AutHeaderHasCounts) {
  auto symbols = makeSymbolTable();
  IOIMC be = simpleBe(symbols, "A", 1.0);
  std::string aut = toAut(be);
  EXPECT_NE(aut.find("des (0, 2, 3)"), std::string::npos);
}

}  // namespace
}  // namespace imcdft::ioimc
