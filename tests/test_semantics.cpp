#include <gtest/gtest.h>

#include <optional>

#include "common/error.hpp"
#include "ioimc/model.hpp"
#include "semantics/elements.hpp"
#include "semantics/signals.hpp"

namespace imcdft::semantics {
namespace {

using ioimc::IOIMC;
using ioimc::StateId;

/// Follows the unique transition labelled \p action from \p s, or returns
/// nullopt (implicit self-loops are "stay here" for inputs).
std::optional<StateId> step(const IOIMC& m, StateId s,
                            const std::string& action) {
  std::optional<StateId> found;
  for (const auto& t : m.interactive(s)) {
    if (m.actionName(t.action) != action) continue;
    EXPECT_FALSE(found.has_value()) << "nondeterministic " << action;
    found = t.to;
  }
  return found;
}

double exitRate(const IOIMC& m, StateId s) {
  double r = 0.0;
  for (const auto& t : m.markovian(s)) r += t.rate;
  return r;
}

TEST(BasicEvent, HotIgnoresActivation) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC be = basicEvent(symbols, "A", 2.0, 1.0, std::string("a_A"), "f_A");
  // Hot events are active from the start: 3 states, no activation input.
  EXPECT_EQ(be.numStates(), 3u);
  EXPECT_TRUE(be.signature().inputs().empty());
  EXPECT_DOUBLE_EQ(exitRate(be, be.initial()), 2.0);
}

TEST(BasicEvent, ColdFailsOnlyAfterActivation) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC be = basicEvent(symbols, "A", 2.0, 0.0, std::string("a_A"), "f_A");
  EXPECT_EQ(be.numStates(), 4u);
  EXPECT_DOUBLE_EQ(exitRate(be, be.initial()), 0.0);  // dormant cold: no rate
  auto active = step(be, be.initial(), "a_A");
  ASSERT_TRUE(active.has_value());
  EXPECT_DOUBLE_EQ(exitRate(be, *active), 2.0);
}

TEST(BasicEvent, WarmUsesDormancyFactor) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC be = basicEvent(symbols, "A", 2.0, 0.25, std::string("a_A"), "f_A");
  EXPECT_DOUBLE_EQ(exitRate(be, be.initial()), 0.5);  // alpha * lambda
  auto active = step(be, be.initial(), "a_A");
  ASSERT_TRUE(active.has_value());
  EXPECT_DOUBLE_EQ(exitRate(be, *active), 2.0);
}

TEST(BasicEvent, FiringStateEmitsThenAbsorbs) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC be = basicEvent(symbols, "A", 1.0, 1.0, std::nullopt, "f_A");
  StateId firing = be.markovian(be.initial())[0].to;
  auto fired = step(be, firing, "f_A");
  ASSERT_TRUE(fired.has_value());
  EXPECT_TRUE(be.interactive(*fired).empty());
  EXPECT_TRUE(be.markovian(*fired).empty());
}

TEST(CountingGate, AndFiresAfterAllInputs) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC gate = countingGate(symbols, "G", {3}, {"f_A", "f_B", "f_C"}, "f_G");
  StateId s = gate.initial();
  s = *step(gate, s, "f_B");
  s = *step(gate, s, "f_A");
  EXPECT_FALSE(step(gate, s, "f_G").has_value());  // not firing yet
  s = *step(gate, s, "f_C");
  ASSERT_TRUE(step(gate, s, "f_G").has_value());
}

TEST(CountingGate, OrFiresOnFirstInput) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC gate = countingGate(symbols, "G", {1}, {"f_A", "f_B"}, "f_G");
  EXPECT_EQ(gate.numStates(), 3u);
  StateId s = *step(gate, gate.initial(), "f_B");
  EXPECT_TRUE(step(gate, s, "f_G").has_value());
}

TEST(CountingGate, VotingThreshold) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC gate = countingGate(symbols, "G", {2}, {"f_A", "f_B", "f_C"}, "f_G");
  StateId s = *step(gate, gate.initial(), "f_C");
  EXPECT_FALSE(step(gate, s, "f_G").has_value());
  s = *step(gate, s, "f_A");
  EXPECT_TRUE(step(gate, s, "f_G").has_value());
}

TEST(SubsetGate, MatchesCountingSizeForAnd) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC counting = countingGate(symbols, "G", {2}, {"f_A", "f_B"}, "f_G");
  IOIMC subset = subsetGate(symbols, "H", {2}, {"f_A", "f_B"}, "f_H");
  // For 2 inputs the subset gate has one extra state ({A} vs {B}).
  EXPECT_EQ(counting.numStates(), 4u);
  EXPECT_EQ(subset.numStates(), 5u);
}

TEST(SubsetGate, TracksWhichInputFailed) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = subsetGate(symbols, "G", {2}, {"f_A", "f_B"}, "f_G");
  StateId viaA = *step(g, g.initial(), "f_A");
  // A second f_A has no explicit transition (single-firing discipline);
  // f_B completes the set.
  EXPECT_FALSE(step(g, viaA, "f_A").has_value());
  EXPECT_TRUE(step(g, viaA, "f_B").has_value());
}

TEST(Pand, FiresInLeftToRightOrder) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = pandGate(symbols, "P", {"f_A", "f_B"}, "f_P");
  StateId s = *step(g, g.initial(), "f_A");
  s = *step(g, s, "f_B");
  EXPECT_TRUE(step(g, s, "f_P").has_value());
}

TEST(Pand, WrongOrderNeverFires) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = pandGate(symbols, "P", {"f_A", "f_B"}, "f_P");
  StateId x = *step(g, g.initial(), "f_B");  // right input first
  // Absorbing operational state: no further moves at all.
  EXPECT_TRUE(g.interactive(x).empty());
}

TEST(Pand, ThreeInputsOrderMatters) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = pandGate(symbols, "P", {"f_A", "f_B", "f_C"}, "f_P");
  EXPECT_EQ(g.numStates(), 6u);  // 3 progress + X + firing + fired
  StateId s = *step(g, g.initial(), "f_A");
  StateId x = *step(g, s, "f_C");  // C before B: spoiled
  EXPECT_TRUE(g.interactive(x).empty());
}

TEST(OrAuxiliaryModel, ActsAsFiringAuxiliary) {
  // Fig. 5: FA of A with trigger B.
  auto symbols = ioimc::makeSymbolTable();
  IOIMC fa = orAuxiliary(symbols, "FA_A", {"fi_A", "f_B"}, "f_A");
  EXPECT_EQ(fa.numStates(), 3u);
  StateId viaTrigger = *step(fa, fa.initial(), "f_B");
  EXPECT_TRUE(step(fa, viaTrigger, "f_A").has_value());
  StateId viaSelf = *step(fa, fa.initial(), "fi_A");
  EXPECT_EQ(viaTrigger, viaSelf);
}

TEST(InhibitionAuxiliaryModel, InhibitorFirstPreventsFailure) {
  // Fig. 12: A inhibits B.
  auto symbols = ioimc::makeSymbolTable();
  IOIMC ia = inhibitionAuxiliary(symbols, "IA_B", "fi_B", {"f_A"}, "f_B");
  StateId inhibited = *step(ia, ia.initial(), "f_A");
  // fi_B afterwards is ignored (implicit self-loop), B never fails.
  EXPECT_FALSE(step(ia, inhibited, "fi_B").has_value());
  EXPECT_TRUE(ia.interactive(inhibited).empty());
}

TEST(InhibitionAuxiliaryModel, OwnFailureFirstWins) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC ia = inhibitionAuxiliary(symbols, "IA_B", "fi_B", {"f_A"}, "f_B");
  StateId firing = *step(ia, ia.initial(), "fi_B");
  // The inhibitor arriving while firing changes nothing (implicit loop).
  EXPECT_FALSE(step(ia, firing, "f_A").has_value());
  EXPECT_TRUE(step(ia, firing, "f_B").has_value());
}

TEST(Monitor, TracksDownLabel) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC m = monitor(symbols, "f_Top", std::nullopt);
  EXPECT_EQ(m.numStates(), 2u);
  StateId down = *step(m, m.initial(), "f_Top");
  EXPECT_TRUE(m.hasLabel(down, m.labelIndex("down")));
  EXPECT_FALSE(m.hasLabel(m.initial(), m.labelIndex("down")));
}

TEST(Monitor, RepairTogglesBack) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC m = monitor(symbols, "f_Top", std::string("r_Top"));
  StateId down = *step(m, m.initial(), "f_Top");
  StateId up = *step(m, down, "r_Top");
  EXPECT_EQ(up, m.initial());
}

TEST(RepairableBe, CyclesThroughRepair) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC be = repairableBasicEvent(symbols, "A", 1.0, 5.0, 1.0, std::nullopt,
                                  "f_A", "r_A");
  EXPECT_EQ(be.numStates(), 4u);
  StateId firing = be.markovian(be.initial())[0].to;
  StateId downState = *step(be, firing, "f_A");
  ASSERT_EQ(be.markovian(downState).size(), 1u);
  EXPECT_DOUBLE_EQ(be.markovian(downState)[0].rate, 5.0);
  StateId repaired = be.markovian(downState)[0].to;
  EXPECT_EQ(*step(be, repaired, "r_A"), be.initial());
}

TEST(RepairableBe, ColdVariantNeedsActivation) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC be = repairableBasicEvent(symbols, "A", 1.0, 5.0, 0.0,
                                  std::string("a_A"), "f_A", "r_A");
  EXPECT_DOUBLE_EQ(exitRate(be, be.initial()), 0.0);
  StateId active = *step(be, be.initial(), "a_A");
  EXPECT_DOUBLE_EQ(exitRate(be, active), 1.0);
}

TEST(RepairableGate, AnnouncesFailAndRepair) {
  // Fig. 14: repairable AND with two repairable inputs.
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = repairableThresholdGate(
      symbols, "G", {2},
      {{"f_A", std::string("r_A")}, {"f_B", std::string("r_B")}}, "f_G",
      "r_G");
  StateId s = *step(g, g.initial(), "f_A");
  s = *step(g, s, "f_B");
  // Both failed: gate announces f_G.
  StateId downState = *step(g, s, "f_G");
  ASSERT_NE(downState, s);
  // One input repaired: gate announces r_G.
  StateId belowThreshold = *step(g, downState, "r_A");
  EXPECT_TRUE(step(g, belowThreshold, "r_G").has_value());
}

TEST(RepairableGate, RepairBeforeAnnouncementCancelsIt) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = repairableThresholdGate(
      symbols, "G", {2},
      {{"f_A", std::string("r_A")}, {"f_B", std::string("r_B")}}, "f_G",
      "r_G");
  StateId s = *step(g, g.initial(), "f_A");
  s = *step(g, s, "f_B");  // about to announce f_G
  StateId cancelled = *step(g, s, "r_B");
  // Below the threshold again and nothing was announced: no f_G possible.
  EXPECT_FALSE(step(g, cancelled, "f_G").has_value());
}

TEST(Generators, RejectBadParameters) {
  auto symbols = ioimc::makeSymbolTable();
  EXPECT_THROW(basicEvent(symbols, "A", -1.0, 1.0, std::nullopt, "f"),
               ModelError);
  EXPECT_THROW(basicEvent(symbols, "A", 1.0, 2.0, std::nullopt, "f"),
               ModelError);
  EXPECT_THROW(countingGate(symbols, "G", {3}, {"a", "b"}, "f"), ModelError);
  EXPECT_THROW(countingGate(symbols, "G", {0}, {"a", "b"}, "f"), ModelError);
  EXPECT_THROW(pandGate(symbols, "P", {"a"}, "f"), ModelError);
  EXPECT_THROW(orAuxiliary(symbols, "X", {}, "f"), ModelError);
}

TEST(Signals, NamingConventions) {
  EXPECT_EQ(firingSignal("A"), "f_A");
  EXPECT_EQ(isolatedFiringSignal("A"), "fi_A");
  EXPECT_EQ(activationSignal("S"), "a_S");
  EXPECT_EQ(claimSignal("S", "G"), "a_S.G");
  EXPECT_EQ(repairSignal("A"), "r_A");
}

}  // namespace
}  // namespace imcdft::semantics
