#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/converter.hpp"
#include "common/error.hpp"
#include "dft/builder.hpp"
#include "dft/corpus.hpp"

namespace imcdft::analysis {
namespace {

using dft::DftBuilder;
using dft::SpareKind;

const CommunityModel* findModel(const Community& c, const std::string& name) {
  for (const CommunityModel& m : c.models)
    if (m.model.name() == name) return &m;
  return nullptr;
}

TEST(Converter, CommunityHasOneModelPerElementPlusAuxiliaries) {
  Community c = convertDft(dft::corpus::cps());
  // 12 BEs + 3 ANDs + 2 PANDs + monitor = 18 (no auxiliaries needed).
  EXPECT_EQ(c.models.size(), 18u);
  EXPECT_EQ(c.topFiringSignal, "f_System");
  EXPECT_FALSE(c.repairable);
}

TEST(Converter, CasCommunityHasAuxiliaries) {
  Community c = convertDft(dft::corpus::cas());
  // FA for P, B (CPU fdep) and MB (motor fdep); AA for the shared PS.
  EXPECT_NE(findModel(c, "AUX_FA_P"), nullptr);
  EXPECT_NE(findModel(c, "AUX_FA_B"), nullptr);
  EXPECT_NE(findModel(c, "AUX_FA_MB"), nullptr);
  EXPECT_NE(findModel(c, "AUX_AA_PS"), nullptr);
  EXPECT_NE(findModel(c, "MONITOR"), nullptr);
  // FDEP gates themselves have no model.
  EXPECT_EQ(findModel(c, "GATE_CPU_fdep"), nullptr);
}

TEST(Converter, WrappedElementsEmitIsolatedSignal) {
  Community c = convertDft(dft::corpus::cas());
  const CommunityModel* p = findModel(c, "BE_P");
  ASSERT_NE(p, nullptr);
  // P is FDEP-dependent: its own model outputs fi_P, the FA outputs f_P.
  EXPECT_TRUE(p->model.signature().isOutput(c.symbols->find("fi_P")));
  const CommunityModel* fa = findModel(c, "AUX_FA_P");
  EXPECT_TRUE(fa->model.signature().isOutput(c.symbols->find("f_P")));
  EXPECT_TRUE(fa->model.signature().isInput(c.symbols->find("f_Trigger")));
}

TEST(Converter, ActivationContextsOfCas) {
  dft::Dft d = dft::corpus::cas();
  auto ctx = activationContexts(d);
  // Primaries of always-active gates are always active.
  EXPECT_TRUE(ctx[d.byName("P")].alwaysActive);
  EXPECT_TRUE(ctx[d.byName("PA")].alwaysActive);
  EXPECT_TRUE(ctx[d.byName("MA")].alwaysActive);
  // Spares are activated by claims.
  EXPECT_FALSE(ctx[d.byName("B")].alwaysActive);
  EXPECT_EQ(ctx[d.byName("B")].signal, "a_B.CPU_unit");
  // Shared spare: merged activation signal.
  EXPECT_FALSE(ctx[d.byName("PS")].alwaysActive);
  EXPECT_EQ(ctx[d.byName("PS")].signal, "a_PS");
  // Elements outside spare modules are always active.
  EXPECT_TRUE(ctx[d.byName("CS")].alwaysActive);
  EXPECT_TRUE(ctx[d.byName("MS")].alwaysActive);
}

TEST(Converter, ActivationContextsOfNestedSpares) {
  dft::Dft d = dft::corpus::figure10b();
  auto ctx = activationContexts(d);
  // The outer gate is always active, so its primary module gets activated
  // at time zero; inside the primary module, the spare B waits for a claim.
  EXPECT_TRUE(ctx[d.byName("primary")].alwaysActive);
  EXPECT_TRUE(ctx[d.byName("A")].alwaysActive);
  EXPECT_EQ(ctx[d.byName("B")].signal, "a_B.primary");
  // The spare module is dormant until claimed; its primary C is activated
  // by the inner gate, which is activated by the outer claim.
  EXPECT_EQ(ctx[d.byName("spare")].signal, "a_spare.System");
  EXPECT_EQ(ctx[d.byName("C")].signal, "a_C.spare");
  EXPECT_EQ(ctx[d.byName("D")].signal, "a_D.spare");
}

TEST(Converter, ComplexSparePassesActivationDown) {
  dft::Dft d = dft::corpus::figure10a();
  auto ctx = activationContexts(d);
  // AND-rooted spare module: both BEs share the module activation signal.
  EXPECT_EQ(ctx[d.byName("C")].signal, "a_spare.System");
  EXPECT_EQ(ctx[d.byName("D")].signal, "a_spare.System");
  Community c = convertDft(d);
  const CommunityModel* cBe = findModel(c, "BE_C");
  ASSERT_NE(cBe, nullptr);
  EXPECT_TRUE(cBe->model.signature().isInput(
      c.symbols->find("a_spare.System")));
}

TEST(Converter, RejectsSharedElementBetweenSpareModules) {
  DftBuilder b;
  b.basicEvent("P1", 1.0)
      .basicEvent("P2", 1.0)
      .basicEvent("X", 1.0, 0.5)
      .basicEvent("Y", 1.0, 0.5)
      .andGate("S1", {"X", "Y"})
      .andGate("S2", {"Y", "X"})
      .spareGate("G1", SpareKind::Warm, {"P1", "S1"})
      .spareGate("G2", SpareKind::Warm, {"P2", "S2"})
      .andGate("Top", {"G1", "G2"})
      .top("Top");
  dft::Dft d = b.build();
  EXPECT_THROW(convertDft(d), ModelError);
}

TEST(Converter, RejectsPrimaryUsedTwice) {
  DftBuilder b;
  b.basicEvent("P", 1.0)
      .basicEvent("S1", 1.0)
      .basicEvent("S2", 1.0)
      .spareGate("G1", SpareKind::Cold, {"P", "S1"})
      .spareGate("G2", SpareKind::Cold, {"P", "S2"})
      .andGate("Top", {"G1", "G2"})
      .top("Top");
  dft::Dft d = b.build();
  EXPECT_THROW(convertDft(d), ModelError);
}

TEST(Converter, RejectsPrimaryAlsoUsedAsSpare) {
  DftBuilder b;
  b.basicEvent("P", 1.0)
      .basicEvent("Q", 1.0)
      .spareGate("G1", SpareKind::Cold, {"P", "Q"})
      .spareGate("G2", SpareKind::Cold, {"Q", "P"})
      .andGate("Top", {"G1", "G2"})
      .top("Top");
  dft::Dft d = b.build();
  EXPECT_THROW(convertDft(d), ModelError);
}

TEST(Converter, RejectsInhibitedFdepDependent) {
  DftBuilder b;
  b.basicEvent("T", 1.0)
      .basicEvent("A", 1.0)
      .basicEvent("B", 1.0)
      .fdep("F", "T", {"A"})
      .inhibition("B", "A")
      .orGate("Top", {"A", "B"})
      .top("Top");
  dft::Dft d = b.build();
  EXPECT_THROW(convertDft(d), Error);
}

TEST(Converter, RejectsDynamicRepairableTrees) {
  DftBuilder b;
  b.basicEvent("A", 1.0, std::nullopt, 2.0)
      .basicEvent("B", 1.0)
      .pandGate("Top", {"A", "B"})
      .top("Top");
  dft::Dft d = b.build();
  EXPECT_THROW(convertDft(d), UnsupportedError);
}

TEST(Converter, RepairableTreeWiresRepairSignals) {
  Community c = convertDft(dft::corpus::repairableAnd());
  EXPECT_TRUE(c.repairable);
  const CommunityModel* gate = findModel(c, "GATE_System");
  ASSERT_NE(gate, nullptr);
  EXPECT_TRUE(gate->model.signature().isInput(c.symbols->find("r_A")));
  EXPECT_TRUE(gate->model.signature().isOutput(c.symbols->find("r_System")));
  const CommunityModel* mon = findModel(c, "MONITOR");
  EXPECT_TRUE(mon->model.signature().isInput(c.symbols->find("r_System")));
}

TEST(Converter, SubsetGateOptionChangesModelSizes) {
  ConversionOptions counting;
  ConversionOptions subset;
  subset.subsetGates = true;
  dft::Dft d = dft::corpus::cps();
  Community c1 = convertDft(d, counting);
  Community c2 = convertDft(d, subset);
  const CommunityModel* g1 = findModel(c1, "GATE_A");
  const CommunityModel* g2 = findModel(c2, "GATE_A");
  ASSERT_NE(g1, nullptr);
  ASSERT_NE(g2, nullptr);
  EXPECT_LT(g1->model.numStates(), g2->model.numStates());
}

}  // namespace
}  // namespace imcdft::analysis
