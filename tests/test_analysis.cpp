#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measures.hpp"
#include "common/error.hpp"
#include "ctmc/transient.hpp"
#include "dft/builder.hpp"
#include "dft/corpus.hpp"
#include "dft/galileo.hpp"
#include "diftree/monolithic.hpp"

namespace imcdft::analysis {
namespace {

using dft::DftBuilder;

TEST(Analysis, SingleBasicEventMatchesExponential) {
  dft::Dft d = DftBuilder().basicEvent("A", 0.7).orGate("Top", {"A"}).top("Top").build();
  DftAnalysis a = analyzeDft(d);
  EXPECT_FALSE(a.nondeterministic);
  for (double t : {0.0, 0.5, 1.0, 3.0})
    EXPECT_NEAR(unreliability(a, t), 1.0 - std::exp(-0.7 * t), 1e-8);
}

TEST(Analysis, AndOfTwoIndependentExponentials) {
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 3.0)
                   .andGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  const double t = 0.8;
  EXPECT_NEAR(unreliability(a, t),
              (1 - std::exp(-t)) * (1 - std::exp(-3 * t)), 1e-8);
}

TEST(Analysis, OrOfTwoIndependentExponentials) {
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 3.0)
                   .orGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  const double t = 0.8;
  EXPECT_NEAR(unreliability(a, t), 1 - std::exp(-4 * t), 1e-8);
}

TEST(Analysis, TwoOfThreeVoting) {
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .basicEvent("C", 1.0)
                   .votingGate("Top", 2, {"A", "B", "C"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  const double t = 0.6;
  double p = 1 - std::exp(-t);
  double expected = 3 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(unreliability(a, t), expected, 1e-8);
}

TEST(Analysis, PandOfTwoClosedForm) {
  // P(A before B, both by t) for iid Exp(1):
  // integral_0^t e^-a (e^-a - e^-t) da ... use the known formula instead:
  // P = 1/2 * (1 - e^-t)^2 for iid inputs by symmetry (exactly one of the
  // two orders fires the PAND, and order is independent of max <= t).
  dft::Dft d = DftBuilder()
                   .basicEvent("A", 1.0)
                   .basicEvent("B", 1.0)
                   .pandGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  const double t = 1.0;
  double expected = 0.5 * std::pow(1 - std::exp(-t), 2.0);
  EXPECT_NEAR(unreliability(a, t), expected, 1e-8);
}

TEST(Analysis, ColdSpareErlang) {
  // Primary Exp(l) then cold spare Exp(l): failure time is Erlang(2, l).
  const double l = 2.0, t = 0.9;
  dft::Dft d = DftBuilder()
                   .basicEvent("P", l)
                   .basicEvent("S", l)
                   .spareGate("Top", dft::SpareKind::Cold, {"P", "S"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  double x = l * t;
  EXPECT_NEAR(unreliability(a, t), 1 - std::exp(-x) * (1 + x), 1e-8);
}

TEST(Analysis, WarmSpareClosedForm) {
  // Warm spare: spare fails at alpha*l while dormant.  Unit fails when P
  // and S both gone.  Closed form via integration:
  // P fails at time x ~ Exp(lp).  S dormant until x (rate ad), active
  // after (rate la).
  const double lp = 1.0, la = 2.0, ad = 0.5 * la, t = 0.7;
  dft::Dft d = DftBuilder()
                   .basicEvent("P", lp)
                   .basicEvent("S", la, 0.5)
                   .spareGate("Top", dft::SpareKind::Warm, {"P", "S"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  // Monte-Carlo-free check: numeric integration of the density.
  // f(t) = int_0^t lp e^-lp x [ P(S survives x dormant) * Erlang-ish ... ]
  // Simpler: system fails by t iff P failed at x <= t and S failed by t
  // (S timeline: dormant rate ad before x, active la after), or S failed
  // dormant before x and P fails by t.
  auto survivalS = [&](double x, double tt) {
    // P(S alive at tt | P failed at x <= tt).
    return std::exp(-ad * x) * std::exp(-la * (tt - x));
  };
  // numeric integration over x (P's failure time).
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = (i + 0.5) * t / n;
    double fP = lp * std::exp(-lp * x);
    double pSdead = 1.0 - survivalS(x, t);
    sum += fP * pSdead * (t / n);
  }
  EXPECT_NEAR(unreliability(a, t), sum, 1e-4);
}

TEST(Analysis, CpsMatchesPaperValue) {
  // Section 5.2: unreliability 0.00135 at t = 1; exact closed form is
  // (1 - e^-1)^12 / 3.
  DftAnalysis a = analyzeDft(dft::corpus::cps());
  EXPECT_FALSE(a.nondeterministic);
  double expected = std::pow(1 - std::exp(-1.0), 12.0) / 3.0;
  EXPECT_NEAR(unreliability(a, 1.0), expected, 1e-7);
  // The paper prints the truncated value 0.00135 (exact: 0.0013585...).
  EXPECT_NEAR(unreliability(a, 1.0), 0.00135, 1e-5);
}

TEST(Analysis, CasMatchesPaperValue) {
  // Section 5.1: unreliability 0.6579 at t = 1 (TIPP and Galileo agree).
  DftAnalysis a = analyzeDft(dft::corpus::cas());
  EXPECT_FALSE(a.nondeterministic);
  EXPECT_NEAR(unreliability(a, 1.0), 0.6579, 1e-3);
}

TEST(Analysis, CasModuleSizesAreSmall) {
  DftAnalysis a = analyzeDft(dft::corpus::cas());
  // The paper reports 6 states for each aggregated unit I/O-IMC; with the
  // unobservable-sink collapse ours land in the same range.
  int unitsSeen = 0;
  for (const ModuleResult& m : a.stats.modules) {
    if (m.name == "CPU_unit" || m.name == "Motor_unit" ||
        m.name == "Pump_unit") {
      ++unitsSeen;
      EXPECT_LE(m.states, 8u) << m.name;
      EXPECT_GE(m.states, 3u) << m.name;
    }
  }
  EXPECT_EQ(unitsSeen, 3);
}

TEST(Analysis, CompositionStrategiesAgree) {
  for (auto strategy :
       {CompositionStrategy::Modular, CompositionStrategy::Greedy,
        CompositionStrategy::Declaration}) {
    AnalysisOptions opts;
    opts.engine.strategy = strategy;
    DftAnalysis a = analyzeDft(dft::corpus::cas(), opts);
    EXPECT_NEAR(unreliability(a, 1.0), 0.6579, 1e-3)
        << static_cast<int>(strategy);
  }
}

TEST(Analysis, CurveIsMonotone) {
  DftAnalysis a = analyzeDft(dft::corpus::cps());
  auto curve = unreliabilityCurve(a, {0.5, 1.0, 2.0, 4.0});
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i] + 1e-12, curve[i - 1]);
}

TEST(Analysis, BoundsCoincideForDeterministicModels) {
  DftAnalysis a = analyzeDft(dft::corpus::cps());
  auto b = unreliabilityBounds(a, 1.0);
  EXPECT_NEAR(b.lower, b.upper, 1e-9);
  EXPECT_NEAR(b.lower, unreliability(a, 1.0), 1e-7);
}

TEST(Analysis, SharedSparesGrantedOnce) {
  // Two gates share one cold spare; distinct primary rates so the claim
  // order matters.  Compare against direct reasoning: system = AND of both
  // gates; exactly one gate gets S.
  dft::Dft d = DftBuilder()
                   .basicEvent("P1", 1.0)
                   .basicEvent("P2", 2.0)
                   .basicEvent("S", 1.5)
                   .spareGate("G1", dft::SpareKind::Cold, {"P1", "S"})
                   .spareGate("G2", dft::SpareKind::Cold, {"P2", "S"})
                   .andGate("Top", {"G1", "G2"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  EXPECT_FALSE(a.nondeterministic);
  double u = unreliability(a, 1.0);
  EXPECT_GT(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(Analysis, SeqGateForcesOrder) {
  // SEQ(A, B): B cannot fail before A; system failure time = A then B,
  // i.e. the same Erlang as a cold spare.
  const double l = 1.0, t = 1.2;
  dft::Dft d = DftBuilder()
                   .basicEvent("A", l)
                   .basicEvent("B", l)
                   .seqGate("Top", {"A", "B"})
                   .top("Top")
                   .build();
  DftAnalysis a = analyzeDft(d);
  double x = l * t;
  EXPECT_NEAR(unreliability(a, t), 1 - std::exp(-x) * (1 + x), 1e-8);
}

TEST(Analysis, StatsTrackPeaks) {
  DftAnalysis a = analyzeDft(dft::corpus::cps());
  EXPECT_GT(a.stats.steps.size(), 0u);
  EXPECT_GT(a.stats.peakComposedStates, 0u);
  EXPECT_GE(a.stats.peakComposedStates, a.stats.peakAggregatedStates);
}

TEST(Analysis, HecsAgreesAcrossEngines) {
  dft::Dft d = dft::corpus::hecs();
  DftAnalysis a = analyzeDft(d);
  EXPECT_FALSE(a.nondeterministic);
  diftree::MonolithicResult mono = diftree::generateMonolithic(d);
  for (double t : {0.5, 1.0, 2.0})
    EXPECT_NEAR(unreliability(a, t),
                ctmc::probabilityOfLabelAt(mono.chain, "down", t), 1e-7)
        << t;
}

TEST(Analysis, HecsCompositionalPeakStaysSmall) {
  // 24 elements, 16 basic events: the monolithic chain runs to thousands
  // of states while the modular composition peak stays small.
  dft::Dft d = dft::corpus::hecs();
  DftAnalysis a = analyzeDft(d);
  diftree::MonolithicResult mono = diftree::generateMonolithic(d, {false});
  EXPECT_LT(a.stats.peakComposedStates, mono.numStates / 4);
}

TEST(Analysis, GalileoRoundTripMatchesBuilder) {
  // The corpus CPS (Galileo text) against a hand-built equivalent.
  dft::Dft viaGalileo = dft::corpus::cps();
  dft::Dft viaBuilder = dft::corpus::cascadedPands(3, 4);
  DftAnalysis a1 = analyzeDft(viaGalileo);
  DftAnalysis a2 = analyzeDft(viaBuilder);
  EXPECT_NEAR(unreliability(a1, 1.0), unreliability(a2, 1.0), 1e-9);
}

}  // namespace
}  // namespace imcdft::analysis
