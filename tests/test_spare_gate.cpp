#include <gtest/gtest.h>

#include <optional>

#include "ioimc/model.hpp"
#include "semantics/spare_gate.hpp"

namespace imcdft::semantics {
namespace {

using ioimc::IOIMC;
using ioimc::StateId;

std::optional<StateId> step(const IOIMC& m, StateId s,
                            const std::string& action) {
  std::optional<StateId> found;
  for (const auto& t : m.interactive(s)) {
    if (m.actionName(t.action) != action) continue;
    EXPECT_FALSE(found.has_value()) << "nondeterministic " << action;
    found = t.to;
  }
  return found;
}

/// Gate "G": always active, primary P, one private spare S.
SpareGateSpec simpleSpec() {
  SpareGateSpec spec;
  spec.name = "G";
  spec.firingOutput = "f_G";
  spec.primaryFiringInput = "f_P";
  spec.spares.push_back({"f_S", "a_S.G", {}});
  return spec;
}

TEST(SpareGate, ClaimsSpareWhenPrimaryFails) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, simpleSpec());
  StateId s = *step(g, g.initial(), "f_P");
  // The gate is now in the claiming phase: it outputs a_S.G.
  StateId claimed = *step(g, s, "a_S.G");
  // Spare in use; no firing offered.
  EXPECT_FALSE(step(g, claimed, "f_G").has_value());
  // Spare fails: gate fires.
  StateId exhausted = *step(g, claimed, "f_S");
  EXPECT_TRUE(step(g, exhausted, "f_G").has_value());
}

TEST(SpareGate, SpareFailingFirstLeavesPrimaryRunning) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, simpleSpec());
  StateId s = *step(g, g.initial(), "f_S");
  EXPECT_FALSE(step(g, s, "f_G").has_value());
  EXPECT_FALSE(step(g, s, "a_S.G").has_value());  // nothing to claim
  // Primary failing afterwards exhausts the gate immediately.
  StateId exhausted = *step(g, s, "f_P");
  EXPECT_TRUE(step(g, exhausted, "f_G").has_value());
}

TEST(SpareGate, SecondSpareClaimedAfterFirst) {
  auto symbols = ioimc::makeSymbolTable();
  SpareGateSpec spec = simpleSpec();
  spec.spares.push_back({"f_S2", "a_S2.G", {}});
  IOIMC g = spareGate(symbols, spec);
  StateId s = *step(g, g.initial(), "f_P");
  s = *step(g, s, "a_S.G");   // claim first spare
  s = *step(g, s, "f_S");     // it fails
  s = *step(g, s, "a_S2.G");  // claim second spare
  s = *step(g, s, "f_S2");
  EXPECT_TRUE(step(g, s, "f_G").has_value());
}

TEST(SpareGate, SharedSpareTakenByOtherGate) {
  auto symbols = ioimc::makeSymbolTable();
  SpareGateSpec spec = simpleSpec();
  spec.spares[0].otherClaimInputs = {"a_S.H"};
  IOIMC g = spareGate(symbols, spec);
  // The other sharer claims S first...
  StateId s = *step(g, g.initial(), "a_S.H");
  // ...so when our primary fails there is nothing left: fire, do not claim.
  StateId afterPrimary = *step(g, s, "f_P");
  EXPECT_FALSE(step(g, afterPrimary, "a_S.G").has_value());
  EXPECT_TRUE(step(g, afterPrimary, "f_G").has_value());
}

TEST(SpareGate, ClaimRaceRerouted) {
  auto symbols = ioimc::makeSymbolTable();
  SpareGateSpec spec = simpleSpec();
  spec.spares[0].otherClaimInputs = {"a_S.H"};
  spec.spares.push_back({"f_S2", "a_S2.G", {}});
  IOIMC g = spareGate(symbols, spec);
  // Primary fails: gate is about to claim S...
  StateId claiming = *step(g, g.initial(), "f_P");
  EXPECT_TRUE(step(g, claiming, "a_S.G").has_value());
  // ...but the other gate's claim arrives first: replan to S2.
  StateId rerouted = *step(g, claiming, "a_S.H");
  EXPECT_FALSE(step(g, rerouted, "a_S.G").has_value());
  EXPECT_TRUE(step(g, rerouted, "a_S2.G").has_value());
}

/// Gate with activation input and a primary that needs activating
/// (Section 6.1: the gate is itself used inside a spare module).
SpareGateSpec dormantSpec() {
  SpareGateSpec spec = simpleSpec();
  spec.activationInput = "a_G";
  spec.primaryActivationOutput = "a_P.G";
  return spec;
}

TEST(SpareGate, DormantGateActivatesPrimaryOnActivation) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, dormantSpec());
  // Before activation: no outputs at all from the initial state.
  for (const auto& t : g.interactive(g.initial()))
    EXPECT_TRUE(g.signature().isInput(t.action));
  StateId active = *step(g, g.initial(), "a_G");
  // Activation passes to the primary only (Fig. 10.b): a_P.G is emitted,
  // no claim for the spare.
  EXPECT_TRUE(step(g, active, "a_P.G").has_value());
  EXPECT_FALSE(step(g, active, "a_S.G").has_value());
}

TEST(SpareGate, DormantGateDoesNotClaim) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, dormantSpec());
  // Primary fails while the gate is dormant: record it, claim nothing.
  StateId s = *step(g, g.initial(), "f_P");
  EXPECT_FALSE(step(g, s, "a_S.G").has_value());
  EXPECT_FALSE(step(g, s, "f_G").has_value());
  // On activation the gate goes straight for the spare (primary is dead).
  StateId active = *step(g, s, "a_G");
  EXPECT_FALSE(step(g, active, "a_P.G").has_value());
  EXPECT_TRUE(step(g, active, "a_S.G").has_value());
}

TEST(SpareGate, DormantGateFiresOnExhaustion) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, dormantSpec());
  StateId s = *step(g, g.initial(), "f_P");
  StateId exhausted = *step(g, s, "f_S");
  // Even dormant, a gate with no usable components fires (its failure
  // condition is mode-independent).
  EXPECT_TRUE(step(g, exhausted, "f_G").has_value());
}

TEST(SpareGate, PrimaryFailsDuringActivationSkipsItsActivation) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, dormantSpec());
  StateId activating = *step(g, g.initial(), "a_G");
  // f_P arrives between the gate's activation and its a_P.G output.
  StateId rerouted = *step(g, activating, "f_P");
  EXPECT_FALSE(step(g, rerouted, "a_P.G").has_value());
  EXPECT_TRUE(step(g, rerouted, "a_S.G").has_value());
}

TEST(SpareGate, FiredStateIsAbsorbing) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, simpleSpec());
  StateId s = *step(g, g.initial(), "f_S");
  s = *step(g, s, "f_P");
  s = *step(g, s, "f_G");
  EXPECT_TRUE(g.interactive(s).empty());
  EXPECT_TRUE(g.markovian(s).empty());
}

TEST(SpareGate, ThreeWaySharingAllTaken) {
  // Two other gates race us for the only spare.
  auto symbols = ioimc::makeSymbolTable();
  SpareGateSpec spec = simpleSpec();
  spec.spares[0].otherClaimInputs = {"a_S.H1", "a_S.H2"};
  IOIMC g = spareGate(symbols, spec);
  StateId s = *step(g, g.initial(), "a_S.H1");
  // A second sharer claim for an already-taken spare changes nothing.
  EXPECT_FALSE(step(g, s, "a_S.H2").has_value());
  StateId afterPrimary = *step(g, s, "f_P");
  EXPECT_TRUE(step(g, afterPrimary, "f_G").has_value());
}

TEST(SpareGate, TwoSharedSparesRerouteTwice) {
  auto symbols = ioimc::makeSymbolTable();
  SpareGateSpec spec = simpleSpec();
  spec.spares[0].otherClaimInputs = {"a_S.H"};
  spec.spares.push_back({"f_S2", "a_S2.G", {"a_S2.H"}});
  IOIMC g = spareGate(symbols, spec);
  // Primary dies, we are about to claim S...
  StateId claiming = *step(g, g.initial(), "f_P");
  // ...H takes S, we replan to S2...
  StateId rerouted = *step(g, claiming, "a_S.H");
  EXPECT_TRUE(step(g, rerouted, "a_S2.G").has_value());
  // ...H (or a third gate) takes S2 too: nothing left, fire.
  StateId exhausted = *step(g, rerouted, "a_S2.H");
  EXPECT_FALSE(step(g, exhausted, "a_S2.G").has_value());
  EXPECT_TRUE(step(g, exhausted, "f_G").has_value());
}

TEST(SpareGate, ActivationWhileExhaustedFiresImmediately) {
  auto symbols = ioimc::makeSymbolTable();
  IOIMC g = spareGate(symbols, dormantSpec());
  StateId s = *step(g, g.initial(), "f_S");
  s = *step(g, s, "f_P");
  // Dormant, primary dead, spare dead: fires even without activation.
  EXPECT_TRUE(step(g, s, "f_G").has_value());
}

TEST(SpareGate, StateSpaceStaysModest) {
  // 3 spares, each shared with one other gate, dormant gate: the BFS
  // must stay well-bounded (the generator is exponential only in the
  // number of spares, with small bases).
  auto symbols = ioimc::makeSymbolTable();
  SpareGateSpec spec;
  spec.name = "G";
  spec.firingOutput = "f_G";
  spec.activationInput = "a_G";
  spec.primaryActivationOutput = "a_P.G";
  spec.primaryFiringInput = "f_P";
  for (int i = 0; i < 3; ++i) {
    std::string n = std::to_string(i);
    spec.spares.push_back({"f_S" + n, "a_S" + n + ".G", {"a_S" + n + ".H"}});
  }
  IOIMC g = spareGate(symbols, spec);
  EXPECT_LT(g.numStates(), 600u);
  EXPECT_GT(g.numStates(), 50u);
}

TEST(SpareGate, SignatureIsComplete) {
  auto symbols = ioimc::makeSymbolTable();
  SpareGateSpec spec = dormantSpec();
  spec.spares[0].otherClaimInputs = {"a_S.H"};
  IOIMC g = spareGate(symbols, spec);
  EXPECT_TRUE(g.signature().isInput(symbols->find("a_G")));
  EXPECT_TRUE(g.signature().isInput(symbols->find("f_P")));
  EXPECT_TRUE(g.signature().isInput(symbols->find("f_S")));
  EXPECT_TRUE(g.signature().isInput(symbols->find("a_S.H")));
  EXPECT_TRUE(g.signature().isOutput(symbols->find("f_G")));
  EXPECT_TRUE(g.signature().isOutput(symbols->find("a_S.G")));
  EXPECT_TRUE(g.signature().isOutput(symbols->find("a_P.G")));
}

}  // namespace
}  // namespace imcdft::semantics
