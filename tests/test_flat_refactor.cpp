#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "dft/corpus.hpp"
#include "ioimc/bisimulation.hpp"
#include "ioimc/builder.hpp"
#include "ioimc/compose.hpp"
#include "ioimc/ops.hpp"

/// Invariants of the flat-storage (CSR) I/O-IMC core, checked on randomized
/// models: composition is commutative up to strong bisimulation, the weak
/// quotient is idempotent, and the refactored pipeline reproduces the
/// pre-refactor measure results on the paper's example systems (the golden
/// values below were captured from the vector-of-vectors implementation at
/// PR 1 tip; on the capture machine the refactored pipeline reproduces them
/// byte-for-byte, the test asserts 1e-12 to stay robust against libm
/// differences across machines).  The engine's parallel module aggregation
/// must be bitwise deterministic in the thread count; that comparison runs
/// in-process and is exact.

namespace imcdft::ioimc {
namespace {

// ---------------------------------------------------------------------------
// Randomized model generator
// ---------------------------------------------------------------------------

struct GeneratorPools {
  std::vector<std::string> outputs;   ///< owned output actions
  std::vector<std::string> inputs;    ///< listened-to actions
  std::string internal;               ///< private internal action
};

IOIMC randomModel(std::mt19937& rng, const SymbolTablePtr& symbols,
                  const std::string& name, const GeneratorPools& pools) {
  std::uniform_int_distribution<int> stateCount(3, 10);
  std::uniform_real_distribution<double> rate(0.1, 3.0);
  std::uniform_int_distribution<int> coin(0, 1);

  IOIMCBuilder b(name, symbols);
  const int n = stateCount(rng);
  for (int i = 0; i < n; ++i) b.addState();
  b.setInitial(0);

  std::vector<ActionId> actions;
  for (const std::string& o : pools.outputs) actions.push_back(b.output(o));
  for (const std::string& i : pools.inputs) actions.push_back(b.input(i));
  actions.push_back(b.internal(pools.internal));
  b.declareLabel("down");

  std::uniform_int_distribution<int> stateDist(0, n - 1);
  std::uniform_int_distribution<std::size_t> actionDist(0, actions.size() - 1);
  std::uniform_int_distribution<int> interCount(0, 3);
  std::uniform_int_distribution<int> markovCount(0, 2);
  for (int s = 0; s < n; ++s) {
    const int ni = interCount(rng);
    for (int k = 0; k < ni; ++k)
      b.interactive(static_cast<StateId>(s), actions[actionDist(rng)],
                    static_cast<StateId>(stateDist(rng)));
    const int nm = markovCount(rng);
    for (int k = 0; k < nm; ++k)
      b.markovian(static_cast<StateId>(s), rate(rng),
                  static_cast<StateId>(stateDist(rng)));
    if (coin(rng)) b.label(static_cast<StateId>(s), "down");
  }
  return std::move(b).build();
}

/// A compatible pair: disjoint outputs, private internals, a shared
/// external input, and each model listening to the other's outputs.
std::pair<IOIMC, IOIMC> randomCompatiblePair(std::mt19937& rng,
                                             const SymbolTablePtr& symbols) {
  GeneratorPools poolsA{{"oa0", "oa1"}, {"ob0", "ob1", "ext"}, "ha"};
  GeneratorPools poolsB{{"ob0", "ob1"}, {"oa0", "oa1", "ext"}, "hb"};
  IOIMC a = randomModel(rng, symbols, "A", poolsA);
  IOIMC b = randomModel(rng, symbols, "B", poolsB);
  return {std::move(a), std::move(b)};
}

// ---------------------------------------------------------------------------
// Strong-bisimilarity oracle: disjoint union + one partition refinement
// ---------------------------------------------------------------------------

/// True when the initial states of \p x and \p y fall into the same class
/// of the strong bisimulation on their disjoint union.  Requires equal
/// signatures; label universes are unified by name.
bool stronglyBisimilar(const IOIMC& x, const IOIMC& y) {
  EXPECT_EQ(x.signature(), y.signature());
  std::vector<std::string> labelNames = x.labelNames();
  std::vector<int> yRemap(y.labelNames().size());
  for (std::size_t i = 0; i < y.labelNames().size(); ++i) {
    auto it = std::find(labelNames.begin(), labelNames.end(),
                        y.labelNames()[i]);
    if (it == labelNames.end()) {
      labelNames.push_back(y.labelNames()[i]);
      yRemap[i] = static_cast<int>(labelNames.size() - 1);
    } else {
      yRemap[i] = static_cast<int>(it - labelNames.begin());
    }
  }
  const StateId nx = static_cast<StateId>(x.numStates());
  std::vector<std::vector<InteractiveTransition>> inter(nx + y.numStates());
  std::vector<std::vector<MarkovianTransition>> markov(nx + y.numStates());
  std::vector<std::uint32_t> masks(nx + y.numStates());
  for (StateId s = 0; s < nx; ++s) {
    inter[s].assign(x.interactive(s).begin(), x.interactive(s).end());
    markov[s].assign(x.markovian(s).begin(), x.markovian(s).end());
    masks[s] = x.labelMask(s);
  }
  for (StateId s = 0; s < y.numStates(); ++s) {
    for (const auto& t : y.interactive(s))
      inter[nx + s].push_back({t.action, nx + t.to});
    for (const auto& t : y.markovian(s))
      markov[nx + s].push_back({t.rate, nx + t.to});
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < yRemap.size(); ++i)
      if ((y.labelMask(s) >> i) & 1u) mask |= 1u << yRemap[i];
    masks[nx + s] = mask;
  }
  IOIMC u("union", x.symbols(), x.signature(), 0, std::move(inter),
          std::move(markov), std::move(masks), std::move(labelNames));
  Partition p = strongBisimulation(u);
  return p.classOf[x.initial()] == p.classOf[nx + y.initial()];
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

class FlatCoreSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FlatCoreSeeds, ComposeIsCommutativeUpToStrongBisimulation) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 13u);
  SymbolTablePtr symbols = makeSymbolTable();
  auto [a, b] = randomCompatiblePair(rng, symbols);
  IOIMC ab = compose(a, b);
  IOIMC ba = compose(b, a);
  EXPECT_TRUE(stronglyBisimilar(ab, ba));
}

TEST_P(FlatCoreSeeds, WeakQuotientReachesAFixpoint) {
  // Note: one aggregate() pass is not always a fixpoint — collapsing all
  // internal actions to a single tau and dropping Markovian behavior of
  // unstable classes can enable one further merge (the pre-refactor
  // implementation behaves identically, e.g. on seed 14).  The invariant
  // is: re-aggregation never grows the model and converges immediately
  // afterwards, with every surviving state its own class.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u + 7u);
  SymbolTablePtr symbols = makeSymbolTable();
  auto [a, b] = randomCompatiblePair(rng, symbols);
  IOIMC m = compose(a, b);
  IOIMC q = aggregate(m);
  IOIMC q2 = aggregate(q);
  EXPECT_LE(q2.numStates(), q.numStates());
  IOIMC q3 = aggregate(q2);
  EXPECT_EQ(q3.numStates(), q2.numStates());
  EXPECT_EQ(q3.numTransitions(), q2.numTransitions());
  // Every state of the converged quotient is its own weak-bisim class.
  Partition p = weakBisimulation(q2);
  EXPECT_EQ(p.numClasses, q2.numStates());
}

TEST_P(FlatCoreSeeds, CsrStorageRoundTripsBuilderInput) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 3u);
  SymbolTablePtr symbols = makeSymbolTable();
  GeneratorPools pools{{"o0"}, {"i0"}, "h"};
  IOIMC m = randomModel(rng, symbols, "M", pools);
  // Per-state spans must tile the flat arrays exactly, in state order.
  std::size_t interSeen = 0, markovSeen = 0;
  for (StateId s = 0; s < m.numStates(); ++s) {
    auto is = m.interactive(s);
    auto ms = m.markovian(s);
    ASSERT_EQ(is.data(), m.allInteractive().data() + interSeen);
    ASSERT_EQ(ms.data(), m.allMarkovian().data() + markovSeen);
    interSeen += is.size();
    markovSeen += ms.size();
  }
  EXPECT_EQ(interSeen, m.numInteractiveTransitions());
  EXPECT_EQ(markovSeen, m.numMarkovianTransitions());
  EXPECT_EQ(m.numTransitions(), interSeen + markovSeen);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatCoreSeeds, ::testing::Range(0, 25));

}  // namespace
}  // namespace imcdft::ioimc

// ---------------------------------------------------------------------------
// Pipeline-level regression: golden measures and thread-count invariance
// ---------------------------------------------------------------------------

namespace imcdft::analysis {
namespace {

AnalyzerOptions coldOptions() {
  AnalyzerOptions o;
  o.cacheTrees = false;
  o.cacheModules = false;
  return o;
}

AnalysisReport analyzeWithThreads(const dft::Dft& d, unsigned threads,
                                  std::vector<MeasureSpec> measures) {
  Analyzer session(coldOptions());
  AnalysisRequest req = AnalysisRequest::forDft(d);
  req.options.engine.numThreads = threads;
  for (MeasureSpec& m : measures) req.measure(std::move(m));
  return session.analyze(req);
}

const std::vector<double> kGrid{0.5, 1.0, 2.0};

/// Pre-refactor (PR 1 tip) values: unreliability on the grid, then MTTF.
struct Golden {
  const char* name;
  std::vector<double> unreliability;
  double mttf;  ///< NaN = not checked, inf allowed
};

TEST(FlatRefactorGolden, MeasuresMatchPreRefactorPipeline) {
  const std::vector<Golden> goldens{
      {"cas",
       {0.31665058840868077, 0.65790029695800267, 0.95078305010911945},
       0.85973600037066156},
      {"cps",
       {4.5899574792177405e-06, 0.0013566809407112423, 0.058217237951973762},
       std::numeric_limits<double>::infinity()},
      {"hecs",
       {0.067773399769818263, 0.13969399650565353, 0.28780497262613031},
       4.2423510689735924},
      {"fig10a",
       {0.013288446028506666, 0.10327480289036219, 0.44777436550923244},
       std::numeric_limits<double>::quiet_NaN()},
  };
  for (const Golden& g : goldens) {
    dft::Dft d = std::string(g.name) == "cas"     ? dft::corpus::cas()
                 : std::string(g.name) == "cps"   ? dft::corpus::cps()
                 : std::string(g.name) == "hecs"  ? dft::corpus::hecs()
                                                  : dft::corpus::figure10a();
    std::vector<MeasureSpec> specs{MeasureSpec::unreliability(kGrid)};
    if (!std::isnan(g.mttf)) specs.push_back(MeasureSpec::mttf());
    AnalysisReport r = analyzeWithThreads(d, 1, std::move(specs));
    ASSERT_TRUE(r.measures[0].ok) << g.name;
    ASSERT_EQ(r.measures[0].values.size(), kGrid.size()) << g.name;
    for (std::size_t i = 0; i < kGrid.size(); ++i)
      EXPECT_NEAR(r.measures[0].values[i], g.unreliability[i], 1e-12)
          << g.name << " t=" << kGrid[i];
    if (!std::isnan(g.mttf)) {
      ASSERT_TRUE(r.measures[1].ok) << g.name;
      if (std::isinf(g.mttf))
        EXPECT_TRUE(std::isinf(r.measures[1].values[0])) << g.name;
      else
        EXPECT_NEAR(r.measures[1].values[0], g.mttf, 1e-12) << g.name;
    }
  }
}

TEST(FlatRefactorGolden, RepairableMeasuresMatchPreRefactorPipeline) {
  AnalysisReport r = analyzeWithThreads(
      dft::corpus::repairableAnd(), 1,
      {MeasureSpec::unavailability(kGrid),
       MeasureSpec::steadyStateUnavailability()});
  const std::vector<double> expected{0.067058527560114267,
                                     0.10032273504805138,
                                     0.11056095998430665};
  ASSERT_TRUE(r.measures[0].ok);
  for (std::size_t i = 0; i < kGrid.size(); ++i)
    EXPECT_NEAR(r.measures[0].values[i], expected[i], 1e-12);
  ASSERT_TRUE(r.measures[1].ok);
  EXPECT_NEAR(r.measures[1].values[0], 0.11111111111102526, 1e-12);
}

class ThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadSweep, ParallelAggregationIsBitwiseDeterministic) {
  const unsigned threads = GetParam();
  for (const char* name : {"cas", "cps", "hecs"}) {
    dft::Dft d = std::string(name) == "cas"   ? dft::corpus::cas()
                 : std::string(name) == "cps" ? dft::corpus::cps()
                                              : dft::corpus::hecs();
    AnalysisReport base =
        analyzeWithThreads(d, 1, {MeasureSpec::unreliability(kGrid)});
    AnalysisReport parallel =
        analyzeWithThreads(d, threads, {MeasureSpec::unreliability(kGrid)});
    ASSERT_TRUE(base.measures[0].ok);
    ASSERT_TRUE(parallel.measures[0].ok);
    // Bitwise equality: the parallel engine folds module results in a
    // fixed order, so the thread count must not change a single bit.
    EXPECT_EQ(base.measures[0].values, parallel.measures[0].values) << name;
    EXPECT_EQ(base.stats().steps.size(), parallel.stats().steps.size())
        << name;
    EXPECT_EQ(base.analysis->closedModel.numStates(),
              parallel.analysis->closedModel.numStates())
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1u, 4u));

TEST(ThreadedSession, ModuleCacheIsSafeUnderParallelStores) {
  // A batch over CAS variants with the module cache on: worker threads
  // store aggregated modules concurrently; the results must equal the
  // single-threaded session bit for bit.
  auto makeRequests = [](unsigned threads) {
    std::vector<AnalysisRequest> requests;
    for (int i = 0; i < 6; ++i) {
      std::string text = dft::corpus::galileoCas();
      const std::string needle = "\"CS\" lambda=0.2;";
      text.replace(text.find(needle), needle.size(),
                   "\"CS\" lambda=" + std::to_string(0.1 + 0.05 * i) + ";");
      AnalysisRequest req = AnalysisRequest::forGalileo(text);
      req.options.engine.numThreads = threads;
      req.measure(MeasureSpec::unreliability(kGrid));
      requests.push_back(std::move(req));
    }
    return requests;
  };
  Analyzer single;
  Analyzer threaded;
  std::vector<AnalysisReport> s = single.analyzeBatch(makeRequests(1));
  std::vector<AnalysisReport> t = threaded.analyzeBatch(makeRequests(4));
  ASSERT_EQ(s.size(), t.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    ASSERT_TRUE(s[i].measures[0].ok);
    ASSERT_TRUE(t[i].measures[0].ok);
    EXPECT_EQ(s[i].measures[0].values, t[i].measures[0].values) << i;
    hits += t[i].cache.moduleHits;
  }
  EXPECT_GT(hits, 0u);  // the motor/pump modules must actually be reused
}

}  // namespace
}  // namespace imcdft::analysis
