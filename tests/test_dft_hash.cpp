#include <gtest/gtest.h>

#include <string>

#include "dft/builder.hpp"
#include "dft/corpus.hpp"
#include "dft/galileo.hpp"
#include "dft/hash.hpp"
#include "dft/modules.hpp"

namespace imcdft::dft {
namespace {

TEST(DftHash, DeclarationOrderDoesNotMatter) {
  // The same tree with permuted element declarations: ids differ, the
  // canonical key must not.
  Dft a = DftBuilder()
              .basicEvent("X", 1.0)
              .basicEvent("Y", 2.0)
              .andGate("Top", {"X", "Y"})
              .top("Top")
              .build();
  Dft b = DftBuilder()
              .basicEvent("Y", 2.0)
              .basicEvent("X", 1.0)
              .andGate("Top", {"X", "Y"})
              .top("Top")
              .build();
  EXPECT_EQ(canonicalKey(a), canonicalKey(b));
  EXPECT_EQ(canonicalHash(a), canonicalHash(b));
}

TEST(DftHash, RatesAndStructureMatter) {
  auto build = [](double lambda, bool orGate) {
    DftBuilder b;
    b.basicEvent("X", lambda).basicEvent("Y", 2.0);
    if (orGate)
      b.orGate("Top", {"X", "Y"});
    else
      b.andGate("Top", {"X", "Y"});
    return b.top("Top").build();
  };
  EXPECT_NE(canonicalHash(build(1.0, false)), canonicalHash(build(1.5, false)));
  EXPECT_NE(canonicalHash(build(1.0, false)), canonicalHash(build(1.0, true)));
}

TEST(DftHash, InputOrderMatters) {
  // PAND(A, B) and PAND(B, A) are different systems.
  Dft ab = DftBuilder()
               .basicEvent("A", 1.0)
               .basicEvent("B", 1.0)
               .pandGate("Top", {"A", "B"})
               .top("Top")
               .build();
  Dft ba = DftBuilder()
               .basicEvent("A", 1.0)
               .basicEvent("B", 1.0)
               .pandGate("Top", {"B", "A"})
               .top("Top")
               .build();
  EXPECT_NE(canonicalHash(ab), canonicalHash(ba));
}

TEST(DftHash, GalileoRoundTripPreservesTheKey) {
  Dft viaText = parseGalileo(corpus::galileoCas());
  Dft again = parseGalileo(corpus::galileoCas());
  EXPECT_EQ(canonicalKey(viaText), canonicalKey(again));
}

TEST(DftHash, SharedModulesShareKeysAcrossVariants) {
  // Perturbing a CPU-unit rate must leave the motor/pump module keys
  // untouched — that is exactly what the Analyzer's module cache keys on.
  std::string variant = corpus::galileoCas();
  const std::string needle = "\"CS\" lambda=0.2;";
  variant.replace(variant.find(needle), needle.size(), "\"CS\" lambda=0.9;");
  Dft base = parseGalileo(corpus::galileoCas());
  Dft perturbed = parseGalileo(variant);

  auto keyOf = [](const Dft& tree, const std::string& name) {
    return moduleKey(tree, tree.byName(name));
  };
  EXPECT_EQ(keyOf(base, "Motor_unit"), keyOf(perturbed, "Motor_unit"));
  EXPECT_EQ(keyOf(base, "Pump_unit"), keyOf(perturbed, "Pump_unit"));
  EXPECT_NE(keyOf(base, "CPU_unit"), keyOf(perturbed, "CPU_unit"));
  EXPECT_NE(canonicalHash(base), canonicalHash(perturbed));
}

TEST(DftHash, DelimiterCharactersInNamesDoNotCollide) {
  // Quoted Galileo names may contain the serializer's own delimiters; the
  // length-prefixed keys must stay injective.
  Dft joined = DftBuilder()
                   .basicEvent("B C", 1.0)
                   .orGate("Top", {"B C"})
                   .top("Top")
                   .build();
  Dft split = DftBuilder()
                  .basicEvent("B", 1.0)
                  .basicEvent("C", 1.0)
                  .orGate("Top", {"B", "C"})
                  .top("Top")
                  .build();
  EXPECT_NE(canonicalKey(joined), canonicalKey(split));

  Dft viaGalileo = parseGalileo(
      "toplevel \"Top\";\n\"Top\" or \"B C\";\n\"B C\" lambda=1.0;\n");
  EXPECT_EQ(canonicalKey(joined), canonicalKey(viaGalileo));
}

TEST(DftHash, RepairAndDormancyAreFingerprinted) {
  auto be = [](double dorm, std::optional<double> mu) {
    DftBuilder b;
    b.basicEvent("X", 1.0, dorm, mu).orGate("Top", {"X"});
    return b.top("Top").build();
  };
  EXPECT_NE(canonicalHash(be(1.0, std::nullopt)),
            canonicalHash(be(0.5, std::nullopt)));
  EXPECT_NE(canonicalHash(be(1.0, std::nullopt)), canonicalHash(be(1.0, 2.0)));
}

}  // namespace
}  // namespace imcdft::dft
