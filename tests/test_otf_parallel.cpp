#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/cancel.hpp"
#include "dft/corpus.hpp"
#include "ioimc/builder.hpp"
#include "ioimc/otf_compose.hpp"

/// The intra-step parallelism, adaptive cadence and pipelined verification
/// of the fused engine (ioimc/otf_compose.hpp).  All three knobs share one
/// contract: they may move wall time and stats, but never a single result
/// byte.  The suite name (OtfIntraParallel) keys the CI thread-sanitizer
/// job's test filter — keep it when adding cases.

namespace imcdft::ioimc {
namespace {

/// Random mostly-Markovian models big enough that the product's live
/// region crosses detail::kIntraParallelMinStates (512) with the test
/// refine threshold, so the block-parallel encode path actually engages.
/// Distinct rates keep merges rare (the region must *stay* big).
IOIMC bigModel(std::mt19937& rng, const SymbolTablePtr& symbols,
               const std::string& name, const std::string& out,
               const std::string& in) {
  std::uniform_int_distribution<int> stateCount(40, 60);
  std::uniform_real_distribution<double> rate(0.1, 5.0);
  std::uniform_int_distribution<int> coin(0, 3);

  IOIMCBuilder b(name, symbols);
  const int n = stateCount(rng);
  for (int i = 0; i < n; ++i) b.addState();
  b.setInitial(0);
  const ActionId o = b.output(out);
  const ActionId i = b.input(in);
  b.declareLabel("down");

  std::uniform_int_distribution<int> stateDist(0, n - 1);
  for (int s = 0; s < n; ++s) {
    b.markovian(static_cast<StateId>(s), rate(rng),
                static_cast<StateId>(stateDist(rng)));
    b.markovian(static_cast<StateId>(s), rate(rng),
                static_cast<StateId>(stateDist(rng)));
    if (coin(rng) == 0)
      b.interactive(static_cast<StateId>(s), o,
                    static_cast<StateId>(stateDist(rng)));
    if (coin(rng) == 1)
      b.interactive(static_cast<StateId>(s), i,
                    static_cast<StateId>(stateDist(rng)));
    if (coin(rng) == 2) b.label(static_cast<StateId>(s), "down");
  }
  return std::move(b).build();
}

std::pair<IOIMC, IOIMC> bigPair(unsigned seed, const SymbolTablePtr& symbols) {
  std::mt19937 rng(seed);
  IOIMC a = bigModel(rng, symbols, "A", "ping", "pong");
  IOIMC b = bigModel(rng, symbols, "B", "pong", "ping");
  return {std::move(a), std::move(b)};
}

std::vector<ActionId> allOutputs(const IOIMC& a, const IOIMC& b) {
  std::vector<ActionId> outs = a.signature().outputs();
  outs.insert(outs.end(), b.signature().outputs().begin(),
              b.signature().outputs().end());
  std::sort(outs.begin(), outs.end());
  outs.erase(std::unique(outs.begin(), outs.end()), outs.end());
  return outs;
}

/// Exact structural equality, transition bytes included (the same check
/// test_otf_compose.cpp uses against the classic chain).
::testing::AssertionResult equalModels(const IOIMC& x, const IOIMC& y) {
  if (x.numStates() != y.numStates())
    return ::testing::AssertionFailure()
           << "state counts differ: " << x.numStates() << " vs "
           << y.numStates();
  if (x.initial() != y.initial())
    return ::testing::AssertionFailure() << "initial states differ";
  if (!(x.signature() == y.signature()))
    return ::testing::AssertionFailure() << "signatures differ";
  if (x.labelNames() != y.labelNames())
    return ::testing::AssertionFailure() << "label universes differ";
  for (StateId s = 0; s < x.numStates(); ++s) {
    if (x.labelMask(s) != y.labelMask(s))
      return ::testing::AssertionFailure() << "label mask differs at " << s;
    auto xi = x.interactive(s), yi = y.interactive(s);
    if (xi.size() != yi.size() ||
        !std::equal(xi.begin(), xi.end(), yi.begin()))
      return ::testing::AssertionFailure()
             << "interactive row differs at " << s;
    auto xm = x.markovian(s), ym = y.markovian(s);
    if (xm.size() != ym.size())
      return ::testing::AssertionFailure() << "markovian row differs at " << s;
    for (std::size_t i = 0; i < xm.size(); ++i)
      if (xm[i].rate != ym[i].rate || xm[i].to != ym[i].to)
        return ::testing::AssertionFailure()
               << "markovian transition differs at " << s;
  }
  return ::testing::AssertionSuccess();
}

otf::OtfOptions baseOptions(unsigned intraThreads) {
  otf::OtfOptions opts;
  opts.refineThreshold = 4;
  opts.intraThreads = intraThreads;
  return opts;
}

TEST(OtfIntraParallel, BitwiseAcrossThreadCounts) {
  // The determinism contract of the block-parallel encode: any thread
  // count produces the same partition sequence, hence the same bytes.
  std::size_t engaged = 0;
  for (unsigned seed = 0; seed < 8; ++seed) {
    auto symbols = makeSymbolTable();
    auto [a, b] = bigPair(seed, symbols);
    const std::vector<ActionId> hidden = allOutputs(a, b);

    otf::OtfResult seq =
        otf::otfComposeAggregate(a, b, hidden, baseOptions(1));
    ASSERT_TRUE(seq.ok) << "seed " << seed << ": " << seq.failureReason;
    EXPECT_EQ(seq.stats.intraWorkers, 0u);

    otf::OtfResult par =
        otf::otfComposeAggregate(a, b, hidden, baseOptions(4));
    ASSERT_TRUE(par.ok) << "seed " << seed << ": " << par.failureReason;
    if (par.stats.intraWorkers > 0) ++engaged;

    EXPECT_TRUE(equalModels(*seq.model, *par.model)) << "seed " << seed;
    EXPECT_EQ(seq.stats.refinementRounds, par.stats.refinementRounds)
        << "seed " << seed;
    EXPECT_EQ(seq.stats.peakLiveStates, par.stats.peakLiveStates)
        << "seed " << seed;
  }
  // At least some products must have grown past the parallel-engage
  // threshold, or the comparison above never tested the pool at all.
  EXPECT_GT(engaged, 0u);
}

TEST(OtfIntraParallel, BitwiseMeasuresAcrossEngineParallelToggle) {
  // The engine-level toggle (EngineOptions::otfIntraStepParallel): corpus
  // measures must agree bit-for-bit with the toggle on and off.  On a
  // single-hardware-thread host both runs are sequential and this is a
  // smoke test; on multi-core CI it exercises the shared merge-level pool.
  namespace analysis = imcdft::analysis;
  std::vector<double> values[2];
  for (int on = 0; on < 2; ++on) {
    analysis::Analyzer session;
    analysis::AnalysisRequest req =
        analysis::AnalysisRequest::forDft(dft::corpus::cascadedPand(4, 2),
                                          "cpand");
    req.measure(analysis::MeasureSpec::unreliability({0.5, 1.0, 2.0}));
    req.options.engine.otfIntraStepParallel = (on == 1);
    req.options.engine.staticCombine = false;
    analysis::AnalysisReport report = session.analyze(req);
    ASSERT_EQ(report.measures.size(), 1u);
    ASSERT_TRUE(report.measures[0].ok) << report.measures[0].error;
    values[on] = report.measures[0].values;
  }
  ASSERT_EQ(values[0].size(), values[1].size());
  for (std::size_t i = 0; i < values[0].size(); ++i)
    EXPECT_EQ(std::memcmp(&values[0][i], &values[1][i], sizeof(double)), 0)
        << "grid point " << i;
}

TEST(OtfIntraParallel, AdaptiveCadenceGoldenEquality) {
  // The cadence decides only *when* refinement passes run, never what the
  // engine finally computes: every cadence must yield identical bytes.
  std::size_t skippedAtEight = 0;
  for (unsigned seed = 20; seed < 26; ++seed) {
    auto symbols = makeSymbolTable();
    auto [a, b] = bigPair(seed, symbols);
    const std::vector<ActionId> hidden = allOutputs(a, b);

    otf::OtfOptions golden = baseOptions(1);
    golden.refineCadence = 2.0;
    otf::OtfResult ref = otf::otfComposeAggregate(a, b, hidden, golden);
    ASSERT_TRUE(ref.ok) << "seed " << seed << ": " << ref.failureReason;

    for (double cadence : {1.0, 4.0, 8.0}) {
      otf::OtfOptions opts = baseOptions(1);
      opts.refineCadence = cadence;
      otf::OtfResult r = otf::otfComposeAggregate(a, b, hidden, opts);
      ASSERT_TRUE(r.ok) << "seed " << seed << " cadence " << cadence << ": "
                        << r.failureReason;
      EXPECT_TRUE(equalModels(*ref.model, *r.model))
          << "seed " << seed << " cadence " << cadence;
      if (cadence == 8.0) skippedAtEight += r.stats.refinePassesSkipped;
    }
  }
  // A lazier-than-doubling cadence must actually have deferred passes the
  // fixed-doubling policy would have run, or the counter is dead.
  EXPECT_GT(skippedAtEight, 0u);
}

TEST(OtfIntraParallel, BudgetTripInsideParallelRefinementUnwindsCleanly) {
  // A checkpoint budget that trips inside the block-parallel refinement
  // loop must unwind through the worker pool as BudgetExceeded (workers
  // drained, no partial state), and an unbudgeted rerun must still be
  // byte-identical — the trip may not corrupt any shared structure.
  auto symbols = makeSymbolTable();
  auto [a, b] = bigPair(3, symbols);
  const std::vector<ActionId> hidden = allOutputs(a, b);

  otf::OtfResult ref = otf::otfComposeAggregate(a, b, hidden, baseOptions(4));
  ASSERT_TRUE(ref.ok) << ref.failureReason;
  ASSERT_GT(ref.stats.intraWorkers, 0u)
      << "product too small: the parallel refinement path never engaged";

  bool trippedInRefine = false;
  for (std::uint64_t cap = 1; cap <= 20000 && !trippedInRefine; ++cap) {
    CancelToken token;
    token.limitCheckpoints(cap);
    otf::OtfOptions opts = baseOptions(4);
    opts.weak.cancel = &token;
    try {
      otf::OtfResult r = otf::otfComposeAggregate(a, b, hidden, opts);
      ASSERT_TRUE(r.ok) << r.failureReason;
      break;  // budget never tripped: every checkpoint fit under the cap
    } catch (const BudgetExceeded& e) {
      if (e.checkpoint() == "otf-refine") trippedInRefine = true;
    }
  }
  EXPECT_TRUE(trippedInRefine)
      << "no checkpoint cap tripped inside the parallel refinement loop";

  otf::OtfResult again =
      otf::otfComposeAggregate(a, b, hidden, baseOptions(4));
  ASSERT_TRUE(again.ok) << again.failureReason;
  EXPECT_TRUE(equalModels(*ref.model, *again.model));
}

TEST(OtfIntraParallel, PipelineDrillIsBitwiseAndCountsRollbacks) {
  // The drill forces every deferred-fixpoint confirmation through the
  // rollback path (discard overlapped work, redo against the "corrected"
  // — byte-identical — model).  Measures must not move, and the rollbacks
  // must be visible in the session stats.
  namespace analysis = imcdft::analysis;
  std::vector<double> values[2];
  for (int drill = 0; drill < 2; ++drill) {
    analysis::Analyzer session;
    analysis::AnalysisRequest req = analysis::AnalysisRequest::forDft(
        dft::corpus::cascadedPand(4, 2), "cpand");
    req.measure(analysis::MeasureSpec::unreliability({0.5, 1.0, 2.0}));
    req.options.engine.otfPipelineDrill = (drill == 1);
    req.options.engine.staticCombine = false;
    analysis::AnalysisReport report = session.analyze(req);
    ASSERT_EQ(report.measures.size(), 1u);
    ASSERT_TRUE(report.measures[0].ok) << report.measures[0].error;
    values[drill] = report.measures[0].values;
    if (drill == 1) {
      EXPECT_GT(report.stats().otfPipelinedSteps, 0u);
      EXPECT_GT(report.stats().otfPipelineRollbacks, 0u);
      EXPECT_GT(session.cacheStats().otfPipelineRollbacks, 0u);
    }
  }
  ASSERT_EQ(values[0].size(), values[1].size());
  for (std::size_t i = 0; i < values[0].size(); ++i)
    EXPECT_EQ(std::memcmp(&values[0][i], &values[1][i], sizeof(double)), 0)
        << "grid point " << i;
}

}  // namespace
}  // namespace imcdft::ioimc
