#include <gtest/gtest.h>

#include <set>

#include "analysis/converter.hpp"
#include "common/error.hpp"
#include "dft/galileo.hpp"
#include "dft/generate.hpp"
#include "dft/hash.hpp"

/// The random-DFT generator is the input side of the fuzzing harness; its
/// contracts — determinism, total validity, arm-mask respect, printer
/// round-trips — are what make a failing seed a repro.

namespace imcdft::dft {
namespace {

/// Structural equality via the canonical fingerprint plus the exact
/// attribute set (canonicalKey covers structure, names and attributes).
void expectSameTree(const Dft& a, const Dft& b) {
  EXPECT_EQ(canonicalKey(a), canonicalKey(b));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.top(), b.top());
  ASSERT_EQ(a.inhibitions().size(), b.inhibitions().size());
}

TEST(Generator, DeterministicAcrossCalls) {
  for (std::uint64_t seed : {0ull, 1ull, 17ull, 123456789ull}) {
    Dft first = generateDft(seed);
    Dft second = generateDft(seed);
    expectSameTree(first, second);
  }
}

TEST(Generator, DistinctSeedsDiffer) {
  // Not a hard guarantee for any single pair, but across 20 consecutive
  // seeds a collision means the seed is not feeding the stream.
  std::set<std::string> keys;
  for (std::uint64_t seed = 0; seed < 20; ++seed)
    keys.insert(canonicalKey(generateDft(seed)));
  EXPECT_GT(keys.size(), 15u);
}

TEST(Generator, EverySeedValidAndConvertible) {
  // The generator's core contract: seed -> tree is total, and every tree
  // passes the full conversion pipeline's structural certification.
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    Dft tree = generateDft(seed);
    EXPECT_NO_THROW(analysis::checkConvertible(tree)) << "seed " << seed;
    EXPECT_NO_THROW(analysis::activationContexts(tree)) << "seed " << seed;
  }
}

TEST(Generator, RespectsElementBudget) {
  GeneratorOptions opts;
  opts.maxElements = 10;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Dft tree = generateDft(seed, opts);
    // The budget is soft: every gate still open when the cap is reached
    // tops up its minimum inputs, and the FDEP pass adds elements of its
    // own — but the overshoot is bounded by the nesting, not unbounded.
    EXPECT_LE(tree.size(), 2 * opts.maxElements) << "seed " << seed;
  }
}

TEST(Generator, StaticArmsStayStatic) {
  GeneratorOptions opts;
  opts.arms = kStaticArms;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Dft tree = generateDft(seed, opts);
    EXPECT_FALSE(tree.isDynamic()) << "seed " << seed;
    EXPECT_FALSE(tree.isRepairable()) << "seed " << seed;
    for (ElementId id = 0; id < tree.size(); ++id)
      EXPECT_EQ(tree.element(id).be.phases, 1u) << "seed " << seed;
  }
}

TEST(Generator, ArmMaskGatesFeatures) {
  GeneratorOptions noPand;
  noPand.arms = kAllArms & ~(ArmPand | ArmSpare | ArmFdep);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Dft tree = generateDft(seed, noPand);
    for (ElementId id = 0; id < tree.size(); ++id) {
      EXPECT_NE(tree.element(id).type, ElementType::Pand) << "seed " << seed;
      EXPECT_NE(tree.element(id).type, ElementType::Spare) << "seed " << seed;
      EXPECT_NE(tree.element(id).type, ElementType::Fdep) << "seed " << seed;
    }
  }
}

TEST(Generator, FullVocabularyIsReached) {
  // Over a seed block the generator must actually exercise every feature
  // arm — a silent arm is a silent coverage hole in the whole harness.
  bool sawPand = false, sawSpare = false, sawVoting = false, sawFdep = false,
       sawRepair = false, sawErlang = false, sawInhibition = false,
       sawColdSpare = false, sawWarmSpare = false, sawShared = false;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Dft tree = generateDft(seed);
    sawRepair = sawRepair || tree.isRepairable();
    sawInhibition = sawInhibition || !tree.inhibitions().empty();
    for (ElementId id = 0; id < tree.size(); ++id) {
      const Element& e = tree.element(id);
      sawPand = sawPand || e.type == ElementType::Pand;
      sawVoting = sawVoting || e.type == ElementType::Voting;
      sawFdep = sawFdep || e.type == ElementType::Fdep;
      sawErlang = sawErlang || e.be.phases > 1;
      sawShared = sawShared || tree.parents(id).size() > 1;
      if (e.type == ElementType::Spare) {
        sawSpare = true;
        sawColdSpare = sawColdSpare || e.spareKind == SpareKind::Cold;
        sawWarmSpare = sawWarmSpare || e.spareKind == SpareKind::Warm;
      }
    }
  }
  EXPECT_TRUE(sawPand);
  EXPECT_TRUE(sawSpare);
  EXPECT_TRUE(sawVoting);
  EXPECT_TRUE(sawFdep);
  EXPECT_TRUE(sawRepair);
  EXPECT_TRUE(sawErlang);
  EXPECT_TRUE(sawInhibition);
  EXPECT_TRUE(sawColdSpare);
  EXPECT_TRUE(sawWarmSpare);
  EXPECT_TRUE(sawShared);
}

TEST(Generator, ArmParsingRoundTrips) {
  EXPECT_EQ(parseArms("all"), kAllArms);
  EXPECT_EQ(parseArms("static"), kStaticArms);
  EXPECT_EQ(parseArms("pand,spare"), ArmPand | ArmSpare);
  EXPECT_EQ(parseArms(describeArms(kAllArms)), kAllArms);
  EXPECT_EQ(parseArms(describeArms(ArmFdep | ArmMutex)), ArmFdep | ArmMutex);
  EXPECT_THROW(parseArms("bogus"), Error);
  EXPECT_THROW(parseArms(""), Error);
}

// --- Galileo printer round-trip property (parse . print = id) -----------

/// Full structural + attribute identity after one print/parse cycle.
void expectRoundTrip(const Dft& tree, std::uint64_t seed) {
  const std::string text = printGalileo(tree);
  Dft back = parseGalileo(text);
  ASSERT_EQ(back.size(), tree.size()) << "seed " << seed << "\n" << text;
  EXPECT_EQ(canonicalKey(back), canonicalKey(tree))
      << "seed " << seed << "\n" << text;
  EXPECT_EQ(back.top(), tree.top()) << "seed " << seed;
  for (ElementId id = 0; id < tree.size(); ++id) {
    const Element& a = tree.element(id);
    const Element& b = back.element(id);
    EXPECT_EQ(a.name, b.name) << "seed " << seed;
    EXPECT_EQ(a.type, b.type) << "seed " << seed;
    EXPECT_EQ(a.inputs, b.inputs) << "seed " << seed;
    EXPECT_EQ(a.votingThreshold, b.votingThreshold) << "seed " << seed;
    if (a.type == ElementType::Spare)
      EXPECT_EQ(a.spareKind, b.spareKind) << "seed " << seed;
    // Bit-exact attributes: the printer uses shortest-round-trip
    // formatting, so even swept dormancies and 3-decimal rates survive.
    EXPECT_EQ(a.be.lambda, b.be.lambda) << "seed " << seed;
    EXPECT_EQ(a.be.dormancy, b.be.dormancy) << "seed " << seed;
    EXPECT_EQ(a.be.repairRate, b.be.repairRate) << "seed " << seed;
    EXPECT_EQ(a.be.phases, b.be.phases) << "seed " << seed;
  }
  ASSERT_EQ(back.inhibitions().size(), tree.inhibitions().size())
      << "seed " << seed;
  for (std::size_t i = 0; i < tree.inhibitions().size(); ++i) {
    EXPECT_EQ(back.inhibitions()[i].inhibitor, tree.inhibitions()[i].inhibitor)
        << "seed " << seed;
    EXPECT_EQ(back.inhibitions()[i].target, tree.inhibitions()[i].target)
        << "seed " << seed;
  }
}

TEST(GalileoRoundTrip, HoldsOnEveryGeneratorOutput) {
  // Coverage accounting: the property must have seen dormancies, repair
  // rates, Erlang phases and inhibitions, or the round-trip guarantee is
  // weaker than advertised.
  bool sawDorm = false, sawMu = false, sawPhases = false, sawInhibit = false;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Dft tree = generateDft(seed);
    expectRoundTrip(tree, seed);
    sawInhibit = sawInhibit || !tree.inhibitions().empty();
    for (ElementId id = 0; id < tree.size(); ++id) {
      const Element& e = tree.element(id);
      sawDorm = sawDorm || (e.isBasicEvent() && e.be.dormancy != 1.0);
      sawMu = sawMu || e.be.repairRate.has_value();
      sawPhases = sawPhases || e.be.phases > 1;
    }
  }
  EXPECT_TRUE(sawDorm);
  EXPECT_TRUE(sawMu);
  EXPECT_TRUE(sawPhases);
  EXPECT_TRUE(sawInhibit);
}

TEST(GalileoRoundTrip, SecondCycleIsTextuallyStable) {
  // print . parse . print must be a fixpoint: byte-identical text.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::string once = printGalileo(generateDft(seed));
    EXPECT_EQ(printGalileo(parseGalileo(once)), once) << "seed " << seed;
  }
}

}  // namespace
}  // namespace imcdft::dft
